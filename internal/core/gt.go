package core

import (
	"pipetune/internal/gt"
	"pipetune/internal/kmeans"
)

// The ground-truth similarity database (§5.4) lives in internal/gt since
// the sharded-store refactor; these aliases keep the long-standing core
// vocabulary working for existing callers (experiments, tests, the
// facade). New code should use internal/gt directly.

// Entry is one historical ground-truth record.
type Entry = gt.Entry

// Similarity is the pluggable similarity function of §5.4.
type Similarity = gt.Similarity

// GroundTruthConfig tunes the similarity machinery.
type GroundTruthConfig = gt.Config

// GroundTruth is the classic monolithic database: one mutex, eager refit
// on every Add. The sharded store (gt.Sharded) is the default for new
// PipeTune instances; the monolith remains for callers that construct one
// explicitly.
type GroundTruth = gt.Monolith

// DefaultGroundTruthConfig mirrors the paper's settings.
func DefaultGroundTruthConfig() GroundTruthConfig { return gt.DefaultConfig() }

// NewGroundTruth creates an empty monolithic database.
func NewGroundTruth(cfg GroundTruthConfig, seed uint64) *GroundTruth {
	return gt.NewMonolith(cfg, seed)
}

// NewKMeansSimilarity builds the paper's default technique.
func NewKMeansSimilarity(cfg kmeans.Config, threshold float64, seed uint64) *gt.KMeansSimilarity {
	return gt.NewKMeansSimilarity(cfg, threshold, seed)
}

// NewNearestNeighborSimilarity builds the k-NN technique.
func NewNearestNeighborSimilarity(threshold float64) *gt.NearestNeighborSimilarity {
	return gt.NewNearestNeighborSimilarity(threshold)
}
