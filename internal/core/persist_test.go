package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// gtEntry fabricates a distinguishable entry.
func gtEntry(i int) Entry {
	return Entry{
		Features: []float64{float64(i), float64(i % 7), float64(i % 3), 1},
		BestSys:  DefaultProbeConfigs()[i%len(DefaultProbeConfigs())],
		Metric:   0.5 + float64(i%10)/100,
	}
}

// TestGroundTruthConcurrentAddSaveLoad hammers one database from many
// goroutines — adders (concurrent jobs feeding trials), lookups and
// snapshotters — then verifies a final Save/Load round-trip reproduces the
// entries exactly.
func TestGroundTruthConcurrentAddSaveLoad(t *testing.T) {
	gt := NewGroundTruth(DefaultGroundTruthConfig(), 1)
	dir := t.TempDir()
	path := filepath.Join(dir, "gt.json")

	const (
		adders   = 8
		perAdder = 25
	)
	var wg sync.WaitGroup
	for a := 0; a < adders; a++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perAdder; i++ {
				if err := gt.Add(gtEntry(a*perAdder + i)); err != nil {
					t.Errorf("Add: %v", err)
					return
				}
				// Interleave the operations concurrent jobs perform.
				gt.Lookup([]float64{float64(i), 1, 2, 3})
				if i%5 == 0 {
					if _, err := gt.SaveFile(path); err != nil {
						t.Errorf("SaveFile: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := gt.Len(); got != adders*perAdder {
		t.Fatalf("lost entries under concurrency: %d, want %d", got, adders*perAdder)
	}

	rev, err := gt.SaveFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rev != gt.Rev() {
		t.Errorf("final snapshot rev %d != database rev %d", rev, gt.Rev())
	}
	restored := NewGroundTruth(DefaultGroundTruthConfig(), 1)
	if err := restored.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != gt.Len() {
		t.Fatalf("round-trip lost entries: %d, want %d", restored.Len(), gt.Len())
	}
	// Entry-level equality via the stream serialisation.
	var a, b strings.Builder
	if err := gt.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := restored.Save(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("restored database serialises differently from the original")
	}
}

// TestGroundTruthSnapshotNeverHalfWritten verifies the write-to-temp +
// rename protocol: while writers continuously snapshot a mutating
// database, every read of the target path parses as complete JSON — a
// reader can never observe a partially written snapshot.
func TestGroundTruthSnapshotNeverHalfWritten(t *testing.T) {
	gt := NewGroundTruth(DefaultGroundTruthConfig(), 1)
	dir := t.TempDir()
	path := filepath.Join(dir, "gt.json")
	if _, err := gt.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: grow + snapshot in a tight loop
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := gt.Add(gtEntry(i)); err != nil {
				t.Errorf("Add: %v", err)
				return
			}
			if _, err := gt.SaveFile(path); err != nil {
				t.Errorf("SaveFile: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		buf, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		var snap struct {
			Entries []Entry `json:"entries"`
		}
		if err := json.Unmarshal(buf, &snap); err != nil {
			t.Fatalf("read %d observed a half-written snapshot: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	// The temp files of completed snapshots must all be gone.
	matches, err := filepath.Glob(filepath.Join(dir, "*.tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Errorf("leftover temp files after snapshots: %v", matches)
	}
}

// TestGroundTruthSaveFileFailureLeavesTargetIntact points SaveFile at an
// unwritable location and checks the existing snapshot is untouched.
func TestGroundTruthSaveFileFailureLeavesTargetIntact(t *testing.T) {
	gt := NewGroundTruth(DefaultGroundTruthConfig(), 1)
	if err := gt.Add(gtEntry(1)); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "gt.json")
	if _, err := gt.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gt.SaveFile(filepath.Join(dir, "missing", "gt.json")); err == nil {
		t.Fatal("SaveFile into a missing directory succeeded")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("failed SaveFile disturbed the existing snapshot")
	}
}

// TestGroundTruthLoadFileMissing verifies first-boot semantics: a missing
// snapshot is not an error and leaves the database empty.
func TestGroundTruthLoadFileMissing(t *testing.T) {
	gt := NewGroundTruth(DefaultGroundTruthConfig(), 1)
	if err := gt.LoadFile(filepath.Join(t.TempDir(), "absent.json")); err != nil {
		t.Fatalf("missing snapshot: %v", err)
	}
	if gt.Len() != 0 {
		t.Fatalf("empty boot has %d entries", gt.Len())
	}
}

// TestGroundTruthRev checks the revision counter advances on every
// mutation and is stable across reads.
func TestGroundTruthRev(t *testing.T) {
	gt := NewGroundTruth(DefaultGroundTruthConfig(), 1)
	if gt.Rev() != 0 {
		t.Fatalf("fresh rev = %d", gt.Rev())
	}
	for i := 1; i <= 3; i++ {
		if err := gt.Add(gtEntry(i)); err != nil {
			t.Fatal(err)
		}
		if gt.Rev() != uint64(i) {
			t.Fatalf("rev after %d adds = %d", i, gt.Rev())
		}
	}
	var buf strings.Builder
	if err := gt.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if gt.Rev() != 3 {
		t.Errorf("Save mutated rev to %d", gt.Rev())
	}
	if err := gt.Load(strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	if gt.Rev() != 4 {
		t.Errorf("rev after Load = %d, want 4", gt.Rev())
	}
}

// BenchmarkGroundTruthSaveFile measures the atomic snapshot cost at a
// realistic database size.
func BenchmarkGroundTruthSaveFile(b *testing.B) {
	gt := NewGroundTruth(DefaultGroundTruthConfig(), 1)
	for i := 0; i < 256; i++ {
		if err := gt.Add(gtEntry(i)); err != nil {
			b.Fatal(err)
		}
	}
	path := filepath.Join(b.TempDir(), "gt.json")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gt.SaveFile(path); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fi, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(fi.Size()), "bytes/snapshot")
}
