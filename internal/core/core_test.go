package core

import (
	"testing"

	"pipetune/internal/cluster"
	"pipetune/internal/dataset"
	"pipetune/internal/params"
	"pipetune/internal/perf"
	"pipetune/internal/sched"
	"pipetune/internal/search"
	"pipetune/internal/trainer"
	"pipetune/internal/tune"
	"pipetune/internal/workload"
	"pipetune/internal/xrand"
)

var (
	lenetMNIST = workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}
	cnnNews    = workload.Workload{Model: workload.CNN, Dataset: workload.News20}
)

// featuresOf produces a realistic profile feature vector for a workload.
func featuresOf(t *testing.T, w workload.Workload, seed uint64) []float64 {
	t.Helper()
	s := perf.NewSampler()
	p, err := s.EpochProfile(xrand.New(seed), workload.TraitsFor(w),
		params.DefaultHyper(), params.DefaultSysConfig(), perf.PhaseTrain, 30)
	if err != nil {
		t.Fatal(err)
	}
	return p.Features()
}

func makeEpoch(epoch int, sys params.SysConfig, duration, energy float64, profile perf.Profile) trainer.EpochStats {
	return trainer.EpochStats{
		Epoch:    epoch,
		Sys:      sys,
		Duration: duration,
		EnergyJ:  energy,
		Profile:  profile,
	}
}

func sampleProfile(t *testing.T, w workload.Workload) perf.Profile {
	t.Helper()
	s := perf.NewSampler()
	p, err := s.EpochProfile(xrand.New(7), workload.TraitsFor(w),
		params.DefaultHyper(), params.DefaultSysConfig(), perf.PhaseTrain, 30)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestControllerProbesThenSettles(t *testing.T) {
	gt := NewGroundTruth(DefaultGroundTruthConfig(), 1)
	ctrl := NewController(gt)
	ctrl.Probes = []params.SysConfig{
		{Cores: 4, MemoryGB: 8},
		{Cores: 16, MemoryGB: 8},
	}
	obs := ctrl.ObserverFor(1)
	profile := sampleProfile(t, lenetMNIST)
	base := params.DefaultSysConfig()

	// Epoch 1 (profiling, on base): DB empty -> probe 1 next.
	next := obs.OnEpochEnd(0, lenetMNIST, params.DefaultHyper(), makeEpoch(1, base, 100, 1000, profile))
	if next == nil || *next != ctrl.Probes[0] {
		t.Fatalf("after profiling epoch got %v, want first probe", next)
	}
	// Epoch 2 measured probe 1 (fast) -> probe 2 next.
	next = obs.OnEpochEnd(0, lenetMNIST, params.DefaultHyper(), makeEpoch(2, ctrl.Probes[0], 60, 700, profile))
	if next == nil || *next != ctrl.Probes[1] {
		t.Fatalf("after first probe got %v, want second probe", next)
	}
	// Epoch 3 measured probe 2 (slow) -> settle on probe 1 (shortest).
	next = obs.OnEpochEnd(0, lenetMNIST, params.DefaultHyper(), makeEpoch(3, ctrl.Probes[1], 150, 2000, profile))
	if next == nil || *next != ctrl.Probes[0] {
		t.Fatalf("settled on %v, want fastest probe %v", next, ctrl.Probes[0])
	}
	// Epoch 4: applied, no further changes.
	if next = obs.OnEpochEnd(0, lenetMNIST, params.DefaultHyper(), makeEpoch(4, ctrl.Probes[0], 60, 700, profile)); next != nil {
		t.Fatalf("applied phase still changing config: %v", next)
	}

	// Finishing feeds the ground truth.
	ctrl.Finish(1, nil)
	if gt.Len() != 1 {
		t.Fatalf("ground truth has %d entries after finish, want 1", gt.Len())
	}
}

func TestControllerMinimizeEnergy(t *testing.T) {
	gt := NewGroundTruth(DefaultGroundTruthConfig(), 1)
	ctrl := NewController(gt)
	ctrl.Optimize = MinimizeEnergy
	ctrl.Probes = []params.SysConfig{{Cores: 4, MemoryGB: 8}}
	obs := ctrl.ObserverFor(1)
	profile := sampleProfile(t, lenetMNIST)
	base := params.DefaultSysConfig()

	// Base epoch: fast but power-hungry. Probe: slower but frugal.
	obs.OnEpochEnd(0, lenetMNIST, params.DefaultHyper(), makeEpoch(1, base, 50, 9000, profile))
	settled := obs.OnEpochEnd(0, lenetMNIST, params.DefaultHyper(), makeEpoch(2, ctrl.Probes[0], 80, 4000, profile))
	if settled == nil || *settled != ctrl.Probes[0] {
		t.Fatalf("energy optimisation settled on %v, want frugal probe", settled)
	}
}

func TestControllerGroundTruthHitSkipsProbing(t *testing.T) {
	gt := NewGroundTruth(DefaultGroundTruthConfig(), 1)
	known := params.SysConfig{Cores: 4, MemoryGB: 32}
	for i := 0; i < 4; i++ {
		_ = gt.Add(Entry{Features: featuresOf(t, lenetMNIST, uint64(i)), BestSys: known, Metric: 50})
		_ = gt.Add(Entry{Features: featuresOf(t, cnnNews, uint64(i)), BestSys: params.SysConfig{Cores: 16, MemoryGB: 8}, Metric: 70})
	}
	ctrl := NewController(gt)
	obs := ctrl.ObserverFor(9)
	profile := sampleProfile(t, lenetMNIST)
	next := obs.OnEpochEnd(0, lenetMNIST, params.DefaultHyper(),
		makeEpoch(1, params.DefaultSysConfig(), 100, 1000, profile))
	if next == nil || *next != known {
		t.Fatalf("hit did not apply known config: got %v, want %v", next, known)
	}
	// Subsequent epochs stay put.
	if nxt := obs.OnEpochEnd(0, lenetMNIST, params.DefaultHyper(), makeEpoch(2, known, 50, 500, profile)); nxt != nil {
		t.Fatalf("config changed after ground-truth application: %v", nxt)
	}
	hits, _ := gt.Stats()
	if hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
}

func TestControllerFallsBackWhenGroundTruthRegresses(t *testing.T) {
	gt := NewGroundTruth(DefaultGroundTruthConfig(), 1)
	badConfig := params.SysConfig{Cores: 16, MemoryGB: 4}
	for i := 0; i < 4; i++ {
		_ = gt.Add(Entry{Features: featuresOf(t, lenetMNIST, uint64(i)), BestSys: badConfig, Metric: 10})
		_ = gt.Add(Entry{Features: featuresOf(t, cnnNews, uint64(i)), BestSys: params.SysConfig{Cores: 4, MemoryGB: 8}, Metric: 10})
	}
	ctrl := NewController(gt)
	ctrl.Probes = []params.SysConfig{{Cores: 4, MemoryGB: 8}}
	obs := ctrl.ObserverFor(1)
	profile := sampleProfile(t, lenetMNIST)
	base := params.DefaultSysConfig()

	// Epoch 1: GT hit applies the (bad) config.
	next := obs.OnEpochEnd(0, lenetMNIST, params.DefaultHyper(), makeEpoch(1, base, 100, 1000, profile))
	if next == nil || *next != badConfig {
		t.Fatalf("expected GT config applied, got %v", next)
	}
	// Epoch 2 measured the applied config 50%% slower than baseline: the
	// validation guard must resume probing instead of accepting it.
	next = obs.OnEpochEnd(0, lenetMNIST, params.DefaultHyper(), makeEpoch(2, badConfig, 150, 2000, profile))
	if next == nil || *next != ctrl.Probes[0] {
		t.Fatalf("guard did not fall back to probing: got %v", next)
	}
	// Epoch 3 measured the probe as fastest: settle on it.
	next = obs.OnEpochEnd(0, lenetMNIST, params.DefaultHyper(), makeEpoch(3, ctrl.Probes[0], 60, 500, profile))
	if next == nil || *next != ctrl.Probes[0] {
		t.Fatalf("did not settle on the measured best: got %v", next)
	}
}

func TestControllerKeepsGroundTruthConfigWhenItHolds(t *testing.T) {
	gt := NewGroundTruth(DefaultGroundTruthConfig(), 1)
	good := params.SysConfig{Cores: 4, MemoryGB: 8}
	for i := 0; i < 4; i++ {
		_ = gt.Add(Entry{Features: featuresOf(t, lenetMNIST, uint64(i)), BestSys: good, Metric: 10})
		_ = gt.Add(Entry{Features: featuresOf(t, cnnNews, uint64(i)), BestSys: params.SysConfig{Cores: 16, MemoryGB: 32}, Metric: 10})
	}
	ctrl := NewController(gt)
	obs := ctrl.ObserverFor(1)
	profile := sampleProfile(t, lenetMNIST)
	obs.OnEpochEnd(0, lenetMNIST, params.DefaultHyper(), makeEpoch(1, params.DefaultSysConfig(), 100, 1000, profile))
	// Applied config measures faster: guard stays quiet.
	if next := obs.OnEpochEnd(0, lenetMNIST, params.DefaultHyper(), makeEpoch(2, good, 80, 800, profile)); next != nil {
		t.Fatalf("guard fired on an improving config: %v", next)
	}
	if next := obs.OnEpochEnd(0, lenetMNIST, params.DefaultHyper(), makeEpoch(3, good, 80, 800, profile)); next != nil {
		t.Fatalf("config changed after validation: %v", next)
	}
}

func TestControllerMaxProbeEpochs(t *testing.T) {
	gt := NewGroundTruth(DefaultGroundTruthConfig(), 1)
	ctrl := NewController(gt)
	ctrl.MaxProbeEpochs = 1
	profile := sampleProfile(t, lenetMNIST)
	obs := ctrl.ObserverFor(1)
	base := params.DefaultSysConfig()

	obs.OnEpochEnd(0, lenetMNIST, params.DefaultHyper(), makeEpoch(1, base, 100, 1000, profile))
	// Only one probe epoch allowed; the very next callback settles.
	next := obs.OnEpochEnd(0, lenetMNIST, params.DefaultHyper(), makeEpoch(2, ctrl.Probes[0], 40, 400, profile))
	if next == nil {
		t.Fatal("controller kept probing past MaxProbeEpochs")
	}
	if *next != ctrl.Probes[0] {
		t.Fatalf("settled on %v, want measured fastest %v", *next, ctrl.Probes[0])
	}
}

// --- End-to-end: PipeTune vs the baselines on a small job. ---

func smallJob(w workload.Workload, seed uint64) tune.JobSpec {
	h := params.DefaultHyper()
	h.Epochs = 6
	return tune.JobSpec{
		Workload:  w,
		Mode:      tune.ModeV1,
		Objective: tune.MaximizeAccuracy,
		HyperSpace: params.Space{
			{Name: params.KeyBatchSize, Values: []float64{32, 256}},
			{Name: params.KeyLearningRate, Values: []float64{0.01, 0.05}},
		},
		SystemSpace: params.Space{
			{Name: params.KeyCores, Values: []float64{4, 8, 16}},
			{Name: params.KeyMemoryGB, Values: []float64{8, 32}},
		},
		BaseHyper: h,
		BaseSys:   params.DefaultSysConfig(),
		Seed:      seed,
		Searcher: func(space params.Space, r *xrand.Source) (search.Searcher, error) {
			return search.NewGrid(space, 4, 0)
		},
	}
}

func testTuneRunner() *tune.Runner {
	tr := trainer.NewRunner()
	tr.Data = dataset.Config{TrainSize: 256, TestSize: 96}
	return tune.NewRunner(tr, cluster.Paper())
}

func TestPipeTuneReducesTuningTimeVsV1(t *testing.T) {
	runner := testTuneRunner()
	v1, err := runner.RunJob(smallJob(lenetMNIST, 42))
	if err != nil {
		t.Fatal(err)
	}

	pt := New(testTuneRunner(), 7)
	if err := pt.Bootstrap(workload.Catalog(), 99); err != nil {
		t.Fatal(err)
	}
	ptRes, err := pt.RunJob(smallJob(lenetMNIST, 42))
	if err != nil {
		t.Fatal(err)
	}

	if ptRes.TuningTime >= v1.TuningTime {
		t.Fatalf("PipeTune tuning %v s not below V1 %v s", ptRes.TuningTime, v1.TuningTime)
	}
	// §7.3: accuracy "on par" with V1 — identical hyper search here, and
	// system changes must not affect learning at all.
	if ptRes.Best.Result.Accuracy < v1.Best.Result.Accuracy-0.02 {
		t.Fatalf("PipeTune accuracy %v fell below V1 %v", ptRes.Best.Result.Accuracy, v1.Best.Result.Accuracy)
	}
	hits, _ := pt.GT.Stats()
	if hits == 0 {
		t.Fatal("warm-started PipeTune never hit the ground truth")
	}
}

func TestPipeTuneColdStartStillCompletes(t *testing.T) {
	pt := New(testTuneRunner(), 7)
	res, err := pt.RunJob(smallJob(lenetMNIST, 13))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no best trial")
	}
	// Cold start must populate the ground truth for future jobs.
	if pt.GT.Len() == 0 {
		t.Fatal("cold-start job did not grow the ground truth")
	}
}

func TestPipeTuneForcesV1Semantics(t *testing.T) {
	pt := New(testTuneRunner(), 7)
	spec := smallJob(lenetMNIST, 5)
	spec.Mode = tune.ModeV2 // must be overridden to V1
	res, err := pt.RunJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Trials {
		if rec.StartSys != spec.BaseSys {
			t.Fatalf("PipeTune trial started at %v, want base %v", rec.StartSys, spec.BaseSys)
		}
	}
}

func TestPipeTuneNotWired(t *testing.T) {
	var pt PipeTune
	if _, err := pt.RunJob(tune.JobSpec{}); err == nil {
		t.Fatal("unwired PipeTune accepted a job")
	}
	if err := pt.Bootstrap(nil, 1); err == nil {
		t.Fatal("unwired PipeTune accepted bootstrap")
	}
}

func TestPipeTuneReconfiguresThroughScheduler(t *testing.T) {
	// Cold-start PipeTune probes configurations epoch by epoch, so its
	// trials must re-negotiate their cluster allocation mid-flight — the
	// scheduler records those as granted/denied resizes on each record.
	pt := New(testTuneRunner(), 7)
	res, err := pt.RunJob(smallJob(lenetMNIST, 13))
	if err != nil {
		t.Fatal(err)
	}
	reconfigs := 0
	for _, rec := range res.Trials {
		reconfigs += rec.Resizes + rec.ResizesDenied
	}
	if reconfigs == 0 {
		t.Fatal("probing trials never reconfigured their allocation")
	}
}

func TestPipeTunePolicyForwarded(t *testing.T) {
	pt := New(testTuneRunner(), 7)
	pt.Policy = sched.SJF()
	res, err := pt.RunJob(smallJob(lenetMNIST, 13))
	if err != nil {
		t.Fatal(err)
	}
	if res.Spec.Policy == nil || res.Spec.Policy.Name() != sched.NameSJF {
		t.Fatal("PipeTune policy not forwarded to the job spec")
	}
}

// TestPipeTuneWithPluggableSimilarity swaps the similarity technique
// (§5.4's pluggability) under a full PipeTune run.
func TestPipeTuneWithPluggableSimilarity(t *testing.T) {
	pt := New(testTuneRunner(), 7)
	cfg := DefaultGroundTruthConfig()
	cfg.Similarity = NewNearestNeighborSimilarity(3.0)
	pt.GT = NewGroundTruth(cfg, 7)
	if err := pt.Bootstrap(workload.OfType(workload.TypeI), 99); err != nil {
		t.Fatal(err)
	}
	res, err := pt.RunJob(smallJob(lenetMNIST, 42))
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no best trial under k-NN similarity")
	}
	hits, _ := pt.GT.Stats()
	if hits == 0 {
		t.Fatal("k-NN similarity never hit after bootstrap")
	}
}
