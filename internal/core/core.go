// Package core implements PipeTune itself — the paper's primary
// contribution (§5): pipelined tuning of system parameters inside each
// hyperparameter trial, at epoch granularity.
//
// Algorithm 1 of the paper maps onto this package as follows:
//
//	train(...)            -> tune.Runner executes the trial; the trainer
//	                         invokes the Controller at each epoch boundary
//	                         (the asynchronous tuneSystem call).
//	getProfile(job)       -> the trial's first-epoch 58-event PMU profile.
//	getSimilarity(profile)-> GroundTruth.Lookup: k-means over historical
//	                         profiles; a hit within the inertia-derived
//	                         radius returns that cluster's known-best
//	                         system configuration (§5.4, §5.6).
//	probing loop          -> on a miss, each subsequent epoch runs one
//	                         candidate configuration; the optimisation
//	                         function picks the best (O(n) in the number
//	                         of configurations, §5.2) and applies it for
//	                         the remaining epochs.
//
// Completed trials feed their profile and winning configuration back into
// the ground-truth database, which re-clusters — so later jobs with
// similar profiles skip probing entirely (§7.4's "unseen jobs" economy).
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"pipetune/internal/gt"
	"pipetune/internal/params"
	"pipetune/internal/sched"
	"pipetune/internal/trainer"
	"pipetune/internal/tune"
	"pipetune/internal/workload"
)

// OptimizeFor selects the probing optimisation function (§5.2: "e.g.,
// shortest runtime, lowest energy consumption").
type OptimizeFor int

// Optimisation functions.
const (
	MinimizeDuration OptimizeFor = iota + 1
	MinimizeEnergy
)

// String implements fmt.Stringer.
func (o OptimizeFor) String() string {
	switch o {
	case MinimizeDuration:
		return "min-duration"
	case MinimizeEnergy:
		return "min-energy"
	default:
		return fmt.Sprintf("optimize(%d)", int(o))
	}
}

// DefaultProbeConfigs returns the §5.6 probing grid over the §7.1.4 system
// ranges: cores × memory at power-of-two steps. Kept small because each
// probe consumes one epoch.
func DefaultProbeConfigs() []params.SysConfig {
	return []params.SysConfig{
		{Cores: 4, MemoryGB: 8},
		{Cores: 8, MemoryGB: 8},
		{Cores: 16, MemoryGB: 8},
		{Cores: 4, MemoryGB: 32},
		{Cores: 8, MemoryGB: 32},
		{Cores: 16, MemoryGB: 32},
	}
}

// trialPhase is the per-trial state machine of Algorithm 1.
type trialPhase int

const (
	phaseProfiling trialPhase = iota + 1
	phaseProbing
	phaseApplied
)

// probeResult is one epoch-level measurement of a configuration.
type probeResult struct {
	sys      params.SysConfig
	duration float64
	energyJ  float64
}

// trialState tracks one trial's pipelined tuning.
type trialState struct {
	phase     trialPhase
	features  []float64
	probeIdx  int
	measured  []probeResult
	applied   params.SysConfig
	fromGT    bool
	validated bool
	baseline  float64 // metric of the profiling epoch (on the start config)
	epochsRun int
}

// Controller coordinates pipelined system-parameter tuning for the trials
// of one or more HPT jobs. It implements the paper's tuneSystem (Algorithm
// 1, lines 6-17) as a trainer.EpochObserver per trial.
type Controller struct {
	GT       gt.Store
	Probes   []params.SysConfig
	Optimize OptimizeFor

	// MaxProbeEpochs bounds how many epochs a single trial may spend
	// probing (0 = no bound beyond the probe list length).
	MaxProbeEpochs int

	mu     sync.Mutex
	trials map[int]*trialState
}

// NewController creates a controller with the default probe grid.
func NewController(store gt.Store) *Controller {
	return &Controller{
		GT:       store,
		Probes:   DefaultProbeConfigs(),
		Optimize: MinimizeDuration,
		trials:   make(map[int]*trialState),
	}
}

// metric extracts the optimisation value from a measurement.
func (c *Controller) metric(p probeResult) float64 {
	if c.Optimize == MinimizeEnergy {
		return p.energyJ
	}
	return p.duration
}

// state returns (creating if needed) the per-trial state.
func (c *Controller) state(trialID int) *trialState {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.trials[trialID]
	if !ok {
		st = &trialState{phase: phaseProfiling}
		c.trials[trialID] = st
	}
	return st
}

// Restart discards a trial's pipelined-tuning state so its body can be
// re-run from epoch one (a remote lease requeued after worker eviction):
// the replay re-profiles, re-queries the ground truth and re-probes from
// scratch, exactly as the first attempt did. Ground-truth adds only
// happen between searcher batches, so within a batch the replay observes
// the same database state and reproduces the original attempt
// bit-identically.
func (c *Controller) Restart(trialID int) {
	c.mu.Lock()
	delete(c.trials, trialID)
	c.mu.Unlock()
}

// ObserverFor returns the epoch observer for one trial; pass this to
// tune.JobSpec.TrialObserver.
func (c *Controller) ObserverFor(trialID int) trainer.EpochObserver {
	return trainer.ObserverFunc(func(_ uint64, _ workload.Workload, _ params.Hyper, s trainer.EpochStats) *params.SysConfig {
		return c.onEpoch(trialID, s)
	})
}

// onEpoch advances the state machine. The returned configuration (if any)
// applies from the next epoch onward.
func (c *Controller) onEpoch(trialID int, s trainer.EpochStats) *params.SysConfig {
	st := c.state(trialID)
	c.mu.Lock()
	defer c.mu.Unlock()

	st.epochsRun++
	st.measured = append(st.measured, probeResult{sys: s.Sys, duration: s.Duration, energyJ: s.EnergyJ})

	switch st.phase {
	case phaseProfiling:
		// Line 7-8: profile the first epoch, query the similarity
		// function.
		st.features = s.Profile.Features()
		st.baseline = c.metric(st.measured[0])
		if cfg, ok := c.GT.Lookup(st.features); ok {
			// Line 9-10: within the confidence threshold — apply the
			// known-best configuration, no probing needed.
			st.phase = phaseApplied
			st.applied = cfg
			st.fromGT = true
			return &cfg
		}
		// Line 11-15: start probing.
		st.phase = phaseProbing
		st.probeIdx = 0
		if next := c.nextProbeLocked(st, s.Sys); next != nil {
			return next
		}
		// Nothing to probe: settle immediately.
		return c.settleLocked(st)
	case phaseProbing:
		if c.MaxProbeEpochs > 0 && st.epochsRun-1 >= c.MaxProbeEpochs {
			return c.settleLocked(st)
		}
		if next := c.nextProbeLocked(st, s.Sys); next != nil {
			return next
		}
		// Line 16-17: all probes measured — pick the best and apply it.
		return c.settleLocked(st)
	default:
		// Reliability guard on ground-truth reuse: the first epoch after
		// applying a cluster's configuration validates it against the
		// trial's own baseline. Cluster-level configurations are hyper-
		// parameter-agnostic, so a config that was best for the cluster's
		// typical trials can regress an atypical one (e.g. a much larger
		// batch size); in that case fall back to probing — the §5.6 rule
		// of distrusting low-reliability predictions, applied online.
		if st.fromGT && !st.validated {
			st.validated = true
			if c.metric(st.measured[len(st.measured)-1]) > st.baseline*1.10 {
				st.phase = phaseProbing
				st.fromGT = false
				if next := c.nextProbeLocked(st, s.Sys); next != nil {
					return next
				}
				return c.settleLocked(st)
			}
		}
		return nil
	}
}

// nextProbeLocked returns the next unmeasured probe configuration, skipping
// any equal to configurations already measured. Callers hold c.mu.
func (c *Controller) nextProbeLocked(st *trialState, current params.SysConfig) *params.SysConfig {
	for st.probeIdx < len(c.Probes) {
		cfg := c.Probes[st.probeIdx]
		st.probeIdx++
		seen := false
		for _, m := range st.measured {
			if m.sys == cfg {
				seen = true
				break
			}
		}
		if cfg == current || seen {
			continue
		}
		return &cfg
	}
	return nil
}

// settleLocked picks the best measured configuration ("find best config in
// m", Algorithm 1 line 16) and applies it. Callers hold c.mu.
func (c *Controller) settleLocked(st *trialState) *params.SysConfig {
	st.phase = phaseApplied
	best := st.measured[0]
	for _, m := range st.measured[1:] {
		if c.metric(m) < c.metric(best) {
			best = m
		}
	}
	st.applied = best.sys
	return &best.sys
}

// Finish must be called when a trial completes (wire it to
// tune.JobSpec.OnTrialDone). It feeds the trial's outcome into the
// ground-truth database and releases the per-trial state.
func (c *Controller) Finish(trialID int, _ *trainer.Result) {
	c.mu.Lock()
	st, ok := c.trials[trialID]
	if ok {
		delete(c.trials, trialID)
	}
	var entry *gt.Entry
	if ok && st.features != nil && comparedConfigs(st.measured) >= 2 {
		// Only trials with comparative evidence (at least two distinct
		// configurations measured) contribute: a trial that only ever ran
		// the start configuration knows nothing about what is *best* and
		// would drown the database in "default is best" votes.
		best := st.measured[0]
		mean := 0.0
		for _, m := range st.measured {
			mean += c.metric(m)
			if c.metric(m) < c.metric(best) {
				best = m
			}
		}
		mean /= float64(len(st.measured))
		advantage := 1.0
		if mean > 0 {
			advantage = c.metric(best) / mean
		}
		entry = &gt.Entry{Features: st.features, BestSys: best.sys, Metric: advantage}
	}
	c.mu.Unlock()
	if entry != nil {
		// Ground-truth updates only grow the database; errors here must
		// not fail the trial (degraded ground truth, not a broken job).
		_ = c.GT.Add(*entry)
	}
}

// comparedConfigs counts the distinct system configurations measured.
func comparedConfigs(measured []probeResult) int {
	seen := make(map[params.SysConfig]bool, len(measured))
	for _, m := range measured {
		seen[m.sys] = true
	}
	return len(seen)
}

// PipeTune wraps a tune.Runner with the pipelined system-tuning middleware.
// One PipeTune instance holds one persistent ground-truth database shared
// by every job it runs — the cross-job learning of §7.4.
type PipeTune struct {
	Runner   *tune.Runner
	GT       gt.Store
	Probes   []params.SysConfig
	Optimize OptimizeFor
	// Policy, when set, overrides the trial placement policy for PipeTune
	// jobs (FIFO, SJF or backfill from internal/sched). PipeTune trials
	// change their system configuration mid-flight, and the scheduler
	// re-negotiates each trial's cluster allocation at the matching epoch
	// boundary (§5.6 dynamic reconfiguration) — the policy decides which
	// waiting trial claims capacity those reconfigurations free.
	Policy sched.Policy
}

// New creates a PipeTune middleware with an empty ground-truth database —
// the sharded store, the concurrency-safe default for the service's shared
// cross-job database (internal/gt documents the design; NewGroundTruth
// still builds the classic monolith for callers that want it).
func New(runner *tune.Runner, seed uint64) *PipeTune {
	return &PipeTune{
		Runner:   runner,
		GT:       gt.NewSharded(gt.DefaultConfig(), seed),
		Probes:   DefaultProbeConfigs(),
		Optimize: MinimizeDuration,
	}
}

// RunJob executes an HPT job under PipeTune: the hyperparameter search is
// untouched (V1 semantics, accuracy objective preserved), while each
// trial's system parameters are tuned in the pipelined fashion of
// Algorithm 1.
func (p *PipeTune) RunJob(spec tune.JobSpec) (*tune.JobResult, error) {
	return p.RunJobCtx(context.Background(), spec)
}

// RunJobCtx is RunJob with cancellation, forwarded to the tuning event
// loop. A cancelled job contributes whatever completed trials it already
// fed to the ground-truth database (knowledge is kept; the job result is
// not).
func (p *PipeTune) RunJobCtx(ctx context.Context, spec tune.JobSpec) (*tune.JobResult, error) {
	if p.Runner == nil || p.GT == nil {
		return nil, errors.New("core: PipeTune not wired")
	}
	ctrl := NewController(p.GT)
	ctrl.Probes = p.Probes
	ctrl.Optimize = p.Optimize

	spec.Mode = tune.ModeV1 // hyper space only; system handled by the pipeline
	if p.Policy != nil {
		spec.Policy = p.Policy
	}
	spec.TrialObserver = ctrl.ObserverFor
	spec.TrialRestart = ctrl.Restart
	prevDone := spec.OnTrialDone
	spec.OnTrialDone = func(trialID int, res *trainer.Result) {
		ctrl.Finish(trialID, res)
		if prevDone != nil {
			prevDone(trialID, res)
		}
	}
	return p.Runner.RunJobCtx(ctx, spec)
}

// Bootstrap warm-starts the ground-truth database by profiling each given
// workload under every probe configuration for one epoch, at several batch
// sizes — the §7.2 "initial similarity model" campaign (which varies
// memory, cores AND batch size), scaled down. Varying the batch size
// matters: it widens each cluster's radius to cover the profile spread
// that real trials (whose hyperparameters the search varies) will exhibit.
func (p *PipeTune) Bootstrap(workloads []workload.Workload, seed uint64) error {
	if p.Runner == nil || p.Runner.Trainer == nil {
		return errors.New("core: PipeTune not wired")
	}
	for wi, w := range workloads {
		for bi, batch := range []int{32, 1024} {
			h := params.DefaultHyper()
			h.Epochs = 1
			h.BatchSize = batch
			var features []float64
			best := probeResult{}
			haveBest := false
			mean := 0.0
			for ci, sys := range p.Probes {
				res, err := p.Runner.Trainer.Run(w, h, sys, seed+uint64(wi*1000+bi*100+ci), nil)
				if err != nil {
					return fmt.Errorf("core: bootstrap %s at %v: %w", w.Name(), sys, err)
				}
				epoch := res.Epochs[len(res.Epochs)-1]
				m := probeResult{sys: sys, duration: epoch.Duration, energyJ: epoch.EnergyJ}
				if features == nil {
					features = epoch.Profile.Features()
				}
				mean += p.metricOf(m)
				if !haveBest || p.metricOf(m) < p.metricOf(best) {
					best = m
					haveBest = true
				}
			}
			if haveBest {
				mean /= float64(len(p.Probes))
				advantage := 1.0
				if mean > 0 {
					advantage = p.metricOf(best) / mean
				}
				if err := p.GT.Add(gt.Entry{Features: features, BestSys: best.sys, Metric: advantage}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (p *PipeTune) metricOf(m probeResult) float64 {
	if p.Optimize == MinimizeEnergy {
		return m.energyJ
	}
	return m.duration
}
