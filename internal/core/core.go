// Package core implements PipeTune itself — the paper's primary
// contribution (§5): pipelined tuning of system parameters inside each
// hyperparameter trial, at epoch granularity.
//
// Algorithm 1 of the paper maps onto this package as follows:
//
//	train(...)            -> tune.Runner executes the trial; the trainer
//	                         invokes the Controller at each epoch boundary
//	                         (the asynchronous tuneSystem call).
//	getProfile(job)       -> the trial's first-epoch 58-event PMU profile.
//	getSimilarity(profile)-> GroundTruth.Lookup: k-means over historical
//	                         profiles; a hit within the inertia-derived
//	                         radius returns that cluster's known-best
//	                         system configuration (§5.4, §5.6).
//	probing loop          -> on a miss, each subsequent epoch runs one
//	                         candidate configuration; the optimisation
//	                         function picks the best (O(n) in the number
//	                         of configurations, §5.2) and applies it for
//	                         the remaining epochs.
//
// Completed trials feed their profile and winning configuration back into
// the ground-truth database, which re-clusters — so later jobs with
// similar profiles skip probing entirely (§7.4's "unseen jobs" economy).
package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"pipetune/internal/kmeans"
	"pipetune/internal/params"
	"pipetune/internal/sched"
	"pipetune/internal/trainer"
	"pipetune/internal/tune"
	"pipetune/internal/workload"
)

// OptimizeFor selects the probing optimisation function (§5.2: "e.g.,
// shortest runtime, lowest energy consumption").
type OptimizeFor int

// Optimisation functions.
const (
	MinimizeDuration OptimizeFor = iota + 1
	MinimizeEnergy
)

// String implements fmt.Stringer.
func (o OptimizeFor) String() string {
	switch o {
	case MinimizeDuration:
		return "min-duration"
	case MinimizeEnergy:
		return "min-energy"
	default:
		return fmt.Sprintf("optimize(%d)", int(o))
	}
}

// Entry is one historical ground-truth record: the profile of a trial and
// the best system configuration discovered for it.
type Entry struct {
	Features []float64        `json:"features"` // log-scaled 58-event profile
	BestSys  params.SysConfig `json:"bestSys"`
	// Metric is the winner's *relative advantage*: the best configuration's
	// per-epoch value divided by the mean over all configurations measured
	// alongside it (dimensionless, lower = more dominant). Being relative
	// makes entries comparable across trials with different
	// hyperparameters, which raw durations are not.
	Metric float64 `json:"metric"`
}

// GroundTruthConfig tunes the similarity machinery.
type GroundTruthConfig struct {
	// KMeans is the clustering configuration; the paper fixes k=2 (one
	// cluster per workload family, §5.4).
	KMeans kmeans.Config
	// Threshold scales the cluster's RMS radius when deciding whether a
	// new profile is "similar enough" to reuse (§5.6).
	Threshold float64
	// MinEntries is the history size below which every lookup misses
	// (no reliable model yet).
	MinEntries int
	// Similarity overrides the technique (§5.4's pluggability); nil uses
	// k-means with the KMeans/Threshold settings above.
	Similarity Similarity
}

// DefaultGroundTruthConfig mirrors the paper's settings.
func DefaultGroundTruthConfig() GroundTruthConfig {
	return GroundTruthConfig{
		KMeans:     kmeans.DefaultConfig(),
		Threshold:  2.0,
		MinEntries: 4,
	}
}

// GroundTruth is the persistent similarity database (§5.4). It is safe for
// concurrent use.
type GroundTruth struct {
	mu        sync.Mutex
	cfg       GroundTruthConfig
	sim       Similarity
	fitted    bool
	entries   []Entry
	groupBest []params.SysConfig
	hits      int
	misses    int
	rev       uint64 // bumped on every mutation; lets callers skip no-op snapshots
}

// NewGroundTruth creates an empty database.
func NewGroundTruth(cfg GroundTruthConfig, seed uint64) *GroundTruth {
	sim := cfg.Similarity
	if sim == nil {
		sim = NewKMeansSimilarity(cfg.KMeans, cfg.Threshold, seed)
	}
	return &GroundTruth{cfg: cfg, sim: sim}
}

// SimilarityName reports the active technique.
func (g *GroundTruth) SimilarityName() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sim.Name()
}

// Len returns the number of stored entries.
func (g *GroundTruth) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.entries)
}

// Stats returns lookup hit/miss counters.
func (g *GroundTruth) Stats() (hits, misses int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.hits, g.misses
}

// Rev returns a revision counter that increases on every mutation (Add,
// Load). Persistence layers compare it against the revision of their last
// snapshot to skip writes when nothing changed.
func (g *GroundTruth) Rev() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.rev
}

// Add stores an entry and re-clusters (§5.6: probing data "is saved to be
// taken into account once re-clustering is applied").
func (g *GroundTruth) Add(e Entry) error {
	if len(e.Features) == 0 {
		return errors.New("core: entry without features")
	}
	if err := e.BestSys.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	cp := Entry{Features: append([]float64(nil), e.Features...), BestSys: e.BestSys, Metric: e.Metric}
	g.entries = append(g.entries, cp)
	g.rev++
	g.recluster()
	return nil
}

// recluster refits the similarity model and recomputes per-group best
// configurations. Callers must hold g.mu.
func (g *GroundTruth) recluster() {
	if len(g.entries) < g.cfg.MinEntries {
		g.fitted = false
		g.groupBest = nil
		return
	}
	points := make([][]float64, len(g.entries))
	for i, e := range g.entries {
		points[i] = e.Features
	}
	if err := g.sim.Fit(points); err != nil {
		g.fitted = false
		g.groupBest = nil
		return
	}
	g.fitted = true

	// Per group, the configuration that won most often among members
	// (ties broken towards the lower mean relative-advantage metric, then
	// lexicographically for determinism).
	g.groupBest = make([]params.SysConfig, g.sim.Groups())
	for c := range g.groupBest {
		type agg struct {
			sys    params.SysConfig
			count  int
			metric float64
		}
		byKey := make(map[string]*agg)
		for i, e := range g.entries {
			if g.sim.GroupOf(i) != c {
				continue
			}
			key := e.BestSys.String()
			a, ok := byKey[key]
			if !ok {
				a = &agg{sys: e.BestSys}
				byKey[key] = a
			}
			a.count++
			a.metric += e.Metric
		}
		keys := make([]string, 0, len(byKey))
		for k := range byKey {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		bestKey := ""
		for _, k := range keys {
			if bestKey == "" {
				bestKey = k
				continue
			}
			a, b := byKey[k], byKey[bestKey]
			// Prefer higher vote count, then lower mean metric.
			if a.count > b.count ||
				(a.count == b.count && a.metric/float64(a.count) < b.metric/float64(b.count)) {
				bestKey = k
			}
		}
		if bestKey != "" {
			g.groupBest[c] = byKey[bestKey].sys
		} else {
			g.groupBest[c] = params.DefaultSysConfig()
		}
	}
}

// Lookup returns the known-best configuration for a profile if the
// similarity function matches it confidently (§5.6: "the distance is
// compared against the model's inertia, to measure the reliability of the
// prediction").
func (g *GroundTruth) Lookup(features []float64) (params.SysConfig, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.fitted {
		g.misses++
		return params.SysConfig{}, false
	}
	group, ok := g.sim.Match(features)
	if !ok || group < 0 || group >= len(g.groupBest) {
		g.misses++
		return params.SysConfig{}, false
	}
	g.hits++
	return g.groupBest[group], true
}

// gtSnapshot is the JSON persistence format of the database.
type gtSnapshot struct {
	Entries []Entry `json:"entries"`
}

// Save persists the entries as JSON (the model is refit on Load).
func (g *GroundTruth) Save(w io.Writer) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return json.NewEncoder(w).Encode(gtSnapshot{Entries: g.entries})
}

// Load replaces the database contents and refits the model — the "warm
// start" path of §5.4 (the user "can point to a pre-trained similarity
// function").
func (g *GroundTruth) Load(r io.Reader) error {
	var snap gtSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("core: load ground truth: %w", err)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.entries = snap.Entries
	g.rev++
	g.recluster()
	return nil
}

// SaveFile persists the database to path atomically: the snapshot is
// written to a temporary file in the same directory, synced, and renamed
// over the target. A crash mid-write therefore never leaves a half-written
// snapshot at path — readers see either the old complete file or the new
// one. It returns the revision the snapshot captured.
func (g *GroundTruth) SaveFile(path string) (rev uint64, err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("core: save ground truth: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	// Marshal under the lock so the entries and the revision agree even
	// while concurrent jobs keep appending; the disk I/O happens outside
	// it so snapshots never stall running jobs' lookups.
	g.mu.Lock()
	rev = g.rev
	buf, encErr := json.Marshal(gtSnapshot{Entries: g.entries})
	g.mu.Unlock()
	if encErr != nil {
		err = fmt.Errorf("core: save ground truth: %w", encErr)
		return 0, err
	}
	if _, err = tmp.Write(append(buf, '\n')); err != nil {
		return 0, fmt.Errorf("core: save ground truth: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return 0, fmt.Errorf("core: save ground truth: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return 0, fmt.Errorf("core: save ground truth: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return 0, fmt.Errorf("core: save ground truth: %w", err)
	}
	return rev, nil
}

// LoadFile restores the database from a SaveFile snapshot. A missing file
// is not an error — the database simply stays empty (first boot of a
// service with a fresh state directory).
func (g *GroundTruth) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("core: load ground truth: %w", err)
	}
	defer f.Close()
	return g.Load(f)
}

// DefaultProbeConfigs returns the §5.6 probing grid over the §7.1.4 system
// ranges: cores × memory at power-of-two steps. Kept small because each
// probe consumes one epoch.
func DefaultProbeConfigs() []params.SysConfig {
	return []params.SysConfig{
		{Cores: 4, MemoryGB: 8},
		{Cores: 8, MemoryGB: 8},
		{Cores: 16, MemoryGB: 8},
		{Cores: 4, MemoryGB: 32},
		{Cores: 8, MemoryGB: 32},
		{Cores: 16, MemoryGB: 32},
	}
}

// trialPhase is the per-trial state machine of Algorithm 1.
type trialPhase int

const (
	phaseProfiling trialPhase = iota + 1
	phaseProbing
	phaseApplied
)

// probeResult is one epoch-level measurement of a configuration.
type probeResult struct {
	sys      params.SysConfig
	duration float64
	energyJ  float64
}

// trialState tracks one trial's pipelined tuning.
type trialState struct {
	phase     trialPhase
	features  []float64
	probeIdx  int
	measured  []probeResult
	applied   params.SysConfig
	fromGT    bool
	validated bool
	baseline  float64 // metric of the profiling epoch (on the start config)
	epochsRun int
}

// Controller coordinates pipelined system-parameter tuning for the trials
// of one or more HPT jobs. It implements the paper's tuneSystem (Algorithm
// 1, lines 6-17) as a trainer.EpochObserver per trial.
type Controller struct {
	GT       *GroundTruth
	Probes   []params.SysConfig
	Optimize OptimizeFor

	// MaxProbeEpochs bounds how many epochs a single trial may spend
	// probing (0 = no bound beyond the probe list length).
	MaxProbeEpochs int

	mu     sync.Mutex
	trials map[int]*trialState
}

// NewController creates a controller with the default probe grid.
func NewController(gt *GroundTruth) *Controller {
	return &Controller{
		GT:       gt,
		Probes:   DefaultProbeConfigs(),
		Optimize: MinimizeDuration,
		trials:   make(map[int]*trialState),
	}
}

// metric extracts the optimisation value from a measurement.
func (c *Controller) metric(p probeResult) float64 {
	if c.Optimize == MinimizeEnergy {
		return p.energyJ
	}
	return p.duration
}

// state returns (creating if needed) the per-trial state.
func (c *Controller) state(trialID int) *trialState {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.trials[trialID]
	if !ok {
		st = &trialState{phase: phaseProfiling}
		c.trials[trialID] = st
	}
	return st
}

// ObserverFor returns the epoch observer for one trial; pass this to
// tune.JobSpec.TrialObserver.
func (c *Controller) ObserverFor(trialID int) trainer.EpochObserver {
	return trainer.ObserverFunc(func(_ uint64, _ workload.Workload, _ params.Hyper, s trainer.EpochStats) *params.SysConfig {
		return c.onEpoch(trialID, s)
	})
}

// onEpoch advances the state machine. The returned configuration (if any)
// applies from the next epoch onward.
func (c *Controller) onEpoch(trialID int, s trainer.EpochStats) *params.SysConfig {
	st := c.state(trialID)
	c.mu.Lock()
	defer c.mu.Unlock()

	st.epochsRun++
	st.measured = append(st.measured, probeResult{sys: s.Sys, duration: s.Duration, energyJ: s.EnergyJ})

	switch st.phase {
	case phaseProfiling:
		// Line 7-8: profile the first epoch, query the similarity
		// function.
		st.features = s.Profile.Features()
		st.baseline = c.metric(st.measured[0])
		if cfg, ok := c.GT.Lookup(st.features); ok {
			// Line 9-10: within the confidence threshold — apply the
			// known-best configuration, no probing needed.
			st.phase = phaseApplied
			st.applied = cfg
			st.fromGT = true
			return &cfg
		}
		// Line 11-15: start probing.
		st.phase = phaseProbing
		st.probeIdx = 0
		if next := c.nextProbeLocked(st, s.Sys); next != nil {
			return next
		}
		// Nothing to probe: settle immediately.
		return c.settleLocked(st)
	case phaseProbing:
		if c.MaxProbeEpochs > 0 && st.epochsRun-1 >= c.MaxProbeEpochs {
			return c.settleLocked(st)
		}
		if next := c.nextProbeLocked(st, s.Sys); next != nil {
			return next
		}
		// Line 16-17: all probes measured — pick the best and apply it.
		return c.settleLocked(st)
	default:
		// Reliability guard on ground-truth reuse: the first epoch after
		// applying a cluster's configuration validates it against the
		// trial's own baseline. Cluster-level configurations are hyper-
		// parameter-agnostic, so a config that was best for the cluster's
		// typical trials can regress an atypical one (e.g. a much larger
		// batch size); in that case fall back to probing — the §5.6 rule
		// of distrusting low-reliability predictions, applied online.
		if st.fromGT && !st.validated {
			st.validated = true
			if c.metric(st.measured[len(st.measured)-1]) > st.baseline*1.10 {
				st.phase = phaseProbing
				st.fromGT = false
				if next := c.nextProbeLocked(st, s.Sys); next != nil {
					return next
				}
				return c.settleLocked(st)
			}
		}
		return nil
	}
}

// nextProbeLocked returns the next unmeasured probe configuration, skipping
// any equal to configurations already measured. Callers hold c.mu.
func (c *Controller) nextProbeLocked(st *trialState, current params.SysConfig) *params.SysConfig {
	for st.probeIdx < len(c.Probes) {
		cfg := c.Probes[st.probeIdx]
		st.probeIdx++
		seen := false
		for _, m := range st.measured {
			if m.sys == cfg {
				seen = true
				break
			}
		}
		if cfg == current || seen {
			continue
		}
		return &cfg
	}
	return nil
}

// settleLocked picks the best measured configuration ("find best config in
// m", Algorithm 1 line 16) and applies it. Callers hold c.mu.
func (c *Controller) settleLocked(st *trialState) *params.SysConfig {
	st.phase = phaseApplied
	best := st.measured[0]
	for _, m := range st.measured[1:] {
		if c.metric(m) < c.metric(best) {
			best = m
		}
	}
	st.applied = best.sys
	return &best.sys
}

// Finish must be called when a trial completes (wire it to
// tune.JobSpec.OnTrialDone). It feeds the trial's outcome into the
// ground-truth database and releases the per-trial state.
func (c *Controller) Finish(trialID int, _ *trainer.Result) {
	c.mu.Lock()
	st, ok := c.trials[trialID]
	if ok {
		delete(c.trials, trialID)
	}
	var entry *Entry
	if ok && st.features != nil && comparedConfigs(st.measured) >= 2 {
		// Only trials with comparative evidence (at least two distinct
		// configurations measured) contribute: a trial that only ever ran
		// the start configuration knows nothing about what is *best* and
		// would drown the database in "default is best" votes.
		best := st.measured[0]
		mean := 0.0
		for _, m := range st.measured {
			mean += c.metric(m)
			if c.metric(m) < c.metric(best) {
				best = m
			}
		}
		mean /= float64(len(st.measured))
		advantage := 1.0
		if mean > 0 {
			advantage = c.metric(best) / mean
		}
		entry = &Entry{Features: st.features, BestSys: best.sys, Metric: advantage}
	}
	c.mu.Unlock()
	if entry != nil {
		// Ground-truth updates only grow the database; errors here must
		// not fail the trial (degraded ground truth, not a broken job).
		_ = c.GT.Add(*entry)
	}
}

// comparedConfigs counts the distinct system configurations measured.
func comparedConfigs(measured []probeResult) int {
	seen := make(map[params.SysConfig]bool, len(measured))
	for _, m := range measured {
		seen[m.sys] = true
	}
	return len(seen)
}

// PipeTune wraps a tune.Runner with the pipelined system-tuning middleware.
// One PipeTune instance holds one persistent ground-truth database shared
// by every job it runs — the cross-job learning of §7.4.
type PipeTune struct {
	Runner   *tune.Runner
	GT       *GroundTruth
	Probes   []params.SysConfig
	Optimize OptimizeFor
	// Policy, when set, overrides the trial placement policy for PipeTune
	// jobs (FIFO, SJF or backfill from internal/sched). PipeTune trials
	// change their system configuration mid-flight, and the scheduler
	// re-negotiates each trial's cluster allocation at the matching epoch
	// boundary (§5.6 dynamic reconfiguration) — the policy decides which
	// waiting trial claims capacity those reconfigurations free.
	Policy sched.Policy
}

// New creates a PipeTune middleware with an empty ground-truth database.
func New(runner *tune.Runner, seed uint64) *PipeTune {
	return &PipeTune{
		Runner:   runner,
		GT:       NewGroundTruth(DefaultGroundTruthConfig(), seed),
		Probes:   DefaultProbeConfigs(),
		Optimize: MinimizeDuration,
	}
}

// RunJob executes an HPT job under PipeTune: the hyperparameter search is
// untouched (V1 semantics, accuracy objective preserved), while each
// trial's system parameters are tuned in the pipelined fashion of
// Algorithm 1.
func (p *PipeTune) RunJob(spec tune.JobSpec) (*tune.JobResult, error) {
	return p.RunJobCtx(context.Background(), spec)
}

// RunJobCtx is RunJob with cancellation, forwarded to the tuning event
// loop. A cancelled job contributes whatever completed trials it already
// fed to the ground-truth database (knowledge is kept; the job result is
// not).
func (p *PipeTune) RunJobCtx(ctx context.Context, spec tune.JobSpec) (*tune.JobResult, error) {
	if p.Runner == nil || p.GT == nil {
		return nil, errors.New("core: PipeTune not wired")
	}
	ctrl := NewController(p.GT)
	ctrl.Probes = p.Probes
	ctrl.Optimize = p.Optimize

	spec.Mode = tune.ModeV1 // hyper space only; system handled by the pipeline
	if p.Policy != nil {
		spec.Policy = p.Policy
	}
	spec.TrialObserver = ctrl.ObserverFor
	prevDone := spec.OnTrialDone
	spec.OnTrialDone = func(trialID int, res *trainer.Result) {
		ctrl.Finish(trialID, res)
		if prevDone != nil {
			prevDone(trialID, res)
		}
	}
	return p.Runner.RunJobCtx(ctx, spec)
}

// Bootstrap warm-starts the ground-truth database by profiling each given
// workload under every probe configuration for one epoch, at several batch
// sizes — the §7.2 "initial similarity model" campaign (which varies
// memory, cores AND batch size), scaled down. Varying the batch size
// matters: it widens each cluster's radius to cover the profile spread
// that real trials (whose hyperparameters the search varies) will exhibit.
func (p *PipeTune) Bootstrap(workloads []workload.Workload, seed uint64) error {
	if p.Runner == nil || p.Runner.Trainer == nil {
		return errors.New("core: PipeTune not wired")
	}
	for wi, w := range workloads {
		for bi, batch := range []int{32, 1024} {
			h := params.DefaultHyper()
			h.Epochs = 1
			h.BatchSize = batch
			var features []float64
			best := probeResult{}
			haveBest := false
			mean := 0.0
			for ci, sys := range p.Probes {
				res, err := p.Runner.Trainer.Run(w, h, sys, seed+uint64(wi*1000+bi*100+ci), nil)
				if err != nil {
					return fmt.Errorf("core: bootstrap %s at %v: %w", w.Name(), sys, err)
				}
				epoch := res.Epochs[len(res.Epochs)-1]
				m := probeResult{sys: sys, duration: epoch.Duration, energyJ: epoch.EnergyJ}
				if features == nil {
					features = epoch.Profile.Features()
				}
				mean += p.metricOf(m)
				if !haveBest || p.metricOf(m) < p.metricOf(best) {
					best = m
					haveBest = true
				}
			}
			if haveBest {
				mean /= float64(len(p.Probes))
				advantage := 1.0
				if mean > 0 {
					advantage = p.metricOf(best) / mean
				}
				if err := p.GT.Add(Entry{Features: features, BestSys: best.sys, Metric: advantage}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (p *PipeTune) metricOf(m probeResult) float64 {
	if p.Optimize == MinimizeEnergy {
		return m.energyJ
	}
	return m.duration
}
