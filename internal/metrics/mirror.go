package metrics

import (
	"strconv"
	"time"

	"pipetune/internal/tsdb"
)

// Mirror periodically writes the registry's aggregated series into a
// tsdb.DB, so range queries and the JSON persistence path work over
// operational telemetry exactly as they do over trial telemetry.
//
// Each family becomes one measurement (the family name); labels become
// tags; counters and gauges write a single "value" field, and
// distributions write count/sum/min/max plus p50/p95/p99 fields. Every
// tick writes the current aggregate, so the stored series is a
// step-sampled view of the live registry.
type Mirror struct {
	Registry *Registry
	DB       *tsdb.DB
	// Interval is the sampling cadence (default 10s).
	Interval time.Duration
	// MaxPoints bounds retained points per series; older points are
	// trimmed past it (default 4096, ~11h at the default cadence).
	// Zero keeps the default; negative disables trimming.
	MaxPoints int
	// Now overrides the timestamp source (tests).
	Now func() time.Time

	stop chan struct{}
	done chan struct{}
}

const (
	defaultMirrorInterval  = 10 * time.Second
	defaultMirrorMaxPoints = 4096
)

// Start launches the sampling loop. Stop must be called to end it.
func (m *Mirror) Start() {
	if m.Interval <= 0 {
		m.Interval = defaultMirrorInterval
	}
	if m.MaxPoints == 0 {
		m.MaxPoints = defaultMirrorMaxPoints
	}
	if m.Now == nil {
		m.Now = time.Now
	}
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	go func() {
		defer close(m.done)
		t := time.NewTicker(m.Interval)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				m.Sample()
			}
		}
	}()
}

// Stop ends the loop after writing one final sample, so the persisted
// database reflects the registry at shutdown.
func (m *Mirror) Stop() {
	if m.stop == nil {
		return
	}
	close(m.stop)
	<-m.done
	m.Sample()
}

// Sample writes one snapshot of every series into the database.
func (m *Mirror) Sample() {
	if m.Registry == nil || m.DB == nil {
		return
	}
	now := time.Now
	if m.Now != nil {
		now = m.Now
	}
	ts := float64(now().UnixNano()) / 1e9
	snap := m.Registry.Snapshot()
	for _, fam := range snap.Families {
		for _, s := range fam.Samples {
			fields := make(map[string]float64, 8)
			switch fam.Kind {
			case "summary":
				fields["count"] = float64(s.Count)
				fields["sum"] = s.Sum
				fields["min"] = s.Min
				fields["max"] = s.Max
				for q, v := range s.Quantiles {
					fields["p"+quantileSuffix(q)] = v
				}
			default:
				fields["value"] = s.Value
			}
			m.DB.Write(fam.Name, tsdb.Point{Time: ts, Tags: s.Labels, Fields: fields})
			if m.MaxPoints > 0 {
				m.DB.Trim(fam.Name, m.MaxPoints)
			}
		}
	}
}

// quantileSuffix turns "0.5" into "50", "0.95" into "95", "0.99" into
// "99" for field naming.
func quantileSuffix(q string) string {
	f, err := strconv.ParseFloat(q, 64)
	if err != nil {
		return q
	}
	return strconv.Itoa(int(f*100 + 0.5))
}
