package metrics

import (
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
	// Re-registration returns the same instrument.
	if c2 := r.Counter("test_ops_total", "ops"); c2.Value() != 42 {
		t.Fatalf("re-registered counter lost state")
	}
}

func TestCounterStripesMerge(t *testing.T) {
	// Hammer from many goroutines: every increment must land exactly
	// once regardless of which stripe the scheduler picks.
	r := NewRegistry()
	c := r.Counter("test_striped_total", "x")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range per {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("Value = %d, want %d", got, workers*per)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_depth", "depth")
	g.Set(5)
	g.Add(2.5)
	g.Add(-1.5)
	if got := g.Value(); got != 6 {
		t.Fatalf("Value = %v, want 6", got)
	}
}

func TestNilInstrumentsNoop(t *testing.T) {
	// Every instrument method must no-op on nil receivers — that is the
	// whole disable-metrics story.
	var (
		c *Counter
		g *Gauge
		d *Distribution
	)
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	d.Observe(1)
	d.Merge(DistSnapshot{Count: 1})
	if c.Value() != 0 || g.Value() != 0 || d.Count() != 0 || d.Sum() != 0 || d.Quantile(0.5) != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	var reg *Registry
	if reg.Counter("x", "y") != nil || reg.CounterVec("x", "y", "l").With("v") != nil {
		t.Fatal("nil registry must yield nil instruments")
	}
	if err := reg.WritePrometheus(nil); err != nil {
		t.Fatalf("nil registry exposition: %v", err)
	}
}

func TestDistributionQuantiles(t *testing.T) {
	r := NewRegistry()
	d := r.Distribution("test_latency_seconds", "latency")
	// 1..1000 ms.
	for i := 1; i <= 1000; i++ {
		d.Observe(float64(i) / 1000)
	}
	if d.Count() != 1000 {
		t.Fatalf("Count = %d", d.Count())
	}
	if got, want := d.Sum(), 500.5; math.Abs(got-want) > 1e-6 {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
	if d.Min() != 0.001 || d.Max() != 1.0 {
		t.Fatalf("Min/Max = %v/%v", d.Min(), d.Max())
	}
	// Quarter-octave buckets bound relative error by 2^(1/4)-1 ≈ 19%
	// worst case; the geometric midpoint halves that in expectation.
	for _, tc := range []struct{ q, want float64 }{{0.5, 0.5}, {0.95, 0.95}, {0.99, 0.99}} {
		got := d.Quantile(tc.q)
		if rel := math.Abs(got-tc.want) / tc.want; rel > 0.10 {
			t.Errorf("Quantile(%v) = %v, want %v ±10%% (rel err %.3f)", tc.q, got, tc.want, rel)
		}
	}
}

func TestDistributionSnapshotDeltaMerge(t *testing.T) {
	d := NewDistribution()
	for i := 1; i <= 100; i++ {
		d.Observe(float64(i))
	}
	prev := d.Snapshot()
	for i := 101; i <= 200; i++ {
		d.Observe(float64(i))
	}
	cur := d.Snapshot()
	delta := cur.Delta(prev)
	if delta.Count != 100 {
		t.Fatalf("delta Count = %d, want 100", delta.Count)
	}
	wantSum := 0.0
	for i := 101; i <= 200; i++ {
		wantSum += float64(i)
	}
	if math.Abs(delta.Sum-wantSum) > 1e-6 {
		t.Fatalf("delta Sum = %v, want %v", delta.Sum, wantSum)
	}

	// Merging the delta into a fresh distribution reproduces the second
	// hundred: same count, sum, and quantile estimates.
	m := NewDistribution()
	m.Merge(delta)
	if m.Count() != 100 || math.Abs(m.Sum()-wantSum) > 1e-6 {
		t.Fatalf("merged Count/Sum = %d/%v", m.Count(), m.Sum())
	}
	if q := m.Quantile(0.5); math.Abs(q-150)/150 > 0.15 {
		t.Fatalf("merged p50 = %v, want ≈150", q)
	}
}

func TestVecOverflowCardinality(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_tenant_total", "per tenant", "tenant")
	for i := 0; i < DefaultMaxCardinality+50; i++ {
		v.With(string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + itoa(i)).Inc()
	}
	ov := v.With("one-more-past-the-budget")
	if ov != v.With(OverflowLabel) {
		t.Fatal("past-budget label sets must route to the shared overflow series")
	}
	snap := r.Snapshot()
	if len(snap.Families) != 1 {
		t.Fatalf("families = %d", len(snap.Families))
	}
	if n := len(snap.Families[0].Samples); n > DefaultMaxCardinality+1 {
		t.Fatalf("series count %d exceeds budget %d+overflow", n, DefaultMaxCardinality)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestConflictingRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_conflict", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on kind conflict")
		}
	}()
	r.Gauge("test_conflict", "x")
}

// TestHotPathAllocs pins the zero-allocation contract of every
// per-event instrument operation (cached handles; With is explicitly
// not on the hot path).
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_allocs_total", "x")
	g := r.Gauge("test_allocs_gauge", "x")
	d := r.Distribution("test_allocs_seconds", "x")
	vc := r.CounterVec("test_allocs_vec_total", "x", "k").With("v")
	for name, fn := range map[string]func(){
		"Counter.Inc":          func() { c.Inc() },
		"Counter.Add":          func() { c.Add(3) },
		"Gauge.Add":            func() { g.Add(1) },
		"Gauge.Set":            func() { g.Set(2) },
		"Distribution.Observe": func() { d.Observe(0.123) },
		"VecChild.Inc":         func() { vc.Inc() },
	} {
		if avg := testing.AllocsPerRun(1000, fn); avg != 0 {
			t.Errorf("%s allocates %.1f/op, want 0", name, avg)
		}
	}
}

// TestDistributionChurn hammers one distribution from GOMAXPROCS
// writers while a scraper concurrently renders the exposition and takes
// snapshots — the -race CI job runs this to prove scrapes never tear
// the sketch. Totals are checked after the dust settles.
func TestDistributionChurn(t *testing.T) {
	r := NewRegistry()
	d := r.Distribution("test_churn_seconds", "churn")
	writers := runtime.GOMAXPROCS(0)
	const per = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var scr sync.WaitGroup
	scr.Add(1)
	go func() { // the scraper
		defer scr.Done()
		var sb strings.Builder
		for {
			select {
			case <-stop:
				return
			default:
			}
			sb.Reset()
			if err := r.WritePrometheus(&sb); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
			snap := d.Snapshot()
			var n uint64
			for _, b := range snap.Buckets {
				n += b.Count
			}
			if n != snap.Count {
				t.Errorf("snapshot bucket total %d != count %d", n, snap.Count)
				return
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			v := float64(seed + 1)
			for i := 0; i < per; i++ {
				d.Observe(v / 1000)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scr.Wait()
	if got := d.Count(); got != uint64(writers*per) {
		t.Fatalf("Count = %d, want %d", got, writers*per)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "x")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkDistributionObserve(b *testing.B) {
	d := NewRegistry().Distribution("bench_seconds", "x")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := 0.001
		for pb.Next() {
			d.Observe(v)
			v += 0.001
			if v > 10 {
				v = 0.001
			}
		}
	})
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 20; i++ {
		r.CounterVec("bench_fam_"+itoa(i)+"_total", "x", "k").With("v").Inc()
	}
	var sb strings.Builder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sb.Reset()
		_ = r.WritePrometheus(&sb)
	}
}
