package metrics

import (
	"math"
	"sync/atomic"
)

// Distribution state: a fixed log-spaced bucket sketch. Bucket bounds
// are quarter-powers of two — bucket i covers
// (2^(minExp+i/4), 2^(minExp+(i+1)/4)] — spanning 2^-30 (~1ns, as
// seconds) through 2^14 (~4.5h). Values below the range land in the
// first bucket, values above in the last. Quantiles report a bucket's
// geometric midpoint, so the relative error is bounded by half a
// bucket width: 2^(1/8)-1 ≈ 9%. Counts are mergeable across processes
// by bucket-wise addition, which is how worker-shipped sketches fold
// into the daemon's registry.
const (
	sketchMinExp  = -30
	sketchOctaves = 44
	sketchBuckets = sketchOctaves * 4 // 176
)

// sketchBounds[i] is the inclusive upper bound of bucket i.
var sketchBounds = func() [sketchBuckets]float64 {
	var b [sketchBuckets]float64
	for i := range b {
		b[i] = math.Pow(2, float64(sketchMinExp)+float64(i+1)/4)
	}
	return b
}()

// bucketIndex maps a value to its sketch bucket without calling Log:
// Frexp yields the octave, and two float compares locate the quarter
// within it.
func bucketIndex(v float64) int {
	if !(v > 0) { // zero, negative, NaN
		return 0
	}
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	// Quarter boundaries within the octave: 0.5*2^(q/4).
	var q int
	switch {
	case frac <= 0.5946035575013605: // 0.5 * 2^(1/4)
		q = 0
	case frac <= 0.7071067811865476: // 0.5 * 2^(2/4)
		q = 1
	case frac <= 0.8409152093229160: // 0.5 * 2^(3/4)
		q = 2
	default:
		q = 3
	}
	// frac*2^exp means the value sits in octave exp-1 (e.g. v=1.0 is
	// frac=0.5, exp=1, and belongs in the bucket bounded by 2^0).
	idx := (exp-1-sketchMinExp)*4 + q
	if idx < 0 {
		return 0
	}
	if idx >= sketchBuckets {
		return sketchBuckets - 1
	}
	return idx
}

// distStripe is one writer stripe: bucket counts plus running
// count/sum. Stripes are merged at read time.
type distStripe struct {
	counts [sketchBuckets]atomic.Uint64
	count  atomic.Uint64
	sumBit atomic.Uint64
}

func (s *distStripe) addSum(v float64) {
	for {
		old := s.sumBit.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if s.sumBit.CompareAndSwap(old, next) {
			return
		}
	}
}

// Distribution records observations into the sketch. Observe is
// lock-free and allocation-free; Quantile/Sum/Count/Max merge the
// stripes without blocking writers. Nil-safe like Counter.
type Distribution struct {
	stripes [nstripes]distStripe
	// minBit/maxBit track exact observed extremes (the sketch alone
	// would quantise them); maxInit latches whether any observation
	// happened so Min of an empty distribution reads 0.
	minBit  atomic.Uint64
	maxBit  atomic.Uint64
	nonzero atomic.Bool
}

// NewDistribution returns a standalone distribution, used both by
// registry families and by worker-local collectors that ship their
// sketches over the wire rather than exposing them.
func NewDistribution() *Distribution {
	d := &Distribution{}
	d.minBit.Store(math.Float64bits(math.Inf(1)))
	d.maxBit.Store(math.Float64bits(math.Inf(-1)))
	return d
}

// Observe records one value.
func (d *Distribution) Observe(v float64) {
	if d == nil {
		return
	}
	s := &d.stripes[stripe()]
	s.counts[bucketIndex(v)].Add(1)
	s.count.Add(1)
	s.addSum(v)
	d.nonzero.Store(true)
	for {
		old := d.minBit.Load()
		if v >= math.Float64frombits(old) || d.minBit.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := d.maxBit.Load()
		if v <= math.Float64frombits(old) || d.maxBit.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (d *Distribution) Count() uint64 {
	if d == nil {
		return 0
	}
	var n uint64
	for i := range d.stripes {
		n += d.stripes[i].count.Load()
	}
	return n
}

// Sum returns the sum of observed values.
func (d *Distribution) Sum() float64 {
	if d == nil {
		return 0
	}
	var s float64
	for i := range d.stripes {
		s += math.Float64frombits(d.stripes[i].sumBit.Load())
	}
	return s
}

// Min returns the smallest observed value (0 when empty).
func (d *Distribution) Min() float64 {
	if d == nil || !d.nonzero.Load() {
		return 0
	}
	return math.Float64frombits(d.minBit.Load())
}

// Max returns the largest observed value (0 when empty).
func (d *Distribution) Max() float64 {
	if d == nil || !d.nonzero.Load() {
		return 0
	}
	return math.Float64frombits(d.maxBit.Load())
}

// buckets merges the stripes into one count array, returning the
// total.
func (d *Distribution) buckets() (merged [sketchBuckets]uint64, total uint64) {
	for i := range d.stripes {
		s := &d.stripes[i]
		for b := range s.counts {
			if n := s.counts[b].Load(); n != 0 {
				merged[b] += n
				total += n
			}
		}
	}
	return merged, total
}

// Quantile estimates the q-quantile (q in [0,1]) from the sketch,
// clamped to the observed min/max. Returns 0 for an empty
// distribution.
func (d *Distribution) Quantile(q float64) float64 {
	if d == nil {
		return 0
	}
	merged, total := d.buckets()
	if total == 0 {
		return 0
	}
	return quantileFromBuckets(merged[:], total, q, d.Min(), d.Max())
}

// quantileFromBuckets walks merged bucket counts to the target rank
// and reports the bucket's geometric midpoint, clamped to [min, max].
func quantileFromBuckets(counts []uint64, total uint64, q float64, min, max float64) float64 {
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i, n := range counts {
		cum += n
		if cum >= rank {
			lo := 0.0
			if i > 0 {
				lo = sketchBounds[i-1]
			}
			hi := sketchBounds[i]
			v := math.Sqrt(lo * hi)
			if lo == 0 {
				v = hi / 2
			}
			if v < min {
				v = min
			}
			if v > max {
				v = max
			}
			return v
		}
	}
	return max
}

// BucketCount is one non-empty sketch bucket in a snapshot, keyed by
// bucket index. The wire carries only occupied buckets — sketches in
// practice touch a handful of octaves.
type BucketCount struct {
	Index int    `json:"i"`
	Count uint64 `json:"n"`
}

// DistSnapshot is a point-in-time copy of a distribution, the unit of
// cross-process merging: workers ship cumulative snapshots inside
// heartbeats, the daemon diffs consecutive snapshots and merges the
// delta into its own registry.
type DistSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     float64       `json:"sum"`
	Min     float64       `json:"min,omitempty"`
	Max     float64       `json:"max,omitempty"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot captures the distribution's current state.
func (d *Distribution) Snapshot() DistSnapshot {
	if d == nil {
		return DistSnapshot{}
	}
	merged, total := d.buckets()
	snap := DistSnapshot{Count: total, Sum: d.Sum(), Min: d.Min(), Max: d.Max()}
	for i, n := range merged {
		if n != 0 {
			snap.Buckets = append(snap.Buckets, BucketCount{Index: i, Count: n})
		}
	}
	return snap
}

// Quantile estimates the q-quantile of a snapshot (used for
// snapshots merged or shipped independently of a live Distribution).
func (s DistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	var counts [sketchBuckets]uint64
	for _, b := range s.Buckets {
		if b.Index >= 0 && b.Index < sketchBuckets {
			counts[b.Index] += b.Count
		}
	}
	return quantileFromBuckets(counts[:], s.Count, q, s.Min, s.Max)
}

// Delta returns the per-bucket difference cur - prev, clamped at zero
// bucket-wise, for folding a worker's cumulative snapshot stream into
// daemon counters. Snapshots from one worker registration are ordered
// and monotone, so the clamp only matters on a malformed stream.
func (s DistSnapshot) Delta(prev DistSnapshot) DistSnapshot {
	prevCounts := make(map[int]uint64, len(prev.Buckets))
	for _, b := range prev.Buckets {
		prevCounts[b.Index] = b.Count
	}
	d := DistSnapshot{Min: s.Min, Max: s.Max}
	if s.Sum > prev.Sum {
		d.Sum = s.Sum - prev.Sum
	}
	for _, b := range s.Buckets {
		if n := b.Count - prevCounts[b.Index]; n > 0 && b.Count > prevCounts[b.Index] {
			d.Buckets = append(d.Buckets, BucketCount{Index: b.Index, Count: n})
			d.Count += n
		}
	}
	return d
}

// Merge folds a snapshot (typically a delta) into the distribution.
// Counts land in stripe 0; min/max widen to cover the snapshot's.
func (d *Distribution) Merge(s DistSnapshot) {
	if d == nil || s.Count == 0 {
		return
	}
	st := &d.stripes[0]
	for _, b := range s.Buckets {
		if b.Index >= 0 && b.Index < sketchBuckets {
			st.counts[b.Index].Add(b.Count)
		}
	}
	st.count.Add(s.Count)
	st.addSum(s.Sum)
	d.nonzero.Store(true)
	for {
		old := d.minBit.Load()
		if s.Min >= math.Float64frombits(old) || d.minBit.CompareAndSwap(old, math.Float64bits(s.Min)) {
			break
		}
	}
	for {
		old := d.maxBit.Load()
		if s.Max <= math.Float64frombits(old) || d.maxBit.CompareAndSwap(old, math.Float64bits(s.Max)) {
			break
		}
	}
}
