package metrics

import (
	"testing"
	"time"

	"pipetune/internal/tsdb"
)

func TestMirrorSample(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("test_ops_total", "ops", "tenant").With("acme").Add(5)
	d := r.Distribution("test_wait_seconds", "wait")
	for i := 1; i <= 10; i++ {
		d.Observe(float64(i))
	}
	db := tsdb.New()
	now := time.Unix(100, 0)
	m := &Mirror{Registry: r, DB: db, Now: func() time.Time { return now }}
	m.Sample()

	pts := db.Select("test_ops_total", tsdb.Query{To: -1})
	if len(pts) != 1 {
		t.Fatalf("counter points = %d, want 1", len(pts))
	}
	if pts[0].Fields["value"] != 5 || pts[0].Tags["tenant"] != "acme" {
		t.Fatalf("counter point = %+v", pts[0])
	}
	if pts[0].Time != 100 {
		t.Fatalf("timestamp = %v, want 100", pts[0].Time)
	}

	wp := db.Select("test_wait_seconds", tsdb.Query{To: -1})
	if len(wp) != 1 {
		t.Fatalf("summary points = %d, want 1", len(wp))
	}
	f := wp[0].Fields
	if f["count"] != 10 || f["sum"] != 55 || f["min"] != 1 || f["max"] != 10 {
		t.Fatalf("summary fields = %v", f)
	}
	for _, k := range []string{"p50", "p95", "p99"} {
		if _, ok := f[k]; !ok {
			t.Fatalf("summary fields missing %s: %v", k, f)
		}
	}

	// Consecutive samples append; MaxPoints trims to a window.
	m.MaxPoints = 3
	for i := 0; i < 5; i++ {
		now = now.Add(time.Second)
		m.Sample()
	}
	if n := db.Len("test_ops_total"); n != 3 {
		t.Fatalf("after trim Len = %d, want 3", n)
	}
}

func TestMirrorStartStop(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_ticks_total", "x").Inc()
	db := tsdb.New()
	m := &Mirror{Registry: r, DB: db, Interval: time.Millisecond}
	m.Start()
	deadline := time.After(2 * time.Second)
	for db.Len("test_ticks_total") == 0 {
		select {
		case <-deadline:
			t.Fatal("mirror never sampled")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	m.Stop()
	n := db.Len("test_ticks_total")
	if n == 0 {
		t.Fatal("no points after Stop")
	}
	time.Sleep(5 * time.Millisecond)
	if db.Len("test_ticks_total") != n {
		t.Fatal("mirror kept sampling after Stop")
	}
}
