package metrics

import (
	"fmt"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// buildTestRegistry populates one registry with every instrument kind,
// including label values that need text-format escaping.
func buildTestRegistry() *Registry {
	r := NewRegistry()
	r.Counter("test_a_ops_total", "Plain counter.").Add(7)
	cv := r.CounterVec("test_b_reqs_total", "Labelled counter.", "tenant", "state")
	cv.With("acme", "done").Add(3)
	cv.With("acme", "failed").Inc()
	cv.With(`we"ird\ten\nant`, "done").Inc()
	r.Gauge("test_c_depth", "Plain gauge.").Set(4.5)
	r.GaugeVec("test_d_load", "Labelled gauge.", "host").With("h1").Set(-2)
	d := r.Distribution("test_e_wait_seconds", "Plain summary.")
	for i := 1; i <= 50; i++ {
		d.Observe(float64(i) / 100)
	}
	r.DistributionVec("test_f_lat_seconds", "Labelled summary.", "wire").With("binary").Observe(0.25)
	return r
}

// lintExposition is a promlint-style validator over the text format:
// HELP/TYPE ordering, name/label syntax, escaping, sortedness, summary
// completeness, and sane values. It returns the parsed per-series
// values so callers can assert monotonicity across scrapes.
func lintExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	values := map[string]float64{}
	type familyDecl struct {
		help, typ bool
		kind      string
	}
	fams := map[string]*familyDecl{}
	var famOrder []string
	var lastSeries, lastName string
	var lastFamily string
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		lineNo := ln + 1
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: HELP without text: %q", lineNo, line)
			}
			if fams[name] != nil {
				t.Fatalf("line %d: duplicate HELP for %s", lineNo, name)
			}
			fams[name] = &familyDecl{help: true}
			famOrder = append(famOrder, name)
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, ok := strings.Cut(rest, " ")
			f := fams[name]
			if !ok || f == nil || !f.help || f.typ {
				t.Fatalf("line %d: TYPE must follow its HELP exactly once: %q", lineNo, line)
			}
			switch kind {
			case "counter", "gauge", "summary":
			default:
				t.Fatalf("line %d: unknown TYPE %q", lineNo, kind)
			}
			f.typ = true
			f.kind = kind
			lastFamily = name
			lastSeries = ""
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", lineNo, line)
		}

		// A sample line: name{labels} value
		name := line
		if i := strings.IndexByte(line, ' '); i >= 0 {
			name = line[:i]
		}
		labels := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
			j := strings.LastIndexByte(line, '}')
			if j < i {
				t.Fatalf("line %d: unterminated label set: %q", lineNo, line)
			}
			labels = line[i+1 : j]
			line = name + line[j+1:]
		}
		fields := strings.Fields(line[len(name):])
		if len(fields) != 1 {
			t.Fatalf("line %d: want exactly one value, got %q", lineNo, fields)
		}
		val, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", lineNo, fields[0], err)
		}

		base := name
		f := fams[base]
		isSum := strings.HasSuffix(name, "_sum")
		isCount := strings.HasSuffix(name, "_count")
		if f == nil && isSum {
			base = strings.TrimSuffix(name, "_sum")
			f = fams[base]
		} else if f == nil && isCount {
			base = strings.TrimSuffix(name, "_count")
			f = fams[base]
		}
		if f == nil || !f.typ {
			t.Fatalf("line %d: series %s has no preceding HELP/TYPE", lineNo, name)
		}
		if base != lastFamily {
			t.Fatalf("line %d: series %s interleaved outside its family block (%s)", lineNo, name, lastFamily)
		}
		hasQuantile := false
		if labels != "" {
			for _, pair := range splitLabelPairs(t, lineNo, labels) {
				k, v, ok := strings.Cut(pair, "=")
				if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
					t.Fatalf("line %d: malformed label pair %q", lineNo, pair)
				}
				for _, r := range k {
					if !(r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9') {
						t.Fatalf("line %d: bad label name %q", lineNo, k)
					}
				}
				inner := v[1 : len(v)-1]
				for i := 0; i < len(inner); i++ {
					switch inner[i] {
					case '"', '\n':
						t.Fatalf("line %d: unescaped %q in label value %q", lineNo, inner[i], inner)
					case '\\':
						if i+1 >= len(inner) || (inner[i+1] != '\\' && inner[i+1] != '"' && inner[i+1] != 'n') {
							t.Fatalf("line %d: dangling escape in label value %q", lineNo, inner)
						}
						i++
					}
				}
				if k == "quantile" {
					hasQuantile = true
				}
			}
		}
		switch f.kind {
		case "counter":
			if !strings.HasSuffix(base, "_total") {
				t.Errorf("line %d: counter family %s should end in _total", lineNo, base)
			}
			if val < 0 || val != float64(uint64(val)) {
				t.Errorf("line %d: counter value %v not a non-negative integer", lineNo, val)
			}
		case "summary":
			if !isSum && !isCount && !hasQuantile {
				t.Errorf("line %d: summary series %s lacks a quantile label", lineNo, name)
			}
			if isCount && (val < 0 || val != float64(uint64(val))) {
				t.Errorf("line %d: summary _count %v not a non-negative integer", lineNo, val)
			}
		}
		key := name + "{" + labels + "}"
		if _, dup := values[key]; dup {
			t.Fatalf("line %d: duplicate series %s", lineNo, key)
		}
		values[key] = val
		// Series within one family come out sorted by label values (the
		// summary expansion interleaves names, so compare full keys only
		// between samples of the same name).
		if name == lastName && key < lastSeries {
			t.Errorf("line %d: series %s out of order after %s", lineNo, key, lastSeries)
		}
		lastName, lastSeries = name, key
	}
	for name, f := range fams {
		if !f.typ {
			t.Errorf("family %s has HELP but no TYPE", name)
		}
	}
	if !sort.StringsAreSorted(famOrder) {
		t.Errorf("families not sorted: %v", famOrder)
	}
	return values
}

// splitLabelPairs splits k1="v1",k2="v2" respecting escaped quotes.
func splitLabelPairs(t *testing.T, line int, s string) []string {
	t.Helper()
	var out []string
	start, inQ := 0, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQ {
				i++
			}
		case '"':
			inQ = !inQ
		case ',':
			if !inQ {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if inQ {
		t.Fatalf("line %d: unterminated quote in labels %q", line, s)
	}
	return append(out, s[start:])
}

func TestPrometheusExpositionLint(t *testing.T) {
	r := buildTestRegistry()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	first := lintExposition(t, sb.String())
	if len(first) == 0 {
		t.Fatal("empty exposition")
	}

	// Counters must be monotonic between scrapes.
	r.Counter("test_a_ops_total", "Plain counter.").Inc()
	r.CounterVec("test_b_reqs_total", "Labelled counter.", "tenant", "state").With("acme", "done").Add(2)
	sb.Reset()
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	second := lintExposition(t, sb.String())
	for series, v1 := range first {
		if !strings.Contains(series, "_total") {
			continue
		}
		if v2, ok := second[series]; !ok || v2 < v1 {
			t.Errorf("counter %s went backwards: %v -> %v (present=%v)", series, v1, v2, ok)
		}
	}
}

func TestHandlerContentType(t *testing.T) {
	r := buildTestRegistry()
	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "# TYPE test_a_ops_total counter") {
		t.Fatalf("body missing TYPE line:\n%s", rec.Body.String())
	}
	lintExposition(t, rec.Body.String())
}

func TestSnapshotTyped(t *testing.T) {
	r := buildTestRegistry()
	snap := r.Snapshot()
	byName := map[string]Family{}
	for _, f := range snap.Families {
		byName[f.Name] = f
	}
	if f := byName["test_b_reqs_total"]; f.Kind != "counter" || len(f.Samples) != 3 {
		t.Fatalf("test_b_reqs_total: kind=%s samples=%d", f.Kind, len(f.Samples))
	}
	f, ok := byName["test_e_wait_seconds"]
	if !ok || f.Kind != "summary" {
		t.Fatalf("missing summary family")
	}
	s := f.Samples[0]
	if s.Count != 50 || s.Min != 0.01 || s.Max != 0.5 {
		t.Fatalf("summary sample = %+v", s)
	}
	if _, ok := s.Quantiles["0.95"]; !ok {
		t.Fatalf("missing p95 in %v", s.Quantiles)
	}
	// The escaped-label series must round-trip as the raw (unescaped)
	// label value in the typed form.
	found := false
	for _, s := range byName["test_b_reqs_total"].Samples {
		if s.Labels["tenant"] == `we"ird\ten\nant` {
			found = true
		}
	}
	if !found {
		t.Fatal("typed snapshot lost the raw label value")
	}
}

func ExampleRegistry_WritePrometheus() {
	r := NewRegistry()
	r.Counter("example_jobs_total", "Jobs.").Add(2)
	var sb strings.Builder
	_ = r.WritePrometheus(&sb)
	fmt.Print(sb.String())
	// Output:
	// # HELP example_jobs_total Jobs.
	// # TYPE example_jobs_total counter
	// example_jobs_total 2
}
