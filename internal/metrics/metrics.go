// Package metrics is pipetune's operational telemetry plane: a
// sharded, lock-cheap registry of counters, gauges and distributions
// that every layer of the daemon (admission, dispatch, ground-truth
// store, execution plane) instruments through.
//
// Design constraints, in order:
//
//   - Hot paths allocate nothing. Counter.Add, Gauge.Set and
//     Distribution.Observe are a handful of atomic operations on
//     pre-resolved handles; callers resolve label sets once (per
//     tenant, per worker) and cache the returned instrument, never
//     calling Vec.With per event.
//   - Writers never share a cache line when they can avoid it: each
//     instrument stripes its state across padded cells indexed by a
//     per-thread random source, and readers merge the stripes. A
//     scrape is wait-free with respect to writers.
//   - Distributions retain no samples. Observations land in a fixed
//     log-spaced bucket sketch (quarter-powers-of-two bounds) that is
//     mergeable across processes by bucket-wise addition — workers
//     ship their sketches inside heartbeats and the daemon folds them
//     in. Quantile estimates carry a bounded relative error of
//     2^(1/8)-1 ≈ 9%.
//   - Label cardinality is budgeted. A Vec admits at most a fixed
//     number of distinct label sets; once the budget is spent, new
//     label sets collapse into a single overflow series whose label
//     values are all OverflowLabel. A tenant flood degrades precision,
//     never memory.
//
// The registry renders Prometheus text exposition (WritePrometheus), a
// typed JSON snapshot (Snapshot), and mirrors into internal/tsdb on a
// cadence (Mirror) so range queries work over operational telemetry
// exactly as they do over trial telemetry.
package metrics

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// OverflowLabel is the label value that replaces every label of a
// series admitted past a Vec's cardinality budget. All overflowed
// series of one family collapse into this single rollup.
const OverflowLabel = "__other__"

// DefaultMaxCardinality is the per-Vec budget of distinct label sets a
// registry admits before routing new sets to the overflow series.
const DefaultMaxCardinality = 256

// nstripes is the number of padded cells each instrument spreads its
// writes over. Kept small: reads merge all stripes, and the value only
// needs to exceed the handful of cores contending on one instrument.
const nstripes = 8

const stripeMask = nstripes - 1

// stripe picks a cell for this write. math/rand/v2's top-level source
// is per-thread and allocation-free, so concurrent writers scatter
// across cells without coordinating.
func stripe() int { return int(rand.Uint32() & stripeMask) }

// cell is one padded counter stripe; the padding keeps neighbouring
// stripes out of each other's cache line.
type cell struct {
	n atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing uint64. All methods are safe
// on a nil receiver (no-ops / zero), so an uninstrumented component
// can hold nil handles and pay only a predictable branch.
type Counter struct {
	cells [nstripes]cell
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Calling with a negative delta is impossible by type;
// counters only go up.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.cells[stripe()].n.Add(n)
}

// Value merges the stripes.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var sum uint64
	for i := range c.cells {
		sum += c.cells[i].n.Load()
	}
	return sum
}

// Gauge is an instantaneous float64 value (queue depth, subscriber
// count). Set and Add are atomic; Add is a CAS loop so concurrent
// increments never lose updates. Nil-safe like Counter.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value loads the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Kind discriminates instrument families.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindDistribution
)

// String renders the Prometheus TYPE keyword for the kind
// (distributions expose as summaries: pre-aggregated quantiles).
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "summary"
	}
}

// Registry is a namespace of instrument families. Lookups take a
// read lock on the family index; the instruments themselves are pure
// atomics. One registry per daemon; tests create their own so nothing
// is process-global.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	maxCard  int
}

// NewRegistry returns an empty registry with the default cardinality
// budget.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family), maxCard: DefaultMaxCardinality}
}

// family is one named metric: help text, kind, label schema and its
// children (one child per admitted label set; the "" key is the
// unlabelled singleton of plain instruments).
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string

	mu       sync.RWMutex
	children map[string]*child
	overflow *child // set once the cardinality budget is spent
	maxCard  int
}

// child is one series: its label values plus exactly one live
// instrument matching the family kind.
type child struct {
	values []string
	ctr    *Counter
	gauge  *Gauge
	dist   *Distribution
}

// labelKey joins label values into a map key. 0x1f (unit separator)
// cannot collide with printable label values in practice and keeps the
// key allocation off any hot path — With is called once per label set.
func labelKey(values []string) string {
	return strings.Join(values, "\x1f")
}

func (r *Registry) family(name, help string, kind Kind, labels []string) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		f = r.families[name]
		if f == nil {
			f = &family{
				name:     name,
				help:     help,
				kind:     kind,
				labels:   labels,
				children: make(map[string]*child),
				maxCard:  r.maxCard,
			}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("metrics: %q re-registered with conflicting kind or labels", name))
	}
	return f
}

// with returns the child for the given label values, creating it if
// the cardinality budget allows and routing to the overflow series
// otherwise.
func (f *family) with(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %q expects %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.RLock()
	c := f.children[key]
	f.mu.RUnlock()
	if c != nil {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c = f.children[key]; c != nil {
		return c
	}
	if len(f.labels) > 0 && len(f.children) >= f.maxCard {
		if f.overflow == nil {
			ov := make([]string, len(f.labels))
			for i := range ov {
				ov[i] = OverflowLabel
			}
			f.overflow = f.newChild(ov)
			f.children[labelKey(ov)] = f.overflow
		}
		return f.overflow
	}
	c = f.newChild(append([]string(nil), values...))
	f.children[key] = c
	return c
}

func (f *family) newChild(values []string) *child {
	c := &child{values: values}
	switch f.kind {
	case KindCounter:
		c.ctr = new(Counter)
	case KindGauge:
		c.gauge = new(Gauge)
	default:
		c.dist = NewDistribution()
	}
	return c
}

// sortedChildren returns the family's series ordered by label values,
// for deterministic exposition.
func (f *family) sortedChildren() []*child {
	f.mu.RLock()
	out := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		out = append(out, c)
	}
	f.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].values, out[j].values
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// Counter registers (or fetches) an unlabelled counter. Nil-safe: a
// nil registry yields a nil instrument whose methods no-op.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.family(name, help, KindCounter, nil).with(nil).ctr
}

// Gauge registers (or fetches) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.family(name, help, KindGauge, nil).with(nil).gauge
}

// Distribution registers (or fetches) an unlabelled distribution.
func (r *Registry) Distribution(name, help string) *Distribution {
	if r == nil {
		return nil
	}
	return r.family(name, help, KindDistribution, nil).with(nil).dist
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.family(name, help, KindCounter, labels)}
}

// With resolves one series. Resolution takes the family lock — cache
// the returned handle rather than calling With per event.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.with(values).ctr
}

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ f *family }

// GaugeVec registers a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.family(name, help, KindGauge, labels)}
}

// With resolves one series; see CounterVec.With.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.with(values).gauge
}

// DistributionVec is a distribution family keyed by label values.
type DistributionVec struct{ f *family }

// DistributionVec registers a labelled distribution family.
func (r *Registry) DistributionVec(name, help string, labels ...string) *DistributionVec {
	if r == nil {
		return nil
	}
	return &DistributionVec{f: r.family(name, help, KindDistribution, labels)}
}

// With resolves one series; see CounterVec.With.
func (v *DistributionVec) With(values ...string) *Distribution {
	if v == nil {
		return nil
	}
	return v.f.with(values).dist
}

// sortedFamilies returns families ordered by name.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
