package metrics

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// quantiles exported for every distribution, as Prometheus summary
// series.
var exportQuantiles = []float64{0.5, 0.95, 0.99}

// escapeLabelValue applies Prometheus text-format escaping: backslash,
// double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes HELP text: backslash and newline (quotes are
// legal there).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// writeLabels renders {k="v",...}; extra appends one synthetic pair
// (the summary quantile label).
func writeLabels(w *bufio.Writer, names, values []string, extraName, extraValue string) {
	if len(names) == 0 && extraName == "" {
		return
	}
	w.WriteByte('{')
	sep := false
	for i, n := range names {
		if sep {
			w.WriteByte(',')
		}
		sep = true
		w.WriteString(n)
		w.WriteString(`="`)
		w.WriteString(escapeLabelValue(values[i]))
		w.WriteByte('"')
	}
	if extraName != "" {
		if sep {
			w.WriteByte(',')
		}
		w.WriteString(extraName)
		w.WriteString(`="`)
		w.WriteString(extraValue)
		w.WriteByte('"')
	}
	w.WriteByte('}')
}

func writeFloat(w *bufio.Writer, v float64) {
	w.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4): families sorted by name, each with HELP and
// TYPE lines; series within a family sorted by label values;
// distributions as summaries with quantile/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, c := range f.sortedChildren() {
			switch f.kind {
			case KindCounter:
				bw.WriteString(f.name)
				writeLabels(bw, f.labels, c.values, "", "")
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatUint(c.ctr.Value(), 10))
				bw.WriteByte('\n')
			case KindGauge:
				bw.WriteString(f.name)
				writeLabels(bw, f.labels, c.values, "", "")
				bw.WriteByte(' ')
				writeFloat(bw, c.gauge.Value())
				bw.WriteByte('\n')
			default:
				for _, q := range exportQuantiles {
					bw.WriteString(f.name)
					writeLabels(bw, f.labels, c.values, "quantile", strconv.FormatFloat(q, 'g', -1, 64))
					bw.WriteByte(' ')
					writeFloat(bw, c.dist.Quantile(q))
					bw.WriteByte('\n')
				}
				bw.WriteString(f.name)
				bw.WriteString("_sum")
				writeLabels(bw, f.labels, c.values, "", "")
				bw.WriteByte(' ')
				writeFloat(bw, c.dist.Sum())
				bw.WriteByte('\n')
				bw.WriteString(f.name)
				bw.WriteString("_count")
				writeLabels(bw, f.labels, c.values, "", "")
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatUint(c.dist.Count(), 10))
				bw.WriteByte('\n')
			}
		}
	}
	return bw.Flush()
}

// Handler serves the text exposition at GET.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Sample is one series in a typed snapshot. Counters and gauges carry
// Value; distributions carry Count/Sum/Min/Max plus point-in-time
// quantile estimates.
type Sample struct {
	Labels    map[string]string  `json:"labels,omitempty"`
	Value     float64            `json:"value"`
	Count     uint64             `json:"count,omitempty"`
	Sum       float64            `json:"sum,omitempty"`
	Min       float64            `json:"min,omitempty"`
	Max       float64            `json:"max,omitempty"`
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
}

// Family is one named metric in a typed snapshot.
type Family struct {
	Name    string   `json:"name"`
	Help    string   `json:"help"`
	Kind    string   `json:"kind"` // "counter", "gauge" or "summary"
	Samples []Sample `json:"samples"`
}

// RegistrySnapshot is the typed JSON form of the whole registry,
// served at GET /v1/metrics and re-exported by package api.
type RegistrySnapshot struct {
	Families []Family `json:"families"`
}

// Snapshot captures every family and series. Families and series come
// out in exposition order (sorted), so consecutive snapshots diff
// cleanly.
func (r *Registry) Snapshot() RegistrySnapshot {
	var snap RegistrySnapshot
	if r == nil {
		return snap
	}
	for _, f := range r.sortedFamilies() {
		fam := Family{Name: f.name, Help: f.help, Kind: f.kind.String()}
		for _, c := range f.sortedChildren() {
			s := Sample{}
			if len(f.labels) > 0 {
				s.Labels = make(map[string]string, len(f.labels))
				for i, n := range f.labels {
					s.Labels[n] = c.values[i]
				}
			}
			switch f.kind {
			case KindCounter:
				s.Value = float64(c.ctr.Value())
			case KindGauge:
				s.Value = c.gauge.Value()
			default:
				s.Count = c.dist.Count()
				s.Sum = c.dist.Sum()
				s.Min = c.dist.Min()
				s.Max = c.dist.Max()
				s.Quantiles = make(map[string]float64, len(exportQuantiles))
				for _, q := range exportQuantiles {
					s.Quantiles[strconv.FormatFloat(q, 'g', -1, 64)] = c.dist.Quantile(q)
				}
				s.Value = s.Sum
			}
			fam.Samples = append(fam.Samples, s)
		}
		snap.Families = append(snap.Families, fam)
	}
	return snap
}
