package tsdb

import (
	"bytes"
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestWriteAndSelect(t *testing.T) {
	db := New()
	for i := 0; i < 5; i++ {
		err := db.Write("power", Point{
			Time:   float64(i),
			Tags:   map[string]string{"node": "n0"},
			Fields: map[string]float64{"watts": 100 + float64(i)},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	pts := db.Select("power", Query{From: 1, To: 3})
	if len(pts) != 3 {
		t.Fatalf("selected %d points, want 3", len(pts))
	}
	for i, p := range pts {
		if p.Time != float64(i+1) {
			t.Fatalf("point %d at t=%v, want %v", i, p.Time, float64(i+1))
		}
	}
}

func TestWriteValidation(t *testing.T) {
	db := New()
	if err := db.Write("", Point{Fields: map[string]float64{"x": 1}}); err == nil {
		t.Fatal("empty measurement accepted")
	}
	if err := db.Write("m", Point{}); err == nil {
		t.Fatal("fieldless point accepted")
	}
}

func TestTagFiltering(t *testing.T) {
	db := New()
	for _, node := range []string{"n0", "n1"} {
		if err := db.Write("power", Point{
			Time:   1,
			Tags:   map[string]string{"node": node},
			Fields: map[string]float64{"watts": 50},
		}); err != nil {
			t.Fatal(err)
		}
	}
	pts := db.Select("power", Query{To: -1, Tags: map[string]string{"node": "n1"}})
	if len(pts) != 1 || pts[0].Tags["node"] != "n1" {
		t.Fatalf("tag filter returned %v", pts)
	}
	none := db.Select("power", Query{To: -1, Tags: map[string]string{"node": "nope"}})
	if len(none) != 0 {
		t.Fatalf("non-matching tag returned %d points", len(none))
	}
}

func TestUnboundedTo(t *testing.T) {
	db := New()
	for i := 0; i < 3; i++ {
		if err := db.Write("m", Point{Time: float64(i * 100), Fields: map[string]float64{"v": 1}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(db.Select("m", Query{To: -1})); got != 3 {
		t.Fatalf("unbounded query returned %d, want 3", got)
	}
	if got := len(db.Select("m", Query{To: 0})); got != 1 {
		t.Fatalf("To=0 query returned %d, want 1", got)
	}
}

func TestMeanField(t *testing.T) {
	db := New()
	for i, w := range []float64{90, 100, 110} {
		if err := db.Write("power", Point{Time: float64(i), Fields: map[string]float64{"watts": w}}); err != nil {
			t.Fatal(err)
		}
	}
	mean, err := db.MeanField("power", "watts", Query{To: -1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-100) > 1e-12 {
		t.Fatalf("mean = %v, want 100", mean)
	}
	if _, err := db.MeanField("power", "absent", Query{To: -1}); err != ErrNoPoints {
		t.Fatalf("missing field error = %v, want ErrNoPoints", err)
	}
	if _, err := db.MeanField("nope", "watts", Query{To: -1}); err != ErrNoPoints {
		t.Fatalf("missing measurement error = %v, want ErrNoPoints", err)
	}
}

func TestFieldSeriesOrdered(t *testing.T) {
	db := New()
	// Deliberately out of order.
	for _, tv := range [][2]float64{{3, 30}, {1, 10}, {2, 20}} {
		if err := db.Write("m", Point{Time: tv[0], Fields: map[string]float64{"v": tv[1]}}); err != nil {
			t.Fatal(err)
		}
	}
	times, values := db.FieldSeries("m", "v", Query{To: -1})
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("times not sorted: %v", times)
		}
	}
	if values[0] != 10 || values[2] != 30 {
		t.Fatalf("values misordered: %v", values)
	}
}

func TestPointsAreCopied(t *testing.T) {
	db := New()
	fields := map[string]float64{"v": 1}
	if err := db.Write("m", Point{Time: 1, Fields: fields}); err != nil {
		t.Fatal(err)
	}
	fields["v"] = 999 // caller reuses buffer
	pts := db.Select("m", Query{To: -1})
	if pts[0].Fields["v"] != 1 {
		t.Fatal("store aliased the caller's field map")
	}
	pts[0].Fields["v"] = 777 // mutate the result
	again := db.Select("m", Query{To: -1})
	if again[0].Fields["v"] != 1 {
		t.Fatal("query result aliased the store")
	}
}

func TestMeasurementsSorted(t *testing.T) {
	db := New()
	for _, m := range []string{"zeta", "alpha", "mid"} {
		if err := db.Write(m, Point{Fields: map[string]float64{"v": 1}}); err != nil {
			t.Fatal(err)
		}
	}
	got := db.Measurements()
	if len(got) != 3 || got[0] != "alpha" || got[2] != "zeta" {
		t.Fatalf("Measurements = %v", got)
	}
	if db.Len("alpha") != 1 || db.Len("nope") != 0 {
		t.Fatal("Len wrong")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := New()
	if err := db.Write("power", Point{
		Time:   5,
		Tags:   map[string]string{"node": "n2"},
		Fields: map[string]float64{"watts": 123},
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := New()
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	pts := restored.Select("power", Query{To: -1})
	if len(pts) != 1 || pts[0].Fields["watts"] != 123 || pts[0].Tags["node"] != "n2" {
		t.Fatalf("round trip lost data: %v", pts)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	db := New()
	if err := db.Load(bytes.NewBufferString("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestConcurrentWritesAndReads(t *testing.T) {
	db := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = db.Write("m", Point{
					Time:   float64(g*100 + i),
					Fields: map[string]float64{"v": float64(i)},
				})
				_, _ = db.MeanField("m", "v", Query{To: -1})
			}
		}(g)
	}
	wg.Wait()
	if db.Len("m") != 800 {
		t.Fatalf("Len = %d, want 800", db.Len("m"))
	}
}

// Property: MeanField over everything equals sum/count of written values.
func TestQuickMeanMatches(t *testing.T) {
	f := func(raw []float64) bool {
		db := New()
		sum, n := 0.0, 0
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				continue
			}
			if err := db.Write("m", Point{Time: float64(i), Fields: map[string]float64{"v": v}}); err != nil {
				return false
			}
			sum += v
			n++
		}
		mean, err := db.MeanField("m", "v", Query{To: -1})
		if n == 0 {
			return err == ErrNoPoints
		}
		return err == nil && math.Abs(mean-sum/float64(n)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrim(t *testing.T) {
	db := New()
	for i := 0; i < 100; i++ {
		_ = db.Write("m", Point{Time: float64(i), Fields: map[string]float64{"v": 1}})
	}
	db.Trim("m", 10)
	if db.Len("m") != 10 {
		t.Fatalf("Len = %d, want 10", db.Len("m"))
	}
	// The newest points survive.
	pts := db.Select("m", Query{To: -1})
	if pts[0].Time != 90 || pts[len(pts)-1].Time != 99 {
		t.Fatalf("kept window [%v,%v], want [90,99]", pts[0].Time, pts[len(pts)-1].Time)
	}
	// No-ops: already under budget, negative keep, missing measurement.
	db.Trim("m", 50)
	db.Trim("m", -1)
	db.Trim("absent", 5)
	if db.Len("m") != 10 {
		t.Fatalf("Len after no-op trims = %d", db.Len("m"))
	}
}

// TestSaveDuringWrites runs Save concurrently with a write storm (plus a
// Trim) — under -race this proves the encoder runs outside the lock
// against pinned, immutable points, and every produced snapshot must
// decode cleanly into a fresh DB.
func TestSaveDuringWrites(t *testing.T) {
	db := New()
	_ = db.Write("m", Point{Time: 0, Fields: map[string]float64{"v": 0}})
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_ = db.Write("m", Point{Time: float64(g*1_000_000 + i), Fields: map[string]float64{"v": float64(i)}})
				if i%64 == 0 {
					db.Trim("m", 512)
				}
			}
		}(g)
	}
	for i := 0; i < 20; i++ {
		var buf bytes.Buffer
		if err := db.Save(&buf); err != nil {
			t.Fatalf("Save: %v", err)
		}
		var back DB
		if err := (&back).Load(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("snapshot %d does not round-trip: %v", i, err)
		}
	}
	close(stop)
	writers.Wait()
}
