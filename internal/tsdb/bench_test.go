package tsdb

import (
	"strconv"
	"testing"
)

func BenchmarkWrite(b *testing.B) {
	db := New()
	tags := map[string]string{"node": "n0", "trial": "7"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Write("power", Point{
			Time:   float64(i),
			Tags:   tags,
			Fields: map[string]float64{"watts": 100},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMeanFieldOver10k(b *testing.B) {
	db := New()
	for i := 0; i < 10000; i++ {
		if err := db.Write("power", Point{
			Time:   float64(i),
			Tags:   map[string]string{"trial": strconv.Itoa(i % 16)},
			Fields: map[string]float64{"watts": float64(90 + i%20)},
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.MeanField("power", "watts", Query{From: 1000, To: 9000}); err != nil {
			b.Fatal(err)
		}
	}
}
