// Package tsdb is the storage backend substrate: an in-memory time-series
// database standing in for the InfluxDB 1.7 instance of §6. It stores
// tagged, timestamped field sets per measurement, answers range/tag queries
// and per-window aggregations (the harness queries per-epoch averages of
// power and PMU metrics), and persists to JSON.
//
// The database is safe for concurrent use; trials write from worker
// goroutines while the controller reads.
package tsdb

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Point is one observation: a virtual timestamp (seconds), tag set and
// field values — the InfluxDB data model.
type Point struct {
	Time   float64            `json:"time"`
	Tags   map[string]string  `json:"tags,omitempty"`
	Fields map[string]float64 `json:"fields"`
}

// Query selects points from one measurement. Zero values mean "no
// constraint" except To, where a negative value means unbounded.
type Query struct {
	From float64           // inclusive lower time bound
	To   float64           // inclusive upper time bound; negative = unbounded
	Tags map[string]string // all listed tags must match exactly
}

// DB is the in-memory time-series store.
type DB struct {
	mu     sync.RWMutex
	series map[string][]Point
}

// New returns an empty database.
func New() *DB {
	return &DB{series: make(map[string][]Point)}
}

// ErrNoPoints is returned by aggregations that matched nothing.
var ErrNoPoints = errors.New("tsdb: no points matched")

// Write appends one point to a measurement. Points must carry at least one
// field; times may arrive out of order (queries sort on demand).
func (db *DB) Write(measurement string, p Point) error {
	if measurement == "" {
		return errors.New("tsdb: empty measurement name")
	}
	if len(p.Fields) == 0 {
		return fmt.Errorf("tsdb: point at t=%v has no fields", p.Time)
	}
	// Deep-copy maps so callers can reuse their buffers.
	cp := Point{Time: p.Time, Fields: make(map[string]float64, len(p.Fields))}
	for k, v := range p.Fields {
		cp.Fields[k] = v
	}
	if len(p.Tags) > 0 {
		cp.Tags = make(map[string]string, len(p.Tags))
		for k, v := range p.Tags {
			cp.Tags[k] = v
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.series[measurement] = append(db.series[measurement], cp)
	return nil
}

// Measurements lists measurement names in sorted order.
func (db *DB) Measurements() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.series))
	for name := range db.series {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len returns the point count of a measurement.
func (db *DB) Len(measurement string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.series[measurement])
}

func matches(p Point, q Query) bool {
	if p.Time < q.From {
		return false
	}
	if q.To >= 0 && p.Time > q.To {
		return false
	}
	for k, v := range q.Tags {
		if p.Tags[k] != v {
			return false
		}
	}
	return true
}

// Select returns the matching points of a measurement in time order.
// The returned points are copies; mutating them does not affect the store.
func (db *DB) Select(measurement string, q Query) []Point {
	db.mu.RLock()
	pts := db.series[measurement]
	out := make([]Point, 0, len(pts))
	for _, p := range pts {
		if matches(p, q) {
			cp := Point{Time: p.Time, Fields: make(map[string]float64, len(p.Fields))}
			for k, v := range p.Fields {
				cp.Fields[k] = v
			}
			if len(p.Tags) > 0 {
				cp.Tags = make(map[string]string, len(p.Tags))
				for k, v := range p.Tags {
					cp.Tags[k] = v
				}
			}
			out = append(out, cp)
		}
	}
	db.mu.RUnlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// MeanField averages one field over the matching points — the query the
// profiler issues per epoch window (§5.3 stores per-epoch averages).
func (db *DB) MeanField(measurement, field string, q Query) (float64, error) {
	pts := db.Select(measurement, q)
	sum, n := 0.0, 0
	for _, p := range pts {
		if v, ok := p.Fields[field]; ok {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0, ErrNoPoints
	}
	return sum / float64(n), nil
}

// FieldSeries extracts (time, value) pairs of one field in time order.
func (db *DB) FieldSeries(measurement, field string, q Query) (times, values []float64) {
	pts := db.Select(measurement, q)
	for _, p := range pts {
		if v, ok := p.Fields[field]; ok {
			times = append(times, p.Time)
			values = append(values, v)
		}
	}
	return times, values
}

// Trim drops a measurement's oldest points (by insertion order) until
// at most keep remain. The metrics mirror uses it to bound retained
// operational telemetry; trial telemetry is typically left untrimmed.
func (db *DB) Trim(measurement string, keep int) {
	if keep < 0 {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	pts := db.series[measurement]
	if len(pts) <= keep {
		return
	}
	// Copy into a fresh slice so the dropped points' backing array is
	// released rather than pinned by a re-slice.
	kept := make([]Point, keep)
	copy(kept, pts[len(pts)-keep:])
	db.series[measurement] = kept
}

// snapshot is the JSON persistence format.
type snapshot struct {
	Series map[string][]Point `json:"series"`
}

// Save writes the full database as JSON. The series index is
// snapshotted under the read lock and encoded outside it, so writers
// never stall for the duration of the encode: slice headers pin the
// points present at snapshot time (existing points are immutable —
// Write deep-copies and only ever appends), and concurrent appends
// land beyond every pinned header's length.
func (db *DB) Save(w io.Writer) error {
	db.mu.RLock()
	cp := make(map[string][]Point, len(db.series))
	for name, pts := range db.series {
		cp[name] = pts
	}
	db.mu.RUnlock()
	enc := json.NewEncoder(w)
	return enc.Encode(snapshot{Series: cp})
}

// Load replaces the database contents with a previously saved snapshot.
func (db *DB) Load(r io.Reader) error {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("tsdb: load: %w", err)
	}
	if snap.Series == nil {
		snap.Series = make(map[string][]Point)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.series = snap.Series
	return nil
}
