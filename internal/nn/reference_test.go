package nn

// The pre-refactor naive layer implementations, kept verbatim (modulo
// ref* renames and the slice-of-slices batch type they used) as the
// executable specification of the blocked kernels. Every kernel result —
// forward logits, training losses, evolved weights, dropout RNG streams —
// must match these reference implementations bit for bit, at every
// parallelism degree: the trial prefix cache, the binary delta codec and
// spot salvage all assume a trial's floats are a pure function of its
// inputs. The parity tests below exercise odd shapes (dims not a multiple
// of the unroll/block widths, batch of 1) and parallelism 1/2/8.

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"pipetune/internal/dataset"
	"pipetune/internal/workload"
	"pipetune/internal/xrand"
)

type refBatch = [][]float64

type refLayer interface {
	Forward(x refBatch, train bool) refBatch
	Backward(grad refBatch) refBatch
	Update(lr float64)
	ParamCount() int
}

type refDense struct {
	In, Out int
	w       []float64
	b       []float64
	x       refBatch
	gw      []float64
	gb      []float64
}

func newRefDense(in, out int, r *xrand.Source) *refDense {
	d := &refDense{
		In: in, Out: out,
		w:  make([]float64, in*out),
		b:  make([]float64, out),
		gw: make([]float64, in*out),
		gb: make([]float64, out),
	}
	limit := math.Sqrt(6.0 / float64(in))
	for i := range d.w {
		d.w[i] = r.Range(-limit, limit)
	}
	return d
}

func (d *refDense) Forward(x refBatch, _ bool) refBatch {
	d.x = x
	out := make(refBatch, len(x))
	for s, row := range x {
		o := make([]float64, d.Out)
		copy(o, d.b)
		for i, xi := range row {
			if xi == 0 {
				continue
			}
			wRow := d.w[i*d.Out : (i+1)*d.Out]
			for j, wij := range wRow {
				o[j] += xi * wij
			}
		}
		out[s] = o
	}
	return out
}

func (d *refDense) Backward(grad refBatch) refBatch {
	for i := range d.gw {
		d.gw[i] = 0
	}
	for j := range d.gb {
		d.gb[j] = 0
	}
	dx := make(refBatch, len(grad))
	for s, g := range grad {
		row := d.x[s]
		dxRow := make([]float64, d.In)
		for i, xi := range row {
			wRow := d.w[i*d.Out : (i+1)*d.Out]
			gwRow := d.gw[i*d.Out : (i+1)*d.Out]
			acc := 0.0
			for j, gj := range g {
				gwRow[j] += xi * gj
				acc += wRow[j] * gj
			}
			dxRow[i] = acc
		}
		for j, gj := range g {
			d.gb[j] += gj
		}
		dx[s] = dxRow
	}
	return dx
}

func (d *refDense) Update(lr float64) {
	for i, g := range d.gw {
		d.w[i] -= lr * g
	}
	for j, g := range d.gb {
		d.b[j] -= lr * g
	}
}

func (d *refDense) ParamCount() int { return d.In*d.Out + d.Out }

type refReLU struct {
	mask []bool
	cols int
}

func (a *refReLU) Forward(x refBatch, _ bool) refBatch {
	if len(x) > 0 {
		a.cols = len(x[0])
	}
	if need := len(x) * a.cols; cap(a.mask) < need {
		a.mask = make([]bool, need)
	} else {
		a.mask = a.mask[:need]
	}
	out := make(refBatch, len(x))
	for s, row := range x {
		o := make([]float64, len(row))
		for i, v := range row {
			if v > 0 {
				o[i] = v
				a.mask[s*a.cols+i] = true
			} else {
				a.mask[s*a.cols+i] = false
			}
		}
		out[s] = o
	}
	return out
}

func (a *refReLU) Backward(grad refBatch) refBatch {
	out := make(refBatch, len(grad))
	for s, row := range grad {
		o := make([]float64, len(row))
		for i, v := range row {
			if a.mask[s*a.cols+i] {
				o[i] = v
			}
		}
		out[s] = o
	}
	return out
}

func (a *refReLU) Update(float64) {}

func (a *refReLU) ParamCount() int { return 0 }

type refTanh struct {
	y refBatch
}

func (a *refTanh) Forward(x refBatch, _ bool) refBatch {
	out := make(refBatch, len(x))
	for s, row := range x {
		o := make([]float64, len(row))
		for i, v := range row {
			o[i] = math.Tanh(v)
		}
		out[s] = o
	}
	a.y = out
	return out
}

func (a *refTanh) Backward(grad refBatch) refBatch {
	out := make(refBatch, len(grad))
	for s, row := range grad {
		o := make([]float64, len(row))
		for i, v := range row {
			y := a.y[s][i]
			o[i] = v * (1 - y*y)
		}
		out[s] = o
	}
	return out
}

func (a *refTanh) Update(float64) {}

func (a *refTanh) ParamCount() int { return 0 }

type refDropout struct {
	Rate float64
	r    *xrand.Source
	mask refBatch
}

func newRefDropout(rate float64, r *xrand.Source) *refDropout {
	return &refDropout{Rate: rate, r: r}
}

func (d *refDropout) Forward(x refBatch, train bool) refBatch {
	if !train || d.Rate <= 0 {
		d.mask = nil
		return x
	}
	keep := 1 - d.Rate
	d.mask = make(refBatch, len(x))
	out := make(refBatch, len(x))
	for s, row := range x {
		m := make([]float64, len(row))
		o := make([]float64, len(row))
		for i, v := range row {
			if d.r.Float64() < keep {
				m[i] = 1 / keep
				o[i] = v / keep
			}
		}
		d.mask[s] = m
		out[s] = o
	}
	return out
}

func (d *refDropout) Backward(grad refBatch) refBatch {
	if d.mask == nil {
		return grad
	}
	out := make(refBatch, len(grad))
	for s, row := range grad {
		o := make([]float64, len(row))
		for i, v := range row {
			o[i] = v * d.mask[s][i]
		}
		out[s] = o
	}
	return out
}

func (d *refDropout) Update(float64) {}

func (d *refDropout) ParamCount() int { return 0 }

type refNetwork struct {
	layers []refLayer
}

func (n *refNetwork) Forward(x refBatch, train bool) refBatch {
	for _, l := range n.layers {
		x = l.Forward(x, train)
	}
	return x
}

func refSoftmaxXE(logits refBatch, labels []int) (loss float64, grad refBatch) {
	grad = make(refBatch, len(logits))
	for s, row := range logits {
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		probs := make([]float64, len(row))
		for i, v := range row {
			probs[i] = math.Exp(v - maxV)
			sum += probs[i]
		}
		for i := range probs {
			probs[i] /= sum
		}
		p := probs[labels[s]]
		if p < 1e-12 {
			p = 1e-12
		}
		loss += -math.Log(p)
		g := probs
		g[labels[s]] -= 1
		inv := 1 / float64(len(logits))
		for i := range g {
			g[i] *= inv
		}
		grad[s] = g
	}
	loss /= float64(len(logits))
	return loss, grad
}

func (n *refNetwork) TrainBatch(x refBatch, labels []int, lr float64) (float64, error) {
	logits := n.Forward(x, true)
	loss, grad := refSoftmaxXE(logits, labels)
	for i := len(n.layers) - 1; i >= 0; i-- {
		grad = n.layers[i].Backward(grad)
	}
	for _, l := range n.layers {
		l.Update(lr)
	}
	return loss, nil
}

func (n *refNetwork) TrainEpoch(set *dataset.Set, batchSize int, lr float64, r *xrand.Source) (float64, error) {
	perm := r.Perm(set.Len())
	total, batches := 0.0, 0
	for _, idx := range dataset.Batches(set.Len(), batchSize, perm) {
		x := make(refBatch, len(idx))
		labels := make([]int, len(idx))
		for i, sIdx := range idx {
			x[i] = set.Samples[sIdx].Features
			labels[i] = set.Samples[sIdx].Label
		}
		loss, err := n.TrainBatch(x, labels, lr)
		if err != nil {
			return 0, err
		}
		total += loss
		batches++
	}
	return total / float64(batches), nil
}

func (n *refNetwork) Evaluate(set *dataset.Set) (accuracy, loss float64) {
	const chunk = 256
	correct := 0
	totalLoss := 0.0
	for start := 0; start < set.Len(); start += chunk {
		end := start + chunk
		if end > set.Len() {
			end = set.Len()
		}
		x := make(refBatch, end-start)
		labels := make([]int, end-start)
		for i := start; i < end; i++ {
			x[i-start] = set.Samples[i].Features
			labels[i-start] = set.Samples[i].Label
		}
		logits := n.Forward(x, false)
		l, _ := refSoftmaxXE(logits, labels)
		totalLoss += l * float64(end-start)
		for s, row := range logits {
			best := 0
			for i, v := range row {
				if v > row[best] {
					best = i
				}
			}
			if best == labels[s] {
				correct++
			}
		}
	}
	return float64(correct) / float64(set.Len()), totalLoss / float64(set.Len())
}

// refCaptureState mirrors Network.CaptureState for the reference stack,
// byte for byte, so checkpoint compatibility of the kernels can be
// asserted on the serialized form directly.
func (n *refNetwork) CaptureState(buf []byte) []byte {
	buf = append(buf, stateVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(n.layers)))
	for _, l := range n.layers {
		switch l := l.(type) {
		case *refDense:
			buf = append(buf, stateDense)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(l.w)))
			for _, v := range l.w {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
			}
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(l.b)))
			for _, v := range l.b {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
			}
		case *refDropout:
			buf = append(buf, stateDropout)
			s := l.r.State()
			for _, v := range s {
				buf = binary.LittleEndian.AppendUint64(buf, v)
			}
		default:
			buf = append(buf, stateNoParam)
		}
	}
	return buf
}

// --- parity harness -------------------------------------------------------

// layerSpec describes one layer of a paired reference/kernel stack.
type layerSpec struct {
	kind    string // "dense", "relu", "tanh", "dropout"
	in, out int
	rate    float64
}

// buildPair constructs the reference and kernel stacks from two
// identically seeded RNGs, so initial weights and dropout streams match
// bit for bit.
func buildPair(seed uint64, specs []layerSpec) (*refNetwork, *Network) {
	rRef, rNew := xrand.New(seed), xrand.New(seed)
	var refLayers []refLayer
	var newLayers []Layer
	for _, sp := range specs {
		switch sp.kind {
		case "dense":
			refLayers = append(refLayers, newRefDense(sp.in, sp.out, rRef))
			newLayers = append(newLayers, NewDense(sp.in, sp.out, rNew))
		case "relu":
			refLayers = append(refLayers, &refReLU{})
			newLayers = append(newLayers, &ReLU{})
		case "tanh":
			refLayers = append(refLayers, &refTanh{})
			newLayers = append(newLayers, &Tanh{})
		case "dropout":
			refLayers = append(refLayers, newRefDropout(sp.rate, rRef.Split()))
			newLayers = append(newLayers, NewDropout(sp.rate, rNew.Split()))
		default:
			panic("unknown layer kind " + sp.kind)
		}
	}
	return &refNetwork{layers: refLayers}, NewNetwork(newLayers...)
}

// randomBatch draws a dense batch with a sprinkle of exact zeros (the
// forward kernel's sparse skip path) from r.
func randomBatch(r *xrand.Source, rows, cols int) refBatch {
	x := make(refBatch, rows)
	for s := range x {
		row := make([]float64, cols)
		for i := range row {
			if r.Float64() < 0.2 {
				row[i] = 0
			} else {
				row[i] = r.Range(-2, 2)
			}
		}
		x[s] = row
	}
	return x
}

func randomLabels(r *xrand.Source, rows, classes int) []int {
	labels := make([]int, rows)
	for i := range labels {
		labels[i] = r.Intn(classes)
	}
	return labels
}

// parityShapes exercises the blocked kernels' edge tiles: dims that are
// not multiples of the 4-wide unroll or the 16-row sample block, batch of
// one, and a wide layer that overflows L1 the way the CNN embedding does.
var parityShapes = []struct {
	name  string
	rows  int
	specs []layerSpec
}{
	{"odd-dims", 5, []layerSpec{
		{kind: "dense", in: 7, out: 13}, {kind: "relu"},
		{kind: "dropout", rate: 0.3},
		{kind: "dense", in: 13, out: 3},
	}},
	{"batch-of-1", 1, []layerSpec{
		{kind: "dense", in: 9, out: 6}, {kind: "tanh"},
		{kind: "dense", in: 6, out: 4},
	}},
	{"block-multiples", 32, []layerSpec{
		{kind: "dense", in: 64, out: 48}, {kind: "relu"},
		{kind: "dropout", rate: 0.5},
		{kind: "dense", in: 48, out: 10},
	}},
	{"unroll-tail", 17, []layerSpec{
		{kind: "dense", in: 10, out: 5}, {kind: "relu"},
		{kind: "dense", in: 5, out: 2},
	}},
	{"wide", 33, []layerSpec{
		{kind: "dense", in: 128, out: 301}, {kind: "tanh"},
		{kind: "dense", in: 301, out: 20},
	}},
}

var parityDegrees = []int{1, 2, 8}

func TestKernelForwardParity(t *testing.T) {
	for _, sh := range parityShapes {
		for _, p := range parityDegrees {
			ref, net := buildPair(11, sh.specs)
			net.SetParallelism(p)
			x := randomBatch(xrand.New(99), sh.rows, sh.specs[0].in)
			want := ref.Forward(x, false)
			got := net.Forward(FromRows(x), false)
			for s := range want {
				for j, w := range want[s] {
					if g := got.Row(s)[j]; g != w {
						t.Fatalf("%s p=%d logits[%d][%d] = %v, want %v", sh.name, p, s, j, g, w)
					}
				}
			}
		}
	}
}

func TestKernelTrainingParity(t *testing.T) {
	for _, sh := range parityShapes {
		for _, p := range parityDegrees {
			ref, net := buildPair(23, sh.specs)
			net.SetParallelism(p)
			data := xrand.New(7)
			classes := sh.specs[len(sh.specs)-1].out
			for step := 0; step < 8; step++ {
				x := randomBatch(data, sh.rows, sh.specs[0].in)
				labels := randomLabels(data, sh.rows, classes)
				want, _ := ref.TrainBatch(x, labels, 0.05)
				got, err := net.TrainBatch(FromRows(x), labels, 0.05)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("%s p=%d step %d loss = %v, want %v (bitwise)", sh.name, p, step, got, want)
				}
			}
			wantState := ref.CaptureState(nil)
			gotState := net.CaptureState(nil)
			if !bytes.Equal(wantState, gotState) {
				t.Fatalf("%s p=%d: trained state diverged from reference", sh.name, p)
			}
			if StateDigest(wantState) != StateDigest(gotState) {
				t.Fatalf("%s p=%d: state digests differ", sh.name, p)
			}
		}
	}
}

// TestKernelEpochParity pins the full train-epoch/evaluate pipeline —
// shuffling, gathering, chunked evaluation, argmax — against the
// reference at every parallelism degree, on an odd-sized set so the last
// batch and last eval chunk are short.
func TestKernelEpochParity(t *testing.T) {
	w := workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}
	train, test, err := dataset.Generate(w, 3, dataset.Config{TrainSize: 403, TestSize: 301})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range parityDegrees {
		specs := []layerSpec{
			{kind: "dense", in: train.Dim, out: 48}, {kind: "relu"},
			{kind: "dropout", rate: 0.25},
			{kind: "dense", in: 48, out: 24}, {kind: "relu"},
			{kind: "dense", in: 24, out: train.NumClasses},
		}
		ref, net := buildPair(5, specs)
		net.SetParallelism(p)
		shRef, shNew := xrand.New(77), xrand.New(77)
		for e := 0; e < 3; e++ {
			want, err := ref.TrainEpoch(train, 32, 0.05, shRef)
			if err != nil {
				t.Fatal(err)
			}
			got, err := net.TrainEpoch(train, 32, 0.05, shNew)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("p=%d epoch %d loss = %v, want %v (bitwise)", p, e, got, want)
			}
		}
		wantAcc, wantLoss := ref.Evaluate(test)
		gotAcc, gotLoss, err := net.Evaluate(test)
		if err != nil {
			t.Fatal(err)
		}
		if gotAcc != wantAcc || gotLoss != wantLoss {
			t.Fatalf("p=%d eval = (%v, %v), want (%v, %v)", p, gotAcc, gotLoss, wantAcc, wantLoss)
		}
		if !bytes.Equal(ref.CaptureState(nil), net.CaptureState(nil)) {
			t.Fatalf("p=%d: epoch-trained state diverged from reference", p)
		}
	}
}

// TestParallelismDoesNotChangeResults is the degree-invariance half of
// the claim: the same seed at different degrees must evolve the same
// bits, not just agree with the reference.
func TestParallelismDoesNotChangeResults(t *testing.T) {
	specs := []layerSpec{
		{kind: "dense", in: 19, out: 11}, {kind: "relu"},
		{kind: "dropout", rate: 0.4},
		{kind: "dense", in: 11, out: 5},
	}
	var states [][]byte
	for _, p := range []int{1, 2, 3, 8} {
		_, net := buildPair(31, specs)
		net.SetParallelism(p)
		data := xrand.New(13)
		for step := 0; step < 6; step++ {
			x := randomBatch(data, 21, 19)
			labels := randomLabels(data, 21, 5)
			if _, err := net.TrainBatch(FromRows(x), labels, 0.1); err != nil {
				t.Fatal(err)
			}
		}
		states = append(states, net.CaptureState(nil))
	}
	for i := 1; i < len(states); i++ {
		if !bytes.Equal(states[0], states[i]) {
			t.Fatalf("parallelism degree changed trained state bits (degree set %d)", i)
		}
	}
}

// TestEmptyBatchThenNonEmpty pins the fix for the old stale-ReLU-columns
// edge case: an empty batch through Forward must not poison a later
// backward pass.
func TestEmptyBatchThenNonEmpty(t *testing.T) {
	_, net := buildPair(3, []layerSpec{
		{kind: "dense", in: 4, out: 6}, {kind: "relu"},
		{kind: "dense", in: 6, out: 3},
	})
	empty := &Batch{}
	net.Forward(empty, false) // must not panic or corrupt layer scratch
	x := FromRows(refBatch{{1, -2, 3, 0.5}, {0, 1, -1, 2}})
	if _, err := net.TrainBatch(x, []int{0, 2}, 0.1); err != nil {
		t.Fatal(err)
	}
}

// TestAxpyMatchesGeneric pins the packed asm kernels (amd64) bit-for-bit
// against the portable loop across lengths that hit every vector-width
// tail, including exact zeros, ±0 behaviour and denormal-scale values.
func TestAxpyMatchesGeneric(t *testing.T) {
	r := xrand.New(99)
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100, 301} {
		for _, a := range []float64{0, 1, -1, 0.3, -2.7e-300, 1.9e280} {
			w := make([]float64, n)
			got := make([]float64, n)
			want := make([]float64, n)
			for i := range w {
				w[i] = r.Range(-2, 2)
				if r.Float64() < 0.2 {
					w[i] = 0
				}
				v := r.Range(-2, 2)
				got[i], want[i] = v, v
			}
			axpy(got, w, a)
			axpyGeneric(want, w, a)
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("n=%d a=%v: axpy[%d]=%x, generic=%x", n, a, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}
		}
	}
}

// TestReluKernelsMatchGeneric pins the branch-free masked ReLU kernels
// bit-for-bit against the portable branches, including the NaN and ±0
// lanes where a wrong compare predicate or mask would diverge.
func TestReluKernelsMatchGeneric(t *testing.T) {
	r := xrand.New(41)
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 33, 100} {
		src := make([]float64, n)
		y := make([]float64, n)
		g := make([]float64, n)
		for i := range src {
			switch i % 5 {
			case 0:
				src[i], y[i] = 0, 0
			case 1:
				src[i], y[i] = math.Copysign(0, -1), math.Copysign(0, -1)
			case 2:
				src[i], y[i] = math.NaN(), math.NaN()
			default:
				src[i], y[i] = r.Range(-2, 2), r.Range(-2, 2)
			}
			g[i] = r.Range(-2, 2)
		}
		gotF, wantF := make([]float64, n), make([]float64, n)
		reluFwd(gotF, src)
		reluFwdGeneric(wantF, src)
		gotB, wantB := make([]float64, n), make([]float64, n)
		reluBwd(gotB, y, g)
		reluBwdGeneric(wantB, y, g)
		for i := 0; i < n; i++ {
			if math.Float64bits(gotF[i]) != math.Float64bits(wantF[i]) {
				t.Fatalf("n=%d fwd[%d]: asm %x, generic %x (src %v)", n, i, math.Float64bits(gotF[i]), math.Float64bits(wantF[i]), src[i])
			}
			if math.Float64bits(gotB[i]) != math.Float64bits(wantB[i]) {
				t.Fatalf("n=%d bwd[%d]: asm %x, generic %x (y %v)", n, i, math.Float64bits(gotB[i]), math.Float64bits(wantB[i]), y[i])
			}
		}
	}
}
