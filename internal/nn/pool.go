package nn

// Deterministic intra-trial parallelism. A network may shard its
// per-sample-independent work (forward rows, backward dx rows, softmax
// probabilities, argmax) across a bounded process-wide worker pool.
// Determinism is structural, not scheduled: shards write disjoint row
// ranges of pre-sized arenas, every per-element float64 operation is the
// same at any degree, and every cross-sample accumulation (gw/gb, loss
// sums) stays serial in sample order — so a trial's result is
// bit-identical at parallelism 1, 2 or 8, and identical to the serial
// kernels. The degree only changes who computes, never what.

import (
	"runtime"
	"sync"
)

// kern is a network's parallel execution context: the requested
// parallelism degree plus the fork-join scratch used to run row shards
// on the shared pool. One kern per network; layers hold a pointer to
// their network's kern (nil means serial — layers constructed outside
// NewNetwork keep working).
type kern struct {
	par int
	wg  sync.WaitGroup
}

// kernelUser is implemented by layers that can shard row work; NewNetwork
// hands each one the network's kern.
type kernelUser interface{ setKernel(k *kern) }

// degree returns the effective parallelism (>= 1).
func (k *kern) degree() int {
	if k == nil || k.par < 2 {
		return 1
	}
	return k.par
}

// rows runs fn over [0, rows) split into at most degree() contiguous
// shards. fn must be safe for concurrent invocation on disjoint row
// ranges. The final shard runs on the caller, the rest on the shared
// pool; the shard boundaries depend only on (rows, degree), and because
// shards are data-disjoint the results do not depend on them at all.
// Steady state allocates nothing: tasks travel by value through a
// buffered channel and the WaitGroup is reused.
func (k *kern) rows(rows int, fn func(lo, hi int)) {
	p := k.degree()
	if p > rows {
		p = rows
	}
	if p <= 1 {
		fn(0, rows)
		return
	}
	poolOnce.Do(startPool)
	chunk := (rows + p - 1) / p
	lo := 0
	for lo+chunk < rows {
		k.wg.Add(1)
		poolWork <- poolTask{fn: fn, lo: lo, hi: lo + chunk, wg: &k.wg}
		lo += chunk
	}
	fn(lo, rows)
	k.wg.Wait()
}

// poolTask is one row shard handed to a pool worker.
type poolTask struct {
	fn     func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
}

var (
	poolOnce sync.Once
	poolWork chan poolTask
)

// startPool launches the process-wide kernel pool, bounded by GOMAXPROCS
// at first use. The pool is shared by every concurrently running trial:
// a degree-8 trial on a busy pool still computes correctly (shards
// queue), it just shares the cores. Tasks are pure compute over disjoint
// rows and never submit nested tasks, so the shared pool cannot
// deadlock; workers park on the channel between trials, so an idle pool
// costs nothing but its stacks.
func startPool() {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	poolWork = make(chan poolTask, 8*n)
	for i := 0; i < n; i++ {
		go func() {
			for t := range poolWork {
				t.fn(t.lo, t.hi)
				t.wg.Done()
			}
		}()
	}
}
