//go:build amd64

package nn

// useAVX selects the 4-lane axpy path when the CPU and OS support YMM
// state; the amd64 baseline guarantees the 2-lane SSE2 paths. Read by
// the assembly dispatch in axpy_amd64.s.
var useAVX = cpuHasAVX()

// cpuHasAVX is implemented in axpy_amd64.s (CPUID + XGETBV).
func cpuHasAVX() bool

//go:noescape
func axpyAsm(o, w *float64, n int, a float64)

//go:noescape
func reluFwdAsm(dst, src *float64, n int)

//go:noescape
func reluBwdAsm(dst, y, grad *float64, n int)

// axpy computes o[j] += a*w[j] for all j — the one hot kernel behind
// Dense forward, dx, gw and the SGD update. The packed implementation
// performs the exact scalar multiply-then-add sequence per element (no
// FMA — fusing would drop an intermediate rounding the reference
// sequence has), and every o[j] is independent, so results are
// bit-identical to axpyGeneric at any vector width.
func axpy(o, w []float64, a float64) {
	if len(o) == 0 {
		return
	}
	w = w[:len(o)]
	axpyAsm(&o[0], &w[0], len(o), a)
}

// reluFwd computes dst[i] = max-with-zero exactly as the reference
// branch (src[i] if src[i] > 0, else +0; NaN and -0 map to +0) using
// branch-free compare-then-mask lanes.
func reluFwd(dst, src []float64) {
	if len(dst) == 0 {
		return
	}
	src = src[:len(dst)]
	reluFwdAsm(&dst[0], &src[0], len(dst))
}

// reluBwd computes dst[i] = g[i] where y[i] > 0 and +0 elsewhere, the
// branch-free form of the reference ReLU backward.
func reluBwd(dst, y, g []float64) {
	if len(dst) == 0 {
		return
	}
	y = y[:len(dst)]
	g = g[:len(dst)]
	reluBwdAsm(&dst[0], &y[0], &g[0], len(dst))
}
