package nn

// Mutable-state serialization for trained networks. The trainer's prefix
// cache checkpoints a network at an epoch boundary and later resumes a
// deeper trial from it; for that to be bit-identical the checkpoint must
// capture exactly the state SGD evolves — Dense weights and biases, and
// each Dropout layer's private RNG stream — and nothing else. Activation
// layers (ReLU, Tanh) keep only per-batch scratch that the next Forward
// overwrites, so they serialize to nothing. Restoration targets a network
// freshly constructed by Build with the same (model, shape, hyper, seed):
// the architecture is reproduced by construction and only the mutable
// state is overwritten.
//
// Encoding is fixed-width little-endian: float64s travel as IEEE-754 bit
// patterns, so a restored weight is the captured weight, bit for bit.

import (
	"encoding/binary"
	"fmt"
	"math"
)

// state layout version; bumped on incompatible changes.
const stateVersion = 1

// per-layer kind tags in the serialized stream.
const (
	stateDense   byte = 1
	stateDropout byte = 2
	stateNoParam byte = 3 // ReLU, Tanh: presence recorded, no payload
)

// CaptureState appends the network's mutable training state to buf and
// returns the extended slice.
func (n *Network) CaptureState(buf []byte) []byte {
	buf = append(buf, stateVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(n.layers)))
	for _, l := range n.layers {
		switch l := l.(type) {
		case *Dense:
			buf = append(buf, stateDense)
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(l.w)))
			for _, v := range l.w {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
			}
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(l.b)))
			for _, v := range l.b {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
			}
		case *Dropout:
			buf = append(buf, stateDropout)
			s := l.r.State()
			for _, v := range s {
				buf = binary.LittleEndian.AppendUint64(buf, v)
			}
		default:
			buf = append(buf, stateNoParam)
		}
	}
	return buf
}

// stateReader walks a captured state buffer.
type stateReader struct {
	b   []byte
	off int
}

func (r *stateReader) u8() (byte, error) {
	if r.off >= len(r.b) {
		return 0, fmt.Errorf("nn: truncated state at offset %d", r.off)
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *stateReader) u32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, fmt.Errorf("nn: truncated state at offset %d", r.off)
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *stateReader) f64s(dst []float64) error {
	n, err := r.u32()
	if err != nil {
		return err
	}
	if int(n) != len(dst) {
		return fmt.Errorf("nn: state vector length %d, want %d", n, len(dst))
	}
	if r.off+8*int(n) > len(r.b) {
		return fmt.Errorf("nn: truncated state at offset %d", r.off)
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
		r.off += 8
	}
	return nil
}

// RestoreState overwrites the network's mutable training state with a
// capture taken from an identically constructed network. The layer stack
// must match kind for kind and shape for shape; on any mismatch (or a
// corrupt buffer) an error is returned and the receiver may be left
// partially restored — callers must discard it.
func (n *Network) RestoreState(data []byte) error {
	r := &stateReader{b: data}
	v, err := r.u8()
	if err != nil {
		return err
	}
	if v != stateVersion {
		return fmt.Errorf("nn: unsupported state version %d", v)
	}
	count, err := r.u32()
	if err != nil {
		return err
	}
	if int(count) != len(n.layers) {
		return fmt.Errorf("nn: state has %d layers, network has %d", count, len(n.layers))
	}
	for i, l := range n.layers {
		kind, err := r.u8()
		if err != nil {
			return err
		}
		switch l := l.(type) {
		case *Dense:
			if kind != stateDense {
				return fmt.Errorf("nn: layer %d kind %d, want dense", i, kind)
			}
			if err := r.f64s(l.w); err != nil {
				return err
			}
			if err := r.f64s(l.b); err != nil {
				return err
			}
		case *Dropout:
			if kind != stateDropout {
				return fmt.Errorf("nn: layer %d kind %d, want dropout", i, kind)
			}
			var s [4]uint64
			for j := range s {
				if r.off+8 > len(r.b) {
					return fmt.Errorf("nn: truncated state at offset %d", r.off)
				}
				s[j] = binary.LittleEndian.Uint64(r.b[r.off:])
				r.off += 8
			}
			l.r.SetState(s)
		default:
			if kind != stateNoParam {
				return fmt.Errorf("nn: layer %d kind %d, want parameterless", i, kind)
			}
		}
	}
	if r.off != len(r.b) {
		return fmt.Errorf("nn: %d trailing state bytes", len(r.b)-r.off)
	}
	return nil
}

// StateDigest is a 64-bit FNV-1a over a captured state buffer — a cheap
// fingerprint the prefix cache stores alongside a checkpoint so resumed
// and from-scratch runs can be asserted to have converged to the same
// weights.
func StateDigest(state []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range state {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}
