//go:build !amd64

package nn

// Non-amd64 platforms use the portable loops (bit-identical to the
// assembly kernels by construction).

func axpy(o, w []float64, a float64) { axpyGeneric(o, w, a) }

func reluFwd(dst, src []float64) { reluFwdGeneric(dst, src) }

func reluBwd(dst, y, g []float64) { reluBwdGeneric(dst, y, g) }
