// Packed compute kernels. Each lane performs exactly the scalar
// operation sequence of the portable Go loops — multiply-then-add for
// axpy (never FMA), compare-then-mask for ReLU — and every output
// element is independent, so vectorisation only changes how many
// independent elements are in flight, not any element's value: results
// are bit-identical to the generic implementations.

#include "textflag.h"

// func axpyAsm(o, w *float64, n int, a float64)
//
// o[j] += a*w[j]. Dispatches on ·useAVX: 4-lane VEX path with a
// 16-element main loop and 8/4/2/1 tails, or the baseline-SSE2 2-lane
// path with an 8-element main loop and 4/2/1 tails.
TEXT ·axpyAsm(SB), NOSPLIT, $0-32
	MOVQ o+0(FP), DI
	MOVQ w+8(FP), SI
	MOVQ n+16(FP), CX
	CMPB ·useAVX(SB), $0
	JNE  avx

	MOVSD    a+24(FP), X0
	UNPCKLPD X0, X0
	MOVQ     CX, BX
	SHRQ     $3, BX
	JZ       sse4
sseloop:
	MOVUPD (SI), X1
	MOVUPD 16(SI), X2
	MOVUPD 32(SI), X3
	MOVUPD 48(SI), X4
	MULPD  X0, X1
	MULPD  X0, X2
	MULPD  X0, X3
	MULPD  X0, X4
	MOVUPD (DI), X5
	MOVUPD 16(DI), X6
	MOVUPD 32(DI), X7
	MOVUPD 48(DI), X8
	ADDPD  X1, X5
	ADDPD  X2, X6
	ADDPD  X3, X7
	ADDPD  X4, X8
	MOVUPD X5, (DI)
	MOVUPD X6, 16(DI)
	MOVUPD X7, 32(DI)
	MOVUPD X8, 48(DI)
	ADDQ   $64, SI
	ADDQ   $64, DI
	DECQ   BX
	JNZ    sseloop
sse4:
	TESTQ $4, CX
	JZ    sse2
	MOVUPD (SI), X1
	MOVUPD 16(SI), X2
	MULPD  X0, X1
	MULPD  X0, X2
	MOVUPD (DI), X5
	MOVUPD 16(DI), X6
	ADDPD  X1, X5
	ADDPD  X2, X6
	MOVUPD X5, (DI)
	MOVUPD X6, 16(DI)
	ADDQ   $32, SI
	ADDQ   $32, DI
sse2:
	TESTQ $2, CX
	JZ    sse1
	MOVUPD (SI), X1
	MULPD  X0, X1
	MOVUPD (DI), X5
	ADDPD  X1, X5
	MOVUPD X5, (DI)
	ADDQ   $16, SI
	ADDQ   $16, DI
sse1:
	TESTQ $1, CX
	JZ    ssedone
	MOVSD (SI), X1
	MULSD X0, X1
	MOVSD (DI), X2
	ADDSD X1, X2
	MOVSD X2, (DI)
ssedone:
	RET

avx:
	VBROADCASTSD a+24(FP), Y0
	MOVQ         CX, BX
	SHRQ         $4, BX
	JZ           avx8
avxloop:
	VMOVUPD (SI), Y1
	VMOVUPD 32(SI), Y2
	VMOVUPD 64(SI), Y3
	VMOVUPD 96(SI), Y4
	VMULPD  Y0, Y1, Y1
	VMULPD  Y0, Y2, Y2
	VMULPD  Y0, Y3, Y3
	VMULPD  Y0, Y4, Y4
	VADDPD  (DI), Y1, Y1
	VADDPD  32(DI), Y2, Y2
	VADDPD  64(DI), Y3, Y3
	VADDPD  96(DI), Y4, Y4
	VMOVUPD Y1, (DI)
	VMOVUPD Y2, 32(DI)
	VMOVUPD Y3, 64(DI)
	VMOVUPD Y4, 96(DI)
	ADDQ    $128, SI
	ADDQ    $128, DI
	DECQ    BX
	JNZ     avxloop
avx8:
	TESTQ $8, CX
	JZ    avx4
	VMOVUPD (SI), Y1
	VMOVUPD 32(SI), Y2
	VMULPD  Y0, Y1, Y1
	VMULPD  Y0, Y2, Y2
	VADDPD  (DI), Y1, Y1
	VADDPD  32(DI), Y2, Y2
	VMOVUPD Y1, (DI)
	VMOVUPD Y2, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
avx4:
	TESTQ $4, CX
	JZ    avx2
	VMOVUPD (SI), Y1
	VMULPD  Y0, Y1, Y1
	VADDPD  (DI), Y1, Y1
	VMOVUPD Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
avx2:
	TESTQ $2, CX
	JZ    avx1
	VMOVUPD (SI), X1
	VMULPD  X0, X1, X1
	VADDPD  (DI), X1, X1
	VMOVUPD X1, (DI)
	ADDQ    $16, SI
	ADDQ    $16, DI
avx1:
	TESTQ $1, CX
	JZ    avxdone
	VMOVSD (SI), X1
	VMULSD X0, X1, X1
	VADDSD (DI), X1, X1
	VMOVSD X1, (DI)
avxdone:
	VZEROUPPER
	RET

// func reluFwdAsm(dst, src *float64, n int)
//
// dst[i] = src[i] if src[i] > 0 else +0, branch-free: mask = (0 < src)
// builds all-ones lanes exactly where the scalar comparison is true
// (NaN and ±0 lanes get +0, as the reference branch produces), and
// src&mask passes the value or +0 through. Baseline SSE2 — the kernel
// is load/store-bound, so wider vectors buy little here.
TEXT ·reluFwdAsm(SB), NOSPLIT, $0-24
	MOVQ  dst+0(FP), DI
	MOVQ  src+8(FP), SI
	MOVQ  n+16(FP), CX
	XORPD X0, X0
	MOVQ  CX, BX
	SHRQ  $2, BX
	JZ    rf1
rfloop:
	MOVUPD (SI), X1
	MOVUPD 16(SI), X2
	MOVAPD X0, X3
	MOVAPD X0, X4
	CMPPD  X1, X3, $1
	CMPPD  X2, X4, $1
	ANDPD  X1, X3
	ANDPD  X2, X4
	MOVUPD X3, (DI)
	MOVUPD X4, 16(DI)
	ADDQ   $32, SI
	ADDQ   $32, DI
	DECQ   BX
	JNZ    rfloop
rf1:
	ANDQ $3, CX
	JZ   rfdone
rftail:
	// MOVSD zeroes the high lane, so packed compare/mask on lane 0 is
	// exact and lane 1 is inert.
	MOVSD  (SI), X1
	MOVAPD X0, X3
	CMPPD  X1, X3, $1
	ANDPD  X1, X3
	MOVSD  X3, (DI)
	ADDQ   $8, SI
	ADDQ   $8, DI
	DECQ   CX
	JNZ    rftail
rfdone:
	RET

// func reluBwdAsm(dst, y, grad *float64, n int)
//
// dst[i] = grad[i] if y[i] > 0 else +0 — the same compare-then-mask with
// the mask drawn from the cached forward output.
TEXT ·reluBwdAsm(SB), NOSPLIT, $0-32
	MOVQ  dst+0(FP), DI
	MOVQ  y+8(FP), SI
	MOVQ  grad+16(FP), DX
	MOVQ  n+24(FP), CX
	XORPD X0, X0
	MOVQ  CX, BX
	SHRQ  $2, BX
	JZ    rb1
rbloop:
	MOVUPD (SI), X1
	MOVUPD 16(SI), X2
	MOVAPD X0, X3
	MOVAPD X0, X4
	CMPPD  X1, X3, $1
	CMPPD  X2, X4, $1
	MOVUPD (DX), X5
	MOVUPD 16(DX), X6
	ANDPD  X5, X3
	ANDPD  X6, X4
	MOVUPD X3, (DI)
	MOVUPD X4, 16(DI)
	ADDQ   $32, SI
	ADDQ   $32, DX
	ADDQ   $32, DI
	DECQ   BX
	JNZ    rbloop
rb1:
	ANDQ $3, CX
	JZ   rbdone
rbtail:
	MOVSD  (SI), X1
	MOVAPD X0, X3
	CMPPD  X1, X3, $1
	MOVSD  (DX), X5
	ANDPD  X5, X3
	MOVSD  X3, (DI)
	ADDQ   $8, SI
	ADDQ   $8, DX
	ADDQ   $8, DI
	DECQ   CX
	JNZ    rbtail
rbdone:
	RET

// func cpuHasAVX() bool
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID

	// Require OSXSAVE (ECX bit 27) and AVX (ECX bit 28), then confirm
	// the OS enabled XMM+YMM state (XCR0 bits 1 and 2).
	MOVL CX, DX
	ANDL $0x18000000, DX
	CMPL DX, $0x18000000
	JNE  noavx
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  noavx
	MOVB $1, ret+0(FP)
	RET
noavx:
	MOVB $0, ret+0(FP)
	RET
