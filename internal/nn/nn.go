// Package nn is a small, dependency-free neural-network library with real
// minibatch stochastic gradient descent.
//
// PipeTune's premise (§1, §5) is that SGD training is iterative and
// repetitive at epoch granularity — this package supplies genuine iterative
// SGD so that the hyperparameters the paper tunes (batch size, learning
// rate, dropout, capacity/embedding width, epochs) influence accuracy
// through the true mechanism rather than a curve fit. Only epoch *duration*
// is delegated to the analytical cost model (package costmodel), because
// wall-clock time on the reproduction host is not the quantity under study.
//
// The library provides dense layers, ReLU/Tanh activations, inverted
// dropout, a fused softmax cross-entropy head, and a model zoo mirroring
// the paper's architectures (LeNet5, CNN, LSTM, plus the Rodinia kernels'
// small classifiers).
package nn

import (
	"errors"
	"fmt"
	"math"

	"pipetune/internal/dataset"
	"pipetune/internal/params"
	"pipetune/internal/workload"
	"pipetune/internal/xrand"
)

// Batch is a minibatch of feature vectors (rows = samples).
type Batch = [][]float64

// Layer is one differentiable network stage. Forward must cache whatever it
// needs for the subsequent Backward; Update applies accumulated gradients.
// Layers are not safe for concurrent use: one network per trial.
type Layer interface {
	// Forward maps inputs to outputs. train toggles training-only
	// behaviour (dropout masks).
	Forward(x Batch, train bool) Batch
	// Backward receives dLoss/dOutput and returns dLoss/dInput, caching
	// parameter gradients for Update.
	Backward(grad Batch) Batch
	// Update applies one SGD step with the given learning rate.
	Update(lr float64)
	// ParamCount returns the number of trainable parameters.
	ParamCount() int
}

// Dense is a fully connected layer with bias.
type Dense struct {
	In, Out int
	w       []float64 // In*Out, row-major by input
	b       []float64
	x       Batch // cached input
	gw      []float64
	gb      []float64
}

// NewDense creates a dense layer with He-uniform initial weights drawn from r.
func NewDense(in, out int, r *xrand.Source) *Dense {
	d := &Dense{
		In: in, Out: out,
		w:  make([]float64, in*out),
		b:  make([]float64, out),
		gw: make([]float64, in*out),
		gb: make([]float64, out),
	}
	limit := math.Sqrt(6.0 / float64(in))
	for i := range d.w {
		d.w[i] = r.Range(-limit, limit)
	}
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x Batch, _ bool) Batch {
	d.x = x
	out := make(Batch, len(x))
	for s, row := range x {
		o := make([]float64, d.Out)
		copy(o, d.b)
		for i, xi := range row {
			if xi == 0 {
				continue
			}
			wRow := d.w[i*d.Out : (i+1)*d.Out]
			for j, wij := range wRow {
				o[j] += xi * wij
			}
		}
		out[s] = o
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad Batch) Batch {
	for i := range d.gw {
		d.gw[i] = 0
	}
	for j := range d.gb {
		d.gb[j] = 0
	}
	dx := make(Batch, len(grad))
	for s, g := range grad {
		row := d.x[s]
		dxRow := make([]float64, d.In)
		for i, xi := range row {
			wRow := d.w[i*d.Out : (i+1)*d.Out]
			gwRow := d.gw[i*d.Out : (i+1)*d.Out]
			acc := 0.0
			for j, gj := range g {
				gwRow[j] += xi * gj
				acc += wRow[j] * gj
			}
			dxRow[i] = acc
		}
		for j, gj := range g {
			d.gb[j] += gj
		}
		dx[s] = dxRow
	}
	return dx
}

// Update implements Layer.
func (d *Dense) Update(lr float64) {
	for i, g := range d.gw {
		d.w[i] -= lr * g
	}
	for j, g := range d.gb {
		d.b[j] -= lr * g
	}
}

// ParamCount implements Layer.
func (d *Dense) ParamCount() int { return d.In*d.Out + d.Out }

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
	cols int
}

// Forward implements Layer.
func (a *ReLU) Forward(x Batch, _ bool) Batch {
	if len(x) > 0 {
		a.cols = len(x[0])
	}
	if need := len(x) * a.cols; cap(a.mask) < need {
		a.mask = make([]bool, need)
	} else {
		a.mask = a.mask[:need]
	}
	out := make(Batch, len(x))
	for s, row := range x {
		o := make([]float64, len(row))
		for i, v := range row {
			if v > 0 {
				o[i] = v
				a.mask[s*a.cols+i] = true
			} else {
				a.mask[s*a.cols+i] = false
			}
		}
		out[s] = o
	}
	return out
}

// Backward implements Layer.
func (a *ReLU) Backward(grad Batch) Batch {
	out := make(Batch, len(grad))
	for s, row := range grad {
		o := make([]float64, len(row))
		for i, v := range row {
			if a.mask[s*a.cols+i] {
				o[i] = v
			}
		}
		out[s] = o
	}
	return out
}

// Update implements Layer (no parameters).
func (a *ReLU) Update(float64) {}

// ParamCount implements Layer.
func (a *ReLU) ParamCount() int { return 0 }

// Tanh is the hyperbolic-tangent activation (used by the LSTM stand-in).
type Tanh struct {
	y Batch
}

// Forward implements Layer.
func (a *Tanh) Forward(x Batch, _ bool) Batch {
	out := make(Batch, len(x))
	for s, row := range x {
		o := make([]float64, len(row))
		for i, v := range row {
			o[i] = math.Tanh(v)
		}
		out[s] = o
	}
	a.y = out
	return out
}

// Backward implements Layer.
func (a *Tanh) Backward(grad Batch) Batch {
	out := make(Batch, len(grad))
	for s, row := range grad {
		o := make([]float64, len(row))
		for i, v := range row {
			y := a.y[s][i]
			o[i] = v * (1 - y*y)
		}
		out[s] = o
	}
	return out
}

// Update implements Layer (no parameters).
func (a *Tanh) Update(float64) {}

// ParamCount implements Layer.
func (a *Tanh) ParamCount() int { return 0 }

// Dropout implements inverted dropout: active only in training mode, where
// each unit is zeroed with probability Rate and survivors are scaled by
// 1/(1-Rate) so evaluation needs no rescaling.
type Dropout struct {
	Rate float64
	r    *xrand.Source
	mask Batch
}

// NewDropout creates a dropout layer with its own random stream.
func NewDropout(rate float64, r *xrand.Source) *Dropout {
	return &Dropout{Rate: rate, r: r}
}

// Forward implements Layer.
func (d *Dropout) Forward(x Batch, train bool) Batch {
	if !train || d.Rate <= 0 {
		d.mask = nil
		return x
	}
	keep := 1 - d.Rate
	d.mask = make(Batch, len(x))
	out := make(Batch, len(x))
	for s, row := range x {
		m := make([]float64, len(row))
		o := make([]float64, len(row))
		for i, v := range row {
			if d.r.Float64() < keep {
				m[i] = 1 / keep
				o[i] = v / keep
			}
		}
		d.mask[s] = m
		out[s] = o
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(grad Batch) Batch {
	if d.mask == nil {
		return grad
	}
	out := make(Batch, len(grad))
	for s, row := range grad {
		o := make([]float64, len(row))
		for i, v := range row {
			o[i] = v * d.mask[s][i]
		}
		out[s] = o
	}
	return out
}

// Update implements Layer (no parameters).
func (d *Dropout) Update(float64) {}

// ParamCount implements Layer.
func (d *Dropout) ParamCount() int { return 0 }

// Network is a sequential stack of layers with a softmax cross-entropy head.
type Network struct {
	layers []Layer
}

// NewNetwork builds a network from the given layers.
func NewNetwork(layers ...Layer) *Network {
	return &Network{layers: layers}
}

// ParamCount returns the total number of trainable parameters.
func (n *Network) ParamCount() int {
	total := 0
	for _, l := range n.layers {
		total += l.ParamCount()
	}
	return total
}

// Forward runs the stack and returns the logits.
func (n *Network) Forward(x Batch, train bool) Batch {
	for _, l := range n.layers {
		x = l.Forward(x, train)
	}
	return x
}

// softmaxXE computes per-sample softmax probabilities, the mean
// cross-entropy loss, and dLoss/dLogits (already divided by batch size).
func softmaxXE(logits Batch, labels []int) (loss float64, grad Batch) {
	grad = make(Batch, len(logits))
	for s, row := range logits {
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		probs := make([]float64, len(row))
		for i, v := range row {
			probs[i] = math.Exp(v - maxV)
			sum += probs[i]
		}
		for i := range probs {
			probs[i] /= sum
		}
		p := probs[labels[s]]
		if p < 1e-12 {
			p = 1e-12
		}
		loss += -math.Log(p)
		g := probs
		g[labels[s]] -= 1
		inv := 1 / float64(len(logits))
		for i := range g {
			g[i] *= inv
		}
		grad[s] = g
	}
	loss /= float64(len(logits))
	return loss, grad
}

// TrainBatch runs one forward+backward pass over the minibatch and applies
// one SGD update. It returns the pre-update mean cross-entropy loss.
func (n *Network) TrainBatch(x Batch, labels []int, lr float64) (float64, error) {
	if len(x) == 0 || len(x) != len(labels) {
		return 0, errors.New("nn: batch and labels must be non-empty and equal length")
	}
	logits := n.Forward(x, true)
	loss, grad := softmaxXE(logits, labels)
	for i := len(n.layers) - 1; i >= 0; i-- {
		grad = n.layers[i].Backward(grad)
	}
	for _, l := range n.layers {
		l.Update(lr)
	}
	return loss, nil
}

// TrainEpoch runs one full epoch of minibatch SGD over set, shuffling with
// r, and returns the mean training loss across batches.
func (n *Network) TrainEpoch(set *dataset.Set, batchSize int, lr float64, r *xrand.Source) (float64, error) {
	if set.Len() == 0 {
		return 0, errors.New("nn: empty training set")
	}
	if batchSize <= 0 {
		return 0, fmt.Errorf("nn: invalid batch size %d", batchSize)
	}
	perm := r.Perm(set.Len())
	total, batches := 0.0, 0
	for _, idx := range dataset.Batches(set.Len(), batchSize, perm) {
		x := make(Batch, len(idx))
		labels := make([]int, len(idx))
		for i, sIdx := range idx {
			x[i] = set.Samples[sIdx].Features
			labels[i] = set.Samples[sIdx].Label
		}
		loss, err := n.TrainBatch(x, labels, lr)
		if err != nil {
			return 0, err
		}
		total += loss
		batches++
	}
	return total / float64(batches), nil
}

// Evaluate returns classification accuracy in [0,1] and the mean loss on set.
func (n *Network) Evaluate(set *dataset.Set) (accuracy, loss float64, err error) {
	if set.Len() == 0 {
		return 0, 0, errors.New("nn: empty evaluation set")
	}
	const chunk = 256
	correct := 0
	totalLoss := 0.0
	for start := 0; start < set.Len(); start += chunk {
		end := start + chunk
		if end > set.Len() {
			end = set.Len()
		}
		x := make(Batch, end-start)
		labels := make([]int, end-start)
		for i := start; i < end; i++ {
			x[i-start] = set.Samples[i].Features
			labels[i-start] = set.Samples[i].Label
		}
		logits := n.Forward(x, false)
		l, _ := softmaxXE(logits, labels)
		totalLoss += l * float64(end-start)
		for s, row := range logits {
			best := 0
			for i, v := range row {
				if v > row[best] {
					best = i
				}
			}
			if best == labels[s] {
				correct++
			}
		}
	}
	return float64(correct) / float64(set.Len()), totalLoss / float64(set.Len()), nil
}

// Build constructs the architecture for the given model per the paper's
// zoo: LeNet5 (compact CNN stand-in), CNN and LSTM text classifiers whose
// first hidden width is the tunable embedding dimension (§7.1.3 item 3),
// and small classifiers for the Rodinia Type-III kernels.
func Build(m workload.Model, inputDim, classes int, h params.Hyper, r *xrand.Source) (*Network, error) {
	if inputDim <= 0 || classes <= 1 {
		return nil, fmt.Errorf("nn: invalid shape in=%d classes=%d", inputDim, classes)
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	emb := h.EmbeddingDim
	switch m {
	case workload.LeNet5:
		return NewNetwork(
			NewDense(inputDim, 48, r),
			&ReLU{},
			NewDropout(h.Dropout, r.Split()),
			NewDense(48, 24, r),
			&ReLU{},
			NewDense(24, classes, r),
		), nil
	case workload.CNN:
		return NewNetwork(
			NewDense(inputDim, emb, r),
			&ReLU{},
			NewDropout(h.Dropout, r.Split()),
			NewDense(emb, 48, r),
			&ReLU{},
			NewDense(48, classes, r),
		), nil
	case workload.LSTM:
		return NewNetwork(
			NewDense(inputDim, emb, r),
			&Tanh{},
			NewDropout(h.Dropout, r.Split()),
			NewDense(emb, emb/2+1, r),
			&Tanh{},
			NewDense(emb/2+1, classes, r),
		), nil
	case workload.Jacobi, workload.SPKMeans, workload.BFS:
		return NewNetwork(
			NewDense(inputDim, 16, r),
			&ReLU{},
			NewDense(16, classes, r),
		), nil
	default:
		return nil, fmt.Errorf("nn: unknown model %v", m)
	}
}
