// Package nn is a small, dependency-free neural-network library with real
// minibatch stochastic gradient descent.
//
// PipeTune's premise (§1, §5) is that SGD training is iterative and
// repetitive at epoch granularity — this package supplies genuine iterative
// SGD so that the hyperparameters the paper tunes (batch size, learning
// rate, dropout, capacity/embedding width, epochs) influence accuracy
// through the true mechanism rather than a curve fit. Only epoch *duration*
// is delegated to the analytical cost model (package costmodel), because
// wall-clock time on the reproduction host is not the quantity under study.
//
// The library provides dense layers, ReLU/Tanh activations, inverted
// dropout, a fused softmax cross-entropy head, and a model zoo mirroring
// the paper's architectures (LeNet5, CNN, LSTM, plus the Rodinia kernels'
// small classifiers).
//
// Compute kernels: every tensor lives in one contiguous row-major
// []float64 (Batch), every layer owns pre-sized scratch arenas reused
// across batches and epochs, and the hot loops are written as blocked,
// unrolled kernels — so the train/eval steady state allocates nothing.
// The float64 operation sequence of every result element is kept exactly
// as the naive reference implementation produced it (see
// reference_test.go), because downstream planes — the trial prefix
// cache, the binary delta codec, spot salvage — all rely on bit-identical
// trial results. For the same reason intra-trial parallelism (see
// pool.go) only shards per-sample-independent work; cross-sample
// accumulations stay serial in sample order.
package nn

import (
	"errors"
	"fmt"
	"math"

	"pipetune/internal/dataset"
	"pipetune/internal/params"
	"pipetune/internal/workload"
	"pipetune/internal/xrand"
)

// Batch is a minibatch of feature vectors in one contiguous row-major
// buffer: sample s's features are Data[s*Cols : (s+1)*Cols]. The flat
// layout is what makes the kernels block and the arenas reusable — a
// resize that fits in capacity is two field writes, not len(x) makes.
type Batch struct {
	Data []float64
	Rows int
	Cols int
}

// FromRows builds a Batch by copying the given rows (all must have equal
// length). It is a construction convenience for tests and callers with
// row-sliced data; the hot path gathers directly into reused arenas.
func FromRows(rows [][]float64) *Batch {
	b := &Batch{Rows: len(rows)}
	if len(rows) > 0 {
		b.Cols = len(rows[0])
	}
	b.Data = make([]float64, b.Rows*b.Cols)
	for s, row := range rows {
		copy(b.Row(s), row)
	}
	return b
}

// Row returns sample s's feature vector, aliasing the batch buffer.
func (b *Batch) Row(s int) []float64 {
	return b.Data[s*b.Cols : (s+1)*b.Cols]
}

// resize reshapes b, growing the backing buffer only when capacity is
// exceeded. Contents after a resize are unspecified: kernels overwrite
// every element they expose.
func (b *Batch) resize(rows, cols int) {
	n := rows * cols
	if cap(b.Data) < n {
		b.Data = make([]float64, n)
	}
	b.Data = b.Data[:n]
	b.Rows, b.Cols = rows, cols
}

// evalChunk is the evaluation minibatch size (bounded so eval arenas stay
// modest regardless of test-set size) and the floor for arena
// preallocation in Build.
const evalChunk = 256

// sampleBlock is the row-block width of the blocked Dense forward kernel:
// one weight row is streamed through up to this many samples before the
// next is touched, so the weight matrix is read once per block instead of
// once per sample. Blocking only reorders *which independent output
// element* is computed when — each element's own accumulation order over
// inputs is unchanged, keeping results bit-identical to the straight
// loops.
const sampleBlock = 16

// axpyGeneric computes o[j] += xi * w[j] for all j, unrolled 4-wide.
// Every o[j] is an independent accumulator, so unrolling changes no
// per-element addition order: results are bit-identical to the straight
// loop. On amd64 the axpy entry point dispatches to packed SSE2/AVX
// kernels with the same per-element operation sequence (axpy_amd64.s);
// elsewhere axpy is this function.
func axpyGeneric(o, w []float64, xi float64) {
	w = w[:len(o)]
	j := 0
	for ; j+4 <= len(o); j += 4 {
		o[j] += xi * w[j]
		o[j+1] += xi * w[j+1]
		o[j+2] += xi * w[j+2]
		o[j+3] += xi * w[j+3]
	}
	for ; j < len(o); j++ {
		o[j] += xi * w[j]
	}
}

// reluFwdGeneric is the portable ReLU forward: dst[i] = src[i] if
// src[i] > 0, else +0 (NaN and -0 both map to +0).
func reluFwdGeneric(dst, src []float64) {
	src = src[:len(dst)]
	for i, v := range src {
		if v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}

// reluBwdGeneric is the portable ReLU backward: dst[i] = g[i] where
// y[i] > 0, else +0.
func reluBwdGeneric(dst, y, g []float64) {
	y = y[:len(dst)]
	g = g[:len(dst)]
	for i, v := range y {
		if v > 0 {
			dst[i] = g[i]
		} else {
			dst[i] = 0
		}
	}
}

// Layer is one differentiable network stage. Forward must cache whatever it
// needs for the subsequent Backward; Update applies accumulated gradients.
// Returned batches alias layer-owned arenas and are valid until the
// layer's next Forward/Backward. Layers are not safe for concurrent use:
// one network per trial.
type Layer interface {
	// Forward maps inputs to outputs. train toggles training-only
	// behaviour (dropout masks).
	Forward(x *Batch, train bool) *Batch
	// Backward receives dLoss/dOutput and returns dLoss/dInput, caching
	// parameter gradients for Update.
	Backward(grad *Batch) *Batch
	// Update applies one SGD step with the given learning rate.
	Update(lr float64)
	// ParamCount returns the number of trainable parameters.
	ParamCount() int
}

// arenaLayer lets Build pre-size a layer's arenas for the largest batch
// so the steady state never grows them. It returns the layer's output
// width given its input width.
type arenaLayer interface {
	prealloc(rows, cols int) int
}

// Dense is a fully connected layer with bias.
type Dense struct {
	In, Out int
	w       []float64 // In*Out, row-major by input
	b       []float64
	gw      []float64
	gb      []float64
	wt      []float64 // Out*In transpose of w, refreshed per Backward for the dx kernel

	// noDx marks the network's first layer: nothing consumes dLoss/dInput
	// there, so Backward skips the dx matmul (often the widest one)
	// entirely. Weight/bias gradients are unaffected.
	noDx bool

	k    *kern
	x    *Batch // cached input (aliases the upstream layer's arena)
	g    *Batch // pending upstream gradient during Backward
	out  Batch  // forward arena
	dx   Batch  // backward arena
	fwd  func(lo, hi int)
	bwdx func(lo, hi int)
}

// NewDense creates a dense layer with He-uniform initial weights drawn from r.
func NewDense(in, out int, r *xrand.Source) *Dense {
	d := &Dense{
		In: in, Out: out,
		w:  make([]float64, in*out),
		b:  make([]float64, out),
		gw: make([]float64, in*out),
		gb: make([]float64, out),
		wt: make([]float64, in*out),
	}
	limit := math.Sqrt(6.0 / float64(in))
	for i := range d.w {
		d.w[i] = r.Range(-limit, limit)
	}
	return d
}

func (d *Dense) setKernel(k *kern) { d.k = k }

func (d *Dense) prealloc(rows, _ int) int {
	d.out.resize(rows, d.Out)
	d.dx.resize(rows, d.In)
	return d.Out
}

// Forward implements Layer.
func (d *Dense) Forward(x *Batch, _ bool) *Batch {
	d.x = x
	d.out.resize(x.Rows, d.Out)
	if d.fwd == nil {
		d.fwd = d.forwardRows
	}
	d.k.rows(x.Rows, d.fwd)
	return &d.out
}

// forwardRows computes o[s] = b + x[s]·w for samples [lo, hi), blocked so
// each weight row is streamed through a block of samples. Zero inputs are
// skipped (the text workloads are sparse); per output element the
// additions run in ascending input order starting from the bias, exactly
// as the reference did.
func (d *Dense) forwardRows(lo, hi int) {
	out, cols := d.Out, d.x.Cols
	xd := d.x.Data
	// Block-local row headers live on the stack: the inner loop touches
	// each output row once per input without re-slicing the arena.
	var rows [sampleBlock][]float64
	for s0 := lo; s0 < hi; s0 += sampleBlock {
		s1 := s0 + sampleBlock
		if s1 > hi {
			s1 = hi
		}
		for s := s0; s < s1; s++ {
			rows[s-s0] = d.out.Row(s)
			copy(rows[s-s0], d.b)
		}
		for i := 0; i < cols; i++ {
			wRow := d.w[i*out : (i+1)*out]
			for s := s0; s < s1; s++ {
				xi := xd[s*cols+i]
				if xi == 0 {
					continue
				}
				axpy(rows[s-s0], wRow, xi)
			}
		}
	}
}

// Backward implements Layer.
//
// Zero-skip bit-identity: both gradient kernels below skip terms whose
// scalar factor is exactly zero. With finite co-factors the skipped
// product is ±0, and the accumulators start at +0 and can never reach
// -0 (in round-to-nearest, -0 only arises from (-0)+(-0), unreachable
// from +0), so adding the skipped ±0 would have been an identity —
// results are bit-identical to the skip-free reference. The forward
// kernel has skipped zero inputs under the same finiteness assumption
// since the seed; the parity suites and the end-to-end golden digest
// pin both empirically.
func (d *Dense) Backward(grad *Batch) *Batch {
	for i := range d.gw {
		d.gw[i] = 0
	}
	for j := range d.gb {
		d.gb[j] = 0
	}
	d.g = grad
	if !d.noDx {
		// Refresh the weight transpose the dx kernel streams (w moved
		// last Update): O(In*Out) once per batch against the kernel's
		// O(rows*In*Out).
		in, out := d.In, d.Out
		for i := 0; i < in; i++ {
			wRow := d.w[i*out : (i+1)*out]
			for j, v := range wRow {
				d.wt[j*in+i] = v
			}
		}
		d.dx.resize(grad.Rows, in)
		if d.bwdx == nil {
			d.bwdx = d.backwardRows
		}
		// dx rows are per-sample independent: shardable. The parameter
		// gradients are cross-sample sums and float addition is not
		// associative, so they stay serial in sample order below — this
		// is the boundary that keeps results bit-identical at any
		// parallelism degree.
		d.k.rows(grad.Rows, d.bwdx)
	}
	out := d.Out
	for s := 0; s < grad.Rows; s++ {
		g := d.g.Row(s)
		row := d.x.Row(s)
		for i, xi := range row {
			if xi == 0 {
				continue
			}
			axpy(d.gw[i*out:(i+1)*out], g, xi)
		}
		for j, gj := range g {
			d.gb[j] += gj
		}
	}
	return &d.dx
}

// backwardRows computes dx[s][i] = w[i]·g[s] for samples [lo, hi) as a
// sweep of axpy rows over the transposed weights: dx[s] accumulates
// wt[j]·g[s][j] in ascending j, so each dx[s][i] sums its terms in
// exactly the reference's single-accumulator order — but on the packed
// throughput-bound kernel instead of a latency-bound dot chain, and
// skipping the (post-ReLU, frequently zero) gradient entries outright.
func (d *Dense) backwardRows(lo, hi int) {
	in := d.In
	active := d.x.Cols // input rows narrower than In contribute zeros
	if active > in {
		active = in
	}
	for s := lo; s < hi; s++ {
		g := d.g.Row(s)
		dxRow := d.dx.Row(s)
		for i := range dxRow {
			dxRow[i] = 0
		}
		dst := dxRow[:active]
		for j, gj := range g {
			if gj == 0 {
				continue
			}
			axpy(dst, d.wt[j*in:j*in+active], gj)
		}
	}
}

// Update implements Layer. w[i] -= lr*gw[i] is computed as
// w[i] += (-lr)*gw[i] on the packed kernel — IEEE negation and
// subtraction-as-addition-of-negation are exact, so the bits match the
// reference's subtraction loop.
func (d *Dense) Update(lr float64) {
	axpy(d.w, d.gw, -lr)
	axpy(d.b, d.gb, -lr)
}

// ParamCount implements Layer.
func (d *Dense) ParamCount() int { return d.In*d.Out + d.Out }

// ReLU is the rectified linear activation. Backward keys off the cached
// output (y > 0 exactly when the input was > 0), which removes the old
// separate mask buffer — and with it the stale-columns edge case an empty
// batch used to leave behind.
type ReLU struct {
	k   *kern
	x   *Batch
	g   *Batch
	y   Batch
	dx  Batch
	fwd func(lo, hi int)
	bwd func(lo, hi int)
}

func (a *ReLU) setKernel(k *kern) { a.k = k }

func (a *ReLU) prealloc(rows, cols int) int {
	a.y.resize(rows, cols)
	a.dx.resize(rows, cols)
	return cols
}

// Forward implements Layer.
func (a *ReLU) Forward(x *Batch, _ bool) *Batch {
	a.x = x
	a.y.resize(x.Rows, x.Cols)
	if a.fwd == nil {
		a.fwd = a.forwardRows
	}
	a.k.rows(x.Rows, a.fwd)
	return &a.y
}

func (a *ReLU) forwardRows(lo, hi int) {
	cols := a.y.Cols
	reluFwd(a.y.Data[lo*cols:hi*cols], a.x.Data[lo*cols:hi*cols])
}

// Backward implements Layer.
func (a *ReLU) Backward(grad *Batch) *Batch {
	a.g = grad
	a.dx.resize(grad.Rows, grad.Cols)
	if a.bwd == nil {
		a.bwd = a.backwardRows
	}
	a.k.rows(grad.Rows, a.bwd)
	return &a.dx
}

func (a *ReLU) backwardRows(lo, hi int) {
	cols := a.dx.Cols
	reluBwd(a.dx.Data[lo*cols:hi*cols], a.y.Data[lo*cols:hi*cols], a.g.Data[lo*cols:hi*cols])
}

// Update implements Layer (no parameters).
func (a *ReLU) Update(float64) {}

// ParamCount implements Layer.
func (a *ReLU) ParamCount() int { return 0 }

// Tanh is the hyperbolic-tangent activation (used by the LSTM stand-in).
type Tanh struct {
	k   *kern
	x   *Batch
	g   *Batch
	y   Batch
	dx  Batch
	fwd func(lo, hi int)
	bwd func(lo, hi int)
}

func (a *Tanh) setKernel(k *kern) { a.k = k }

func (a *Tanh) prealloc(rows, cols int) int {
	a.y.resize(rows, cols)
	a.dx.resize(rows, cols)
	return cols
}

// Forward implements Layer.
func (a *Tanh) Forward(x *Batch, _ bool) *Batch {
	a.x = x
	a.y.resize(x.Rows, x.Cols)
	if a.fwd == nil {
		a.fwd = a.forwardRows
	}
	a.k.rows(x.Rows, a.fwd)
	return &a.y
}

func (a *Tanh) forwardRows(lo, hi int) {
	cols := a.y.Cols
	in, out := a.x.Data, a.y.Data
	for i := lo * cols; i < hi*cols; i++ {
		out[i] = math.Tanh(in[i])
	}
}

// Backward implements Layer.
func (a *Tanh) Backward(grad *Batch) *Batch {
	a.g = grad
	a.dx.resize(grad.Rows, grad.Cols)
	if a.bwd == nil {
		a.bwd = a.backwardRows
	}
	a.k.rows(grad.Rows, a.bwd)
	return &a.dx
}

func (a *Tanh) backwardRows(lo, hi int) {
	cols := a.dx.Cols
	yd, g, o := a.y.Data, a.g.Data, a.dx.Data
	for i := lo * cols; i < hi*cols; i++ {
		y := yd[i]
		o[i] = g[i] * (1 - y*y)
	}
}

// Update implements Layer (no parameters).
func (a *Tanh) Update(float64) {}

// ParamCount implements Layer.
func (a *Tanh) ParamCount() int { return 0 }

// Dropout implements inverted dropout: active only in training mode, where
// each unit is zeroed with probability Rate and survivors are scaled by
// 1/(1-Rate) so evaluation needs no rescaling.
type Dropout struct {
	Rate float64
	r    *xrand.Source

	k      *kern
	active bool // a mask was drawn by the last Forward
	g      *Batch
	mask   Batch
	out    Batch
	dx     Batch
	bwd    func(lo, hi int)
}

// NewDropout creates a dropout layer with its own random stream.
func NewDropout(rate float64, r *xrand.Source) *Dropout {
	return &Dropout{Rate: rate, r: r}
}

func (d *Dropout) setKernel(k *kern) { d.k = k }

func (d *Dropout) prealloc(rows, cols int) int {
	d.mask.resize(rows, cols)
	d.out.resize(rows, cols)
	d.dx.resize(rows, cols)
	return cols
}

// Forward implements Layer. The mask draw is one RNG call per element in
// row-major order and runs serially regardless of the parallelism degree:
// the dropout stream's draw sequence is part of a trial's identity (it is
// checkpointed by CaptureState), so it must not depend on scheduling.
func (d *Dropout) Forward(x *Batch, train bool) *Batch {
	if !train || d.Rate <= 0 {
		d.active = false
		return x
	}
	d.active = true
	keep := 1 - d.Rate
	d.mask.resize(x.Rows, x.Cols)
	d.out.resize(x.Rows, x.Cols)
	m, o, in := d.mask.Data, d.out.Data, x.Data
	for i, v := range in {
		if d.r.Float64() < keep {
			m[i] = 1 / keep
			o[i] = v / keep
		} else {
			m[i] = 0
			o[i] = 0
		}
	}
	return &d.out
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *Batch) *Batch {
	if !d.active {
		return grad
	}
	d.g = grad
	d.dx.resize(grad.Rows, grad.Cols)
	if d.bwd == nil {
		d.bwd = d.backwardRows
	}
	d.k.rows(grad.Rows, d.bwd)
	return &d.dx
}

func (d *Dropout) backwardRows(lo, hi int) {
	cols := d.dx.Cols
	m, g, o := d.mask.Data, d.g.Data, d.dx.Data
	for i := lo * cols; i < hi*cols; i++ {
		o[i] = g[i] * m[i]
	}
}

// Update implements Layer (no parameters).
func (d *Dropout) Update(float64) {}

// ParamCount implements Layer.
func (d *Dropout) ParamCount() int { return 0 }

// Network is a sequential stack of layers with a softmax cross-entropy head.
// It owns the cross-layer scratch (gathered minibatch, shuffle
// permutation, softmax gradients, argmax buffer) so a trial's steady
// state allocates nothing.
type Network struct {
	layers []Layer
	k      kern

	in     Batch // gathered minibatch features
	labels []int // gathered minibatch labels
	perm   []int // epoch shuffle permutation

	smx     Batch // softmax probabilities / gradient arena
	lossBuf []float64
	best    []int // per-sample argmax scratch for Evaluate

	curLogits *Batch
	curLabels []int
	smxFn     func(lo, hi int)
	argmaxFn  func(lo, hi int)
}

// NewNetwork builds a network from the given layers.
func NewNetwork(layers ...Layer) *Network {
	n := &Network{layers: layers, k: kern{par: 1}}
	for _, l := range layers {
		if ku, ok := l.(kernelUser); ok {
			ku.setKernel(&n.k)
		}
	}
	// Nothing consumes the first layer's input gradient, so a Dense head
	// can skip its dx matmul — usually the widest in the stack. The
	// produced loss, parameter gradients and state are unchanged.
	if len(layers) > 0 {
		if d, ok := layers[0].(*Dense); ok {
			d.noDx = true
		}
	}
	return n
}

// SetParallelism bounds the network's deterministic intra-trial
// parallelism: the number of goroutines sharding per-sample-independent
// kernel work (forward rows, dx rows, softmax, argmax). Degrees < 2 mean
// serial. Results are bit-identical at every degree — see pool.go for
// why.
func (n *Network) SetParallelism(p int) {
	if p < 1 {
		p = 1
	}
	n.k.par = p
}

// Parallelism reports the effective configured degree (>= 1).
func (n *Network) Parallelism() int { return n.k.degree() }

// prealloc sizes every arena in the stack for batches of up to rows
// samples, so steady-state training and evaluation never allocate.
func (n *Network) prealloc(rows, cols int) {
	n.in.resize(rows, cols)
	if cap(n.labels) < rows {
		n.labels = make([]int, rows)
	}
	if cap(n.lossBuf) < rows {
		n.lossBuf = make([]float64, rows)
	}
	if cap(n.best) < rows {
		n.best = make([]int, rows)
	}
	for _, l := range n.layers {
		if al, ok := l.(arenaLayer); ok {
			cols = al.prealloc(rows, cols)
		}
	}
	n.smx.resize(rows, cols)
}

// ParamCount returns the total number of trainable parameters.
func (n *Network) ParamCount() int {
	total := 0
	for _, l := range n.layers {
		total += l.ParamCount()
	}
	return total
}

// Forward runs the stack and returns the logits. The result aliases the
// last layer's arena and is valid until the next Forward.
func (n *Network) Forward(x *Batch, train bool) *Batch {
	for _, l := range n.layers {
		x = l.Forward(x, train)
	}
	return x
}

// softmaxXE computes per-sample softmax probabilities, the mean
// cross-entropy loss, and dLoss/dLogits (already divided by batch size).
// Per-sample work is shardable; the loss sum stays serial in sample order.
func (n *Network) softmaxXE(logits *Batch, labels []int) (float64, *Batch) {
	n.smx.resize(logits.Rows, logits.Cols)
	if cap(n.lossBuf) < logits.Rows {
		n.lossBuf = make([]float64, logits.Rows)
	}
	n.lossBuf = n.lossBuf[:logits.Rows]
	n.curLogits, n.curLabels = logits, labels
	if n.smxFn == nil {
		n.smxFn = n.softmaxRows
	}
	n.k.rows(logits.Rows, n.smxFn)
	loss := 0.0
	for _, l := range n.lossBuf {
		loss += l
	}
	loss /= float64(logits.Rows)
	return loss, &n.smx
}

func (n *Network) softmaxRows(lo, hi int) {
	inv := 1 / float64(n.curLogits.Rows)
	for s := lo; s < hi; s++ {
		row := n.curLogits.Row(s)
		probs := n.smx.Row(s)
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		for i, v := range row {
			probs[i] = math.Exp(v - maxV)
			sum += probs[i]
		}
		for i := range probs {
			probs[i] /= sum
		}
		p := probs[n.curLabels[s]]
		if p < 1e-12 {
			p = 1e-12
		}
		n.lossBuf[s] = -math.Log(p)
		probs[n.curLabels[s]] -= 1
		for i := range probs {
			probs[i] *= inv
		}
	}
}

// TrainBatch runs one forward+backward pass over the minibatch and applies
// one SGD update. It returns the pre-update mean cross-entropy loss.
func (n *Network) TrainBatch(x *Batch, labels []int, lr float64) (float64, error) {
	if x == nil || x.Rows == 0 || x.Rows != len(labels) {
		return 0, errors.New("nn: batch and labels must be non-empty and equal length")
	}
	logits := n.Forward(x, true)
	loss, grad := n.softmaxXE(logits, labels)
	for i := len(n.layers) - 1; i >= 0; i-- {
		grad = n.layers[i].Backward(grad)
	}
	for _, l := range n.layers {
		l.Update(lr)
	}
	return loss, nil
}

// gather copies the indexed samples into the network's input arena.
// Feature rows shorter than the set's dimension are zero-padded (zero
// inputs are inert in both directions: forward skips them and their
// weight gradient is exactly zero).
func (n *Network) gather(set *dataset.Set, idx []int) {
	n.in.resize(len(idx), set.Dim)
	if cap(n.labels) < len(idx) {
		n.labels = make([]int, len(idx))
	}
	n.labels = n.labels[:len(idx)]
	for i, sIdx := range idx {
		s := &set.Samples[sIdx]
		dst := n.in.Row(i)
		c := copy(dst, s.Features)
		for ; c < len(dst); c++ {
			dst[c] = 0
		}
		n.labels[i] = s.Label
	}
}

// gatherRange is gather for the contiguous index range [start, end) —
// Evaluate's unshuffled chunks need no materialised index slice.
func (n *Network) gatherRange(set *dataset.Set, start, end int) {
	n.in.resize(end-start, set.Dim)
	if cap(n.labels) < end-start {
		n.labels = make([]int, end-start)
	}
	n.labels = n.labels[:end-start]
	for i := start; i < end; i++ {
		s := &set.Samples[i]
		dst := n.in.Row(i - start)
		c := copy(dst, s.Features)
		for ; c < len(dst); c++ {
			dst[c] = 0
		}
		n.labels[i-start] = s.Label
	}
}

// TrainEpoch runs one full epoch of minibatch SGD over set, shuffling with
// r, and returns the mean training loss across batches.
func (n *Network) TrainEpoch(set *dataset.Set, batchSize int, lr float64, r *xrand.Source) (float64, error) {
	if set.Len() == 0 {
		return 0, errors.New("nn: empty training set")
	}
	if batchSize <= 0 {
		return 0, fmt.Errorf("nn: invalid batch size %d", batchSize)
	}
	size := set.Len()
	if cap(n.perm) < size {
		n.perm = make([]int, size)
	}
	perm := n.perm[:size]
	for i := range perm {
		perm[i] = i
	}
	// Identity fill + Shuffle is exactly what xrand's Perm does, minus its
	// per-epoch allocation: the RNG draw sequence is unchanged.
	r.Shuffle(size, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	total, batches := 0.0, 0
	err := dataset.EachBatch(size, batchSize, perm, func(idx []int) error {
		n.gather(set, idx)
		loss, err := n.TrainBatch(&n.in, n.labels, lr)
		if err != nil {
			return err
		}
		total += loss
		batches++
		return nil
	})
	if err != nil {
		return 0, err
	}
	return total / float64(batches), nil
}

// Evaluate returns classification accuracy in [0,1] and the mean loss on set.
func (n *Network) Evaluate(set *dataset.Set) (accuracy, loss float64, err error) {
	if set.Len() == 0 {
		return 0, 0, errors.New("nn: empty evaluation set")
	}
	correct := 0
	totalLoss := 0.0
	for start := 0; start < set.Len(); start += evalChunk {
		end := start + evalChunk
		if end > set.Len() {
			end = set.Len()
		}
		n.gatherRange(set, start, end)
		logits := n.Forward(&n.in, false)
		l, _ := n.softmaxXE(logits, n.labels)
		totalLoss += l * float64(end-start)
		correct += n.countCorrect(logits, n.labels)
	}
	return float64(correct) / float64(set.Len()), totalLoss / float64(set.Len()), nil
}

// countCorrect computes per-sample argmax (shardable) and tallies matches
// against labels (serial).
func (n *Network) countCorrect(logits *Batch, labels []int) int {
	if cap(n.best) < logits.Rows {
		n.best = make([]int, logits.Rows)
	}
	n.best = n.best[:logits.Rows]
	n.curLogits = logits
	if n.argmaxFn == nil {
		n.argmaxFn = n.argmaxRows
	}
	n.k.rows(logits.Rows, n.argmaxFn)
	c := 0
	for s, l := range labels {
		if n.best[s] == l {
			c++
		}
	}
	return c
}

func (n *Network) argmaxRows(lo, hi int) {
	for s := lo; s < hi; s++ {
		row := n.curLogits.Row(s)
		best := 0
		for i, v := range row {
			if v > row[best] {
				best = i
			}
		}
		n.best[s] = best
	}
}

// Build constructs the architecture for the given model per the paper's
// zoo: LeNet5 (compact CNN stand-in), CNN and LSTM text classifiers whose
// first hidden width is the tunable embedding dimension (§7.1.3 item 3),
// and small classifiers for the Rodinia Type-III kernels. Every arena in
// the stack is pre-sized here for the larger of the training batch and
// the evaluation chunk, so trial steady state allocates nothing.
func Build(m workload.Model, inputDim, classes int, h params.Hyper, r *xrand.Source) (*Network, error) {
	if inputDim <= 0 || classes <= 1 {
		return nil, fmt.Errorf("nn: invalid shape in=%d classes=%d", inputDim, classes)
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	emb := h.EmbeddingDim
	var net *Network
	switch m {
	case workload.LeNet5:
		net = NewNetwork(
			NewDense(inputDim, 48, r),
			&ReLU{},
			NewDropout(h.Dropout, r.Split()),
			NewDense(48, 24, r),
			&ReLU{},
			NewDense(24, classes, r),
		)
	case workload.CNN:
		net = NewNetwork(
			NewDense(inputDim, emb, r),
			&ReLU{},
			NewDropout(h.Dropout, r.Split()),
			NewDense(emb, 48, r),
			&ReLU{},
			NewDense(48, classes, r),
		)
	case workload.LSTM:
		net = NewNetwork(
			NewDense(inputDim, emb, r),
			&Tanh{},
			NewDropout(h.Dropout, r.Split()),
			NewDense(emb, emb/2+1, r),
			&Tanh{},
			NewDense(emb/2+1, classes, r),
		)
	case workload.Jacobi, workload.SPKMeans, workload.BFS:
		net = NewNetwork(
			NewDense(inputDim, 16, r),
			&ReLU{},
			NewDense(16, classes, r),
		)
	default:
		return nil, fmt.Errorf("nn: unknown model %v", m)
	}
	rows := h.BatchSize
	if rows < evalChunk {
		rows = evalChunk
	}
	net.prealloc(rows, inputDim)
	return net, nil
}
