package nn

import (
	"math"
	"testing"

	"pipetune/internal/dataset"
	"pipetune/internal/params"
	"pipetune/internal/workload"
	"pipetune/internal/xrand"
)

func TestDenseForwardShape(t *testing.T) {
	r := xrand.New(1)
	d := NewDense(3, 2, r)
	out := d.Forward(FromRows([][]float64{{1, 2, 3}, {4, 5, 6}}), false)
	if out.Rows != 2 || out.Cols != 2 {
		t.Fatalf("output shape %dx%d, want 2x2", out.Rows, out.Cols)
	}
}

func TestDenseParamCount(t *testing.T) {
	d := NewDense(10, 5, xrand.New(1))
	if d.ParamCount() != 55 {
		t.Fatalf("ParamCount = %d, want 55", d.ParamCount())
	}
}

// numericalGrad perturbs one weight and measures the loss change.
func numericalGrad(net *Network, x *Batch, labels []int, w *float64) float64 {
	const eps = 1e-5
	orig := *w
	*w = orig + eps
	lossPlus := evalLoss(net, x, labels)
	*w = orig - eps
	lossMinus := evalLoss(net, x, labels)
	*w = orig
	return (lossPlus - lossMinus) / (2 * eps)
}

func evalLoss(net *Network, x *Batch, labels []int) float64 {
	logits := net.Forward(x, false)
	loss, _ := net.softmaxXE(logits, labels)
	return loss
}

// gradientCheck verifies the blocked kernels' analytic gradients against
// central differences at the given parallelism degree.
func gradientCheck(t *testing.T, parallelism int) {
	t.Helper()
	r := xrand.New(7)
	d1 := NewDense(4, 5, r)
	d2 := NewDense(5, 3, r)
	net := NewNetwork(d1, &Tanh{}, d2)
	net.SetParallelism(parallelism)

	x := FromRows([][]float64{{0.5, -0.2, 0.8, 0.1}, {-0.4, 0.9, -0.1, 0.3}})
	labels := []int{0, 2}

	// Compute analytic gradients without updating.
	logits := net.Forward(x, true)
	_, grad := net.softmaxXE(logits, labels)
	for i := len(net.layers) - 1; i >= 0; i-- {
		grad = net.layers[i].Backward(grad)
	}

	check := func(name string, ws, gs []float64) {
		for _, idx := range []int{0, len(ws) / 2, len(ws) - 1} {
			num := numericalGrad(net, x, labels, &ws[idx])
			ana := gs[idx]
			diff := math.Abs(num - ana)
			scale := math.Max(1e-6, math.Abs(num)+math.Abs(ana))
			if diff/scale > 1e-4 {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", name, idx, ana, num)
			}
		}
	}
	check("d1.w", d1.w, d1.gw)
	check("d1.b", d1.b, d1.gb)
	check("d2.w", d2.w, d2.gw)
	check("d2.b", d2.b, d2.gb)
}

func TestGradientCheck(t *testing.T) {
	for _, p := range []int{1, 2, 8} {
		gradientCheck(t, p)
	}
}

func TestReLUForwardBackward(t *testing.T) {
	a := &ReLU{}
	out := a.Forward(FromRows([][]float64{{-1, 0, 2}}), true)
	if out.Row(0)[0] != 0 || out.Row(0)[1] != 0 || out.Row(0)[2] != 2 {
		t.Fatalf("ReLU forward = %v", out.Row(0))
	}
	back := a.Backward(FromRows([][]float64{{5, 5, 5}}))
	if back.Row(0)[0] != 0 || back.Row(0)[1] != 0 || back.Row(0)[2] != 5 {
		t.Fatalf("ReLU backward = %v", back.Row(0))
	}
}

func TestTanhBounds(t *testing.T) {
	a := &Tanh{}
	out := a.Forward(FromRows([][]float64{{-100, 0, 100}}), true)
	o := out.Row(0)
	if o[0] > -0.99 || math.Abs(o[1]) > 1e-12 || o[2] < 0.99 {
		t.Fatalf("Tanh forward = %v", o)
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	d := NewDropout(0.5, xrand.New(1))
	in := FromRows([][]float64{{1, 2, 3, 4}})
	out := d.Forward(in, false)
	if out != in {
		t.Fatal("inactive dropout should pass the batch through unchanged")
	}
}

func TestDropoutTrainZeroesAndScales(t *testing.T) {
	d := NewDropout(0.5, xrand.New(2))
	in := make([]float64, 1000)
	for i := range in {
		in[i] = 1
	}
	out := d.Forward(FromRows([][]float64{in}), true)
	zeros, scaled := 0, 0
	for _, v := range out.Row(0) {
		switch {
		case v == 0:
			zeros++
		case math.Abs(v-2) < 1e-12: // 1/(1-0.5)
			scaled++
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Fatalf("dropout zeroed %d/1000 with rate 0.5", zeros)
	}
	if zeros+scaled != 1000 {
		t.Fatal("dropout outputs not partitioned into zero/scaled")
	}
}

func TestDropoutExpectationPreserved(t *testing.T) {
	d := NewDropout(0.3, xrand.New(3))
	in := make([]float64, 20000)
	for i := range in {
		in[i] = 1
	}
	out := d.Forward(FromRows([][]float64{in}), true)
	sum := 0.0
	for _, v := range out.Row(0) {
		sum += v
	}
	mean := sum / float64(len(in))
	if math.Abs(mean-1) > 0.03 {
		t.Fatalf("inverted dropout mean = %v, want ~1", mean)
	}
}

func TestSoftmaxXEKnownValues(t *testing.T) {
	// Uniform logits over 4 classes: loss = ln(4).
	n := NewNetwork()
	loss, grad := n.softmaxXE(FromRows([][]float64{{0, 0, 0, 0}}), []int{1})
	if math.Abs(loss-math.Log(4)) > 1e-9 {
		t.Fatalf("loss = %v, want ln4", loss)
	}
	// Gradient sums to zero per sample.
	sum := 0.0
	for _, g := range grad.Row(0) {
		sum += g
	}
	if math.Abs(sum) > 1e-9 {
		t.Fatalf("grad sum = %v, want 0", sum)
	}
	if grad.Row(0)[1] >= 0 {
		t.Fatal("gradient at true label should be negative")
	}
}

func TestTrainBatchReducesLossOnFixedBatch(t *testing.T) {
	r := xrand.New(11)
	net := NewNetwork(NewDense(4, 8, r), &ReLU{}, NewDense(8, 2, r))
	x := FromRows([][]float64{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1}})
	labels := []int{0, 0, 1, 1}
	first, err := net.TrainBatch(x, labels, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 100; i++ {
		last, err = net.TrainBatch(x, labels, 0.5)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last >= first {
		t.Fatalf("loss did not decrease: first %v, last %v", first, last)
	}
	if last > 0.1 {
		t.Fatalf("trivially separable batch not memorised: loss %v", last)
	}
}

func TestTrainBatchRejectsBadInput(t *testing.T) {
	net := NewNetwork(NewDense(2, 2, xrand.New(1)))
	if _, err := net.TrainBatch(nil, nil, 0.1); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := net.TrainBatch(FromRows([][]float64{{1, 2}}), []int{0, 1}, 0.1); err == nil {
		t.Fatal("mismatched labels accepted")
	}
}

func trainOn(t *testing.T, w workload.Workload, h params.Hyper, seed uint64, epochs int) float64 {
	t.Helper()
	train, test, err := dataset.Generate(w, seed, dataset.Config{TrainSize: 600, TestSize: 200})
	if err != nil {
		t.Fatal(err)
	}
	r := xrand.New(seed)
	net, err := Build(w.Model, train.Dim, train.NumClasses, h, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	shuffler := r.Split()
	for e := 0; e < epochs; e++ {
		if _, err := net.TrainEpoch(train, h.BatchSize, h.LearningRate, shuffler); err != nil {
			t.Fatal(err)
		}
	}
	acc, _, err := net.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	return acc
}

func TestLearnsBeyondChance(t *testing.T) {
	for _, w := range workload.Catalog() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			h := params.DefaultHyper()
			h.LearningRate = 0.05
			acc := trainOn(t, w, h, 33, 8)
			train, _, _ := dataset.Generate(w, 33, dataset.Config{TrainSize: 600, TestSize: 200})
			chance := 1.0 / float64(train.NumClasses)
			if acc < chance*2 {
				t.Fatalf("%s accuracy %.3f not above 2x chance (%.3f)", w.Name(), acc, chance)
			}
		})
	}
}

func TestLargerBatchLowersAccuracyAtFixedEpochs(t *testing.T) {
	// The Figure 3a mechanism: fewer SGD updates per epoch with batch 1024
	// reduces accuracy within a fixed epoch budget.
	w := workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}
	small := params.DefaultHyper()
	small.BatchSize, small.LearningRate = 32, 0.05
	large := small
	large.BatchSize = 1024
	accSmall := trainOn(t, w, small, 21, 4)
	accLarge := trainOn(t, w, large, 21, 4)
	if accSmall <= accLarge {
		t.Fatalf("batch 32 acc %.3f should exceed batch 1024 acc %.3f", accSmall, accLarge)
	}
}

func TestMoreEpochsHelp(t *testing.T) {
	w := workload.Workload{Model: workload.CNN, Dataset: workload.News20}
	h := params.DefaultHyper()
	h.LearningRate = 0.05
	acc2 := trainOn(t, w, h, 13, 1)
	acc10 := trainOn(t, w, h, 13, 10)
	if acc10 <= acc2 {
		t.Fatalf("10-epoch acc %.3f should exceed 1-epoch acc %.3f", acc10, acc2)
	}
}

func TestBuildAllModels(t *testing.T) {
	h := params.DefaultHyper()
	for _, m := range []workload.Model{
		workload.LeNet5, workload.CNN, workload.LSTM,
		workload.Jacobi, workload.SPKMeans, workload.BFS,
	} {
		net, err := Build(m, 32, 4, h, xrand.New(1))
		if err != nil {
			t.Fatalf("Build(%v): %v", m, err)
		}
		if net.ParamCount() <= 0 {
			t.Fatalf("Build(%v) has no parameters", m)
		}
	}
}

func TestBuildRejectsInvalid(t *testing.T) {
	h := params.DefaultHyper()
	if _, err := Build(workload.LeNet5, 0, 4, h, xrand.New(1)); err == nil {
		t.Fatal("zero input dim accepted")
	}
	if _, err := Build(workload.LeNet5, 4, 1, h, xrand.New(1)); err == nil {
		t.Fatal("single class accepted")
	}
	bad := h
	bad.Epochs = 0
	if _, err := Build(workload.LeNet5, 4, 4, bad, xrand.New(1)); err == nil {
		t.Fatal("invalid hyperparameters accepted")
	}
	if _, err := Build(workload.Model(99), 4, 4, h, xrand.New(1)); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestEmbeddingDimControlsCapacity(t *testing.T) {
	h := params.DefaultHyper()
	h.EmbeddingDim = 50
	small, err := Build(workload.CNN, 128, 20, h, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	h.EmbeddingDim = 300
	big, err := Build(workload.CNN, 128, 20, h, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if big.ParamCount() <= small.ParamCount() {
		t.Fatalf("embedding 300 params %d should exceed embedding 50 params %d",
			big.ParamCount(), small.ParamCount())
	}
}

func TestTrainingIsDeterministic(t *testing.T) {
	w := workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}
	h := params.DefaultHyper()
	a := trainOn(t, w, h, 5, 3)
	b := trainOn(t, w, h, 5, 3)
	if a != b {
		t.Fatalf("same seed produced different accuracies: %v vs %v", a, b)
	}
}

func TestSetParallelismClampsToSerial(t *testing.T) {
	net := NewNetwork(NewDense(2, 2, xrand.New(1)))
	net.SetParallelism(0)
	if net.Parallelism() != 1 {
		t.Fatalf("Parallelism() = %d after SetParallelism(0), want 1", net.Parallelism())
	}
	net.SetParallelism(-3)
	if net.Parallelism() != 1 {
		t.Fatalf("Parallelism() = %d after SetParallelism(-3), want 1", net.Parallelism())
	}
	net.SetParallelism(4)
	if net.Parallelism() != 4 {
		t.Fatalf("Parallelism() = %d, want 4", net.Parallelism())
	}
}

func TestEvaluateRejectsEmpty(t *testing.T) {
	net := NewNetwork(NewDense(2, 2, xrand.New(1)))
	if _, _, err := net.Evaluate(&dataset.Set{}); err == nil {
		t.Fatal("empty evaluation set accepted")
	}
}

func TestTrainEpochRejectsBadBatch(t *testing.T) {
	train, _, _ := dataset.Generate(workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}, 1,
		dataset.Config{TrainSize: 64, TestSize: 16})
	net := NewNetwork(NewDense(train.Dim, 10, xrand.New(1)))
	if _, err := net.TrainEpoch(train, 0, 0.1, xrand.New(2)); err == nil {
		t.Fatal("zero batch size accepted")
	}
	if _, err := net.TrainEpoch(&dataset.Set{}, 32, 0.1, xrand.New(2)); err == nil {
		t.Fatal("empty set accepted")
	}
}
