package nn

import (
	"testing"

	"pipetune/internal/dataset"
	"pipetune/internal/params"
	"pipetune/internal/workload"
	"pipetune/internal/xrand"
)

func BenchmarkTrainEpochLeNet(b *testing.B) {
	w := workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}
	train, _, err := dataset.Generate(w, 1, dataset.Config{TrainSize: 512, TestSize: 64})
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(1)
	net, err := Build(w.Model, train.Dim, train.NumClasses, params.DefaultHyper(), r.Split())
	if err != nil {
		b.Fatal(err)
	}
	shuffler := r.Split()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.TrainEpoch(train, 32, 0.01, shuffler); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluate(b *testing.B) {
	w := workload.Workload{Model: workload.CNN, Dataset: workload.News20}
	train, test, err := dataset.Generate(w, 1, dataset.Config{TrainSize: 256, TestSize: 256})
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(1)
	net, err := Build(w.Model, train.Dim, train.NumClasses, params.DefaultHyper(), r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := net.Evaluate(test); err != nil {
			b.Fatal(err)
		}
	}
}
