package nn

import (
	"testing"

	"pipetune/internal/dataset"
	"pipetune/internal/params"
	"pipetune/internal/workload"
	"pipetune/internal/xrand"
)

func BenchmarkTrainEpochLeNet(b *testing.B) {
	w := workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}
	train, _, err := dataset.Generate(w, 1, dataset.Config{TrainSize: 512, TestSize: 64})
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(1)
	net, err := Build(w.Model, train.Dim, train.NumClasses, params.DefaultHyper(), r.Split())
	if err != nil {
		b.Fatal(err)
	}
	shuffler := r.Split()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.TrainEpoch(train, 32, 0.01, shuffler); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluate(b *testing.B) {
	w := workload.Workload{Model: workload.CNN, Dataset: workload.News20}
	train, test, err := dataset.Generate(w, 1, dataset.Config{TrainSize: 256, TestSize: 256})
	if err != nil {
		b.Fatal(err)
	}
	r := xrand.New(1)
	net, err := Build(w.Model, train.Dim, train.NumClasses, params.DefaultHyper(), r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := net.Evaluate(test); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernels times the blocked Dense kernels in isolation at the
// zoo's dominant shapes (LeNet first layer, CNN embedding layer).
func BenchmarkKernels(b *testing.B) {
	shapes := []struct {
		name          string
		rows, in, out int
	}{
		{"dense-fwd-32x64x48", 32, 64, 48},
		{"dense-fwd-32x128x300", 32, 128, 300},
	}
	for _, sh := range shapes {
		b.Run(sh.name, func(b *testing.B) {
			r := xrand.New(1)
			d := NewDense(sh.in, sh.out, r)
			x := &Batch{Data: make([]float64, sh.rows*sh.in), Rows: sh.rows, Cols: sh.in}
			for i := range x.Data {
				x.Data[i] = r.Range(-1, 1)
			}
			d.Forward(x, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Forward(x, true)
			}
		})
		b.Run(sh.name[:6]+"bwd"+sh.name[9:], func(b *testing.B) {
			r := xrand.New(1)
			d := NewDense(sh.in, sh.out, r)
			x := &Batch{Data: make([]float64, sh.rows*sh.in), Rows: sh.rows, Cols: sh.in}
			g := &Batch{Data: make([]float64, sh.rows*sh.out), Rows: sh.rows, Cols: sh.out}
			for i := range x.Data {
				x.Data[i] = r.Range(-1, 1)
			}
			for i := range g.Data {
				g.Data[i] = r.Range(-1, 1)
			}
			d.Forward(x, true)
			d.Backward(g)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Backward(g)
			}
		})
	}
}

// TestTrainHotPathAllocs pins the tentpole claim: once arenas are sized
// (one warm-up pass), TrainBatch allocates nothing — serial or parallel.
func TestTrainHotPathAllocs(t *testing.T) {
	for _, p := range []int{1, 2} {
		w := workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}
		train, _, err := dataset.Generate(w, 1, dataset.Config{TrainSize: 64, TestSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		net, err := Build(w.Model, train.Dim, train.NumClasses, params.DefaultHyper(), xrand.New(1))
		if err != nil {
			t.Fatal(err)
		}
		net.SetParallelism(p)
		x := &Batch{Data: make([]float64, 32*train.Dim), Rows: 32, Cols: train.Dim}
		labels := make([]int, 32)
		for i := range labels {
			copy(x.Row(i), train.Samples[i].Features)
			labels[i] = train.Samples[i].Label
		}
		// Warm up: first calls bind kernel closures and start the pool.
		for i := 0; i < 3; i++ {
			if _, err := net.TrainBatch(x, labels, 0.01); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(50, func() {
			if _, err := net.TrainBatch(x, labels, 0.01); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("TrainBatch steady state allocates %.1f/op at parallelism %d, want 0", allocs, p)
		}
	}
}

// TestEpochHotPathAllocs extends the claim to the full epoch loop —
// shuffle, gather, batches — which reuses the network's own arenas.
func TestEpochHotPathAllocs(t *testing.T) {
	w := workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}
	train, _, err := dataset.Generate(w, 1, dataset.Config{TrainSize: 128, TestSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	net, err := Build(w.Model, train.Dim, train.NumClasses, params.DefaultHyper(), xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	sh := xrand.New(2)
	for i := 0; i < 2; i++ {
		if _, err := net.TrainEpoch(train, 32, 0.01, sh); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := net.TrainEpoch(train, 32, 0.01, sh); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("TrainEpoch steady state allocates %.1f/op, want 0", allocs)
	}
}
