// Package costmodel predicts the duration of one training epoch as a
// function of the workload, the hyperparameters and the system parameters.
//
// It replaces the wall clock of the paper's physical cluster with the
// mechanism §3.2 describes for synchronous minibatch SGD (as implemented by
// BigDL): every iteration computes gradients on a mini-batch divided across
// N cores and then performs a single synchronised weight update. Three terms
// dominate:
//
//	compute  — total per-sample work, shrunk sublinearly by core count
//	           (Amdahl) and improved slightly by larger batches
//	           (vectorisation efficiency);
//	sync     — a per-iteration barrier/aggregation cost that GROWS with
//	           core count and with model size, and is amortised by larger
//	           batches (fewer iterations per epoch);
//	memory   — a spill penalty when the allocated memory is below the
//	           trial's working set.
//
// The balance of the first two terms is what yields the paper's Figure 3
// shapes: adding cores speeds up batch-1024 epochs but slows down batch-64
// epochs, because small batches mean many synchronisations whose cost rises
// with parallelism.
package costmodel

import (
	"fmt"
	"math"

	"pipetune/internal/params"
	"pipetune/internal/workload"
)

// Model holds the calibration constants. Use Default for the constants
// calibrated against the paper's Figure 3 (see package tests).
type Model struct {
	// ParallelFraction is the Amdahl parallel fraction p of the compute
	// term: speedup(n) = 1 / ((1-p) + p/n).
	ParallelFraction float64

	// SyncScale scales the per-epoch synchronisation cost (cost-model
	// units, same scale as one sample of unit-FLOP work).
	SyncScale float64

	// SyncGrowthCoeff/SyncGrowthExp shape the core-count growth of each
	// synchronisation: g(n) = 1 + coeff*(n-1)^exp.
	SyncGrowthCoeff float64
	SyncGrowthExp   float64

	// SyncAmortExp is the exponent applied to the iteration count when
	// accumulating sync cost; values below 1 model partial overlap of
	// consecutive barriers (Drizzle-style scheduling, §3.2).
	SyncAmortExp float64

	// VecEffHalfBatch is the batch size at which vectorisation efficiency
	// reaches 50%: eff(b) = b / (b + VecEffHalfBatch).
	VecEffHalfBatch float64

	// SpillPenalty is the maximum slowdown multiplier applied when memory
	// is insufficient (linear in the shortfall fraction).
	SpillPenalty float64
}

// Default returns the calibrated constants. The derivation pins batch-64
// epochs to slow down ~1.4x when going from 1 to 8 cores while batch-1024
// epochs speed up ~2x, matching Figure 3b's envelope.
func Default() Model {
	return Model{
		ParallelFraction: 0.93,
		SyncScale:        368.0,
		SyncGrowthCoeff:  1.3,
		SyncGrowthExp:    0.53,
		SyncAmortExp:     0.6,
		VecEffHalfBatch:  24,
		SpillPenalty:     1.5,
	}
}

// Speedup returns the Amdahl compute speedup for n cores.
func (m Model) Speedup(n int) float64 {
	p := m.ParallelFraction
	return 1 / ((1 - p) + p/float64(n))
}

// syncGrowth returns the per-synchronisation cost multiplier at n cores.
func (m Model) syncGrowth(n int) float64 {
	return 1 + m.SyncGrowthCoeff*math.Pow(float64(n-1), m.SyncGrowthExp)
}

// vecEff returns the vectorisation efficiency of batch size b in (0,1).
func (m Model) vecEff(b int) float64 {
	return float64(b) / (float64(b) + m.VecEffHalfBatch)
}

// capacityFactor scales per-sample work with the embedding width for
// models that use it (EmbedSensitivity > 0).
func capacityFactor(tr workload.Traits, h params.Hyper) float64 {
	return 1 + tr.EmbedSensitivity*(float64(h.EmbeddingDim)-100)/200
}

// MemoryRequiredGB returns the trial's working set under h: the base
// working set grows moderately with batch size and embedding width.
func MemoryRequiredGB(tr workload.Traits, h params.Hyper) float64 {
	return tr.WorkingSetGB * (0.7 +
		0.2*float64(h.BatchSize)/1024 +
		0.1*float64(h.EmbeddingDim)/300)
}

// Breakdown reports the three components of one epoch in cost-model units,
// before normalisation to seconds. Exposed for tests, the energy model
// (which needs the compute/sync split to estimate power draw) and the
// ablation benchmarks.
type Breakdown struct {
	ComputeUnits float64 // parallelised per-sample work
	SyncUnits    float64 // synchronisation cost across the epoch
	MemPenalty   float64 // multiplier >= 1
}

// Total returns the penalised unit total.
func (b Breakdown) Total() float64 {
	return (b.ComputeUnits + b.SyncUnits) * b.MemPenalty
}

// ComputeFraction returns the share of epoch time spent computing (as
// opposed to synchronising); the energy model draws more power during
// compute-heavy phases.
func (b Breakdown) ComputeFraction() float64 {
	t := b.ComputeUnits + b.SyncUnits
	if t == 0 {
		return 0
	}
	return b.ComputeUnits / t
}

// EpochBreakdown computes the component split for one epoch.
func (m Model) EpochBreakdown(tr workload.Traits, h params.Hyper, sys params.SysConfig) (Breakdown, error) {
	if err := h.Validate(); err != nil {
		return Breakdown{}, fmt.Errorf("costmodel: %w", err)
	}
	if err := sys.Validate(); err != nil {
		return Breakdown{}, fmt.Errorf("costmodel: %w", err)
	}
	if tr.TrainFiles <= 0 || tr.FLOPsPerSample <= 0 {
		return Breakdown{}, fmt.Errorf("costmodel: invalid traits %+v", tr)
	}
	n := float64(tr.TrainFiles)
	cap := capacityFactor(tr, h)

	compute := n * tr.FLOPsPerSample * cap / (m.Speedup(sys.Cores) * m.vecEff(h.BatchSize))

	iters := math.Ceil(n / float64(h.BatchSize))
	paramFactor := math.Sqrt(tr.ParamCountK / 60)
	sync := m.SyncScale * math.Pow(iters, m.SyncAmortExp) * paramFactor *
		math.Sqrt(cap) * m.syncGrowth(sys.Cores)

	penalty := 1.0
	required := MemoryRequiredGB(tr, h)
	if float64(sys.MemoryGB) < required {
		shortfall := (required - float64(sys.MemoryGB)) / required
		penalty = 1 + m.SpillPenalty*shortfall
	}
	return Breakdown{ComputeUnits: compute, SyncUnits: sync, MemPenalty: penalty}, nil
}

// EpochDuration returns the simulated duration in seconds of one epoch of
// the workload under (h, sys). Durations are normalised so that the default
// hyper/system configuration reproduces the workload's calibrated
// EpochSeconds anchor.
func (m Model) EpochDuration(tr workload.Traits, h params.Hyper, sys params.SysConfig) (float64, error) {
	bd, err := m.EpochBreakdown(tr, h, sys)
	if err != nil {
		return 0, err
	}
	ref, err := m.EpochBreakdown(tr, params.DefaultHyper(), params.DefaultSysConfig())
	if err != nil {
		return 0, err
	}
	return tr.EpochSeconds * bd.Total() / ref.Total(), nil
}

// TrialDuration returns the simulated duration of a full trial: h.Epochs
// epochs plus a fixed initialisation phase (dataset load + model build;
// Figure 2 shows the distinct "Init." phase before epoch 1).
func (m Model) TrialDuration(tr workload.Traits, h params.Hyper, sys params.SysConfig) (float64, error) {
	epoch, err := m.EpochDuration(tr, h, sys)
	if err != nil {
		return 0, err
	}
	return m.InitDuration(tr) + float64(h.Epochs)*epoch, nil
}

// InitDuration returns the simulated initialisation-phase duration.
func (m Model) InitDuration(tr workload.Traits) float64 {
	// Loading scales with the corpus size; floor keeps it visible for the
	// tiny Type-III workloads.
	d := 0.5 * float64(tr.DatasizeMB)
	if d < 5 {
		d = 5
	}
	return d
}

// WithLoad applies a contention multiplier to a duration: load is the
// number of jobs time-sharing the same cores (Figure 5's background-job
// setup). load <= 1 leaves the duration unchanged.
func WithLoad(duration, load float64) float64 {
	if load <= 1 {
		return duration
	}
	// Time-sharing plus a 5% context-switching tax per extra job.
	return duration * load * (1 + 0.05*(load-1))
}
