package costmodel

import (
	"testing"
	"testing/quick"

	"pipetune/internal/params"
	"pipetune/internal/workload"
)

var lenetMNIST = workload.TraitsFor(workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST})

func dur(t *testing.T, tr workload.Traits, batch, cores, memGB int) float64 {
	t.Helper()
	h := params.DefaultHyper()
	h.BatchSize = batch
	d, err := Default().EpochDuration(tr, h, params.SysConfig{Cores: cores, MemoryGB: memGB})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDefaultConfigHitsAnchor(t *testing.T) {
	d, err := Default().EpochDuration(lenetMNIST, params.DefaultHyper(), params.DefaultSysConfig())
	if err != nil {
		t.Fatal(err)
	}
	if diff := d - lenetMNIST.EpochSeconds; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("default epoch duration = %v, want anchor %v", d, lenetMNIST.EpochSeconds)
	}
}

// Figure 3b mechanism: more cores must SLOW DOWN small-batch epochs and
// SPEED UP large-batch epochs.
func TestCoresHurtSmallBatch(t *testing.T) {
	base := dur(t, lenetMNIST, 64, 1, 32)
	at8 := dur(t, lenetMNIST, 64, 8, 32)
	if at8 <= base {
		t.Fatalf("batch 64: 8 cores (%v s) should be slower than 1 core (%v s)", at8, base)
	}
	slowdown := at8 / base
	if slowdown < 1.1 || slowdown > 2.0 {
		t.Fatalf("batch 64 slowdown at 8 cores = %.2fx, want within [1.1, 2.0] (paper ~1.4x)", slowdown)
	}
}

func TestCoresHelpLargeBatch(t *testing.T) {
	base := dur(t, lenetMNIST, 1024, 1, 32)
	at8 := dur(t, lenetMNIST, 1024, 8, 32)
	if at8 >= base {
		t.Fatalf("batch 1024: 8 cores (%v s) should be faster than 1 core (%v s)", at8, base)
	}
	speedup := base / at8
	if speedup < 1.3 || speedup > 4.0 {
		t.Fatalf("batch 1024 speedup at 8 cores = %.2fx, want within [1.3, 4.0] (paper ~1.7x)", speedup)
	}
}

func TestMidBatchBetweenExtremes(t *testing.T) {
	rel := func(batch int) float64 {
		return dur(t, lenetMNIST, batch, 8, 32) / dur(t, lenetMNIST, batch, 1, 32)
	}
	r64, r256, r1024 := rel(64), rel(256), rel(1024)
	if !(r1024 < r256 && r256 < r64) {
		t.Fatalf("core-scaling ratios not ordered by batch: 64=%.2f 256=%.2f 1024=%.2f", r64, r256, r1024)
	}
}

// Figure 3a mechanism: larger batches shorten epochs at the default system
// configuration (fewer synchronisations).
func TestLargerBatchShortensEpoch(t *testing.T) {
	prev := dur(t, lenetMNIST, 32, 8, 8)
	for _, b := range []int{64, 256, 1024} {
		d := dur(t, lenetMNIST, b, 8, 8)
		if d >= prev {
			t.Fatalf("batch %d epoch (%v s) not shorter than previous (%v s)", b, d, prev)
		}
		prev = d
	}
}

func TestMemoryShortfallPenalises(t *testing.T) {
	ample := dur(t, lenetMNIST, 256, 8, 32)
	starved := dur(t, lenetMNIST, 256, 8, 1)
	if starved <= ample {
		t.Fatalf("memory starvation did not slow the epoch: %v vs %v", starved, ample)
	}
}

func TestMemoryAboveWorkingSetIsFree(t *testing.T) {
	at16 := dur(t, lenetMNIST, 256, 8, 16)
	at32 := dur(t, lenetMNIST, 256, 8, 32)
	if at16 != at32 {
		t.Fatalf("memory above the working set changed duration: %v vs %v", at16, at32)
	}
}

func TestEmbeddingDimScalesTextModels(t *testing.T) {
	lstm := workload.TraitsFor(workload.Workload{Model: workload.LSTM, Dataset: workload.News20})
	h := params.DefaultHyper()
	h.EmbeddingDim = 50
	lo, err := Default().EpochDuration(lstm, h, params.DefaultSysConfig())
	if err != nil {
		t.Fatal(err)
	}
	h.EmbeddingDim = 300
	hi, err := Default().EpochDuration(lstm, h, params.DefaultSysConfig())
	if err != nil {
		t.Fatal(err)
	}
	if hi <= lo {
		t.Fatalf("embedding 300 epoch (%v) not slower than embedding 50 (%v)", hi, lo)
	}

	// LeNet must be insensitive to the embedding dimension.
	lenetLo, _ := Default().EpochDuration(lenetMNIST, func() params.Hyper { h := params.DefaultHyper(); h.EmbeddingDim = 50; return h }(), params.DefaultSysConfig())
	lenetHi, _ := Default().EpochDuration(lenetMNIST, func() params.Hyper { h := params.DefaultHyper(); h.EmbeddingDim = 300; return h }(), params.DefaultSysConfig())
	if lenetLo != lenetHi {
		t.Fatalf("LeNet duration depends on embedding dim: %v vs %v", lenetLo, lenetHi)
	}
}

func TestTrialDurationIncludesInit(t *testing.T) {
	m := Default()
	h := params.DefaultHyper()
	h.Epochs = 3
	trial, err := m.TrialDuration(lenetMNIST, h, params.DefaultSysConfig())
	if err != nil {
		t.Fatal(err)
	}
	epoch, err := m.EpochDuration(lenetMNIST, h, params.DefaultSysConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := m.InitDuration(lenetMNIST) + 3*epoch
	if diff := trial - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("trial duration %v != init + 3 epochs %v", trial, want)
	}
}

func TestBreakdownFractions(t *testing.T) {
	h := params.DefaultHyper()
	bd, err := Default().EpochBreakdown(lenetMNIST, h, params.DefaultSysConfig())
	if err != nil {
		t.Fatal(err)
	}
	frac := bd.ComputeFraction()
	if frac <= 0 || frac >= 1 {
		t.Fatalf("compute fraction = %v, want in (0,1)", frac)
	}
	if bd.MemPenalty < 1 {
		t.Fatalf("memory penalty %v < 1", bd.MemPenalty)
	}
	if bd.Total() <= 0 {
		t.Fatalf("total %v <= 0", bd.Total())
	}
}

func TestRejectsInvalidInputs(t *testing.T) {
	m := Default()
	h := params.DefaultHyper()
	badH := h
	badH.BatchSize = 0
	if _, err := m.EpochDuration(lenetMNIST, badH, params.DefaultSysConfig()); err == nil {
		t.Fatal("invalid hyper accepted")
	}
	if _, err := m.EpochDuration(lenetMNIST, h, params.SysConfig{Cores: 0, MemoryGB: 8}); err == nil {
		t.Fatal("invalid sysconfig accepted")
	}
	if _, err := m.EpochDuration(workload.Traits{}, h, params.DefaultSysConfig()); err == nil {
		t.Fatal("invalid traits accepted")
	}
}

func TestWithLoad(t *testing.T) {
	if got := WithLoad(100, 1); got != 100 {
		t.Fatalf("load 1 changed duration: %v", got)
	}
	if got := WithLoad(100, 0.5); got != 100 {
		t.Fatalf("load < 1 changed duration: %v", got)
	}
	two := WithLoad(100, 2)
	if two <= 200 {
		t.Fatalf("load 2 = %v, want > 200 (time-sharing + overhead)", two)
	}
	three := WithLoad(100, 3)
	if three <= two {
		t.Fatal("load 3 not slower than load 2")
	}
}

func TestSpeedupMonotone(t *testing.T) {
	m := Default()
	prev := 0.0
	for n := 1; n <= 16; n++ {
		s := m.Speedup(n)
		if s <= prev {
			t.Fatalf("speedup not increasing at n=%d: %v <= %v", n, s, prev)
		}
		if s > float64(n) {
			t.Fatalf("superlinear speedup at n=%d: %v", n, s)
		}
		prev = s
	}
}

// Property: durations are positive and finite for every point of the paper
// search spaces across all workloads.
func TestQuickDurationsPositive(t *testing.T) {
	m := Default()
	hSpace := params.PaperHyperSpace()
	sSpace := params.PaperSystemSpace()
	f := func(wIdx, hIdx, sIdx uint16) bool {
		w := workload.Catalog()[int(wIdx)%7]
		h := hSpace.At(int(hIdx) % hSpace.Size()).ApplyHyper(params.DefaultHyper())
		sys := sSpace.At(int(sIdx) % sSpace.Size()).ApplySys(params.DefaultSysConfig())
		d, err := m.EpochDuration(workload.TraitsFor(w), h, sys)
		return err == nil && d > 0 && d < 1e7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
