package perf

import (
	"testing"

	"pipetune/internal/params"
	"pipetune/internal/workload"
	"pipetune/internal/xrand"
)

func BenchmarkSample(b *testing.B) {
	s := NewSampler()
	tr := workload.TraitsFor(workload.Workload{Model: workload.CNN, Dataset: workload.News20})
	r := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Sample(r, tr, params.DefaultHyper(), params.DefaultSysConfig(), PhaseTrain); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEpochProfile(b *testing.B) {
	s := NewSampler()
	tr := workload.TraitsFor(workload.Workload{Model: workload.LSTM, Dataset: workload.News20})
	r := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.EpochProfile(r, tr, params.DefaultHyper(), params.DefaultSysConfig(), PhaseTrain, 300); err != nil {
			b.Fatal(err)
		}
	}
}
