// Package perf simulates the hardware performance-counter profiling pipeline
// of §5.3: 58 measurable PMU events (the exact Figure 2 list) sampled every
// second through a CPU with only 2 generic and 3 fixed counters, so events
// are time-multiplexed by the kernel and rescaled with
//
//	final_count = raw_count * time_enabled / time_running
//
// which introduces estimation error for multiplexed events. Per-epoch
// averages of the rescaled rates form the 58-dimensional workload profile
// that PipeTune's ground-truth phase clusters.
//
// Event rates are derived mechanistically from workload traits (compute /
// memory / branch intensity, working set) and the system configuration, so
// that epochs of the same workload produce near-identical profiles
// (Figure 2's repetitive columns) while distinct workload families remain
// separable (Figure 8's clusters) — without the simulator ever seeing the
// model or dataset identity (the §5.5 privacy property).
package perf

import (
	"fmt"
	"math"
	"strings"

	"pipetune/internal/costmodel"
	"pipetune/internal/params"
	"pipetune/internal/stats"
	"pipetune/internal/workload"
	"pipetune/internal/xrand"
)

// NumEvents is the number of PMU events profiled (§5.3).
const NumEvents = 58

// eventNames is the exact Figure 2 event list, in its display order.
var eventNames = []string{
	"L1-dcache-load-misses", "L1-dcache-loads", "L1-dcache-stores",
	"L1-icache-load-misses", "LLC-load-misses", "LLC-loads",
	"LLC-store-misses", "LLC-stores", "branch-load-misses", "branch-loads",
	"branch-misses", "branches", "bus-cycles", "cache-misses",
	"cache-references", "cpu-cycles", "cpu/branch-instructions/",
	"cpu/branch-misses/", "cpu/bus-cycles/", "cpu/cache-misses/",
	"cpu/cache-references/", "cpu/cpu-cycles/", "cpu/cycles-ct/",
	"cpu/cycles-t/", "cpu/el-abort/", "cpu/el-capacity/", "cpu/el-commit/",
	"cpu/el-conflict/", "cpu/el-start/", "cpu/instructions/",
	"cpu/mem-loads/", "cpu/mem-stores/", "cpu/topdown-fetch-bubbles/",
	"cpu/topdown-recovery-bubbles/", "cpu/topdown-slots-issued/",
	"cpu/topdown-slots-retired/", "cpu/topdown-total-slots/",
	"cpu/tx-abort/", "cpu/tx-capacity/", "cpu/tx-commit/",
	"cpu/tx-conflict/", "cpu/tx-start/", "dTLB-load-misses", "dTLB-loads",
	"dTLB-store-misses", "dTLB-stores", "iTLB-load-misses", "iTLB-loads",
	"instructions", "msr/aperf/", "msr/mperf/", "msr/pperf/", "msr/smi/",
	"msr/tsc/", "node-load-misses", "node-loads", "node-store-misses",
	"node-stores",
}

// EventNames returns a copy of the 58 event names in display order.
func EventNames() []string {
	out := make([]string, NumEvents)
	copy(out, eventNames)
	return out
}

// EventIndex returns the index of a named event, or -1 if unknown.
func EventIndex(name string) int {
	for i, n := range eventNames {
		if n == name {
			return i
		}
	}
	return -1
}

// Fixed-counter events: common Intel PMUs dedicate fixed counters to
// cycles, instructions and reference/bus cycles; these never multiplex.
var fixedEvents = map[int]bool{
	EventIndexMust("cpu-cycles"):   true,
	EventIndexMust("instructions"): true,
	EventIndexMust("bus-cycles"):   true,
}

// EventIndexMust is EventIndex for known-good names; it panics on a typo,
// which is a programming error caught by the package tests.
func EventIndexMust(name string) int {
	i := EventIndex(name)
	if i < 0 {
		panic("perf: unknown event " + name)
	}
	return i
}

// GenericCounters is the number of programmable counters available for the
// remaining events; they share hardware via time multiplexing (§5.3).
const GenericCounters = 2

// Phase distinguishes the initiation phase from training epochs; Figure 2
// shows them with visibly different event mixes.
type Phase int

// Profiling phases.
const (
	PhaseInit Phase = iota + 1
	PhaseTrain
)

// Profile is one per-epoch average of the 58 event rates (events/second).
type Profile []float64

// Features returns the similarity feature vector: log1p-scaled (raw rates
// span 1e2..1e8+, Figure 2's colour scale) and mean-centred. Centring in
// log space removes multiplicative factors common to every event — core
// count and utilisation scale the whole counter vector — so similarity
// captures the workload's *shape*, which is what identifies a workload
// family regardless of the system configuration it happened to run on.
func (p Profile) Features() []float64 {
	f := stats.Log1pScale(p)
	mean := stats.Mean(f)
	for i := range f {
		f[i] -= mean
	}
	return f
}

// eventTraits holds the per-event generative parameters, derived once from
// a fixed seed so every Sampler agrees on the event model.
type eventTraits struct {
	logBase     float64 // base log10 rate at reference cycles
	wCompute    float64 // sensitivity to compute intensity
	wMemory     float64 // sensitivity to memory intensity
	wBranch     float64 // sensitivity to branch intensity
	missLike    bool    // miss-type events respond to batch locality
	memoryClass bool    // memory-hierarchy events respond to spill pressure
}

// Sampler generates per-second event observations and per-epoch profiles.
type Sampler struct {
	table []eventTraits
	model costmodel.Model
}

// NewSampler builds a sampler with the canonical event table.
func NewSampler() *Sampler {
	r := xrand.New(0x5eed_e4e7) // fixed: the event model is part of the spec
	table := make([]eventTraits, NumEvents)
	for i, name := range eventNames {
		et := eventTraits{
			wCompute: r.Range(-0.5, 0.5),
			wMemory:  r.Range(-0.5, 0.5),
			wBranch:  r.Range(-0.5, 0.5),
		}
		lower := strings.ToLower(name)
		switch {
		case strings.Contains(lower, "miss") || strings.Contains(lower, "bubble") ||
			strings.Contains(lower, "abort") || strings.Contains(lower, "conflict"):
			et.logBase = r.Range(3.5, 5.5)
			et.missLike = true
		case strings.Contains(lower, "cycles") || strings.Contains(lower, "slots") ||
			strings.Contains(lower, "msr"):
			et.logBase = r.Range(7.5, 9.0)
		case strings.Contains(lower, "instructions"):
			et.logBase = r.Range(8.0, 9.0)
		default:
			et.logBase = r.Range(5.5, 7.5)
		}
		switch {
		case strings.Contains(lower, "branch"):
			et.wBranch += 1.6
		case strings.Contains(lower, "l1") || strings.Contains(lower, "llc") ||
			strings.Contains(lower, "cache") || strings.Contains(lower, "tlb") ||
			strings.Contains(lower, "node") || strings.Contains(lower, "mem"):
			et.wMemory += 1.6
			et.memoryClass = true
		default:
			et.wCompute += 1.2
		}
		if strings.Contains(lower, "smi") { // system-management interrupts: rare
			et.logBase = r.Range(0.5, 1.5)
		}
		table[i] = et
	}
	return &Sampler{table: table, model: costmodel.Default()}
}

// MultiplexScale applies the kernel's estimate for a counter that was only
// scheduled for part of the window: final = raw * enabled / running. A
// non-positive running time yields 0 (the event was never scheduled).
func MultiplexScale(raw, timeEnabled, timeRunning float64) float64 {
	if timeRunning <= 0 {
		return 0
	}
	return raw * timeEnabled / timeRunning
}

// trueRate computes the noiseless events/second for event i.
func (s *Sampler) trueRate(i int, tr workload.Traits, h params.Hyper, sys params.SysConfig, phase Phase) float64 {
	et := s.table[i]
	// Active cycles scale with cores; utilisation drops during the
	// sync-heavy regimes the cost model identifies.
	bd, err := s.model.EpochBreakdown(tr, h, sys)
	util := 0.7
	if err == nil {
		util = 0.45 + 0.55*bd.ComputeFraction()
	}
	cyclesScale := float64(sys.Cores) / 8.0 * util

	mix := math.Exp(et.wCompute*(tr.ComputeIntensity-0.5) +
		et.wMemory*(tr.MemoryIntensity-0.5) +
		et.wBranch*(tr.BranchIntensity-0.5))

	rate := math.Pow(10, et.logBase) * cyclesScale * mix

	if et.missLike {
		// Larger batches improve locality: fewer misses per second. The
		// effect is kept an order of magnitude below the inter-family
		// differences so configuration changes perturb a workload's
		// signature without moving it across family clusters.
		rate *= math.Pow(32/float64(h.BatchSize), 0.05)
	}
	if et.memoryClass {
		required := costmodel.MemoryRequiredGB(tr, h)
		if float64(sys.MemoryGB) < required {
			shortfall := (required - float64(sys.MemoryGB)) / required
			rate *= 1 + 0.4*shortfall
		}
	}
	if phase == PhaseInit {
		// Initiation is I/O- and allocation-heavy: memory events up,
		// compute events down (the distinct "Init." column of Figure 2).
		if et.memoryClass {
			rate *= 1.8
		} else {
			rate *= 0.5
		}
	}
	return rate
}

// Sample returns one 1-second observation of all 58 events, including
// multiplexing estimation error: fixed-counter events carry only ~0.5%
// measurement noise, while generic events are observed for a 2/55 share of
// the window and rescaled, leaving a few percent of estimation error.
func (s *Sampler) Sample(r *xrand.Source, tr workload.Traits, h params.Hyper, sys params.SysConfig, phase Phase) (Profile, error) {
	if phase != PhaseInit && phase != PhaseTrain {
		return nil, fmt.Errorf("perf: invalid phase %d", phase)
	}
	if err := h.Validate(); err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}
	multiplexed := NumEvents - len(fixedEvents)
	share := float64(GenericCounters) / float64(multiplexed)
	out := make(Profile, NumEvents)
	for i := range out {
		rate := s.trueRate(i, tr, h, sys, phase)
		if fixedEvents[i] {
			out[i] = r.Jitter(rate, 0.005)
			continue
		}
		// The event is scheduled for `share` of the window; the count
		// observed during that slice is rescaled to the full window.
		timeEnabled := 1.0
		timeRunning := share * r.Jitter(1, 0.10) // scheduling slack
		raw := rate * timeRunning * r.Jitter(1, 0.02)
		out[i] = MultiplexScale(raw, timeEnabled, timeRunning)
	}
	return out, nil
}

// EpochProfile averages per-second samples across an epoch window of the
// given duration (minimum one sample), exactly as §5.3 stores "the average
// of results during each epoch's time window".
func (s *Sampler) EpochProfile(r *xrand.Source, tr workload.Traits, h params.Hyper, sys params.SysConfig, phase Phase, epochSeconds float64) (Profile, error) {
	n := int(epochSeconds)
	if n < 1 {
		n = 1
	}
	// Cap the per-epoch sample count: averaging 30 one-second samples is
	// statistically indistinguishable from averaging 600 and keeps long
	// simulated epochs cheap.
	if n > 30 {
		n = 30
	}
	sum := make(Profile, NumEvents)
	for k := 0; k < n; k++ {
		smp, err := s.Sample(r, tr, h, sys, phase)
		if err != nil {
			return nil, err
		}
		for i, v := range smp {
			sum[i] += v
		}
	}
	for i := range sum {
		sum[i] /= float64(n)
	}
	return sum, nil
}
