package perf

import (
	"math"
	"testing"

	"pipetune/internal/params"
	"pipetune/internal/stats"
	"pipetune/internal/workload"
	"pipetune/internal/xrand"
)

func TestEventListHas58UniqueNames(t *testing.T) {
	names := EventNames()
	if len(names) != NumEvents || NumEvents != 58 {
		t.Fatalf("event list has %d entries, want 58", len(names))
	}
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if n == "" || seen[n] {
			t.Fatalf("duplicate or empty event name %q", n)
		}
		seen[n] = true
	}
}

func TestEventIndexRoundTrip(t *testing.T) {
	for i, n := range EventNames() {
		if got := EventIndex(n); got != i {
			t.Fatalf("EventIndex(%q) = %d, want %d", n, got, i)
		}
	}
	if EventIndex("not-an-event") != -1 {
		t.Fatal("unknown event should index to -1")
	}
}

func TestMultiplexScale(t *testing.T) {
	// §5.3: final = raw * enabled / running.
	if got := MultiplexScale(100, 1.0, 0.5); got != 200 {
		t.Fatalf("MultiplexScale = %v, want 200", got)
	}
	if got := MultiplexScale(100, 1.0, 0); got != 0 {
		t.Fatalf("zero running time should yield 0, got %v", got)
	}
}

func profileFor(t *testing.T, w workload.Workload, h params.Hyper, sys params.SysConfig, seed uint64) Profile {
	t.Helper()
	s := NewSampler()
	p, err := s.EpochProfile(xrand.New(seed), workload.TraitsFor(w), h, sys, PhaseTrain, 60)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProfilesArePositiveFinite(t *testing.T) {
	for _, w := range workload.Catalog() {
		p := profileFor(t, w, params.DefaultHyper(), params.DefaultSysConfig(), 3)
		if len(p) != NumEvents {
			t.Fatalf("profile has %d events", len(p))
		}
		for i, v := range p {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s event %s = %v", w.Name(), EventNames()[i], v)
			}
		}
	}
}

// Figure 2's property: epochs of the same workload repeat with nearly the
// same event rates.
func TestEpochsOfSameWorkloadAreStable(t *testing.T) {
	w := workload.Workload{Model: workload.CNN, Dataset: workload.News20}
	a := profileFor(t, w, params.DefaultHyper(), params.DefaultSysConfig(), 1)
	b := profileFor(t, w, params.DefaultHyper(), params.DefaultSysConfig(), 2)
	for i := range a {
		rel := math.Abs(a[i]-b[i]) / math.Max(a[i], 1e-9)
		if rel > 0.15 {
			t.Fatalf("event %s varies %.1f%% across epochs", EventNames()[i], rel*100)
		}
	}
}

// Figure 8's property: different workload families are farther apart in
// feature space than epochs of the same workload.
func TestWorkloadFamiliesAreSeparable(t *testing.T) {
	lenet := workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}
	lstm := workload.Workload{Model: workload.LSTM, Dataset: workload.News20}

	intra, err := stats.EuclideanDistance(
		profileFor(t, lenet, params.DefaultHyper(), params.DefaultSysConfig(), 1).Features(),
		profileFor(t, lenet, params.DefaultHyper(), params.DefaultSysConfig(), 2).Features())
	if err != nil {
		t.Fatal(err)
	}
	inter, err := stats.EuclideanDistance(
		profileFor(t, lenet, params.DefaultHyper(), params.DefaultSysConfig(), 1).Features(),
		profileFor(t, lstm, params.DefaultHyper(), params.DefaultSysConfig(), 1).Features())
	if err != nil {
		t.Fatal(err)
	}
	if inter < intra*3 {
		t.Fatalf("inter-family distance %v not well above intra-workload %v", inter, intra)
	}
}

func TestInitPhaseDiffersFromTraining(t *testing.T) {
	w := workload.Workload{Model: workload.CNN, Dataset: workload.News20}
	s := NewSampler()
	tr := workload.TraitsFor(w)
	train, err := s.EpochProfile(xrand.New(1), tr, params.DefaultHyper(), params.DefaultSysConfig(), PhaseTrain, 60)
	if err != nil {
		t.Fatal(err)
	}
	initP, err := s.EpochProfile(xrand.New(1), tr, params.DefaultHyper(), params.DefaultSysConfig(), PhaseInit, 60)
	if err != nil {
		t.Fatal(err)
	}
	d, err := stats.EuclideanDistance(train.Features(), initP.Features())
	if err != nil {
		t.Fatal(err)
	}
	if d < 1 {
		t.Fatalf("init phase indistinguishable from training (distance %v)", d)
	}
	// Init must raise memory-class events specifically.
	llc := EventIndexMust("LLC-loads")
	if initP[llc] <= train[llc] {
		t.Fatal("init phase should raise memory-hierarchy event rates")
	}
	cyc := EventIndexMust("cpu-cycles")
	if initP[cyc] >= train[cyc] {
		t.Fatal("init phase should lower compute event rates")
	}
}

func TestMissRateDropsWithLargerBatch(t *testing.T) {
	// Larger batches improve locality: misses per instruction must drop
	// (absolute rates also reflect utilisation, so the ratio is the
	// robust signal).
	w := workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}
	small := params.DefaultHyper()
	small.BatchSize = 32
	large := params.DefaultHyper()
	large.BatchSize = 1024
	pSmall := profileFor(t, w, small, params.DefaultSysConfig(), 5)
	pLarge := profileFor(t, w, large, params.DefaultSysConfig(), 5)
	miss := EventIndexMust("cache-misses")
	ins := EventIndexMust("instructions")
	if pLarge[miss]/pLarge[ins] >= pSmall[miss]/pSmall[ins] {
		t.Fatalf("miss rate should drop with batch 1024: %v vs %v",
			pLarge[miss]/pLarge[ins], pSmall[miss]/pSmall[ins])
	}
}

func TestMemoryPressureRaisesMemoryEvents(t *testing.T) {
	w := workload.Workload{Model: workload.LSTM, Dataset: workload.News20} // 10 GB working set
	ample := profileFor(t, w, params.DefaultHyper(), params.SysConfig{Cores: 8, MemoryGB: 32}, 5)
	starved := profileFor(t, w, params.DefaultHyper(), params.SysConfig{Cores: 8, MemoryGB: 4}, 5)
	llcMiss := EventIndexMust("LLC-load-misses")
	if starved[llcMiss] <= ample[llcMiss] {
		t.Fatalf("memory starvation should raise LLC misses: %v vs %v", starved[llcMiss], ample[llcMiss])
	}
}

func TestMoreCoresRaiseCycleEvents(t *testing.T) {
	w := workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}
	h := params.DefaultHyper()
	h.BatchSize = 1024 // keep utilisation comparable
	at4 := profileFor(t, w, h, params.SysConfig{Cores: 4, MemoryGB: 16}, 5)
	at16 := profileFor(t, w, h, params.SysConfig{Cores: 16, MemoryGB: 16}, 5)
	cyc := EventIndexMust("cpu-cycles")
	if at16[cyc] <= at4[cyc] {
		t.Fatalf("cycles should grow with cores: %v vs %v", at16[cyc], at4[cyc])
	}
}

func TestFixedCountersLessNoisyThanMultiplexed(t *testing.T) {
	w := workload.Workload{Model: workload.CNN, Dataset: workload.News20}
	s := NewSampler()
	tr := workload.TraitsFor(w)
	r := xrand.New(9)
	const n = 200
	fixedIdx := EventIndexMust("instructions")
	muxIdx := EventIndexMust("LLC-loads")
	var fixedW, muxW stats.Welford
	for k := 0; k < n; k++ {
		smp, err := s.Sample(r, tr, params.DefaultHyper(), params.DefaultSysConfig(), PhaseTrain)
		if err != nil {
			t.Fatal(err)
		}
		fixedW.Add(smp[fixedIdx])
		muxW.Add(smp[muxIdx])
	}
	fixedCV := fixedW.StdDev() / fixedW.Mean()
	muxCV := muxW.StdDev() / muxW.Mean()
	if fixedCV >= muxCV {
		t.Fatalf("fixed-counter CV %v should be below multiplexed CV %v", fixedCV, muxCV)
	}
}

func TestSampleValidation(t *testing.T) {
	s := NewSampler()
	tr := workload.TraitsFor(workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST})
	if _, err := s.Sample(xrand.New(1), tr, params.DefaultHyper(), params.DefaultSysConfig(), Phase(0)); err == nil {
		t.Fatal("invalid phase accepted")
	}
	bad := params.DefaultHyper()
	bad.BatchSize = 0
	if _, err := s.Sample(xrand.New(1), tr, bad, params.DefaultSysConfig(), PhaseTrain); err == nil {
		t.Fatal("invalid hyper accepted")
	}
	if _, err := s.Sample(xrand.New(1), tr, params.DefaultHyper(), params.SysConfig{}, PhaseTrain); err == nil {
		t.Fatal("invalid sysconfig accepted")
	}
}

func TestFeaturesAreLogScaledAndCentred(t *testing.T) {
	p := Profile{0, math.E - 1, 1e8}
	f := p.Features()
	mean := (f[0] + f[1] + f[2]) / 3
	if math.Abs(mean) > 1e-9 {
		t.Fatalf("features not mean-centred: %v", f)
	}
	// Log compression: the 1e8 event must sit within ~20 of the others.
	if f[2]-f[0] > 25 {
		t.Fatalf("log scaling did not compress 1e8: %v", f)
	}
	// Relative order preserved.
	if !(f[0] < f[1] && f[1] < f[2]) {
		t.Fatalf("feature ordering broken: %v", f)
	}
}

// Scale invariance: profiles of the same workload taken at different core
// counts must stay close in feature space (the ground truth must recognise
// a workload regardless of which configuration it was profiled under).
func TestFeaturesScaleInvariantAcrossCores(t *testing.T) {
	w := workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}
	at4 := profileFor(t, w, params.DefaultHyper(), params.SysConfig{Cores: 4, MemoryGB: 16}, 3)
	at16 := profileFor(t, w, params.DefaultHyper(), params.SysConfig{Cores: 16, MemoryGB: 16}, 3)
	sameWorkload, err := stats.EuclideanDistance(at4.Features(), at16.Features())
	if err != nil {
		t.Fatal(err)
	}
	other := workload.Workload{Model: workload.LSTM, Dataset: workload.News20}
	cross, err := stats.EuclideanDistance(
		at4.Features(),
		profileFor(t, other, params.DefaultHyper(), params.SysConfig{Cores: 4, MemoryGB: 16}, 3).Features())
	if err != nil {
		t.Fatal(err)
	}
	if sameWorkload*2 > cross {
		t.Fatalf("core-count change (%v) not well below workload change (%v)", sameWorkload, cross)
	}
}
