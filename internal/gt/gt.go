// Package gt is the ground-truth similarity database of §5.4 — the
// cross-job economy that lets a tuning job skip probing because a similar
// job already ran (§7.4) — carved out of internal/core and rebuilt for the
// tuning service's concurrency profile.
//
// Two Store implementations share one contract:
//
//   - Monolith is the original design: one mutex, eager model refit on
//     every Add, whole-database JSON snapshots. It is kept as the
//     conservative reference implementation (and the benchmark baseline).
//   - Sharded partitions the database by profile cluster: entries route to
//     the shard whose centroid is nearest (a shard splits in two by
//     2-means once it outgrows Config.SplitSize), each shard maintains an
//     independently fitted similarity model behind an atomic copy-on-write
//     snapshot, and model refits are deferred behind a revision watermark —
//     Add is O(1) append, and the first Lookup that observes a stale
//     watermark pays the refit. Lookups on the epoch hot path take no
//     exclusive lock, so concurrent jobs on different workload families
//     never contend.
//
// Persistence is layered on top by Persistent: an append-only WAL plus a
// periodically compacted snapshot replace the old whole-file JSON rewrites,
// and the snapshot format stays readable both ways — a pre-WAL
// groundtruth.json loads as a snapshot with an empty log.
package gt

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"pipetune/internal/kmeans"
	"pipetune/internal/params"
)

// Entry is one historical ground-truth record: the profile of a trial and
// the best system configuration discovered for it.
type Entry struct {
	Features []float64        `json:"features"` // log-scaled 58-event profile
	BestSys  params.SysConfig `json:"bestSys"`
	// Metric is the winner's *relative advantage*: the best configuration's
	// per-epoch value divided by the mean over all configurations measured
	// alongside it (dimensionless, lower = more dominant). Being relative
	// makes entries comparable across trials with different
	// hyperparameters, which raw durations are not.
	Metric float64 `json:"metric"`
}

// validate rejects malformed entries before they reach any store.
func (e Entry) validate() error {
	if len(e.Features) == 0 {
		return errors.New("gt: entry without features")
	}
	if err := e.BestSys.Validate(); err != nil {
		return fmt.Errorf("gt: %w", err)
	}
	return nil
}

// clone deep-copies the entry so stores never alias caller memory.
func (e Entry) clone() Entry {
	return Entry{
		Features: append([]float64(nil), e.Features...),
		BestSys:  e.BestSys,
		Metric:   e.Metric,
	}
}

// Config tunes the similarity machinery. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	// KMeans is the clustering configuration; the paper fixes k=2 (one
	// cluster per workload family, §5.4).
	KMeans kmeans.Config
	// Threshold scales the cluster's RMS radius when deciding whether a
	// new profile is "similar enough" to reuse (§5.6).
	Threshold float64
	// MinEntries is the history size (per shard, for the sharded store)
	// below which every lookup misses (no reliable model yet).
	MinEntries int
	// Similarity overrides the technique with a fixed instance (§5.4's
	// pluggability). Only the Monolith can use a fixed instance — the
	// sharded store refits copy-on-write model snapshots and needs
	// NewSimilarity instead.
	Similarity Similarity
	// NewSimilarity, when set, constructs a fresh similarity instance per
	// model refit (the sharded store fits each snapshot on a new instance
	// so readers of the previous snapshot are never disturbed). seed is
	// derived deterministically from the store seed, the shard and the
	// revision being fitted, so a deferred refit produces the same model an
	// eager refit at the same revision would.
	NewSimilarity func(seed uint64) Similarity
	// SplitSize is the shard occupancy (in entries) at which the sharded
	// store attempts to split a shard in two by 2-means. Larger values mean
	// coarser shards and behaviour closer to the monolith's single global
	// model.
	SplitSize int
	// MaxShards bounds the shard count; once reached, shards only grow.
	MaxShards int
}

// DefaultConfig mirrors the paper's settings.
func DefaultConfig() Config {
	return Config{
		KMeans:     kmeans.DefaultConfig(),
		Threshold:  2.0,
		MinEntries: 4,
		SplitSize:  32,
		MaxShards:  64,
	}
}

// Info is a rich snapshot of a store's state, for stats endpoints.
type Info struct {
	// Store names the implementation ("monolith", "sharded"; the
	// persistence layer passes its inner store's name through).
	Store string
	// Entries, Hits and Misses mirror Len and Stats.
	Entries int
	Hits    int
	Misses  int
	// Rev is the data revision: it advances on every mutation.
	Rev uint64
	// ModelRev is the revision the fitted similarity model(s) cover. When
	// ModelRev == Rev every lookup is served by a model that has seen all
	// entries; a lower value means refits are pending behind the watermark
	// (the sharded store defers them until a lookup needs the shard).
	ModelRev uint64
	// Shards is the shard count (1 for the monolith).
	Shards int
	// Similarity names the active technique.
	Similarity string
	// WALRecords is the number of un-compacted write-ahead-log records
	// (only set by the persistence layer).
	WALRecords int
}

// Store is the ground-truth database contract shared by every
// implementation. Implementations must be safe for concurrent use.
type Store interface {
	// Add stores an entry. Implementations may defer model maintenance;
	// a subsequent Lookup must observe a model at least as new as this
	// entry's revision.
	Add(e Entry) error
	// Lookup returns the known-best configuration for a profile if the
	// similarity function matches it confidently (§5.6).
	Lookup(features []float64) (params.SysConfig, bool)
	// Len returns the number of stored entries.
	Len() int
	// Stats returns lookup hit/miss counters.
	Stats() (hits, misses int)
	// Rev returns a revision counter that increases on every mutation.
	Rev() uint64
	// Info reports the store's full state for stats endpoints.
	Info() Info
	// SimilarityName reports the active technique.
	SimilarityName() string
	// Entries returns a copy of all entries in insertion order.
	Entries() []Entry
	// Replace swaps the database contents for the given entries (the warm
	// start of §5.4). Lookup counters are preserved.
	Replace(entries []Entry) error
	// Save persists the entries as JSON (the model is refit on load).
	Save(w io.Writer) error
	// Load replaces the database contents from a Save stream.
	Load(r io.Reader) error
}

// snapshot is the JSON persistence format. Seq is the write-ahead-log
// sequence number the snapshot covers; legacy (pre-WAL) files simply lack
// it and decode as Seq 0, which replays any log in full — exactly right,
// since legacy deployments have no log.
type snapshot struct {
	Entries []Entry `json:"entries"`
	Seq     uint64  `json:"seq,omitempty"`
}

// saveEntries encodes entries in the legacy-compatible snapshot format.
func saveEntries(w io.Writer, entries []Entry, seq uint64) error {
	return json.NewEncoder(w).Encode(snapshot{Entries: entries, Seq: seq})
}

// loadSnapshot decodes a snapshot (legacy or WAL-era).
func loadSnapshot(r io.Reader) (snapshot, error) {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return snapshot{}, fmt.Errorf("gt: load snapshot: %w", err)
	}
	return snap, nil
}

// SaveFile persists a store to path atomically: the snapshot is written to
// a temporary file in the same directory, synced, and renamed over the
// target. A crash mid-write therefore never leaves a half-written snapshot
// at path. It returns the revision the snapshot captured.
func SaveFile(s Store, path string) (rev uint64, err error) {
	// Rev is read BEFORE the entries, so under concurrent appends the
	// returned revision may slightly predate the snapshot's contents —
	// the safe direction for skip-writes watermarks: a caller comparing
	// it against Rev() later may take one redundant snapshot, never skip
	// a needed one. Disk I/O happens outside any lock.
	rev = s.Rev()
	entries := s.Entries()
	if err := writeFileAtomic(path, func(w io.Writer) error {
		return saveEntries(w, entries, 0)
	}); err != nil {
		return 0, fmt.Errorf("gt: save: %w", err)
	}
	return rev, nil
}

// LoadFile restores a store from a SaveFile (or legacy) snapshot. A
// missing file is not an error — the store simply stays empty (first boot
// with a fresh state directory).
func LoadFile(s Store, path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("gt: load: %w", err)
	}
	defer f.Close()
	return s.Load(f)
}

// writeFileAtomic writes via a temp file in the target's directory, syncs
// and renames, so readers observe either the old complete file or the new
// one.
func writeFileAtomic(path string, write func(io.Writer) error) (err error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// groupBest computes, per similarity group, the configuration that won
// most often among the group's members (ties broken towards the lower mean
// relative-advantage metric, then lexicographically for determinism).
// Shared by every store implementation.
func groupBest(entries []Entry, sim Similarity) []params.SysConfig {
	best := make([]params.SysConfig, sim.Groups())
	for c := range best {
		type agg struct {
			sys    params.SysConfig
			count  int
			metric float64
		}
		byKey := make(map[string]*agg)
		for i, e := range entries {
			if sim.GroupOf(i) != c {
				continue
			}
			key := e.BestSys.String()
			a, ok := byKey[key]
			if !ok {
				a = &agg{sys: e.BestSys}
				byKey[key] = a
			}
			a.count++
			a.metric += e.Metric
		}
		keys := make([]string, 0, len(byKey))
		for k := range byKey {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		bestKey := ""
		for _, k := range keys {
			if bestKey == "" {
				bestKey = k
				continue
			}
			a, b := byKey[k], byKey[bestKey]
			// Prefer higher vote count, then lower mean metric.
			if a.count > b.count ||
				(a.count == b.count && a.metric/float64(a.count) < b.metric/float64(b.count)) {
				bestKey = k
			}
		}
		if bestKey != "" {
			best[c] = byKey[bestKey].sys
		} else {
			best[c] = params.DefaultSysConfig()
		}
	}
	return best
}

// mix64 is a splitmix64 finaliser: it derives well-distributed seeds from
// (store seed, shard, revision) tuples so deferred refits are reproducible
// regardless of how many refits actually ran in between.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
