package gt

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// TestStoreConcurrentAddSaveLoad hammers one database from many
// goroutines — adders (concurrent jobs feeding trials), lookups and
// snapshotters — then verifies a final SaveFile/LoadFile round-trip
// reproduces the entries exactly. Runs against both implementations.
func TestStoreConcurrentAddSaveLoad(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		dir := t.TempDir()
		path := filepath.Join(dir, "gt.json")

		const (
			adders   = 8
			perAdder = 25
		)
		var wg sync.WaitGroup
		for a := 0; a < adders; a++ {
			wg.Add(1)
			go func(a int) {
				defer wg.Done()
				for i := 0; i < perAdder; i++ {
					if err := s.Add(gtEntry(a*perAdder + i)); err != nil {
						t.Errorf("Add: %v", err)
						return
					}
					// Interleave the operations concurrent jobs perform.
					s.Lookup([]float64{float64(i), 1, 2, 3})
					if i%5 == 0 {
						if _, err := SaveFile(s, path); err != nil {
							t.Errorf("SaveFile: %v", err)
							return
						}
					}
				}
			}(a)
		}
		wg.Wait()
		if got := s.Len(); got != adders*perAdder {
			t.Fatalf("lost entries under concurrency: %d, want %d", got, adders*perAdder)
		}

		rev, err := SaveFile(s, path)
		if err != nil {
			t.Fatal(err)
		}
		if rev != s.Rev() {
			t.Errorf("final snapshot rev %d != database rev %d", rev, s.Rev())
		}
		restored := restoredPeer(s, 1)
		if err := LoadFile(restored, path); err != nil {
			t.Fatal(err)
		}
		if restored.Len() != s.Len() {
			t.Fatalf("round-trip lost entries: %d, want %d", restored.Len(), s.Len())
		}
		if !reflect.DeepEqual(restored.Entries(), s.Entries()) {
			t.Error("restored database differs from the original")
		}
	})
}

// TestSnapshotNeverHalfWritten verifies the write-to-temp + rename
// protocol: while writers continuously snapshot a mutating database,
// every read of the target path parses as complete JSON — a reader can
// never observe a partially written snapshot.
func TestSnapshotNeverHalfWritten(t *testing.T) {
	s := NewMonolith(DefaultConfig(), 1)
	dir := t.TempDir()
	path := filepath.Join(dir, "gt.json")
	if _, err := SaveFile(s, path); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: grow + snapshot in a tight loop
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Add(gtEntry(i)); err != nil {
				t.Errorf("Add: %v", err)
				return
			}
			if _, err := SaveFile(s, path); err != nil {
				t.Errorf("SaveFile: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		buf, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		var snap struct {
			Entries []Entry `json:"entries"`
		}
		if err := json.Unmarshal(buf, &snap); err != nil {
			t.Fatalf("read %d observed a half-written snapshot: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	// The temp files of completed snapshots must all be gone.
	matches, err := filepath.Glob(filepath.Join(dir, "*.tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Errorf("leftover temp files after snapshots: %v", matches)
	}
}

// TestSaveFileFailureLeavesTargetIntact points SaveFile at an unwritable
// location and checks the existing snapshot is untouched.
func TestSaveFileFailureLeavesTargetIntact(t *testing.T) {
	s := NewMonolith(DefaultConfig(), 1)
	if err := s.Add(gtEntry(1)); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "gt.json")
	if _, err := SaveFile(s, path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SaveFile(s, filepath.Join(dir, "missing", "gt.json")); err == nil {
		t.Fatal("SaveFile into a missing directory succeeded")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("failed SaveFile disturbed the existing snapshot")
	}
}

// TestLoadFileMissing verifies first-boot semantics: a missing snapshot
// is not an error and leaves the database empty.
func TestLoadFileMissing(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		if err := LoadFile(s, filepath.Join(t.TempDir(), "absent.json")); err != nil {
			t.Fatalf("missing snapshot: %v", err)
		}
		if s.Len() != 0 {
			t.Fatalf("empty boot has %d entries", s.Len())
		}
	})
}

// BenchmarkGroundTruthSaveFile measures the atomic snapshot cost at a
// realistic database size.
func BenchmarkGroundTruthSaveFile(b *testing.B) {
	s := NewMonolith(DefaultConfig(), 1)
	for i := 0; i < 256; i++ {
		if err := s.Add(gtEntry(i)); err != nil {
			b.Fatal(err)
		}
	}
	path := filepath.Join(b.TempDir(), "gt.json")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SaveFile(s, path); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fi, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(fi.Size()), "bytes/snapshot")
}
