package gt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"pipetune/internal/params"
)

func TestStoreMissesWhenEmpty(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		if _, ok := s.Lookup(featuresOf(t, lenetMNIST, 1)); ok {
			t.Fatal("empty database returned a hit")
		}
		hits, misses := s.Stats()
		if hits != 0 || misses != 1 {
			t.Fatalf("stats = %d/%d, want 0/1", hits, misses)
		}
	})
}

func TestStoreHitAfterSimilarEntries(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		best := params.SysConfig{Cores: 4, MemoryGB: 8}
		// Populate with two families so k=2 clustering is meaningful.
		for i := 0; i < 4; i++ {
			if err := s.Add(Entry{Features: featuresOf(t, lenetMNIST, uint64(i)), BestSys: best, Metric: 100}); err != nil {
				t.Fatal(err)
			}
			if err := s.Add(Entry{Features: featuresOf(t, cnnNews, uint64(i)), BestSys: params.SysConfig{Cores: 8, MemoryGB: 32}, Metric: 200}); err != nil {
				t.Fatal(err)
			}
		}
		cfg, ok := s.Lookup(featuresOf(t, lenetMNIST, 99))
		if !ok {
			t.Fatal("similar profile missed")
		}
		if cfg != best {
			t.Fatalf("hit returned %v, want %v", cfg, best)
		}
		// The other family resolves to its own configuration.
		cfg2, ok := s.Lookup(featuresOf(t, cnnNews, 99))
		if !ok {
			t.Fatal("second family missed")
		}
		if cfg2 == best {
			t.Fatal("families not separated")
		}
	})
}

func TestStoreAddValidation(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		if err := s.Add(Entry{Features: nil, BestSys: params.DefaultSysConfig()}); err == nil {
			t.Fatal("featureless entry accepted")
		}
		if err := s.Add(Entry{Features: []float64{1}, BestSys: params.SysConfig{}}); err == nil {
			t.Fatal("invalid config accepted")
		}
		if s.Len() != 0 || s.Rev() != 0 {
			t.Fatalf("rejected entries mutated the store: len=%d rev=%d", s.Len(), s.Rev())
		}
	})
}

// restoredPeer builds an empty store of the same implementation.
func restoredPeer(s Store, seed uint64) Store {
	switch s.(type) {
	case *Monolith:
		return NewMonolith(DefaultConfig(), seed)
	case *Sharded:
		return NewSharded(DefaultConfig(), seed)
	}
	panic(fmt.Sprintf("unknown store %T", s))
}

func TestStoreSaveLoad(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		for i := 0; i < 4; i++ {
			_ = s.Add(Entry{Features: featuresOf(t, lenetMNIST, uint64(i)), BestSys: params.SysConfig{Cores: 4, MemoryGB: 8}, Metric: 1})
			_ = s.Add(Entry{Features: featuresOf(t, cnnNews, uint64(i)), BestSys: params.SysConfig{Cores: 16, MemoryGB: 32}, Metric: 1})
		}
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatal(err)
		}
		restored := restoredPeer(s, 2)
		if err := restored.Load(&buf); err != nil {
			t.Fatal(err)
		}
		if restored.Len() != s.Len() {
			t.Fatalf("restored %d entries, want %d", restored.Len(), s.Len())
		}
		if !reflect.DeepEqual(restored.Entries(), s.Entries()) {
			t.Fatal("restored entries differ (or lost insertion order)")
		}
		// A warm-started database must serve hits immediately (§5.4).
		if _, ok := restored.Lookup(featuresOf(t, lenetMNIST, 50)); !ok {
			t.Fatal("warm-started database missed")
		}
		if err := restored.Load(bytes.NewBufferString("junk")); err == nil {
			t.Fatal("garbage accepted")
		}
	})
}

// TestStoreLoadLegacyFormat feeds both stores a pre-refactor snapshot
// (the exact JSON shape core.GroundTruth.Save used to write — entries
// only, no seq field): migration requires it to load unchanged.
func TestStoreLoadLegacyFormat(t *testing.T) {
	legacy := `{"entries":[` +
		`{"features":[1,2,3],"bestSys":{"cores":4,"memoryGB":8},"metric":0.9},` +
		`{"features":[10,20,30],"bestSys":{"cores":16,"memoryGB":32},"metric":0.7}]}` + "\n"
	eachStore(t, func(t *testing.T, s Store) {
		if err := s.Load(strings.NewReader(legacy)); err != nil {
			t.Fatalf("legacy snapshot rejected: %v", err)
		}
		if s.Len() != 2 {
			t.Fatalf("legacy snapshot loaded %d entries, want 2", s.Len())
		}
		got := s.Entries()
		if got[0].Metric != 0.9 || got[1].BestSys != (params.SysConfig{Cores: 16, MemoryGB: 32}) {
			t.Fatalf("legacy entries mangled: %+v", got)
		}
	})
}

// TestStoreSaveIsLegacyCompatible pins the Save wire format: no seq field
// leaks into plain snapshots, so files written today stay loadable by any
// legacy-format reader.
func TestStoreSaveIsLegacyCompatible(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		if err := s.Add(gtEntry(1)); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatal(err)
		}
		var raw map[string]json.RawMessage
		if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
			t.Fatal(err)
		}
		if _, ok := raw["seq"]; ok {
			t.Fatal("plain Save leaked the WAL seq field")
		}
		if _, ok := raw["entries"]; !ok {
			t.Fatal("snapshot missing entries")
		}
	})
}

// TestDeferredRefitMatchesEager is the incremental-maintenance
// equivalence proof: a store whose model is refit lazily (lookups only at
// the end) must answer every probe exactly like one that was forced to
// refit after every single Add — the revision watermark changes when the
// refit happens, never its outcome.
func TestDeferredRefitMatchesEager(t *testing.T) {
	const families, perFamily = 3, 12
	build := func(eager bool) *Sharded {
		s := NewSharded(DefaultConfig(), 7)
		for i := 0; i < perFamily; i++ {
			for f := 0; f < families; f++ {
				if err := s.Add(familyEntry(f, i, families)); err != nil {
					t.Fatal(err)
				}
				if eager {
					// Force the refit immediately, as the old design did.
					s.Lookup(familyEntry(f, i, families).Features)
				}
			}
		}
		return s
	}
	eager, deferred := build(true), build(false)

	for f := 0; f < families; f++ {
		for i := 0; i < perFamily+5; i++ {
			q := familyEntry(f, i, families).Features
			ec, eok := eager.Lookup(q)
			dc, dok := deferred.Lookup(q)
			if eok != dok || ec != dc {
				t.Fatalf("family %d query %d: eager=(%v,%v) deferred=(%v,%v)",
					f, i, ec, eok, dc, dok)
			}
		}
	}
	// After the probes both stores' models cover every entry.
	ei, di := eager.Info(), deferred.Info()
	if ei.Shards != di.Shards {
		t.Fatalf("shard layouts diverged: eager %d, deferred %d", ei.Shards, di.Shards)
	}
	if di.ModelRev != di.Rev {
		t.Fatalf("deferred store left stale models behind the watermark: model %d, rev %d",
			di.ModelRev, di.Rev)
	}
}

func TestStoreRev(t *testing.T) {
	eachStore(t, func(t *testing.T, s Store) {
		if s.Rev() != 0 {
			t.Fatalf("fresh rev = %d", s.Rev())
		}
		for i := 1; i <= 3; i++ {
			if err := s.Add(gtEntry(i)); err != nil {
				t.Fatal(err)
			}
			if s.Rev() != uint64(i) {
				t.Fatalf("rev after %d adds = %d", i, s.Rev())
			}
		}
		var buf strings.Builder
		if err := s.Save(&buf); err != nil {
			t.Fatal(err)
		}
		if s.Rev() != 3 {
			t.Errorf("Save mutated rev to %d", s.Rev())
		}
		before := s.Rev()
		if err := s.Load(strings.NewReader(buf.String())); err != nil {
			t.Fatal(err)
		}
		if s.Rev() <= before {
			t.Errorf("rev after Load = %d, want > %d", s.Rev(), before)
		}
	})
}

// TestShardedReplaceKeepsWatermarkInvariant pins the Rev/ModelRev
// contract across Replace: after restoring a snapshot and warming every
// shard's model, ModelRev must equal Rev exactly (and never exceed it in
// between) — the watermark comparison stats consumers rely on.
func TestShardedReplaceKeepsWatermarkInvariant(t *testing.T) {
	s := NewSharded(DefaultConfig(), 1)
	var entries []Entry
	for i := 0; i < 10; i++ {
		e := gtEntry(i)
		entries = append(entries, e)
		if err := s.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Replace(entries); err != nil {
		t.Fatal(err)
	}
	if info := s.Info(); info.ModelRev > info.Rev {
		t.Fatalf("after Replace: modelRev %d > rev %d", info.ModelRev, info.Rev)
	}
	// Warm every shard model.
	for _, e := range entries {
		s.Lookup(e.Features)
	}
	if info := s.Info(); info.ModelRev != info.Rev {
		t.Fatalf("after warming: modelRev %d != rev %d", info.ModelRev, info.Rev)
	}
	// Adds after a Replace keep the invariant moving in lockstep.
	if err := s.Add(gtEntry(100)); err != nil {
		t.Fatal(err)
	}
	s.Lookup(gtEntry(100).Features)
	if info := s.Info(); info.ModelRev != info.Rev {
		t.Fatalf("after post-Replace add: modelRev %d != rev %d", info.ModelRev, info.Rev)
	}
}
