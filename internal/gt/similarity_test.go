package gt

import (
	"testing"

	"pipetune/internal/kmeans"
	"pipetune/internal/params"
)

func TestKMeansSimilarityGroupsFamilies(t *testing.T) {
	s := NewKMeansSimilarity(kmeans.DefaultConfig(), 2.0, 1)
	var points [][]float64
	for i := 0; i < 4; i++ {
		points = append(points, featuresOf(t, lenetMNIST, uint64(i)))
		points = append(points, featuresOf(t, cnnNews, uint64(i)))
	}
	if err := s.Fit(points); err != nil {
		t.Fatal(err)
	}
	if s.Groups() != 2 {
		t.Fatalf("groups = %d, want 2", s.Groups())
	}
	// Even indices (lenet) share a group; odd (cnn) share the other.
	if s.GroupOf(0) != s.GroupOf(2) || s.GroupOf(1) != s.GroupOf(3) {
		t.Fatal("family members split across groups")
	}
	if s.GroupOf(0) == s.GroupOf(1) {
		t.Fatal("families collapsed")
	}
	// A new lenet profile matches the lenet group confidently.
	group, ok := s.Match(featuresOf(t, lenetMNIST, 99))
	if !ok || group != s.GroupOf(0) {
		t.Fatalf("match = (%d, %v), want lenet group %d", group, ok, s.GroupOf(0))
	}
}

func TestKMeansSimilarityUnfit(t *testing.T) {
	s := NewKMeansSimilarity(kmeans.DefaultConfig(), 2.0, 1)
	if _, ok := s.Match([]float64{1, 2}); ok {
		t.Fatal("unfit model matched")
	}
	if s.Groups() != 0 {
		t.Fatal("unfit model has groups")
	}
	if err := s.Fit([][]float64{{1}}); err == nil {
		t.Fatal("fit with fewer points than k accepted")
	}
}

func TestNearestNeighborSimilarity(t *testing.T) {
	s := NewNearestNeighborSimilarity(3.0)
	var points [][]float64
	for i := 0; i < 3; i++ {
		points = append(points, featuresOf(t, lenetMNIST, uint64(i)))
		points = append(points, featuresOf(t, cnnNews, uint64(i)))
	}
	if err := s.Fit(points); err != nil {
		t.Fatal(err)
	}
	if s.Groups() != 6 {
		t.Fatalf("k-NN groups = %d, want one per point", s.Groups())
	}
	group, ok := s.Match(featuresOf(t, lenetMNIST, 42))
	if !ok {
		t.Fatal("near-duplicate profile did not match")
	}
	if group%2 != 0 {
		t.Fatalf("lenet query matched point %d (a cnn profile)", group)
	}
	// A far-away query must not be confident.
	far := make([]float64, len(points[0]))
	for i := range far {
		far[i] = 100
	}
	if _, ok := s.Match(far); ok {
		t.Fatal("distant query matched confidently")
	}
}

func TestNearestNeighborSimilarityDegenerate(t *testing.T) {
	s := NewNearestNeighborSimilarity(2.0)
	if err := s.Fit(nil); err == nil {
		t.Fatal("empty fit accepted")
	}
	if _, ok := s.Match([]float64{1}); ok {
		t.Fatal("unfit k-NN matched")
	}
	// Single point: no NN scale, so matches are never confident.
	if err := s.Fit([][]float64{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Match([]float64{1, 2}); ok {
		t.Fatal("single-point model should not be confident")
	}
}

// TestStoreWithNearestNeighbor exercises §5.4's pluggability on both
// stores: the monolith takes a fixed instance, the sharded store a
// factory.
func TestStoreWithNearestNeighbor(t *testing.T) {
	cfgMono := DefaultConfig()
	cfgMono.Similarity = NewNearestNeighborSimilarity(3.0)
	cfgShard := DefaultConfig()
	cfgShard.NewSimilarity = func(uint64) Similarity { return NewNearestNeighborSimilarity(3.0) }
	for name, s := range map[string]Store{
		"monolith": NewMonolith(cfgMono, 1),
		"sharded":  NewSharded(cfgShard, 1),
	} {
		t.Run(name, func(t *testing.T) {
			if s.SimilarityName() != "nearest-neighbor" {
				t.Fatalf("similarity = %q", s.SimilarityName())
			}
			best := params.SysConfig{Cores: 4, MemoryGB: 32}
			for i := 0; i < 4; i++ {
				if err := s.Add(Entry{Features: featuresOf(t, lenetMNIST, uint64(i)), BestSys: best, Metric: 0.8}); err != nil {
					t.Fatal(err)
				}
			}
			cfgGot, ok := s.Lookup(featuresOf(t, lenetMNIST, 77))
			if !ok || cfgGot != best {
				t.Fatalf("k-NN lookup = (%v, %v), want (%v, true)", cfgGot, ok, best)
			}
		})
	}
}
