package gt

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// openTestPersistent opens a persistent store over a fresh sharded inner.
func openTestPersistent(t testing.TB, path string, opt PersistOptions) *Persistent {
	t.Helper()
	p, err := OpenPersistent(path, NewSharded(DefaultConfig(), 1), opt)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPersistentRecoversFromWALAlone verifies the core WAL property: adds
// are durable the moment Add returns, with no snapshot ever written —
// reopening replays the log on top of an absent snapshot.
func TestPersistentRecoversFromWALAlone(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gt.json")
	p := openTestPersistent(t, path, PersistOptions{})
	var want []Entry
	for i := 0; i < 10; i++ {
		e := gtEntry(i)
		if err := p.Add(e); err != nil {
			t.Fatal(err)
		}
		want = append(want, e.clone())
	}
	// No Compact, no Close: simulate a hard crash by just reopening.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("snapshot written without compaction")
	}
	p2 := openTestPersistent(t, path, PersistOptions{})
	defer p2.Close()
	if !reflect.DeepEqual(p2.Entries(), want) {
		t.Fatalf("WAL replay lost entries: got %d, want %d", p2.Len(), len(want))
	}
}

// TestPersistentCompaction verifies the record-count trigger: the WAL
// folds into a snapshot at CompactEvery, the log resets, and recovery
// from snapshot+empty-log equals recovery from log alone.
func TestPersistentCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gt.json")
	p := openTestPersistent(t, path, PersistOptions{CompactEvery: 5})
	for i := 0; i < 12; i++ {
		if err := p.Add(gtEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	// 12 adds with CompactEvery=5: two compactions, 2 records left.
	if got := p.WALRecords(); got != 2 {
		t.Fatalf("WAL holds %d records, want 2", got)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no snapshot after compaction: %v", err)
	}
	want := p.Entries()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2 := openTestPersistent(t, path, PersistOptions{CompactEvery: 5})
	defer p2.Close()
	if !reflect.DeepEqual(p2.Entries(), want) {
		t.Fatal("snapshot+WAL recovery diverged from pre-restart state")
	}
	if got := p2.WALRecords(); got != 0 {
		t.Fatalf("Close left %d WAL records uncompacted", got)
	}
}

// TestPersistentLoadsLegacySnapshot points the persistence layer at a
// pre-refactor groundtruth.json (written by the old SaveFile: entries
// only, no seq, no WAL) — the migration path. It must load fully and then
// operate normally.
func TestPersistentLoadsLegacySnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gt.json")
	legacy := NewMonolith(DefaultConfig(), 1)
	for i := 0; i < 8; i++ {
		if err := legacy.Add(gtEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := legacy.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	p := openTestPersistent(t, path, PersistOptions{CompactEvery: 4})
	defer p.Close()
	if !reflect.DeepEqual(p.Entries(), legacy.Entries()) {
		t.Fatalf("legacy snapshot loaded %d entries, want %d", p.Len(), legacy.Len())
	}
	// The store keeps working (and WAL-ing) on top of migrated state.
	for i := 8; i < 14; i++ {
		if err := p.Add(gtEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if p.Len() != 14 {
		t.Fatalf("adds after migration: len=%d, want 14", p.Len())
	}
}

// TestPersistentSkipsRecordsBelowSnapshotSeq simulates a crash between
// "snapshot renamed" and "WAL reset": the log still holds records the
// snapshot already folded in. Replay must skip them (no duplicates).
func TestPersistentSkipsRecordsBelowSnapshotSeq(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gt.json")
	p := openTestPersistent(t, path, PersistOptions{})
	for i := 0; i < 6; i++ {
		if err := p.Add(gtEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	want := p.Entries()
	// Write the snapshot by hand at the current watermark, but leave the
	// WAL untouched — exactly the crash window.
	if err := writeFileAtomic(path, func(w io.Writer) error {
		return saveEntries(w, want, 6)
	}); err != nil {
		t.Fatal(err)
	}
	_ = p.wal.close() // drop the handle without compacting

	p2 := openTestPersistent(t, path, PersistOptions{})
	defer p2.Close()
	if p2.Len() != len(want) {
		t.Fatalf("replay duplicated snapshot records: len=%d, want %d", p2.Len(), len(want))
	}
	if !reflect.DeepEqual(p2.Entries(), want) {
		t.Fatal("recovered entries diverged")
	}
}

// TestPersistentCrashSafetyProperty is the crash-safety property test:
// for a WAL-backed store with a known entry sequence, ANY truncation of
// the log tail and ANY single-byte corruption must (a) be detected, (b)
// recover a strict prefix of the original entries, and (c) never lose
// entries covered by the snapshot or the undamaged log prefix.
func TestPersistentCrashSafetyProperty(t *testing.T) {
	const total = 20
	const snapshotAt = 8 // entries folded into the snapshot before damage
	dir := t.TempDir()
	path := filepath.Join(dir, "gt.json")

	p := openTestPersistent(t, path, PersistOptions{})
	var want []Entry
	for i := 0; i < total; i++ {
		e := gtEntry(i)
		want = append(want, e.clone())
		if err := p.Add(e); err != nil {
			t.Fatal(err)
		}
		if i == snapshotAt-1 {
			if err := p.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	_ = p.wal.close()
	pristineWAL, err := os.ReadFile(WALPath(path))
	if err != nil {
		t.Fatal(err)
	}
	pristineSnap, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	restore := func() {
		if err := os.WriteFile(path, pristineSnap, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(WALPath(path), pristineWAL, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	check := func(t *testing.T, tag string) {
		p2, err := OpenPersistent(path, NewSharded(DefaultConfig(), 1), PersistOptions{})
		if err != nil {
			t.Fatalf("%s: recovery refused: %v", tag, err)
		}
		defer p2.Close()
		got := p2.Entries()
		if len(got) < snapshotAt {
			t.Fatalf("%s: lost snapshot-covered entries: %d < %d", tag, len(got), snapshotAt)
		}
		if len(got) > total {
			t.Fatalf("%s: invented entries: %d > %d", tag, len(got), total)
		}
		if !reflect.DeepEqual(got, want[:len(got)]) {
			t.Fatalf("%s: recovered entries are not a prefix of the original", tag)
		}
	}

	rng := rand.New(rand.NewSource(42))
	t.Run("truncation", func(t *testing.T) {
		for trial := 0; trial < 40; trial++ {
			restore()
			cut := rng.Intn(len(pristineWAL) + 1)
			if err := os.Truncate(WALPath(path), int64(cut)); err != nil {
				t.Fatal(err)
			}
			check(t, "truncate")
		}
	})
	t.Run("corruption", func(t *testing.T) {
		for trial := 0; trial < 40; trial++ {
			restore()
			damaged := append([]byte(nil), pristineWAL...)
			pos := rng.Intn(len(damaged))
			damaged[pos] ^= byte(1 + rng.Intn(255))
			if err := os.WriteFile(WALPath(path), damaged, 0o644); err != nil {
				t.Fatal(err)
			}
			check(t, "corrupt")
		}
	})
	t.Run("missing-wal", func(t *testing.T) {
		restore()
		if err := os.Remove(WALPath(path)); err != nil {
			t.Fatal(err)
		}
		check(t, "missing")
	})
}

// TestPersistentRecoveryTruncatesDamagedTail verifies recovery repairs
// the log: after reopening over a damaged tail, new appends extend the
// valid prefix and a further recovery sees old-prefix + new entries.
func TestPersistentRecoveryTruncatesDamagedTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gt.json")
	p := openTestPersistent(t, path, PersistOptions{})
	for i := 0; i < 6; i++ {
		if err := p.Add(gtEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	_ = p.wal.close()
	// Tear the last record in half.
	wal, err := os.ReadFile(WALPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(WALPath(path), int64(len(wal)-7)); err != nil {
		t.Fatal(err)
	}

	p2 := openTestPersistent(t, path, PersistOptions{})
	if p2.Len() != 5 {
		t.Fatalf("recovered %d entries, want 5 (torn 6th dropped)", p2.Len())
	}
	if err := p2.Add(gtEntry(100)); err != nil {
		t.Fatal(err)
	}
	_ = p2.wal.close()

	p3 := openTestPersistent(t, path, PersistOptions{})
	defer p3.Close()
	if p3.Len() != 6 {
		t.Fatalf("appends after repair not recovered: %d, want 6", p3.Len())
	}
	got := p3.Entries()
	if got[5].Features[0] != 100 {
		t.Fatal("repaired log lost the post-recovery append")
	}
}

// TestOpenPersistentKeepsPrewarmedInnerOnFirstBoot verifies first-boot
// semantics with a warm store: no snapshot on disk must not wipe the
// entries the caller already loaded (e.g. Bootstrap before service
// start).
func TestOpenPersistentKeepsPrewarmedInnerOnFirstBoot(t *testing.T) {
	inner := NewSharded(DefaultConfig(), 1)
	for i := 0; i < 5; i++ {
		if err := inner.Add(gtEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	p, err := OpenPersistent(filepath.Join(t.TempDir(), "gt.json"), inner, PersistOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Len() != 5 {
		t.Fatalf("first boot wiped the pre-warmed store: %d entries, want 5", p.Len())
	}
}

// TestPersistentAddAllBatches verifies the bulk path: one AddAll lands
// every entry, the records replay after a crash, and the WAL holds one
// record per entry (framed in a single write).
func TestPersistentAddAllBatches(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gt.json")
	p := openTestPersistent(t, path, PersistOptions{})
	batch := make([]Entry, 12)
	for i := range batch {
		batch[i] = gtEntry(i)
	}
	n, err := p.AddAll(batch)
	if err != nil || n != 12 {
		t.Fatalf("AddAll = (%d, %v), want (12, nil)", n, err)
	}
	if got := p.WALRecords(); got != 12 {
		t.Fatalf("WAL holds %d records, want 12", got)
	}
	_ = p.wal.close() // crash, no compaction
	p2 := openTestPersistent(t, path, PersistOptions{})
	defer p2.Close()
	if !reflect.DeepEqual(p2.Entries(), p.Entries()) {
		t.Fatal("batched records did not replay")
	}
}
