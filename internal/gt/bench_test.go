package gt

import (
	"testing"
)

// benchFeatures fabricates a 58-dimension profile (the PMU feature width
// real trials produce) for one of several well-separated families.
func benchFeatures(family, i int) []float64 {
	f := make([]float64, 58)
	for j := range f {
		f[j] = float64((family*37+j*13)%97) * 10
	}
	// Per-sample jitter on a few dimensions, like seed-to-seed profile
	// noise within one workload family.
	for _, j := range []int{3, 17, 29, 41} {
		f[j] += float64(i%7) * 0.3
	}
	return f
}

func benchEntry(family, i int) Entry {
	return Entry{
		Features: benchFeatures(family, i),
		BestSys:  probeGrid()[family%len(probeGrid())],
		Metric:   0.5,
	}
}

// benchStores builds a fresh instance of each implementation.
func benchStores() map[string]Store {
	return map[string]Store{
		"monolith": NewMonolith(DefaultConfig(), 1),
		"sharded":  NewSharded(DefaultConfig(), 1),
	}
}

// populate seeds the store with families×perFamily entries and warms the
// models so lookup benchmarks measure the steady state.
func populate(b *testing.B, s Store, families, perFamily int) {
	b.Helper()
	for i := 0; i < perFamily; i++ {
		for f := 0; f < families; f++ {
			if err := s.Add(benchEntry(f, i)); err != nil {
				b.Fatal(err)
			}
		}
	}
	for f := 0; f < families; f++ {
		s.Lookup(benchFeatures(f, 0))
	}
}

// BenchmarkGTLookupParallel is the acceptance benchmark for the sharded
// refactor: the epoch hot path under the service's real duty cycle —
// parallel reuse lookups across workload families while completed trials
// keep feeding entries in (1 add per 128 operations, roughly one trial
// completion per ~20 trials' worth of epoch lookups). The monolith
// serialises everything through one mutex and holds it across a full
// k-means refit on every add, so every concurrent lookup stalls behind
// it; the sharded store's lookups are lock-free and adds touch only one
// shard. Run with -cpu 1,2,4,8 to see the divergence grow.
func BenchmarkGTLookupParallel(b *testing.B) {
	const families, perFamily = 8, 32
	for name, s := range benchStores() {
		b.Run(name, func(b *testing.B) {
			populate(b, s, families, perFamily)
			queries := make([][]float64, families)
			for f := 0; f < families; f++ {
				queries[f] = benchFeatures(f, perFamily+1)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i, adds := 0, 0
				for pb.Next() {
					if i%128 == 127 {
						// Adds cycle families too: trials complete
						// across all tenants, not just one.
						_ = s.Add(benchEntry(adds%families, adds))
						adds++
					} else {
						s.Lookup(queries[i%families])
					}
					i++
				}
			})
		})
	}
}

// BenchmarkGTLookupPure is the read-only counterpart: lookups against a
// quiescent store. It exposes the sharded store's routing overhead (one
// centroid distance per shard) — the price paid for contention-free
// growth; see BenchmarkGTLookupParallel for the regime that matters.
func BenchmarkGTLookupPure(b *testing.B) {
	const families, perFamily = 8, 32
	for name, s := range benchStores() {
		b.Run(name, func(b *testing.B) {
			populate(b, s, families, perFamily)
			queries := make([][]float64, families)
			for f := 0; f < families; f++ {
				queries[f] = benchFeatures(f, perFamily+1)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					s.Lookup(queries[i%families])
					i++
				}
			})
		})
	}
}

// BenchmarkGTAddThroughput measures the trial-completion feed: the
// monolith pays a full k-means refit inside every Add, the sharded store
// an O(1) routed append (refits deferred to the next lookup).
func BenchmarkGTAddThroughput(b *testing.B) {
	const families = 8
	for name, mk := range map[string]func() Store{
		"monolith": func() Store { return NewMonolith(DefaultConfig(), 1) },
		"sharded":  func() Store { return NewSharded(DefaultConfig(), 1) },
	} {
		b.Run(name, func(b *testing.B) {
			s := mk()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Bound the refit cost's dependence on history so long
				// bench runs measure steady-state adds, not an
				// ever-growing database.
				if i%2048 == 0 && i > 0 {
					b.StopTimer()
					s = mk()
					b.StartTimer()
				}
				if err := s.Add(benchEntry(i%families, i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
