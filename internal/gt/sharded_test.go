package gt

import (
	"sync"
	"testing"
	"time"
)

// TestShardedSplitsIntoFamilies grows the store past SplitSize with
// well-separated families and checks the shard map partitions them:
// lookups still resolve to per-family configurations, and the store
// reports more than one shard.
func TestShardedSplitsIntoFamilies(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SplitSize = 8
	s := NewSharded(cfg, 1)
	const families, perFamily = 4, 16
	for i := 0; i < perFamily; i++ {
		for f := 0; f < families; f++ {
			if err := s.Add(familyEntry(f, i, families)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := s.Info().Shards; got < 2 {
		t.Fatalf("store never sharded: %d shards after %d entries", got, s.Len())
	}
	for f := 0; f < families; f++ {
		q := familyEntry(f, 99, families).Features
		if s.nearest(q) == nil {
			t.Fatalf("family %d routed nowhere", f)
		}
		cfgGot, ok := s.Lookup(q)
		if !ok {
			t.Fatalf("family %d missed after sharding", f)
		}
		want := probeGrid()[f%len(probeGrid())]
		if cfgGot != want {
			t.Fatalf("family %d resolved to %v, want %v", f, cfgGot, want)
		}
	}
	if s.Len() != families*perFamily {
		t.Fatalf("splits lost entries: %d, want %d", s.Len(), families*perFamily)
	}
	// Insertion order must survive the splits.
	entries := s.Entries()
	if len(entries) != families*perFamily {
		t.Fatalf("Entries() lost records: %d", len(entries))
	}
	if entries[0].Features[2] != 0 || entries[1].Features[2] != 1 {
		t.Fatal("Entries() lost insertion order across shards")
	}
}

// TestLookupProceedsDuringInflightAdd is the regression test for the old
// design's defect: GroundTruth.Lookup held the database's one exclusive
// mutex across the full distance computation, so a lookup stalled behind
// any in-flight Add (and its eager refit). Here an Add is simulated
// mid-flight by holding one shard's write lock while lookups run — both
// on a different shard and on the locked shard itself (whose model
// snapshot is current) — and every lookup must complete.
func TestLookupProceedsDuringInflightAdd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SplitSize = 8
	s := NewSharded(cfg, 1)
	const families = 2
	for i := 0; i < 12; i++ {
		for f := 0; f < families; f++ {
			if err := s.Add(familyEntry(f, i, families)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Warm every shard's model so the hot path has a current snapshot.
	for f := 0; f < families; f++ {
		if _, ok := s.Lookup(familyEntry(f, 0, families).Features); !ok {
			t.Fatalf("family %d missed during warmup", f)
		}
	}

	// Simulate an Add in flight on family 1's shard: Add holds exactly
	// this lock while it appends.
	busy := s.nearest(familyEntry(1, 0, families).Features)
	if busy == nil {
		t.Fatal("no shard for family 1")
	}
	busy.mu.Lock()
	defer busy.mu.Unlock()

	done := make(chan bool, 2)
	go func() {
		_, ok := s.Lookup(familyEntry(0, 3, families).Features) // other shard
		done <- ok
	}()
	go func() {
		_, ok := s.Lookup(familyEntry(1, 3, families).Features) // busy shard, warm model
		done <- ok
	}()
	for i := 0; i < 2; i++ {
		select {
		case ok := <-done:
			if !ok {
				t.Error("lookup missed during in-flight add")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("lookup blocked behind an in-flight Add")
		}
	}
}

// TestShardedConcurrentAddsDontContendAcrossFamilies hammers adds and
// lookups across distinct families concurrently; the store must keep
// every entry, stay race-free (run under -race) and keep serving hits.
func TestShardedConcurrentAddsDontContendAcrossFamilies(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SplitSize = 16
	s := NewSharded(cfg, 1)
	const families, perFamily = 4, 50
	// Seed each family so lookups during the storm can hit.
	for f := 0; f < families; f++ {
		for i := 0; i < 4; i++ {
			if err := s.Add(familyEntry(f, i, families)); err != nil {
				t.Fatal(err)
			}
		}
	}
	var wg sync.WaitGroup
	for f := 0; f < families; f++ {
		wg.Add(2)
		go func(f int) { // adder for this family
			defer wg.Done()
			for i := 4; i < perFamily; i++ {
				if err := s.Add(familyEntry(f, i, families)); err != nil {
					t.Errorf("Add: %v", err)
					return
				}
			}
		}(f)
		go func(f int) { // lookup storm on the same family
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s.Lookup(familyEntry(f, i, families).Features)
			}
		}(f)
	}
	wg.Wait()
	if s.Len() != families*perFamily {
		t.Fatalf("concurrent adds lost entries: %d, want %d", s.Len(), families*perFamily)
	}
	hits, _ := s.Stats()
	if hits == 0 {
		t.Fatal("no hits during the concurrent storm")
	}
}

// TestNewShardedDefendsConfig pins the constructor traps: a zero
// MinEntries must not leave the store unable to ever fit (it defaults
// like SplitSize/MaxShards do), and a fixed Similarity instance — whose
// state concurrent per-shard refits would race on — fails loudly instead
// of silently fitting k-means.
func TestNewShardedDefendsConfig(t *testing.T) {
	cfg := Config{KMeans: DefaultConfig().KMeans, Threshold: 2.0} // MinEntries 0
	s := NewSharded(cfg, 1)
	for i := 0; i < 8; i++ {
		if err := s.Add(familyEntry(0, i, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Lookup(familyEntry(0, 1, 1).Features); !ok {
		t.Fatal("zero MinEntries left the store permanently unfitted")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("fixed Similarity instance accepted by NewSharded")
		}
	}()
	bad := DefaultConfig()
	bad.Similarity = NewNearestNeighborSimilarity(2.0)
	NewSharded(bad, 1)
}
