package gt

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"pipetune/internal/metrics"
	"pipetune/internal/params"
)

// PersistOptions tunes the persistence layer.
type PersistOptions struct {
	// CompactEvery folds the WAL into a fresh snapshot once it holds this
	// many records (<= 0 means no record-count trigger; compaction then
	// only happens through explicit Compact calls). Compaction bounds both
	// recovery time and log size.
	CompactEvery int
	// Logf receives operational log lines (nil = silent) — e.g. recovered
	// entry counts and damaged-tail reports.
	Logf func(format string, args ...any)
}

// Persistent wraps any Store with durable state: an append-only
// write-ahead log records every Add as it happens, and a compacted
// snapshot (the same JSON format the stores Save — so legacy
// groundtruth.json files load unchanged) is rewritten atomically when the
// log grows past PersistOptions.CompactEvery, on explicit Compact calls
// and at Close.
//
// Recovery (OpenPersistent) loads the snapshot, replays the log's records
// with sequence numbers beyond the snapshot watermark, and — when the log
// tail is torn or corrupted — truncates the damage, keeping the snapshot
// plus the valid log prefix. Crash-safety invariant: Load(snapshot)+replay
// ≡ the in-memory state at the moment of the last synced append.
//
// Lookup and every other read passes straight through to the inner store —
// persistence adds no cost to the epoch hot path; only Add pays one framed
// append + fsync.
type Persistent struct {
	inner Store
	path  string // snapshot path; the WAL lives at path + ".wal"
	opt   PersistOptions

	mu         sync.Mutex // serialises Add/Replace/Compact/Close
	wal        *wal
	nextSeq    uint64 // sequence of the next WAL record
	compactRev uint64 // inner.Rev() at the last compaction
	closed     bool
	met        *walInstruments
}

// InstrumentMetrics implements Instrumentable: the wrapper reports the
// durability layer (fsyncs, compactions) and forwards to the inner
// store for lookup/add series.
func (p *Persistent) InstrumentMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	p.mu.Lock()
	p.met = newWALInstruments(reg)
	p.mu.Unlock()
	if in, ok := p.inner.(Instrumentable); ok {
		in.InstrumentMetrics(reg)
	}
}

// appendWAL wraps one framed log append (p.wal.append or appendBatch
// both end in exactly one fsync) with the durability instruments.
// Callers hold p.mu.
func (p *Persistent) appendWAL(op func() error) error {
	if p.met == nil {
		return op()
	}
	start := time.Now()
	err := op()
	p.met.fsyncSeconds.Observe(time.Since(start).Seconds())
	if err == nil {
		p.met.fsyncs.Inc()
	}
	return err
}

// WALPath derives the log path from a snapshot path.
func WALPath(snapshotPath string) string { return snapshotPath + ".wal" }

// OpenPersistent restores durable state from path (snapshot) and
// path+".wal" (log) into inner and returns the wrapped store. An
// existing snapshot is authoritative and replaces whatever inner held;
// with no snapshot (first boot) inner keeps its state — possibly
// pre-warmed by the caller — and the log, if any, replays on top.
func OpenPersistent(path string, inner Store, opt PersistOptions) (*Persistent, error) {
	if opt.Logf == nil {
		opt.Logf = func(string, ...any) {}
	}
	p := &Persistent{inner: inner, path: path, opt: opt}

	snapEntries := []Entry(nil)
	var snapSeq uint64
	snapshotExists := false
	if f, err := os.Open(path); err == nil {
		snap, derr := loadSnapshot(f)
		f.Close()
		if derr != nil {
			return nil, derr
		}
		snapEntries = snap.Entries
		snapSeq = snap.Seq
		snapshotExists = true
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("gt: open snapshot: %w", err)
	}
	// Base state: an existing snapshot is authoritative; on first boot
	// (no snapshot) inner keeps its state — a caller may hand over a
	// pre-warmed store. Legacy snapshots predate sequence numbers; they
	// also predate the WAL, so every log record (if one even exists) is
	// newer than them.
	base := snapEntries
	if !snapshotExists {
		base = inner.Entries()
	}

	// Collect the log's records first and fold base+replay into ONE
	// Replace: an eager inner store (the monolith) then refits once
	// instead of once per replayed record.
	var replayed []Entry
	w, lastSeq, tailErr, err := openWAL(WALPath(path), snapSeq, func(rec walRecord) error {
		replayed = append(replayed, rec.Entry)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if tailErr != nil {
		opt.Logf("gt: recovered with damaged WAL tail (%v); kept snapshot + %d replayed records", tailErr, len(replayed))
	}
	if snapshotExists || len(replayed) > 0 {
		if err := inner.Replace(append(append([]Entry(nil), base...), replayed...)); err != nil {
			w.close()
			return nil, fmt.Errorf("gt: restore state: %w", err)
		}
	}
	p.wal = w
	p.nextSeq = lastSeq + 1
	// The durable state equals memory right now; the first compaction
	// should wait for an actual change (or fold a replayed log).
	p.compactRev = inner.Rev()
	if len(base) > 0 || len(replayed) > 0 {
		opt.Logf("gt: restored %d entries (%d from snapshot, %d replayed from WAL)",
			inner.Len(), len(snapEntries), len(replayed))
	}
	return p, nil
}

// Add implements Store: apply to the inner store, then append the record
// to the WAL and sync. The in-memory store is the source of truth; a WAL
// append failure degrades durability of this one entry (reported as the
// error), never the live database.
func (p *Persistent) Add(e Entry) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("gt: store closed")
	}
	if err := p.inner.Add(e); err != nil {
		return err
	}
	rec := walRecord{Seq: p.nextSeq, Entry: e}
	if err := p.appendWAL(func() error { return p.wal.append(rec) }); err != nil {
		// The entry is live in memory but not durable; callers on the
		// trial-completion path ignore Add errors by design, so this log
		// line is the only trace of degraded durability.
		p.opt.Logf("gt: WAL append failed (entry stays in memory only): %v", err)
		return err
	}
	p.nextSeq++
	if p.opt.CompactEvery > 0 && p.wal.records >= p.opt.CompactEvery {
		if err := p.compactLocked(); err != nil {
			p.opt.Logf("gt: compaction failed: %v", err)
		}
	}
	return nil
}

// AddAll applies a batch of entries with one framed WAL write and one
// fsync — the bulk-import path. It returns how many entries were applied
// to the live store; on error the applied prefix is still live (and its
// log records flushed), so callers can report partial progress honestly.
func (p *Persistent) AddAll(entries []Entry) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return 0, fmt.Errorf("gt: store closed")
	}
	applied := 0
	recs := make([]walRecord, 0, len(entries))
	for _, e := range entries {
		if err := p.inner.Add(e); err != nil {
			// Best-effort flush of the applied prefix; the Add error is
			// the one the caller needs to see.
			if ferr := p.flushLocked(recs); ferr != nil {
				p.opt.Logf("gt: flushing partial batch failed: %v", ferr)
			}
			return applied, err
		}
		recs = append(recs, walRecord{Seq: p.nextSeq + uint64(len(recs)), Entry: e})
		applied++
	}
	if err := p.flushLocked(recs); err != nil {
		p.opt.Logf("gt: WAL batch append failed (%d entries stay in memory only): %v", len(recs), err)
		return applied, err
	}
	if p.opt.CompactEvery > 0 && p.wal.records >= p.opt.CompactEvery {
		if err := p.compactLocked(); err != nil {
			p.opt.Logf("gt: compaction failed: %v", err)
		}
	}
	return applied, nil
}

// flushLocked appends the batch to the log and advances the sequence.
// Callers hold p.mu.
func (p *Persistent) flushLocked(recs []walRecord) error {
	if len(recs) == 0 {
		return nil
	}
	if err := p.appendWAL(func() error { return p.wal.appendBatch(recs) }); err != nil {
		return err
	}
	p.nextSeq += uint64(len(recs))
	return nil
}

// Compact folds the log into a fresh snapshot if anything changed since
// the last compaction. Safe to call at any time; concurrent lookups are
// never blocked (only writers queue behind it).
func (p *Persistent) Compact() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("gt: store closed")
	}
	return p.compactLocked()
}

// compactLocked writes the snapshot (atomically, temp+rename) and resets
// the log. Callers hold p.mu. No-ops when nothing changed since the last
// compaction, so periodic tickers are free on an idle service.
func (p *Persistent) compactLocked() error {
	rev := p.inner.Rev()
	if rev == p.compactRev && p.wal.records == 0 {
		return nil
	}
	entries := p.inner.Entries()
	seq := p.nextSeq - 1 // highest sequence folded into this snapshot
	if err := writeFileAtomic(p.path, func(w io.Writer) error {
		return saveEntries(w, entries, seq)
	}); err != nil {
		return fmt.Errorf("gt: compact: %w", err)
	}
	// The snapshot is durable; dropping the log second is safe — if we
	// crash in between, replay skips records at or below the watermark.
	if err := p.wal.reset(); err != nil {
		return err
	}
	p.compactRev = rev
	if p.met != nil {
		p.met.compactions.Inc()
	}
	return nil
}

// Close takes a final compaction and releases the log file. The store
// must not be used afterwards.
func (p *Persistent) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	err := p.compactLocked()
	if cerr := p.wal.close(); err == nil {
		err = cerr
	}
	p.closed = true
	return err
}

// WALRecords reports the number of un-compacted log records.
func (p *Persistent) WALRecords() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.wal.records
}

// Replace implements Store: the new contents replace both the in-memory
// state and the durable state (log reset + fresh snapshot).
func (p *Persistent) Replace(entries []Entry) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("gt: store closed")
	}
	if err := p.inner.Replace(entries); err != nil {
		return err
	}
	// compactLocked writes the new snapshot durably FIRST and only then
	// resets the log — never truncate the log before the snapshot that
	// supersedes it exists, or a crash in between loses acknowledged
	// entries that were durable only in the log.
	return p.compactLocked()
}

// Load implements Store (see Replace).
func (p *Persistent) Load(r io.Reader) error {
	snap, err := loadSnapshot(r)
	if err != nil {
		return err
	}
	return p.Replace(snap.Entries)
}

// Pass-through reads: persistence must add nothing to the hot path.

// Lookup implements Store.
func (p *Persistent) Lookup(features []float64) (params.SysConfig, bool) {
	return p.inner.Lookup(features)
}

// Len implements Store.
func (p *Persistent) Len() int { return p.inner.Len() }

// Stats implements Store.
func (p *Persistent) Stats() (hits, misses int) { return p.inner.Stats() }

// Rev implements Store.
func (p *Persistent) Rev() uint64 { return p.inner.Rev() }

// SimilarityName implements Store.
func (p *Persistent) SimilarityName() string { return p.inner.SimilarityName() }

// Entries implements Store.
func (p *Persistent) Entries() []Entry { return p.inner.Entries() }

// Save implements Store.
func (p *Persistent) Save(w io.Writer) error { return p.inner.Save(w) }

// Info implements Store, adding the WAL depth to the inner store's view.
func (p *Persistent) Info() Info {
	info := p.inner.Info()
	p.mu.Lock()
	info.WALRecords = p.wal.records
	p.mu.Unlock()
	return info
}

var _ Store = (*Persistent)(nil)
