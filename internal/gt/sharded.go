package gt

import (
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pipetune/internal/kmeans"
	"pipetune/internal/metrics"
	"pipetune/internal/params"
	"pipetune/internal/xrand"
)

// Sharded is the ground-truth store built for the tuning service's
// concurrency profile. Entries are partitioned into shards by profile
// cluster: an entry routes to the shard whose centroid is nearest, and a
// shard that outgrows Config.SplitSize is split in two by 2-means over its
// own entries — so shards converge onto workload families (HetPipe-style
// partitioned state) without any a-priori labelling.
//
// Concurrency design:
//
//   - Lookup is the per-epoch hot path and takes no lock at all: the
//     shard table, each shard's centroid and each shard's fitted model
//     are atomic copy-on-write snapshots, and hit/miss counters are
//     atomics. The only blocking a lookup can experience is the one-off
//     refit of a stale shard model.
//   - Add appends to exactly one shard under that shard's own mutex.
//     Concurrent jobs on different workload families touch different
//     shards and never contend.
//   - Model maintenance is incremental: Add only bumps the shard's
//     revision watermark; the refit is deferred until a Lookup routes to a
//     shard whose model is older than its watermark. The refit seed is
//     derived from (store seed, shard, revision), so the deferred model is
//     identical to what an eager refit at the same revision would have
//     produced — batching changes when work happens, never the outcome.
type Sharded struct {
	cfg  Config
	seed uint64

	hits   atomic.Int64
	misses atomic.Int64
	rev    atomic.Uint64 // data revision: every Add/Replace bumps it
	count  atomic.Int64  // total entries across shards
	ord    atomic.Uint64 // global insertion order for Entries/Save
	// revBase keeps Info's watermark comparable after Replace: Rev ==
	// revBase + entry count at all times, so ModelRev (revBase + the sum
	// of fitted shard revisions) equals Rev exactly when every model is
	// current.
	revBase atomic.Uint64

	// table is the copy-on-write shard list: readers (Lookup routing, Add
	// routing, stats) load it atomically and never block; writers (shard
	// creation, splits, Replace) rebuild it under mu and swap it in. The
	// epoch hot path is therefore entirely lock-free.
	table atomic.Pointer[[]*shard]

	// mu serialises table mutations only.
	mu       sync.Mutex
	shardSeq uint64 // next shard id, for deterministic refit seeds

	// met is the optional metrics plane, behind an atomic pointer so
	// instrumenting an already-running store stays race-free with the
	// lock-free lookup path.
	met atomic.Pointer[storeInstruments]
}

// InstrumentMetrics implements Instrumentable.
func (s *Sharded) InstrumentMetrics(reg *metrics.Registry) {
	if m := newStoreInstruments(reg); m != nil {
		s.met.Store(m)
	}
}

// shard is one profile-cluster partition.
type shard struct {
	id      uint64
	mu      sync.Mutex // guards entries, ords and splits
	retired bool       // set when a split replaced this shard
	entries []Entry
	ords    []uint64
	// splitTried is the entry count at the last failed split attempt; the
	// next attempt waits until the shard doubles, so a cohesive shard
	// (one family, nothing to split) pays amortised O(1) split checks
	// instead of a 2-means fit every SplitSize appends.
	splitTried int
	// centroid is the running mean of member features, kept behind an
	// atomic pointer so lock-free routing can read it mid-Add.
	centroid atomic.Pointer[[]float64]
	// rev counts this shard's entries; the model watermark compares
	// against it.
	rev atomic.Uint64
	// model is the copy-on-write fitted snapshot.
	model atomic.Pointer[shardModel]
}

// shardModel is an immutable fitted snapshot of one shard.
type shardModel struct {
	rev    uint64 // shard revision this model covers
	fitted bool
	sim    Similarity
	best   []params.SysConfig
}

// NewSharded creates an empty sharded store. A fixed Config.Similarity
// instance cannot back the sharded store (concurrent per-shard refits
// would race on its internal state — use Config.NewSimilarity); passing
// one panics rather than silently fitting k-means instead.
func NewSharded(cfg Config, seed uint64) *Sharded {
	if cfg.Similarity != nil && cfg.NewSimilarity == nil {
		panic("gt: Sharded needs Config.NewSimilarity (a factory); Config.Similarity (a fixed instance) only works with the Monolith")
	}
	if cfg.SplitSize <= 0 {
		cfg.SplitSize = DefaultConfig().SplitSize
	}
	if cfg.MaxShards <= 0 {
		cfg.MaxShards = DefaultConfig().MaxShards
	}
	if cfg.MinEntries <= 0 {
		cfg.MinEntries = DefaultConfig().MinEntries
	}
	return &Sharded{cfg: cfg, seed: seed}
}

// sqDist is the routing metric (squared Euclidean; monotone with the
// distance, so nearest-centroid decisions agree).
func sqDist(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}

// shards returns the current copy-on-write shard table (never nil).
func (s *Sharded) shards() []*shard {
	if t := s.table.Load(); t != nil {
		return *t
	}
	return nil
}

// nearest routes a feature vector to the shard with the closest centroid,
// lock-free. Distances to clearly-worse shards abort early, so routing
// cost stays near one full distance computation plus a prefix sum per
// remaining shard.
func (s *Sharded) nearest(features []float64) *shard {
	var best *shard
	bestD := 0.0
	for _, sh := range s.shards() {
		c := sh.centroid.Load()
		if c == nil {
			continue
		}
		if best == nil {
			best, bestD = sh, sqDist(features, *c)
			continue
		}
		if d, ok := sqDistWithin(features, *c, bestD); ok {
			best, bestD = sh, d
		}
	}
	return best
}

// sqDistWithin computes the squared distance but gives up (ok=false) as
// soon as the partial sum exceeds bound.
func sqDistWithin(a, b []float64, bound float64) (float64, bool) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		sum += d * d
		if sum >= bound {
			return sum, false
		}
	}
	return sum, true
}

// Add implements Store: route to the nearest shard, append under that
// shard's lock only, and leave the model refit to the next lookup.
func (s *Sharded) Add(e Entry) error {
	if m := s.met.Load(); m != nil {
		start := time.Now()
		defer func() { m.addSeconds.Observe(time.Since(start).Seconds()) }()
	}
	if err := e.validate(); err != nil {
		return err
	}
	cp := e.clone()
	for {
		sh := s.nearest(cp.Features)
		if sh == nil {
			s.addFirst(cp)
			return nil
		}
		if s.appendTo(sh, cp) {
			return nil
		}
		// The shard was retired by a concurrent split; re-route.
	}
}

// addFirst creates the first shard. Racing callers fall back to appendTo.
func (s *Sharded) addFirst(cp Entry) {
	s.mu.Lock()
	if sh := s.nearest(cp.Features); sh != nil {
		s.mu.Unlock()
		if s.appendTo(sh, cp) {
			return
		}
		// Retired already (extraordinarily unlikely on a fresh store);
		// start over through the normal route.
		_ = s.Add(cp)
		return
	}
	sh := s.newShardLocked(nil, nil)
	next := append(append([]*shard(nil), s.shards()...), sh)
	s.table.Store(&next)
	s.mu.Unlock()
	if !s.appendTo(sh, cp) {
		_ = s.Add(cp)
	}
}

// newShardLocked allocates a shard seeded with the given members. Callers
// hold s.mu in write mode.
func (s *Sharded) newShardLocked(entries []Entry, ords []uint64) *shard {
	sh := &shard{id: s.shardSeq, entries: entries, ords: ords}
	s.shardSeq++
	sh.rev.Store(uint64(len(entries)))
	if len(entries) > 0 {
		c := meanFeatures(entries)
		sh.centroid.Store(&c)
	}
	return sh
}

// meanFeatures computes the centroid of the entries' feature vectors.
func meanFeatures(entries []Entry) []float64 {
	c := make([]float64, len(entries[0].Features))
	for _, e := range entries {
		for i := 0; i < len(c) && i < len(e.Features); i++ {
			c[i] += e.Features[i]
		}
	}
	for i := range c {
		c[i] /= float64(len(entries))
	}
	return c
}

// appendTo appends the entry to the shard, updating its centroid and
// revision. Returns false if the shard was retired by a concurrent split
// (the caller must re-route). Splits are attempted at SplitSize multiples.
func (s *Sharded) appendTo(sh *shard, cp Entry) bool {
	sh.mu.Lock()
	if sh.retired {
		sh.mu.Unlock()
		return false
	}
	sh.entries = append(sh.entries, cp)
	sh.ords = append(sh.ords, s.ord.Add(1))
	n := len(sh.entries)
	// Recompute the centroid incrementally into a fresh slice so routing
	// readers are never disturbed mid-update.
	next := make([]float64, len(cp.Features))
	if prev := sh.centroid.Load(); prev != nil {
		for i := 0; i < len(next) && i < len(*prev); i++ {
			next[i] = (*prev)[i] + (cp.Features[i]-(*prev)[i])/float64(n)
		}
	} else {
		copy(next, cp.Features)
	}
	sh.centroid.Store(&next)
	sh.rev.Add(1)
	// Store-level counters bump inside the shard critical section:
	// Replace retires shards under this same lock, so an Add that made it
	// into a shard has always counted itself before Replace overwrites
	// the counters — count and entries can never drift apart.
	s.count.Add(1)
	s.rev.Add(1)
	sh.mu.Unlock()

	if n > 0 && s.cfg.SplitSize > 0 && n%s.cfg.SplitSize == 0 {
		s.split(sh)
	}
	return true
}

// split partitions an over-full shard in two by 2-means over its own
// entries, replacing it with two shards whose centroids route future
// entries. A degenerate clustering (everything in one group) leaves the
// shard intact until the next multiple.
func (s *Sharded) split(sh *shard) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.retired || len(sh.entries) < 2 || len(s.shards()) >= s.cfg.MaxShards {
		return
	}
	if sh.splitTried > 0 && len(sh.entries) < 2*sh.splitTried {
		return
	}
	points := make([][]float64, len(sh.entries))
	for i, e := range sh.entries {
		points[i] = e.Features
	}
	cfg := kmeans.Config{K: 2, MaxIters: 50, Restarts: 2}
	seed := mix64(s.seed ^ mix64(sh.id<<20|uint64(len(sh.entries))))
	model, err := kmeans.Fit(points, cfg, xrand.New(seed))
	if err != nil {
		sh.splitTried = len(sh.entries)
		return
	}
	// Split-quality gates: a split must produce two shards that can each
	// still fit a model (otherwise their lookups would all miss), and the
	// split must genuinely reduce within-cluster spread — otherwise shards
	// would track sampling noise inside one family instead of family
	// structure.
	var aE, bE []Entry
	var aO, bO []uint64
	for i, lbl := range model.Labels {
		if lbl == 0 {
			aE, aO = append(aE, sh.entries[i]), append(aO, sh.ords[i])
		} else {
			bE, bO = append(bE, sh.entries[i]), append(bO, sh.ords[i])
		}
	}
	minChild := s.cfg.MinEntries
	if minChild < 2 {
		minChild = 2
	}
	if len(aE) < minChild || len(bE) < minChild {
		sh.splitTried = len(sh.entries)
		return
	}
	// Variance-reduction gate: compare the post-split within-cluster sum
	// of squares against the unsplit shard's spread around its own
	// centroid. Real structure (distinct workload families, even many
	// mutually equidistant ones) drops the ratio well below one; noise
	// inside a single family barely moves it. 0.9 admits recursive
	// family splits while rejecting noise splits.
	parentSSQ := 0.0
	if c := sh.centroid.Load(); c != nil {
		for _, p := range points {
			parentSSQ += sqDist(p, *c)
		}
	}
	if parentSSQ == 0 || model.Inertia > 0.9*parentSSQ {
		sh.splitTried = len(sh.entries)
		return
	}
	a := s.newShardLocked(aE, aO)
	b := s.newShardLocked(bE, bO)
	sh.retired = true
	next := append([]*shard(nil), s.shards()...)
	for i, cur := range next {
		if cur == sh {
			next[i] = a
			break
		}
	}
	next = append(next, b)
	s.table.Store(&next)
	if m := s.met.Load(); m != nil {
		m.shardSplits.Inc()
	}
}

// Lookup implements Store: route under a read lock, match against the
// shard's copy-on-write model snapshot, refitting first if the watermark
// shows the model is stale.
func (s *Sharded) Lookup(features []float64) (params.SysConfig, bool) {
	if m := s.met.Load(); m != nil {
		start := time.Now()
		cfg, ok := s.lookup(features)
		m.lookupSeconds.Observe(time.Since(start).Seconds())
		if ok {
			m.hits.Inc()
		} else {
			m.misses.Inc()
		}
		return cfg, ok
	}
	return s.lookup(features)
}

func (s *Sharded) lookup(features []float64) (params.SysConfig, bool) {
	sh := s.nearest(features)
	if sh == nil {
		s.misses.Add(1)
		return params.SysConfig{}, false
	}
	m := sh.model.Load()
	if m == nil || m.rev != sh.rev.Load() {
		m = s.refit(sh)
	}
	if !m.fitted {
		s.misses.Add(1)
		return params.SysConfig{}, false
	}
	group, ok := m.sim.Match(features)
	if !ok || group < 0 || group >= len(m.best) {
		s.misses.Add(1)
		return params.SysConfig{}, false
	}
	s.hits.Add(1)
	return m.best[group], true
}

// refit builds a fresh model snapshot for the shard at its current
// revision. The similarity instance is new per refit and seeded from
// (store seed, shard id, revision) only, so the outcome is independent of
// how many intermediate revisions went unfitted.
func (s *Sharded) refit(sh *shard) *shardModel {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rev := sh.rev.Load()
	if m := sh.model.Load(); m != nil && m.rev == rev {
		return m // raced with another refitter
	}
	m := &shardModel{rev: rev}
	if len(sh.entries) >= s.cfg.MinEntries {
		sim := s.newSimilarity(sh.id, rev, len(sh.entries))
		points := make([][]float64, len(sh.entries))
		for i, e := range sh.entries {
			points[i] = e.Features
		}
		if err := sim.Fit(points); err == nil {
			m.fitted = true
			m.sim = sim
			m.best = groupBest(sh.entries, sim)
		}
	}
	sh.model.Store(m)
	return m
}

// newSimilarity constructs the per-refit similarity instance.
func (s *Sharded) newSimilarity(shardID, rev uint64, n int) Similarity {
	seed := mix64(s.seed ^ mix64(shardID<<32^rev))
	if s.cfg.NewSimilarity != nil {
		return s.cfg.NewSimilarity(seed)
	}
	// Clamp K so a small shard still fits (kmeans refuses n < K).
	cfg := s.cfg.KMeans
	if cfg.K > n {
		cfg.K = n
	}
	return NewKMeansSimilarity(cfg, s.cfg.Threshold, seed)
}

// Len implements Store.
func (s *Sharded) Len() int { return int(s.count.Load()) }

// Stats implements Store.
func (s *Sharded) Stats() (hits, misses int) {
	return int(s.hits.Load()), int(s.misses.Load())
}

// Rev implements Store.
func (s *Sharded) Rev() uint64 { return s.rev.Load() }

// SimilarityName implements Store.
func (s *Sharded) SimilarityName() string {
	return s.newSimilarity(0, 0, s.cfg.MinEntries).Name()
}

// Info implements Store. ModelRev sums the shard model watermarks (plus
// the revision base left by Replace), so ModelRev == Rev exactly when
// every shard's model has seen every entry.
func (s *Sharded) Info() Info {
	table := s.shards()
	shards := len(table)
	modelRev := s.revBase.Load()
	for _, sh := range table {
		if m := sh.model.Load(); m != nil {
			modelRev += m.rev
		}
	}
	hits, misses := s.Stats()
	return Info{
		Store:      "sharded",
		Entries:    s.Len(),
		Hits:       hits,
		Misses:     misses,
		Rev:        s.Rev(),
		ModelRev:   modelRev,
		Shards:     shards,
		Similarity: s.SimilarityName(),
	}
}

// Entries implements Store: all entries, restored to insertion order.
func (s *Sharded) Entries() []Entry {
	type rec struct {
		ord uint64
		e   Entry
	}
	var recs []rec
	for _, sh := range s.shards() {
		sh.mu.Lock()
		for i, e := range sh.entries {
			recs = append(recs, rec{ord: sh.ords[i], e: e.clone()})
		}
		sh.mu.Unlock()
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ord < recs[j].ord })
	out := make([]Entry, len(recs))
	for i, r := range recs {
		out[i] = r.e
	}
	return out
}

// Replace implements Store: the new shard map is rebuilt offline by
// re-routing the entries in order (so a Load reproduces the layout the
// same insertion sequence would have produced live) and then swapped in
// under the write lock. An Add racing with the swap either lands before
// it — and is discarded with the rest of the old contents, exactly like
// an Add serialised before Monolith.Replace — or observes its shard
// retired and re-routes into the new table.
func (s *Sharded) Replace(entries []Entry) error {
	for _, e := range entries {
		if err := e.validate(); err != nil {
			return err
		}
	}
	tmp := NewSharded(s.cfg, s.seed)
	for _, e := range entries {
		if err := tmp.Add(e); err != nil {
			return err
		}
	}
	s.mu.Lock()
	for _, sh := range s.shards() {
		sh.mu.Lock()
		sh.retired = true
		sh.mu.Unlock()
	}
	next := tmp.shards()
	s.table.Store(&next)
	s.shardSeq = tmp.shardSeq
	s.count.Store(tmp.count.Load())
	s.ord.Store(tmp.ord.Load())
	// Rev stays monotone and lands at revBase+count, so the ModelRev
	// watermark comparison keeps meaning "all models current".
	count := tmp.rev.Load()
	newRev := count
	if old := s.rev.Load(); newRev <= old {
		newRev = old + 1
	}
	s.rev.Store(newRev)
	s.revBase.Store(newRev - count)
	s.mu.Unlock()
	return nil
}

// Save implements Store.
func (s *Sharded) Save(w io.Writer) error {
	return saveEntries(w, s.Entries(), 0)
}

// Load implements Store.
func (s *Sharded) Load(r io.Reader) error {
	snap, err := loadSnapshot(r)
	if err != nil {
		return err
	}
	return s.Replace(snap.Entries)
}

var _ Store = (*Sharded)(nil)
