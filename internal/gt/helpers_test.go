package gt

import (
	"testing"

	"pipetune/internal/params"
	"pipetune/internal/perf"
	"pipetune/internal/workload"
	"pipetune/internal/xrand"
)

var (
	lenetMNIST = workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}
	cnnNews    = workload.Workload{Model: workload.CNN, Dataset: workload.News20}
)

// featuresOf produces a realistic profile feature vector for a workload.
func featuresOf(t testing.TB, w workload.Workload, seed uint64) []float64 {
	t.Helper()
	s := perf.NewSampler()
	p, err := s.EpochProfile(xrand.New(seed), workload.TraitsFor(w),
		params.DefaultHyper(), params.DefaultSysConfig(), perf.PhaseTrain, 30)
	if err != nil {
		t.Fatal(err)
	}
	return p.Features()
}

// probeGrid is the test stand-in for core.DefaultProbeConfigs.
func probeGrid() []params.SysConfig {
	return []params.SysConfig{
		{Cores: 4, MemoryGB: 8},
		{Cores: 8, MemoryGB: 8},
		{Cores: 16, MemoryGB: 8},
		{Cores: 4, MemoryGB: 32},
		{Cores: 8, MemoryGB: 32},
		{Cores: 16, MemoryGB: 32},
	}
}

// gtEntry fabricates a distinguishable entry.
func gtEntry(i int) Entry {
	return Entry{
		Features: []float64{float64(i), float64(i % 7), float64(i % 3), 1},
		BestSys:  probeGrid()[i%len(probeGrid())],
		Metric:   0.5 + float64(i%10)/100,
	}
}

// familyEntry fabricates an entry whose features sit in one of nFamilies
// well-separated clusters — the synthetic analogue of distinct workload
// families, for routing and sharding tests.
func familyEntry(family, i, nFamilies int) Entry {
	base := float64(family * 100)
	jitter := float64(i%5) * 0.2
	return Entry{
		Features: []float64{base + jitter, base - jitter, float64(family), 1},
		BestSys:  probeGrid()[family%len(probeGrid())],
		Metric:   0.5,
	}
}

// eachStore runs a subtest against a fresh instance of every Store
// implementation.
func eachStore(t *testing.T, fn func(t *testing.T, s Store)) {
	t.Helper()
	t.Run("monolith", func(t *testing.T) { fn(t, NewMonolith(DefaultConfig(), 1)) })
	t.Run("sharded", func(t *testing.T) { fn(t, NewSharded(DefaultConfig(), 1)) })
}
