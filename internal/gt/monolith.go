package gt

import (
	"io"
	"sync"
	"time"

	"pipetune/internal/metrics"
	"pipetune/internal/params"
)

// Monolith is the original ground-truth design (§5.4): one database behind
// one mutex, with the similarity model eagerly refit on every Add — §5.6's
// probing data "is saved to be taken into account once re-clustering is
// applied", applied literally. It is safe for concurrent use, but every
// operation (including Lookup's distance computation) serialises through
// the lock — the contention profile the sharded store exists to fix. Kept
// as the conservative reference implementation and benchmark baseline.
type Monolith struct {
	mu      sync.Mutex
	cfg     Config
	sim     Similarity
	fitted  bool
	entries []Entry
	best    []params.SysConfig
	hits    int
	misses  int
	rev     uint64 // bumped on every mutation; lets callers skip no-op snapshots
	met     *storeInstruments
}

// InstrumentMetrics implements Instrumentable.
func (g *Monolith) InstrumentMetrics(reg *metrics.Registry) {
	if m := newStoreInstruments(reg); m != nil {
		g.mu.Lock()
		g.met = m
		g.mu.Unlock()
	}
}

// NewMonolith creates an empty monolithic database.
func NewMonolith(cfg Config, seed uint64) *Monolith {
	sim := cfg.Similarity
	if sim == nil && cfg.NewSimilarity != nil {
		sim = cfg.NewSimilarity(seed)
	}
	if sim == nil {
		sim = NewKMeansSimilarity(cfg.KMeans, cfg.Threshold, seed)
	}
	return &Monolith{cfg: cfg, sim: sim}
}

// SimilarityName implements Store.
func (g *Monolith) SimilarityName() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sim.Name()
}

// Len implements Store.
func (g *Monolith) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.entries)
}

// Stats implements Store.
func (g *Monolith) Stats() (hits, misses int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.hits, g.misses
}

// Rev implements Store.
func (g *Monolith) Rev() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.rev
}

// Info implements Store. The monolith refits eagerly, so ModelRev always
// equals Rev.
func (g *Monolith) Info() Info {
	g.mu.Lock()
	defer g.mu.Unlock()
	return Info{
		Store:      "monolith",
		Entries:    len(g.entries),
		Hits:       g.hits,
		Misses:     g.misses,
		Rev:        g.rev,
		ModelRev:   g.rev,
		Shards:     1,
		Similarity: g.sim.Name(),
	}
}

// Add implements Store: store the entry and re-cluster immediately.
func (g *Monolith) Add(e Entry) error {
	if err := e.validate(); err != nil {
		return err
	}
	cp := e.clone()
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.met != nil {
		start := time.Now()
		defer func() { g.met.addSeconds.Observe(time.Since(start).Seconds()) }()
	}
	g.entries = append(g.entries, cp)
	g.rev++
	g.recluster()
	return nil
}

// recluster refits the similarity model and recomputes per-group best
// configurations. Callers must hold g.mu.
func (g *Monolith) recluster() {
	if len(g.entries) < g.cfg.MinEntries {
		g.fitted = false
		g.best = nil
		return
	}
	points := make([][]float64, len(g.entries))
	for i, e := range g.entries {
		points[i] = e.Features
	}
	if err := g.sim.Fit(points); err != nil {
		g.fitted = false
		g.best = nil
		return
	}
	g.fitted = true
	g.best = groupBest(g.entries, g.sim)
}

// Lookup implements Store (§5.6: "the distance is compared against the
// model's inertia, to measure the reliability of the prediction"). The
// whole match, distance computation included, runs under the exclusive
// mutex — by design the monolith's known hot-path cost.
func (g *Monolith) Lookup(features []float64) (params.SysConfig, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.met != nil {
		start := time.Now()
		defer func() { g.met.lookupSeconds.Observe(time.Since(start).Seconds()) }()
	}
	cfg, ok := g.lookupLocked(features)
	if g.met != nil {
		if ok {
			g.met.hits.Inc()
		} else {
			g.met.misses.Inc()
		}
	}
	return cfg, ok
}

func (g *Monolith) lookupLocked(features []float64) (params.SysConfig, bool) {
	if !g.fitted {
		g.misses++
		return params.SysConfig{}, false
	}
	group, ok := g.sim.Match(features)
	if !ok || group < 0 || group >= len(g.best) {
		g.misses++
		return params.SysConfig{}, false
	}
	g.hits++
	return g.best[group], true
}

// Entries implements Store.
func (g *Monolith) Entries() []Entry {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Entry, len(g.entries))
	for i, e := range g.entries {
		out[i] = e.clone()
	}
	return out
}

// Replace implements Store.
func (g *Monolith) Replace(entries []Entry) error {
	cp := make([]Entry, len(entries))
	for i, e := range entries {
		if err := e.validate(); err != nil {
			return err
		}
		cp[i] = e.clone()
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.entries = cp
	g.rev++
	g.recluster()
	return nil
}

// Save implements Store. The encode runs under the lock so the entries
// and any revision observed around it agree.
func (g *Monolith) Save(w io.Writer) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return saveEntries(w, g.entries, 0)
}

// Load implements Store — the "warm start" path of §5.4 (the user "can
// point to a pre-trained similarity function").
func (g *Monolith) Load(r io.Reader) error {
	snap, err := loadSnapshot(r)
	if err != nil {
		return err
	}
	return g.Replace(snap.Entries)
}

// SaveFile persists the database to path atomically (see gt.SaveFile).
// Kept as a method for the callers that predate the Store interface.
func (g *Monolith) SaveFile(path string) (rev uint64, err error) {
	return SaveFile(g, path)
}

// LoadFile restores the database from a SaveFile snapshot (see
// gt.LoadFile).
func (g *Monolith) LoadFile(path string) error {
	return LoadFile(g, path)
}

var _ Store = (*Monolith)(nil)
