package gt

import (
	"pipetune/internal/metrics"
)

// Instrumentable is the optional interface a store implements to
// report operational series into a metrics registry. The service
// type-asserts its configured Store against it, so plain stores (or
// test fakes) need no metrics awareness.
type Instrumentable interface {
	// InstrumentMetrics registers this store's instruments in reg and
	// starts reporting. Must be called before the store sees
	// concurrent use; a nil registry is a no-op.
	InstrumentMetrics(reg *metrics.Registry)
}

// storeInstruments are the registry handles shared by the in-memory
// store implementations. All fields are nil-safe: an uninstrumented
// store carries a nil pointer and the hot paths skip even the
// time.Now calls.
type storeInstruments struct {
	lookupSeconds *metrics.Distribution
	addSeconds    *metrics.Distribution
	hits          *metrics.Counter
	misses        *metrics.Counter
	shardSplits   *metrics.Counter
}

func newStoreInstruments(reg *metrics.Registry) *storeInstruments {
	if reg == nil {
		return nil
	}
	return &storeInstruments{
		lookupSeconds: reg.Distribution("pipetune_gt_lookup_seconds",
			"Ground-truth store lookup latency."),
		addSeconds: reg.Distribution("pipetune_gt_add_seconds",
			"Ground-truth store add latency (excluding WAL durability)."),
		hits: reg.Counter("pipetune_gt_lookup_hits_total",
			"Ground-truth lookups that returned a configuration."),
		misses: reg.Counter("pipetune_gt_lookup_misses_total",
			"Ground-truth lookups that found no match."),
		shardSplits: reg.Counter("pipetune_gt_shard_splits_total",
			"Completed shard splits in the sharded ground-truth store."),
	}
}

// walInstruments are the durability-layer handles of the persistent
// wrapper.
type walInstruments struct {
	fsyncs       *metrics.Counter
	fsyncSeconds *metrics.Distribution
	compactions  *metrics.Counter
}

func newWALInstruments(reg *metrics.Registry) *walInstruments {
	if reg == nil {
		return nil
	}
	return &walInstruments{
		fsyncs: reg.Counter("pipetune_gt_wal_fsyncs_total",
			"WAL append fsyncs issued by the persistent ground-truth store."),
		fsyncSeconds: reg.Distribution("pipetune_gt_wal_fsync_seconds",
			"Latency of one framed WAL append including its fsync."),
		compactions: reg.Counter("pipetune_gt_compactions_total",
			"Ground-truth WAL compactions that wrote a snapshot."),
	}
}
