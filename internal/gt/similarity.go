package gt

import (
	"errors"
	"fmt"
	"math"

	"pipetune/internal/kmeans"
	"pipetune/internal/stats"
	"pipetune/internal/xrand"
)

// Similarity is the pluggable similarity function of §5.4: the paper's
// design "allows the similarity function to be pluggable, and while we do
// settle on k-means in the current implementation, PipeTune allows to
// easily switch to alternative techniques".
//
// A Similarity groups historical profiles and answers, for a new profile,
// which group it belongs to and whether the match is confident enough to
// reuse that group's configuration (an unconfident match triggers probing,
// §5.6).
type Similarity interface {
	// Name identifies the technique in logs and stats.
	Name() string
	// Fit rebuilds the model from the training features. Implementations
	// must tolerate being refit repeatedly as the database grows.
	Fit(features [][]float64) error
	// Groups returns the number of groups after the last Fit.
	Groups() int
	// GroupOf returns the fitted group of training point i.
	GroupOf(i int) int
	// Match returns the group of a query and whether the match is within
	// the technique's confidence region.
	Match(query []float64) (group int, ok bool)
}

// ------------------------------------------------------------- k-means ---

// KMeansSimilarity is the paper's default: k-means clustering with an
// inertia-derived accept radius (§5.4, §5.6).
type KMeansSimilarity struct {
	cfg       kmeans.Config
	threshold float64
	rng       *xrand.Source
	model     *kmeans.Model
}

// NewKMeansSimilarity builds the default technique. threshold scales each
// cluster's RMS radius when deciding confidence.
func NewKMeansSimilarity(cfg kmeans.Config, threshold float64, seed uint64) *KMeansSimilarity {
	return &KMeansSimilarity{cfg: cfg, threshold: threshold, rng: xrand.New(seed)}
}

// Name implements Similarity.
func (s *KMeansSimilarity) Name() string { return "kmeans" }

// Fit implements Similarity.
func (s *KMeansSimilarity) Fit(features [][]float64) error {
	if len(features) < s.cfg.K {
		s.model = nil
		return fmt.Errorf("gt: %d profiles < k=%d", len(features), s.cfg.K)
	}
	model, err := kmeans.Fit(features, s.cfg, s.rng)
	if err != nil {
		s.model = nil
		return err
	}
	s.model = model
	return nil
}

// Groups implements Similarity.
func (s *KMeansSimilarity) Groups() int {
	if s.model == nil {
		return 0
	}
	return s.model.K
}

// GroupOf implements Similarity.
func (s *KMeansSimilarity) GroupOf(i int) int {
	if s.model == nil || i < 0 || i >= len(s.model.Labels) {
		return 0
	}
	return s.model.Labels[i]
}

// Match implements Similarity: nearest centroid, confident when the
// distance is within threshold × the cluster's RMS radius (with a fallback
// radius for degenerate single-member clusters).
func (s *KMeansSimilarity) Match(query []float64) (int, bool) {
	if s.model == nil {
		return 0, false
	}
	cluster, dist, err := s.model.Predict(query)
	if err != nil {
		return 0, false
	}
	radius, err := s.model.Radius(cluster)
	if err != nil {
		return 0, false
	}
	if radius == 0 {
		radius = s.centroidScale() * 0.05
	}
	if radius == 0 || dist > s.threshold*radius {
		return cluster, false
	}
	return cluster, true
}

// centroidScale returns the mean pairwise centroid distance.
func (s *KMeansSimilarity) centroidScale() float64 {
	cs := s.model.Centroids
	total, n := 0.0, 0
	for i := 0; i < len(cs); i++ {
		for j := i + 1; j < len(cs); j++ {
			d, err := stats.EuclideanDistance(cs[i], cs[j])
			if err != nil {
				continue
			}
			total += d
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// -------------------------------------------------- nearest neighbour ---

// NearestNeighborSimilarity is an alternative technique: every historical
// profile is its own group, and a query matches its nearest neighbour when
// the distance is within threshold × the mean nearest-neighbour distance of
// the training set. Finer-grained than k-means (per-trial rather than
// per-family configuration reuse) at the cost of a larger model.
type NearestNeighborSimilarity struct {
	threshold float64
	points    [][]float64
	meanNN    float64
}

// NewNearestNeighborSimilarity builds the k-NN technique.
func NewNearestNeighborSimilarity(threshold float64) *NearestNeighborSimilarity {
	return &NearestNeighborSimilarity{threshold: threshold}
}

// Name implements Similarity.
func (s *NearestNeighborSimilarity) Name() string { return "nearest-neighbor" }

// Fit implements Similarity.
func (s *NearestNeighborSimilarity) Fit(features [][]float64) error {
	if len(features) == 0 {
		s.points = nil
		return errors.New("gt: no profiles to fit")
	}
	pts := make([][]float64, len(features))
	for i, f := range features {
		pts[i] = append([]float64(nil), f...)
	}
	s.points = pts
	// Mean nearest-neighbour distance defines the confidence scale.
	if len(pts) < 2 {
		s.meanNN = 0
		return nil
	}
	total := 0.0
	for i := range pts {
		nearest := math.Inf(1)
		for j := range pts {
			if i == j {
				continue
			}
			d, err := stats.EuclideanDistance(pts[i], pts[j])
			if err != nil {
				return err
			}
			if d < nearest {
				nearest = d
			}
		}
		total += nearest
	}
	s.meanNN = total / float64(len(pts))
	return nil
}

// Groups implements Similarity.
func (s *NearestNeighborSimilarity) Groups() int { return len(s.points) }

// GroupOf implements Similarity.
func (s *NearestNeighborSimilarity) GroupOf(i int) int { return i }

// Match implements Similarity.
func (s *NearestNeighborSimilarity) Match(query []float64) (int, bool) {
	if len(s.points) == 0 {
		return 0, false
	}
	best, bestD := 0, math.Inf(1)
	for i, p := range s.points {
		d, err := stats.EuclideanDistance(query, p)
		if err != nil {
			return 0, false
		}
		if d < bestD {
			best, bestD = i, d
		}
	}
	scale := s.meanNN
	if scale == 0 || bestD > s.threshold*scale {
		return best, false
	}
	return best, true
}

// Compile-time interface checks.
var (
	_ Similarity = (*KMeansSimilarity)(nil)
	_ Similarity = (*NearestNeighborSimilarity)(nil)
)
