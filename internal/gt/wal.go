package gt

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The write-ahead log is an append-only file of CRC-framed JSON records:
//
//	magic  "PTGTWAL1"                            (8 bytes, once)
//	record [uint32 payload length (LE)]
//	       [uint32 CRC-32 (IEEE) of the payload]
//	       [payload: JSON walRecord]
//
// Records are applied on top of the last compacted snapshot at recovery.
// A torn append (crash mid-write) or a corrupted tail is detected by the
// length/CRC frame; replay stops at the first damaged record and recovery
// keeps everything before it — the snapshot plus the valid prefix.
const walMagic = "PTGTWAL1"

// walMaxRecord bounds a single record so a corrupted length prefix cannot
// ask replay to allocate gigabytes.
const walMaxRecord = 16 << 20

// walRecord is one logged mutation. Seq is a global, strictly increasing
// sequence number; records at or below the snapshot's Seq are skipped on
// replay (they are already folded into the snapshot).
type walRecord struct {
	Seq   uint64 `json:"seq"`
	Entry Entry  `json:"entry"`
}

// ErrWALCorrupt reports a damaged (truncated or bit-flipped) log tail.
// Recovery treats it as a signal to truncate the log at the last good
// record, not as a fatal error.
var ErrWALCorrupt = errors.New("gt: corrupt WAL tail")

// wal is the append side of the log.
type wal struct {
	f       *os.File
	records int
	// goodOff is the file offset just past the last fully-synced record.
	// A failed or partial append truncates back to it, so a torn frame
	// can never sit in front of later, successfully-acknowledged records
	// (recovery stops at the first damaged frame — anything after it
	// would be silently lost).
	goodOff int64
}

// openWAL opens (creating if needed) the log at path for appending and
// replays existing records through apply, in order. Records with
// seq <= afterSeq are skipped. On a damaged tail the file is truncated at
// the last good record so subsequent appends extend the valid prefix; the
// damage is reported through the returned tailErr (an ErrWALCorrupt
// wrapper) while the wal itself is still usable.
func openWAL(path string, afterSeq uint64, apply func(walRecord) error) (w *wal, lastSeq uint64, tailErr error, err error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, nil, fmt.Errorf("gt: open WAL: %w", err)
	}
	goodOff, lastSeq, nRecords, tailErr, err := replayWAL(f, afterSeq, apply)
	if err != nil {
		f.Close()
		return nil, 0, nil, err
	}
	if tailErr != nil {
		if trErr := f.Truncate(goodOff); trErr != nil {
			f.Close()
			return nil, 0, nil, fmt.Errorf("gt: truncate damaged WAL: %w", trErr)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, 0, nil, fmt.Errorf("gt: seek WAL: %w", err)
	}
	return &wal{f: f, records: nRecords, goodOff: goodOff}, lastSeq, tailErr, nil
}

// replayWAL scans the log from the start, applying valid records with
// seq > afterSeq. It returns the offset just past the last good record,
// the highest sequence seen, the number of valid records, and a non-nil
// tailErr when the tail is damaged.
func replayWAL(f *os.File, afterSeq uint64, apply func(walRecord) error) (goodOff int64, lastSeq uint64, nRecords int, tailErr error, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, 0, nil, fmt.Errorf("gt: seek WAL: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		return 0, 0, 0, nil, fmt.Errorf("gt: stat WAL: %w", err)
	}
	if st.Size() == 0 { // fresh log: write the magic
		if _, err := f.Write([]byte(walMagic)); err != nil {
			return 0, 0, 0, nil, fmt.Errorf("gt: init WAL: %w", err)
		}
		return int64(len(walMagic)), afterSeq, 0, nil, nil
	}
	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(f, magic); err != nil || string(magic) != walMagic {
		// Not a WAL at all (or shorter than the magic): treat the whole
		// file as damage and keep only the snapshot.
		return 0, afterSeq, 0, fmt.Errorf("%w: bad magic", ErrWALCorrupt), nil
	}
	goodOff = int64(len(walMagic))
	lastSeq = afterSeq
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return goodOff, lastSeq, nRecords, nil, nil // clean end
			}
			return goodOff, lastSeq, nRecords, fmt.Errorf("%w: torn frame header", ErrWALCorrupt), nil
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > walMaxRecord {
			return goodOff, lastSeq, nRecords, fmt.Errorf("%w: implausible record length %d", ErrWALCorrupt, length), nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return goodOff, lastSeq, nRecords, fmt.Errorf("%w: torn record", ErrWALCorrupt), nil
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return goodOff, lastSeq, nRecords, fmt.Errorf("%w: checksum mismatch", ErrWALCorrupt), nil
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return goodOff, lastSeq, nRecords, fmt.Errorf("%w: undecodable record: %v", ErrWALCorrupt, err), nil
		}
		if rec.Seq > afterSeq {
			if err := apply(rec); err != nil {
				return 0, 0, 0, nil, fmt.Errorf("gt: replay WAL: %w", err)
			}
		}
		if rec.Seq > lastSeq {
			lastSeq = rec.Seq
		}
		nRecords++
		goodOff += int64(len(hdr)) + int64(length)
	}
}

// append frames, writes and syncs one record.
func (w *wal) append(rec walRecord) error {
	return w.appendBatch([]walRecord{rec})
}

// appendBatch frames all records into one buffer, writes them with a
// single Write and a single Sync — bulk feeds (HTTP imports) pay one
// fsync per batch instead of one per entry. On any failure the file is
// rolled back to the last good offset so the log never carries a torn
// frame in front of future appends.
func (w *wal) appendBatch(recs []walRecord) error {
	if len(recs) == 0 {
		return nil
	}
	var buf []byte
	for _, rec := range recs {
		payload, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("gt: encode WAL record: %w", err)
		}
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		buf = append(buf, hdr[:]...)
		buf = append(buf, payload...)
	}
	if _, err := w.f.Write(buf); err != nil {
		w.rollback()
		return fmt.Errorf("gt: append WAL: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		w.rollback()
		return fmt.Errorf("gt: sync WAL: %w", err)
	}
	w.records += len(recs)
	w.goodOff += int64(len(buf))
	return nil
}

// rollback repositions the log at the last good offset after a failed
// append. The seek happens regardless of whether the truncate succeeds:
// if torn bytes could not be cut off, the next append simply overwrites
// them in place, so acknowledged records never sit behind a damaged
// frame (recovery stops at the first one). Any stale remnant past the
// overwriting append is detected as a damaged tail at the next boot and
// truncated there, after the valid frames.
func (w *wal) rollback() {
	_ = w.f.Truncate(w.goodOff)
	_, _ = w.f.Seek(w.goodOff, io.SeekStart)
}

// reset truncates the log back to just the magic (after a compaction
// folded its records into the snapshot).
func (w *wal) reset() error {
	if err := w.f.Truncate(int64(len(walMagic))); err != nil {
		return fmt.Errorf("gt: reset WAL: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("gt: reset WAL: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("gt: reset WAL: %w", err)
	}
	w.records = 0
	w.goodOff = int64(len(walMagic))
	return nil
}

// close releases the file handle.
func (w *wal) close() error { return w.f.Close() }
