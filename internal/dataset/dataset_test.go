package dataset

import (
	"testing"
	"testing/quick"

	"pipetune/internal/workload"
	"pipetune/internal/xrand"
)

func gen(t *testing.T, w workload.Workload) (*Set, *Set) {
	t.Helper()
	train, test, err := Generate(w, 42, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return train, test
}

func TestGenerateShapes(t *testing.T) {
	cases := []struct {
		w       workload.Workload
		dim     int
		classes int
	}{
		{workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}, 64, 10},
		{workload.Workload{Model: workload.LeNet5, Dataset: workload.FashionMNIST}, 64, 10},
		{workload.Workload{Model: workload.CNN, Dataset: workload.News20}, 128, 20},
		{workload.Workload{Model: workload.Jacobi, Dataset: workload.Rodinia}, 32, 4},
	}
	for _, tc := range cases {
		t.Run(tc.w.Name(), func(t *testing.T) {
			train, test := gen(t, tc.w)
			if train.Dim != tc.dim || train.NumClasses != tc.classes {
				t.Fatalf("train dim/classes = %d/%d, want %d/%d",
					train.Dim, train.NumClasses, tc.dim, tc.classes)
			}
			if train.Len() != DefaultConfig().TrainSize || test.Len() != DefaultConfig().TestSize {
				t.Fatalf("split sizes = %d/%d", train.Len(), test.Len())
			}
			for _, s := range train.Samples {
				if len(s.Features) != tc.dim {
					t.Fatalf("sample has %d features, want %d", len(s.Features), tc.dim)
				}
				if s.Label < 0 || s.Label >= tc.classes {
					t.Fatalf("label %d out of range", s.Label)
				}
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w := workload.Workload{Model: workload.CNN, Dataset: workload.News20}
	a, _, err := Generate(w, 7, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Generate(w, 7, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Samples {
		if a.Samples[i].Label != b.Samples[i].Label {
			t.Fatalf("labels diverge at %d", i)
		}
		for d := range a.Samples[i].Features {
			if a.Samples[i].Features[d] != b.Samples[i].Features[d] {
				t.Fatalf("features diverge at sample %d dim %d", i, d)
			}
		}
	}
}

func TestTypeIIWorkloadsShareDataset(t *testing.T) {
	cnn, _, err := Generate(workload.Workload{Model: workload.CNN, Dataset: workload.News20}, 7, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	lstm, _, err := Generate(workload.Workload{Model: workload.LSTM, Dataset: workload.News20}, 7, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range cnn.Samples {
		if cnn.Samples[i].Label != lstm.Samples[i].Label {
			t.Fatal("Type-II workloads should share the exact same corpus")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	w := workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}
	a, _, _ := Generate(w, 1, DefaultConfig())
	b, _, _ := Generate(w, 2, DefaultConfig())
	same := 0
	for i := range a.Samples {
		if a.Samples[i].Features[0] == b.Samples[i].Features[0] {
			same++
		}
	}
	if same > a.Len()/10 {
		t.Fatalf("seeds 1 and 2 share %d/%d first features", same, a.Len())
	}
}

func TestClassBalance(t *testing.T) {
	for _, w := range workload.Catalog() {
		train, _ := gen(t, w)
		counts := make([]int, train.NumClasses)
		for _, s := range train.Samples {
			counts[s.Label]++
		}
		want := train.Len() / train.NumClasses
		for c, n := range counts {
			if n < want-1 || n > want+1 {
				t.Fatalf("%s class %d has %d samples, want ~%d", w.Name(), c, n, want)
			}
		}
	}
}

func TestBagOfWordsNonNegative(t *testing.T) {
	train, _ := gen(t, workload.Workload{Model: workload.CNN, Dataset: workload.News20})
	for _, s := range train.Samples {
		for _, f := range s.Features {
			if f < 0 {
				t.Fatalf("bag-of-words feature negative: %v", f)
			}
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	w := workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}
	if _, _, err := Generate(w, 1, Config{TrainSize: 0, TestSize: 10}); err == nil {
		t.Fatal("zero train size accepted")
	}
	if _, _, err := Generate(w, 1, Config{TrainSize: 10, TestSize: -1}); err == nil {
		t.Fatal("negative test size accepted")
	}
}

func TestClassesAreLinearlySeparableEnough(t *testing.T) {
	// Nearest-prototype classification on the synthetic MNIST stand-in
	// should comfortably beat chance — otherwise no model could learn it.
	w := workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}
	train, test := gen(t, w)
	centroids := make([][]float64, train.NumClasses)
	counts := make([]int, train.NumClasses)
	for c := range centroids {
		centroids[c] = make([]float64, train.Dim)
	}
	for _, s := range train.Samples {
		for d, f := range s.Features {
			centroids[s.Label][d] += f
		}
		counts[s.Label]++
	}
	for c := range centroids {
		for d := range centroids[c] {
			centroids[c][d] /= float64(counts[c])
		}
	}
	correct := 0
	for _, s := range test.Samples {
		best, bestDist := -1, 0.0
		for c := range centroids {
			dist := 0.0
			for d := range s.Features {
				diff := s.Features[d] - centroids[c][d]
				dist += diff * diff
			}
			if best == -1 || dist < bestDist {
				best, bestDist = c, dist
			}
		}
		if best == s.Label {
			correct++
		}
	}
	acc := float64(correct) / float64(test.Len())
	if acc < 0.5 {
		t.Fatalf("nearest-centroid accuracy = %.2f; synthetic MNIST too hard", acc)
	}
}

func TestBatches(t *testing.T) {
	b := Batches(10, 4, nil)
	if len(b) != 3 || len(b[0]) != 4 || len(b[2]) != 2 {
		t.Fatalf("Batches(10,4) = %v", b)
	}
	seen := make(map[int]bool)
	for _, batch := range b {
		for _, i := range batch {
			if seen[i] {
				t.Fatalf("index %d appears twice", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("covered %d indices, want 10", len(seen))
	}
	if Batches(0, 4, nil) != nil || Batches(4, 0, nil) != nil {
		t.Fatal("degenerate batches should be nil")
	}
}

func TestBatchesWithPermutation(t *testing.T) {
	r := xrand.New(5)
	perm := r.Perm(20)
	b := Batches(20, 6, perm)
	flat := make([]int, 0, 20)
	for _, batch := range b {
		flat = append(flat, batch...)
	}
	for i, v := range flat {
		if v != perm[i] {
			t.Fatalf("batches do not follow permutation at %d", i)
		}
	}
}

// Property: batches always partition [0,n) exactly.
func TestQuickBatchesPartition(t *testing.T) {
	f := func(nRaw, bRaw uint8) bool {
		n, b := int(nRaw)%200+1, int(bRaw)%32+1
		seen := make(map[int]bool, n)
		for _, batch := range Batches(n, b, nil) {
			if len(batch) == 0 || len(batch) > b {
				return false
			}
			for _, i := range batch {
				if i < 0 || i >= n || seen[i] {
					return false
				}
				seen[i] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
