// Package dataset synthesises the evaluation corpora of Table 3.
//
// The paper trains on MNIST, Fashion-MNIST, News20 and Rodinia inputs. Those
// corpora are not shippable inside an offline, dependency-free module, so
// this package generates class-structured synthetic stand-ins with the same
// label cardinality and qualitative difficulty ordering:
//
//   - MNIST-style: 10 well-separated Gaussian digit prototypes over a
//     pixel-like feature grid (easiest).
//   - Fashion-MNIST-style: 10 classes with more inter-class overlap
//     (slightly harder, as in the real datasets).
//   - News20-style: 20 topics as sparse bag-of-words count vectors
//     (hardest; text models need capacity to separate them).
//   - Rodinia-style: numeric kernel states labelled by regime (small,
//     4-class task for the Type-III sprinting workloads).
//
// Everything a tuner observes — accuracy trajectories responding to batch
// size, learning rate, dropout, capacity — emerges from genuinely training
// on these sets. Generation is deterministic per (workload, seed).
package dataset

import (
	"fmt"
	"math"

	"pipetune/internal/workload"
	"pipetune/internal/xrand"
)

// Sample is one labelled feature vector.
type Sample struct {
	Features []float64
	Label    int
}

// Set is an in-memory dataset split.
type Set struct {
	Name       string
	Dim        int
	NumClasses int
	Samples    []Sample
}

// Len returns the number of samples.
func (s *Set) Len() int { return len(s.Samples) }

// Config controls synthetic corpus size. The defaults are deliberately much
// smaller than Table 3's file counts: learning dynamics need only enough
// data to show convergence trends, while simulated epoch *time* is driven by
// the full Table 3 sizes via workload.Traits.
type Config struct {
	TrainSize int
	TestSize  int
}

// DefaultConfig returns the standard scaled-down corpus size.
func DefaultConfig() Config {
	return Config{TrainSize: 1536, TestSize: 512}
}

// Generate synthesises the train/test splits for the given workload's
// dataset. The same (dataset, seed, cfg) always yields identical splits,
// regardless of the model half of the workload.
func Generate(w workload.Workload, seed uint64, cfg Config) (train, test *Set, err error) {
	if cfg.TrainSize <= 0 || cfg.TestSize <= 0 {
		return nil, nil, fmt.Errorf("dataset: non-positive split sizes %+v", cfg)
	}
	// Seed depends only on the dataset so Type-II workloads (two models,
	// one dataset) genuinely share their corpus, as in the paper.
	r := xrand.New(seed ^ (uint64(w.Dataset) * 0x9e3779b97f4a7c15))
	var g generator
	switch w.Dataset {
	case workload.MNIST:
		g = newPrototypeGenerator(r, 10, 64, 2.4, 0.55)
	case workload.FashionMNIST:
		g = newPrototypeGenerator(r, 10, 64, 1.9, 0.70)
	case workload.News20:
		g = newBagOfWordsGenerator(r, 20, 128)
	case workload.Rodinia:
		g = newKernelStateGenerator(r, 4, 32)
	default:
		return nil, nil, fmt.Errorf("dataset: unknown dataset %v", w.Dataset)
	}
	train = g.split(w.Dataset.String()+"/train", cfg.TrainSize)
	test = g.split(w.Dataset.String()+"/test", cfg.TestSize)
	return train, test, nil
}

// generator produces labelled samples from a fixed class structure.
type generator interface {
	split(name string, n int) *Set
}

// prototypeGenerator draws samples as class prototype + isotropic noise:
// the image-classification stand-in. separation controls inter-prototype
// distance; noise controls intra-class spread. Lower separation/noise
// ratios make the task harder.
type prototypeGenerator struct {
	r          *xrand.Source
	classes    int
	dim        int
	noise      float64
	prototypes [][]float64
}

func newPrototypeGenerator(r *xrand.Source, classes, dim int, separation, noise float64) *prototypeGenerator {
	g := &prototypeGenerator{r: r, classes: classes, dim: dim, noise: noise}
	g.prototypes = make([][]float64, classes)
	for c := range g.prototypes {
		p := make([]float64, dim)
		for i := range p {
			p[i] = r.NormFloat64() * separation / math.Sqrt(float64(dim))
		}
		g.prototypes[c] = p
	}
	return g
}

func (g *prototypeGenerator) split(name string, n int) *Set {
	set := &Set{Name: name, Dim: g.dim, NumClasses: g.classes, Samples: make([]Sample, n)}
	for i := 0; i < n; i++ {
		label := i % g.classes // balanced classes
		f := make([]float64, g.dim)
		proto := g.prototypes[label]
		for d := range f {
			f[d] = proto[d] + g.r.NormFloat64()*g.noise
		}
		set.Samples[i] = Sample{Features: f, Label: label}
	}
	shuffle(g.r, set.Samples)
	return set
}

// bagOfWordsGenerator models News20-style text: each topic has a Zipf-ish
// vocabulary preference, documents are sparse non-negative count vectors
// (log1p-scaled). Topics share common stop-words, creating realistic
// overlap that rewards model capacity (embedding width).
type bagOfWordsGenerator struct {
	r        *xrand.Source
	classes  int
	vocab    int
	topicPri [][]float64
}

func newBagOfWordsGenerator(r *xrand.Source, classes, vocab int) *bagOfWordsGenerator {
	g := &bagOfWordsGenerator{r: r, classes: classes, vocab: vocab}
	g.topicPri = make([][]float64, classes)
	// First tenth of the vocabulary is shared "stop words".
	stop := vocab / 10
	for c := range g.topicPri {
		p := make([]float64, vocab)
		for v := 0; v < stop; v++ {
			p[v] = 1.0
		}
		// Each topic strongly prefers an exclusive band plus random extras.
		bandWidth := (vocab - stop) / classes
		start := stop + c*bandWidth
		for v := start; v < start+bandWidth && v < vocab; v++ {
			p[v] = 3.0
		}
		for k := 0; k < vocab/8; k++ {
			p[stop+g.r.Intn(vocab-stop)] += 0.8
		}
		g.topicPri[c] = p
	}
	return g
}

func (g *bagOfWordsGenerator) split(name string, n int) *Set {
	set := &Set{Name: name, Dim: g.vocab, NumClasses: g.classes, Samples: make([]Sample, n)}
	for i := 0; i < n; i++ {
		label := i % g.classes
		pri := g.topicPri[label]
		f := make([]float64, g.vocab)
		// Draw ~vocab/4 word occurrences weighted by topic priority.
		draws := g.vocab / 4
		for d := 0; d < draws; d++ {
			v := g.r.Intn(g.vocab)
			if g.r.Float64() < pri[v]/3.0 {
				f[v]++
			}
		}
		for v := range f {
			f[v] = math.Log1p(f[v])
		}
		set.Samples[i] = Sample{Features: f, Label: label}
	}
	shuffle(g.r, set.Samples)
	return set
}

// kernelStateGenerator models the Rodinia Type-III tasks: low-dimensional
// numeric states (grid residuals, frontier sizes, centroid spreads)
// labelled by operating regime. Moderate difficulty, tiny dimensionality.
type kernelStateGenerator struct {
	r       *xrand.Source
	classes int
	dim     int
	centers [][]float64
}

func newKernelStateGenerator(r *xrand.Source, classes, dim int) *kernelStateGenerator {
	g := &kernelStateGenerator{r: r, classes: classes, dim: dim}
	g.centers = make([][]float64, classes)
	for c := range g.centers {
		center := make([]float64, dim)
		for i := range center {
			center[i] = float64(c)*0.9 + r.NormFloat64()*0.4
		}
		g.centers[c] = center
	}
	return g
}

func (g *kernelStateGenerator) split(name string, n int) *Set {
	set := &Set{Name: name, Dim: g.dim, NumClasses: g.classes, Samples: make([]Sample, n)}
	for i := 0; i < n; i++ {
		label := i % g.classes
		f := make([]float64, g.dim)
		for d := range f {
			f[d] = g.centers[label][d] + g.r.NormFloat64()*0.6
		}
		set.Samples[i] = Sample{Features: f, Label: label}
	}
	shuffle(g.r, set.Samples)
	return set
}

func shuffle(r *xrand.Source, s []Sample) {
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
}

// Batches splits indices [0,n) into contiguous minibatches of size b after
// applying the permutation perm (pass nil for identity order). The final
// batch may be short. Prefer EachBatch on hot paths: Batches materialises
// the batch list, allocating its [][]int header (plus an identity index
// slice when perm is nil) on every call.
func Batches(n, b int, perm []int) [][]int {
	if b <= 0 || n <= 0 {
		return nil
	}
	idx := identity(n, perm)
	out := make([][]int, 0, (n+b-1)/b)
	EachBatch(n, b, idx, func(batch []int) error {
		out = append(out, batch)
		return nil
	})
	return out
}

// EachBatch invokes fn on each contiguous minibatch of perm — indices
// [0,n) permuted by perm (nil for identity order), split into batches of
// size b with the final batch possibly short. It is the canonical epoch
// iteration used by the trainer: one forward+backward per batch, as in
// synchronous minibatch SGD. Batches are subslices of perm, so with a
// non-nil perm the iteration allocates nothing; fn must not retain or
// mutate them. Iteration stops at the first error, which is returned.
func EachBatch(n, b int, perm []int, fn func(batch []int) error) error {
	if b <= 0 || n <= 0 {
		return nil
	}
	idx := identity(n, perm)
	for start := 0; start < n; start += b {
		end := start + b
		if end > n {
			end = n
		}
		if err := fn(idx[start:end]); err != nil {
			return err
		}
	}
	return nil
}

// identity returns perm, or a fresh identity permutation of [0,n) when
// perm is nil.
func identity(n int, perm []int) []int {
	if perm != nil {
		return perm
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}
