// Package service is the multi-tenant tuning service behind the pipetuned
// daemon: a job registry with explicit lifecycle states, bounded
// concurrent execution of jobs over one shared pipetune.System, per-job
// progress streams, and a single ground-truth database shared across all
// jobs and persisted atomically to disk.
//
// This is the paper's deployment model (§5, §7.1.2): PipeTune is cluster
// middleware that tenants submit tuning jobs to, and the ground-truth
// similarity database accumulates across jobs and tenants — a job
// submitted today skips probing because of a job another tenant ran
// yesterday.
//
// Lifecycle: Submit validates the request and enqueues the job (queued);
// a worker picks it up (running); the run ends in done, failed or
// cancelled. Cancel aborts a queued job immediately and interrupts a
// running one at its next trial boundary via context cancellation.
//
// Dispatch order is policy-driven (internal/admission): the default
// "fifo" policy reproduces the legacy single-queue submission-order
// schedule exactly; "fair" runs deficit round robin over per-tenant
// queues weighted by Config.TenantWeights; "sjf" dispatches the job with
// the smallest cost-model estimate first, with a starvation guard. Job
// costs come from the cost model's trial-duration prediction.
package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"pipetune"
	"pipetune/api"
	"pipetune/internal/exec"
	"pipetune/internal/gt"
	"pipetune/internal/metrics"
	"pipetune/internal/trainer"
	"pipetune/internal/tsdb"
	"pipetune/internal/tune"
)

// Errors surfaced to the HTTP layer.
var (
	ErrNotFound   = errors.New("service: job not found")
	ErrTerminal   = errors.New("service: job already finished")
	ErrQueueFull  = errors.New("service: job queue full")
	ErrShutdown   = errors.New("service: shutting down")
	ErrBadRequest = errors.New("service: invalid request")
)

// Config wires a Service.
type Config struct {
	// System executes the jobs; all jobs share its cluster, trainer and
	// ground-truth database. Required.
	System *pipetune.System
	// Workers bounds concurrently running jobs (default 2).
	Workers int
	// QueueDepth bounds jobs waiting in queued state (default 64).
	QueueDepth int
	// GTPath, when non-empty, persists the shared ground-truth database:
	// restored at New (snapshot + write-ahead-log replay; legacy JSON
	// snapshots load unchanged), logged append-only as jobs feed it, and
	// compacted into a fresh snapshot after every job that grew it, at
	// SnapshotInterval ticks, when the WAL passes CompactEvery records,
	// and again at Shutdown.
	GTPath string
	// CompactEvery folds the write-ahead log into a snapshot once it
	// holds this many records (default 256; <= 0 uses the default).
	CompactEvery int
	// SnapshotInterval, when > 0, also compacts on a periodic ticker —
	// bounding WAL replay time even while long jobs are mid-flight.
	SnapshotInterval time.Duration
	// MaxJobsRetained bounds the registry: when the job count exceeds it,
	// the oldest terminal jobs (status, result and event log) are evicted
	// so a long-running daemon's memory stays flat. Queued and running
	// jobs are never evicted. Default 1024.
	MaxJobsRetained int
	// JobPolicy selects the dispatch order across queued jobs: "fifo"
	// (default — the legacy submission-order schedule, exactly), "fair"
	// (weighted deficit round robin across tenants) or "sjf" (shortest
	// predicted job first, starvation-guarded).
	JobPolicy string
	// TenantWeights maps tenant name to fair-share weight (default 1).
	// Only the "fair" policy consults it.
	TenantWeights map[string]int
	// SubscriberBuffer is each event subscriber's channel depth; a
	// subscriber that falls further behind is dropped with a terminal
	// "lagged" event (default 256).
	SubscriberBuffer int
	// Remote, when non-nil, is the remote execution plane the daemon
	// fronts: the service wires it into the System's tuner, mounts the
	// worker-facing work API next to the job API, reports fleet state in
	// /healthz, and drains leases on shutdown. Nil keeps the local
	// in-process execution backend.
	Remote *exec.Remote
	// DrainTimeout bounds the shutdown wait for in-flight remote trials;
	// leases still outstanding at the deadline fail their jobs rather
	// than vanish (default 10s). Ignored on the local backend.
	DrainTimeout time.Duration
	// Metrics is the registry every layer publishes into. Nil adopts the
	// Remote's registry when one is configured (so execution-plane series
	// land on the same /metrics page) and otherwise creates a private
	// one. Ignored when DisableMetrics is set.
	Metrics *metrics.Registry
	// MetricsDB, when non-nil, receives a periodic mirror of every
	// registry series as tsdb points (measurement = family name, tags =
	// labels) every MetricsMirrorInterval (default 10s). The DB stays
	// caller-owned: the service only writes and trims it.
	MetricsDB *tsdb.DB
	// MetricsMirrorInterval is the mirror cadence (default 10s).
	MetricsMirrorInterval time.Duration
	// DisableMetrics turns the observability plane off: no instruments
	// register, hot paths run their nil-receiver no-op branches, and the
	// /metrics endpoints are not mounted. /healthz then reports zero
	// queue/tenant statistics — health is derived from the registry, not
	// from a parallel set of counters.
	DisableMetrics bool
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

// subscriber is one live event stream over a job.
type subscriber struct {
	ch chan api.Event
	// lagged is set (under Service.mu, before ch closes) when the service
	// dropped this subscriber for falling behind — the stream consumer
	// must then emit api.EventLagged instead of ending silently.
	lagged bool
}

// job is the registry's unit: request, state machine, result, event log.
type job struct {
	id        string
	req       api.JobRequest
	spec      tune.JobSpec
	mode      string
	tenant    string  // resolved accounting principal ("default" if unset)
	predicted float64 // cost model's per-trial duration estimate (dispatch cost)
	state     api.JobState
	submitted time.Time
	started   time.Time
	finished  time.Time
	errMsg    string
	result    *tune.JobResult
	trials    int
	cancel    context.CancelFunc // non-nil while running
	events    []api.Event        // replay log for late subscribers
	subs      map[*subscriber]struct{}
}

// Service is the job registry and executor.
type Service struct {
	cfg      Config
	gt       gt.Store       // the store every job reads and feeds
	persist  *gt.Persistent // non-nil when GTPath is set; == gt then
	met      *svcMetrics    // nil-handle instruments when metrics are disabled
	mirror   *metrics.Mirror
	wg       sync.WaitGroup
	baseCtx  context.Context
	stop     context.CancelFunc
	shutdown sync.Once

	mu     sync.Mutex
	disp   *dispatcher // tenant-aware job queue; all methods under mu
	jobs   map[string]*job
	order  []string // submission order, for stable listing
	nextID int
	paused bool
	closed bool
}

// Pause holds dispatch: submissions are still accepted and queued, but no
// new job starts until Resume. Running jobs are unaffected. Operators use
// it to drain workers before maintenance; tests use it to form a
// deterministic backlog.
func (s *Service) Pause() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.paused = true
}

// Resume releases a Pause; queued jobs dispatch in policy order.
func (s *Service) Resume() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.paused = false
	s.disp.cond.Broadcast()
}

// New builds the service, restores the ground-truth snapshot from
// Config.GTPath if one exists, and starts the worker pool.
func New(cfg Config) (*Service, error) {
	if cfg.System == nil {
		return nil, errors.New("service: Config.System is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxJobsRetained <= 0 {
		cfg.MaxJobsRetained = 1024
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.CompactEvery <= 0 {
		cfg.CompactEvery = 256
	}
	if cfg.SubscriberBuffer <= 0 {
		cfg.SubscriberBuffer = 256
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.MetricsMirrorInterval <= 0 {
		cfg.MetricsMirrorInterval = 10 * time.Second
	}
	if cfg.DisableMetrics {
		cfg.Metrics = nil
	} else if cfg.Metrics == nil {
		if cfg.Remote != nil {
			// Share the execution plane's registry so fleet series and
			// service series land on one /metrics page.
			cfg.Metrics = cfg.Remote.MetricsRegistry()
		} else {
			cfg.Metrics = metrics.NewRegistry()
		}
	}
	if cfg.Remote != nil {
		// Every job's trial bodies now compute on the worker fleet; the
		// searcher, scheduler and ground-truth middleware stay in-process.
		cfg.System.SetExecBackend(cfg.Remote)
		// Surface the simulated cluster's composition on the fleet status
		// (GET /v1/fleet and Health.Fleet). Legacy single-class systems
		// report nothing, keeping their fleet bodies unchanged.
		if classes := cfg.System.ClusterClasses(); len(classes) > 0 {
			spot, onDemand := cfg.System.SpotCounts()
			cfg.Remote.SetClusterStatus(classes, spot, onDemand)
		}
	}
	s := &Service{
		cfg:  cfg,
		gt:   cfg.System.GroundTruth(),
		met:  newSvcMetrics(cfg.Metrics),
		jobs: make(map[string]*job),
	}
	disp, err := newDispatcher(&s.mu, cfg, s.met)
	if err != nil {
		return nil, err
	}
	s.disp = disp
	s.baseCtx, s.stop = context.WithCancel(context.Background())
	if cfg.GTPath != "" {
		ps, err := gt.OpenPersistent(cfg.GTPath, s.gt, gt.PersistOptions{
			CompactEvery: cfg.CompactEvery,
			Logf:         cfg.Logf,
		})
		if err != nil {
			return nil, err
		}
		// Every job's Add must flow through the WAL, so the persistent
		// wrapper becomes the System's store, not just the service's.
		cfg.System.SetGroundTruthStore(ps)
		s.persist = ps
		s.gt = ps
		if n := ps.Len(); n > 0 {
			cfg.Logf("service: restored ground truth from %s (%d entries)", cfg.GTPath, n)
		}
		if cfg.SnapshotInterval > 0 {
			s.wg.Add(1)
			go s.snapshotLoop(cfg.SnapshotInterval)
		}
	}
	if cfg.Metrics != nil {
		// The ground-truth store (and, through the persistent wrapper, its
		// WAL) publishes into the same registry.
		if in, ok := s.gt.(gt.Instrumentable); ok {
			in.InstrumentMetrics(cfg.Metrics)
		}
		// The trainer substrate publishes too: tsdb write errors and,
		// when the trial prefix cache is enabled, its hit/miss/residency
		// families.
		cfg.System.InstrumentTrainer(cfg.Metrics)
		if cfg.MetricsDB != nil {
			s.mirror = &metrics.Mirror{Registry: cfg.Metrics, DB: cfg.MetricsDB, Interval: cfg.MetricsMirrorInterval}
			s.mirror.Start()
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// snapshotLoop compacts the WAL on a timer so recovery time stays bounded
// even while long jobs run. Compaction no-ops when nothing changed.
func (s *Service) snapshotLoop(every time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			s.snapshotGT()
		}
	}
}

// buildSpec translates an API request into a library JobSpec, mirroring
// exactly what a library caller gets from System.JobSpec — the invariant
// behind the HTTP-versus-library determinism guarantee.
func (s *Service) buildSpec(req api.JobRequest) (tune.JobSpec, string, error) {
	w, err := api.ParseWorkload(req.Workload)
	if err != nil {
		return tune.JobSpec{}, "", fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	mode := req.Mode
	if mode == "" {
		mode = api.ModePipeTune
	}
	spec := s.cfg.System.JobSpec(w)
	switch mode {
	case api.ModePipeTune, api.ModeTuneV1:
		// JobSpec defaults are V1; PipeTune layers the middleware on top.
	case api.ModeTuneV2:
		spec.Mode = tune.ModeV2
		spec.Objective = tune.MaximizeAccuracyPerTime
	default:
		return tune.JobSpec{}, "", fmt.Errorf("%w: unknown mode %q", ErrBadRequest, req.Mode)
	}
	switch req.Objective {
	case "":
	case api.ObjectiveAccuracy:
		spec.Objective = tune.MaximizeAccuracy
	case api.ObjectiveAccuracyPerTime:
		spec.Objective = tune.MaximizeAccuracyPerTime
	default:
		return tune.JobSpec{}, "", fmt.Errorf("%w: unknown objective %q", ErrBadRequest, req.Objective)
	}
	if req.Seed != 0 {
		spec.Seed = req.Seed
	}
	if req.Epochs < 0 || req.MaxParallel < 0 {
		return tune.JobSpec{}, "", fmt.Errorf("%w: negative epochs/maxParallel", ErrBadRequest)
	}
	if req.Epochs > 0 {
		spec.BaseHyper.Epochs = req.Epochs
	}
	if req.MaxParallel > 0 {
		spec.MaxParallel = req.MaxParallel
	}
	return spec, mode, nil
}

// DefaultTenant is the accounting principal of requests that name none.
const DefaultTenant = "default"

// Submit validates and enqueues a job, returning its queued status.
func (s *Service) Submit(req api.JobRequest) (api.JobStatus, error) {
	spec, mode, err := s.buildSpec(req)
	if err != nil {
		return api.JobStatus{}, err
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = DefaultTenant
	}
	// The cost model prices the job for sjf/fair dispatch (and the status
	// surface). A workload it cannot price dispatches at unit cost.
	predicted, err := s.cfg.System.PredictTrialDuration(spec.Workload, spec.BaseHyper, spec.BaseSys)
	if err != nil {
		predicted = 0
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return api.JobStatus{}, ErrShutdown
	}
	// Admission is decided before the ID is allocated: a queue-full
	// rejection must not burn a job-%06d sequence number, or the accepted
	// sequence would grow gaps under load spikes.
	if s.disp.q.Full() {
		s.met.rejected.Inc()
		s.mu.Unlock()
		return api.JobStatus{}, ErrQueueFull
	}
	s.nextID++
	jb := &job{
		id:        fmt.Sprintf("job-%06d", s.nextID),
		req:       req,
		spec:      spec,
		mode:      mode,
		tenant:    tenant,
		predicted: predicted,
		state:     api.StateQueued,
		submitted: time.Now().UTC(),
		subs:      make(map[*subscriber]struct{}),
	}
	if err := s.disp.pushLocked(jb); err != nil {
		s.nextID-- // unreachable (capacity held under mu), but keep the sequence honest
		s.mu.Unlock()
		return api.JobStatus{}, err
	}
	s.jobs[jb.id] = jb
	s.order = append(s.order, jb.id)
	st := s.statusLocked(jb, false)
	s.mu.Unlock()
	s.cfg.Logf("service: %s queued (%s %s tenant=%s)", jb.id, mode, req.Workload, tenant)
	return st, nil
}

// worker dispatches jobs in policy order until Shutdown.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for !s.closed && (s.paused || s.disp.q.Len() == 0) {
			s.disp.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		next, _ := s.disp.q.Pop()
		jb := s.jobs[next.ID]
		s.mu.Unlock()
		s.runJob(jb)
	}
}

// runJob executes one job through the shared System, driving the state
// machine and the event stream.
func (s *Service) runJob(jb *job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	s.mu.Lock()
	if jb.state != api.StateQueued { // cancelled while waiting
		s.mu.Unlock()
		cancel()
		return
	}
	jb.state = api.StateRunning
	jb.started = time.Now().UTC()
	jb.cancel = cancel
	s.disp.onDispatchLocked(jb.tenant, jb.started.Sub(jb.submitted))
	spec := jb.spec
	s.mu.Unlock()

	spec.OnTrialDone = func(trialID int, res *trainer.Result) {
		s.publishTrial(jb, trialID, res)
	}
	var (
		res *tune.JobResult
		err error
	)
	if jb.mode == api.ModePipeTune {
		res, err = s.cfg.System.RunPipeTuneCtx(ctx, spec)
	} else {
		res, err = s.cfg.System.RunBaselineCtx(ctx, spec)
	}
	cancel()
	// Snapshot before the job turns terminal: a client that observes
	// "done" may rely on the job's ground-truth contributions being
	// durable already.
	s.snapshotGT()
	if err == nil && res != nil {
		s.recordSched(res)
	}

	s.mu.Lock()
	jb.cancel = nil
	switch {
	case err == nil:
		jb.result = res
		s.finishLocked(jb, api.StateDone, "")
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		s.finishLocked(jb, api.StateCancelled, "")
	default:
		s.finishLocked(jb, api.StateFailed, err.Error())
	}
	state := jb.state
	s.mu.Unlock()

	s.cfg.Logf("service: %s %s", jb.id, state)
}

// recordSched publishes a finished job's placement and spot-recovery
// outcomes: one sched_placements_total increment per trial (labelled by
// hosting class and placement policy), plus the job's revocation and
// salvaged-epoch totals. Runs outside s.mu — it only touches the
// lock-free metrics instruments and the (now immutable) result.
func (s *Service) recordSched(res *tune.JobResult) {
	policy := s.cfg.System.PlacementPolicyName()
	for i := range res.Trials {
		t := &res.Trials[i]
		class := t.Class
		if class == "" {
			class = "default" // legacy single-class cluster
		}
		s.met.placements.With(class, policy).Inc()
		if t.Revocations > 0 {
			s.met.revocations.Add(uint64(t.Revocations))
		}
		if t.SalvagedEpochs > 0 {
			s.met.salvaged.Add(uint64(t.SalvagedEpochs))
		}
	}
}

// snapshotGT compacts the write-ahead log into a snapshot if anything
// changed since the last one. The persistence layer serialises concurrent
// compactions and skips no-ops internally. Failures are logged, never
// fatal: a missed snapshot degrades recovery time, not correctness — the
// WAL already holds every entry durably.
func (s *Service) snapshotGT() {
	if s.persist == nil {
		return
	}
	if err := s.persist.Compact(); err != nil {
		s.cfg.Logf("service: ground-truth compaction failed: %v", err)
	}
}

// publishTrial appends a trial event to the job's log and fans it out.
func (s *Service) publishTrial(jb *job, trialID int, res *trainer.Result) {
	ev := api.Event{
		Type:  api.EventTrial,
		JobID: jb.id,
		Trial: &api.TrialEvent{
			TrialID:  trialID,
			Accuracy: res.Accuracy,
			Duration: res.Duration,
			EnergyJ:  res.EnergyJ,
			Epochs:   len(res.Epochs),
		},
	}
	s.mu.Lock()
	jb.trials++
	s.met.trials.Inc()
	s.appendEventLocked(jb, ev)
	s.mu.Unlock()
}

// finishLocked atomically moves a job to a terminal state: the state
// flip, the terminal event append and the stream closures happen in one
// critical section, so a Subscribe can never observe a terminal job whose
// replay lacks the terminal event. Callers hold s.mu.
func (s *Service) finishLocked(jb *job, state api.JobState, errMsg string) {
	if jb.state == api.StateQueued {
		// A job cancelled before dispatch must never pop (the worker's
		// state check is only a backstop for the pop-vs-cancel race).
		s.disp.q.Remove(jb.id)
	}
	s.disp.onFinishLocked(jb.tenant, jb.state, state)
	jb.state = state
	jb.errMsg = errMsg
	jb.finished = time.Now().UTC()
	s.appendEventLocked(jb, api.Event{Type: api.EventState, JobID: jb.id, State: state, Error: errMsg})
	for sub := range jb.subs {
		close(sub.ch)
		delete(jb.subs, sub)
		s.met.sseSubs.Add(-1)
	}
	s.pruneLocked()
}

// appendEventLocked sequences the event into the replay log and delivers
// it to live subscribers. A subscriber too slow to drain its buffer is
// dropped — marked lagged *before* its channel closes, so the stream
// layer emits a terminal api.EventLagged frame instead of ending the
// stream indistinguishably from a normal job completion. The subscriber
// re-subscribes and replays to learn the true outcome. Callers hold s.mu.
func (s *Service) appendEventLocked(jb *job, ev api.Event) {
	ev.Seq = len(jb.events) + 1
	jb.events = append(jb.events, ev)
	s.met.sseEvents.Inc()
	for sub := range jb.subs {
		select {
		case sub.ch <- ev:
		default:
			sub.lagged = true
			close(sub.ch)
			delete(jb.subs, sub)
			s.met.sseLagged.Inc()
			s.met.sseSubs.Add(-1)
		}
	}
}

// pruneLocked evicts the oldest terminal jobs once the registry exceeds
// MaxJobsRetained, keeping a long-running daemon's memory flat. Callers
// hold s.mu.
func (s *Service) pruneLocked() {
	if len(s.jobs) <= s.cfg.MaxJobsRetained {
		return
	}
	kept := s.order[:0]
	for i, id := range s.order {
		jb := s.jobs[id]
		if len(s.jobs) > s.cfg.MaxJobsRetained && jb.state.Terminal() {
			delete(s.jobs, id)
			continue
		}
		kept = append(kept, id)
		if len(s.jobs) <= s.cfg.MaxJobsRetained {
			kept = append(kept, s.order[i+1:]...)
			break
		}
	}
	s.order = kept
}

// Subscription is one live event stream over a job: the replay of
// everything already emitted plus a channel that closes after the
// terminal state event — or early, when Cancel is called or the service
// dropped the subscriber for lagging (Lagged then reports true and the
// consumer must surface api.EventLagged and re-subscribe for the truth).
type Subscription struct {
	Replay []api.Event
	Events <-chan api.Event

	s   *Service
	jb  *job
	sub *subscriber
}

// Cancel detaches the subscription; the Events channel closes. Idempotent
// and safe after the stream already ended.
func (su *Subscription) Cancel() {
	su.s.mu.Lock()
	defer su.s.mu.Unlock()
	if _, live := su.jb.subs[su.sub]; live {
		close(su.sub.ch)
		delete(su.jb.subs, su.sub)
		su.s.met.sseSubs.Add(-1)
	}
}

// Lagged reports whether the service dropped this subscription for
// falling behind. Meaningful once Events has closed.
func (su *Subscription) Lagged() bool {
	su.s.mu.Lock()
	defer su.s.mu.Unlock()
	return su.sub.lagged
}

// Subscribe opens an event stream over a job. For already-finished jobs
// the channel arrives closed and the replay is complete.
func (s *Service) Subscribe(id string) (*Subscription, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	jb, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	sub := &subscriber{ch: make(chan api.Event, s.cfg.SubscriberBuffer)}
	su := &Subscription{
		Replay: append([]api.Event(nil), jb.events...),
		Events: sub.ch,
		s:      s,
		jb:     jb,
		sub:    sub,
	}
	if jb.state.Terminal() {
		close(sub.ch)
		return su, nil
	}
	jb.subs[sub] = struct{}{}
	s.met.sseSubs.Add(1)
	return su, nil
}

// statusLocked renders a job's API view. withResult controls whether a
// done job's result is attached (as a deep copy — see below): single-job
// surfaces carry it, the list endpoint stays a summary so listing 1024
// retained jobs does not copy every trial history under s.mu. Callers
// hold s.mu.
func (s *Service) statusLocked(jb *job, withResult bool) api.JobStatus {
	st := api.JobStatus{
		ID:                jb.id,
		State:             jb.state,
		Tenant:            jb.tenant,
		Priority:          jb.req.Priority,
		Request:           jb.req,
		Submitted:         jb.submitted,
		TrialsDone:        jb.trials,
		Error:             jb.errMsg,
		PredictedDuration: jb.predicted,
	}
	if jb.state == api.StateQueued {
		if pos := s.disp.q.Position(jb.id); pos >= 0 {
			st.QueuePosition = &pos
		}
	}
	if !jb.started.IsZero() {
		t := jb.started
		st.Started = &t
	}
	if !jb.finished.IsZero() {
		t := jb.finished
		st.Finished = &t
	}
	if withResult && jb.state == api.StateDone {
		// Deep copy: the registry keeps mutating-capable ownership of the
		// result (and hands it to every caller), so sharing the pointer
		// would let one API consumer corrupt what all later ones read.
		st.Result = jb.result.Clone()
	}
	return st
}

// Job returns one job's status (with result once done).
func (s *Service) Job(id string) (api.JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	jb, ok := s.jobs[id]
	if !ok {
		return api.JobStatus{}, ErrNotFound
	}
	return s.statusLocked(jb, true), nil
}

// Jobs lists every job in submission order.
func (s *Service) Jobs() []api.JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]api.JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.jobs[id], false))
	}
	return out
}

// Cancel aborts a job: queued jobs transition to cancelled immediately,
// running jobs are interrupted at their next trial boundary (the status
// returned may therefore still read "running"; poll or subscribe for the
// terminal event). Cancelling a finished job returns ErrTerminal.
func (s *Service) Cancel(id string) (api.JobStatus, error) {
	s.mu.Lock()
	jb, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return api.JobStatus{}, ErrNotFound
	}
	switch {
	case jb.state.Terminal():
		st := s.statusLocked(jb, true)
		s.mu.Unlock()
		return st, ErrTerminal
	case jb.state == api.StateQueued:
		s.finishLocked(jb, api.StateCancelled, "")
		st := s.statusLocked(jb, true)
		s.mu.Unlock()
		s.cfg.Logf("service: %s cancelled while queued", id)
		return st, nil
	default: // running
		if jb.cancel != nil {
			jb.cancel()
		}
		st := s.statusLocked(jb, true)
		s.mu.Unlock()
		return st, nil
	}
}

// GroundTruthStats reports the shared similarity database.
func (s *Service) GroundTruthStats() api.GroundTruthStats {
	info := s.gt.Info()
	return api.GroundTruthStats{
		Entries:    info.Entries,
		Hits:       info.Hits,
		Misses:     info.Misses,
		Rev:        info.Rev,
		ModelRev:   info.ModelRev,
		Shards:     info.Shards,
		Store:      info.Store,
		WALRecords: info.WALRecords,
		Similarity: info.Similarity,
	}
}

// ExportGroundTruth streams the full database in the snapshot wire format
// (legacy-compatible: the export loads back via ImportGroundTruth, the
// -gt flag, or a pre-refactor deployment).
func (s *Service) ExportGroundTruth(w io.Writer) error {
	return s.gt.Save(w)
}

// ImportGroundTruth merges entries into the shared database (it does not
// replace existing knowledge) and returns how many were added. Invalid
// entries reject the whole batch (HTTP 400) before anything is applied;
// a store failure mid-apply is a server-side error (HTTP 500) reported
// with the count that did land — the applied prefix stays live.
func (s *Service) ImportGroundTruth(entries []gt.Entry) (int, error) {
	for i, e := range entries {
		if len(e.Features) == 0 {
			return 0, fmt.Errorf("%w: entry %d has no features", ErrBadRequest, i)
		}
		if err := e.BestSys.Validate(); err != nil {
			return 0, fmt.Errorf("%w: entry %d: %v", ErrBadRequest, i, err)
		}
	}
	added, err := s.addAll(entries)
	if err != nil {
		return added, fmt.Errorf("service: import applied %d/%d entries: %v", added, len(entries), err)
	}
	s.snapshotGT()
	return added, nil
}

// addAll uses the store's bulk path when it has one (the persistent
// wrapper batches the WAL append into a single write+fsync) and falls
// back to entry-at-a-time adds otherwise.
func (s *Service) addAll(entries []gt.Entry) (int, error) {
	if ba, ok := s.gt.(interface {
		AddAll(entries []gt.Entry) (int, error)
	}); ok {
		return ba.AddAll(entries)
	}
	added := 0
	for _, e := range entries {
		if err := s.gt.Add(e); err != nil {
			return added, err
		}
		added++
	}
	return added, nil
}

// Health reports queue depths, the dispatch policy and per-tenant
// wait-time statistics for the liveness endpoint. Every number is read
// back from the metrics registry (the tenant gauge rows, the wait
// sketches, and — via Fleet — the execution plane's lease counters), so
// /healthz and /metrics can never disagree about the same quantity.
func (s *Service) Health() api.Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	queued, running := s.disp.countsLocked()
	h := api.Health{
		Status:      "ok",
		Queued:      queued,
		Running:     running,
		Workers:     s.cfg.Workers,
		JobPolicy:   string(s.disp.q.Policy()),
		ExecBackend: "local",
		Tenants:     s.disp.healthLocked(),
	}
	if s.cfg.Remote != nil {
		fs := s.cfg.Remote.Fleet()
		h.ExecBackend = fs.Backend
		h.Fleet = &fs
	}
	if classes := s.cfg.System.ClusterClasses(); len(classes) > 0 {
		spot, onDemand := s.cfg.System.SpotCounts()
		h.Cluster = &api.ClusterStatus{
			Nodes:         spot + onDemand,
			SpotNodes:     spot,
			OnDemandNodes: onDemand,
			Classes:       classes,
		}
	}
	return h
}

// MetricsRegistry exposes the registry the service publishes into; nil
// when metrics are disabled.
func (s *Service) MetricsRegistry() *metrics.Registry { return s.cfg.Metrics }

// Shutdown stops the service: no new submissions, the execution plane
// drains, running jobs are cancelled at their next trial boundary,
// workers drain, and the shared ground truth takes its final snapshot.
// Knowledge that cancelled jobs already contributed to the database
// survives in that snapshot.
//
// On the remote backend the drain is graceful and bounded: lease
// issuance stops immediately, in-flight trials on the worker fleet get
// up to Config.DrainTimeout to commit, and whatever is still outstanding
// at the deadline fails its job — an operator sees "failed: execution
// plane draining", never a silently lost job.
//
// Idempotent and blocking: every caller returns only once the shutdown —
// whoever initiated it — has fully completed (sync.Once.Do blocks
// latecomers), which lets it run both as the HTTP server's pre-shutdown
// hook (httpserve's preShutdown — BEFORE the listener closes, so remote
// workers can still commit; http.Server.RegisterOnShutdown would run
// too late) and again from the daemon's main goroutine.
func (s *Service) Shutdown() {
	s.shutdown.Do(func() {
		s.mu.Lock()
		s.closed = true
		s.disp.cond.Broadcast() // wake idle workers so they observe closed
		s.mu.Unlock()

		if s.cfg.Remote != nil {
			// Drain before cancelling: trials already on the fleet are
			// paid for — give them the deadline to commit, then fail the
			// rest. Jobs blocked on a failed trial finish immediately.
			s.cfg.Remote.Drain(s.cfg.DrainTimeout)
		}
		s.stop()        // interrupt running jobs and the snapshot ticker
		s.wg.Wait()     // workers finish their current (now cancelled) jobs
		s.drainQueued() // jobs still queued become cancelled
		if s.mirror != nil {
			s.mirror.Stop() // final sample lands the terminal state in the DB
		}
		if s.cfg.Remote != nil {
			s.cfg.Remote.Close() // stop the reaper; late worker calls get errors
		}
		if s.persist != nil {
			// Final compaction + WAL close. Knowledge cancelled jobs
			// already contributed survives in the snapshot.
			if err := s.persist.Close(); err != nil {
				s.cfg.Logf("service: final ground-truth compaction failed: %v", err)
			}
		}
	})
}

// drainQueued marks never-started jobs cancelled after the workers exit.
func (s *Service) drainQueued() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, jb := range s.jobs {
		if jb.state == api.StateQueued {
			s.finishLocked(jb, api.StateCancelled, "")
		}
	}
}
