package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"pipetune"
	"pipetune/api"
	"pipetune/client"
	"pipetune/internal/gt"
)

// waitAll waits every job to a terminal state and returns the final
// statuses in the given order.
func waitAll(t *testing.T, cl *client.Client, ids []string) []api.JobStatus {
	t.Helper()
	out := make([]api.JobStatus, len(ids))
	for i, id := range ids {
		st, err := cl.Wait(context.Background(), id, 10*time.Millisecond)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		out[i] = st
	}
	return out
}

// TestPauseResume pins the dispatch-hold control the deterministic
// scheduling tests below rely on: a paused service accepts and queues
// submissions but starts nothing until Resume.
func TestPauseResume(t *testing.T) {
	svc, cl := newServer(t, Config{Workers: 2})
	ctx := context.Background()
	svc.Pause()
	st, err := cl.Submit(ctx, smallReq("lenet/mnist"))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	cur, err := cl.Job(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cur.State != api.StateQueued {
		t.Fatalf("job dispatched while paused: %v", cur.State)
	}
	svc.Resume()
	final, err := cl.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil || final.State != api.StateDone {
		t.Fatalf("after resume: %v state %v", err, final.State)
	}
}

// TestFIFOParitySchedule is the dispatcher's behaviour-preservation
// guarantee: under the default configuration (job policy fifo, no
// tenants, no priorities) the new dispatcher reproduces the legacy
// single-channel schedule exactly — IDs allocate sequentially and jobs
// start in submission order, bit-identically to what `chan *job` did.
func TestFIFOParitySchedule(t *testing.T) {
	_, cl := newServer(t, Config{Workers: 1})
	ctx := context.Background()

	const n = 6
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		st, err := cl.Submit(ctx, smallReq("lenet/mnist"))
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("job-%06d", i+1); st.ID != want {
			t.Fatalf("submission %d got ID %s, want %s", i, st.ID, want)
		}
		ids[i] = st.ID
	}
	finals := waitAll(t, cl, ids)
	for i, st := range finals {
		if st.State != api.StateDone {
			t.Fatalf("job %s ended %v", st.ID, st.State)
		}
		if st.Started == nil {
			t.Fatalf("job %s has no start time", st.ID)
		}
		if i > 0 && finals[i].Started.Before(*finals[i-1].Started) {
			t.Fatalf("job %s started before its predecessor %s: FIFO parity broken",
				finals[i].ID, finals[i-1].ID)
		}
	}
}

// TestWeightedFairDispatch drives the live service under the fair policy:
// one worker, a saturated backlog from two tenants with weights 2:1, and
// the dispatch order (observed via start times) must give the weight-2
// tenant ~2x the jobs in any aligned window.
func TestWeightedFairDispatch(t *testing.T) {
	svc, cl := newServer(t, Config{
		Workers:       1,
		JobPolicy:     pipetune.JobPolicyFair,
		TenantWeights: map[string]int{"gold": 2, "free": 1},
		Logf:          t.Logf,
	})
	ctx := context.Background()

	// Pause dispatch while the backlog forms: every scheduling decision
	// below is then made over a complete, saturated queue — deterministic
	// DRR, no submission/completion races.
	svc.Pause()
	var ids []string
	for i := 0; i < 8; i++ {
		for _, tenant := range []string{"gold", "free"} {
			req := smallReq("lenet/mnist")
			req.Epochs = 1
			req.Tenant = tenant
			st, err := cl.Submit(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, st.ID)
		}
	}
	svc.Resume()
	backlog := waitAll(t, cl, ids)
	sort.Slice(backlog, func(i, j int) bool { return backlog[i].Started.Before(*backlog[j].Started) })
	gold := 0
	for _, st := range backlog[:9] {
		if st.Tenant == "gold" {
			gold++
		}
	}
	// DRR with equal costs: exactly 6 of the first 9 dispatches (one
	// quantum of slack either way).
	if gold < 5 || gold > 7 {
		order := make([]string, 9)
		for i, st := range backlog[:9] {
			order[i] = st.Tenant
		}
		t.Fatalf("gold dispatched %d of first 9 (want ~6); order %v", gold, order)
	}

	// The health surface reports the policy and per-tenant stats.
	h := svc.Health()
	if h.JobPolicy != pipetune.JobPolicyFair {
		t.Fatalf("health jobPolicy = %q", h.JobPolicy)
	}
	byTenant := map[string]api.TenantHealth{}
	for _, th := range h.Tenants {
		byTenant[th.Tenant] = th
	}
	g, ok := byTenant["gold"]
	if !ok {
		t.Fatalf("health missing gold tenant: %+v", h.Tenants)
	}
	if g.Weight != 2 || g.Finished != 8 {
		t.Fatalf("gold health = %+v, want weight 2, finished 8", g)
	}
	f := byTenant["free"]
	if f.MeanWaitSeconds <= 0 || f.MaxWaitSeconds < f.MeanWaitSeconds {
		t.Fatalf("free wait stats degenerate: %+v", f)
	}
}

// TestQueueFullDoesNotBurnIDs is the regression test for the job-ID burn:
// a queue-full rejection must not advance the job-%06d sequence, so the
// next accepted job gets the very next ID.
func TestQueueFullDoesNotBurnIDs(t *testing.T) {
	svc, cl := newServer(t, Config{Workers: 1, QueueDepth: 1})
	ctx := context.Background()

	svc.Pause() // keep j1 in the queue so it occupies the single slot
	j1, err := cl.Submit(ctx, smallReq("lenet/mnist"))
	if err != nil {
		t.Fatal(err)
	}
	if j1.ID != "job-000001" {
		t.Fatalf("first job ID %s", j1.ID)
	}
	// j1 is the queued head: the status surface must say so and carry the
	// cost model's estimate.
	if j1.State != api.StateQueued || j1.QueuePosition == nil || *j1.QueuePosition != 0 {
		t.Fatalf("queued j1 status = %+v, want queuePosition 0", j1)
	}
	if j1.PredictedDuration <= 0 {
		t.Fatalf("queued j1 has no predicted duration: %+v", j1)
	}
	if j1.Tenant != DefaultTenant {
		t.Fatalf("tenant-less submission resolved to %q", j1.Tenant)
	}

	// Queue full: these rejections must leave no gap in the sequence.
	for i := 0; i < 3; i++ {
		if _, err := cl.Submit(ctx, smallReq("lenet/mnist")); err == nil {
			t.Fatal("submit into a full queue succeeded")
		} else if apiErr := new(api.Error); !errors.As(err, &apiErr) || apiErr.StatusCode != 503 {
			t.Fatalf("queue-full error = %v, want HTTP 503", err)
		}
	}
	// Free the slot and submit again: the ID continues from 000001.
	if _, err := cl.Cancel(ctx, j1.ID); err != nil {
		t.Fatal(err)
	}
	j2, err := cl.Submit(ctx, smallReq("lenet/mnist"))
	if err != nil {
		t.Fatal(err)
	}
	if j2.ID != "job-000002" {
		t.Fatalf("post-rejection job ID %s, want job-000002 (rejections burned IDs)", j2.ID)
	}
	svc.Resume()
	if final := waitAll(t, cl, []string{j2.ID})[0]; final.State != api.StateDone {
		t.Fatalf("j2 ended %v", final.State)
	}
}

// TestResultNotAliased is the regression test for the registry handing
// out its internal result pointer: mutating a returned result must not
// corrupt what later callers read.
func TestResultNotAliased(t *testing.T) {
	svc, cl := newServer(t, Config{})
	ctx := context.Background()
	st, err := cl.Submit(ctx, smallReq("lenet/mnist"))
	if err != nil {
		t.Fatal(err)
	}
	if final, err := cl.Wait(ctx, st.ID, 10*time.Millisecond); err != nil || final.State != api.StateDone {
		t.Fatalf("job: %v state %v", err, final.State)
	}

	got, err := svc.Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Result == nil || got.Result.Best == nil || len(got.Result.Trials) == 0 {
		t.Fatal("done job missing result")
	}
	wantScore := got.Result.Best.Score
	wantTrial0 := got.Result.Trials[0].Score

	// Vandalise everything reachable from the returned status.
	got.Result.Best.Score = -12345
	got.Result.Trials[0].Score = -99
	for k := range got.Result.Best.Assignment {
		got.Result.Best.Assignment[k] = -1
	}
	if len(got.Result.Best.Result.Epochs) > 0 {
		got.Result.Best.Result.Epochs[0].Accuracy = -1
	}

	again, err := svc.Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if again.Result.Best.Score != wantScore {
		t.Errorf("registry result corrupted: best score %v, want %v", again.Result.Best.Score, wantScore)
	}
	if again.Result.Trials[0].Score != wantTrial0 {
		t.Errorf("registry trial corrupted: %v, want %v", again.Result.Trials[0].Score, wantTrial0)
	}
	for k, v := range again.Result.Best.Assignment {
		if v == -1 {
			t.Errorf("registry assignment corrupted at %s", k)
		}
	}
	if len(again.Result.Best.Result.Epochs) > 0 && again.Result.Best.Result.Epochs[0].Accuracy == -1 {
		t.Error("registry epoch stats corrupted")
	}
}

// TestLaggedSubscriberObservesDrop is the regression test for the silent
// slow-subscriber drop: a stalled subscriber must learn it was dropped
// (not believe the job ended), and a replay must deliver the true
// terminal state.
func TestLaggedSubscriberObservesDrop(t *testing.T) {
	svc, cl := newServer(t, Config{Workers: 1, SubscriberBuffer: 1})
	ctx := context.Background()

	// Pause dispatch so the subscription attaches while the watched job is
	// still queued — before any of its events exist.
	svc.Pause()
	watched, err := cl.Submit(ctx, smallReq("cnn/mnist"))
	if err != nil {
		t.Fatal(err)
	}
	su, err := svc.Subscribe(watched.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(su.Replay) != 0 {
		t.Fatalf("queued job already has %d events", len(su.Replay))
	}
	// Stall: never read su.Events while the job runs to completion. Every
	// event past the 1-slot buffer overflows and evicts the subscriber.
	svc.Resume()
	final := waitAll(t, cl, []string{watched.ID})[0]
	if final.State != api.StateDone {
		t.Fatalf("watched job ended %v", final.State)
	}
	if final.TrialsDone < 2 {
		t.Fatalf("watched job ran %d trials; need >= 2 to overflow the buffer", final.TrialsDone)
	}

	var delivered []api.Event
	for ev := range su.Events {
		delivered = append(delivered, ev)
	}
	if len(delivered) > 1 {
		t.Fatalf("stalled subscriber drained %d events from a 1-slot buffer", len(delivered))
	}
	if !su.Lagged() {
		t.Fatal("dropped subscriber not marked lagged: the drop is indistinguishable from job completion")
	}
	// Replay after the drop: the fresh subscription delivers the complete
	// history ending in the true terminal state.
	su2, err := svc.Subscribe(watched.ID)
	if err != nil {
		t.Fatal(err)
	}
	if su2.Lagged() {
		t.Fatal("fresh subscription born lagged")
	}
	if len(su2.Replay) == 0 {
		t.Fatal("replay empty after job completion")
	}
	last := su2.Replay[len(su2.Replay)-1]
	if last.Type != api.EventState || last.State != api.StateDone {
		t.Fatalf("replay ends with %+v, want done state event", last)
	}
	if _, open := <-su2.Events; open {
		t.Fatal("terminal job's event channel not closed")
	}

	// Over HTTP, the re-subscribe path is client.Stream on the finished
	// job: full replay, terminal state, no truncation error.
	sawTerminal := false
	if err := cl.Stream(ctx, watched.ID, func(ev api.Event) error {
		if ev.Type == api.EventState && ev.State.Terminal() {
			sawTerminal = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !sawTerminal {
		t.Fatal("replayed stream carried no terminal state")
	}
}

// failingStore wraps a real store but tears every Save mid-write.
type failingStore struct {
	gt.Store
}

func (f *failingStore) Save(w io.Writer) error {
	if _, err := io.WriteString(w, `{"entries":[{"feat`); err != nil {
		return err
	}
	return errors.New("disk on fire")
}

// TestExportFailureIsNotA200 is the regression test for the truncated-200
// export: a store failure mid-export must surface as HTTP 500, never as a
// 200 whose truncated body the importer cannot tell from a complete dump.
func TestExportFailureIsNotA200(t *testing.T) {
	failing := &failingStore{Store: gt.NewSharded(gt.DefaultConfig(), 42)}
	sys := newSystem(t, pipetune.WithGroundTruthStore(failing))
	_, cl := newServer(t, Config{System: sys})

	_, err := cl.ExportGroundTruth(context.Background())
	apiErr := new(api.Error)
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusInternalServerError {
		t.Fatalf("export against a failing store = %v, want HTTP 500", err)
	}
}

// TestExportCarriesContentLength verifies a healthy export declares its
// exact length (so torn transfers are detectable) and that a truncated
// import body is rejected with HTTP 400.
func TestExportCarriesContentLength(t *testing.T) {
	svc, cl := newServer(t, Config{})
	ctx := context.Background()
	st, err := cl.Submit(ctx, smallReq("lenet/mnist"))
	if err != nil {
		t.Fatal(err)
	}
	if final, err := cl.Wait(ctx, st.ID, 10*time.Millisecond); err != nil || final.State != api.StateDone {
		t.Fatalf("job: %v state %v", err, final.State)
	}
	_ = svc

	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/groundtruth/export")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export status %d", resp.StatusCode)
	}
	if resp.ContentLength != int64(len(body)) {
		t.Fatalf("Content-Length %d, body %d bytes", resp.ContentLength, len(body))
	}
	if len(body) == 0 {
		t.Fatal("empty export after a job")
	}

	// A truncated dump must be rejected atomically, not half-applied.
	trunc := strings.TrimRight(string(body[:len(body)/2]), "\n")
	resp2, err := http.Post(srv.URL+"/v1/groundtruth/import", "application/json", strings.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated import status %d, want 400", resp2.StatusCode)
	}
}

// TestSJFDispatchOrder verifies the sjf job policy dispatches the
// cheapest predicted job first on the live service: an expensive
// (6-epoch) job submitted *before* a cheap (1-epoch) one is overtaken.
func TestSJFDispatchOrder(t *testing.T) {
	svc, cl := newServer(t, Config{Workers: 1, JobPolicy: pipetune.JobPolicySJF})
	ctx := context.Background()

	svc.Pause()
	costlyReq := smallReq("lenet/mnist")
	costlyReq.Epochs = 6
	costly, err := cl.Submit(ctx, costlyReq)
	if err != nil {
		t.Fatal(err)
	}
	cheapReq := smallReq("lenet/mnist")
	cheapReq.Epochs = 1
	cheap, err := cl.Submit(ctx, cheapReq)
	if err != nil {
		t.Fatal(err)
	}
	if costly.PredictedDuration <= cheap.PredictedDuration {
		t.Fatalf("cost model inverted: 6-epoch %v <= 1-epoch %v",
			costly.PredictedDuration, cheap.PredictedDuration)
	}
	// The cheap job, submitted second, must rank ahead of the expensive
	// one in the nominal dispatch order, and start first once resumed.
	c1, err := cl.Job(ctx, costly.ID)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := cl.Job(ctx, cheap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if c1.QueuePosition == nil || c2.QueuePosition == nil || *c2.QueuePosition != 0 || *c1.QueuePosition != 1 {
		t.Fatalf("sjf queue positions: costly %v, cheap %v (want 1, 0)", c1.QueuePosition, c2.QueuePosition)
	}
	svc.Resume()
	finals := waitAll(t, cl, []string{costly.ID, cheap.ID})
	if finals[1].Started.After(*finals[0].Started) {
		t.Fatalf("sjf dispatched the expensive job first (cheap started %v, costly %v)",
			finals[1].Started, finals[0].Started)
	}
}
