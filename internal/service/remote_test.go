package service

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"pipetune/api"
	"pipetune/client"
	"pipetune/internal/exec"
)

// newRemoteServer wires a Service over the remote execution backend and
// returns the service, its client and the Remote for fleet
// introspection. The eviction horizon (heartbeat × missed) must
// comfortably exceed one epoch's compute time on a loaded single-CPU
// box under -race, or healthy workers get falsely evicted and the job
// livelocks on requeue churn — exactly the operator guidance the
// production defaults (2s × 3) encode. Tests that need eviction pass a
// tighter missed count and shrink the trial instead.
func newRemoteServer(t *testing.T, cfg Config, missedHeartbeats int) (*Service, *client.Client, *exec.Remote) {
	return newRemoteServerWire(t, cfg, missedHeartbeats, "")
}

// newRemoteServerWire is newRemoteServer with an explicit wire protocol
// restriction ("" mounts both wires).
func newRemoteServerWire(t *testing.T, cfg Config, missedHeartbeats int, wire string) (*Service, *client.Client, *exec.Remote) {
	t.Helper()
	remote := exec.NewRemote(exec.RemoteConfig{
		HeartbeatInterval: 150 * time.Millisecond,
		MissedHeartbeats:  missedHeartbeats,
		LeaseWait:         100 * time.Millisecond,
		Wire:              wire,
		Logf:              t.Logf,
	})
	cfg.Remote = remote
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 2 * time.Second
	}
	svc, cl := newServer(t, cfg)
	return svc, cl, remote
}

// startAgent runs an in-process worker agent against the service's
// base URL; the returned cancel kills it (the process-crash stand-in).
func startAgent(t *testing.T, baseURL string, capacity int) context.CancelFunc {
	return startAgentWire(t, baseURL, capacity, "")
}

// startAgentWire is startAgent speaking an explicit wire protocol
// ("" = the JSON long-poll wire, exec.WireBinary = the framed stream).
func startAgentWire(t *testing.T, baseURL string, capacity int, wire string) context.CancelFunc {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	agent := exec.NewAgent(exec.AgentConfig{
		Server:   baseURL,
		Name:     "test-agent",
		Capacity: capacity,
		Wire:     wire,
	})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = agent.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		wg.Wait()
	})
	return cancel
}

// resultJSON canonicalises a job result for byte comparison.
func resultJSON(t *testing.T, st api.JobStatus) string {
	t.Helper()
	if st.Result == nil {
		t.Fatalf("job %s has no result (state %v, err %q)", st.ID, st.State, st.Error)
	}
	b, err := json.Marshal(st.Result)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// runOne submits req and waits for the terminal status.
func runOne(t *testing.T, cl *client.Client, req api.JobRequest) api.JobStatus {
	t.Helper()
	ctx := context.Background()
	st, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	final, err := cl.Wait(ctx, st.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return final
}

// TestRemoteBackendMatchesLocal is the acceptance-criteria equality: a
// job computed by a two-worker remote fleet returns a JobResult
// bit-identical to the same job on the local in-process backend.
func TestRemoteBackendMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("remote equality runs full trial compute; CI races it in the execution-plane step")
	}
	_, localCl := newServer(t, Config{})
	want := runOne(t, localCl, smallReq("lenet/mnist"))
	if want.State != api.StateDone {
		t.Fatalf("local job ended %v (%s)", want.State, want.Error)
	}

	// A generous eviction horizon: this test exercises equality, not
	// failover, and must never falsely evict a busy worker.
	_, remoteCl, remote := newRemoteServer(t, Config{}, 20)
	srvURL := remoteCl.BaseURL
	startAgent(t, srvURL, 2)
	startAgent(t, srvURL, 2)

	got := runOne(t, remoteCl, smallReq("lenet/mnist"))
	if got.State != api.StateDone {
		t.Fatalf("remote job ended %v (%s)", got.State, got.Error)
	}
	if resultJSON(t, got) != resultJSON(t, want) {
		t.Fatal("remote-fleet JobResult diverges from the local backend's")
	}
	fs := remote.Fleet()
	if fs.CompletedTrials == 0 {
		t.Fatal("fleet completed no trials — the job did not actually run remotely")
	}
	if len(fs.Workers) < 2 {
		t.Fatalf("fleet saw %d workers, want 2", len(fs.Workers))
	}
}

// TestCrossWireJobParity is the transport-parity acceptance criterion at
// the service layer: the same job run on a JSON-wire fleet and a
// binary-stream fleet must produce JobResult JSON byte-identical to each
// other and to the local backend. Each fleet is wire-restricted, so the
// test also pins the -exec-wire gating (an agent on the matching wire
// connects; the fleet snapshot reports the wire kind).
func TestCrossWireJobParity(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-wire parity runs full trial compute on two fleets; CI races it in the execution-plane step")
	}
	req := smallReq("lenet/mnist")
	req.Epochs = 2

	_, localCl := newServer(t, Config{})
	want := runOne(t, localCl, req)
	if want.State != api.StateDone {
		t.Fatalf("local job ended %v (%s)", want.State, want.Error)
	}
	wantJSON := resultJSON(t, want)

	for _, wire := range []string{exec.WireJSON, exec.WireBinary} {
		t.Run(wire, func(t *testing.T) {
			_, remoteCl, remote := newRemoteServerWire(t, Config{}, 20, wire)
			startAgentWire(t, remoteCl.BaseURL, 2, wire)
			startAgentWire(t, remoteCl.BaseURL, 2, wire)

			got := runOne(t, remoteCl, req)
			if got.State != api.StateDone {
				t.Fatalf("%s-wire job ended %v (%s)", wire, got.State, got.Error)
			}
			if resultJSON(t, got) != wantJSON {
				t.Fatalf("%s-wire JobResult diverges from the local backend's", wire)
			}
			fs := remote.Fleet()
			if fs.Wire != wire {
				t.Fatalf("fleet wire = %q, want %q", fs.Wire, wire)
			}
			if fs.CompletedTrials == 0 {
				t.Fatalf("%s-wire fleet completed no trials", wire)
			}
		})
	}
}

// TestRemoteJobSurvivesWorkerDeath is the end-to-end crash regression,
// run once per wire protocol: one of two workers dies mid-job, the
// daemon evicts it and requeues its leases, and the job still completes
// — with the exact result a healthy run produces. On the JSON wire the
// death is detected by missed heartbeats; on the binary wire the severed
// stream itself triggers the eviction.
func TestRemoteJobSurvivesWorkerDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("worker-death recovery runs full trial compute; CI races it in the execution-plane step")
	}
	// Single-epoch trials keep each attempt well inside the ~1s eviction
	// horizon even under -race on one CPU, so only the killed worker is
	// ever evicted — not the busy survivor.
	req := smallReq("lenet/mnist")
	req.Epochs = 1

	_, localCl := newServer(t, Config{})
	want := runOne(t, localCl, req)

	for _, wire := range []string{exec.WireJSON, exec.WireBinary} {
		t.Run(wire, func(t *testing.T) {
			testWorkerDeath(t, wire, req, resultJSON(t, want))
		})
	}
}

func testWorkerDeath(t *testing.T, wire string, req api.JobRequest, want string) {
	_, remoteCl, remote := newRemoteServerWire(t, Config{}, 6, wire)
	killFirst := startAgentWire(t, remoteCl.BaseURL, 1, wire)

	ctx := context.Background()
	st, err := remoteCl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the first worker holds at least one lease, then kill it.
	deadline := time.Now().Add(10 * time.Second)
	for remote.Fleet().LeasedTrials == 0 {
		if !time.Now().Before(deadline) {
			t.Fatal("first worker never leased a trial")
		}
		time.Sleep(2 * time.Millisecond)
	}
	killFirst()
	startAgentWire(t, remoteCl.BaseURL, 2, wire)

	final, err := remoteCl.Wait(ctx, st.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.StateDone {
		t.Fatalf("job after worker death ended %v (%s), want done", final.State, final.Error)
	}
	if resultJSON(t, final) != want {
		t.Fatal("post-crash JobResult diverges from a healthy run")
	}
	fs := remote.Fleet()
	evicted := 0
	for _, w := range fs.Workers {
		if w.State == "evicted" {
			evicted++
		}
	}
	if evicted == 0 {
		t.Fatalf("no worker recorded as evicted: %+v", fs.Workers)
	}
}

// TestShutdownFailsUndrainedRemoteJobs pins the graceful-shutdown
// satellite: a job whose trials can never complete (no workers) must
// come out of Shutdown as failed-with-reason, not silently lost or
// forever running.
func TestShutdownFailsUndrainedRemoteJobs(t *testing.T) {
	svc, cl, _ := newRemoteServer(t, Config{Workers: 1, DrainTimeout: 300 * time.Millisecond}, 20)

	ctx := context.Background()
	st, err := cl.Submit(ctx, smallReq("lenet/mnist"))
	if err != nil {
		t.Fatal(err)
	}
	// Let the job reach running: its first batch is now pending leases
	// that no worker will ever take.
	deadline := time.Now().Add(5 * time.Second)
	for {
		cur, err := cl.Job(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == api.StateRunning {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("job never started (state %v)", cur.State)
		}
		time.Sleep(2 * time.Millisecond)
	}

	done := make(chan struct{})
	go func() {
		svc.Shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not complete — drain deadline not honoured")
	}

	final, err := svc.Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.StateFailed {
		t.Fatalf("undrained job ended %v, want failed", final.State)
	}
	if !strings.Contains(final.Error, "draining") {
		t.Fatalf("undrained job error %q does not name the drain", final.Error)
	}
}

// TestHealthReportsFleet pins the fleet surfaces: /healthz carries the
// execution backend and worker rows, /v1/fleet serves the same snapshot,
// and a local-backend daemon answers 404 on /v1/fleet.
func TestHealthReportsFleet(t *testing.T) {
	_, remoteCl, _ := newRemoteServer(t, Config{}, 20)
	startAgent(t, remoteCl.BaseURL, 1)

	ctx := context.Background()
	deadline := time.Now().Add(5 * time.Second)
	for {
		h, err := remoteCl.Health(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if h.ExecBackend != "remote" {
			t.Fatalf("health execBackend = %q, want remote", h.ExecBackend)
		}
		if h.Fleet != nil && len(h.Fleet.Workers) == 1 {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("fleet never showed the worker: %+v", h.Fleet)
		}
		time.Sleep(5 * time.Millisecond)
	}
	fs, err := remoteCl.Fleet(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Backend != "remote" || len(fs.Workers) != 1 {
		t.Fatalf("fleet endpoint = %+v", fs)
	}

	_, localCl := newServer(t, Config{})
	h, err := localCl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.ExecBackend != "local" || h.Fleet != nil {
		t.Fatalf("local health = backend %q fleet %v", h.ExecBackend, h.Fleet)
	}
	if _, err := localCl.Fleet(ctx); err == nil {
		t.Fatal("local daemon served /v1/fleet")
	}
}
