package service

// Service-layer instruments on the shared metrics registry. Everything
// here is nil-safe by construction: with metrics disabled the registry
// is nil, every constructor returns nil handles, and every Inc/Add/
// Observe on them is a no-op — the dispatch hot path carries no
// conditionals beyond the nil receiver check already inside the
// instrument methods.

import (
	"pipetune/api"
	"pipetune/internal/metrics"
)

// tenantSeriesCap bounds how many distinct tenants get their own label
// value on the per-tenant families. Tenants past the cap share one
// aggregate row labelled metrics.OverflowLabel — the same row /healthz
// reports for them, so the two surfaces can never disagree about a
// tenant the budget folded away.
const tenantSeriesCap = 64

// svcMetrics is the service's instrument set.
type svcMetrics struct {
	submitted  *metrics.CounterVec      // pipetune_jobs_submitted_total{tenant}
	finished   *metrics.CounterVec      // pipetune_jobs_finished_total{tenant,state}
	queueDepth *metrics.GaugeVec        // pipetune_queue_depth{tenant}
	running    *metrics.GaugeVec        // pipetune_jobs_running{tenant}
	wait       *metrics.DistributionVec // pipetune_queue_wait_seconds{tenant,policy}
	rejected   *metrics.Counter         // pipetune_jobs_rejected_total
	trials     *metrics.Counter         // pipetune_job_trials_total
	sseEvents  *metrics.Counter         // pipetune_sse_events_total
	sseLagged  *metrics.Counter         // pipetune_sse_lagged_subscribers_total
	sseSubs    *metrics.Gauge           // pipetune_sse_subscribers
	// Heterogeneous-cluster placement and spot-recovery families, recorded
	// from each finished job's trial records.
	placements  *metrics.CounterVec // sched_placements_total{class,policy}
	revocations *metrics.Counter    // sched_revocations_total
	salvaged    *metrics.Counter    // sched_epochs_salvaged_total
}

// newSvcMetrics registers the service families. A nil registry yields
// nil instruments throughout (metrics disabled).
func newSvcMetrics(reg *metrics.Registry) *svcMetrics {
	return &svcMetrics{
		submitted:  reg.CounterVec("pipetune_jobs_submitted_total", "Jobs accepted into the queue.", "tenant"),
		finished:   reg.CounterVec("pipetune_jobs_finished_total", "Jobs reaching a terminal state.", "tenant", "state"),
		queueDepth: reg.GaugeVec("pipetune_queue_depth", "Jobs currently queued.", "tenant"),
		running:    reg.GaugeVec("pipetune_jobs_running", "Jobs currently running.", "tenant"),
		wait:       reg.DistributionVec("pipetune_queue_wait_seconds", "Queue wait between submission and dispatch.", "tenant", "policy"),
		rejected:   reg.Counter("pipetune_jobs_rejected_total", "Submissions refused because the queue was full."),
		trials:     reg.Counter("pipetune_job_trials_total", "Trials completed across all jobs."),
		sseEvents:  reg.Counter("pipetune_sse_events_total", "Events appended to job logs and fanned out."),
		sseLagged:  reg.Counter("pipetune_sse_lagged_subscribers_total", "Event subscribers dropped for falling behind."),
		sseSubs:    reg.Gauge("pipetune_sse_subscribers", "Live event subscribers."),
		placements: reg.CounterVec("sched_placements_total",
			"Trial placements by hosting node class and placement policy.", "class", "policy"),
		revocations: reg.Counter("sched_revocations_total",
			"Spot revocations that interrupted a running trial."),
		salvaged: reg.Counter("sched_epochs_salvaged_total",
			"Epochs checkpoint resumes spared revoked trials from retraining."),
	}
}

// tenantMetrics is one tenant's cached instrument handles — resolved
// once per tenant so the per-job path never takes the family lock. The
// health endpoint reads these same handles back (satellite of the
// observability plane: /healthz is derived from the registry, not a
// parallel set of counters that could drift from it).
type tenantMetrics struct {
	label     string // tenant name, or metrics.OverflowLabel past the cap
	submitted *metrics.Counter
	queued    *metrics.Gauge
	running   *metrics.Gauge
	done      *metrics.Counter
	failed    *metrics.Counter
	cancelled *metrics.Counter
	wait      *metrics.Distribution
}

// tenantRow resolves the instrument handles for one tenant label.
func (m *svcMetrics) tenantRow(label, policy string) *tenantMetrics {
	return &tenantMetrics{
		label:     label,
		submitted: m.submitted.With(label),
		queued:    m.queueDepth.With(label),
		running:   m.running.With(label),
		done:      m.finished.With(label, string(api.StateDone)),
		failed:    m.finished.With(label, string(api.StateFailed)),
		cancelled: m.finished.With(label, string(api.StateCancelled)),
		wait:      m.wait.With(label, policy),
	}
}
