package service

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pipetune"
	"pipetune/client"
)

// TestHealthAndFleetReportClusterComposition: on a heterogeneous system,
// /healthz and GET /v1/fleet must both surface the node-class composition
// and the spot/on-demand split; legacy single-class systems keep both
// surfaces free of cluster fields.
func TestHealthAndFleetReportClusterComposition(t *testing.T) {
	classes, err := pipetune.EC2Classes(2, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	sys := newSystem(t,
		pipetune.WithClusterClasses(classes...),
		pipetune.WithPlacementPolicy(pipetune.SchedCheapest))
	// GET /v1/fleet is the remote execution plane's surface, so mount one.
	_, cl, _ := newRemoteServer(t, Config{System: sys}, 3)
	ctx := context.Background()

	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Cluster == nil {
		t.Fatal("health omits the cluster composition on a classed system")
	}
	if h.Cluster.Nodes != 6 || h.Cluster.SpotNodes != 3 || h.Cluster.OnDemandNodes != 3 {
		t.Fatalf("health cluster counts %+v, want 6 nodes split 3/3", h.Cluster)
	}
	if len(h.Cluster.Classes) != 6 {
		t.Fatalf("health lists %d classes, want 6", len(h.Cluster.Classes))
	}
	spotRows := 0
	for _, c := range h.Cluster.Classes {
		if c.Spot {
			spotRows++
			if c.RevocationsPerHour != 2 {
				t.Fatalf("spot class %q revocation rate %v, want 2", c.Name, c.RevocationsPerHour)
			}
		}
	}
	if spotRows != 3 {
		t.Fatalf("%d spot classes reported, want 3", spotRows)
	}

	fs, err := cl.Fleet(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fs.SpotNodes != 3 || fs.OnDemandNodes != 3 || len(fs.Classes) != 6 {
		t.Fatalf("fleet composition %+v, want 6 classes split 3/3", fs)
	}

	// A legacy system reports no cluster composition at all.
	_, legacy, _ := newRemoteServer(t, Config{}, 3)
	lh, err := legacy.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if lh.Cluster != nil {
		t.Fatalf("legacy health grew a cluster section: %+v", lh.Cluster)
	}
	lf, err := legacy.Fleet(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(lf.Classes) != 0 || lf.SpotNodes != 0 || lf.OnDemandNodes != 0 {
		t.Fatalf("legacy fleet grew class fields: %+v", lf)
	}
}

// TestSchedMetricsRecorded: finishing a job on a classed system must
// publish sched_placements_total series labelled with the hosting class
// and the placement policy in force.
func TestSchedMetricsRecorded(t *testing.T) {
	classes, err := pipetune.EC2Classes(1, 0, 0) // all on-demand: deterministic, no outage stalls
	if err != nil {
		t.Fatal(err)
	}
	sys := newSystem(t,
		pipetune.WithClusterClasses(classes...),
		pipetune.WithPlacementPolicy(pipetune.SchedCheapest))
	svc, err := New(Config{System: sys})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() { srv.Close(); svc.Shutdown() })
	cl := client.New(srv.URL)
	ctx := context.Background()

	st, err := cl.Submit(ctx, smallReq("lenet/mnist"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Wait(ctx, st.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if !strings.Contains(text, "sched_placements_total{") {
		t.Fatal("no sched_placements_total series after a classed job")
	}
	if !strings.Contains(text, `policy="cheapest"`) {
		t.Fatal("placements not labelled with the placement policy")
	}
	if !strings.Contains(text, `class="m4.4xlarge"`) &&
		!strings.Contains(text, `class="m5.12xlarge"`) &&
		!strings.Contains(text, `class="m5.24xlarge"`) {
		t.Fatalf("placements not labelled with a hosting class:\n%s", text)
	}
}
