package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pipetune"
	"pipetune/api"
	"pipetune/client"
)

// newSystem builds a small fast System for tests.
func newSystem(t *testing.T, opts ...pipetune.Option) *pipetune.System {
	t.Helper()
	sys, err := pipetune.New(append([]pipetune.Option{
		pipetune.WithSeed(42), pipetune.WithCorpusSize(128, 64),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// newServer wires a Service over a fresh System behind an httptest server
// and returns a client speaking to it.
func newServer(t *testing.T, cfg Config) (*Service, *client.Client) {
	t.Helper()
	if cfg.System == nil {
		cfg.System = newSystem(t)
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Shutdown()
	})
	return svc, client.New(srv.URL)
}

// smallReq keeps API-path jobs quick: few epochs, tight parallelism.
func smallReq(workload string) api.JobRequest {
	return api.JobRequest{Workload: workload, Seed: 7, Epochs: 3}
}

// TestEndToEndDeterminism is the acceptance-criteria test: submitting a
// Table 3 workload through the HTTP API with a fixed seed yields a
// JobResult.Best identical (bit-for-bit in its JSON serialisation) to
// running the same spec through System.RunPipeTune in-process.
func TestEndToEndDeterminism(t *testing.T) {
	_, cl := newServer(t, Config{})
	ctx := context.Background()

	req := smallReq("lenet/mnist")
	st, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateQueued {
		t.Fatalf("submitted job state = %v, want queued", st.State)
	}
	final, err := cl.Wait(ctx, st.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.StateDone {
		t.Fatalf("job ended %v (err %q), want done", final.State, final.Error)
	}
	if final.Result == nil || final.Result.Best == nil {
		t.Fatal("done job has no result")
	}

	// Library path: a fresh identical System, the same spec the service
	// builds from the request.
	sys := newSystem(t)
	w, err := api.ParseWorkload(req.Workload)
	if err != nil {
		t.Fatal(err)
	}
	spec := sys.JobSpec(w)
	spec.Seed = req.Seed
	spec.BaseHyper.Epochs = req.Epochs
	libRes, err := sys.RunPipeTune(spec)
	if err != nil {
		t.Fatal(err)
	}

	apiBest, err := json.Marshal(final.Result.Best)
	if err != nil {
		t.Fatal(err)
	}
	libBest, err := json.Marshal(libRes.Best)
	if err != nil {
		t.Fatal(err)
	}
	if string(apiBest) != string(libBest) {
		t.Errorf("HTTP best != library best\n http: %s\n lib:  %s", apiBest, libBest)
	}
	if final.Result.TuningTime != libRes.TuningTime {
		t.Errorf("TuningTime: http %v != lib %v", final.Result.TuningTime, libRes.TuningTime)
	}
	if len(final.Result.Trials) != len(libRes.Trials) {
		t.Errorf("trial count: http %d != lib %d", len(final.Result.Trials), len(libRes.Trials))
	}
}

// TestConcurrentJobsShareGroundTruth submits two different workloads
// concurrently: both must complete, and the shared ground-truth store must
// show cross-job reuse — a warm database produces hits for a job that
// never probed those profiles itself.
func TestConcurrentJobsShareGroundTruth(t *testing.T) {
	_, cl := newServer(t, Config{Workers: 2})
	ctx := context.Background()

	var wg sync.WaitGroup
	finals := make([]api.JobStatus, 2)
	errs := make([]error, 2)
	for i, wl := range []string{"lenet/mnist", "cnn/mnist"} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := cl.Submit(ctx, smallReq(wl))
			if err != nil {
				errs[i] = err
				return
			}
			finals[i], errs[i] = cl.Wait(ctx, st.ID, 20*time.Millisecond)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if finals[i].State != api.StateDone {
			t.Fatalf("job %d ended %v (err %q), want done", i, finals[i].State, finals[i].Error)
		}
	}
	gtAfterTwo, err := cl.GroundTruth(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if gtAfterTwo.Entries == 0 {
		t.Fatal("shared ground truth empty after two PipeTune jobs")
	}

	// Cross-job reuse: a third job over an already-seen workload should
	// land ground-truth hits accumulated from the earlier tenants.
	st, err := cl.Submit(ctx, smallReq("lenet/mnist"))
	if err != nil {
		t.Fatal(err)
	}
	final, err := cl.Wait(ctx, st.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.StateDone {
		t.Fatalf("third job ended %v, want done", final.State)
	}
	gtAfterThree, err := cl.GroundTruth(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if gtAfterThree.Hits <= gtAfterTwo.Hits {
		t.Errorf("no cross-job ground-truth hits: %d after warm job, %d before",
			gtAfterThree.Hits, gtAfterTwo.Hits)
	}
}

// TestEventStream verifies SSE delivery: every trial event arrives in
// sequence, the stream terminates with the job's terminal state, and the
// count matches the job's TrialsDone.
func TestEventStream(t *testing.T) {
	_, cl := newServer(t, Config{})
	ctx := context.Background()

	st, err := cl.Submit(ctx, smallReq("lenet/mnist"))
	if err != nil {
		t.Fatal(err)
	}
	var (
		trials    int
		lastSeq   int
		terminal  api.JobState
		streamErr = cl.Stream(ctx, st.ID, func(ev api.Event) error {
			if ev.Seq != lastSeq+1 {
				t.Errorf("event seq %d after %d", ev.Seq, lastSeq)
			}
			lastSeq = ev.Seq
			switch ev.Type {
			case api.EventTrial:
				if ev.Trial == nil {
					t.Error("trial event without trial payload")
				}
				trials++
			case api.EventState:
				terminal = ev.State
			}
			return nil
		})
	)
	if streamErr != nil {
		t.Fatal(streamErr)
	}
	if terminal != api.StateDone {
		t.Fatalf("stream terminal state %v, want done", terminal)
	}
	if trials == 0 {
		t.Fatal("stream delivered no trial events")
	}
	final, err := cl.Job(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.TrialsDone != trials {
		t.Errorf("streamed %d trials, status reports %d", trials, final.TrialsDone)
	}
	// A late subscriber replays the whole history.
	replayed := 0
	if err := cl.Stream(ctx, st.ID, func(api.Event) error { replayed++; return nil }); err != nil {
		t.Fatal(err)
	}
	if replayed != lastSeq {
		t.Errorf("late replay delivered %d events, want %d", replayed, lastSeq)
	}
}

// TestCancelRunning interrupts a job mid-run: the full-size corpus keeps
// the first HyperBand batch busy long enough that a cancel lands before
// the job can finish, and the job must end cancelled, not done.
func TestCancelRunning(t *testing.T) {
	sys, err := pipetune.New(pipetune.WithSeed(42)) // default (large) corpus
	if err != nil {
		t.Fatal(err)
	}
	_, cl := newServer(t, Config{System: sys})
	ctx := context.Background()

	st, err := cl.Submit(ctx, api.JobRequest{Workload: "lstm/news20", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur, err := cl.Job(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == api.StateRunning {
			break
		}
		if cur.State.Terminal() {
			t.Fatalf("job reached %v before it could be cancelled", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := cl.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	final, err := cl.Wait(ctx, st.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.StateCancelled {
		t.Fatalf("cancelled job ended %v, want cancelled", final.State)
	}
	if final.Result != nil {
		t.Error("cancelled job carries a result")
	}
	// Cancelling again is a conflict.
	if _, err := cl.Cancel(ctx, st.ID); err == nil {
		t.Error("second cancel succeeded, want conflict")
	} else if apiErr := new(api.Error); !errors.As(err, &apiErr) || apiErr.StatusCode != 409 {
		t.Errorf("second cancel error = %v, want HTTP 409", err)
	}
}

// TestCancelQueued cancels a job that never started: Workers=1 keeps the
// second submission queued behind the first.
func TestCancelQueued(t *testing.T) {
	svc, cl := newServer(t, Config{Workers: 1})
	ctx := context.Background()

	first, err := cl.Submit(ctx, smallReq("lenet/mnist"))
	if err != nil {
		t.Fatal(err)
	}
	second, err := cl.Submit(ctx, smallReq("cnn/mnist"))
	if err != nil {
		t.Fatal(err)
	}
	// The worker is busy with the first job (or about to be); cancelling
	// the second must work regardless of whether it is still queued.
	st, err := cl.Cancel(ctx, second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateCancelled && st.State != api.StateRunning {
		t.Fatalf("cancel returned state %v", st.State)
	}
	final, err := cl.Wait(ctx, second.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.StateCancelled {
		t.Fatalf("queued-cancelled job ended %v, want cancelled", final.State)
	}
	if _, err := cl.Wait(ctx, first.ID, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	_ = svc
}

// TestAPIErrors covers the error surface: bad workload, unknown job,
// unknown mode.
func TestAPIErrors(t *testing.T) {
	_, cl := newServer(t, Config{})
	ctx := context.Background()

	cases := []struct {
		req  api.JobRequest
		code int
	}{
		{api.JobRequest{Workload: "resnet/imagenet"}, 400},
		{api.JobRequest{Workload: "lenet/mnist", Mode: "warp"}, 400},
		{api.JobRequest{Workload: "lenet/mnist", Objective: "loss"}, 400},
	}
	for _, tc := range cases {
		_, err := cl.Submit(ctx, tc.req)
		apiErr := new(api.Error)
		if !errors.As(err, &apiErr) || apiErr.StatusCode != tc.code {
			t.Errorf("Submit(%+v) error = %v, want HTTP %d", tc.req, err, tc.code)
		}
	}
	if _, err := cl.Job(ctx, "job-999999"); err == nil {
		t.Error("unknown job id returned no error")
	} else if apiErr := new(api.Error); !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Errorf("unknown job error = %v, want HTTP 404", err)
	}
	h, err := cl.Health(ctx)
	if err != nil || h.Status != "ok" {
		t.Errorf("health = %+v, %v", h, err)
	}
}

// TestGroundTruthPersistenceAcrossRestart runs a job with persistence
// enabled, then boots a second service from the same state directory and
// checks the warm-started database is visible over the API.
func TestGroundTruthPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	gtPath := filepath.Join(dir, "gt.json")

	svc1, cl1 := newServer(t, Config{GTPath: gtPath})
	ctx := context.Background()
	st, err := cl1.Submit(ctx, smallReq("lenet/mnist"))
	if err != nil {
		t.Fatal(err)
	}
	final, err := cl1.Wait(ctx, st.ID, 20*time.Millisecond)
	if err != nil || final.State != api.StateDone {
		t.Fatalf("job: %v state %v", err, final.State)
	}
	gt1 := svc1.GroundTruthStats()
	if gt1.Entries == 0 {
		t.Fatal("job produced no ground-truth entries")
	}
	// Snapshot-on-change already wrote the file (runJob snapshots after
	// every job that grew the database).
	if _, err := os.Stat(gtPath); err != nil {
		t.Fatalf("no snapshot after job completion: %v", err)
	}
	svc1.Shutdown()

	svc2, cl2 := newServer(t, Config{GTPath: gtPath})
	defer svc2.Shutdown()
	gt2, err := cl2.GroundTruth(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if gt2.Entries != gt1.Entries {
		t.Errorf("restart restored %d entries, want %d", gt2.Entries, gt1.Entries)
	}
}

// TestJobRetention verifies the registry stays bounded: once the job
// count exceeds MaxJobsRetained, the oldest terminal jobs are evicted
// (404 afterwards) while newer ones remain queryable.
func TestJobRetention(t *testing.T) {
	_, cl := newServer(t, Config{Workers: 1, MaxJobsRetained: 2})
	ctx := context.Background()

	var ids []string
	for i := 0; i < 4; i++ {
		st, err := cl.Submit(ctx, smallReq("lenet/mnist"))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Wait(ctx, st.ID, 10*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	jobs, err := cl.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) > 2 {
		t.Fatalf("registry holds %d jobs, cap is 2", len(jobs))
	}
	if _, err := cl.Job(ctx, ids[0]); err == nil {
		t.Error("oldest job still queryable past the retention cap")
	}
	if _, err := cl.Job(ctx, ids[len(ids)-1]); err != nil {
		t.Errorf("newest job evicted: %v", err)
	}
}

// TestSubmitAfterShutdown verifies the service refuses work once stopped.
func TestSubmitAfterShutdown(t *testing.T) {
	svc, cl := newServer(t, Config{})
	ctx := context.Background()
	svc.Shutdown()
	_, err := cl.Submit(ctx, smallReq("lenet/mnist"))
	apiErr := new(api.Error)
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 503 {
		t.Fatalf("submit after shutdown = %v, want HTTP 503", err)
	}
	// Shutdown is idempotent.
	svc.Shutdown()
}

// TestGroundTruthExportImport round-trips the database over HTTP: one
// daemon learns from a job, its export seeds a second daemon, and the
// second daemon serves hits (and reports the merged entries) without ever
// running a trial itself — the cross-deployment warm start of §5.4.
func TestGroundTruthExportImport(t *testing.T) {
	_, cl1 := newServer(t, Config{})
	ctx := context.Background()

	st, err := cl1.Submit(ctx, smallReq("lenet/mnist"))
	if err != nil {
		t.Fatal(err)
	}
	if final, err := cl1.Wait(ctx, st.ID, 20*time.Millisecond); err != nil || final.State != api.StateDone {
		t.Fatalf("job: %v state %v", err, final.State)
	}
	dump, err := cl1.ExportGroundTruth(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(dump.Entries) == 0 {
		t.Fatal("export returned no entries after a PipeTune job")
	}

	// A second, fresh daemon imports the knowledge.
	svc2, cl2 := newServer(t, Config{})
	res, err := cl2.ImportGroundTruth(ctx, dump)
	if err != nil {
		t.Fatal(err)
	}
	if res.Imported != len(dump.Entries) {
		t.Fatalf("imported %d entries, want %d", res.Imported, len(dump.Entries))
	}
	if res.Stats.Entries != len(dump.Entries) {
		t.Fatalf("post-import stats report %d entries, want %d", res.Stats.Entries, len(dump.Entries))
	}
	if res.Stats.Store == "" || res.Stats.Shards < 1 {
		t.Fatalf("stats missing store/shard fields: %+v", res.Stats)
	}
	// The imported knowledge must be live, not just counted.
	gtStats := svc2.GroundTruthStats()
	if gtStats.Rev == 0 {
		t.Fatal("import did not advance the data revision")
	}

	// Importing garbage rejects the batch atomically.
	if _, err := cl2.ImportGroundTruth(ctx, api.GroundTruthDump{
		Entries: []api.GroundTruthEntry{{Features: nil}},
	}); err == nil {
		t.Fatal("invalid import accepted")
	}
	if after := svc2.GroundTruthStats(); after.Entries != res.Stats.Entries {
		t.Fatalf("failed import mutated the database: %d -> %d entries", res.Stats.Entries, after.Entries)
	}
}

// TestGroundTruthStatsFieldsOverHTTP pins the enriched stats surface:
// store kind, shard count and the model-revision watermark travel the
// wire.
func TestGroundTruthStatsFieldsOverHTTP(t *testing.T) {
	_, cl := newServer(t, Config{})
	ctx := context.Background()
	st, err := cl.Submit(ctx, smallReq("lenet/mnist"))
	if err != nil {
		t.Fatal(err)
	}
	if final, err := cl.Wait(ctx, st.ID, 20*time.Millisecond); err != nil || final.State != api.StateDone {
		t.Fatalf("job: %v state %v", err, final.State)
	}
	gt, err := cl.GroundTruth(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if gt.Store != "sharded" {
		t.Fatalf("store = %q, want sharded (the default)", gt.Store)
	}
	if gt.Shards < 1 {
		t.Fatalf("shards = %d", gt.Shards)
	}
	if gt.Rev == 0 || gt.ModelRev > gt.Rev {
		t.Fatalf("watermarks inconsistent: modelRev %d, rev %d", gt.ModelRev, gt.Rev)
	}
}

// TestServicePersistsWALDuringJob verifies mid-job durability: with
// persistence on, the WAL grows while entries land (before any compaction
// is forced), so a crash mid-job loses nothing already learned.
func TestServicePersistsWALDuringJob(t *testing.T) {
	dir := t.TempDir()
	gtPath := filepath.Join(dir, "gt.json")
	// Huge CompactEvery: nothing folds until the post-job compaction, so
	// observing the WAL file proves the per-Add append path works.
	svc, cl := newServer(t, Config{GTPath: gtPath, CompactEvery: 1 << 20})
	ctx := context.Background()
	st, err := cl.Submit(ctx, smallReq("lenet/mnist"))
	if err != nil {
		t.Fatal(err)
	}
	if final, err := cl.Wait(ctx, st.ID, 20*time.Millisecond); err != nil || final.State != api.StateDone {
		t.Fatalf("job: %v state %v", err, final.State)
	}
	// The post-job snapshot compacted the WAL; the snapshot must hold the
	// entries and the stats must agree.
	stats := svc.GroundTruthStats()
	if stats.Entries == 0 {
		t.Fatal("job fed no entries")
	}
	if stats.WALRecords != 0 {
		t.Fatalf("WAL not compacted after job: %d records", stats.WALRecords)
	}
	if _, err := os.Stat(gtPath); err != nil {
		t.Fatalf("no snapshot after job: %v", err)
	}
}
