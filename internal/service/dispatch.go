package service

import (
	"sort"
	"sync"
	"time"

	"pipetune/api"
	"pipetune/internal/admission"
)

// tenantStats is one tenant's lifetime accounting: live queue depths plus
// wait-time statistics over its dispatched jobs. Guarded by Service.mu.
type tenantStats struct {
	queued     int
	running    int
	finished   int
	dispatched int
	waitSum    time.Duration
	waitMax    time.Duration
}

// dispatcher replaces the legacy FIFO `chan *job` worker pipeline: a
// tenant-aware admission queue (internal/admission) plus a condition
// variable waking workers and per-tenant wait accounting. It owns no lock
// of its own — every method requires Service.mu held, which is also what
// cond is bound to; a single critical section therefore spans the
// capacity check, the job-ID allocation and the enqueue, closing the
// ID-burn and lost-wakeup races a separate lock would reopen.
type dispatcher struct {
	q     *admission.Queue
	cond  *sync.Cond
	stats map[string]*tenantStats
}

// newDispatcher validates the job policy and tenant weights from cfg.
func newDispatcher(mu *sync.Mutex, cfg Config) (*dispatcher, error) {
	q, err := admission.New(admission.Config{
		Policy:   admission.Policy(cfg.JobPolicy),
		Weights:  cfg.TenantWeights,
		Capacity: cfg.QueueDepth,
	})
	if err != nil {
		return nil, err
	}
	return &dispatcher{
		q:     q,
		cond:  sync.NewCond(mu),
		stats: make(map[string]*tenantStats),
	}, nil
}

// tenant returns (creating on first use) a tenant's stats record.
func (d *dispatcher) tenant(name string) *tenantStats {
	ts := d.stats[name]
	if ts == nil {
		ts = &tenantStats{}
		d.stats[name] = ts
	}
	return ts
}

// pushLocked admits a job into the queue and wakes one worker. The caller
// has already verified capacity via q.Full() under the same lock.
func (d *dispatcher) pushLocked(jb *job) error {
	err := d.q.Push(admission.Job{
		ID:       jb.id,
		Tenant:   jb.tenant,
		Priority: jb.req.Priority,
		Cost:     jb.predicted,
	})
	if err != nil {
		return err
	}
	d.tenant(jb.tenant).queued++
	d.cond.Signal()
	return nil
}

// onDispatchLocked records a queued->running transition and the job's
// queue wait.
func (d *dispatcher) onDispatchLocked(tenant string, wait time.Duration) {
	ts := d.tenant(tenant)
	ts.queued--
	ts.running++
	ts.dispatched++
	ts.waitSum += wait
	if wait > ts.waitMax {
		ts.waitMax = wait
	}
}

// onFinishLocked records a transition into a terminal state from prev.
func (d *dispatcher) onFinishLocked(tenant string, prev api.JobState) {
	ts := d.tenant(tenant)
	switch prev {
	case api.StateQueued:
		ts.queued--
	case api.StateRunning:
		ts.running--
	}
	ts.finished++
}

// healthLocked renders the per-tenant Health rows, sorted by tenant name.
func (d *dispatcher) healthLocked() []api.TenantHealth {
	names := make([]string, 0, len(d.stats))
	for name := range d.stats {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]api.TenantHealth, 0, len(names))
	for _, name := range names {
		ts := d.stats[name]
		th := api.TenantHealth{
			Tenant:         name,
			Weight:         d.q.Weight(name),
			Queued:         ts.queued,
			Running:        ts.running,
			Finished:       ts.finished,
			MaxWaitSeconds: ts.waitMax.Seconds(),
		}
		if ts.dispatched > 0 {
			th.MeanWaitSeconds = ts.waitSum.Seconds() / float64(ts.dispatched)
		}
		out = append(out, th)
	}
	return out
}
