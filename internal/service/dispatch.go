package service

import (
	"sort"
	"sync"
	"time"

	"pipetune/api"
	"pipetune/internal/admission"
	"pipetune/internal/metrics"
)

// dispatcher replaces the legacy FIFO `chan *job` worker pipeline: a
// tenant-aware admission queue (internal/admission) plus a condition
// variable waking workers and per-tenant wait accounting. It owns no lock
// of its own — every method requires Service.mu held, which is also what
// cond is bound to; a single critical section therefore spans the
// capacity check, the job-ID allocation and the enqueue, closing the
// ID-burn and lost-wakeup races a separate lock would reopen.
//
// Per-tenant accounting lives in the metrics registry, not in a parallel
// set of ints: the dispatcher caches one tenantMetrics row per tenant
// label (bounded by tenantSeriesCap, overflow shared) and both /metrics
// and /healthz read those same instruments — the two surfaces cannot
// disagree.
type dispatcher struct {
	q    *admission.Queue
	cond *sync.Cond
	met  *svcMetrics

	// byTenant maps every raw tenant name ever seen to its row; rows maps
	// the bounded set of label values (real tenants up to the cap, plus
	// the shared overflow row) that actually exist as series.
	byTenant map[string]*tenantMetrics
	rows     map[string]*tenantMetrics
}

// newDispatcher validates the job policy and tenant weights from cfg.
func newDispatcher(mu *sync.Mutex, cfg Config, met *svcMetrics) (*dispatcher, error) {
	q, err := admission.New(admission.Config{
		Policy:   admission.Policy(cfg.JobPolicy),
		Weights:  cfg.TenantWeights,
		Capacity: cfg.QueueDepth,
	})
	if err != nil {
		return nil, err
	}
	return &dispatcher{
		q:        q,
		cond:     sync.NewCond(mu),
		met:      met,
		byTenant: make(map[string]*tenantMetrics),
		rows:     make(map[string]*tenantMetrics),
	}, nil
}

// tenant returns (resolving on first use) a tenant's instrument row.
// Past tenantSeriesCap distinct tenants, new ones share the overflow
// row — the documented cardinality budget.
func (d *dispatcher) tenant(name string) *tenantMetrics {
	if tm, ok := d.byTenant[name]; ok {
		return tm
	}
	label := name
	if len(d.rows) >= tenantSeriesCap {
		label = metrics.OverflowLabel
	}
	tm, ok := d.rows[label]
	if !ok {
		tm = d.met.tenantRow(label, string(d.q.Policy()))
		d.rows[label] = tm
	}
	d.byTenant[name] = tm
	return tm
}

// pushLocked admits a job into the queue and wakes one worker. The caller
// has already verified capacity via q.Full() under the same lock.
func (d *dispatcher) pushLocked(jb *job) error {
	err := d.q.Push(admission.Job{
		ID:       jb.id,
		Tenant:   jb.tenant,
		Priority: jb.req.Priority,
		Cost:     jb.predicted,
	})
	if err != nil {
		return err
	}
	tm := d.tenant(jb.tenant)
	tm.submitted.Inc()
	tm.queued.Add(1)
	d.cond.Signal()
	return nil
}

// onDispatchLocked records a queued->running transition and the job's
// queue wait.
func (d *dispatcher) onDispatchLocked(tenant string, wait time.Duration) {
	tm := d.tenant(tenant)
	tm.queued.Add(-1)
	tm.running.Add(1)
	tm.wait.Observe(wait.Seconds())
}

// onFinishLocked records a transition from prev into the terminal state
// next.
func (d *dispatcher) onFinishLocked(tenant string, prev, next api.JobState) {
	tm := d.tenant(tenant)
	switch prev {
	case api.StateQueued:
		tm.queued.Add(-1)
	case api.StateRunning:
		tm.running.Add(-1)
	}
	switch next {
	case api.StateDone:
		tm.done.Inc()
	case api.StateFailed:
		tm.failed.Inc()
	default:
		tm.cancelled.Inc()
	}
}

// healthLocked renders the per-tenant Health rows, sorted by tenant
// label, straight from the registry instruments.
func (d *dispatcher) healthLocked() []api.TenantHealth {
	labels := make([]string, 0, len(d.rows))
	for label := range d.rows {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	out := make([]api.TenantHealth, 0, len(labels))
	for _, label := range labels {
		tm := d.rows[label]
		th := api.TenantHealth{
			Tenant:   label,
			Weight:   d.q.Weight(label),
			Queued:   int(tm.queued.Value()),
			Running:  int(tm.running.Value()),
			Finished: int(tm.done.Value() + tm.failed.Value() + tm.cancelled.Value()),
		}
		if n := tm.wait.Count(); n > 0 {
			th.MeanWaitSeconds = tm.wait.Sum() / float64(n)
			th.MaxWaitSeconds = tm.wait.Max()
		}
		out = append(out, th)
	}
	return out
}

// countsLocked sums the live queue-depth and running gauges across
// tenant rows — the health endpoint's headline numbers.
func (d *dispatcher) countsLocked() (queued, running int) {
	for _, tm := range d.rows {
		queued += int(tm.queued.Value())
		running += int(tm.running.Value())
	}
	return queued, running
}
