package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"pipetune/api"
	"pipetune/internal/metrics"
)

// Handler returns the daemon's HTTP API (see package api for the
// surface). With a remote execution plane configured, the worker-facing
// work API (registration, leases, epoch streaming, commits, fleet
// status) is mounted next to the job API on the same listener.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/groundtruth", s.handleGroundTruth)
	mux.HandleFunc("GET /v1/groundtruth/export", s.handleGroundTruthExport)
	mux.HandleFunc("POST /v1/groundtruth/import", s.handleGroundTruthImport)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	if !s.cfg.DisableMetrics {
		// Prometheus text exposition plus the same registry as typed JSON
		// (the api.MetricsSnapshot surface behind client.Metrics).
		mux.Handle("GET /metrics", metrics.Handler(s.cfg.Metrics))
		mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	}
	if s.cfg.Remote != nil {
		wh := s.cfg.Remote.Handler()
		mux.Handle("/v1/workers", wh)
		mux.Handle("/v1/workers/", wh)
		mux.Handle("POST /v1/stream", wh)
		mux.Handle("GET /v1/fleet", wh)
	}
	return mux
}

// writeJSON emits a JSON body with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr maps service errors onto HTTP status codes.
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrBadRequest):
		code = http.StatusBadRequest
	case errors.Is(err, ErrTerminal):
		code = http.StatusConflict
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrShutdown):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, api.Error{Message: err.Error()})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req api.JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, fmt.Errorf("%w: decode body: %v", ErrBadRequest, err))
		return
	}
	st, err := s.Submit(req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Service) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	st, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams a job's progress as Server-Sent Events: one
// `event: trial` frame per completed trial (replayed from the start for
// late subscribers) and a final `event: state` frame, after which the
// stream closes. A subscriber evicted for falling behind instead receives
// a terminal `event: lagged` frame — without it the early close would be
// indistinguishable from a finished job, and the client would never learn
// it must re-subscribe and replay.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	su, err := s.Subscribe(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	defer su.Cancel()
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, errors.New("service: streaming unsupported by this connection"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	send := func(ev api.Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	for _, ev := range su.Replay {
		if !send(ev) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-su.Events:
			if !ok {
				if su.Lagged() {
					send(api.Event{Type: api.EventLagged, JobID: r.PathValue("id")})
				}
				return
			}
			if !send(ev) {
				return
			}
		}
	}
}

func (s *Service) handleGroundTruth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.GroundTruthStats())
}

// handleGroundTruthExport serves the database in the snapshot wire format
// — the same JSON a store writes to disk, so an export can seed another
// daemon's -gt file directly. The dump is buffered before any header is
// written: a store failure mid-encode becomes an honest HTTP 500 instead
// of a 200 with a truncated body the importer cannot tell from a complete
// dump, and the Content-Length lets clients detect torn transfers.
// Buffering is safe because exports are bounded: the registry's retention
// and the store's compaction keep the entry count small relative to
// memory.
func (s *Service) handleGroundTruthExport(w http.ResponseWriter, _ *http.Request) {
	var buf bytes.Buffer
	if err := s.ExportGroundTruth(&buf); err != nil {
		s.cfg.Logf("service: ground-truth export failed: %v", err)
		writeErr(w, fmt.Errorf("service: export ground truth: %v", err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="groundtruth.json"`)
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// handleGroundTruthImport merges a dump into the shared database — the
// cross-deployment warm start of §5.4 over HTTP.
func (s *Service) handleGroundTruthImport(w http.ResponseWriter, r *http.Request) {
	var dump api.GroundTruthDump
	if err := json.NewDecoder(r.Body).Decode(&dump); err != nil {
		writeErr(w, fmt.Errorf("%w: decode body: %v", ErrBadRequest, err))
		return
	}
	added, err := s.ImportGroundTruth(dump.Entries)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.ImportResult{Imported: added, Stats: s.GroundTruthStats()})
}

func (s *Service) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Health())
}

func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.cfg.Metrics.Snapshot())
}
