package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"pipetune/api"
)

// Handler returns the daemon's HTTP API (see package api for the surface).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/groundtruth", s.handleGroundTruth)
	mux.HandleFunc("GET /v1/groundtruth/export", s.handleGroundTruthExport)
	mux.HandleFunc("POST /v1/groundtruth/import", s.handleGroundTruthImport)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// writeJSON emits a JSON body with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr maps service errors onto HTTP status codes.
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrBadRequest):
		code = http.StatusBadRequest
	case errors.Is(err, ErrTerminal):
		code = http.StatusConflict
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrShutdown):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, api.Error{Message: err.Error()})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req api.JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, fmt.Errorf("%w: decode body: %v", ErrBadRequest, err))
		return
	}
	st, err := s.Submit(req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Service) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	st, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEvents streams a job's progress as Server-Sent Events: one
// `event: trial` frame per completed trial (replayed from the start for
// late subscribers) and a final `event: state` frame, after which the
// stream closes.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	replay, live, cancel, err := s.Subscribe(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	defer cancel()
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, errors.New("service: streaming unsupported by this connection"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	send := func(ev api.Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	for _, ev := range replay {
		if !send(ev) {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-live:
			if !ok {
				return
			}
			if !send(ev) {
				return
			}
		}
	}
}

func (s *Service) handleGroundTruth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.GroundTruthStats())
}

// handleGroundTruthExport streams the database in the snapshot wire
// format — the same JSON a store writes to disk, so an export can seed
// another daemon's -gt file directly.
func (s *Service) handleGroundTruthExport(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="groundtruth.json"`)
	if err := s.ExportGroundTruth(w); err != nil {
		// Headers are gone; all we can do is log and drop the stream.
		s.cfg.Logf("service: ground-truth export failed: %v", err)
	}
}

// handleGroundTruthImport merges a dump into the shared database — the
// cross-deployment warm start of §5.4 over HTTP.
func (s *Service) handleGroundTruthImport(w http.ResponseWriter, r *http.Request) {
	var dump api.GroundTruthDump
	if err := json.NewDecoder(r.Body).Decode(&dump); err != nil {
		writeErr(w, fmt.Errorf("%w: decode body: %v", ErrBadRequest, err))
		return
	}
	added, err := s.ImportGroundTruth(dump.Entries)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.ImportResult{Imported: added, Stats: s.GroundTruthStats()})
}

func (s *Service) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Health())
}
