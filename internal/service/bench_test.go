package service

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"pipetune"
	"pipetune/api"
	"pipetune/client"
	"pipetune/internal/stats"
)

// BenchmarkServiceThroughput drives the full API path in-process — HTTP
// submit, status polling, result fetch — over a shared System, reporting
// jobs/sec and the p50/p99 status-poll latency. The measured baseline is
// recorded in BENCH_service.json at the repo root.
func BenchmarkServiceThroughput(b *testing.B) {
	sys, err := pipetune.New(pipetune.WithSeed(42), pipetune.WithCorpusSize(64, 32))
	if err != nil {
		b.Fatal(err)
	}
	svc, err := New(Config{System: sys, Workers: 4, QueueDepth: 4096})
	if err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	defer func() {
		srv.Close()
		svc.Shutdown()
	}()
	cl := client.New(srv.URL)
	ctx := context.Background()
	req := api.JobRequest{Workload: "lenet/mnist", Epochs: 1, Seed: 5}

	var (
		mu        sync.Mutex
		pollLatMs []float64
	)
	poll := func(id string) (api.JobStatus, error) {
		t0 := time.Now()
		st, err := cl.Job(ctx, id)
		lat := float64(time.Since(t0).Microseconds()) / 1000
		mu.Lock()
		pollLatMs = append(pollLatMs, lat)
		mu.Unlock()
		return st, err
	}

	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < b.N; i++ {
		st, err := cl.Submit(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for {
				st, err := poll(id)
				if err != nil {
					b.Error(err)
					return
				}
				if st.State.Terminal() {
					if st.State != api.StateDone {
						b.Errorf("job %s ended %v: %s", id, st.State, st.Error)
					}
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(st.ID)
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()

	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "jobs/sec")
	if len(pollLatMs) > 0 {
		p50, err := stats.Percentile(pollLatMs, 50)
		if err != nil {
			b.Fatal(err)
		}
		p99, err := stats.Percentile(pollLatMs, 99)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(p50, "p50-poll-ms")
		b.ReportMetric(p99, "p99-poll-ms")
	}
}

// benchDispatch measures the pure dispatch path — Submit through
// terminal state over a shared System, no HTTP — with the metrics plane
// on or off, so the two benchmarks bracket the instrumentation
// overhead (CI's bench-smoke runs both; the acceptance budget for the
// delta is <2% on jobs/sec).
func benchDispatch(b *testing.B, disable bool) {
	sys, err := pipetune.New(pipetune.WithSeed(42), pipetune.WithCorpusSize(64, 32))
	if err != nil {
		b.Fatal(err)
	}
	svc, err := New(Config{System: sys, Workers: 4, QueueDepth: 4096, DisableMetrics: disable})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Shutdown()
	req := api.JobRequest{Workload: "lenet/mnist", Epochs: 1, Seed: 5}

	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < b.N; i++ {
		st, err := svc.Submit(req)
		if err != nil {
			b.Fatal(err)
		}
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			su, err := svc.Subscribe(id)
			if err != nil {
				b.Error(err)
				return
			}
			defer su.Cancel()
			for range su.Events {
			}
		}(st.ID)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "jobs/sec")
}

func BenchmarkInstrumentedDispatch(b *testing.B)   { benchDispatch(b, false) }
func BenchmarkUninstrumentedDispatch(b *testing.B) { benchDispatch(b, true) }
