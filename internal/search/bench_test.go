package search

import (
	"testing"

	"pipetune/internal/params"
	"pipetune/internal/xrand"
)

func benchSpace() params.Space {
	return params.Space{
		{Name: "a", Values: []float64{1, 2, 3, 4}},
		{Name: "b", Values: []float64{1, 2, 3, 4}},
		{Name: "c", Values: []float64{1, 2, 3}},
	}
}

// drainBench runs a searcher to exhaustion with a trivial objective.
func drainBench(b *testing.B, s Searcher) {
	b.Helper()
	for {
		batch := s.Next()
		if len(batch) == 0 {
			return
		}
		reports := make([]Report, len(batch))
		for i, sg := range batch {
			reports[i] = Report{ID: sg.ID, Score: sg.Assignment["a"] - sg.Assignment["b"]}
		}
		s.Observe(reports)
	}
}

func BenchmarkHyperBand(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := NewHyperBand(benchSpace(), 9, 3, xrand.New(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		drainBench(b, s)
	}
}

func BenchmarkGenetic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := NewGenetic(benchSpace(), 12, 5, xrand.New(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		drainBench(b, s)
	}
}

func BenchmarkBayesian(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := NewBayesian(benchSpace(), 24, xrand.New(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		drainBench(b, s)
	}
}
