package search

import (
	"math"
	"testing"

	"pipetune/internal/params"
	"pipetune/internal/xrand"
)

func testSpace() params.Space {
	return params.Space{
		{Name: "a", Values: []float64{1, 2, 3}},
		{Name: "b", Values: []float64{10, 20}},
	}
}

// drain runs a searcher to exhaustion against the given objective and
// returns every (assignment, score) pair evaluated.
func drain(t *testing.T, s Searcher, objective func(params.Assignment) float64) []scoredAssignment {
	t.Helper()
	var all []scoredAssignment
	for round := 0; ; round++ {
		if round > 10000 {
			t.Fatal("searcher did not terminate")
		}
		batch := s.Next()
		if len(batch) == 0 {
			return all
		}
		reports := make([]Report, 0, len(batch))
		for _, sg := range batch {
			if sg.BudgetFrac <= 0 || sg.BudgetFrac > 1 {
				t.Fatalf("budget fraction %v out of (0,1]", sg.BudgetFrac)
			}
			score := objective(sg.Assignment)
			all = append(all, scoredAssignment{a: sg.Assignment, s: score})
			reports = append(reports, Report{ID: sg.ID, Score: score})
		}
		s.Observe(reports)
	}
}

// peaky is an objective maximised at a=3, b=20.
func peaky(a params.Assignment) float64 {
	return -math.Abs(a["a"]-3) - math.Abs(a["b"]-20)/10
}

func TestGridCoversSpace(t *testing.T) {
	g, err := NewGrid(testSpace(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, g, peaky)
	if len(got) != 6 {
		t.Fatalf("grid evaluated %d points, want 6", len(got))
	}
	seen := make(map[string]bool)
	for _, sa := range got {
		seen[sa.a.Key()] = true
	}
	if len(seen) != 6 {
		t.Fatalf("grid repeated points: %d unique", len(seen))
	}
}

func TestGridTruncationAndBatching(t *testing.T) {
	g, err := NewGrid(testSpace(), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	first := g.Next()
	if len(first) != 3 {
		t.Fatalf("first batch %d, want 3", len(first))
	}
	second := g.Next()
	if len(second) != 1 {
		t.Fatalf("second batch %d, want 1", len(second))
	}
	if g.Next() != nil {
		t.Fatal("exhausted grid returned more work")
	}
}

func TestRandomWithoutReplacement(t *testing.T) {
	s, err := NewRandom(testSpace(), 6, 0, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, s, peaky)
	if len(got) != 6 {
		t.Fatalf("random evaluated %d, want 6", len(got))
	}
	seen := make(map[string]bool)
	for _, sa := range got {
		seen[sa.a.Key()] = true
	}
	if len(seen) != 6 {
		t.Fatalf("random repeated points before exhausting the space: %d unique", len(seen))
	}
}

func TestRandomValidation(t *testing.T) {
	if _, err := NewRandom(testSpace(), 0, 0, xrand.New(1)); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewRandom(params.Space{{Name: "", Values: nil}}, 3, 0, xrand.New(1)); err == nil {
		t.Fatal("invalid space accepted")
	}
}

func TestHyperBandStructure(t *testing.T) {
	hb, err := NewHyperBand(testSpace(), 9, 3, xrand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	// First rung of the most aggressive bracket runs many configs at the
	// lowest budget.
	batch := hb.Next()
	if len(batch) == 0 {
		t.Fatal("no first rung")
	}
	frac := batch[0].BudgetFrac
	if frac >= 1 {
		t.Fatalf("first bracket should start below full budget, got %v", frac)
	}

	reports := make([]Report, len(batch))
	for i, sg := range batch {
		reports[i] = Report{ID: sg.ID, Score: peaky(sg.Assignment)}
	}
	hb.Observe(reports)
	next := hb.Next()
	if len(next) >= len(batch) {
		t.Fatalf("successive halving did not shrink the rung: %d -> %d", len(batch), len(next))
	}
	if len(next) > 0 && next[0].BudgetFrac <= frac {
		t.Fatalf("budget did not grow: %v -> %v", frac, next[0].BudgetFrac)
	}
}

func TestHyperBandTerminatesAndFindsGood(t *testing.T) {
	hb, err := NewHyperBand(testSpace(), 9, 3, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, hb, peaky)
	if len(got) == 0 {
		t.Fatal("hyperband evaluated nothing")
	}
	best := math.Inf(-1)
	for _, sa := range got {
		if sa.s > best {
			best = sa.s
		}
	}
	// Optimum score is 0 at (3,20); a small space must find it.
	if best < -0.5 {
		t.Fatalf("hyperband best score %v too far from optimum 0", best)
	}
}

func TestHyperBandValidation(t *testing.T) {
	if _, err := NewHyperBand(testSpace(), 0, 3, xrand.New(1)); err == nil {
		t.Fatal("maxResource=0 accepted")
	}
	if _, err := NewHyperBand(testSpace(), 9, 1, xrand.New(1)); err == nil {
		t.Fatal("eta=1 accepted")
	}
}

func TestGeneticImprovesOverGenerations(t *testing.T) {
	// Use a bigger space so improvement is measurable.
	space := params.Space{
		{Name: "x", Values: []float64{0, 1, 2, 3, 4, 5, 6, 7}},
		{Name: "y", Values: []float64{0, 1, 2, 3, 4, 5, 6, 7}},
	}
	obj := func(a params.Assignment) float64 {
		return -(math.Abs(a["x"]-7) + math.Abs(a["y"]-7))
	}
	g, err := NewGenetic(space, 8, 6, xrand.New(4))
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, g, obj)
	if len(got) != 8*6 {
		t.Fatalf("genetic evaluated %d, want 48", len(got))
	}
	firstGenBest, lastGenBest := math.Inf(-1), math.Inf(-1)
	for _, sa := range got[:8] {
		if sa.s > firstGenBest {
			firstGenBest = sa.s
		}
	}
	for _, sa := range got[len(got)-8:] {
		if sa.s > lastGenBest {
			lastGenBest = sa.s
		}
	}
	if lastGenBest < firstGenBest {
		t.Fatalf("last generation best %v worse than first %v", lastGenBest, firstGenBest)
	}
}

func TestGeneticValidation(t *testing.T) {
	if _, err := NewGenetic(testSpace(), 1, 3, xrand.New(1)); err == nil {
		t.Fatal("pop=1 accepted")
	}
	if _, err := NewGenetic(testSpace(), 4, 0, xrand.New(1)); err == nil {
		t.Fatal("generations=0 accepted")
	}
}

func TestBayesianConvergesTowardOptimum(t *testing.T) {
	space := params.Space{
		{Name: "x", Values: []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}},
	}
	obj := func(a params.Assignment) float64 { return -math.Abs(a["x"] - 8) }
	b, err := NewBayesian(space, 14, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, b, obj)
	if len(got) != 14 {
		t.Fatalf("bayesian evaluated %d, want 14", len(got))
	}
	// The post-warmup half should concentrate near the optimum more than
	// uniform sampling would: its mean score must beat the warmup mean.
	warmup, rest := got[:len(got)/2], got[len(got)/2:]
	mw, mr := 0.0, 0.0
	for _, sa := range warmup {
		mw += sa.s
	}
	for _, sa := range rest {
		mr += sa.s
	}
	mw /= float64(len(warmup))
	mr /= float64(len(rest))
	if mr < mw-0.5 {
		t.Fatalf("surrogate phase mean %v should not be worse than warmup %v", mr, mw)
	}
}

func TestBayesianValidation(t *testing.T) {
	if _, err := NewBayesian(testSpace(), 0, xrand.New(1)); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestAllSearchersTerminate(t *testing.T) {
	mk := []func() Searcher{
		func() Searcher { s, _ := NewGrid(testSpace(), 0, 2); return s },
		func() Searcher { s, _ := NewRandom(testSpace(), 5, 2, xrand.New(1)); return s },
		func() Searcher { s, _ := NewHyperBand(testSpace(), 9, 3, xrand.New(1)); return s },
		func() Searcher { s, _ := NewGenetic(testSpace(), 4, 3, xrand.New(1)); return s },
		func() Searcher { s, _ := NewBayesian(testSpace(), 7, xrand.New(1)); return s },
	}
	for _, f := range mk {
		s := f()
		got := drain(t, s, peaky)
		if len(got) == 0 {
			t.Fatalf("%s evaluated nothing", s.Name())
		}
		if s.Next() != nil {
			t.Fatalf("%s returned work after exhaustion", s.Name())
		}
	}
}

func TestSearchersAreDeterministic(t *testing.T) {
	run := func() []scoredAssignment {
		s, err := NewHyperBand(testSpace(), 9, 3, xrand.New(77))
		if err != nil {
			t.Fatal(err)
		}
		return drain(t, s, peaky)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].a.Key() != b[i].a.Key() {
			t.Fatalf("runs diverge at %d", i)
		}
	}
}
