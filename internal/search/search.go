// Package search implements the trial-scheduling algorithms listed in the
// PipeTune architecture (Figure 7): grid search, random search, HyperBand,
// genetic optimisation and a Bayesian-style surrogate search. The paper's
// evaluation uses HyperBand (§6); PipeTune inherits whichever searcher the
// underlying tuning library provides, so all five share one interface.
//
// Searchers follow an ask/tell protocol: Next returns a batch of
// suggestions to evaluate (the HPT runner may evaluate them in parallel),
// Observe reports their scores back, and Next returns nil once the search
// is exhausted. Scores are "higher is better"; the objective function is
// the runner's concern.
package search

import (
	"fmt"
	"math"
	"sort"

	"pipetune/internal/params"
	"pipetune/internal/xrand"
)

// Suggestion is one proposed evaluation.
type Suggestion struct {
	// ID is unique within a searcher's lifetime.
	ID int
	// Assignment is the parameter point to evaluate.
	Assignment params.Assignment
	// BudgetFrac in (0,1] scales the training budget (epochs); HyperBand's
	// early rungs run at reduced budget, everything else at 1.
	BudgetFrac float64
}

// Report carries one completed evaluation.
type Report struct {
	ID    int
	Score float64
}

// Searcher is the ask/tell protocol described in the package comment.
// Implementations are not safe for concurrent use; the HPT runner
// serialises Next/Observe and parallelises only the evaluations.
type Searcher interface {
	Name() string
	Next() []Suggestion
	Observe([]Report)
}

// ---------------------------------------------------------------- grid ---

// Grid enumerates the full cartesian grid, optionally truncated.
type Grid struct {
	space  params.Space
	max    int
	cursor int
	nextID int
	batch  int
}

// NewGrid creates a grid searcher. maxTrials <= 0 means the full grid;
// batchSize <= 0 defaults to the remaining grid in one batch.
func NewGrid(space params.Space, maxTrials, batchSize int) (*Grid, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	size := space.Size()
	if maxTrials <= 0 || maxTrials > size {
		maxTrials = size
	}
	if batchSize <= 0 {
		batchSize = maxTrials
	}
	return &Grid{space: space, max: maxTrials, batch: batchSize}, nil
}

// Name implements Searcher.
func (g *Grid) Name() string { return "grid" }

// Next implements Searcher.
func (g *Grid) Next() []Suggestion {
	if g.cursor >= g.max {
		return nil
	}
	end := g.cursor + g.batch
	if end > g.max {
		end = g.max
	}
	out := make([]Suggestion, 0, end-g.cursor)
	for ; g.cursor < end; g.cursor++ {
		out = append(out, Suggestion{ID: g.nextID, Assignment: g.space.At(g.cursor), BudgetFrac: 1})
		g.nextID++
	}
	return out
}

// Observe implements Searcher (grid search ignores scores).
func (g *Grid) Observe([]Report) {}

// -------------------------------------------------------------- random ---

// Random samples the space uniformly without replacement (until the space
// is exhausted, then with replacement).
type Random struct {
	space   params.Space
	n       int
	r       *xrand.Source
	nextID  int
	seen    map[string]bool
	emitted int
	batch   int
}

// NewRandom creates a random searcher proposing n points.
func NewRandom(space params.Space, n, batchSize int, r *xrand.Source) (*Random, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("search: random n=%d invalid", n)
	}
	if batchSize <= 0 {
		batchSize = n
	}
	return &Random{space: space, n: n, r: r, seen: make(map[string]bool, n), batch: batchSize}, nil
}

// Name implements Searcher.
func (s *Random) Name() string { return "random" }

// Next implements Searcher.
func (s *Random) Next() []Suggestion {
	if s.emitted >= s.n {
		return nil
	}
	count := s.batch
	if s.emitted+count > s.n {
		count = s.n - s.emitted
	}
	out := make([]Suggestion, 0, count)
	for len(out) < count {
		a := s.space.Sample(s.r)
		key := a.Key()
		if s.seen[key] && len(s.seen) < s.space.Size() {
			continue // sample without replacement while possible
		}
		s.seen[key] = true
		out = append(out, Suggestion{ID: s.nextID, Assignment: a, BudgetFrac: 1})
		s.nextID++
	}
	s.emitted += count
	return out
}

// Observe implements Searcher (random search ignores scores).
func (s *Random) Observe([]Report) {}

// ----------------------------------------------------------- hyperband ---

// HyperBand implements Li et al.'s bandit-based search: brackets of
// successive halving over the budget dimension. It is the scheduler the
// paper selects for its evaluation (§6).
type HyperBand struct {
	space  params.Space
	r      *xrand.Source
	eta    float64
	maxR   float64
	nextID int

	brackets []*bracket
	cur      int
	pending  map[int]params.Assignment // suggestions awaiting reports
	scores   map[int]float64
}

type bracket struct {
	// configs still alive in this bracket, with their rung budget.
	configs []params.Assignment
	rung    int
	rungs   int     // total rungs in this bracket
	budget  float64 // current rung budget (epochs fraction of maxR)
}

// NewHyperBand creates a HyperBand searcher. maxResource is the maximum
// per-trial budget R in "units" (full budget = 1.0 emitted as BudgetFrac);
// eta is the halving rate (paper-standard 3).
func NewHyperBand(space params.Space, maxResource int, eta float64, r *xrand.Source) (*HyperBand, error) {
	return NewHyperBandIterations(space, maxResource, eta, 1, r)
}

// NewHyperBandIterations creates a HyperBand searcher that repeats the full
// bracket structure `iterations` times — the "infinite horizon" usage of
// Li et al., and how tuning libraries spend a sample budget larger than one
// bracket sweep (bigger search spaces warrant more iterations).
func NewHyperBandIterations(space params.Space, maxResource int, eta float64, iterations int, r *xrand.Source) (*HyperBand, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if maxResource < 1 {
		return nil, fmt.Errorf("search: hyperband maxResource=%d invalid", maxResource)
	}
	if eta <= 1 {
		return nil, fmt.Errorf("search: hyperband eta=%v invalid", eta)
	}
	if iterations < 1 {
		return nil, fmt.Errorf("search: hyperband iterations=%d invalid", iterations)
	}
	hb := &HyperBand{
		space:   space,
		r:       r,
		eta:     eta,
		maxR:    float64(maxResource),
		pending: make(map[int]params.Assignment),
		scores:  make(map[int]float64),
	}
	sMax := int(math.Floor(math.Log(hb.maxR) / math.Log(eta)))
	for it := 0; it < iterations; it++ {
		for s := sMax; s >= 0; s-- {
			n := int(math.Ceil(float64(sMax+1) / float64(s+1) * math.Pow(eta, float64(s))))
			budget := hb.maxR * math.Pow(eta, -float64(s))
			configs := make([]params.Assignment, n)
			for i := range configs {
				configs[i] = space.Sample(r)
			}
			hb.brackets = append(hb.brackets, &bracket{
				configs: configs,
				rungs:   s + 1,
				budget:  budget,
			})
		}
	}
	return hb, nil
}

// Name implements Searcher.
func (hb *HyperBand) Name() string { return "hyperband" }

// Next implements Searcher.
func (hb *HyperBand) Next() []Suggestion {
	if len(hb.pending) > 0 {
		// Contract violation: Observe must precede the next ask. Returning
		// the pending work again keeps the system live rather than stuck.
		out := make([]Suggestion, 0, len(hb.pending))
		ids := make([]int, 0, len(hb.pending))
		for id := range hb.pending {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			out = append(out, Suggestion{ID: id, Assignment: hb.pending[id], BudgetFrac: hb.curBudgetFrac()})
		}
		return out
	}
	for hb.cur < len(hb.brackets) {
		b := hb.brackets[hb.cur]
		if b.rung >= b.rungs || len(b.configs) == 0 {
			hb.cur++
			continue
		}
		frac := b.budget / hb.maxR
		if frac > 1 {
			frac = 1
		}
		out := make([]Suggestion, 0, len(b.configs))
		for _, cfg := range b.configs {
			hb.pending[hb.nextID] = cfg
			out = append(out, Suggestion{ID: hb.nextID, Assignment: cfg, BudgetFrac: frac})
			hb.nextID++
		}
		return out
	}
	return nil
}

func (hb *HyperBand) curBudgetFrac() float64 {
	if hb.cur >= len(hb.brackets) {
		return 1
	}
	frac := hb.brackets[hb.cur].budget / hb.maxR
	if frac > 1 {
		frac = 1
	}
	return frac
}

// Observe implements Searcher: once all pending reports arrive, the current
// rung closes and the top 1/eta configurations advance with eta× budget.
func (hb *HyperBand) Observe(reports []Report) {
	for _, rep := range reports {
		if _, ok := hb.pending[rep.ID]; ok {
			hb.scores[rep.ID] = rep.Score
		}
	}
	if len(hb.scores) < len(hb.pending) || len(hb.pending) == 0 {
		return
	}
	// Rank the rung.
	type scored struct {
		a params.Assignment
		s float64
	}
	ranked := make([]scored, 0, len(hb.pending))
	ids := make([]int, 0, len(hb.pending))
	for id := range hb.pending {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		ranked = append(ranked, scored{a: hb.pending[id], s: hb.scores[id]})
	}
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].s > ranked[j].s })

	b := hb.brackets[hb.cur]
	keep := int(math.Floor(float64(len(ranked)) / hb.eta))
	if keep < 1 {
		keep = 1
	}
	if b.rung+1 >= b.rungs {
		keep = 0 // bracket finished
	}
	survivors := make([]params.Assignment, 0, keep)
	for i := 0; i < keep; i++ {
		survivors = append(survivors, ranked[i].a)
	}
	b.configs = survivors
	b.rung++
	b.budget *= hb.eta
	hb.pending = make(map[int]params.Assignment)
	hb.scores = make(map[int]float64)
}

// ------------------------------------------------------------- genetic ---

// Genetic runs a (μ+λ)-style evolutionary search with tournament selection,
// uniform crossover and per-dimension mutation.
type Genetic struct {
	space       params.Space
	r           *xrand.Source
	popSize     int
	generations int
	mutationP   float64

	gen     int
	nextID  int
	pending map[int]params.Assignment
	scored  []scoredAssignment
	current []params.Assignment
}

type scoredAssignment struct {
	a params.Assignment
	s float64
}

// NewGenetic creates a genetic searcher.
func NewGenetic(space params.Space, popSize, generations int, r *xrand.Source) (*Genetic, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if popSize < 2 || generations < 1 {
		return nil, fmt.Errorf("search: genetic pop=%d gens=%d invalid", popSize, generations)
	}
	return &Genetic{
		space:       space,
		r:           r,
		popSize:     popSize,
		generations: generations,
		mutationP:   0.2,
		pending:     make(map[int]params.Assignment),
	}, nil
}

// Name implements Searcher.
func (g *Genetic) Name() string { return "genetic" }

// Next implements Searcher.
func (g *Genetic) Next() []Suggestion {
	if g.gen >= g.generations {
		return nil
	}
	if len(g.pending) > 0 {
		return nil // awaiting Observe
	}
	if g.current == nil {
		if g.gen == 0 {
			g.current = make([]params.Assignment, g.popSize)
			for i := range g.current {
				g.current[i] = g.space.Sample(g.r)
			}
		} else {
			g.current = g.breed()
		}
	}
	out := make([]Suggestion, 0, len(g.current))
	for _, a := range g.current {
		g.pending[g.nextID] = a
		out = append(out, Suggestion{ID: g.nextID, Assignment: a, BudgetFrac: 1})
		g.nextID++
	}
	return out
}

// Observe implements Searcher.
func (g *Genetic) Observe(reports []Report) {
	for _, rep := range reports {
		if a, ok := g.pending[rep.ID]; ok {
			g.scored = append(g.scored, scoredAssignment{a: a, s: rep.Score})
			delete(g.pending, rep.ID)
		}
	}
	if len(g.pending) == 0 && g.current != nil {
		g.gen++
		g.current = nil
	}
}

// breed produces the next generation from all scored individuals so far.
func (g *Genetic) breed() []params.Assignment {
	tournament := func() params.Assignment {
		best := g.scored[g.r.Intn(len(g.scored))]
		for k := 0; k < 2; k++ {
			c := g.scored[g.r.Intn(len(g.scored))]
			if c.s > best.s {
				best = c
			}
		}
		return best.a
	}
	next := make([]params.Assignment, g.popSize)
	for i := range next {
		p1, p2 := tournament(), tournament()
		child := make(params.Assignment, len(g.space))
		for _, d := range g.space {
			v := p1[d.Name]
			if g.r.Float64() < 0.5 {
				v = p2[d.Name]
			}
			if g.r.Float64() < g.mutationP {
				v = d.Values[g.r.Intn(len(d.Values))]
			}
			child[d.Name] = v
		}
		next[i] = child
	}
	return next
}

// ------------------------------------------------------------ bayesian ---

// Bayesian is a lightweight surrogate-model searcher: after a random warmup
// it scores a pool of candidate points with a k-nearest-neighbour estimate
// of the objective plus an exploration bonus for sparsely observed regions,
// standing in for the Bayesian gradient optimisation of Figure 7.
type Bayesian struct {
	space   params.Space
	r       *xrand.Source
	n       int
	warmup  int
	batch   int
	nextID  int
	emitted int
	pending map[int]params.Assignment
	history []scoredAssignment
}

// NewBayesian creates a surrogate searcher proposing n points total.
func NewBayesian(space params.Space, n int, r *xrand.Source) (*Bayesian, error) {
	if err := space.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("search: bayesian n=%d invalid", n)
	}
	warmup := n / 3
	if warmup < 2 {
		warmup = 2
	}
	if warmup > n {
		warmup = n
	}
	return &Bayesian{space: space, r: r, n: n, warmup: warmup, batch: 2,
		pending: make(map[int]params.Assignment)}, nil
}

// Name implements Searcher.
func (b *Bayesian) Name() string { return "bayesian" }

// normPoint converts an assignment to a vector of per-dimension value
// indices normalised to [0,1], the surrogate's feature space.
func (b *Bayesian) normPoint(a params.Assignment) []float64 {
	out := make([]float64, len(b.space))
	for i, d := range b.space {
		idx := 0
		for j, v := range d.Values {
			if v == a[d.Name] {
				idx = j
				break
			}
		}
		if len(d.Values) > 1 {
			out[i] = float64(idx) / float64(len(d.Values)-1)
		}
	}
	return out
}

// surrogate estimates a candidate's value from the 3 nearest observations
// plus an exploration bonus proportional to nearest-neighbour distance.
func (b *Bayesian) surrogate(a params.Assignment) float64 {
	p := b.normPoint(a)
	type nd struct {
		d float64
		s float64
	}
	ns := make([]nd, 0, len(b.history))
	for _, h := range b.history {
		q := b.normPoint(h.a)
		d := 0.0
		for i := range p {
			diff := p[i] - q[i]
			d += diff * diff
		}
		ns = append(ns, nd{d: math.Sqrt(d), s: h.s})
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i].d < ns[j].d })
	k := 3
	if k > len(ns) {
		k = len(ns)
	}
	est, minD := 0.0, math.Inf(1)
	for i := 0; i < k; i++ {
		est += ns[i].s
		if ns[i].d < minD {
			minD = ns[i].d
		}
	}
	est /= float64(k)
	return est + 0.3*minD // exploration bonus
}

// Next implements Searcher.
func (b *Bayesian) Next() []Suggestion {
	if b.emitted >= b.n || len(b.pending) > 0 {
		if b.emitted >= b.n {
			return nil
		}
		return nil
	}
	count := b.batch
	if b.emitted < b.warmup {
		count = b.warmup - b.emitted
	}
	if b.emitted+count > b.n {
		count = b.n - b.emitted
	}
	out := make([]Suggestion, 0, count)
	for i := 0; i < count; i++ {
		var choice params.Assignment
		if len(b.history) < 2 {
			choice = b.space.Sample(b.r)
		} else {
			// Pick the best of a random candidate pool per the surrogate.
			best := math.Inf(-1)
			for c := 0; c < 16; c++ {
				cand := b.space.Sample(b.r)
				if s := b.surrogate(cand); s > best {
					best = s
					choice = cand
				}
			}
		}
		b.pending[b.nextID] = choice
		out = append(out, Suggestion{ID: b.nextID, Assignment: choice, BudgetFrac: 1})
		b.nextID++
		b.emitted++
	}
	return out
}

// Observe implements Searcher.
func (b *Bayesian) Observe(reports []Report) {
	for _, rep := range reports {
		if a, ok := b.pending[rep.ID]; ok {
			b.history = append(b.history, scoredAssignment{a: a, s: rep.Score})
			delete(b.pending, rep.ID)
		}
	}
}

// Compile-time interface checks.
var (
	_ Searcher = (*Grid)(nil)
	_ Searcher = (*Random)(nil)
	_ Searcher = (*HyperBand)(nil)
	_ Searcher = (*Genetic)(nil)
	_ Searcher = (*Bayesian)(nil)
)
