// Package httpserve is the shared HTTP daemon lifecycle used by
// cmd/pipetuned and cmd/pdusim: serve until the context is cancelled or
// SIGINT/SIGTERM arrives, then drain in-flight requests through
// http.Server.Shutdown with a bounded timeout. Keeping both daemons on
// this one helper means they stop identically under an orchestrator's
// signal, instead of each hand-rolling (or skipping) shutdown handling.
package httpserve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// DefaultShutdownTimeout bounds the drain when the caller passes 0.
const DefaultShutdownTimeout = 5 * time.Second

// Serve runs srv on ln until ctx is done or SIGINT/SIGTERM arrives, then
// shuts the server down gracefully, waiting at most shutdownTimeout
// (0 = DefaultShutdownTimeout) for in-flight requests to finish. It
// returns nil on a clean shutdown, the serve error if the listener failed
// first, or the shutdown error if draining timed out.
//
// preShutdown hooks run after the stop signal but BEFORE the listener
// closes, each to completion. This is the slot for application drains
// that still need the listener: pipetuned's execution-plane drain lets
// remote workers commit in-flight trials over the still-open work API —
// http.Server.RegisterOnShutdown cannot provide that, because Shutdown
// closes listeners before (and concurrently with) its hooks.
func Serve(ctx context.Context, srv *http.Server, ln net.Listener, shutdownTimeout time.Duration, preShutdown ...func()) error {
	if shutdownTimeout <= 0 {
		shutdownTimeout = DefaultShutdownTimeout
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}
	for _, hook := range preShutdown {
		hook()
	}
	shCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	err := srv.Shutdown(shCtx)
	<-errc // Serve has returned http.ErrServerClosed by now
	return err
}

// Port extracts ":port" from a bound address for copy-pasteable startup
// hints: the raw string of a wildcard bind renders as "[::]:8080", which
// no curl example should suggest.
func Port(addr net.Addr) string {
	if tcp, ok := addr.(*net.TCPAddr); ok {
		return fmt.Sprintf(":%d", tcp.Port)
	}
	return ""
}

// ListenAndServe listens on srv.Addr (":http" when empty) and delegates
// to Serve. onListen, when non-nil, receives the bound address before
// serving starts — daemons use it to print the effective port when the
// user asked for ":0". preShutdown hooks run before the listener closes
// (see Serve).
func ListenAndServe(ctx context.Context, srv *http.Server, shutdownTimeout time.Duration, onListen func(addr net.Addr), preShutdown ...func()) error {
	addr := srv.Addr
	if addr == "" {
		addr = ":http"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if onListen != nil {
		onListen(ln.Addr())
	}
	return Serve(ctx, srv, ln, shutdownTimeout, preShutdown...)
}
