package httpserve

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"
)

// startServe runs Serve on an ephemeral port and returns the base URL and
// a cancel + wait pair.
func startServe(t *testing.T, handler http.Handler) (base string, cancel func(), wait func() error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := context.WithCancel(context.Background())
	srv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- Serve(ctx, srv, ln, 2*time.Second) }()
	return "http://" + ln.Addr().String(), stop, func() error { return <-errc }
}

// TestServeGracefulShutdown verifies the helper serves, then exits nil on
// context cancellation.
func TestServeGracefulShutdown(t *testing.T) {
	base, cancel, wait := startServe(t, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "pong")
	}))
	resp, err := http.Get(base + "/ping")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "pong" {
		t.Fatalf("body = %q", body)
	}
	cancel()
	if err := wait(); err != nil {
		t.Fatalf("graceful shutdown returned %v", err)
	}
}

// TestServeDrainsInFlight starts a slow request, triggers shutdown while
// it is in flight, and checks the request still completes successfully —
// the http.Server.Shutdown drain, not an abrupt close.
func TestServeDrainsInFlight(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	base, cancel, wait := startServe(t, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		close(started)
		<-release
		fmt.Fprint(w, "drained")
	}))

	var (
		wg      sync.WaitGroup
		body    string
		gotErr  error
		gotCode int
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(base + "/slow")
		if err != nil {
			gotErr = err
			return
		}
		defer resp.Body.Close()
		buf, _ := io.ReadAll(resp.Body)
		body, gotCode = string(buf), resp.StatusCode
	}()

	<-started
	cancel() // shutdown begins with the request in flight
	time.Sleep(10 * time.Millisecond)
	close(release)
	if err := wait(); err != nil {
		t.Fatalf("shutdown returned %v", err)
	}
	wg.Wait()
	if gotErr != nil {
		t.Fatalf("in-flight request failed during drain: %v", gotErr)
	}
	if gotCode != http.StatusOK || body != "drained" {
		t.Fatalf("in-flight request got %d %q", gotCode, body)
	}
}

// TestListenAndServeReportsAddr checks the bound-address callback and the
// ":0" flow both daemons rely on for their startup banner.
func TestListenAndServeReportsAddr(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	srv := &http.Server{Addr: "127.0.0.1:0", Handler: http.NewServeMux()}
	got := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- ListenAndServe(ctx, srv, time.Second, func(addr net.Addr) { got <- addr })
	}()
	select {
	case addr := <-got:
		if addr.(*net.TCPAddr).Port == 0 {
			t.Error("callback reported an unbound port")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("onListen never fired")
	}
	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("shutdown returned %v", err)
	}
}

// TestPreShutdownRunsWhileListening pins the preShutdown contract the
// pipetuned execution-plane drain depends on: the hook runs after the
// stop signal but with the listener still accepting — a remote worker
// committing an in-flight trial during the drain must not see
// connection-refused.
func TestPreShutdownRunsWhileListening(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	mux := http.NewServeMux()
	mux.HandleFunc("/commit", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte("committed"))
	})
	srv := &http.Server{Addr: "127.0.0.1:0", Handler: mux}
	got := make(chan net.Addr, 1)
	hookErr := make(chan error, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- ListenAndServe(ctx, srv, time.Second, func(addr net.Addr) { got <- addr }, func() {
			// The drain hook: a round trip against our own server must
			// still succeed.
			addr := srv.Addr
			resp, err := http.Get("http://" + addr + "/commit")
			if err != nil {
				hookErr <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				hookErr <- fmt.Errorf("hook round trip: HTTP %d", resp.StatusCode)
				return
			}
			hookErr <- nil
		})
	}()
	select {
	case addr := <-got:
		srv.Addr = addr.String()
	case <-time.After(5 * time.Second):
		t.Fatal("onListen never fired")
	}
	cancel()
	select {
	case err := <-hookErr:
		if err != nil {
			t.Fatalf("preShutdown hook could not reach the still-open listener: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("preShutdown hook never ran")
	}
	if err := <-errc; err != nil {
		t.Fatalf("shutdown returned %v", err)
	}
}
