package stats

import (
	"math"
	"testing"
	"testing/quick"

	"pipetune/internal/xrand"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"uniform", []float64{2, 2, 2}, 2},
		{"mixed", []float64{1, 2, 3, 4}, 2.5},
		{"negative", []float64{-1, 1}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Mean(tc.in); !almostEqual(got, tc.want, 1e-12) {
				t.Fatalf("Mean(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if got := StdDev([]float64{1}); got != 0 {
		t.Fatalf("StdDev of singleton = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	mn, err := Min(xs)
	if err != nil || mn != -1 {
		t.Fatalf("Min = %v, %v", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 7 {
		t.Fatalf("Max = %v, %v", mx, err)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Fatalf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Fatalf("Max(nil) err = %v, want ErrEmpty", err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5},
	}
	for _, tc := range cases {
		got, err := Percentile(xs, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, tc.want, 1e-12) {
			t.Fatalf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Fatalf("empty percentile err = %v, want ErrEmpty", err)
	}
	// Out-of-range p is clamped.
	got, _ := Percentile(xs, 150)
	if got != 5 {
		t.Fatalf("Percentile(150) = %v, want 5", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Percentile mutated its input: %v", xs)
	}
}

func TestTrapezoid(t *testing.T) {
	// Integral of y = x from 0 to 4 is 8; trapezoid is exact for linear.
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{0, 1, 2, 3, 4}
	got, err := Trapezoid(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 8, 1e-12) {
		t.Fatalf("Trapezoid = %v, want 8", got)
	}
}

func TestTrapezoidConstantPower(t *testing.T) {
	// 100 W held for 60 one-second samples => ~5900 J (59 intervals).
	y := make([]float64, 60)
	for i := range y {
		y[i] = 100
	}
	got := TrapezoidUniform(y, 1)
	if !almostEqual(got, 5900, 1e-9) {
		t.Fatalf("constant power energy = %v, want 5900", got)
	}
}

func TestTrapezoidErrors(t *testing.T) {
	if _, err := Trapezoid([]float64{0, 1}, []float64{1}); err == nil {
		t.Fatal("length mismatch not rejected")
	}
	if _, err := Trapezoid([]float64{1, 0}, []float64{1, 1}); err == nil {
		t.Fatal("decreasing x not rejected")
	}
	got, err := Trapezoid([]float64{1}, []float64{5})
	if err != nil || got != 0 {
		t.Fatalf("single point integral = %v, %v; want 0, nil", got, err)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	r := xrand.New(99)
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 10
		w.Add(xs[i])
	}
	if !almostEqual(w.Mean(), Mean(xs), 1e-9) {
		t.Fatalf("Welford mean %v != batch mean %v", w.Mean(), Mean(xs))
	}
	if !almostEqual(w.StdDev(), StdDev(xs), 1e-9) {
		t.Fatalf("Welford std %v != batch std %v", w.StdDev(), StdDev(xs))
	}
	if w.N() != len(xs) {
		t.Fatalf("Welford N = %d, want %d", w.N(), len(xs))
	}
}

func TestWelfordZeroValue(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.N() != 0 {
		t.Fatal("zero-value Welford not neutral")
	}
}

func TestEuclideanDistance(t *testing.T) {
	d, err := EuclideanDistance([]float64{0, 0}, []float64{3, 4})
	if err != nil || !almostEqual(d, 5, 1e-12) {
		t.Fatalf("distance = %v, %v; want 5", d, err)
	}
	if _, err := EuclideanDistance([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch not rejected")
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	Normalize(xs)
	if !almostEqual(Mean(xs), 0, 1e-12) {
		t.Fatalf("normalized mean = %v", Mean(xs))
	}
	if !almostEqual(StdDev(xs), 1, 1e-12) {
		t.Fatalf("normalized std = %v", StdDev(xs))
	}

	constant := []float64{7, 7, 7}
	Normalize(constant)
	for _, v := range constant {
		if v != 0 {
			t.Fatalf("constant vector normalized to %v, want zeros", constant)
		}
	}
}

func TestLog1pScale(t *testing.T) {
	out := Log1pScale([]float64{0, math.E - 1, -5})
	if !almostEqual(out[0], 0, 1e-12) || !almostEqual(out[1], 1, 1e-12) {
		t.Fatalf("Log1pScale = %v", out)
	}
	if out[2] != 0 {
		t.Fatalf("negative input should clamp to 0, got %v", out[2])
	}
}

func TestRelDiffPercent(t *testing.T) {
	if got := RelDiffPercent(150, 100); !almostEqual(got, 50, 1e-12) {
		t.Fatalf("RelDiffPercent = %v, want 50", got)
	}
	if got := RelDiffPercent(50, 100); !almostEqual(got, -50, 1e-12) {
		t.Fatalf("RelDiffPercent = %v, want -50", got)
	}
	if got := RelDiffPercent(1, 0); got != 0 {
		t.Fatalf("zero baseline = %v, want 0", got)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(200, 100); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("Speedup = %v, want 2", got)
	}
	if got := Speedup(1, 0); !math.IsInf(got, 1) {
		t.Fatalf("Speedup with zero value = %v, want +Inf", got)
	}
}

// Property: mean lies within [min, max] of the sample.
func TestQuickMeanBounded(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e9 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		return m >= mn-1e-6 && m <= mx+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: trapezoid of non-negative samples is non-negative.
func TestQuickTrapezoidSign(t *testing.T) {
	f := func(raw []float64) bool {
		y := make([]float64, len(raw))
		for i, v := range raw {
			y[i] = math.Abs(math.Mod(v, 1e6))
			if math.IsNaN(y[i]) {
				y[i] = 0
			}
		}
		return TrapezoidUniform(y, 1) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Welford matches batch stats for arbitrary bounded inputs.
func TestQuickWelfordConsistent(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
				xs = append(xs, v)
			}
		}
		var w Welford
		for _, x := range xs {
			w.Add(x)
		}
		return almostEqual(w.Mean(), Mean(xs), 1e-6) &&
			almostEqual(w.StdDev(), StdDev(xs), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
