// Package stats provides the small numerical toolkit shared by the
// simulators and the experiment harness: running moments, percentiles,
// trapezoidal integration (used for energy estimation, §3.2 of the paper)
// and simple vector operations used by the profiling pipeline.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by aggregations that are undefined on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs (0 for n < 2).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(n))
}

// Min returns the minimum of xs. It returns ErrEmpty for empty input.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs. It returns ErrEmpty for empty input.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns ErrEmpty for empty input.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Trapezoid integrates y over x using the trapezoidal rule. This is exactly
// the estimator the paper uses for cluster energy: power samples collected
// every second, integrated over the training window. The two slices must
// have equal length; fewer than two points integrate to 0.
func Trapezoid(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, errors.New("stats: trapezoid inputs have different lengths")
	}
	if len(x) < 2 {
		return 0, nil
	}
	total := 0.0
	for i := 1; i < len(x); i++ {
		dx := x[i] - x[i-1]
		if dx < 0 {
			return 0, errors.New("stats: trapezoid x values must be non-decreasing")
		}
		total += dx * (y[i] + y[i-1]) / 2
	}
	return total, nil
}

// TrapezoidUniform integrates evenly spaced samples with spacing dx.
func TrapezoidUniform(y []float64, dx float64) float64 {
	if len(y) < 2 {
		return 0
	}
	total := 0.0
	for i := 1; i < len(y); i++ {
		total += dx * (y[i] + y[i-1]) / 2
	}
	return total
}

// Welford accumulates a running mean and variance in one pass. The zero
// value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations added.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 if no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance (0 if n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// EuclideanDistance returns the L2 distance between equal-length vectors.
func EuclideanDistance(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("stats: vectors have different lengths")
	}
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum), nil
}

// Normalize scales xs in place so that it has zero mean and unit standard
// deviation. Constant vectors are left centred at zero.
func Normalize(xs []float64) {
	m := Mean(xs)
	sd := StdDev(xs)
	for i := range xs {
		xs[i] -= m
		if sd > 0 {
			xs[i] /= sd
		}
	}
}

// Log1pScale maps each value through log1p, compressing the many-orders-of-
// magnitude spread of hardware-counter readings (Figure 2 spans 1e2..1e8)
// before clustering.
func Log1pScale(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if x < 0 {
			x = 0
		}
		out[i] = math.Log1p(x)
	}
	return out
}

// RelDiffPercent returns (value-baseline)/baseline*100, the transformation
// used by Figures 3 and 5 ("difference [%]" against a baseline run).
// A zero baseline yields 0 to keep plots well-defined.
func RelDiffPercent(value, baseline float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (value - baseline) / baseline * 100
}

// Speedup returns baseline/value (how many times faster value is than the
// baseline). A zero value yields +Inf, matching the intuitive reading.
func Speedup(baseline, value float64) float64 {
	if value == 0 {
		return math.Inf(1)
	}
	return baseline / value
}
