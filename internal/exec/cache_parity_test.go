package exec

import (
	"context"
	"encoding/json"
	"testing"

	"pipetune/internal/params"
	"pipetune/internal/trainer"
	"pipetune/internal/workload"
)

// cachedSmallTrainer is smallTrainer with a trial prefix cache attached —
// the daemon-side shape when pipetuned runs with -trial-cache.
func cachedSmallTrainer() *trainer.Runner {
	tr := smallTrainer()
	tr.Cache = trainer.NewTrialCache(0)
	return tr
}

// TestCacheCrossWireCatalogParity is the execution-plane half of the
// cache's bit-identity guarantee: with the trial prefix cache enabled —
// daemon-derived CacheKey on every trial, CacheBytes in the shipped
// TrainerConfig so workers keep warm worker-local caches — the local
// backend, the JSON fleet and the binary fleet must all reproduce the
// uncached local results byte for byte across the Table 3 catalog. Every
// workload appears twice (same prefix, different system configuration:
// the sys-sweep replay shape), so the second trial exercises a cache hit
// on whichever process trained the first.
func TestCacheCrossWireCatalogParity(t *testing.T) {
	if testing.Short() {
		t.Skip("catalog parity runs full trial compute; CI races it in the execution-plane step")
	}
	cat := workload.Catalog()
	trialsFor := func(tr *trainer.Runner) []Trial {
		h := params.DefaultHyper()
		h.Epochs = 2
		out := make([]Trial, 0, 2*len(cat))
		for i, w := range cat {
			first := Trial{
				ID: i, Workload: w, Hyper: h, Sys: params.DefaultSysConfig(),
				Seed: uint64(7000 + i), Trainer: CaptureTrainerConfig(tr),
			}
			if tr.Cache != nil {
				first.CacheKey = tr.PrefixKey(w, h, first.Seed)
			}
			second := first
			second.ID = i + len(cat)
			second.Sys = params.SysConfig{Cores: 16, MemoryGB: 32}
			out = append(out, first, second)
		}
		return out
	}
	run := func(b Backend, tr *trainer.Runner) []string {
		trials := trialsFor(tr)
		res, errs := b.Run(context.Background(), trials, 2)
		out := make([]string, len(res))
		for i, err := range errs {
			if err != nil {
				t.Fatalf("%s trial %d (%s): %v", b.Name(), i, trials[i].Workload.Name(), err)
			}
			bts, err := json.Marshal(res[i])
			if err != nil {
				t.Fatal(err)
			}
			out[i] = string(bts)
		}
		return out
	}

	plain := run(NewLocal(smallTrainer()), smallTrainer())

	localCached := cachedSmallTrainer()
	gotLocal := run(NewLocal(localCached), localCached)

	jsonDaemon := cachedSmallTrainer()
	jsonFleet, _ := startFleet(t, 2, RemoteConfig{Wire: WireJSON})
	gotJSON := run(jsonFleet, jsonDaemon)

	binDaemon := cachedSmallTrainer()
	binFleet, _ := startFleet(t, 2, RemoteConfig{Wire: WireBinary})
	gotBin := run(binFleet, binDaemon)

	for i := range plain {
		w := cat[i/2%len(cat)]
		if gotLocal[i] != plain[i] {
			t.Errorf("trial %d (%s): cached local diverges from uncached", i, w.Name())
		}
		if gotJSON[i] != plain[i] {
			t.Errorf("trial %d (%s): cached json wire diverges from uncached local", i, w.Name())
		}
		if gotBin[i] != plain[i] {
			t.Errorf("trial %d (%s): cached binary wire diverges from uncached local", i, w.Name())
		}
	}
	// The local cache must have actually been exercised: each workload's
	// second trial replays (or waits on) its first.
	st := localCached.Cache.Stats()
	if st.TrajectoryHits+st.FlightHits == 0 {
		t.Fatalf("local cached run recorded no reuse: %+v", st)
	}
}
