package exec

// This file is the binary work protocol's codec: the frame discipline and
// the per-message encodings exchanged over one persistent stream between
// the daemon's Remote backend and a pipetune-worker agent (the stream
// halves live in stream.go and streamagent.go).
//
// Framing reuses the discipline of internal/gt's write-ahead log, but on
// the wire instead of on disk:
//
//	frame := [1 byte type]
//	         [uint32 payload length (LE)]
//	         [uint32 CRC-32 (IEEE) of the payload]
//	         [payload]
//
// A torn or bit-flipped frame is detected by the length/CRC header before
// any payload field is decoded; the receiver treats it as a dead peer
// (the daemon evicts the worker and requeues its leases — the same
// recovery path a crashed worker takes), never as data.
//
// Encoding is deliberately allocation-free on the hot path: fixed-width
// little-endian integers and IEEE-754 bit patterns, unsigned varints for
// small counts, length-prefixed strings — appended field by field into a
// pooled buffer. No reflection, no intermediate maps, no encoding/json.
// Floats travel as raw bit patterns, so a decoded value is the encoded
// value, bit for bit — the cross-wire parity suite depends on it.
//
// Results are delta-encoded against state both ends already share. The
// daemon holds the lease's trial (workload, hyperparameters, starting
// system configuration), so a committed result ships none of them; and
// the trainer's own arithmetic is replayed instead of shipped where it is
// exactly reproducible: per-epoch EndTime is the running sum of
// durations, the result's Duration is the final clock, EnergyJ the sum of
// epoch energies, Accuracy the last train epoch's accuracy — all
// recomputed on decode with the same float64 operations in the same
// order, hence bit-identical. Each epoch's system configuration is
// encoded only when it differs from the previous epoch's (a mid-trial
// switch by the pipelined tuner), one flag bit otherwise.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"pipetune/internal/metrics"
	"pipetune/internal/params"
	"pipetune/internal/perf"
	"pipetune/internal/trainer"
	"pipetune/internal/workload"
)

// Wire kinds selectable on pipetuned (-exec-wire) and pipetune-worker
// (-wire). The binary stream is the default in both commands; JSON is the
// long-poll compatibility wire. An empty RemoteConfig.Wire mounts both,
// so mixed fleets (and the cross-wire parity suite) can share one daemon.
const (
	WireJSON   = "json"
	WireBinary = "binary"
)

// streamUpgradeProto names the protocol in the HTTP Upgrade handshake
// that turns POST /v1/stream into a raw framed stream.
const streamUpgradeProto = "pipetune-stream/1"

// streamMagic opens the stream right after the HTTP 101: a peer that is
// not speaking this protocol is detected before the first frame.
const streamMagic = "PTEXSTR1"

// Frame types. Directionality is fixed per type; an unexpected type is a
// protocol error and kills the stream.
const (
	frameHello     byte = iota + 1 // worker → daemon: name, capacity
	frameWelcome                   // daemon → worker: worker id, heartbeat cadence
	frameHeartbeat                 // worker → daemon: liveness (empty payload)
	frameGrant                     // daemon → worker: batch of lease assignments
	frameEpoch                     // worker → daemon: one epoch-boundary observation
	frameDirective                 // daemon → worker: the observer's reply to an epoch
	frameComplete                  // worker → daemon: at-most-once result commit
	frameAck                       // daemon → worker: commit outcome
	frameDrain                     // daemon → worker: plane draining, no further grants
	frameStats                     // worker → daemon: cumulative telemetry snapshot (piggybacks heartbeats)
)

// Ack codes.
const (
	ackCommitted  byte = iota // result accepted (or abandonment requeued)
	ackSuperseded             // lease revoked/reassigned: the result was discarded
	ackUnknown                // worker evicted: re-register
)

// Complete statuses.
const (
	completeOK        byte = iota // payload carries a delta-encoded result
	completeError                 // payload carries the trial's error string
	completeAbandoned             // worker cannot finish; requeue now
)

// frameHeaderLen is the fixed frame header size: type + length + CRC.
const frameHeaderLen = 1 + 4 + 4

// maxFramePayload bounds one frame so a corrupted length prefix cannot
// ask the receiver to allocate gigabytes (the WAL's walMaxRecord, on the
// wire).
const maxFramePayload = 16 << 20

// errFrameCorrupt reports a frame that failed the length/CRC discipline
// or a payload that failed structural decoding. It is terminal for the
// stream: the receiver treats the peer as dead.
var errFrameCorrupt = errors.New("exec: corrupt stream frame")

// readFrame reads one frame, reusing *scratch as the payload buffer
// (grown as needed, never shrunk — steady state reads allocate nothing).
// The returned payload aliases *scratch and is valid until the next call.
func readFrame(r io.Reader, scratch *[]byte) (ft byte, payload []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err // clean EOF between frames = peer gone
	}
	ft = hdr[0]
	n := binary.LittleEndian.Uint32(hdr[1:5])
	crc := binary.LittleEndian.Uint32(hdr[5:9])
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("%w: implausible payload length %d", errFrameCorrupt, n)
	}
	if cap(*scratch) < int(n) {
		*scratch = make([]byte, n)
	}
	payload = (*scratch)[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: torn payload: %v", errFrameCorrupt, err)
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return 0, nil, fmt.Errorf("%w: checksum mismatch", errFrameCorrupt)
	}
	return ft, payload, nil
}

// streamWriteTimeout bounds every frame write: a peer that stopped
// reading (silent NAT drop, wedged process) fills the socket buffer and
// would otherwise block the sender forever — the deadline turns that
// into a session-ending error, which the liveness protocol handles.
const streamWriteTimeout = 30 * time.Second

// frameWriter frames and writes messages onto one connection. Safe for
// concurrent use (the daemon's granter and reader both send); each frame
// goes out in a single Write so frames never interleave.
type frameWriter struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte // reused header+payload assembly; grown, never shrunk
	// txFrames/txBytes, when set (daemon side), count sent traffic.
	// Nil-safe no-ops otherwise.
	txFrames *metrics.Counter
	txBytes  *metrics.Counter
}

func (fw *frameWriter) send(ft byte, payload []byte) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if c, ok := fw.w.(net.Conn); ok {
		_ = c.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
	}
	need := frameHeaderLen + len(payload)
	if cap(fw.buf) < need {
		fw.buf = make([]byte, need)
	}
	b := fw.buf[:need]
	b[0] = ft
	binary.LittleEndian.PutUint32(b[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[5:9], crc32.ChecksumIEEE(payload))
	copy(b[frameHeaderLen:], payload)
	_, err := fw.w.Write(b)
	if err == nil {
		fw.txFrames.Inc()
		fw.txBytes.Add(uint64(need))
	}
	return err
}

// wirebuf is the pooled encode buffer: payloads are appended field by
// field, handed to frameWriter.send, and the buffer returned to the pool.
type wirebuf struct{ b []byte }

var wirebufPool = sync.Pool{New: func() any { return &wirebuf{b: make([]byte, 0, 4096)} }}

func getWirebuf() *wirebuf {
	w := wirebufPool.Get().(*wirebuf)
	w.b = w.b[:0]
	return w
}

func putWirebuf(w *wirebuf) { wirebufPool.Put(w) }

func (w *wirebuf) u8(v byte) { w.b = append(w.b, v) }
func (w *wirebuf) u64(v uint64) {
	w.b = binary.LittleEndian.AppendUint64(w.b, v)
}
func (w *wirebuf) uvarint(v uint64) { w.b = binary.AppendUvarint(w.b, v) }
func (w *wirebuf) f64(v float64)    { w.u64(math.Float64bits(v)) }
func (w *wirebuf) str(s string) {
	w.uvarint(uint64(len(s)))
	w.b = append(w.b, s...)
}

// wireReader decodes a frame payload field by field. The first structural
// failure (overrun, oversized varint) latches err; subsequent reads
// return zeros, so decoders can read unconditionally and check once.
type wireReader struct {
	b   []byte
	off int
	err error
}

func (r *wireReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", errFrameCorrupt, what)
	}
}

func (r *wireReader) u8() byte {
	if r.err != nil || r.off >= len(r.b) {
		r.fail("truncated u8")
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *wireReader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail("truncated u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *wireReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *wireReader) f64() float64 { return math.Float64frombits(r.u64()) }

// strView returns the string's bytes as a view into the payload — no
// allocation; valid only while the frame buffer is.
func (r *wireReader) strView() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail("truncated string")
		return nil
	}
	v := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return v
}

func (r *wireReader) str() string { return string(r.strView()) }

// count reads a length prefix and sanity-bounds it by the bytes left:
// each counted element needs at least min bytes, so a corrupted count
// cannot drive a huge preallocation.
func (r *wireReader) count(min int) int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if n > uint64((len(r.b)-r.off)/min+1) {
		r.fail("implausible element count")
		return 0
	}
	return int(n)
}

// finish requires the payload to be fully and exactly consumed: trailing
// bytes mean a framing bug or corruption that happened to pass the CRC of
// a shorter message — never silently accepted.
func (r *wireReader) finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d trailing bytes", errFrameCorrupt, len(r.b)-r.off)
	}
	return nil
}

// --- Hello / Welcome -------------------------------------------------

// codecVersion is the stream codec layout version, carried in Hello.
// Version 2 added the trainer cache budget and the prefix-cache key hint
// to assignments; version 3 the preferred node class; version 4 the
// trainer's kernel parallelism degree — all incompatible grant layout
// changes.
const codecVersion = 4

func encodeHello(w *wirebuf, name string, capacity int) {
	w.u8(codecVersion) // bumped only on incompatible layout changes
	w.str(name)
	w.uvarint(uint64(capacity))
}

func decodeHello(p []byte) (name string, capacity int, err error) {
	r := wireReader{b: p}
	if v := r.u8(); v != codecVersion && r.err == nil {
		return "", 0, fmt.Errorf("%w: unsupported codec version %d", errFrameCorrupt, v)
	}
	name = r.str()
	capacity = int(r.uvarint())
	return name, capacity, r.finish()
}

func encodeWelcome(w *wirebuf, resp RegisterResponse) {
	w.str(resp.WorkerID)
	w.f64(resp.HeartbeatSeconds)
	w.f64(resp.LeaseWaitSeconds)
}

func decodeWelcome(p []byte) (RegisterResponse, error) {
	r := wireReader{b: p}
	resp := RegisterResponse{
		WorkerID:         r.str(),
		HeartbeatSeconds: r.f64(),
		LeaseWaitSeconds: r.f64(),
	}
	return resp, r.finish()
}

// --- Grant -----------------------------------------------------------

// assignment flag bits.
const asgStreamEpochs = 1 << 0

// appendAssignment encodes one lease grant. Called by the daemon's
// granter under the backend lock; reads only fields that are immutable
// while the lease is assigned.
func appendAssignment(w *wirebuf, leaseID string, attempt int, t *Trial) {
	w.str(leaseID)
	w.uvarint(uint64(attempt))
	w.uvarint(uint64(t.ID))
	w.u8(byte(t.Workload.Model))
	w.u8(byte(t.Workload.Dataset))
	appendHyper(w, t.Hyper)
	appendSys(w, t.Sys)
	w.u64(t.Seed)
	var flags byte
	if t.Observer != nil {
		flags |= asgStreamEpochs
	}
	w.u8(flags)
	w.uvarint(uint64(t.Trainer.TrainSize))
	w.uvarint(uint64(t.Trainer.TestSize))
	w.f64(t.Trainer.Load)
	w.u64(t.Trainer.DataSeed)
	w.uvarint(uint64(t.Trainer.CacheBytes))
	w.uvarint(uint64(t.Trainer.Parallelism))
	w.str(t.CacheKey)
	w.str(t.Class)
}

func readAssignment(r *wireReader, asg *Assignment) {
	asg.LeaseID = r.str()
	asg.Attempt = int(r.uvarint())
	asg.TrialID = int(r.uvarint())
	asg.Workload = workload.Workload{Model: workload.Model(r.u8()), Dataset: workload.Dataset(r.u8())}
	asg.Hyper = readHyper(r)
	asg.Sys = readSys(r)
	asg.Seed = r.u64()
	asg.StreamEpochs = r.u8()&asgStreamEpochs != 0
	asg.Trainer = TrainerConfig{
		TrainSize: int(r.uvarint()),
		TestSize:  int(r.uvarint()),
		Load:      r.f64(),
		DataSeed:  r.u64(),
	}
	asg.Trainer.CacheBytes = int64(r.uvarint())
	asg.Trainer.Parallelism = int(r.uvarint())
	asg.CacheKey = r.str()
	asg.Class = r.str()
}

// decodeGrant decodes a batch of assignments.
func decodeGrant(p []byte) ([]Assignment, error) {
	r := wireReader{b: p}
	n := r.count(40) // a minimal assignment is well past 40 bytes
	asgs := make([]Assignment, n)
	for i := 0; i < n && r.err == nil; i++ {
		readAssignment(&r, &asgs[i])
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return asgs, nil
}

func appendHyper(w *wirebuf, h params.Hyper) {
	w.uvarint(uint64(h.BatchSize))
	w.f64(h.LearningRate)
	w.f64(h.Dropout)
	w.uvarint(uint64(h.EmbeddingDim))
	w.uvarint(uint64(h.Epochs))
}

func readHyper(r *wireReader) params.Hyper {
	return params.Hyper{
		BatchSize:    int(r.uvarint()),
		LearningRate: r.f64(),
		Dropout:      r.f64(),
		EmbeddingDim: int(r.uvarint()),
		Epochs:       int(r.uvarint()),
	}
}

func appendSys(w *wirebuf, s params.SysConfig) {
	w.uvarint(uint64(s.Cores))
	w.uvarint(uint64(s.MemoryGB))
}

func readSys(r *wireReader) params.SysConfig {
	return params.SysConfig{Cores: int(r.uvarint()), MemoryGB: int(r.uvarint())}
}

// --- Epoch / Directive -----------------------------------------------

// epoch flag bits.
const (
	epInit       = 1 << 0
	epSysChanged = 1 << 1 // result delta only: sys differs from previous epoch
)

// encodeEpochFrame encodes one standalone epoch-boundary observation
// (pipelined tuning's mid-trial feedback). Unlike epochs inside a result
// delta, a standalone observation carries its fields in full — it is the
// first news the daemon has of this epoch.
func encodeEpochFrame(w *wirebuf, leaseID string, attempt int, s *trainer.EpochStats) {
	w.str(leaseID)
	w.uvarint(uint64(attempt))
	w.uvarint(uint64(s.Epoch))
	var flags byte
	if s.Init {
		flags |= epInit
	}
	w.u8(flags)
	appendSys(w, s.Sys)
	w.f64(s.Duration)
	w.f64(s.EndTime)
	w.f64(s.TrainLoss)
	w.f64(s.Accuracy)
	w.f64(s.EnergyJ)
	appendProfile(w, s.Profile)
}

// decodeEpochFrame decodes an observation. The lease id is returned as a
// payload view (valid until the next read); the profile is freshly
// allocated because the daemon-side observer retains it.
func decodeEpochFrame(p []byte) (leaseID []byte, attempt int, s trainer.EpochStats, err error) {
	r := wireReader{b: p}
	leaseID = r.strView()
	attempt = int(r.uvarint())
	s.Epoch = int(r.uvarint())
	s.Init = r.u8()&epInit != 0
	s.Sys = readSys(&r)
	s.Duration = r.f64()
	s.EndTime = r.f64()
	s.TrainLoss = r.f64()
	s.Accuracy = r.f64()
	s.EnergyJ = r.f64()
	s.Profile = readProfile(&r)
	return leaseID, attempt, s, r.finish()
}

func appendProfile(w *wirebuf, p perf.Profile) {
	w.uvarint(uint64(len(p)))
	for _, v := range p {
		w.f64(v)
	}
}

func readProfile(r *wireReader) perf.Profile {
	n := r.count(8)
	if n == 0 {
		return nil // preserve nil-ness: an absent profile stays absent
	}
	p := make(perf.Profile, n)
	for i := range p {
		p[i] = r.f64()
	}
	return p
}

// directive flag bits.
const (
	dirRevoked = 1 << 0
	dirHasSys  = 1 << 1
)

func encodeDirective(w *wirebuf, leaseID []byte, attempt, epoch int, d EpochDirective) {
	w.uvarint(uint64(len(leaseID)))
	w.b = append(w.b, leaseID...)
	w.uvarint(uint64(attempt))
	w.uvarint(uint64(epoch))
	var flags byte
	if d.Revoked {
		flags |= dirRevoked
	}
	if d.Sys != nil {
		flags |= dirHasSys
	}
	w.u8(flags)
	if d.Sys != nil {
		appendSys(w, *d.Sys)
	}
}

func decodeDirective(p []byte) (leaseID []byte, attempt, epoch int, d EpochDirective, err error) {
	r := wireReader{b: p}
	leaseID = r.strView()
	attempt = int(r.uvarint())
	epoch = int(r.uvarint())
	flags := r.u8()
	d.Revoked = flags&dirRevoked != 0
	if flags&dirHasSys != 0 {
		sys := readSys(&r)
		d.Sys = &sys
	}
	return leaseID, attempt, epoch, d, r.finish()
}

// --- Complete / Ack --------------------------------------------------

// encodeComplete encodes the at-most-once result commit. baseSys is the
// assignment's starting system configuration — the delta baseline both
// ends share.
func encodeComplete(w *wirebuf, leaseID string, attempt int, status byte, errMsg string, res *trainer.Result, baseSys params.SysConfig) {
	w.str(leaseID)
	w.uvarint(uint64(attempt))
	w.u8(status)
	switch status {
	case completeError:
		w.str(errMsg)
	case completeOK:
		appendResultDelta(w, res, baseSys)
	}
}

// decodeComplete decodes a commit. For completeOK the result is
// reconstructed against the lease's trial (wl, hy, baseSys) — see
// decodeResultDelta for the replayed arithmetic.
func decodeComplete(p []byte, wl workload.Workload, hy params.Hyper, baseSys params.SysConfig) (leaseID []byte, attempt int, status byte, errMsg string, res *trainer.Result, err error) {
	r := wireReader{b: p}
	leaseID = r.strView()
	attempt = int(r.uvarint())
	status = r.u8()
	switch status {
	case completeError:
		errMsg = r.str()
	case completeOK:
		res = readResultDelta(&r, wl, hy, baseSys)
	case completeAbandoned:
	default:
		r.fail("unknown complete status")
	}
	return leaseID, attempt, status, errMsg, res, r.finish()
}

// completeHeader peeks just the lease id of a complete frame so the
// daemon can look the lease's trial up before the full decode.
func completeHeader(p []byte) (leaseID []byte, err error) {
	r := wireReader{b: p}
	leaseID = r.strView()
	return leaseID, r.err
}

// appendResultDelta ships only what the daemon cannot recompute:
// FinalSys, and per epoch the flags, a sys config when it changed,
// duration, loss, accuracy, energy and the PMU profile. Workload, Hyper,
// EndTime, total Duration, total EnergyJ and final Accuracy are all
// reconstructed from the lease and the epoch stream (see file comment).
func appendResultDelta(w *wirebuf, res *trainer.Result, baseSys params.SysConfig) {
	appendSys(w, res.FinalSys)
	w.uvarint(uint64(len(res.Epochs)))
	prev := baseSys
	for i := range res.Epochs {
		e := &res.Epochs[i]
		var flags byte
		if e.Init {
			flags |= epInit
		}
		if e.Sys != prev {
			flags |= epSysChanged
		}
		w.u8(flags)
		w.uvarint(uint64(e.Epoch))
		if e.Sys != prev {
			appendSys(w, e.Sys)
			prev = e.Sys
		}
		w.f64(e.Duration)
		w.f64(e.TrainLoss)
		w.f64(e.Accuracy)
		w.f64(e.EnergyJ)
		appendProfile(w, e.Profile)
	}
}

// readResultDelta rebuilds the full trainer.Result, replaying the
// trainer's own accumulation arithmetic (clock += duration; energy +=
// epoch energy; accuracy = last train epoch's) with the same float64
// operations in the same order, so the decoded result is bit-identical
// to the worker's.
func readResultDelta(r *wireReader, wl workload.Workload, hy params.Hyper, baseSys params.SysConfig) *trainer.Result {
	res := &trainer.Result{Workload: wl, Hyper: hy, FinalSys: readSys(r)}
	n := r.count(30) // a minimal epoch (no sys, empty profile) is ~40 bytes
	if n == 0 {
		return res
	}
	res.Epochs = make([]trainer.EpochStats, n)
	prev := baseSys
	clock := 0.0
	for i := 0; i < n && r.err == nil; i++ {
		e := &res.Epochs[i]
		flags := r.u8()
		e.Init = flags&epInit != 0
		e.Epoch = int(r.uvarint())
		if flags&epSysChanged != 0 {
			prev = readSys(r)
		}
		e.Sys = prev
		e.Duration = r.f64()
		clock += e.Duration
		e.EndTime = clock
		e.TrainLoss = r.f64()
		e.Accuracy = r.f64()
		e.EnergyJ = r.f64()
		e.Profile = readProfile(r)
		res.EnergyJ += e.EnergyJ
		if !e.Init {
			res.Accuracy = e.Accuracy
		}
	}
	res.Duration = clock
	return res
}

func encodeAck(w *wirebuf, leaseID []byte, attempt int, code byte) {
	w.uvarint(uint64(len(leaseID)))
	w.b = append(w.b, leaseID...)
	w.uvarint(uint64(attempt))
	w.u8(code)
}

func decodeAck(p []byte) (leaseID []byte, attempt int, code byte, err error) {
	r := wireReader{b: p}
	leaseID = r.strView()
	attempt = int(r.uvarint())
	code = r.u8()
	return leaseID, attempt, code, r.finish()
}

// --- Stats (heartbeat-piggybacked worker telemetry) ------------------
//
// The payload is a cumulative WorkerSeries snapshot: four counters, then
// three sketches (trial seconds, train-epoch seconds, eval seconds),
// each as count/sum/min/max plus only its occupied buckets as (index,
// count) pairs. A worker's sketches span a handful of octaves in
// practice, so the frame stays within tens of bytes. Version 2 added the
// kernel latency sketches.

const statsCodecVersion = 2

func appendSketch(w *wirebuf, s metrics.DistSnapshot) {
	w.uvarint(s.Count)
	w.f64(s.Sum)
	w.f64(s.Min)
	w.f64(s.Max)
	w.uvarint(uint64(len(s.Buckets)))
	for _, b := range s.Buckets {
		w.uvarint(uint64(b.Index))
		w.uvarint(b.Count)
	}
}

func readSketch(r *wireReader, s *metrics.DistSnapshot) {
	s.Count = r.uvarint()
	s.Sum = r.f64()
	s.Min = r.f64()
	s.Max = r.f64()
	n := r.count(2)
	for i := 0; i < n && r.err == nil; i++ {
		s.Buckets = append(s.Buckets, metrics.BucketCount{
			Index: int(r.uvarint()),
			Count: r.uvarint(),
		})
	}
}

func encodeStats(w *wirebuf, s WorkerSeries) {
	w.u8(statsCodecVersion)
	w.uvarint(s.Trials)
	w.uvarint(s.Epochs)
	w.uvarint(s.EncodeErrors)
	w.uvarint(s.DecodeErrors)
	appendSketch(w, s.TrialSeconds)
	appendSketch(w, s.TrainEpochSeconds)
	appendSketch(w, s.EvalSeconds)
}

func decodeStats(p []byte) (WorkerSeries, error) {
	r := wireReader{b: p}
	if v := r.u8(); r.err == nil && v != statsCodecVersion {
		return WorkerSeries{}, fmt.Errorf("%w: unsupported stats version %d", errFrameCorrupt, v)
	}
	var s WorkerSeries
	s.Trials = r.uvarint()
	s.Epochs = r.uvarint()
	s.EncodeErrors = r.uvarint()
	s.DecodeErrors = r.uvarint()
	readSketch(&r, &s.TrialSeconds)
	readSketch(&r, &s.TrainEpochSeconds)
	readSketch(&r, &s.EvalSeconds)
	return s, r.finish()
}
