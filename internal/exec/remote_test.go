package exec

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pipetune/internal/params"
	"pipetune/internal/trainer"
	"pipetune/internal/workload"
)

// testClock is an injectable clock so eviction tests need no sleeping.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func newTestClock() *testClock { return &testClock{now: time.Unix(1000, 0)} }

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// newTestRemote builds a backend on a fake clock with fast polling.
func newTestRemote(t *testing.T, clock *testClock) *Remote {
	t.Helper()
	cfg := RemoteConfig{
		HeartbeatInterval: 50 * time.Millisecond,
		MissedHeartbeats:  3,
		LeaseWait:         20 * time.Millisecond,
	}
	if clock != nil {
		cfg.now = clock.Now
	}
	r := NewRemote(cfg)
	t.Cleanup(r.Close)
	return r
}

// fakeResult fabricates a completed trial body.
func fakeResult(d float64) *trainer.Result {
	return &trainer.Result{
		Workload: workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST},
		Accuracy: 0.5,
		Duration: d,
		Epochs: []trainer.EpochStats{
			{Epoch: 0, Init: true, Duration: d / 2, EndTime: d / 2},
			{Epoch: 1, Duration: d / 2, EndTime: d},
		},
	}
}

func mkTrials(n int) []Trial {
	out := make([]Trial, n)
	for i := range out {
		out[i] = Trial{
			ID:       i,
			Workload: workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST},
			Hyper:    params.DefaultHyper(),
			Sys:      params.DefaultSysConfig(),
			Seed:     uint64(i + 1),
		}
	}
	return out
}

// runAsync starts Run in the background and returns a channel with its
// outcome.
type runOutcome struct {
	results []*trainer.Result
	errs    []error
}

func runAsync(ctx context.Context, r *Remote, trials []Trial) <-chan runOutcome {
	ch := make(chan runOutcome, 1)
	go func() {
		res, errs := r.Run(ctx, trials, 0)
		ch <- runOutcome{res, errs}
	}()
	return ch
}

// lease pulls the next assignment, failing the test on error.
func leaseOne(t *testing.T, r *Remote, workerID string) *Assignment {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		asg, err := r.NextLease(workerID, 20*time.Millisecond)
		if err != nil {
			t.Fatalf("NextLease(%s): %v", workerID, err)
		}
		if asg != nil {
			return asg
		}
	}
	t.Fatalf("NextLease(%s): no assignment before deadline", workerID)
	return nil
}

func register(t *testing.T, r *Remote, name string, capacity int) RegisterResponse {
	t.Helper()
	reg, err := r.Register(RegisterRequest{Name: name, Capacity: capacity})
	if err != nil {
		t.Fatalf("register %s: %v", name, err)
	}
	return reg
}

func TestRemoteLeaseLifecycle(t *testing.T) {
	r := newTestRemote(t, nil)
	done := runAsync(context.Background(), r, mkTrials(2))

	w := register(t, r, "w1", 1)
	for i := 0; i < 2; i++ {
		asg := leaseOne(t, r, w.WorkerID)
		if asg.Attempt != 1 {
			t.Fatalf("fresh lease attempt = %d, want 1", asg.Attempt)
		}
		if err := r.Complete(w.WorkerID, asg.LeaseID, CompleteRequest{
			Attempt: asg.Attempt, Result: fakeResult(float64(asg.TrialID + 1)),
		}); err != nil {
			t.Fatalf("complete %s: %v", asg.LeaseID, err)
		}
	}
	out := <-done
	for i, err := range out.errs {
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
	}
	for i, res := range out.results {
		if res == nil || res.Duration != float64(i+1) {
			t.Fatalf("trial %d result = %+v, want duration %d", i, res, i+1)
		}
	}
	fs := r.Fleet()
	if fs.CompletedTrials != 2 || fs.PendingTrials != 0 || fs.LeasedTrials != 0 {
		t.Fatalf("fleet after completion: %+v", fs)
	}
}

// TestRemoteCapacityBound pins that a worker never holds more leases
// than its capacity.
func TestRemoteCapacityBound(t *testing.T) {
	r := newTestRemote(t, nil)
	done := runAsync(context.Background(), r, mkTrials(3))

	w := register(t, r, "w1", 2)
	a1 := leaseOne(t, r, w.WorkerID)
	a2 := leaseOne(t, r, w.WorkerID)
	if asg, err := r.NextLease(w.WorkerID, time.Millisecond); err != nil || asg != nil {
		t.Fatalf("third lease on capacity-2 worker: asg=%v err=%v, want none", asg, err)
	}
	for _, asg := range []*Assignment{a1, a2} {
		if err := r.Complete(w.WorkerID, asg.LeaseID, CompleteRequest{Attempt: asg.Attempt, Result: fakeResult(1)}); err != nil {
			t.Fatal(err)
		}
	}
	a3 := leaseOne(t, r, w.WorkerID)
	if err := r.Complete(w.WorkerID, a3.LeaseID, CompleteRequest{Attempt: a3.Attempt, Result: fakeResult(1)}); err != nil {
		t.Fatal(err)
	}
	<-done
}

// TestRemoteEvictionRequeuesMidTrial is the worker-crash regression: a
// worker leases a trial, goes silent mid-trial, is evicted after K
// missed heartbeats, the lease is requeued (observer state reset), a
// second worker completes it, and the job gets the right result. The
// dead worker's late commit is rejected — at-most-once.
func TestRemoteEvictionRequeuesMidTrial(t *testing.T) {
	clock := newTestClock()
	r := newTestRemote(t, clock)

	resets := 0
	trials := mkTrials(1)
	trials[0].Restart = func() { resets++ }
	done := runAsync(context.Background(), r, trials)

	w1 := register(t, r, "dies", 1)
	asg1 := leaseOne(t, r, w1.WorkerID)

	// w1 goes silent: three missed 50ms heartbeats pass on the fake
	// clock, and the next reaper scan evicts it.
	clock.Advance(200 * time.Millisecond)
	r.evictStale()
	fs := r.Fleet()
	if len(fs.Workers) != 1 || fs.Workers[0].State != "evicted" {
		t.Fatalf("worker not evicted: %+v", fs.Workers)
	}
	if fs.RequeuedTrials != 1 || fs.PendingTrials != 1 {
		t.Fatalf("lease not requeued: %+v", fs)
	}
	if resets != 1 {
		t.Fatalf("observer restart hooks run %d times, want 1", resets)
	}

	// The replacement picks the lease up at the next attempt.
	w2 := register(t, r, "survives", 1)
	asg2 := leaseOne(t, r, w2.WorkerID)
	if asg2.LeaseID != asg1.LeaseID || asg2.Attempt != 2 {
		t.Fatalf("requeued lease = %s attempt %d, want %s attempt 2", asg2.LeaseID, asg2.Attempt, asg1.LeaseID)
	}

	// The dead worker wakes up and tries to commit its stale copy.
	if err := r.Complete(w1.WorkerID, asg1.LeaseID, CompleteRequest{Attempt: asg1.Attempt, Result: fakeResult(99)}); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("evicted worker's commit: %v, want ErrUnknownWorker", err)
	}
	// Even a still-active worker with the stale attempt is rejected.
	if err := r.Complete(w2.WorkerID, asg2.LeaseID, CompleteRequest{Attempt: 1, Result: fakeResult(99)}); !errors.Is(err, ErrLeaseRevoked) {
		t.Fatalf("stale-attempt commit: %v, want ErrLeaseRevoked", err)
	}

	if err := r.Complete(w2.WorkerID, asg2.LeaseID, CompleteRequest{Attempt: 2, Result: fakeResult(7)}); err != nil {
		t.Fatal(err)
	}
	out := <-done
	if out.errs[0] != nil {
		t.Fatalf("trial failed: %v", out.errs[0])
	}
	if out.results[0].Duration != 7 {
		t.Fatalf("job got duration %v, want the surviving worker's 7", out.results[0].Duration)
	}
}

// TestRemoteDuplicateCommit pins that a retried commit (torn response)
// cannot double-apply: the first wins, the second is rejected, the
// result is unchanged.
func TestRemoteDuplicateCommit(t *testing.T) {
	r := newTestRemote(t, nil)
	done := runAsync(context.Background(), r, mkTrials(1))
	w := register(t, r, "w1", 1)
	asg := leaseOne(t, r, w.WorkerID)
	if err := r.Complete(w.WorkerID, asg.LeaseID, CompleteRequest{Attempt: 1, Result: fakeResult(1)}); err != nil {
		t.Fatal(err)
	}
	if err := r.Complete(w.WorkerID, asg.LeaseID, CompleteRequest{Attempt: 1, Result: fakeResult(2)}); !errors.Is(err, ErrLeaseRevoked) {
		t.Fatalf("duplicate commit: %v, want ErrLeaseRevoked", err)
	}
	out := <-done
	if out.results[0].Duration != 1 {
		t.Fatalf("duplicate commit overwrote the result: %v", out.results[0].Duration)
	}
}

// TestRemoteObserverStreaming pins the pipelined-tuning path: epoch
// reports reach the trial's observer and its directives flow back.
func TestRemoteObserverStreaming(t *testing.T) {
	r := newTestRemote(t, nil)
	var observed []int
	next := params.SysConfig{Cores: 16, MemoryGB: 32}
	trials := mkTrials(1)
	trials[0].Observer = trainer.ObserverFunc(func(_ uint64, _ workload.Workload, _ params.Hyper, s trainer.EpochStats) *params.SysConfig {
		observed = append(observed, s.Epoch)
		if s.Epoch == 1 {
			return &next
		}
		return nil
	})
	done := runAsync(context.Background(), r, trials)

	w := register(t, r, "w1", 1)
	asg := leaseOne(t, r, w.WorkerID)
	if !asg.StreamEpochs {
		t.Fatal("observed trial not marked StreamEpochs")
	}
	dir, err := r.ReportEpoch(w.WorkerID, asg.LeaseID, EpochReport{Attempt: 1, Epoch: WireEpoch(trainer.EpochStats{Epoch: 1})})
	if err != nil || dir.Revoked {
		t.Fatalf("epoch 1 report: dir=%+v err=%v", dir, err)
	}
	if dir.Sys == nil || *dir.Sys != next {
		t.Fatalf("epoch 1 directive = %+v, want switch to %v", dir.Sys, next)
	}
	// A redelivered report (the agent retries when a response is lost)
	// answers from the cache: the observer must not advance twice.
	dup, err := r.ReportEpoch(w.WorkerID, asg.LeaseID, EpochReport{Attempt: 1, Epoch: WireEpoch(trainer.EpochStats{Epoch: 1})})
	if err != nil || dup.Sys == nil || *dup.Sys != next {
		t.Fatalf("duplicate epoch 1 report: dir=%+v err=%v, want cached directive", dup, err)
	}
	dir, err = r.ReportEpoch(w.WorkerID, asg.LeaseID, EpochReport{Attempt: 1, Epoch: WireEpoch(trainer.EpochStats{Epoch: 2})})
	if err != nil || dir.Revoked || dir.Sys != nil {
		t.Fatalf("epoch 2 report: dir=%+v err=%v", dir, err)
	}
	// A stale attempt's report is answered with a revocation, not relayed.
	if dir, _ := r.ReportEpoch(w.WorkerID, asg.LeaseID, EpochReport{Attempt: 99, Epoch: WireEpoch(trainer.EpochStats{Epoch: 3})}); !dir.Revoked {
		t.Fatalf("stale report not revoked: %+v", dir)
	}
	if err := r.Complete(w.WorkerID, asg.LeaseID, CompleteRequest{Attempt: 1, Result: fakeResult(1)}); err != nil {
		t.Fatal(err)
	}
	<-done
	if len(observed) != 2 || observed[0] != 1 || observed[1] != 2 {
		t.Fatalf("observer saw epochs %v, want [1 2]", observed)
	}
}

// TestRemoteDrain pins the graceful-shutdown contract: pending trials
// fail immediately, in-flight trials may commit within the deadline,
// whatever outlives it fails with ErrDraining, and new batches are
// refused.
func TestRemoteDrain(t *testing.T) {
	// The fake clock keeps the reaper quiet: no surprise eviction while
	// the test deliberately lets a lease dangle through the drain window.
	r := newTestRemote(t, newTestClock())
	done := runAsync(context.Background(), r, mkTrials(3))

	w := register(t, r, "w1", 2)
	asgA := leaseOne(t, r, w.WorkerID)
	asgB := leaseOne(t, r, w.WorkerID) // trial 2 stays pending

	drained := make(chan struct{})
	go func() {
		r.Drain(400 * time.Millisecond)
		close(drained)
	}()

	// In-flight work may still commit during the drain window...
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := r.Complete(w.WorkerID, asgA.LeaseID, CompleteRequest{Attempt: 1, Result: fakeResult(1)}); err == nil {
			break
		} else if !time.Now().Before(deadline) {
			t.Fatalf("in-flight commit during drain never succeeded: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// ...while asgB is abandoned (the worker never commits it).
	_ = asgB
	<-drained

	out := <-done
	if out.errs[0] != nil {
		t.Fatalf("drained-in-time trial failed: %v", out.errs[0])
	}
	if !errors.Is(out.errs[1], ErrDraining) {
		t.Fatalf("undrained in-flight trial: %v, want ErrDraining", out.errs[1])
	}
	if !errors.Is(out.errs[2], ErrDraining) {
		t.Fatalf("pending trial at drain: %v, want ErrDraining", out.errs[2])
	}
	// No leases are issued once draining — and the worker is told to
	// back off (503) rather than invited to re-poll instantly.
	if asg, err := r.NextLease(w.WorkerID, time.Millisecond); !errors.Is(err, ErrDraining) || asg != nil {
		t.Fatalf("lease while draining: asg=%v err=%v, want ErrDraining", asg, err)
	}
	// New batches are refused outright.
	_, errs := r.Run(context.Background(), mkTrials(1), 0)
	if !errors.Is(errs[0], ErrDraining) {
		t.Fatalf("post-drain batch: %v, want ErrDraining", errs[0])
	}
}

// TestRemoteRunCancellation pins job-cancel semantics, mirroring the
// local pool's granularity: pending leases die instantly with the
// context's error, while a trial already computing runs to completion
// and its commit is salvaged — exactly the knowledge-preservation path
// tune's OnTrialDone relies on.
func TestRemoteRunCancellation(t *testing.T) {
	r := newTestRemote(t, newTestClock())
	ctx, cancel := context.WithCancel(context.Background())
	done := runAsync(ctx, r, mkTrials(2))

	w := register(t, r, "w1", 1)
	asg := leaseOne(t, r, w.WorkerID)
	cancel()
	// The in-flight trial keeps streaming and may still commit.
	if dir, err := r.ReportEpoch(w.WorkerID, asg.LeaseID, EpochReport{Attempt: 1, Epoch: WireEpoch(trainer.EpochStats{Epoch: 1})}); err != nil || dir.Revoked {
		t.Fatalf("cancelled-but-computing lease's epoch report: dir=%+v err=%v", dir, err)
	}
	if err := r.Complete(w.WorkerID, asg.LeaseID, CompleteRequest{Attempt: 1, Result: fakeResult(5)}); err != nil {
		t.Fatalf("salvage commit after cancel: %v", err)
	}
	out := <-done
	if out.errs[0] != nil || out.results[0] == nil || out.results[0].Duration != 5 {
		t.Fatalf("in-flight trial not salvaged: res=%v err=%v", out.results[0], out.errs[0])
	}
	if !errors.Is(out.errs[1], context.Canceled) {
		t.Fatalf("pending trial after cancel: %v, want context.Canceled", out.errs[1])
	}
}

// TestRemoteCancelledLeaseFailsInsteadOfRequeueing pins the other half
// of cancellation: a cancelled in-flight trial whose worker dies (or
// abandons) must fail with the job's error — requeueing it would burn a
// worker on a job nobody is waiting for.
func TestRemoteCancelledLeaseFailsInsteadOfRequeueing(t *testing.T) {
	clock := newTestClock()
	r := newTestRemote(t, clock)
	ctx, cancel := context.WithCancel(context.Background())
	done := runAsync(ctx, r, mkTrials(1))

	w := register(t, r, "w1", 1)
	asg := leaseOne(t, r, w.WorkerID)
	cancel()
	// Wait for Run's abandon to mark the lease before evicting; an
	// eviction racing ahead of the cancellation requeues first and the
	// abandon then fails the pending lease — same outcome, but this test
	// pins the direct fail-instead-of-requeue path.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r.mu.Lock()
		l := r.leases[asg.LeaseID]
		marked := l != nil && l.cancelled
		r.mu.Unlock()
		if marked {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatal("cancellation never marked the lease")
		}
		time.Sleep(time.Millisecond)
	}
	clock.Advance(time.Second)
	r.evictStale()
	out := <-done
	if !errors.Is(out.errs[0], context.Canceled) {
		t.Fatalf("cancelled lease after eviction: %v, want context.Canceled", out.errs[0])
	}
	if fs := r.Fleet(); fs.RequeuedTrials != 0 || fs.PendingTrials != 0 {
		t.Fatalf("cancelled lease was requeued: %+v", fs)
	}
}

// TestRemoteAbandonedCommitRequeues pins the worker-side give-up path:
// a worker whose epoch stream tore commits {abandoned}, the daemon
// requeues the lease immediately (observer state reset, attempt
// bumped), and another worker finishes the trial — no waiting for the
// abandoning worker's eviction.
func TestRemoteAbandonedCommitRequeues(t *testing.T) {
	r := newTestRemote(t, newTestClock())
	resets := 0
	trials := mkTrials(1)
	trials[0].Restart = func() { resets++ }
	done := runAsync(context.Background(), r, trials)

	w1 := register(t, r, "gives-up", 1)
	asg1 := leaseOne(t, r, w1.WorkerID)
	if err := r.Complete(w1.WorkerID, asg1.LeaseID, CompleteRequest{Attempt: 1, Abandoned: true}); err != nil {
		t.Fatalf("abandon commit: %v", err)
	}
	if resets != 1 {
		t.Fatalf("restart hooks after abandonment: %d, want 1", resets)
	}
	fs := r.Fleet()
	if fs.RequeuedTrials != 1 || fs.PendingTrials != 1 {
		t.Fatalf("abandoned lease not requeued: %+v", fs)
	}
	// The abandoning worker stays active (it is healthy, just lost one
	// trial) and could even take the lease back at the next attempt.
	w2 := register(t, r, "finisher", 1)
	asg2 := leaseOne(t, r, w2.WorkerID)
	if asg2.LeaseID != asg1.LeaseID || asg2.Attempt != 2 {
		t.Fatalf("requeued lease = %s attempt %d, want %s attempt 2", asg2.LeaseID, asg2.Attempt, asg1.LeaseID)
	}
	if err := r.Complete(w2.WorkerID, asg2.LeaseID, CompleteRequest{Attempt: 2, Result: fakeResult(3)}); err != nil {
		t.Fatal(err)
	}
	out := <-done
	if out.errs[0] != nil || out.results[0].Duration != 3 {
		t.Fatalf("trial after abandonment: res=%v err=%v", out.results[0], out.errs[0])
	}
}

// TestRemoteWorkerError pins that a worker-side trial failure fails the
// trial (and with it the job), rather than hanging the batch.
func TestRemoteWorkerError(t *testing.T) {
	r := newTestRemote(t, nil)
	done := runAsync(context.Background(), r, mkTrials(1))
	w := register(t, r, "w1", 1)
	asg := leaseOne(t, r, w.WorkerID)
	if err := r.Complete(w.WorkerID, asg.LeaseID, CompleteRequest{Attempt: 1, Error: "boom"}); err != nil {
		t.Fatal(err)
	}
	out := <-done
	if out.errs[0] == nil || out.results[0] != nil {
		t.Fatalf("worker-side failure not propagated: res=%v err=%v", out.results[0], out.errs[0])
	}
}

// TestRemoteConcurrentLeaseCompleteHeartbeat is the -race exercise the
// acceptance criteria ask for: many workers lease, report, complete and
// heartbeat concurrently while batches run, workers get evicted and the
// fleet is snapshotted.
func TestRemoteConcurrentLeaseCompleteHeartbeat(t *testing.T) {
	clock := newTestClock()
	r := newTestRemote(t, clock)

	const (
		batches        = 4
		trialsPerBatch = 8
		workers        = 4
	)
	var committed atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Worker fleet: lease/report/complete loops plus heartbeats.
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reg, err := r.Register(RegisterRequest{Name: fmt.Sprintf("w%d", i), Capacity: 2})
			if err != nil {
				return
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				asg, err := r.NextLease(reg.WorkerID, 5*time.Millisecond)
				if err != nil {
					// Evicted by the churn goroutine: re-register.
					reg, err = r.Register(RegisterRequest{Name: fmt.Sprintf("w%d", i), Capacity: 2})
					if err != nil {
						return
					}
					continue
				}
				_ = r.Heartbeat(reg.WorkerID)
				if asg == nil {
					continue
				}
				if _, err := r.ReportEpoch(reg.WorkerID, asg.LeaseID, EpochReport{Attempt: asg.Attempt, Epoch: WireEpoch(trainer.EpochStats{Epoch: 1})}); err != nil {
					continue
				}
				if err := r.Complete(reg.WorkerID, asg.LeaseID, CompleteRequest{Attempt: asg.Attempt, Result: fakeResult(1)}); err == nil {
					committed.Add(1)
				}
			}
		}(i)
	}
	// Churn: advance the clock and reap, racing eviction against live
	// lease traffic; snapshot the fleet concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				clock.Advance(120 * time.Millisecond)
				r.evictStale()
				_ = r.Fleet()
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()

	var batchWG sync.WaitGroup
	for b := 0; b < batches; b++ {
		batchWG.Add(1)
		go func() {
			defer batchWG.Done()
			results, errs := r.Run(context.Background(), mkTrials(trialsPerBatch), 0)
			for i := range errs {
				if errs[i] == nil && results[i] == nil {
					t.Error("nil result without error")
				}
			}
		}()
	}
	batchWG.Wait()
	close(stop)
	wg.Wait()
	if committed.Load() < batches*trialsPerBatch {
		t.Fatalf("only %d commits for %d trials", committed.Load(), batches*trialsPerBatch)
	}
}

// TestRemoteEvictedRegistryBounded pins the registry-leak guard: a
// flapping worker mints a new id per re-registration, so only the most
// recent evicted entries may be retained for the fleet surfaces.
func TestRemoteEvictedRegistryBounded(t *testing.T) {
	clock := newTestClock()
	r := newTestRemote(t, clock)
	for i := 0; i < maxEvictedRetained+8; i++ {
		reg := register(t, r, fmt.Sprintf("flappy-%d", i), 1)
		clock.Advance(time.Second)
		r.evictStale()
		if err := r.Heartbeat(reg.WorkerID); !errors.Is(err, ErrUnknownWorker) {
			t.Fatalf("worker %d not evicted: %v", i, err)
		}
	}
	fs := r.Fleet()
	if len(fs.Workers) != maxEvictedRetained {
		t.Fatalf("registry retains %d evicted entries, want %d", len(fs.Workers), maxEvictedRetained)
	}
}

// TestRemotePoisonTrialFailsAfterAttemptCap pins the fleet-protection
// guard: a trial that serially loses its worker (a poison body crashing
// worker processes) is failed after maxLeaseAttempts requeues instead
// of consuming the fleet forever.
func TestRemotePoisonTrialFailsAfterAttemptCap(t *testing.T) {
	clock := newTestClock()
	r := newTestRemote(t, clock)
	done := runAsync(context.Background(), r, mkTrials(1))

	for i := 0; ; i++ {
		if i > maxLeaseAttempts {
			t.Fatalf("lease still being reissued after %d evictions", i)
		}
		w := register(t, r, fmt.Sprintf("victim-%d", i), 1)
		asg, err := r.NextLease(w.WorkerID, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if asg == nil {
			break // lease no longer reissued: the cap fired
		}
		if asg.Attempt != i+1 {
			t.Fatalf("eviction %d: attempt %d, want %d", i, asg.Attempt, i+1)
		}
		clock.Advance(time.Second)
		r.evictStale()
	}
	out := <-done
	if out.errs[0] == nil || !strings.Contains(out.errs[0].Error(), "lost its worker") {
		t.Fatalf("poison trial error = %v, want attempt-cap diagnosis", out.errs[0])
	}
}

// TestRemoteStaleEpochReportIgnored pins the out-of-order guard: a
// network-delayed report for an older epoch (its retry was already
// processed) must not reach the observer again.
func TestRemoteStaleEpochReportIgnored(t *testing.T) {
	r := newTestRemote(t, newTestClock())
	var observed []int
	trials := mkTrials(1)
	trials[0].Observer = trainer.ObserverFunc(func(_ uint64, _ workload.Workload, _ params.Hyper, s trainer.EpochStats) *params.SysConfig {
		observed = append(observed, s.Epoch)
		return nil
	})
	done := runAsync(context.Background(), r, trials)
	w := register(t, r, "w1", 1)
	asg := leaseOne(t, r, w.WorkerID)
	for _, ep := range []int{1, 2} {
		if _, err := r.ReportEpoch(w.WorkerID, asg.LeaseID, EpochReport{Attempt: 1, Epoch: WireEpoch(trainer.EpochStats{Epoch: ep})}); err != nil {
			t.Fatal(err)
		}
	}
	// The delayed straggler for epoch 1 arrives after epoch 2 was
	// processed: dropped, empty directive, observer untouched.
	dir, err := r.ReportEpoch(w.WorkerID, asg.LeaseID, EpochReport{Attempt: 1, Epoch: WireEpoch(trainer.EpochStats{Epoch: 1})})
	if err != nil || dir.Revoked || dir.Sys != nil {
		t.Fatalf("stale epoch report: dir=%+v err=%v, want empty directive", dir, err)
	}
	if err := r.Complete(w.WorkerID, asg.LeaseID, CompleteRequest{Attempt: 1, Result: fakeResult(1)}); err != nil {
		t.Fatal(err)
	}
	<-done
	if len(observed) != 2 || observed[0] != 1 || observed[1] != 2 {
		t.Fatalf("observer saw %v, want [1 2]", observed)
	}
}
