package exec

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"pipetune/internal/params"
	"pipetune/internal/trainer"
	"pipetune/internal/workload"
)

// TestStreamFleetBitIdentical is the binary-wire twin of the JSON
// agent's bit-identity test: real trial bodies through the hijacked
// stream — handshake, batched grants, epoch frames, directive relays,
// delta-encoded commits — must reproduce the local backend exactly,
// including a mid-trial system switch by the observer.
func TestStreamFleetBitIdentical(t *testing.T) {
	r, _ := startFleet(t, 2, RemoteConfig{Wire: WireBinary})

	tr := smallTrainer()
	trials := realTrials(tr, 4)
	var obsMu sync.Mutex
	var remoteSeen []trainer.EpochStats
	switched := params.SysConfig{Cores: 16, MemoryGB: 32}
	mkObserver := func(sink *[]trainer.EpochStats) trainer.EpochObserver {
		return trainer.ObserverFunc(func(_ uint64, _ workload.Workload, _ params.Hyper, s trainer.EpochStats) *params.SysConfig {
			obsMu.Lock()
			*sink = append(*sink, s)
			obsMu.Unlock()
			if s.Epoch == 1 {
				return &switched
			}
			return nil
		})
	}
	trials[1].Observer = mkObserver(&remoteSeen)

	results, errs := r.Run(context.Background(), trials, 0)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("stream trial %d: %v", i, err)
		}
	}

	var localSeen []trainer.EpochStats
	localTrials := realTrials(smallTrainer(), 4)
	localTrials[1].Observer = mkObserver(&localSeen)
	want, werrs := NewLocal(smallTrainer()).Run(context.Background(), localTrials, 2)
	for i, err := range werrs {
		if err != nil {
			t.Fatalf("local trial %d: %v", i, err)
		}
	}

	for i := range trials {
		if !reflect.DeepEqual(results[i], want[i]) {
			t.Fatalf("stream trial %d diverges from local backend", i)
		}
	}
	if results[1].FinalSys != switched {
		t.Fatalf("observer switch lost over the stream: FinalSys %v, want %v", results[1].FinalSys, switched)
	}
	if !reflect.DeepEqual(remoteSeen, localSeen) {
		t.Fatalf("observer saw different epochs over the stream: remote %d, local %d", len(remoteSeen), len(localSeen))
	}
	fs := r.Fleet()
	if fs.CompletedTrials != 4 {
		t.Fatalf("fleet completed %d trials, want 4", fs.CompletedTrials)
	}
	if fs.Wire != WireBinary {
		t.Fatalf("fleet wire = %q, want %q", fs.Wire, WireBinary)
	}
}

// TestCrossWireCatalogParity sweeps the full Table 3 catalog across both
// wires: for every workload, the JSON fleet, the binary fleet and the
// local backend must produce byte-identical results (compared through
// the same JSON serialisation JobResults use).
func TestCrossWireCatalogParity(t *testing.T) {
	if testing.Short() {
		t.Skip("catalog parity runs full trial compute; CI races it in the execution-plane step")
	}
	trialsFor := func(tr *trainer.Runner) []Trial {
		cat := workload.Catalog()
		h := params.DefaultHyper()
		h.Epochs = 1
		out := make([]Trial, len(cat))
		for i, w := range cat {
			out[i] = Trial{
				ID: i, Workload: w, Hyper: h, Sys: params.DefaultSysConfig(),
				Seed: uint64(5000 + i), Trainer: CaptureTrainerConfig(tr),
			}
		}
		return out
	}
	marshal := func(res []*trainer.Result) []string {
		out := make([]string, len(res))
		for i, r := range res {
			b, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = string(b)
		}
		return out
	}
	run := func(b Backend) []string {
		trials := trialsFor(smallTrainer())
		res, errs := b.Run(context.Background(), trials, 2)
		for i, err := range errs {
			if err != nil {
				t.Fatalf("%s trial %d (%s): %v", b.Name(), i, trials[i].Workload.Name(), err)
			}
		}
		return marshal(res)
	}

	want := run(NewLocal(smallTrainer()))
	jsonFleet, _ := startFleet(t, 2, RemoteConfig{Wire: WireJSON})
	binFleet, _ := startFleet(t, 2, RemoteConfig{Wire: WireBinary})
	gotJSON := run(jsonFleet)
	gotBin := run(binFleet)
	cat := workload.Catalog()
	for i := range want {
		if gotJSON[i] != want[i] {
			t.Errorf("%s: json wire diverges from local", cat[i].Name())
		}
		if gotBin[i] != want[i] {
			t.Errorf("%s: binary wire diverges from local", cat[i].Name())
		}
	}
}

// TestStreamTokenAuth pins auth on the upgrade path: the 401 happens in
// plain HTTP before any hijack, so a bad token is terminal for the agent
// and a good one streams normally.
func TestStreamTokenAuth(t *testing.T) {
	r := NewRemote(RemoteConfig{Token: "s3cret", Wire: WireBinary, HeartbeatInterval: 50 * time.Millisecond})
	t.Cleanup(r.Close)
	srv := httptest.NewServer(r.Handler())
	t.Cleanup(srv.Close)

	bad := NewAgent(AgentConfig{Server: srv.URL, Token: "wrong", Wire: WireBinary})
	if err := bad.Run(context.Background()); !errors.Is(err, ErrBadToken) {
		t.Fatalf("wrong token: %v, want ErrBadToken", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	good := NewAgent(AgentConfig{Server: srv.URL, Token: "s3cret", Wire: WireBinary})
	done := make(chan error, 1)
	go func() { done <- good.Run(ctx) }()
	deadline := time.Now().Add(2 * time.Second)
	for len(r.Fleet().Workers) == 0 {
		if !time.Now().Before(deadline) {
			t.Fatal("correctly-tokened stream agent never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("agent exit: %v, want context.Canceled", err)
	}
}

// TestCorruptFrameEvictsAndRequeues is the failure-path half of the
// codec contract (and what FuzzFrameDecode's invariant protects): a
// worker that sends a torn frame is evicted through the standard
// requeue path, and its lease completes on a healthy worker — the job
// never sees the corruption.
func TestCorruptFrameEvictsAndRequeues(t *testing.T) {
	// A huge missed-heartbeat budget: the corrupt frame, not the reaper,
	// must be what evicts the misbehaving worker.
	r := NewRemote(RemoteConfig{Wire: WireBinary, HeartbeatInterval: 50 * time.Millisecond, MissedHeartbeats: 100, Logf: t.Logf})
	t.Cleanup(r.Close)
	srv := httptest.NewServer(r.Handler())
	t.Cleanup(srv.Close)

	// A hand-driven stream client: handshake like a real worker, then
	// misbehave.
	a := NewAgent(AgentConfig{Server: srv.URL, Name: "corrupt", Capacity: 1})
	conn, br, err := a.dialStream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if _, err := conn.Write([]byte(streamMagic)); err != nil {
		t.Fatal(err)
	}
	fw := &frameWriter{w: conn}
	wb := getWirebuf()
	encodeHello(wb, "corrupt", 1)
	if err := fw.send(frameHello, wb.b); err != nil {
		t.Fatal(err)
	}
	putWirebuf(wb)
	var scratch []byte
	ft, _, err := readFrame(br, &scratch)
	if err != nil || ft != frameWelcome {
		t.Fatalf("handshake: ft %d err %v", ft, err)
	}

	// Submit one trial; the corrupt worker is the only worker, so the
	// grant lands on it.
	tr := smallTrainer()
	type runOut struct {
		res  []*trainer.Result
		errs []error
	}
	ran := make(chan runOut, 1)
	go func() {
		res, errs := r.Run(context.Background(), realTrials(tr, 1), 0)
		ran <- runOut{res, errs}
	}()
	if ft, _, err := readFrame(br, &scratch); err != nil || ft != frameGrant {
		t.Fatalf("grant: ft %d err %v", ft, err)
	}

	// Send a frame whose CRC does not match its payload.
	bad := encodeFrameBytes(t, frameEpoch, func(w *wirebuf) { w.str("ls-000001") })
	bad[len(bad)-1] ^= 0xFF
	if _, err := conn.Write(bad); err != nil {
		t.Fatal(err)
	}

	// The daemon must evict the corrupt worker and requeue its lease...
	deadline := time.Now().Add(5 * time.Second)
	for {
		fs := r.Fleet()
		evicted := 0
		for _, w := range fs.Workers {
			if w.State == "evicted" {
				evicted++
			}
		}
		if evicted == 1 && fs.RequeuedTrials >= 1 {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("corrupt worker never evicted: %+v", fs)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// ...and a healthy worker picks it up and completes the job.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	healthy := NewAgent(AgentConfig{Server: srv.URL, Name: "healthy", Capacity: 1, Wire: WireBinary})
	go func() { _ = healthy.Run(ctx) }()
	select {
	case out := <-ran:
		if out.errs[0] != nil {
			t.Fatalf("trial after corrupt-worker eviction: %v", out.errs[0])
		}
		want, err := smallTrainer().Run(realTrials(tr, 1)[0].Workload, realTrials(tr, 1)[0].Hyper, realTrials(tr, 1)[0].Sys, realTrials(tr, 1)[0].Seed, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(out.res[0], want) {
			t.Fatal("post-eviction result diverges from a direct run")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("job never completed after corrupt-worker eviction")
	}
}

// TestStreamDrainFailsPendingCommitsInflight pins drain semantics on the
// binary wire: at drain start, pending leases fail instantly with
// ErrDraining while the in-flight one gets its drain window to commit —
// identical to the JSON wire's contract.
func TestStreamDrainFailsPendingCommitsInflight(t *testing.T) {
	r := NewRemote(RemoteConfig{Wire: WireBinary, HeartbeatInterval: 50 * time.Millisecond, MissedHeartbeats: 100, Logf: t.Logf})
	t.Cleanup(r.Close)
	srv := httptest.NewServer(r.Handler())
	t.Cleanup(srv.Close)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	agent := NewAgent(AgentConfig{Server: srv.URL, Capacity: 1, Wire: WireBinary})
	go func() { _ = agent.Run(ctx) }()

	tr := smallTrainer()
	trials := realTrials(tr, 4) // 1 leased (capacity 1) + 3 pending
	type runOut struct {
		res  []*trainer.Result
		errs []error
	}
	ran := make(chan runOut, 1)
	go func() {
		res, errs := r.Run(context.Background(), trials, 0)
		ran <- runOut{res, errs}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		fs := r.Fleet()
		if fs.LeasedTrials == 1 && fs.PendingTrials == 3 {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("worker never reached 1 leased + 3 pending: %+v", fs)
		}
		time.Sleep(2 * time.Millisecond)
	}
	r.Drain(30 * time.Second)
	out := <-ran
	completed, drained := 0, 0
	for i := range trials {
		switch {
		case out.errs[i] == nil && out.res[i] != nil:
			completed++
		case errors.Is(out.errs[i], ErrDraining):
			drained++
		default:
			t.Fatalf("trial %d: unexpected outcome res=%v err=%v", i, out.res[i], out.errs[i])
		}
	}
	// The leased trial commits inside the drain window; every pending
	// trial fails instantly. (The leased trial may in principle finish in
	// the instant between the fleet snapshot and Drain, pulling another
	// lease — hence >=1/<=3 instead of exactly 1/3.)
	if completed < 1 || drained < 2 || completed+drained != 4 {
		t.Fatalf("drain outcome: %d completed, %d drained; want >=1 committed, rest drained", completed, drained)
	}
}
