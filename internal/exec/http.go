package exec

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Handler serves the worker-facing work API (mounted by the pipetuned
// service next to the job API):
//
//	POST /v1/workers                             register        -> RegisterResponse
//	POST /v1/workers/{id}/heartbeat              liveness
//	POST /v1/workers/{id}/lease?waitMs=N         lease a trial   -> Assignment | 204
//	POST /v1/workers/{id}/leases/{lease}/epoch   epoch report    -> EpochDirective
//	POST /v1/workers/{id}/leases/{lease}/complete result commit
//	POST /v1/stream                              binary stream upgrade (101)
//	GET  /v1/fleet                               fleet status    -> FleetStatus
//
// RemoteConfig.Wire gates the mounts: "json" serves only the long-poll
// routes, "binary" only the stream upgrade, "" both. When
// RemoteConfig.Token is set, every worker-facing route requires
// "Authorization: Bearer <token>"; GET /v1/fleet is operator-facing and
// stays open, like /healthz.
func (r *Remote) Handler() http.Handler {
	mux := http.NewServeMux()
	if r.cfg.Wire == "" || r.cfg.Wire == WireJSON {
		mux.HandleFunc("POST /v1/workers", r.authed(r.jsonWire(r.handleRegister)))
		mux.HandleFunc("POST /v1/workers/{id}/heartbeat", r.authed(r.jsonWire(r.handleHeartbeat)))
		mux.HandleFunc("POST /v1/workers/{id}/lease", r.authed(r.jsonWire(r.handleLease)))
		mux.HandleFunc("POST /v1/workers/{id}/leases/{lease}/epoch", r.authed(r.jsonWire(r.handleEpoch)))
		mux.HandleFunc("POST /v1/workers/{id}/leases/{lease}/complete", r.authed(r.jsonWire(r.handleComplete)))
	}
	if r.cfg.Wire == "" || r.cfg.Wire == WireBinary {
		mux.HandleFunc("POST /v1/stream", r.authed(r.handleStream))
	}
	mux.HandleFunc("GET /v1/fleet", r.handleFleet)
	return mux
}

// wireError is the JSON error body of non-2xx work-API responses.
type wireError struct {
	Error string `json:"error"`
}

func writeWireJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeWireErr maps execution-plane errors onto status codes: an unknown
// worker is 404 (re-register), a revoked lease 409 (drop the trial),
// draining 503.
func writeWireErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownWorker):
		code = http.StatusNotFound
	case errors.Is(err, ErrLeaseRevoked):
		code = http.StatusConflict
	case errors.Is(err, ErrDraining):
		code = http.StatusServiceUnavailable
	}
	writeWireJSON(w, code, wireError{Error: err.Error()})
}

// authed enforces the shared worker token when one is configured.
func (r *Remote) authed(h http.HandlerFunc) http.HandlerFunc {
	if r.cfg.Token == "" {
		return h
	}
	want := "Bearer " + r.cfg.Token
	return func(w http.ResponseWriter, req *http.Request) {
		if req.Header.Get("Authorization") != want {
			writeWireJSON(w, http.StatusUnauthorized, wireError{Error: "exec: missing or invalid worker token"})
			return
		}
		h(w, req)
	}
}

func (r *Remote) handleRegister(w http.ResponseWriter, req *http.Request) {
	var body RegisterRequest
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		writeWireJSON(w, http.StatusBadRequest, wireError{Error: fmt.Sprintf("exec: decode register: %v", err)})
		return
	}
	resp, err := r.Register(body)
	if err != nil {
		writeWireErr(w, err)
		return
	}
	writeWireJSON(w, http.StatusOK, resp)
}

func (r *Remote) handleHeartbeat(w http.ResponseWriter, req *http.Request) {
	// The body is optional: workers that collect telemetry piggyback a
	// cumulative snapshot on the beat — the JSON twin of the binary
	// wire's Stats frame. An empty body is a plain liveness beat.
	var body HeartbeatRequest
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil && !errors.Is(err, io.EOF) {
		writeWireJSON(w, http.StatusBadRequest, wireError{Error: fmt.Sprintf("exec: decode heartbeat: %v", err)})
		return
	}
	id := req.PathValue("id")
	if body.Series != nil {
		if err := r.IngestWorkerSeries(id, *body.Series); err != nil {
			writeWireErr(w, err)
			return
		}
	} else if err := r.Heartbeat(id); err != nil {
		writeWireErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (r *Remote) handleLease(w http.ResponseWriter, req *http.Request) {
	var wait time.Duration
	if ms, err := strconv.Atoi(req.URL.Query().Get("waitMs")); err == nil && ms > 0 {
		wait = time.Duration(ms) * time.Millisecond
	}
	asg, err := r.NextLease(req.PathValue("id"), wait)
	if err != nil {
		writeWireErr(w, err)
		return
	}
	if asg == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeWireJSON(w, http.StatusOK, asg)
}

func (r *Remote) handleEpoch(w http.ResponseWriter, req *http.Request) {
	var rep EpochReport
	if err := json.NewDecoder(req.Body).Decode(&rep); err != nil {
		writeWireJSON(w, http.StatusBadRequest, wireError{Error: fmt.Sprintf("exec: decode epoch report: %v", err)})
		return
	}
	dir, err := r.ReportEpoch(req.PathValue("id"), req.PathValue("lease"), rep)
	if err != nil {
		writeWireErr(w, err)
		return
	}
	writeWireJSON(w, http.StatusOK, dir)
}

func (r *Remote) handleComplete(w http.ResponseWriter, req *http.Request) {
	var body CompleteRequest
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		writeWireJSON(w, http.StatusBadRequest, wireError{Error: fmt.Sprintf("exec: decode complete: %v", err)})
		return
	}
	if err := r.Complete(req.PathValue("id"), req.PathValue("lease"), body); err != nil {
		writeWireErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (r *Remote) handleFleet(w http.ResponseWriter, _ *http.Request) {
	writeWireJSON(w, http.StatusOK, r.Fleet())
}

// jsonWire wraps a long-poll route with per-wire traffic accounting: one
// rx "frame" per request and one tx "frame" per response (the JSON
// wire's unit of exchange), plus the body bytes actually read and
// written. The binary stream counts its frames in serveStream instead.
func (r *Remote) jsonWire(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		cr := &countingReader{rc: req.Body}
		req.Body = cr
		cw := &countingWriter{ResponseWriter: w}
		h(cw, req)
		r.met.jsonRxFrames.Inc()
		r.met.jsonTxFrames.Inc()
		r.met.jsonRxBytes.Add(cr.n)
		r.met.jsonTxBytes.Add(cw.n)
	}
}

type countingReader struct {
	rc io.ReadCloser
	n  uint64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.rc.Read(p)
	c.n += uint64(n)
	return n, err
}

func (c *countingReader) Close() error { return c.rc.Close() }

type countingWriter struct {
	http.ResponseWriter
	n uint64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.ResponseWriter.Write(p)
	c.n += uint64(n)
	return n, err
}
