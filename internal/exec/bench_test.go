package exec

import (
	"context"
	"fmt"
	"net"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// benchBatch sizes one benchmark iteration: a searcher-batch-shaped
// fleet of independent trial bodies.
const benchBatch = 8

// countingListener wraps every accepted connection so the benchmark can
// report bytes-on-the-wire per trial. Hijacked stream connections are
// counted too: net/http's Hijack hands back the accepted conn, which is
// our wrapper.
type countingListener struct {
	net.Listener
	n *atomic.Int64
}

func (l countingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &countingConn{Conn: c, n: l.n}, nil
}

type countingConn struct {
	net.Conn
	n *atomic.Int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.n.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.n.Add(int64(n))
	return n, err
}

// BenchmarkExecBackends prices the execution plane: the same 8-trial
// batch of real lenet/mnist bodies (2 epochs, 96/48 corpus) computed on
// the local in-process pool versus remote fleets of 1, 2 and 4
// in-process agents on each wire protocol — the long-poll HTTP/JSON
// compat wire and the framed binary stream. On a single-CPU box the
// remote rows measure protocol overhead (lease/grant + epoch + commit
// traffic per trial); the throughput *scaling* claim is the
// deterministic experiments.ScaleOut trace, which is CPU-independent.
// Each remote row also reports bytes-on-the-wire per trial, counted at
// the accepted-connection level so HTTP framing (or stream framing)
// overhead is included.
func BenchmarkExecBackends(b *testing.B) {
	b.Run("local", func(b *testing.B) {
		benchBackend(b, NewLocal(smallTrainer()), nil)
	})
	for _, wire := range []string{WireJSON, WireBinary} {
		for _, agents := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("remote-%s-%dw", wire, agents), func(b *testing.B) {
				r := NewRemote(RemoteConfig{
					HeartbeatInterval: 200 * time.Millisecond,
					LeaseWait:         100 * time.Millisecond,
					Wire:              wire,
				})
				defer r.Close()
				var wireBytes atomic.Int64
				srv := httptest.NewUnstartedServer(r.Handler())
				srv.Listener = countingListener{srv.Listener, &wireBytes}
				srv.Start()
				defer srv.Close()
				ctx, cancel := context.WithCancel(context.Background())
				var wg sync.WaitGroup
				defer func() { // stop the agents, then reap them
					cancel()
					wg.Wait()
				}()
				for i := 0; i < agents; i++ {
					agent := NewAgent(AgentConfig{Server: srv.URL, Capacity: 2, Wire: wire})
					wg.Add(1)
					go func() {
						defer wg.Done()
						_ = agent.Run(ctx)
					}()
				}
				benchBackend(b, r, &wireBytes)
			})
		}
	}
}

func benchBackend(b *testing.B, backend Backend, wireBytes *atomic.Int64) {
	trials := realTrials(smallTrainer(), benchBatch)
	b.ReportAllocs()
	b.ResetTimer()
	if wireBytes != nil {
		wireBytes.Store(0) // discount registration/handshake traffic
	}
	start := time.Now()
	for i := 0; i < b.N; i++ {
		results, errs := backend.Run(context.Background(), trials, 4)
		for j := range errs {
			if errs[j] != nil {
				b.Fatalf("trial %d: %v", j, errs[j])
			}
			if results[j] == nil {
				b.Fatal("nil result")
			}
		}
	}
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N*benchBatch)/elapsed, "trials/s")
	}
	if wireBytes != nil {
		b.ReportMetric(float64(wireBytes.Load())/float64(b.N*benchBatch), "wireB/trial")
	}
}

// BenchmarkCodec prices the zero-allocation claim directly: encode and
// decode of the two hot frame types (epoch observation and delta-encoded
// result) without any transport. Encode must not allocate at steady
// state (pooled buffers); decode allocates only the decoded result's own
// storage.
func BenchmarkCodec(b *testing.B) {
	asg := sampleAssignment()
	res := sampleResult(7, 3, asg.Sys)
	st := res.Epochs[1]

	b.Run("epoch-encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w := getWirebuf()
			encodeEpochFrame(w, asg.LeaseID, asg.Attempt, &st)
			putWirebuf(w)
		}
	})
	epochPayload := func() []byte {
		w := getWirebuf()
		defer putWirebuf(w)
		encodeEpochFrame(w, asg.LeaseID, asg.Attempt, &st)
		return append([]byte(nil), w.b...)
	}()
	b.Run("epoch-decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := decodeEpochFrame(epochPayload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("result-encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w := getWirebuf()
			encodeComplete(w, asg.LeaseID, asg.Attempt, completeOK, "", res, asg.Sys)
			putWirebuf(w)
		}
	})
	resultPayload := func() []byte {
		w := getWirebuf()
		defer putWirebuf(w)
		encodeComplete(w, asg.LeaseID, asg.Attempt, completeOK, "", res, asg.Sys)
		return append([]byte(nil), w.b...)
	}()
	b.Run("result-decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, _, _, _, err := decodeComplete(resultPayload, res.Workload, res.Hyper, asg.Sys); err != nil {
				b.Fatal(err)
			}
		}
	})
}
