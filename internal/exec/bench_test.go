package exec

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// benchBatch sizes one benchmark iteration: a searcher-batch-shaped
// fleet of independent trial bodies.
const benchBatch = 8

// BenchmarkExecBackends prices the execution plane: the same 8-trial
// batch of real lenet/mnist bodies (2 epochs, 96/48 corpus) computed on
// the local in-process pool versus remote fleets of 1, 2 and 4
// in-process agents speaking the full HTTP work API. On a single-CPU box
// the remote rows measure protocol overhead (lease + commit round trips
// per trial); the throughput *scaling* claim is the deterministic
// experiments.ScaleOut trace, which is CPU-independent.
func BenchmarkExecBackends(b *testing.B) {
	b.Run("local", func(b *testing.B) {
		benchBackend(b, NewLocal(smallTrainer()))
	})
	for _, agents := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("remote-%dw", agents), func(b *testing.B) {
			r := NewRemote(RemoteConfig{
				HeartbeatInterval: 200 * time.Millisecond,
				LeaseWait:         100 * time.Millisecond,
			})
			defer r.Close()
			srv := httptest.NewServer(r.Handler())
			defer srv.Close()
			ctx, cancel := context.WithCancel(context.Background())
			var wg sync.WaitGroup
			defer func() { // stop the agents, then reap them
				cancel()
				wg.Wait()
			}()
			for i := 0; i < agents; i++ {
				agent := NewAgent(AgentConfig{Server: srv.URL, Capacity: 2})
				wg.Add(1)
				go func() {
					defer wg.Done()
					_ = agent.Run(ctx)
				}()
			}
			benchBackend(b, r)
		})
	}
}

func benchBackend(b *testing.B, backend Backend) {
	trials := realTrials(smallTrainer(), benchBatch)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		results, errs := backend.Run(context.Background(), trials, 4)
		for j := range errs {
			if errs[j] != nil {
				b.Fatalf("trial %d: %v", j, errs[j])
			}
			if results[j] == nil {
				b.Fatal("nil result")
			}
		}
	}
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N*benchBatch)/elapsed, "trials/s")
	}
}
