package exec

import (
	"time"

	"pipetune/internal/cluster"
	"pipetune/internal/dataset"
	"pipetune/internal/params"
	"pipetune/internal/perf"
	"pipetune/internal/trainer"
	"pipetune/internal/workload"
)

// This file defines the worker wire protocol: the JSON bodies exchanged
// between the daemon's Remote backend and pipetune-worker processes.
// Package api re-exports these types for external consumers; they live
// here so the protocol owner needs no import of the api layer.

// TrainerConfig ships the submitting process's trainer-substrate knobs so
// a worker reproduces trial bodies bit-identically: the corpus sizing,
// the contention multiplier and the corpus seed are the only configurable
// inputs of the (otherwise fully calibrated, deterministic) trainer.
type TrainerConfig struct {
	TrainSize int     `json:"trainSize"`
	TestSize  int     `json:"testSize"`
	Load      float64 `json:"load"`
	DataSeed  uint64  `json:"dataSeed"`
	// CacheBytes > 0 tells the worker to keep a worker-local trial prefix
	// cache of that byte budget, mirroring the daemon's. Zero disables
	// caching on the worker.
	CacheBytes int64 `json:"cacheBytes,omitempty"`
	// Parallelism is the submitter's deterministic intra-trial kernel
	// parallelism degree, shipped so remote fleets run trials with the
	// same configuration the daemon would use locally. It never changes
	// trial bits (the nn kernels are bit-identical at every degree) —
	// only how many goroutines each trial's compute may use. Zero lets
	// the worker apply its own -train-parallelism default.
	Parallelism int `json:"trainParallelism,omitempty"`
}

// CaptureTrainerConfig extracts the wire-portable configuration of a
// trainer.
func CaptureTrainerConfig(tr *trainer.Runner) TrainerConfig {
	tc := TrainerConfig{
		TrainSize:   tr.Data.TrainSize,
		TestSize:    tr.Data.TestSize,
		Load:        tr.Load,
		DataSeed:    tr.DataSeed,
		Parallelism: tr.Parallelism,
	}
	if tr.Cache != nil {
		tc.CacheBytes = tr.Cache.Cap()
	}
	return tc
}

// NewRunner builds a worker-side trainer reproducing the captured
// configuration.
func (tc TrainerConfig) NewRunner() *trainer.Runner {
	tr := trainer.NewRunner()
	if tc.TrainSize > 0 && tc.TestSize > 0 {
		tr.Data = dataset.Config{TrainSize: tc.TrainSize, TestSize: tc.TestSize}
	}
	if tc.Load > 0 {
		tr.Load = tc.Load
	}
	if tc.DataSeed != 0 {
		tr.DataSeed = tc.DataSeed
	}
	if tc.CacheBytes > 0 {
		tr.Cache = trainer.NewTrialCache(tc.CacheBytes)
	}
	if tc.Parallelism > 0 {
		tr.Parallelism = tc.Parallelism
	}
	return tr
}

// RegisterRequest is the body of POST /v1/workers: a worker joining the
// fleet.
type RegisterRequest struct {
	// Name is the worker's self-chosen label (hostname by default);
	// surfaced in fleet status, not required to be unique.
	Name string `json:"name"`
	// Capacity is how many trial bodies the worker computes concurrently.
	Capacity int `json:"capacity"`
}

// RegisterResponse assigns the worker its identity and cadence.
type RegisterResponse struct {
	// WorkerID is the fleet-unique id all further calls use.
	WorkerID string `json:"workerId"`
	// HeartbeatSeconds is the beat cadence the server expects; a worker
	// silent for MissedHeartbeats of these intervals is evicted and its
	// leases requeued.
	HeartbeatSeconds float64 `json:"heartbeatSeconds"`
	// LeaseWaitSeconds bounds the server-side long poll of a lease
	// request; a worker should re-poll when a request returns no work.
	LeaseWaitSeconds float64 `json:"leaseWaitSeconds"`
}

// Assignment is one leased trial: everything a worker needs to compute
// the trial body, plus the lease coordinates every follow-up call must
// echo.
type Assignment struct {
	// LeaseID names the lease; Attempt is its reassignment generation.
	// Both must be echoed on epoch reports and completion — a mismatch
	// means the lease was requeued to another worker and this worker's
	// copy is void (at-most-once commit).
	LeaseID string `json:"leaseId"`
	Attempt int    `json:"attempt"`
	// TrialID is the searcher's trial id (diagnostic only on the worker).
	TrialID  int               `json:"trialId"`
	Workload workload.Workload `json:"workload"`
	Hyper    params.Hyper      `json:"hyper"`
	Sys      params.SysConfig  `json:"sys"`
	Seed     uint64            `json:"seed"`
	// StreamEpochs tells the worker to report every epoch boundary and
	// apply the returned configuration switches — the wire form of
	// PipeTune's pipelined system tuning. False for baseline trials,
	// whose system configuration is fixed.
	StreamEpochs bool `json:"streamEpochs,omitempty"`
	// Trainer reproduces the daemon's trainer substrate on the worker.
	Trainer TrainerConfig `json:"trainer"`
	// CacheKey is the daemon-derived trial prefix cache key hint for the
	// worker's local cache; empty when the daemon runs uncached.
	CacheKey string `json:"cacheKey,omitempty"`
	// Class is the daemon's preferred node class for the trial (cost-aware
	// placement hint on heterogeneous clusters); empty on single-class
	// clusters.
	Class string `json:"class,omitempty"`
}

// EpochWire is one epoch-boundary observation on the wire. The embedded
// stats marshal with their library tags; the PMU profile — excluded from
// the library's JSON — is carried explicitly because the daemon-side
// observer (PipeTune's controller) clusters on it.
type EpochWire struct {
	trainer.EpochStats
	Profile []float64 `json:"profile,omitempty"`
}

// WireEpoch packs epoch stats for transport.
func WireEpoch(s trainer.EpochStats) EpochWire {
	return EpochWire{EpochStats: s, Profile: s.Profile}
}

// Stats unpacks the observation, reattaching the profile.
func (e EpochWire) Stats() trainer.EpochStats {
	s := e.EpochStats
	s.Profile = perf.Profile(e.Profile)
	return s
}

// EpochReport is the body of POST .../leases/{lease}/epoch.
type EpochReport struct {
	Attempt int       `json:"attempt"`
	Epoch   EpochWire `json:"epoch"`
}

// EpochDirective is the daemon's reply to an epoch report.
type EpochDirective struct {
	// Sys, when non-nil, switches the trial's system configuration from
	// the next epoch on (the observer's decision: a ground-truth hit, the
	// next probe, or the settled winner).
	Sys *params.SysConfig `json:"sys,omitempty"`
	// Revoked tells the worker its lease is void (evicted and requeued,
	// or the job was cancelled): abandon the trial, do not report again.
	Revoked bool `json:"revoked,omitempty"`
}

// CompleteRequest is the body of POST .../leases/{lease}/complete: the
// at-most-once result commit.
type CompleteRequest struct {
	Attempt int `json:"attempt"`
	// Result is the finished trial body; nil when Error or Abandoned is
	// set.
	Result *trainer.Result `json:"result,omitempty"`
	// Profiles carries the per-epoch PMU profiles in Result.Epochs order
	// (the library serialisation strips them), so a committed result is
	// bit-identical to one computed in-process.
	Profiles [][]float64 `json:"profiles,omitempty"`
	// Error reports a worker-side trial failure: the trial itself is
	// broken and the job should fail.
	Error string `json:"error,omitempty"`
	// Abandoned reports that this worker cannot finish the trial through
	// no fault of the trial (its epoch stream tore): the daemon requeues
	// the lease for another worker instead of waiting for this worker's
	// eviction.
	Abandoned bool `json:"abandoned,omitempty"`
}

// result reassembles the committed trainer result, reattaching profiles.
func (cr CompleteRequest) result() *trainer.Result {
	res := cr.Result
	if res == nil {
		return nil
	}
	for i := range res.Epochs {
		if i < len(cr.Profiles) {
			res.Epochs[i].Profile = perf.Profile(cr.Profiles[i])
		}
	}
	return res
}

// WorkerStatus is one worker's row in the fleet status.
type WorkerStatus struct {
	ID       string `json:"id"`
	Name     string `json:"name,omitempty"`
	State    string `json:"state"` // "active" or "evicted"
	Capacity int    `json:"capacity"`
	// Inflight counts the worker's currently leased trials; TrialsDone
	// its lifetime committed results.
	Inflight      int       `json:"inflight"`
	TrialsDone    int       `json:"trialsDone"`
	LastHeartbeat time.Time `json:"lastHeartbeat"`
}

// FleetStatus is the execution plane's health surface: embedded in
// GET /healthz and served standalone at GET /v1/fleet.
type FleetStatus struct {
	// Backend names the active execution backend ("local", "remote").
	Backend string `json:"backend"`
	// Wire names the mounted work protocol(s): "json", "binary", or
	// "json+binary" when the daemon accepts both.
	Wire string `json:"wire,omitempty"`
	// Draining is true once shutdown stopped lease issuance.
	Draining bool `json:"draining,omitempty"`
	// PendingTrials are queued unleased; LeasedTrials are on workers now.
	PendingTrials int `json:"pendingTrials"`
	LeasedTrials  int `json:"leasedTrials"`
	// CompletedTrials counts lifetime committed results; RequeuedTrials
	// lifetime lease reassignments caused by worker eviction.
	CompletedTrials int            `json:"completedTrials"`
	RequeuedTrials  int            `json:"requeuedTrials"`
	Workers         []WorkerStatus `json:"workers,omitempty"`
	// Cluster composition: the simulated node classes trials are placed on,
	// with spot/on-demand counts. Empty on legacy single-class clusters.
	Classes       []cluster.ClassStatus `json:"classes,omitempty"`
	SpotNodes     int                   `json:"spotNodes,omitempty"`
	OnDemandNodes int                   `json:"onDemandNodes,omitempty"`
}
