package exec

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"pipetune/internal/dataset"
	"pipetune/internal/params"
	"pipetune/internal/trainer"
	"pipetune/internal/workload"
)

// smallTrainer builds a fast trainer for trial-body tests.
func smallTrainer() *trainer.Runner {
	tr := trainer.NewRunner()
	tr.Data = dataset.Config{TrainSize: 96, TestSize: 48}
	return tr
}

// realTrials builds n genuinely runnable trials against tr's config.
func realTrials(tr *trainer.Runner, n int) []Trial {
	h := params.DefaultHyper()
	h.Epochs = 2
	out := make([]Trial, n)
	for i := range out {
		out[i] = Trial{
			ID:       i,
			Workload: workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST},
			Hyper:    h,
			Sys:      params.DefaultSysConfig(),
			Seed:     uint64(1000 + i),
			Trainer:  CaptureTrainerConfig(tr),
		}
	}
	return out
}

// TestLocalMatchesDirectTrainerRun pins the Local backend to the
// pre-refactor behaviour: running a trial through the backend is the
// same trainer invocation, bit for bit.
func TestLocalMatchesDirectTrainerRun(t *testing.T) {
	tr := smallTrainer()
	trials := realTrials(tr, 3)
	results, errs := NewLocal(tr).Run(context.Background(), trials, 2)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("trial %d: %v", i, err)
		}
	}
	ref := smallTrainer()
	for i, trial := range trials {
		want, err := ref.Run(trial.Workload, trial.Hyper, trial.Sys, trial.Seed, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(results[i], want) {
			t.Fatalf("trial %d: backend result diverges from direct trainer.Run", i)
		}
	}
}

// TestLocalCancelledContext pins the cancellation contract: trials not
// yet started fail with the context's error.
func TestLocalCancelledContext(t *testing.T) {
	tr := smallTrainer()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, errs := NewLocal(tr).Run(ctx, realTrials(tr, 4), 2)
	for i := range errs {
		if !errors.Is(errs[i], context.Canceled) {
			t.Fatalf("trial %d: %v, want context.Canceled", i, errs[i])
		}
		if results[i] != nil {
			t.Fatalf("trial %d has a result despite cancellation", i)
		}
	}
}
