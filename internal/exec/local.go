package exec

import (
	"context"
	"sync"

	"pipetune/internal/trainer"
)

// Local executes trial bodies on a bounded in-process goroutine pool —
// the pre-refactor execution path, preserved bit-identically: the same
// semaphore discipline, the same per-trial context check before each
// body, the same trainer invocation. The deterministic-simulation test
// suite (and every library caller) runs on this backend by default.
type Local struct {
	// Trainer executes the trial bodies. Required.
	Trainer *trainer.Runner
}

// NewLocal wires a local backend to a trainer.
func NewLocal(tr *trainer.Runner) *Local { return &Local{Trainer: tr} }

// Name implements Backend.
func (l *Local) Name() string { return "local" }

// Run implements Backend: every trial gets a goroutine, at most
// maxParallel of which hold the semaphore (and therefore compute) at
// once. A context cancelled mid-batch skips trials that have not started
// yet (they fail with ctx.Err()); trials already inside the trainer run
// to completion — a trial body is the cancellation granularity.
func (l *Local) Run(ctx context.Context, trials []Trial, maxParallel int) ([]*trainer.Result, []error) {
	if maxParallel < 1 {
		maxParallel = 1
	}
	results := make([]*trainer.Result, len(trials))
	errs := make([]error, len(trials))
	sem := make(chan struct{}, maxParallel)
	var wg sync.WaitGroup
	for i, tr := range trials {
		i, tr := i, tr
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = l.Trainer.RunWithCacheKey(tr.Workload, tr.Hyper, tr.Sys, tr.Seed, tr.Observer, tr.CacheKey)
		}()
	}
	wg.Wait()
	return results, errs
}
