package exec

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"pipetune/internal/cluster"
	"pipetune/internal/metrics"
	"pipetune/internal/trainer"
)

// Errors of the remote execution plane.
var (
	// ErrUnknownWorker rejects calls from workers that never registered
	// or were evicted; the worker must re-register.
	ErrUnknownWorker = errors.New("exec: unknown or evicted worker")
	// ErrLeaseRevoked rejects epoch reports and commits whose lease was
	// reassigned (worker evicted) or voided (job cancelled). The caller's
	// copy of the trial is dead weight; the authoritative attempt lives
	// elsewhere. This is the at-most-once commit guard.
	ErrLeaseRevoked = errors.New("exec: lease revoked")
	// ErrDraining fails trials that cannot run because the backend is
	// shutting down: still-pending leases at drain start, in-flight
	// leases that outlive the drain deadline, and any batch submitted
	// after. Jobs carrying it turn failed — never silently lost.
	ErrDraining = errors.New("exec: execution plane draining: trial not run")
)

// RemoteConfig sizes the remote backend.
type RemoteConfig struct {
	// HeartbeatInterval is the beat cadence advertised to workers
	// (default 2s).
	HeartbeatInterval time.Duration
	// MissedHeartbeats is K: a worker silent for K consecutive intervals
	// is evicted and its leases requeued (default 3).
	MissedHeartbeats int
	// LeaseWait bounds the long poll of one lease request (default 5s).
	LeaseWait time.Duration
	// Token, when non-empty, is the bearer token every worker-facing
	// HTTP call must present (Authorization: Bearer <token>).
	Token string
	// Wire selects which work protocols the Handler mounts: WireJSON
	// (the long-poll HTTP/JSON API), WireBinary (the persistent framed
	// stream), or "" for both — mixed fleets and migrations talk to one
	// daemon. The wire does not change semantics: results, eviction,
	// requeue and drain behave identically (the parity suite proves it
	// byte for byte).
	Wire string
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
	// Metrics is the registry the execution plane reports into. Nil
	// creates a private one: the fleet surfaces (FleetStatus, and
	// through it /healthz) are derived from registry counters, so a
	// registry always exists. The service adopts a configured Remote's
	// registry to keep one namespace — see Remote.MetricsRegistry.
	Metrics *metrics.Registry

	// now is injectable for eviction tests; nil means time.Now.
	now func() time.Time
}

// withDefaults fills unset fields.
func (c RemoteConfig) withDefaults() RemoteConfig {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 2 * time.Second
	}
	if c.MissedHeartbeats <= 0 {
		c.MissedHeartbeats = 3
	}
	if c.LeaseWait <= 0 {
		c.LeaseWait = 5 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// leaseState is a lease's lifecycle: pending (queued, unassigned) ->
// leased (on a worker) -> done | failed. Eviction moves leased back to
// pending with the attempt bumped.
type leaseState int

const (
	leasePending leaseState = iota + 1
	leaseLeased
	leaseDone
	leaseFailed
)

// lease is one trial's execution record.
type lease struct {
	id      string
	trial   Trial
	attempt int
	state   leaseState
	worker  string // assigned worker id while leased
	result  *trainer.Result
	err     error
	done    chan struct{} // closed when the lease turns terminal
	// lastEpoch/lastDirective dedupe the epoch stream: the agent
	// redelivers a report whose response was lost, and the observer must
	// see each epoch exactly once or its state machine diverges from an
	// in-process run. Reset on requeue (a new attempt replays from
	// epoch one).
	lastEpoch     int
	lastDirective EpochDirective
	// cancelled marks a leased trial whose job gave up: the worker may
	// still finish and commit it (the salvage semantics of the local
	// pool), but any path that would otherwise requeue it — eviction,
	// worker abandonment — fails it with cancelErr instead.
	cancelled bool
	cancelErr error
}

func (l *lease) terminal() bool { return l.state == leaseDone || l.state == leaseFailed }

// workerState is a registry entry's lifecycle.
type workerState int

const (
	workerActive workerState = iota + 1
	workerEvicted
)

func (s workerState) String() string {
	if s == workerEvicted {
		return "evicted"
	}
	return "active"
}

// workerEntry is one registered worker.
type workerEntry struct {
	id       string
	name     string
	capacity int
	state    workerState
	lastBeat time.Time
	inflight map[string]*lease
	done     int
	// closeStream, when set, severs the worker's binary stream connection.
	// Eviction calls it so a worker evicted by the reaper (alive but
	// partitioned) does not keep a half-dead stream open; the stream's
	// reader unblocks and the session ends. Nil for JSON-wire workers.
	closeStream func()
	// series is the last heartbeat-shipped cumulative telemetry
	// snapshot from this registration; the next snapshot is diffed
	// against it before folding into the fleet aggregates.
	series WorkerSeries
}

// Remote is the fleet execution backend: trials submitted by Run are
// queued as leases; registered pipetune-worker processes pull them over
// the work API, stream epoch observations back, and commit results
// exactly once. A worker that stops heartbeating is evicted and its
// leases requeued, so a job survives losing workers mid-trial.
//
// Remote is the daemon-side half of the protocol; the worker-side half
// is Agent. All methods are safe for concurrent use.
type Remote struct {
	cfg RemoteConfig

	mu      sync.Mutex
	cond    *sync.Cond
	workers map[string]*workerEntry
	leases  map[string]*lease
	pending []*lease // FIFO; eviction requeues go to the front
	// evictedOrder remembers eviction order so the registry retains only
	// the most recent casualties: a flapping worker re-registers under a
	// fresh id every time, and keeping every dead entry forever would
	// grow the registry — and every /healthz payload — without bound.
	evictedOrder []string
	nextWorker   int
	nextLease    int
	draining     bool
	closed       bool
	stopReaper   chan struct{}
	reaperDone   chan struct{}

	// Cluster composition for health surfaces, set once at service wiring
	// (SetClusterStatus) and copied into every Fleet snapshot.
	classes       []cluster.ClassStatus
	spotNodes     int
	onDemandNodes int

	// met holds the resolved metrics handles; completed/requeued counts
	// live in the registry (the single source FleetStatus and /metrics
	// both read).
	met *remoteMetrics
}

// NewRemote builds the backend and starts its heartbeat reaper.
func NewRemote(cfg RemoteConfig) *Remote {
	r := &Remote{
		cfg:        cfg.withDefaults(),
		workers:    make(map[string]*workerEntry),
		leases:     make(map[string]*lease),
		stopReaper: make(chan struct{}),
		reaperDone: make(chan struct{}),
	}
	r.cond = sync.NewCond(&r.mu)
	r.met = newRemoteMetrics(r.cfg.Metrics)
	go r.reaper()
	return r
}

// MetricsRegistry returns the registry the execution plane reports
// into, so the embedding service can expose one namespace.
func (r *Remote) MetricsRegistry() *metrics.Registry { return r.cfg.Metrics }

// Name implements Backend.
func (r *Remote) Name() string { return "remote" }

// Run implements Backend: each trial becomes a lease, workers compute
// them, and Run returns once every trial is terminal. maxParallel is
// ignored — aggregate worker capacity bounds fleet concurrency. With no
// workers registered, trials wait in the queue until a worker joins (or
// the context is cancelled); fleet emptiness is a health condition, not
// an error.
func (r *Remote) Run(ctx context.Context, trials []Trial, _ int) ([]*trainer.Result, []error) {
	results := make([]*trainer.Result, len(trials))
	errs := make([]error, len(trials))

	r.mu.Lock()
	if r.closed || r.draining {
		r.mu.Unlock()
		for i := range errs {
			errs[i] = ErrDraining
		}
		return results, errs
	}
	batch := make([]*lease, len(trials))
	slab := make([]lease, len(trials)) // one allocation per batch, not one per trial
	for i, t := range trials {
		r.nextLease++
		l := &slab[i]
		*l = lease{
			id:      leaseName(r.nextLease),
			trial:   t,
			attempt: 1,
			state:   leasePending,
			done:    make(chan struct{}),
		}
		r.leases[l.id] = l
		r.pending = append(r.pending, l)
		batch[i] = l
	}
	r.cond.Broadcast()
	r.mu.Unlock()

	for _, l := range batch {
		select {
		case <-l.done:
		case <-ctx.Done():
			// The job gave up. Mirror the local pool's cancellation
			// granularity: trials not yet on a worker fail immediately
			// with the context's error, while trials already computing
			// run to completion and commit — their results are returned
			// so the caller can salvage their knowledge. A computing
			// trial that can no longer finish (worker dies) fails
			// instead of requeueing.
			r.abandon(batch, ctx.Err())
			<-l.done
		}
	}

	r.mu.Lock()
	for i, l := range batch {
		results[i], errs[i] = l.result, l.err
		delete(r.leases, l.id) // forget terminal leases; late commits are rejected as unknown
	}
	r.mu.Unlock()
	return results, errs
}

// abandon handles a cancelled Run: pending leases fail now (they never
// started computing), leased ones are marked cancelled — the worker may
// finish and commit them, but requeue paths fail them with err.
func (r *Remote) abandon(batch []*lease, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, l := range batch {
		if l.terminal() {
			continue
		}
		if l.state == leasePending {
			r.removePendingLocked(l)
			r.terminalizeLocked(l, nil, err)
			continue
		}
		l.cancelled = true
		l.cancelErr = err
	}
}

// removePendingLocked drops a lease from the pending queue. Callers hold
// r.mu.
func (r *Remote) removePendingLocked(l *lease) {
	for i, p := range r.pending {
		if p == l {
			r.pending = append(r.pending[:i], r.pending[i+1:]...)
			return
		}
	}
}

// leaseName formats the old "ls-%06d" id without fmt's
// reflection-driven allocations (three per Sprintf on this path — the
// hottest daemon-side allocation the pprof pass surfaced outside the
// JSON codec itself).
func leaseName(n int) string { return paddedID('l', 's', n) }

// workerName formats "w-%06d" ids the same way.
func workerName(n int) string { return paddedID('w', 0, n) }

func paddedID(a, b byte, n int) string {
	buf := make([]byte, 0, 16)
	buf = append(buf, a)
	if b != 0 {
		buf = append(buf, b)
	}
	buf = append(buf, '-')
	head := len(buf)
	buf = strconv.AppendInt(buf, int64(n), 10)
	if d := len(buf) - head; d < 6 {
		buf = append(buf, "000000"[:6-d]...)
		copy(buf[head+6-d:], buf[head:head+d])
		copy(buf[head:], "000000"[:6-d])
	}
	return string(buf)
}

// terminalizeLocked moves a lease to its terminal state and releases its
// worker slot. Callers hold r.mu. The broadcast wakes stream granters
// (and parked long polls) whose worker just gained a free slot.
func (r *Remote) terminalizeLocked(l *lease, res *trainer.Result, err error) {
	if l.terminal() {
		return
	}
	l.result, l.err = res, err
	if err != nil {
		l.state = leaseFailed
	} else {
		l.state = leaseDone
		r.met.completed.Inc()
	}
	if l.worker != "" {
		if w := r.workers[l.worker]; w != nil {
			delete(w.inflight, l.id)
		}
		l.worker = ""
	}
	close(l.done)
	r.cond.Broadcast()
}

// Register admits a worker to the fleet and assigns its id. Workers may
// register while the backend drains — they will simply receive no
// leases.
func (r *Remote) Register(req RegisterRequest) (RegisterResponse, error) {
	if req.Capacity < 1 {
		req.Capacity = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return RegisterResponse{}, ErrDraining
	}
	r.nextWorker++
	w := &workerEntry{
		id:       workerName(r.nextWorker),
		name:     req.Name,
		capacity: req.Capacity,
		state:    workerActive,
		lastBeat: r.cfg.now(),
		inflight: make(map[string]*lease),
	}
	r.workers[w.id] = w
	r.cfg.Logf("exec: worker %s (%q, capacity %d) registered", w.id, w.name, w.capacity)
	return RegisterResponse{
		WorkerID:         w.id,
		HeartbeatSeconds: r.cfg.HeartbeatInterval.Seconds(),
		LeaseWaitSeconds: r.cfg.LeaseWait.Seconds(),
	}, nil
}

// Heartbeat records worker liveness. An unknown or evicted worker gets
// ErrUnknownWorker and must re-register (its previous leases are already
// requeued).
func (r *Remote) Heartbeat(workerID string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.workers[workerID]
	if w == nil || w.state != workerActive {
		return ErrUnknownWorker
	}
	w.lastBeat = r.cfg.now()
	return nil
}

// NextLease hands the worker its next trial, long-polling up to wait
// (capped by the configured LeaseWait) when the queue is empty. A nil
// assignment with nil error means "no work right now — poll again";
// ErrDraining (HTTP 503) tells the worker to back off instead, so a
// draining daemon is not hammered by instant re-polls. Any work-API
// call refreshes the worker's heartbeat: a worker parked in a long poll
// is evidently alive.
func (r *Remote) NextLease(workerID string, wait time.Duration) (*Assignment, error) {
	if wait <= 0 || wait > r.cfg.LeaseWait {
		wait = r.cfg.LeaseWait
	}
	deadline := time.Now().Add(wait)
	// sync.Cond has no timed wait; an AfterFunc broadcast bounds the
	// poll instead.
	wake := time.AfterFunc(wait, func() {
		r.mu.Lock()
		r.cond.Broadcast()
		r.mu.Unlock()
	})
	defer wake.Stop()

	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		w := r.workers[workerID]
		if w == nil || w.state != workerActive {
			return nil, ErrUnknownWorker
		}
		w.lastBeat = r.cfg.now()
		if r.closed || r.draining {
			return nil, ErrDraining // shutdown issues no new leases
		}
		if len(r.pending) > 0 && len(w.inflight) < w.capacity {
			l := r.pending[0]
			r.pending = r.pending[1:]
			l.state = leaseLeased
			l.worker = w.id
			w.inflight[l.id] = l
			asg := &Assignment{
				LeaseID:      l.id,
				Attempt:      l.attempt,
				TrialID:      l.trial.ID,
				Workload:     l.trial.Workload,
				Hyper:        l.trial.Hyper,
				Sys:          l.trial.Sys,
				Seed:         l.trial.Seed,
				StreamEpochs: l.trial.Observer != nil,
				Trainer:      l.trial.Trainer,
				CacheKey:     l.trial.CacheKey,
				Class:        l.trial.Class,
			}
			r.met.leaseGrants.Inc()
			return asg, nil
		}
		if !time.Now().Before(deadline) {
			return nil, nil
		}
		r.cond.Wait()
	}
}

// ReportEpoch relays one epoch-boundary observation to the trial's
// observer (PipeTune's pipelined controller, running daemon-side) and
// returns its directive. A revoked directive tells the worker to abandon
// the trial.
func (r *Remote) ReportEpoch(workerID, leaseID string, rep EpochReport) (EpochDirective, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epochLocked(workerID, r.leases[leaseID], rep.Attempt, rep.Epoch.Stats())
}

// streamReportEpoch is ReportEpoch for the binary wire: the lease id
// arrives as a view into the frame buffer, and indexing the map through
// string(leaseID) lets the compiler skip the string allocation.
func (r *Remote) streamReportEpoch(workerID string, leaseID []byte, attempt int, s trainer.EpochStats) (EpochDirective, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epochLocked(workerID, r.leases[string(leaseID)], attempt, s)
}

// epochLocked validates and delivers one epoch observation; both wires
// funnel through it so dedupe, staleness and observer semantics cannot
// diverge. Callers hold r.mu.
func (r *Remote) epochLocked(workerID string, l *lease, attempt int, s trainer.EpochStats) (EpochDirective, error) {
	w := r.workers[workerID]
	if w == nil || w.state != workerActive {
		return EpochDirective{Revoked: true}, ErrUnknownWorker
	}
	w.lastBeat = r.cfg.now()
	if l == nil || l.state != leaseLeased || l.worker != workerID || l.attempt != attempt {
		return EpochDirective{Revoked: true}, nil
	}
	if l.trial.Observer == nil {
		return EpochDirective{}, nil
	}
	// The agent redelivers a report whose response was lost: answer a
	// duplicate from the cache instead of advancing the observer twice.
	// A report OLDER than the last delivered epoch is a network-delayed
	// straggler whose retry was already processed — dropped entirely
	// (empty directive, no observer call): delivering it would feed the
	// controller an out-of-order observation.
	if s.Epoch == l.lastEpoch {
		return l.lastDirective, nil
	}
	if s.Epoch < l.lastEpoch {
		return EpochDirective{}, nil
	}
	// The observer runs UNDER the backend lock, deliberately: validation
	// and delivery must be atomic with eviction, or a stale report that
	// passed the check could land in the controller after an eviction's
	// Restart wiped the trial's state — corrupting the replacement
	// attempt's fresh replay. Observers are contractually cheap (the
	// OnTrialDone/observer hooks already run inside the scheduling loop
	// on the local path) and never call back into the backend, so the
	// lock ordering stays one-directional.
	next := l.trial.Observer.OnEpochEnd(l.trial.Seed, l.trial.Workload, l.trial.Hyper, s)
	l.lastEpoch = s.Epoch
	l.lastDirective = EpochDirective{Sys: next}
	return l.lastDirective, nil
}

// Complete commits a finished trial body — at most once: the lease must
// still be assigned to this worker at this attempt. Evicted-and-requeued
// leases, cancelled jobs and duplicate commits all land in
// ErrLeaseRevoked, and the stale result is discarded.
func (r *Remote) Complete(workerID, leaseID string, req CompleteRequest) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.commitLocked(workerID, r.leases[leaseID], req.Attempt, req.result(), req.Error, req.Abandoned)
}

// streamComplete is Complete for the binary wire (alloc-free lease
// lookup, result already reconstructed by the codec).
func (r *Remote) streamComplete(workerID string, leaseID []byte, attempt int, res *trainer.Result, errMsg string, abandoned bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.commitLocked(workerID, r.leases[string(leaseID)], attempt, res, errMsg, abandoned)
}

// commitLocked is the at-most-once commit shared by both wires. Callers
// hold r.mu.
func (r *Remote) commitLocked(workerID string, l *lease, attempt int, res *trainer.Result, errMsg string, abandoned bool) error {
	w := r.workers[workerID]
	if w == nil || w.state != workerActive {
		return ErrUnknownWorker
	}
	w.lastBeat = r.cfg.now()
	if l == nil || l.state != leaseLeased || l.worker != workerID || l.attempt != attempt {
		return ErrLeaseRevoked
	}
	switch {
	case abandoned:
		// The worker cannot finish (torn epoch stream): hand the trial
		// to another worker now instead of waiting for this worker's
		// eviction.
		delete(w.inflight, l.id)
		r.met.commits.With("abandoned").Inc()
		r.requeueLocked(l)
		return nil
	case errMsg != "":
		r.met.commits.With("failed").Inc()
		r.terminalizeLocked(l, nil, fmt.Errorf("exec: worker %s: %s", workerID, errMsg))
	default:
		if res != nil {
			r.met.commits.With("committed").Inc()
			r.terminalizeLocked(l, res, nil)
		} else {
			r.met.commits.With("empty").Inc()
			r.terminalizeLocked(l, nil, fmt.Errorf("exec: worker %s committed an empty result", workerID))
		}
	}
	w.done++
	return nil
}

// requeueLocked gives a leased trial a fresh attempt at the head of the
// queue — unless its job already gave up (fail with the job's error) or
// the plane is draining (fail with ErrDraining; no lease will ever be
// issued again). The trial's Restart hook runs before the lease
// re-enters the queue, so no replacement worker can observe stale
// observer state. Callers hold r.mu and have already detached the lease
// from its worker's inflight set.
func (r *Remote) requeueLocked(l *lease) {
	l.worker = ""
	switch {
	case l.cancelled:
		r.terminalizeLocked(l, nil, l.cancelErr)
		return
	case r.draining || r.closed:
		r.terminalizeLocked(l, nil, ErrDraining)
		return
	}
	if l.attempt >= maxLeaseAttempts {
		// A trial that keeps losing its worker is more likely killing
		// them (a poison body) than unlucky: requeueing it again would
		// serially destroy the fleet. Fail the trial — and with it the
		// job — with a diagnosis instead.
		r.terminalizeLocked(l, nil, fmt.Errorf(
			"exec: trial %d lost its worker %d times (poison trial or unstable fleet)",
			l.trial.ID, l.attempt))
		return
	}
	if l.trial.Restart != nil {
		l.trial.Restart()
	}
	l.attempt++
	l.state = leasePending
	l.lastEpoch = 0 // the new attempt replays from epoch one
	l.lastDirective = EpochDirective{}
	r.pending = append([]*lease{l}, r.pending...)
	r.met.requeues.Inc()
	r.cond.Broadcast()
}

// maxLeaseAttempts bounds how many workers one trial may consume before
// it is declared poison and failed.
const maxLeaseAttempts = 5

// reaper evicts workers that miss MissedHeartbeats consecutive
// intervals, requeueing their leases at the head of the queue (attempt
// bumped, so the evicted worker's late reports are void).
func (r *Remote) reaper() {
	defer close(r.reaperDone)
	t := time.NewTicker(r.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stopReaper:
			return
		case <-t.C:
			r.evictStale()
		}
	}
}

// evictStale scans the registry once; split out for tests.
func (r *Remote) evictStale() {
	horizon := time.Duration(r.cfg.MissedHeartbeats) * r.cfg.HeartbeatInterval
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.cfg.now()
	for _, w := range r.workers {
		if w.state != workerActive || now.Sub(w.lastBeat) <= horizon {
			continue
		}
		r.evictLocked(w, fmt.Sprintf("missed %d heartbeats", r.cfg.MissedHeartbeats))
	}
}

// evictLocked removes a worker from duty and requeues its in-flight
// leases via requeueLocked (attempt bumped — late reports from the
// evicted worker no longer match and are rejected; cancelled or
// draining trials fail instead of requeueing). The Restart hook is
// restricted to observer-side cleanup (it must not call back into the
// backend), which makes running it under r.mu safe. Callers hold r.mu.
func (r *Remote) evictLocked(w *workerEntry, why string) {
	w.state = workerEvicted
	r.met.evictions.Inc()
	if w.closeStream != nil {
		// Sever the binary stream: the session's reader unblocks and the
		// worker re-registers, exactly like a JSON worker's 404.
		w.closeStream()
		w.closeStream = nil
	}
	requeued := 0
	for id, l := range w.inflight {
		delete(w.inflight, id)
		if l.terminal() {
			continue
		}
		r.requeueLocked(l)
		if l.state == leasePending {
			requeued++
		}
	}
	// Keep the last few evicted entries for operator debugging, not all
	// of them forever.
	r.evictedOrder = append(r.evictedOrder, w.id)
	for len(r.evictedOrder) > maxEvictedRetained {
		delete(r.workers, r.evictedOrder[0])
		r.evictedOrder = r.evictedOrder[1:]
	}
	// Wake the worker's granter (and anything waiting on its slots) so it
	// observes the eviction even when no lease was requeued.
	r.cond.Broadcast()
	r.cfg.Logf("exec: worker %s (%q) evicted (%s), %d lease(s) requeued", w.id, w.name, why, requeued)
}

// maxEvictedRetained bounds how many evicted registry entries the fleet
// surfaces keep showing.
const maxEvictedRetained = 32

// Drain shuts the execution plane down gracefully: lease issuance stops
// immediately; still-pending trials fail at once (no worker will ever
// receive them); in-flight trials get up to timeout to commit; whatever
// remains after the deadline fails with ErrDraining. Jobs waiting on a
// failed trial turn failed — undrained work is reported, never silently
// lost. Idempotent.
func (r *Remote) Drain(timeout time.Duration) {
	r.mu.Lock()
	if !r.draining {
		r.draining = true
		for _, l := range r.pending {
			r.terminalizeLocked(l, nil, ErrDraining)
		}
		r.pending = nil
		r.cond.Broadcast()
		r.cfg.Logf("exec: draining (timeout %v): %d in-flight lease(s)", timeout, r.leasedCountLocked())
	}
	r.mu.Unlock()

	deadline := time.Now().Add(timeout)
	for {
		r.mu.Lock()
		outstanding := 0
		for _, l := range r.leases {
			if !l.terminal() {
				outstanding++
			}
		}
		r.mu.Unlock()
		if outstanding == 0 || !time.Now().Before(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Whatever is still live — in-flight past the deadline, or requeued
	// by an eviction that raced the drain — fails now.
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, l := range r.leases {
		if !l.terminal() {
			r.terminalizeLocked(l, nil, ErrDraining)
		}
	}
}

// leasedCountLocked counts leases currently on workers. Callers hold
// r.mu.
func (r *Remote) leasedCountLocked() int {
	n := 0
	for _, l := range r.leases {
		if l.state == leaseLeased {
			n++
		}
	}
	return n
}

// Close stops the reaper and fails anything still outstanding. Call
// after Drain (or alone, for an abrupt stop).
func (r *Remote) Close() {
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		for _, l := range r.leases {
			if !l.terminal() {
				r.terminalizeLocked(l, nil, ErrDraining)
			}
		}
		r.pending = nil
		// Sever every binary stream so blocked session readers unwind;
		// their workers' reconnect attempts are refused while closed.
		for _, w := range r.workers {
			if w.closeStream != nil {
				w.closeStream()
				w.closeStream = nil
			}
		}
		r.cond.Broadcast()
		close(r.stopReaper)
	}
	r.mu.Unlock()
	<-r.reaperDone
}

// wireLabel names the mounted work protocol(s) for fleet status.
func (r *Remote) wireLabel() string {
	switch r.cfg.Wire {
	case WireJSON, WireBinary:
		return r.cfg.Wire
	default:
		return WireJSON + "+" + WireBinary
	}
}

// SetClusterStatus records the simulated cluster's node-class composition
// for health surfaces (GET /healthz and GET /v1/fleet). The embedding
// service wires it once at startup, before the backend serves requests.
func (r *Remote) SetClusterStatus(classes []cluster.ClassStatus, spot, onDemand int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.classes = append([]cluster.ClassStatus(nil), classes...)
	r.spotNodes, r.onDemandNodes = spot, onDemand
}

// Fleet snapshots the execution plane for health surfaces, workers
// sorted by id (evicted entries included — an operator debugging a lost
// worker wants to see it).
func (r *Remote) Fleet() FleetStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	fs := FleetStatus{
		Backend:         "remote",
		Wire:            r.wireLabel(),
		Draining:        r.draining,
		PendingTrials:   len(r.pending),
		LeasedTrials:    r.leasedCountLocked(),
		CompletedTrials: int(r.met.completed.Value()),
		RequeuedTrials:  int(r.met.requeues.Value()),
		Classes:         append([]cluster.ClassStatus(nil), r.classes...),
		SpotNodes:       r.spotNodes,
		OnDemandNodes:   r.onDemandNodes,
	}
	for _, w := range r.workers {
		fs.Workers = append(fs.Workers, WorkerStatus{
			ID:            w.id,
			Name:          w.name,
			State:         w.state.String(),
			Capacity:      w.capacity,
			Inflight:      len(w.inflight),
			TrialsDone:    w.done,
			LastHeartbeat: w.lastBeat,
		})
	}
	sort.Slice(fs.Workers, func(i, j int) bool { return fs.Workers[i].ID < fs.Workers[j].ID })
	return fs
}
