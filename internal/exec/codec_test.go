package exec

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"pipetune/internal/params"
	"pipetune/internal/perf"
	"pipetune/internal/trainer"
	"pipetune/internal/workload"
	"pipetune/internal/xrand"
)

// sampleAssignment builds a representative assignment for codec tests.
func sampleAssignment() Assignment {
	h := params.DefaultHyper()
	h.Epochs = 3
	return Assignment{
		LeaseID:      "ls-000042",
		Attempt:      2,
		TrialID:      7,
		Workload:     workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST},
		Hyper:        h,
		Sys:          params.DefaultSysConfig(),
		Seed:         0xdeadbeefcafe,
		StreamEpochs: true,
		Trainer:      TrainerConfig{TrainSize: 96, TestSize: 48, Load: 1.5, DataSeed: 0x0da7a5eed, CacheBytes: 32 << 20, Parallelism: 4},
		CacheKey:     "v1|0/0|229351022/96/48|32/3fa999999999999a/3fc999999999999a/64|2a",
		Class:        "m5.12xlarge-spot",
	}
}

// sampleResult builds a result that satisfies the trainer's accumulation
// invariants (EndTime = running duration sum, EnergyJ = epoch sum,
// Accuracy = last train epoch, Duration = final clock) — the contract
// the delta codec replays. Seeded so fuzzing can vary it.
func sampleResult(seed uint64, nEpochs int, baseSys params.SysConfig) *trainer.Result {
	rng := xrand.New(seed)
	res := &trainer.Result{
		Workload: workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST},
		Hyper:    params.DefaultHyper(),
	}
	sys := baseSys
	clock := 0.0
	for i := 0; i < nEpochs; i++ {
		if i > 0 && rng.Float64() < 0.4 { // mid-trial system switch
			sys = params.SysConfig{Cores: 1 + int(rng.Uint64()%64), MemoryGB: 1 + int(rng.Uint64()%256)}
		}
		e := trainer.EpochStats{
			Epoch:     i,
			Init:      i == 0,
			Sys:       sys,
			Duration:  rng.Float64() * 100,
			TrainLoss: rng.Float64(),
			Accuracy:  rng.Float64(),
			EnergyJ:   rng.Float64() * 1e4,
		}
		if pl := int(rng.Uint64() % 4); pl > 0 {
			e.Profile = make(perf.Profile, pl*16)
			for j := range e.Profile {
				e.Profile[j] = rng.Float64() * 1e6
			}
		}
		clock += e.Duration
		e.EndTime = clock
		res.Epochs = append(res.Epochs, e)
		res.EnergyJ += e.EnergyJ
		if !e.Init {
			res.Accuracy = e.Accuracy
		}
	}
	res.Duration = clock
	res.FinalSys = sys
	return res
}

// encodeFrameBytes assembles a complete frame (header + payload) for a
// payload builder — test-side capture of "real frames" for seeds.
func encodeFrameBytes(t testing.TB, ft byte, build func(w *wirebuf)) []byte {
	t.Helper()
	var buf bytes.Buffer
	fw := &frameWriter{w: &buf}
	wb := getWirebuf()
	build(wb)
	if err := fw.send(ft, wb.b); err != nil {
		t.Fatal(err)
	}
	putWirebuf(wb)
	return buf.Bytes()
}

// TestFrameRoundTrip pins the framing discipline: frames written by
// frameWriter come back intact through readFrame, in order.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	fw := &frameWriter{w: &buf}
	payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xAB}, 5000)}
	for i, p := range payloads {
		if err := fw.send(byte(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for i, want := range payloads {
		ft, got, err := readFrame(&buf, &scratch)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if ft != byte(i+1) || !bytes.Equal(got, want) {
			t.Fatalf("frame %d: type %d len %d, want type %d len %d", i, ft, len(got), i+1, len(want))
		}
	}
}

// TestFrameCorruptionDetected flips every byte of a frame in turn: each
// mutation must surface as an error (or, for the type byte, an intact
// read of a different type — the dispatcher's problem), never as
// silently altered payload.
func TestFrameCorruptionDetected(t *testing.T) {
	frame := encodeFrameBytes(t, frameHello, func(w *wirebuf) { encodeHello(w, "worker-a", 4) })
	var scratch []byte
	for i := range frame {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x01
		ft, p, err := readFrame(bytes.NewReader(mut), &scratch)
		if i == 0 {
			// The type byte is outside the CRC; a flip yields a different
			// frame type with an intact payload.
			if err != nil || ft == frameHello {
				t.Fatalf("type-byte flip: ft %d err %v", ft, err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("flip at byte %d decoded silently (payload %d bytes)", i, len(p))
		}
	}
	// Truncation at every length must error, never hang or panic.
	for n := 0; n < len(frame); n++ {
		if _, _, err := readFrame(bytes.NewReader(frame[:n]), &scratch); err == nil {
			t.Fatalf("truncation to %d bytes decoded silently", n)
		}
	}
}

// TestAssignmentRoundTrip pins the grant codec field by field.
func TestAssignmentRoundTrip(t *testing.T) {
	want := []Assignment{sampleAssignment(), {LeaseID: "ls-000001", Attempt: 1, Trainer: TrainerConfig{TrainSize: 1, TestSize: 1}}}
	want[1].StreamEpochs = false
	wb := getWirebuf()
	defer putWirebuf(wb)
	wb.uvarint(uint64(len(want)))
	for i := range want {
		asg := want[i]
		tr := Trial{
			ID:       asg.TrialID,
			Workload: asg.Workload,
			Hyper:    asg.Hyper,
			Sys:      asg.Sys,
			Seed:     asg.Seed,
			Trainer:  asg.Trainer,
			CacheKey: asg.CacheKey,
			Class:    asg.Class,
		}
		if asg.StreamEpochs {
			tr.Observer = trainer.ObserverFunc(func(uint64, workload.Workload, params.Hyper, trainer.EpochStats) *params.SysConfig { return nil })
		}
		appendAssignment(wb, asg.LeaseID, asg.Attempt, &tr)
	}
	got, err := decodeGrant(wb.b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("grant round trip:\n got %+v\nwant %+v", got, want)
	}
}

// TestEpochFrameRoundTrip pins the observation codec, profile included.
func TestEpochFrameRoundTrip(t *testing.T) {
	want := trainer.EpochStats{
		Epoch: 3, Sys: params.SysConfig{Cores: 16, MemoryGB: 32},
		Duration: 12.5, EndTime: 40.25, TrainLoss: 0.31, Accuracy: 0.88, EnergyJ: 512.5,
		Profile: perf.Profile{1, 2.5, math.Pi},
	}
	wb := getWirebuf()
	defer putWirebuf(wb)
	encodeEpochFrame(wb, "ls-000007", 4, &want)
	leaseID, attempt, got, err := decodeEpochFrame(wb.b)
	if err != nil {
		t.Fatal(err)
	}
	if string(leaseID) != "ls-000007" || attempt != 4 {
		t.Fatalf("lease coords %q/%d", leaseID, attempt)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("epoch round trip:\n got %+v\nwant %+v", got, want)
	}
}

// TestResultDeltaRoundTrip is the codec half of the parity guarantee: a
// delta-encoded result decodes bit-identical — including the recomputed
// EndTime/Duration/EnergyJ/Accuracy and the per-epoch sys chain.
func TestResultDeltaRoundTrip(t *testing.T) {
	base := params.DefaultSysConfig()
	for seed := uint64(1); seed <= 16; seed++ {
		want := sampleResult(seed, 1+int(seed%5), base)
		wb := getWirebuf()
		encodeComplete(wb, "ls-000009", 1, completeOK, "", want, base)
		leaseID, attempt, status, errMsg, got, err := decodeComplete(wb.b, want.Workload, want.Hyper, base)
		putWirebuf(wb)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if string(leaseID) != "ls-000009" || attempt != 1 || status != completeOK || errMsg != "" {
			t.Fatalf("seed %d: header %q/%d/%d/%q", seed, leaseID, attempt, status, errMsg)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: delta round trip diverged:\n got %+v\nwant %+v", seed, got, want)
		}
	}
}

// TestResultDeltaRealTrial round-trips an actual trainer.Run result —
// the invariants the codec replays must be the trainer's, not just the
// test generator's.
func TestResultDeltaRealTrial(t *testing.T) {
	tr := smallTrainer()
	asg := realTrials(tr, 1)[0]
	want, err := tr.Run(asg.Workload, asg.Hyper, asg.Sys, asg.Seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	wb := getWirebuf()
	defer putWirebuf(wb)
	encodeComplete(wb, "ls-000001", 1, completeOK, "", want, asg.Sys)
	_, _, _, _, got, err := decodeComplete(wb.b, asg.Workload, asg.Hyper, asg.Sys)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("real trial result diverged through the delta codec")
	}
}

// fuzzSeedFrames captures one real frame of every type — the corpus the
// fuzzers start from.
func fuzzSeedFrames(t testing.TB) [][]byte {
	asg := sampleAssignment()
	res := sampleResult(3, 3, asg.Sys)
	st := res.Epochs[1]
	sw := params.SysConfig{Cores: 16, MemoryGB: 32}
	return [][]byte{
		encodeFrameBytes(t, frameHello, func(w *wirebuf) { encodeHello(w, "worker-a", 4) }),
		encodeFrameBytes(t, frameWelcome, func(w *wirebuf) {
			encodeWelcome(w, RegisterResponse{WorkerID: "w-000001", HeartbeatSeconds: 2, LeaseWaitSeconds: 5})
		}),
		encodeFrameBytes(t, frameHeartbeat, func(*wirebuf) {}),
		encodeFrameBytes(t, frameGrant, func(w *wirebuf) {
			w.uvarint(1)
			tr := Trial{ID: asg.TrialID, Workload: asg.Workload, Hyper: asg.Hyper, Sys: asg.Sys, Seed: asg.Seed, Trainer: asg.Trainer}
			appendAssignment(w, asg.LeaseID, asg.Attempt, &tr)
		}),
		encodeFrameBytes(t, frameEpoch, func(w *wirebuf) { encodeEpochFrame(w, asg.LeaseID, asg.Attempt, &st) }),
		encodeFrameBytes(t, frameDirective, func(w *wirebuf) {
			encodeDirective(w, []byte(asg.LeaseID), asg.Attempt, 2, EpochDirective{Sys: &sw})
		}),
		encodeFrameBytes(t, frameComplete, func(w *wirebuf) {
			encodeComplete(w, asg.LeaseID, asg.Attempt, completeOK, "", res, asg.Sys)
		}),
		encodeFrameBytes(t, frameComplete, func(w *wirebuf) {
			encodeComplete(w, asg.LeaseID, asg.Attempt, completeError, "trial body panicked", nil, asg.Sys)
		}),
		encodeFrameBytes(t, frameAck, func(w *wirebuf) { encodeAck(w, []byte(asg.LeaseID), asg.Attempt, ackCommitted) }),
	}
}

// FuzzFrameDecode drives arbitrary bytes through the frame reader and
// every payload decoder. The invariant under fuzz: never panic, never
// hang, and never accept a frame that fails the length/CRC/structure
// discipline — a corrupt frame must surface as an error, because the
// stream reacts by evicting the worker (the requeue path), and silent
// acceptance would corrupt trial results instead.
func FuzzFrameDecode(f *testing.F) {
	for _, frame := range fuzzSeedFrames(f) {
		f.Add(frame)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var scratch []byte
		r := bytes.NewReader(data)
		ft, p, err := readFrame(r, &scratch)
		if err != nil {
			return // rejected at the framing layer: exactly the contract
		}
		// The frame passed length+CRC; every decoder must now either
		// decode it fully or reject it — no panics, no partial reads
		// accepted. Decoders are exercised regardless of the type byte:
		// a mismatched decoder must also fail safe.
		_, _, _ = decodeHello(p)
		_, _ = decodeWelcome(p)
		_, _ = decodeGrant(p)
		_, _, _, _ = decodeEpochFrame(p)
		_, _, _, _, _ = decodeDirective(p)
		_, _, _, _, _, _ = decodeComplete(p, workload.Workload{}, params.Hyper{}, params.SysConfig{})
		_, _, _, _ = decodeAck(p)
		switch ft {
		case frameHello:
			if name, capacity, err := decodeHello(p); err == nil && capacity < 0 {
				t.Fatalf("hello decoded negative capacity %d (name %q)", capacity, name)
			}
		}
	})
}

// FuzzResultRoundTrip generates invariant-respecting results and
// requires the delta codec to reproduce them bit for bit — the fuzzing
// twin of TestResultDeltaRoundTrip, exploring epoch counts, sys-switch
// chains and profile shapes the hand-picked seeds miss.
func FuzzResultRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint8(1), uint8(8), uint8(4))
	f.Add(uint64(42), uint8(5), uint8(1), uint8(1))
	f.Add(uint64(7), uint8(12), uint8(64), uint8(255))
	f.Fuzz(func(t *testing.T, seed uint64, nEpochs, cores, mem uint8) {
		base := params.SysConfig{Cores: 1 + int(cores%64), MemoryGB: 1 + int(mem)}
		want := sampleResult(seed, int(nEpochs%16), base)
		wb := getWirebuf()
		defer putWirebuf(wb)
		encodeComplete(wb, "ls-000123", 3, completeOK, "", want, base)
		_, _, _, _, got, err := decodeComplete(wb.b, want.Workload, want.Hyper, base)
		if err != nil {
			t.Fatalf("own encoding rejected: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip diverged for seed %d epochs %d", seed, nEpochs)
		}
	})
}
