package exec

import (
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"pipetune/internal/params"
	"pipetune/internal/trainer"
	"pipetune/internal/workload"
)

// startFleet boots a Remote behind a real HTTP server plus n in-process
// Agents speaking the real wire protocol — the full remote stack in one
// test binary. Agents speak cfg.Wire ("" = the JSON wire; the daemon
// mounts both unless cfg.Wire restricts it).
func startFleet(t *testing.T, n int, cfg RemoteConfig) (*Remote, context.CancelFunc) {
	t.Helper()
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 50 * time.Millisecond
	}
	if cfg.LeaseWait == 0 {
		cfg.LeaseWait = 50 * time.Millisecond
	}
	r := NewRemote(cfg)
	srv := httptest.NewServer(r.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		agent := NewAgent(AgentConfig{
			Server:   srv.URL,
			Token:    cfg.Token,
			Name:     "test-agent",
			Capacity: 2,
			Wire:     cfg.Wire,
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = agent.Run(ctx)
		}()
	}
	t.Cleanup(func() {
		cancel()
		wg.Wait()
		srv.Close()
		r.Close()
	})
	return r, cancel
}

// TestAgentComputesRemoteTrialsBitIdentically runs real trial bodies
// through the full HTTP stack — register, lease, epoch streaming,
// commit — and requires results bit-identical to the local backend's.
func TestAgentComputesRemoteTrialsBitIdentically(t *testing.T) {
	r, _ := startFleet(t, 2, RemoteConfig{})

	tr := smallTrainer()
	trials := realTrials(tr, 4)
	// Trial 1 carries an observer that switches the system configuration
	// after epoch 1 — the pipelined-tuning path must survive the wire.
	var obsMu sync.Mutex
	var remoteSeen []trainer.EpochStats
	switched := params.SysConfig{Cores: 16, MemoryGB: 32}
	mkObserver := func(sink *[]trainer.EpochStats) trainer.EpochObserver {
		return trainer.ObserverFunc(func(_ uint64, _ workload.Workload, _ params.Hyper, s trainer.EpochStats) *params.SysConfig {
			obsMu.Lock()
			*sink = append(*sink, s)
			obsMu.Unlock()
			if s.Epoch == 1 {
				return &switched
			}
			return nil
		})
	}
	trials[1].Observer = mkObserver(&remoteSeen)

	results, errs := r.Run(context.Background(), trials, 0)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("remote trial %d: %v", i, err)
		}
	}

	var localSeen []trainer.EpochStats
	localTrials := realTrials(smallTrainer(), 4)
	localTrials[1].Observer = mkObserver(&localSeen)
	want, werrs := NewLocal(smallTrainer()).Run(context.Background(), localTrials, 2)
	for i, err := range werrs {
		if err != nil {
			t.Fatalf("local trial %d: %v", i, err)
		}
	}

	for i := range trials {
		if !reflect.DeepEqual(results[i], want[i]) {
			t.Fatalf("remote trial %d diverges from local backend", i)
		}
	}
	if results[1].FinalSys != switched {
		t.Fatalf("observer switch lost over the wire: FinalSys %v, want %v", results[1].FinalSys, switched)
	}
	if !reflect.DeepEqual(remoteSeen, localSeen) {
		t.Fatalf("observer saw different epochs remotely:\n remote %d epochs\n local  %d epochs", len(remoteSeen), len(localSeen))
	}
	fs := r.Fleet()
	if fs.CompletedTrials != 4 {
		t.Fatalf("fleet completed %d trials, want 4", fs.CompletedTrials)
	}
}

// TestAgentTokenAuth pins the shared-token gate: a wrong token is
// rejected with a terminal error, the right one is admitted.
func TestAgentTokenAuth(t *testing.T) {
	r := NewRemote(RemoteConfig{Token: "s3cret", HeartbeatInterval: 50 * time.Millisecond})
	t.Cleanup(r.Close)
	srv := httptest.NewServer(r.Handler())
	t.Cleanup(srv.Close)

	bad := NewAgent(AgentConfig{Server: srv.URL, Token: "wrong"})
	if err := bad.Run(context.Background()); !errors.Is(err, ErrBadToken) {
		t.Fatalf("wrong token: %v, want ErrBadToken", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	good := NewAgent(AgentConfig{Server: srv.URL, Token: "s3cret"})
	done := make(chan error, 1)
	go func() { done <- good.Run(ctx) }()
	deadline := time.Now().Add(2 * time.Second)
	for len(r.Fleet().Workers) == 0 {
		if !time.Now().Before(deadline) {
			t.Fatal("correctly-tokened agent never registered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("agent exit: %v, want context.Canceled", err)
	}
}

// TestAgentSurvivesEvictionAndReRegisters kills the connection story
// end to end: an agent that misses the eviction window re-registers and
// keeps serving, and trials requeued from its dead registration still
// complete.
func TestAgentSurvivesEvictionAndReRegisters(t *testing.T) {
	clock := newTestClock()
	r := NewRemote(RemoteConfig{
		HeartbeatInterval: 50 * time.Millisecond,
		MissedHeartbeats:  2,
		LeaseWait:         20 * time.Millisecond,
		now:               clock.Now,
	})
	t.Cleanup(r.Close)
	srv := httptest.NewServer(r.Handler())
	t.Cleanup(srv.Close)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	agent := NewAgent(AgentConfig{Server: srv.URL, Capacity: 1})
	go func() { _ = agent.Run(ctx) }()

	waitFor := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if !time.Now().Before(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor(func() bool { return len(r.Fleet().Workers) == 1 }, "registration")

	// Push the fake clock past the eviction horizon: the agent (whose
	// real-time heartbeats cannot move the fake clock) is evicted, then
	// re-registers on its next 404.
	clock.Advance(time.Second)
	r.evictStale()
	waitFor(func() bool {
		fs := r.Fleet()
		active := 0
		for _, w := range fs.Workers {
			if w.State == "active" {
				active++
			}
		}
		return active == 1 && len(fs.Workers) == 2
	}, "re-registration after eviction")

	// The re-registered agent still computes trials.
	tr := smallTrainer()
	results, errs := r.Run(context.Background(), realTrials(tr, 1), 0)
	if errs[0] != nil {
		t.Fatalf("trial after re-registration: %v", errs[0])
	}
	if results[0] == nil {
		t.Fatal("no result after re-registration")
	}
}
