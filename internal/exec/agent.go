package exec

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"pipetune/internal/params"
	"pipetune/internal/trainer"
	"pipetune/internal/workload"
)

// ErrBadToken aborts an agent whose token the daemon rejects — retrying
// would never succeed.
var ErrBadToken = errors.New("exec: worker token rejected by the daemon")

// AgentConfig wires a worker-side agent.
type AgentConfig struct {
	// Server is the pipetuned base URL, e.g. "http://localhost:8080".
	Server string
	// Token is the shared worker token (must match the daemon's
	// -worker-token; empty when the daemon runs open).
	Token string
	// Name labels the worker in fleet status (default: hostname).
	Name string
	// Wire selects the work protocol: WireBinary for the persistent
	// framed stream, WireJSON (or "") for the long-poll HTTP/JSON API.
	// The daemon must mount the matching wire (-exec-wire).
	Wire string
	// Capacity is how many trial bodies compute concurrently (default 1).
	Capacity int
	// TrainParallelism is the worker's default deterministic intra-trial
	// kernel parallelism degree, applied only when an assignment's
	// TrainerConfig does not ship its own (the daemon's knob wins, so
	// mixed fleets stay uniformly configured). 0/1 = serial. Never
	// changes trial bits — the nn kernels are bit-identical at every
	// degree.
	TrainParallelism int
	// Heartbeat overrides the beat cadence; 0 adopts the daemon's
	// advertised interval.
	Heartbeat time.Duration
	// LeaseWait bounds each lease long poll; 0 adopts the daemon's
	// advertised bound.
	LeaseWait time.Duration
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
	// HTTPClient overrides http.DefaultClient (tests).
	HTTPClient *http.Client
}

// Agent is the worker-side half of the remote execution plane: it
// registers with the daemon, leases trials, computes them on a local
// trainer substrate reproducing the daemon's configuration, streams
// epoch observations back, and heartbeats. On eviction (a long network
// partition, a daemon restart) it re-registers and resumes — the daemon
// has already requeued whatever it was holding.
type Agent struct {
	cfg AgentConfig

	mu       sync.Mutex
	trainers map[TrainerConfig]*trainer.Runner // corpus caches stay warm across trials

	// stats is the current JSON-wire session's telemetry collector
	// (heartbeats ship its snapshots); swapped per session so the
	// daemon's per-registration delta baseline of zero is exact. The
	// binary wire keeps its collector on the stream session instead.
	stats atomic.Pointer[workerStats]
}

// NewAgent builds an agent.
func NewAgent(cfg AgentConfig) *Agent {
	if cfg.Capacity < 1 {
		cfg.Capacity = 1
	}
	if cfg.Name == "" {
		if host, err := os.Hostname(); err == nil {
			cfg.Name = host
		} else {
			cfg.Name = "pipetune-worker"
		}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Agent{cfg: cfg, trainers: make(map[TrainerConfig]*trainer.Runner)}
}

// Run serves until the context is cancelled (the normal exit, returning
// ctx.Err()) or the daemon rejects the token. Everything else —
// the daemon not up yet, restarts, evictions — is absorbed by retry and
// re-registration.
func (a *Agent) Run(ctx context.Context) error {
	if a.cfg.Wire == WireBinary {
		return a.runBinary(ctx)
	}
	for {
		reg, err := a.register(ctx)
		if err != nil {
			return err
		}
		a.cfg.Logf("worker: registered as %s with %s (capacity %d)", reg.WorkerID, a.cfg.Server, a.cfg.Capacity)
		a.session(ctx, reg)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		a.cfg.Logf("worker: session %s ended (evicted or daemon restarted); re-registering", reg.WorkerID)
	}
}

// register retries until the daemon admits the worker, the token is
// rejected, or ctx ends.
func (a *Agent) register(ctx context.Context) (RegisterResponse, error) {
	req := RegisterRequest{Name: a.cfg.Name, Capacity: a.cfg.Capacity}
	for {
		var resp RegisterResponse
		code, err := a.doJSON(ctx, "/v1/workers", req, &resp, 10*time.Second)
		switch {
		case err == nil && code == http.StatusOK:
			return resp, nil
		case code == http.StatusUnauthorized:
			return RegisterResponse{}, ErrBadToken
		}
		if err != nil {
			a.cfg.Logf("worker: register: %v (retrying)", err)
		} else {
			a.cfg.Logf("worker: register: daemon answered %d (retrying)", code)
		}
		select {
		case <-ctx.Done():
			return RegisterResponse{}, ctx.Err()
		case <-time.After(500 * time.Millisecond):
		}
	}
}

// session runs one registration's lifetime: a heartbeat loop plus
// Capacity lease loops. It returns when ctx ends or the daemon stops
// recognising the worker id (eviction) — any loop noticing a 404 ends
// the whole session so Run re-registers.
func (a *Agent) session(ctx context.Context, reg RegisterResponse) {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	st := a.newSessionStats()

	hb := a.cfg.Heartbeat
	if hb <= 0 {
		hb = time.Duration(reg.HeartbeatSeconds * float64(time.Second))
	}
	if hb <= 0 {
		hb = 2 * time.Second
	}
	wait := a.cfg.LeaseWait
	if wait <= 0 {
		wait = time.Duration(reg.LeaseWaitSeconds * float64(time.Second))
	}
	if wait <= 0 {
		wait = 5 * time.Second
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			select {
			case <-sctx.Done():
				return
			case <-t.C:
				// The beat carries the cumulative telemetry snapshot as
				// its (otherwise empty) body — the JSON-wire twin of the
				// binary Stats frame.
				series := st.series()
				code, err := a.doJSON(sctx, "/v1/workers/"+reg.WorkerID+"/heartbeat", HeartbeatRequest{Series: &series}, nil, 2*hb)
				if err == nil && (code == http.StatusNotFound || code == http.StatusUnauthorized) {
					// Evicted, or the daemon's token rotated: end the
					// session. Run re-registers — and surfaces
					// ErrBadToken if the token truly no longer fits.
					cancel()
					return
				}
			}
		}
	}()
	for i := 0; i < a.cfg.Capacity; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a.leaseLoop(sctx, cancel, reg.WorkerID, wait)
		}()
	}
	wg.Wait()
}

// leaseLoop pulls and computes trials until the session ends.
func (a *Agent) leaseLoop(ctx context.Context, evicted context.CancelFunc, workerID string, wait time.Duration) {
	path := fmt.Sprintf("/v1/workers/%s/lease?waitMs=%d", workerID, wait.Milliseconds())
	for ctx.Err() == nil {
		var asg Assignment
		code, err := a.doJSON(ctx, path, nil, &asg, wait+10*time.Second)
		switch {
		case err == nil && code == http.StatusOK:
			a.runAssignment(ctx, evicted, workerID, asg)
		case err == nil && code == http.StatusNoContent:
			// No work right now; the server long-polled already, so poll
			// again immediately.
		case err == nil && (code == http.StatusNotFound || code == http.StatusUnauthorized):
			// Evicted or token rotated: end the session; Run's
			// re-register decides between rejoining and ErrBadToken.
			evicted()
			return
		default:
			// Transport failure (daemon restarting?) or a persistent
			// error status: back off instead of hammering the daemon.
			select {
			case <-ctx.Done():
			case <-time.After(500 * time.Millisecond):
			}
		}
	}
}

// runAssignment computes one leased trial body and commits the result.
// A lease the worker cannot finish or report is never left dangling:
// abandonment is committed to the daemon (which requeues the trial
// immediately), and if even that is unreachable the session ends so the
// stale registration stops heartbeating and eviction requeues the
// lease.
func (a *Agent) runAssignment(ctx context.Context, endSession context.CancelFunc, workerID string, asg Assignment) {
	tr := a.trainerFor(asg.Trainer)
	revoked := false
	var obs trainer.EpochObserver
	if asg.StreamEpochs {
		obs = trainer.ObserverFunc(func(_ uint64, _ workload.Workload, _ params.Hyper, s trainer.EpochStats) *params.SysConfig {
			if revoked {
				return nil
			}
			dir, ok := a.reportEpoch(ctx, workerID, asg, s)
			if !ok || dir.Revoked {
				// The lease is void (or the daemon unreachable): the
				// trainer cannot be interrupted mid-trial, so finish the
				// remaining epochs on the current configuration and let
				// the commit be rejected. The authoritative attempt runs
				// elsewhere.
				revoked = true
				return nil
			}
			return dir.Sys
		})
	}
	start := time.Now()
	res, err := runBody(tr, asg, obs)
	epochs := 0
	if res != nil {
		epochs = len(res.Epochs)
	}
	a.stats.Load().observeTrial(time.Since(start).Seconds(), epochs)
	req := CompleteRequest{Attempt: asg.Attempt}
	switch {
	case revoked:
		// The epoch stream tore (or the daemon revoked the lease): this
		// worker's copy is void, but the daemon must learn the trial
		// needs another worker NOW — a still-heartbeating worker would
		// otherwise hold the lease forever.
		a.cfg.Logf("worker: lease %s attempt %d abandoned mid-trial", asg.LeaseID, asg.Attempt)
		req.Abandoned = true
	case err != nil:
		req.Error = err.Error()
	default:
		req.Result = res
		req.Profiles = make([][]float64, len(res.Epochs))
		for i := range res.Epochs {
			req.Profiles[i] = res.Epochs[i].Profile
		}
	}
	path := fmt.Sprintf("/v1/workers/%s/leases/%s/complete", workerID, asg.LeaseID)
	for attempt := 0; attempt < 3; attempt++ {
		code, err := a.doJSON(ctx, path, req, nil, 15*time.Second)
		if err == nil {
			if code == http.StatusConflict {
				a.cfg.Logf("worker: lease %s attempt %d superseded; result discarded", asg.LeaseID, asg.Attempt)
			}
			return // committed, requeued, rejected, or daemon-side terminal — all final
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(200 * time.Millisecond):
		}
	}
	// The daemon is unreachable even for the commit: end the session so
	// this registration stops heartbeating and eviction requeues every
	// lease it held. Run re-registers when the daemon returns.
	a.cfg.Logf("worker: lease %s: commit unreachable; ending session so eviction requeues it", asg.LeaseID)
	endSession()
}

// runBody executes the trial body, converting a panic into a trial
// error: a poison trial (one whose parameters crash the trainer) must
// fail its job with a diagnosis, not kill the worker process — a dead
// worker would get the trial requeued onto the next worker, serially
// destroying the fleet.
func runBody(tr *trainer.Runner, asg Assignment, obs trainer.EpochObserver) (res *trainer.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("exec: trial body panicked: %v", p)
		}
	}()
	return tr.RunWithCacheKey(asg.Workload, asg.Hyper, asg.Sys, asg.Seed, obs, asg.CacheKey)
}

// reportEpoch streams one epoch observation; ok is false when the lease
// should be treated as void.
func (a *Agent) reportEpoch(ctx context.Context, workerID string, asg Assignment, s trainer.EpochStats) (EpochDirective, bool) {
	path := fmt.Sprintf("/v1/workers/%s/leases/%s/epoch", workerID, asg.LeaseID)
	req := EpochReport{Attempt: asg.Attempt, Epoch: WireEpoch(s)}
	for attempt := 0; attempt < 3; attempt++ {
		var dir EpochDirective
		code, err := a.doJSON(ctx, path, req, &dir, 10*time.Second)
		if err == nil {
			if code != http.StatusOK {
				return EpochDirective{}, false
			}
			return dir, true
		}
		select {
		case <-ctx.Done():
			return EpochDirective{}, false
		case <-time.After(200 * time.Millisecond):
		}
	}
	// The pipelined controller must observe every epoch or its state
	// machine diverges from an in-process run; a trial that cannot
	// stream is abandoned, not run half-observed.
	return EpochDirective{}, false
}

// newSessionStats starts a fresh per-session collector and re-points
// the cached trainers' kernel sketches at it, so cumulative series
// restart at zero exactly when the daemon's per-registration baseline
// does — including the nn timings observed by trainers built during an
// earlier registration.
func (a *Agent) newSessionStats() *workerStats {
	st := newWorkerStats()
	a.stats.Store(st)
	a.mu.Lock()
	for _, tr := range a.trainers {
		tr.InstrumentKernels(st.trainEpochSeconds, st.evalSeconds)
	}
	a.mu.Unlock()
	return st
}

// trainerFor returns (building and caching) the trainer reproducing a
// captured configuration. Caching keeps the synthetic corpus warm across
// trials of the same workload family.
func (a *Agent) trainerFor(tc TrainerConfig) *trainer.Runner {
	a.mu.Lock()
	defer a.mu.Unlock()
	if tr, ok := a.trainers[tc]; ok {
		return tr
	}
	tr := tc.NewRunner()
	if tr.Parallelism == 0 && a.cfg.TrainParallelism > 0 {
		tr.Parallelism = a.cfg.TrainParallelism
	}
	if st := a.stats.Load(); st != nil {
		tr.InstrumentKernels(st.trainEpochSeconds, st.evalSeconds)
	}
	a.trainers[tc] = tr
	return tr
}

// doJSON POSTs in (nil for an empty body) to path and decodes a 200
// response into out. The returned code is valid when err is nil; err
// reports transport-level failures only. timeout > 0 bounds the whole
// round trip: the default transport has no deadline of its own, and a
// silently dead daemon connection (NAT expiry, powered-off host) must
// surface as a retryable error within the protocol's own cadence, not
// after TCP keepalive gives up minutes later.
func (a *Agent) doJSON(ctx context.Context, path string, in, out any, timeout time.Duration) (int, error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			a.stats.Load().encodeError()
			return 0, fmt.Errorf("exec: encode %s: %w", path, err)
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.cfg.Server+path, body)
	if err != nil {
		return 0, fmt.Errorf("exec: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if a.cfg.Token != "" {
		req.Header.Set("Authorization", "Bearer "+a.cfg.Token)
	}
	hc := a.cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return 0, fmt.Errorf("exec: %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			a.stats.Load().decodeError()
			return 0, fmt.Errorf("exec: decode %s: %w", path, err)
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, nil
}
