// Package exec is the pluggable execution plane of the tuning system: it
// owns *where trial bodies compute*. The tuning layer (internal/tune)
// decides what to run — workload, hyperparameters, starting system
// configuration, seed — and hands batches of Trials to a Backend; the
// backend decides which CPU actually pays for them.
//
// Two backends ship:
//
//   - Local runs trial bodies on a bounded in-process goroutine pool —
//     exactly the pre-refactor behaviour, bit-identical results, and the
//     default everywhere (library callers, tests, pipetuned without
//     flags).
//   - Remote fans trial bodies out to a fleet of pipetune-worker
//     processes that register with the daemon, lease trials over an
//     HTTP/JSON work API, stream per-epoch observations back (so
//     PipeTune's pipelined system tuning and the scheduler's resize
//     events still fire mid-trial) and heartbeat. A lost worker's leases
//     are requeued and results commit at most once.
//
// The split mirrors the paper's own layering: PipeTune builds on Ray
// Tune precisely because tuning jobs are fleets of independent trials
// that want to spread across a cluster (§6). Everything above this
// package — searchers, the discrete-event scheduler, the ground-truth
// middleware — is backend-agnostic; only the trial body (one
// trainer.Run invocation) moves.
package exec

import (
	"context"

	"pipetune/internal/params"
	"pipetune/internal/trainer"
	"pipetune/internal/workload"
)

// Trial is one unit of compute: run this workload with these parameters
// and report the trainer's result. It deliberately carries no searcher or
// scheduler state — the tuning layer keeps those — so a Trial can cross a
// process boundary.
type Trial struct {
	// ID is the searcher's trial id, unique within one job.
	ID int
	// Workload, Hyper, Sys and Seed fully determine the (deterministic)
	// trial body: same inputs, same trainer.Result, on any backend.
	Workload workload.Workload
	Hyper    params.Hyper
	Sys      params.SysConfig
	Seed     uint64
	// Observer, when non-nil, receives the trial's epoch-boundary
	// callbacks (PipeTune's pipelined system tuning). It always runs in
	// the submitting process: remote backends stream epoch observations
	// back over the wire and relay the observer's configuration switches
	// to the worker, so the ground-truth database and controller state
	// never leave the daemon.
	Observer trainer.EpochObserver
	// Restart, when non-nil, is invoked before a backend re-runs the
	// trial body from scratch (a requeued lease): it discards
	// observer-side per-trial state so the replayed epochs are observed
	// as a fresh first attempt. It may run under backend locks and must
	// not call back into the backend. Local backends never re-run and
	// ignore it.
	Restart func()
	// Trainer captures the submitting trainer's wire-portable
	// configuration so fleet backends reproduce the body bit-identically
	// on another process. Local backends ignore it — they run on the
	// trainer they were wired to.
	Trainer TrainerConfig
	// CacheKey, when non-empty, is the trial prefix cache key the
	// submitting process derived (trainer.Runner.PrefixKey). Backends pass
	// it through to the executing trainer so worker-local caches use
	// exactly the daemon's key; empty means derive locally (or no cache).
	CacheKey string
	// Class, when non-empty, is the node class the placement policy would
	// choose for this trial on an idle heterogeneous cluster — a routing
	// hint for fleet backends (a worker fleet can map classes to real
	// instance shapes). The simulated schedule re-decides actual placement
	// against live occupancy; empty on single-class clusters.
	Class string
}

// Backend executes trial bodies. Implementations must be safe for
// concurrent Run calls: the tuning service runs many jobs over one
// backend.
type Backend interface {
	// Name identifies the backend ("local", "remote") for health and
	// logging surfaces.
	Name() string

	// Run executes the batch and returns results positionally:
	// results[i] is non-nil exactly when errs[i] is nil. maxParallel
	// bounds how many trial bodies compute concurrently on pool-style
	// backends (the pre-refactor goroutine-pool semantics); fleet
	// backends are bounded by aggregate worker capacity instead and may
	// ignore it.
	//
	// A cancelled ctx stops the batch at trial granularity: trials not
	// yet started fail with ctx.Err(), trials already computing run to
	// completion where the backend can still commit them. Run returns
	// only once every trial is terminal (result, error, or cancelled).
	Run(ctx context.Context, trials []Trial, maxParallel int) (results []*trainer.Result, errs []error)
}
