package exec

// Daemon-side half of the binary work protocol. One POST /v1/stream per
// worker is upgraded (HTTP 101 + connection hijack) into a persistent
// framed stream that replaces every long-poll round trip of the JSON
// wire:
//
//   - the *granter* goroutine pushes lease batches the moment the worker
//     has free slots and the queue has work — no poll latency, and one
//     Grant frame carries up to (capacity − inflight) assignments;
//   - the session *reader* dispatches the worker's frames: Heartbeat
//     refreshes liveness, Epoch observations go to the trial's observer
//     (whose Directive is written straight back, keeping pipelined
//     mid-trial tuning at stream latency), Complete commits results
//     at-most-once and is answered with an Ack.
//
// Backpressure is implicit in the lease accounting: the daemon never has
// more than `capacity` assignments outstanding per worker, so the worker
// needs no receive-window machinery — a Grant frame always fits the
// slots it already advertised.
//
// Failure semantics are identical to the JSON wire, only faster: a dead
// connection, a torn frame, or a CRC mismatch all end the session and
// evict the worker through the same requeue path a missed-heartbeat
// eviction takes; and when the reaper evicts a stream worker (alive but
// partitioned), eviction severs the connection so the session cannot
// linger half-dead.

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"pipetune/internal/params"
	"pipetune/internal/workload"
)

// streamHandshakeTimeout bounds how long an upgraded connection may take
// to present the magic and Hello frame before the daemon drops it.
const streamHandshakeTimeout = 10 * time.Second

// handleStream upgrades POST /v1/stream into a framed binary stream.
// Token auth ran in the authed wrapper, over plain HTTP, before the
// upgrade — a worker with a bad token gets an ordinary 401.
func (r *Remote) handleStream(w http.ResponseWriter, req *http.Request) {
	if req.Header.Get("Upgrade") != streamUpgradeProto {
		writeWireJSON(w, http.StatusBadRequest, wireError{Error: "exec: stream requires Upgrade: " + streamUpgradeProto})
		return
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		writeWireJSON(w, http.StatusInternalServerError, wireError{Error: "exec: connection cannot be hijacked"})
		return
	}
	conn, rw, err := hj.Hijack()
	if err != nil {
		writeWireJSON(w, http.StatusInternalServerError, wireError{Error: fmt.Sprintf("exec: hijack: %v", err)})
		return
	}
	// The server's read/write deadlines (if any) outlive the hijack;
	// clear them — the stream manages its own handshake deadline, and
	// liveness afterwards is the heartbeat/eviction protocol's job.
	_ = conn.SetDeadline(time.Time{})
	fmt.Fprintf(rw.Writer, "HTTP/1.1 101 Switching Protocols\r\nUpgrade: %s\r\nConnection: Upgrade\r\n\r\n", streamUpgradeProto)
	if err := rw.Writer.Flush(); err != nil {
		conn.Close()
		return
	}
	r.serveStream(conn, rw.Reader)
}

// serveStream owns one worker's stream session from handshake to
// eviction.
func (r *Remote) serveStream(conn net.Conn, br *bufio.Reader) {
	defer conn.Close()

	// Handshake: magic, then a Hello frame, under a deadline so a stuck
	// peer cannot park an anonymous connection forever.
	_ = conn.SetReadDeadline(time.Now().Add(streamHandshakeTimeout))
	var magic [len(streamMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || string(magic[:]) != streamMagic {
		return
	}
	var scratch []byte
	ft, p, err := readFrame(br, &scratch)
	if err != nil || ft != frameHello {
		return
	}
	name, capacity, err := decodeHello(p)
	if err != nil {
		return
	}
	_ = conn.SetReadDeadline(time.Time{})

	resp, err := r.Register(RegisterRequest{Name: name, Capacity: capacity})
	if err != nil {
		return // closed: the dropped conn tells the worker to back off
	}
	workerID := resp.WorkerID
	if !r.bindStream(workerID, func() { conn.Close() }) {
		return
	}
	fw := &frameWriter{w: conn, txFrames: r.met.binTxFrames, txBytes: r.met.binTxBytes}
	wb := getWirebuf()
	encodeWelcome(wb, resp)
	err = fw.send(frameWelcome, wb.b)
	putWirebuf(wb)
	if err != nil {
		r.evictWorker(workerID, "welcome write failed")
		return
	}

	go r.grantLoop(fw, workerID)

	why := "stream closed"
	for {
		ft, p, err := readFrame(br, &scratch)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				why = fmt.Sprintf("stream read: %v", err)
			}
			break
		}
		r.met.binRxFrames.Inc()
		r.met.binRxBytes.Add(uint64(frameHeaderLen + len(p)))
		if err := r.dispatchFrame(fw, workerID, ft, p); err != nil {
			why = err.Error()
			break
		}
	}
	// However the session ended — clean close, transport death, corrupt
	// frame — the worker is gone as far as this registration is
	// concerned: evict it so its leases requeue NOW (the stream is a
	// faster liveness signal than waiting out missed heartbeats).
	r.evictWorker(workerID, why)
}

// dispatchFrame handles one worker frame; a returned error ends the
// session (and names the eviction reason).
func (r *Remote) dispatchFrame(fw *frameWriter, workerID string, ft byte, p []byte) error {
	switch ft {
	case frameHeartbeat:
		if err := r.Heartbeat(workerID); err != nil {
			return fmt.Errorf("heartbeat rejected: %v", err)
		}
		return nil

	case frameStats:
		s, err := decodeStats(p)
		if err != nil {
			return fmt.Errorf("corrupt stats frame: %v", err)
		}
		if err := r.IngestWorkerSeries(workerID, s); err != nil {
			return fmt.Errorf("stats rejected: %v", err)
		}
		return nil

	case frameEpoch:
		leaseID, attempt, stats, err := decodeEpochFrame(p)
		if err != nil {
			return fmt.Errorf("corrupt epoch frame: %v", err)
		}
		dir, err := r.streamReportEpoch(workerID, leaseID, attempt, stats)
		if err != nil {
			return fmt.Errorf("epoch report rejected: %v", err)
		}
		wb := getWirebuf()
		encodeDirective(wb, leaseID, attempt, stats.Epoch, dir)
		err = fw.send(frameDirective, wb.b)
		putWirebuf(wb)
		if err != nil {
			return fmt.Errorf("directive write: %v", err)
		}
		return nil

	case frameComplete:
		// Two-phase decode: peek the lease id, fetch the trial the lease
		// was cut from (the delta baseline), then reconstruct the result.
		leaseID, err := completeHeader(p)
		if err != nil {
			return fmt.Errorf("corrupt complete frame: %v", err)
		}
		wl, hy, baseSys, known := r.leaseInfo(leaseID)
		_, attempt, status, errMsg, res, err := decodeComplete(p, wl, hy, baseSys)
		if err != nil {
			return fmt.Errorf("corrupt complete frame: %v", err)
		}
		code := ackCommitted
		if !known {
			// The lease is already terminal and forgotten — a duplicate
			// or post-cancellation commit. Same outcome as the JSON 409.
			code = ackSuperseded
		} else {
			switch err := r.streamComplete(workerID, leaseID, attempt, res, errMsg, status == completeAbandoned); {
			case errors.Is(err, ErrLeaseRevoked):
				code = ackSuperseded
			case errors.Is(err, ErrUnknownWorker):
				code = ackUnknown
			case err != nil:
				code = ackSuperseded
			}
		}
		wb := getWirebuf()
		encodeAck(wb, leaseID, attempt, code)
		err = fw.send(frameAck, wb.b)
		putWirebuf(wb)
		if err != nil {
			return fmt.Errorf("ack write: %v", err)
		}
		if code == ackUnknown {
			return errors.New("worker no longer registered")
		}
		return nil

	default:
		return fmt.Errorf("unexpected frame type %d", ft)
	}
}

// grantLoop pushes lease batches to one worker for as long as it stays
// registered. It parks on the backend's condition variable and wakes on
// every queue or slot change; each iteration claims everything the
// worker has slots for and ships it as a single Grant frame (encoded
// under the lock — trial fields are immutable while leased — written
// outside it).
func (r *Remote) grantLoop(fw *frameWriter, workerID string) {
	var claim []*lease // reused claim scratch: zero steady-state allocs
	drainSent := false
	r.mu.Lock()
	for {
		w := r.workers[workerID]
		if w == nil || w.state != workerActive || r.closed {
			r.mu.Unlock()
			return
		}
		if r.draining {
			// One Drain frame tells the worker no further grants are
			// coming; the session stays up so in-flight trials commit.
			if drainSent {
				r.cond.Wait()
				continue
			}
			drainSent = true
			r.mu.Unlock()
			if fw.send(frameDrain, nil) != nil {
				r.evictWorker(workerID, "drain write failed")
				return
			}
			r.mu.Lock()
			continue
		}
		n := w.capacity - len(w.inflight)
		if len(r.pending) == 0 || n <= 0 {
			r.cond.Wait()
			continue
		}
		if n > len(r.pending) {
			n = len(r.pending)
		}
		claim = claim[:0]
		for _, l := range r.pending[:n] {
			l.state = leaseLeased
			l.worker = w.id
			w.inflight[l.id] = l
			claim = append(claim, l)
		}
		r.pending = r.pending[n:]
		r.met.leaseGrants.Add(uint64(len(claim)))
		wb := getWirebuf()
		wb.uvarint(uint64(len(claim)))
		for _, l := range claim {
			appendAssignment(wb, l.id, l.attempt, &l.trial)
		}
		r.mu.Unlock()
		err := fw.send(frameGrant, wb.b)
		putWirebuf(wb)
		if err != nil {
			// The worker never saw these assignments; eviction requeues
			// them for the rest of the fleet.
			r.evictWorker(workerID, "grant write failed")
			return
		}
		r.mu.Lock()
	}
}

// bindStream attaches a stream severance hook to a registered worker so
// eviction and Close can cut the connection. False when the worker is
// already gone (evicted between Register and bind, or the plane closed).
func (r *Remote) bindStream(workerID string, closeFn func()) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.workers[workerID]
	if w == nil || w.state != workerActive || r.closed {
		return false
	}
	w.closeStream = closeFn
	return true
}

// evictWorker evicts by id — the stream session's exit path. Idempotent:
// a worker already evicted (reaper, Close, a racing session error) is
// left as is.
func (r *Remote) evictWorker(workerID, why string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.workers[workerID]
	if w == nil || w.state != workerActive {
		return
	}
	r.evictLocked(w, why)
}

// leaseInfo fetches the immutable trial identity a delta-encoded result
// is reconstructed against. ok is false for unknown (already forgotten)
// leases — the commit will be acked as superseded, but the frame must
// still decode cleanly to keep the stream consistent.
func (r *Remote) leaseInfo(leaseID []byte) (wl workload.Workload, hy params.Hyper, baseSys params.SysConfig, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	l := r.leases[string(leaseID)]
	if l == nil {
		return wl, hy, baseSys, false
	}
	return l.trial.Workload, l.trial.Hyper, l.trial.Sys, true
}
