package exec

// Worker-side half of the binary work protocol. One stream session
// replaces the JSON agent's register/heartbeat/long-poll/commit HTTP
// round trips: the agent dials the daemon, upgrades POST /v1/stream,
// and then
//
//   - a *reader* goroutine dispatches daemon frames — Grants feed a work
//     channel, Directives and Acks are routed to the slot waiting on
//     them;
//   - `capacity` *slot* goroutines compute trial bodies (sharing
//     runBody and the trainer cache with the JSON agent, so trial
//     results are produced by literally the same code on both wires);
//   - a *heartbeat* goroutine ticks liveness frames.
//
// A torn connection ends the session exactly like a JSON 404: the agent
// re-registers by reconnecting, and the daemon has already requeued
// whatever this registration held.

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"sync"
	"time"

	"pipetune/internal/params"
	"pipetune/internal/trainer"
	"pipetune/internal/workload"
)

// streamRPCTimeout bounds how long a slot waits for the daemon's answer
// to an epoch report or a commit before treating the lease as lost —
// the stream analogue of the JSON paths' per-request timeouts.
const streamRPCTimeout = 15 * time.Second

// runBinary serves the binary wire until ctx ends or the daemon rejects
// the token; transport failures and evictions reconnect, like the JSON
// loop's re-registration.
func (a *Agent) runBinary(ctx context.Context) error {
	for {
		err := a.streamSession(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if errors.Is(err, ErrBadToken) {
			return err
		}
		if err != nil {
			a.cfg.Logf("worker: stream session ended: %v (reconnecting)", err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(500 * time.Millisecond):
		}
	}
}

// streamWaiter parks one slot goroutine on the daemon's reply to a
// specific (lease, attempt) — and, for directives, a specific epoch, so
// a stale directive from a previous attempt or a timed-out report can
// never be delivered to the wrong waiter.
type streamWaiter struct {
	attempt int
	epoch   int
	dir     chan EpochDirective
	ack     chan byte
}

// streamSession is one connection's lifetime.
type streamSession struct {
	a    *Agent
	conn net.Conn
	fw   *frameWriter

	mu      sync.Mutex
	waiters map[string]*streamWaiter // lease id -> the slot's parked RPC

	// stats is this session's cumulative telemetry, shipped as a Stats
	// frame alongside every heartbeat. Per-session (not per-agent) so
	// the daemon's per-registration delta baseline of zero is exact.
	stats *workerStats

	dead     chan struct{}
	deadOnce sync.Once
	deadErr  error
}

// kill ends the session once: records the cause, closes the connection
// (unblocking the reader and any in-flight write) and releases everyone
// parked on dead.
func (s *streamSession) kill(err error) {
	s.deadOnce.Do(func() {
		s.deadErr = err
		close(s.dead)
		s.conn.Close()
	})
}

// streamSession dials, handshakes and serves one session; the returned
// error is the cause of death (nil for a clean ctx cancellation).
func (a *Agent) streamSession(ctx context.Context) error {
	conn, br, err := a.dialStream(ctx)
	if err != nil {
		return err
	}
	s := &streamSession{
		a:       a,
		conn:    conn,
		fw:      &frameWriter{w: conn},
		waiters: make(map[string]*streamWaiter),
		stats:   a.newSessionStats(),
		dead:    make(chan struct{}),
	}
	defer s.kill(nil)

	// Handshake: magic + Hello out, Welcome back, all under a deadline.
	_ = conn.SetDeadline(time.Now().Add(streamHandshakeTimeout))
	if _, err := conn.Write([]byte(streamMagic)); err != nil {
		return fmt.Errorf("exec: stream handshake: %w", err)
	}
	wb := getWirebuf()
	encodeHello(wb, a.cfg.Name, a.cfg.Capacity)
	err = s.fw.send(frameHello, wb.b)
	putWirebuf(wb)
	if err != nil {
		return fmt.Errorf("exec: stream handshake: %w", err)
	}
	var scratch []byte
	ft, p, err := readFrame(br, &scratch)
	if err != nil {
		return fmt.Errorf("exec: stream handshake: %w", err)
	}
	if ft != frameWelcome {
		return fmt.Errorf("exec: stream handshake: unexpected frame type %d", ft)
	}
	reg, err := decodeWelcome(p)
	if err != nil {
		return fmt.Errorf("exec: stream handshake: %w", err)
	}
	_ = conn.SetDeadline(time.Time{})
	a.cfg.Logf("worker: registered as %s with %s over the binary stream (capacity %d)", reg.WorkerID, a.cfg.Server, a.cfg.Capacity)

	hb := a.cfg.Heartbeat
	if hb <= 0 {
		hb = time.Duration(reg.HeartbeatSeconds * float64(time.Second))
	}
	if hb <= 0 {
		hb = 2 * time.Second
	}

	// The daemon never grants beyond this registration's capacity, so a
	// capacity-sized buffer means the reader can never block on a Grant.
	work := make(chan Assignment, a.cfg.Capacity)

	go func() { // ctx watcher: a cancelled agent cuts the stream
		select {
		case <-ctx.Done():
			s.kill(nil)
		case <-s.dead:
		}
	}()
	go s.readLoop(br, scratch, work)
	go s.heartbeatLoop(hb)

	var wg sync.WaitGroup
	for i := 0; i < a.cfg.Capacity; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-s.dead:
					return
				case asg := <-work:
					s.runAssignment(ctx, asg)
				}
			}
		}()
	}
	wg.Wait()
	<-s.dead
	return s.deadErr
}

// dialStream connects and upgrades POST /v1/stream. The binary wire
// speaks plain TCP after the upgrade, so only http:// servers are
// supported (matching every current deployment; a TLS wire would
// layer in here).
func (a *Agent) dialStream(ctx context.Context) (net.Conn, *bufio.Reader, error) {
	u, err := url.Parse(a.cfg.Server)
	if err != nil {
		return nil, nil, fmt.Errorf("exec: server url: %w", err)
	}
	if u.Scheme != "http" {
		return nil, nil, fmt.Errorf("exec: binary wire requires an http:// server url, got %q", a.cfg.Server)
	}
	host := u.Host
	if u.Port() == "" {
		host += ":80"
	}
	dctx, cancel := context.WithTimeout(ctx, streamHandshakeTimeout)
	defer cancel()
	var d net.Dialer
	conn, err := d.DialContext(dctx, "tcp", host)
	if err != nil {
		return nil, nil, fmt.Errorf("exec: dial %s: %w", host, err)
	}
	_ = conn.SetDeadline(time.Now().Add(streamHandshakeTimeout))
	auth := ""
	if a.cfg.Token != "" {
		auth = "Authorization: Bearer " + a.cfg.Token + "\r\n"
	}
	_, err = fmt.Fprintf(conn,
		"POST /v1/stream HTTP/1.1\r\nHost: %s\r\nUpgrade: %s\r\nConnection: Upgrade\r\nContent-Length: 0\r\n%s\r\n",
		u.Host, streamUpgradeProto, auth)
	if err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("exec: stream upgrade: %w", err)
	}
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("exec: stream upgrade: %w", err)
	}
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusSwitchingProtocols:
	case http.StatusUnauthorized:
		conn.Close()
		return nil, nil, ErrBadToken
	default:
		conn.Close()
		return nil, nil, fmt.Errorf("exec: stream upgrade refused: %s", resp.Status)
	}
	_ = conn.SetDeadline(time.Time{})
	return conn, br, nil
}

// readLoop dispatches daemon frames until the connection dies.
func (s *streamSession) readLoop(br *bufio.Reader, scratch []byte, work chan Assignment) {
	for {
		ft, p, err := readFrame(br, &scratch)
		if err != nil {
			if errors.Is(err, errFrameCorrupt) {
				s.stats.decodeError()
			}
			s.kill(err)
			return
		}
		switch ft {
		case frameGrant:
			asgs, err := decodeGrant(p)
			if err != nil {
				s.stats.decodeError()
				s.kill(err)
				return
			}
			for _, asg := range asgs {
				select {
				case work <- asg:
				case <-s.dead:
					return
				}
			}

		case frameDirective:
			leaseID, attempt, epoch, dir, err := decodeDirective(p)
			if err != nil {
				s.kill(err)
				return
			}
			s.mu.Lock()
			if w := s.waiters[string(leaseID)]; w != nil && w.dir != nil && w.attempt == attempt && w.epoch == epoch {
				select {
				case w.dir <- dir:
				default: // waiter already timed out; drop
				}
			}
			s.mu.Unlock()

		case frameAck:
			leaseID, attempt, code, err := decodeAck(p)
			if err != nil {
				s.kill(err)
				return
			}
			s.mu.Lock()
			if w := s.waiters[string(leaseID)]; w != nil && w.ack != nil && w.attempt == attempt {
				select {
				case w.ack <- code:
				default:
				}
			}
			s.mu.Unlock()

		case frameDrain:
			s.a.cfg.Logf("worker: daemon draining; finishing in-flight trials")

		default:
			s.kill(fmt.Errorf("%w: unexpected frame type %d", errFrameCorrupt, ft))
			return
		}
	}
}

// heartbeatLoop ticks liveness frames; a failed write means the
// connection is dead and the session ends.
func (s *streamSession) heartbeatLoop(hb time.Duration) {
	t := time.NewTicker(hb)
	defer t.Stop()
	for {
		select {
		case <-s.dead:
			return
		case <-t.C:
			if err := s.fw.send(frameHeartbeat, nil); err != nil {
				s.stats.encodeError()
				s.kill(err)
				return
			}
			// Piggyback the cumulative telemetry snapshot on the beat:
			// the daemon diffs it against the previous one, so losing
			// any individual frame only delays aggregation by a beat.
			wb := getWirebuf()
			encodeStats(wb, s.stats.series())
			err := s.fw.send(frameStats, wb.b)
			putWirebuf(wb)
			if err != nil {
				s.kill(err)
				return
			}
		}
	}
}

// park registers a waiter for the lease's next daemon reply; the
// returned func deregisters it.
func (s *streamSession) park(leaseID string, w *streamWaiter) func() {
	s.mu.Lock()
	s.waiters[leaseID] = w
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		delete(s.waiters, leaseID)
		s.mu.Unlock()
	}
}

// runAssignment computes one leased trial body and commits the result —
// the stream twin of the JSON agent's runAssignment, sharing runBody
// and the trainer cache so the computed bytes cannot differ.
func (s *streamSession) runAssignment(ctx context.Context, asg Assignment) {
	tr := s.a.trainerFor(asg.Trainer)
	revoked := false
	var obs trainer.EpochObserver
	if asg.StreamEpochs {
		obs = trainer.ObserverFunc(func(_ uint64, _ workload.Workload, _ params.Hyper, st trainer.EpochStats) *params.SysConfig {
			if revoked {
				return nil
			}
			dir, ok := s.reportEpoch(asg, st)
			if !ok || dir.Revoked {
				// Lease void or daemon unreachable: finish the remaining
				// epochs on the current configuration and let the commit
				// be rejected (same contract as the JSON wire — the
				// trainer cannot be interrupted mid-trial).
				revoked = true
				return nil
			}
			return dir.Sys
		})
	}
	start := time.Now()
	res, err := runBody(tr, asg, obs)
	epochs := 0
	if res != nil {
		epochs = len(res.Epochs)
	}
	s.stats.observeTrial(time.Since(start).Seconds(), epochs)
	status, errMsg := completeOK, ""
	switch {
	case revoked:
		s.a.cfg.Logf("worker: lease %s attempt %d abandoned mid-trial", asg.LeaseID, asg.Attempt)
		status, res = completeAbandoned, nil
	case err != nil:
		status, errMsg, res = completeError, err.Error(), nil
	}
	s.commit(ctx, asg, status, errMsg, res)
}

// reportEpoch streams one observation and waits for its directive; ok is
// false when the lease should be treated as void.
func (s *streamSession) reportEpoch(asg Assignment, st trainer.EpochStats) (EpochDirective, bool) {
	w := &streamWaiter{attempt: asg.Attempt, epoch: st.Epoch, dir: make(chan EpochDirective, 1)}
	unpark := s.park(asg.LeaseID, w)
	defer unpark()
	wb := getWirebuf()
	encodeEpochFrame(wb, asg.LeaseID, asg.Attempt, &st)
	err := s.fw.send(frameEpoch, wb.b)
	putWirebuf(wb)
	if err != nil {
		s.stats.encodeError()
		s.kill(err)
		return EpochDirective{}, false
	}
	select {
	case dir := <-w.dir:
		return dir, true
	case <-s.dead:
		return EpochDirective{}, false
	case <-time.After(streamRPCTimeout):
		// The pipelined controller must observe every epoch or its state
		// machine diverges; a trial that cannot stream is abandoned.
		return EpochDirective{}, false
	}
}

// commit sends the at-most-once result commit and waits for its Ack. An
// unacknowledged commit kills the session, so the registration stops
// heartbeating and eviction requeues the lease — the stream analogue of
// the JSON agent's endSession fallback.
func (s *streamSession) commit(ctx context.Context, asg Assignment, status byte, errMsg string, res *trainer.Result) {
	w := &streamWaiter{attempt: asg.Attempt, ack: make(chan byte, 1)}
	unpark := s.park(asg.LeaseID, w)
	defer unpark()
	wb := getWirebuf()
	encodeComplete(wb, asg.LeaseID, asg.Attempt, status, errMsg, res, asg.Sys)
	err := s.fw.send(frameComplete, wb.b)
	putWirebuf(wb)
	if err != nil {
		s.stats.encodeError()
		s.kill(err)
		return
	}
	select {
	case code := <-w.ack:
		switch code {
		case ackSuperseded:
			s.a.cfg.Logf("worker: lease %s attempt %d superseded; result discarded", asg.LeaseID, asg.Attempt)
		case ackUnknown:
			s.kill(errors.New("exec: worker no longer registered"))
		}
	case <-s.dead:
	case <-ctx.Done():
	case <-time.After(streamRPCTimeout):
		s.a.cfg.Logf("worker: lease %s: commit unacknowledged; ending session so eviction requeues it", asg.LeaseID)
		s.kill(errors.New("exec: commit ack timeout"))
	}
}
