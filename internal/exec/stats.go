package exec

import (
	"sync/atomic"

	"pipetune/internal/metrics"
)

// WorkerSeries is a worker's cumulative local telemetry, piggybacked
// on existing heartbeat traffic rather than scraped: the binary wire
// appends a Stats frame after each heartbeat frame, the JSON wire
// carries it as the (previously empty) heartbeat request body. Values
// are cumulative per worker session — the daemon diffs consecutive
// snapshots from one registration and folds the delta into its own
// registry, so fleet-wide aggregates survive re-registration without
// double counting. The tail between a worker's last heartbeat and its
// death is lost by design (at most one beat interval of telemetry).
type WorkerSeries struct {
	// Trials counts trial bodies computed (successfully or not);
	// Epochs counts the epoch records those bodies produced.
	Trials uint64 `json:"trials"`
	Epochs uint64 `json:"epochs"`
	// TrialSeconds is the sketch of per-trial wall compute time; its
	// Sum is total compute seconds, so epochs/sec falls out as
	// Epochs / TrialSeconds.Sum.
	TrialSeconds metrics.DistSnapshot `json:"trialSeconds"`
	// TrainEpochSeconds and EvalSeconds sketch the nn kernel wall
	// times inside those trials (one observation per real SGD epoch /
	// test-set evaluation), so fleet dashboards see the same
	// nn_train_epoch_seconds pipeline the local trainer registry
	// exposes.
	TrainEpochSeconds metrics.DistSnapshot `json:"trainEpochSeconds"`
	EvalSeconds       metrics.DistSnapshot `json:"evalSeconds"`
	// EncodeErrors / DecodeErrors count wire codec and transport
	// failures observed worker-side (frame or JSON encode/send vs
	// decode/receive).
	EncodeErrors uint64 `json:"encodeErrors,omitempty"`
	DecodeErrors uint64 `json:"decodeErrors,omitempty"`
}

// HeartbeatRequest is the JSON-wire heartbeat body. Empty bodies
// remain valid (older workers send none), so the field is a pointer.
type HeartbeatRequest struct {
	Series *WorkerSeries `json:"series,omitempty"`
}

// workerStats is the worker-side collector behind WorkerSeries: one
// per agent session, so cumulative values restart at zero exactly when
// the daemon's per-registration baseline does.
type workerStats struct {
	trials            atomic.Uint64
	epochs            atomic.Uint64
	encodeErrs        atomic.Uint64
	decodeErrs        atomic.Uint64
	trialSeconds      *metrics.Distribution
	trainEpochSeconds *metrics.Distribution
	evalSeconds       *metrics.Distribution
}

func newWorkerStats() *workerStats {
	return &workerStats{
		trialSeconds:      metrics.NewDistribution(),
		trainEpochSeconds: metrics.NewDistribution(),
		evalSeconds:       metrics.NewDistribution(),
	}
}

// observeTrial records one finished trial body.
func (s *workerStats) observeTrial(seconds float64, epochs int) {
	if s == nil {
		return
	}
	s.trials.Add(1)
	s.epochs.Add(uint64(epochs))
	s.trialSeconds.Observe(seconds)
}

func (s *workerStats) encodeError() {
	if s != nil {
		s.encodeErrs.Add(1)
	}
}

func (s *workerStats) decodeError() {
	if s != nil {
		s.decodeErrs.Add(1)
	}
}

// series snapshots the cumulative state for shipping.
func (s *workerStats) series() WorkerSeries {
	if s == nil {
		return WorkerSeries{}
	}
	return WorkerSeries{
		Trials:            s.trials.Load(),
		Epochs:            s.epochs.Load(),
		TrialSeconds:      s.trialSeconds.Snapshot(),
		TrainEpochSeconds: s.trainEpochSeconds.Snapshot(),
		EvalSeconds:       s.evalSeconds.Snapshot(),
		EncodeErrors:      s.encodeErrs.Load(),
		DecodeErrors:      s.decodeErrs.Load(),
	}
}

// remoteMetrics holds the execution plane's resolved registry handles.
// The Remote always carries one (over a private registry when none is
// configured): the fleet surfaces — FleetStatus.CompletedTrials,
// /healthz — read these same counters, so health and /metrics cannot
// disagree.
type remoteMetrics struct {
	reg *metrics.Registry

	leaseGrants *metrics.Counter
	evictions   *metrics.Counter
	requeues    *metrics.Counter
	completed   *metrics.Counter
	commits     *metrics.CounterVec // outcome: committed|failed|abandoned|empty

	// Wire traffic, pre-resolved per (wire, dir).
	binRxFrames, binTxFrames   *metrics.Counter
	binRxBytes, binTxBytes     *metrics.Counter
	jsonRxFrames, jsonTxFrames *metrics.Counter
	jsonRxBytes, jsonTxBytes   *metrics.Counter

	// Fleet-wide worker series, labelled by worker name.
	workerTrials            *metrics.CounterVec
	workerEpochs            *metrics.CounterVec
	workerErrors            *metrics.CounterVec // worker, kind: encode|decode
	workerTrialSeconds      *metrics.DistributionVec
	workerTrainEpochSeconds *metrics.DistributionVec
	workerEvalSeconds       *metrics.DistributionVec
}

func newRemoteMetrics(reg *metrics.Registry) *remoteMetrics {
	m := &remoteMetrics{
		reg: reg,
		leaseGrants: reg.Counter("pipetune_exec_lease_grants_total",
			"Trial leases granted to workers (both wires)."),
		evictions: reg.Counter("pipetune_exec_evictions_total",
			"Workers evicted for missed heartbeats, stream loss or corrupt frames."),
		requeues: reg.Counter("pipetune_exec_requeues_total",
			"Lease reassignments after eviction or worker abandonment."),
		completed: reg.Counter("pipetune_exec_completed_trials_total",
			"Trials that reached a successful terminal result."),
		commits: reg.CounterVec("pipetune_exec_commits_total",
			"Worker result commits by outcome.", "outcome"),
		workerTrials: reg.CounterVec("pipetune_worker_trials_total",
			"Trial bodies computed, by worker (heartbeat-shipped).", "worker"),
		workerEpochs: reg.CounterVec("pipetune_worker_epochs_total",
			"Epoch records computed, by worker (heartbeat-shipped).", "worker"),
		workerErrors: reg.CounterVec("pipetune_worker_stream_errors_total",
			"Worker-observed wire errors, by worker and kind.", "worker", "kind"),
		workerTrialSeconds: reg.DistributionVec("pipetune_worker_trial_seconds",
			"Per-trial wall compute time, by worker (heartbeat-shipped sketch).", "worker"),
		workerTrainEpochSeconds: reg.DistributionVec("pipetune_worker_train_epoch_seconds",
			"Per-epoch nn kernel wall time, by worker (heartbeat-shipped sketch).", "worker"),
		workerEvalSeconds: reg.DistributionVec("pipetune_worker_eval_seconds",
			"Per-evaluation nn kernel wall time, by worker (heartbeat-shipped sketch).", "worker"),
	}
	bytes := reg.CounterVec("pipetune_exec_wire_bytes_total",
		"Wire payload bytes by protocol and direction (daemon view).", "wire", "dir")
	frames := reg.CounterVec("pipetune_exec_wire_frames_total",
		"Wire frames (binary) or requests/responses (json) by direction.", "wire", "dir")
	m.binRxFrames, m.binTxFrames = frames.With("binary", "rx"), frames.With("binary", "tx")
	m.binRxBytes, m.binTxBytes = bytes.With("binary", "rx"), bytes.With("binary", "tx")
	m.jsonRxFrames, m.jsonTxFrames = frames.With("json", "rx"), frames.With("json", "tx")
	m.jsonRxBytes, m.jsonTxBytes = bytes.With("json", "rx"), bytes.With("json", "tx")
	return m
}

// ingestSeriesLocked folds one worker's cumulative snapshot into the
// fleet aggregates. Callers hold r.mu; w is the active registration
// the snapshot arrived on.
func (r *Remote) ingestSeriesLocked(w *workerEntry, cur WorkerSeries) {
	prev := w.series
	name := w.name
	if name == "" {
		name = w.id
	}
	if d := cur.Trials - prev.Trials; cur.Trials > prev.Trials {
		r.met.workerTrials.With(name).Add(d)
	}
	if d := cur.Epochs - prev.Epochs; cur.Epochs > prev.Epochs {
		r.met.workerEpochs.With(name).Add(d)
	}
	if d := cur.EncodeErrors - prev.EncodeErrors; cur.EncodeErrors > prev.EncodeErrors {
		r.met.workerErrors.With(name, "encode").Add(d)
	}
	if d := cur.DecodeErrors - prev.DecodeErrors; cur.DecodeErrors > prev.DecodeErrors {
		r.met.workerErrors.With(name, "decode").Add(d)
	}
	r.met.workerTrialSeconds.With(name).Merge(cur.TrialSeconds.Delta(prev.TrialSeconds))
	r.met.workerTrainEpochSeconds.With(name).Merge(cur.TrainEpochSeconds.Delta(prev.TrainEpochSeconds))
	r.met.workerEvalSeconds.With(name).Merge(cur.EvalSeconds.Delta(prev.EvalSeconds))
	w.series = cur
}

// IngestWorkerSeries records a heartbeat-shipped snapshot from an
// active worker (JSON wire entry point; the binary wire dispatches the
// Stats frame to the same ingestion).
func (r *Remote) IngestWorkerSeries(workerID string, s WorkerSeries) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.workers[workerID]
	if w == nil || w.state != workerActive {
		return ErrUnknownWorker
	}
	w.lastBeat = r.cfg.now()
	r.ingestSeriesLocked(w, s)
	return nil
}
