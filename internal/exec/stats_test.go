package exec

import (
	"context"
	"reflect"
	"testing"
	"time"

	"pipetune/internal/metrics"
)

// TestStatsFrameRoundTrip pins the binary Stats frame codec: a populated
// snapshot (sketch buckets included) survives encode/decode exactly.
func TestStatsFrameRoundTrip(t *testing.T) {
	st := newWorkerStats()
	st.observeTrial(0.125, 3)
	st.observeTrial(1.5, 2)
	st.encodeError()
	st.decodeError()
	st.decodeError()
	want := st.series()

	wb := getWirebuf()
	defer putWirebuf(wb)
	encodeStats(wb, want)
	got, err := decodeStats(wb.b)
	if err != nil {
		t.Fatalf("decodeStats: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, want)
	}
	if _, err := decodeStats(wb.b[:len(wb.b)-1]); err == nil {
		t.Fatal("truncated stats frame must not decode")
	}
	if _, err := decodeStats([]byte{99}); err == nil {
		t.Fatal("unknown stats version must not decode")
	}
}

// sumCounterFamily totals a counter family's samples across label sets.
func sumCounterFamily(t *testing.T, reg *metrics.Registry, name string) uint64 {
	t.Helper()
	for _, f := range reg.Snapshot().Families {
		if f.Name == name {
			var n uint64
			for _, s := range f.Samples {
				n += uint64(s.Value)
			}
			return n
		}
	}
	return 0
}

// sumSummaryCount totals a summary family's observation counts.
func sumSummaryCount(t *testing.T, reg *metrics.Registry, name string) uint64 {
	t.Helper()
	for _, f := range reg.Snapshot().Families {
		if f.Name == name {
			var n uint64
			for _, s := range f.Samples {
				n += s.Count
			}
			return n
		}
	}
	return 0
}

// TestIngestWorkerSeriesDeltas drives the cumulative-snapshot diffing
// directly: repeated snapshots must fold in only their increments, a
// re-registered worker restarts from a zero baseline without double
// counting, and stale (regressed) snapshots are ignored.
func TestIngestWorkerSeriesDeltas(t *testing.T) {
	r := newTestRemote(t, nil)
	reg := r.MetricsRegistry()
	resp, err := r.Register(RegisterRequest{Name: "w1", Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}

	snap := func(trials, epochs uint64, secs ...float64) WorkerSeries {
		d := metrics.NewDistribution()
		for _, s := range secs {
			d.Observe(s)
		}
		return WorkerSeries{Trials: trials, Epochs: epochs, TrialSeconds: d.Snapshot()}
	}

	if err := r.IngestWorkerSeries(resp.WorkerID, snap(2, 4, 0.1, 0.2)); err != nil {
		t.Fatal(err)
	}
	if err := r.IngestWorkerSeries(resp.WorkerID, snap(3, 6, 0.1, 0.2, 0.3)); err != nil {
		t.Fatal(err)
	}
	if got := sumCounterFamily(t, reg, "pipetune_worker_trials_total"); got != 3 {
		t.Fatalf("trials after two cumulative snapshots = %d, want 3", got)
	}
	if got := sumCounterFamily(t, reg, "pipetune_worker_epochs_total"); got != 6 {
		t.Fatalf("epochs = %d, want 6", got)
	}
	if got := sumSummaryCount(t, reg, "pipetune_worker_trial_seconds"); got != 3 {
		t.Fatalf("trial-seconds observations = %d, want 3", got)
	}

	// A regressed snapshot (e.g. duplicated delivery of an older beat)
	// must not subtract or re-add.
	if err := r.IngestWorkerSeries(resp.WorkerID, snap(1, 2, 0.1)); err != nil {
		t.Fatal(err)
	}
	if got := sumCounterFamily(t, reg, "pipetune_worker_trials_total"); got != 3 {
		t.Fatalf("trials after stale snapshot = %d, want 3", got)
	}

	// Re-registration: same name, fresh session, cumulative restart at
	// zero. The fleet aggregate must only grow by the new session's work.
	r.evictWorker(resp.WorkerID, "test")
	resp2, err := r.Register(RegisterRequest{Name: "w1", Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.IngestWorkerSeries(resp2.WorkerID, snap(2, 4, 0.5, 0.6)); err != nil {
		t.Fatal(err)
	}
	if got := sumCounterFamily(t, reg, "pipetune_worker_trials_total"); got != 5 {
		t.Fatalf("trials after re-registration = %d, want 3+2=5", got)
	}

	// Unknown workers are rejected.
	if err := r.IngestWorkerSeries("nope", snap(1, 1)); err == nil {
		t.Fatal("unknown worker must be rejected")
	}
}

// TestWorkerSeriesCrossWireParity runs the same trial set over the JSON
// and binary wires and requires the heartbeat-shipped fleet aggregates
// to converge to identical values: same trials, same epochs, same
// observation counts, same total compute seconds modulo wall-clock
// difference (compared as counts only).
func TestWorkerSeriesCrossWireParity(t *testing.T) {
	type agg struct {
		trials, epochs, obs uint64
	}
	runWire := func(wire string) agg {
		r, _ := startFleet(t, 2, RemoteConfig{Wire: wire})
		trials := realTrials(smallTrainer(), 4)
		_, errs := r.Run(context.Background(), trials, 0)
		for i, err := range errs {
			if err != nil {
				t.Fatalf("%s wire trial %d: %v", wire, i, err)
			}
		}
		reg := r.MetricsRegistry()
		deadline := time.Now().Add(5 * time.Second)
		var a agg
		for {
			a = agg{
				trials: sumCounterFamily(t, reg, "pipetune_worker_trials_total"),
				epochs: sumCounterFamily(t, reg, "pipetune_worker_epochs_total"),
				obs:    sumSummaryCount(t, reg, "pipetune_worker_trial_seconds"),
			}
			if a.trials == 4 && a.obs == 4 {
				return a
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s wire: aggregates never converged: %+v", wire, a)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	j := runWire(WireJSON)
	b := runWire(WireBinary)
	if j != b {
		t.Fatalf("wire aggregates diverge: json %+v, binary %+v", j, b)
	}
	if j.epochs == 0 {
		t.Fatal("epoch aggregate never shipped")
	}
}

// TestWireTrafficCounters checks that running work over each wire lands
// rx/tx frame and byte counts under the right wire label — and only
// that label.
func TestWireTrafficCounters(t *testing.T) {
	counts := func(reg *metrics.Registry, wire string) (frames, bytes uint64) {
		for _, f := range reg.Snapshot().Families {
			for _, s := range f.Samples {
				if s.Labels["wire"] != wire {
					continue
				}
				switch f.Name {
				case "pipetune_exec_wire_frames_total":
					frames += uint64(s.Value)
				case "pipetune_exec_wire_bytes_total":
					bytes += uint64(s.Value)
				}
			}
		}
		return frames, bytes
	}
	for _, wire := range []string{WireJSON, WireBinary} {
		r, _ := startFleet(t, 1, RemoteConfig{Wire: wire})
		trials := realTrials(smallTrainer(), 2)
		if _, errs := r.Run(context.Background(), trials, 0); errs[0] != nil || errs[1] != nil {
			t.Fatalf("%s wire run failed: %v", wire, errs)
		}
		frames, bytes := counts(r.MetricsRegistry(), wire)
		if frames == 0 || bytes == 0 {
			t.Fatalf("%s wire counted no traffic (frames=%d bytes=%d)", wire, frames, bytes)
		}
		other := WireBinary
		if wire == WireBinary {
			other = WireJSON
		}
		if of, ob := counts(r.MetricsRegistry(), other); of != 0 || ob != 0 {
			t.Fatalf("%s-only fleet counted %s traffic (frames=%d bytes=%d)", wire, other, of, ob)
		}
	}
}

// TestFleetStatusFromRegistry pins the satellite invariant that
// FleetStatus derives its trial counters from the metrics registry.
func TestFleetStatusFromRegistry(t *testing.T) {
	r, _ := startFleet(t, 1, RemoteConfig{Wire: WireBinary})
	trials := realTrials(smallTrainer(), 2)
	if _, errs := r.Run(context.Background(), trials, 0); errs[0] != nil || errs[1] != nil {
		t.Fatalf("run failed: %v", errs)
	}
	fs := r.Fleet()
	reg := sumCounterFamily(t, r.MetricsRegistry(), "pipetune_exec_completed_trials_total")
	if uint64(fs.CompletedTrials) != reg || reg != 2 {
		t.Fatalf("FleetStatus.CompletedTrials=%d, registry=%d, want both 2", fs.CompletedTrials, reg)
	}
}
