// Package params defines the two parameter families the paper tunes —
// hyperparameters (§7.1.3) and system parameters (§7.1.4) — plus the
// generic discrete search-space machinery shared by every search algorithm.
//
// An Assignment is a flat name→value map so that search algorithms stay
// agnostic of which family a dimension belongs to; Tune V2 ("system as
// hyperparameters", §4) is expressed simply by concatenating the two spaces.
package params

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"pipetune/internal/xrand"
)

// Canonical dimension names. Search spaces and assignments use these keys.
const (
	KeyBatchSize    = "batch_size"
	KeyLearningRate = "learning_rate"
	KeyDropout      = "dropout"
	KeyEmbeddingDim = "embedding_dim"
	KeyEpochs       = "epochs"
	KeyCores        = "cores"
	KeyMemoryGB     = "memory_gb"
)

// Hyper holds the five hyperparameters the paper tunes (§7.1.3), with the
// paper's recommended ranges noted per field.
type Hyper struct {
	BatchSize    int     `json:"batchSize"`    // [32, 1024]
	LearningRate float64 `json:"learningRate"` // [0.001, 0.1]
	Dropout      float64 `json:"dropout"`      // [0.0, 0.5]
	EmbeddingDim int     `json:"embeddingDim"` // [50, 300]
	Epochs       int     `json:"epochs"`       // [10, 100] (scaled down by default here)
}

// DefaultHyper returns the baseline configuration used throughout §3
// (batch size 32 is the explicit Figure 3a baseline).
func DefaultHyper() Hyper {
	return Hyper{
		BatchSize:    32,
		LearningRate: 0.01,
		Dropout:      0.25,
		EmbeddingDim: 100,
		Epochs:       10,
	}
}

// Validate reports whether the hyperparameters are inside the paper's
// documented ranges (with Epochs allowed down to 1 so short simulated
// trials remain legal).
func (h Hyper) Validate() error {
	switch {
	case h.BatchSize < 1 || h.BatchSize > 4096:
		return fmt.Errorf("params: batch size %d out of range", h.BatchSize)
	case h.LearningRate <= 0 || h.LearningRate > 1:
		return fmt.Errorf("params: learning rate %g out of range", h.LearningRate)
	case h.Dropout < 0 || h.Dropout > 0.9:
		return fmt.Errorf("params: dropout %g out of range", h.Dropout)
	case h.EmbeddingDim < 1 || h.EmbeddingDim > 1024:
		return fmt.Errorf("params: embedding dim %d out of range", h.EmbeddingDim)
	case h.Epochs < 1 || h.Epochs > 1000:
		return fmt.Errorf("params: epochs %d out of range", h.Epochs)
	}
	return nil
}

// String formats the hyperparameters compactly for logs and trial labels.
func (h Hyper) String() string {
	return fmt.Sprintf("bs=%d lr=%g do=%g emb=%d ep=%d",
		h.BatchSize, h.LearningRate, h.Dropout, h.EmbeddingDim, h.Epochs)
}

// SysConfig holds the system parameters tuned by PipeTune (§7.1.4): the
// resources allocated to one training trial.
type SysConfig struct {
	Cores    int `json:"cores"`    // valid cluster range: [4, 16]
	MemoryGB int `json:"memoryGB"` // valid cluster range: [4, 32]
}

// DefaultSysConfig is the fixed configuration Tune V1 runs every trial
// with: a middle-of-the-road slice of one node.
func DefaultSysConfig() SysConfig {
	return SysConfig{Cores: 8, MemoryGB: 8}
}

// Validate reports whether the configuration is inside the evaluation
// cluster's valid ranges (§7.1.4), extended down to 1 core so the §3
// sequential baselines can be expressed.
func (s SysConfig) Validate() error {
	if s.Cores < 1 || s.Cores > 64 {
		return fmt.Errorf("params: cores %d out of range", s.Cores)
	}
	if s.MemoryGB < 1 || s.MemoryGB > 256 {
		return fmt.Errorf("params: memory %d GB out of range", s.MemoryGB)
	}
	return nil
}

// String formats the configuration compactly.
func (s SysConfig) String() string {
	return fmt.Sprintf("%dc/%dGB", s.Cores, s.MemoryGB)
}

// Assignment maps dimension names to chosen values. Integer-valued
// dimensions are stored as float64 and rounded on extraction.
type Assignment map[string]float64

// Clone returns an independent copy.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// Key returns a canonical, order-independent string encoding, usable as a
// map key for deduplication and caching.
func (a Assignment) Key() string {
	names := make([]string, 0, len(a))
	for k := range a {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, k := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(a[k], 'g', -1, 64))
	}
	return b.String()
}

// ApplyHyper overlays any hyperparameter dimensions present in a onto base
// and returns the result.
func (a Assignment) ApplyHyper(base Hyper) Hyper {
	if v, ok := a[KeyBatchSize]; ok {
		base.BatchSize = int(v + 0.5)
	}
	if v, ok := a[KeyLearningRate]; ok {
		base.LearningRate = v
	}
	if v, ok := a[KeyDropout]; ok {
		base.Dropout = v
	}
	if v, ok := a[KeyEmbeddingDim]; ok {
		base.EmbeddingDim = int(v + 0.5)
	}
	if v, ok := a[KeyEpochs]; ok {
		base.Epochs = int(v + 0.5)
	}
	return base
}

// ApplySys overlays any system dimensions present in a onto base.
func (a Assignment) ApplySys(base SysConfig) SysConfig {
	if v, ok := a[KeyCores]; ok {
		base.Cores = int(v + 0.5)
	}
	if v, ok := a[KeyMemoryGB]; ok {
		base.MemoryGB = int(v + 0.5)
	}
	return base
}

// Dimension is one discrete tunable axis.
type Dimension struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// Space is an ordered list of dimensions. Order determines grid enumeration
// order and must therefore be stable.
type Space []Dimension

// Size returns the number of points in the full grid.
func (s Space) Size() int {
	if len(s) == 0 {
		return 0
	}
	n := 1
	for _, d := range s {
		n *= len(d.Values)
	}
	return n
}

// Validate checks that every dimension has a name and at least one value,
// and that no name repeats.
func (s Space) Validate() error {
	seen := make(map[string]bool, len(s))
	for _, d := range s {
		if d.Name == "" {
			return fmt.Errorf("params: dimension with empty name")
		}
		if len(d.Values) == 0 {
			return fmt.Errorf("params: dimension %q has no values", d.Name)
		}
		if seen[d.Name] {
			return fmt.Errorf("params: duplicate dimension %q", d.Name)
		}
		seen[d.Name] = true
	}
	return nil
}

// At returns the i-th grid point in mixed-radix order (first dimension
// varies slowest). It panics if i is out of range — callers iterate over
// [0, Size()).
func (s Space) At(i int) Assignment {
	if i < 0 || i >= s.Size() {
		panic(fmt.Sprintf("params: grid index %d out of range [0,%d)", i, s.Size()))
	}
	a := make(Assignment, len(s))
	for d := len(s) - 1; d >= 0; d-- {
		n := len(s[d].Values)
		a[s[d].Name] = s[d].Values[i%n]
		i /= n
	}
	return a
}

// Grid materialises every point of the space.
func (s Space) Grid() []Assignment {
	out := make([]Assignment, 0, s.Size())
	for i := 0; i < s.Size(); i++ {
		out = append(out, s.At(i))
	}
	return out
}

// Sample draws one uniform random point.
func (s Space) Sample(r *xrand.Source) Assignment {
	a := make(Assignment, len(s))
	for _, d := range s {
		a[d.Name] = d.Values[r.Intn(len(d.Values))]
	}
	return a
}

// Concat returns a new space with the dimensions of both inputs; this is
// how Tune V2 folds system parameters into the hyperparameter search.
func Concat(a, b Space) Space {
	out := make(Space, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

// PaperHyperSpace returns the discrete hyperparameter grid used by the
// evaluation: the paper's five dimensions with three representative values
// each (Figure 1 configures "up to 3 different values" per parameter).
// Epoch counts are scaled down (paper range [10,100]) to keep simulated
// trials short; relative orderings are preserved.
func PaperHyperSpace() Space {
	return Space{
		{Name: KeyBatchSize, Values: []float64{32, 256, 1024}},
		{Name: KeyLearningRate, Values: []float64{0.001, 0.01, 0.1}},
		{Name: KeyDropout, Values: []float64{0.0, 0.25, 0.5}},
		{Name: KeyEmbeddingDim, Values: []float64{50, 100, 300}},
		{Name: KeyEpochs, Values: []float64{4, 8, 12}},
	}
}

// PaperSystemSpace returns the system-parameter grid from §7.1.4:
// cores ∈ [4,16] and memory ∈ [4,32] GB at power-of-two steps, matching the
// 48-configuration profiling campaign of §7.2 (4 memory × 3 core levels ×
// 4 batch levels there; here the resource axes only).
func PaperSystemSpace() Space {
	return Space{
		{Name: KeyCores, Values: []float64{4, 8, 16}},
		{Name: KeyMemoryGB, Values: []float64{4, 8, 16, 32}},
	}
}
