package params

import (
	"testing"
	"testing/quick"

	"pipetune/internal/xrand"
)

func TestDefaultsValidate(t *testing.T) {
	if err := DefaultHyper().Validate(); err != nil {
		t.Fatalf("default hyper invalid: %v", err)
	}
	if err := DefaultSysConfig().Validate(); err != nil {
		t.Fatalf("default sysconfig invalid: %v", err)
	}
}

func TestHyperValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Hyper)
	}{
		{"zero batch", func(h *Hyper) { h.BatchSize = 0 }},
		{"huge batch", func(h *Hyper) { h.BatchSize = 10000 }},
		{"zero lr", func(h *Hyper) { h.LearningRate = 0 }},
		{"big lr", func(h *Hyper) { h.LearningRate = 2 }},
		{"neg dropout", func(h *Hyper) { h.Dropout = -0.1 }},
		{"big dropout", func(h *Hyper) { h.Dropout = 0.95 }},
		{"zero emb", func(h *Hyper) { h.EmbeddingDim = 0 }},
		{"zero epochs", func(h *Hyper) { h.Epochs = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := DefaultHyper()
			tc.mut(&h)
			if err := h.Validate(); err == nil {
				t.Fatalf("%+v validated but should not", h)
			}
		})
	}
}

func TestSysConfigValidateRejects(t *testing.T) {
	for _, s := range []SysConfig{{Cores: 0, MemoryGB: 8}, {Cores: 8, MemoryGB: 0}, {Cores: 100, MemoryGB: 8}} {
		if err := s.Validate(); err == nil {
			t.Fatalf("%+v validated but should not", s)
		}
	}
}

func TestAssignmentApply(t *testing.T) {
	a := Assignment{
		KeyBatchSize:    256,
		KeyLearningRate: 0.05,
		KeyCores:        16,
	}
	h := a.ApplyHyper(DefaultHyper())
	if h.BatchSize != 256 || h.LearningRate != 0.05 {
		t.Fatalf("ApplyHyper = %+v", h)
	}
	if h.Dropout != DefaultHyper().Dropout {
		t.Fatal("untouched field changed")
	}
	s := a.ApplySys(DefaultSysConfig())
	if s.Cores != 16 {
		t.Fatalf("ApplySys = %+v", s)
	}
	if s.MemoryGB != DefaultSysConfig().MemoryGB {
		t.Fatal("untouched sys field changed")
	}
}

func TestAssignmentKeyCanonical(t *testing.T) {
	a := Assignment{"b": 2, "a": 1}
	b := Assignment{"a": 1, "b": 2}
	if a.Key() != b.Key() {
		t.Fatalf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	c := Assignment{"a": 1, "b": 3}
	if a.Key() == c.Key() {
		t.Fatal("different assignments share a key")
	}
}

func TestAssignmentClone(t *testing.T) {
	a := Assignment{"x": 1}
	b := a.Clone()
	b["x"] = 2
	if a["x"] != 1 {
		t.Fatal("Clone is not independent")
	}
}

func TestSpaceSizeAndGrid(t *testing.T) {
	s := Space{
		{Name: "a", Values: []float64{1, 2}},
		{Name: "b", Values: []float64{10, 20, 30}},
	}
	if s.Size() != 6 {
		t.Fatalf("Size = %d, want 6", s.Size())
	}
	grid := s.Grid()
	if len(grid) != 6 {
		t.Fatalf("Grid len = %d", len(grid))
	}
	seen := make(map[string]bool)
	for _, a := range grid {
		if seen[a.Key()] {
			t.Fatalf("duplicate grid point %v", a)
		}
		seen[a.Key()] = true
	}
	if (Space{}).Size() != 0 {
		t.Fatal("empty space size != 0")
	}
}

func TestSpaceAtPanicsOutOfRange(t *testing.T) {
	s := Space{{Name: "a", Values: []float64{1}}}
	defer func() {
		if recover() == nil {
			t.Fatal("At(5) did not panic")
		}
	}()
	s.At(5)
}

func TestSpaceValidate(t *testing.T) {
	good := Space{{Name: "a", Values: []float64{1}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Space{
		{{Name: "", Values: []float64{1}}},
		{{Name: "a", Values: nil}},
		{{Name: "a", Values: []float64{1}}, {Name: "a", Values: []float64{2}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("space %v validated but should not", bad)
		}
	}
}

func TestSpaceSampleWithinValues(t *testing.T) {
	s := Space{
		{Name: "a", Values: []float64{1, 2, 3}},
		{Name: "b", Values: []float64{7}},
	}
	r := xrand.New(1)
	for i := 0; i < 100; i++ {
		a := s.Sample(r)
		if a["a"] < 1 || a["a"] > 3 || a["b"] != 7 {
			t.Fatalf("sample out of space: %v", a)
		}
	}
}

func TestConcat(t *testing.T) {
	h := PaperHyperSpace()
	sys := PaperSystemSpace()
	both := Concat(h, sys)
	if len(both) != len(h)+len(sys) {
		t.Fatalf("Concat len = %d", len(both))
	}
	if both.Size() != h.Size()*sys.Size() {
		t.Fatalf("Concat size = %d, want %d", both.Size(), h.Size()*sys.Size())
	}
	if err := both.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPaperSpacesProduceValidConfigs(t *testing.T) {
	for _, a := range PaperHyperSpace().Grid() {
		h := a.ApplyHyper(DefaultHyper())
		if err := h.Validate(); err != nil {
			t.Fatalf("grid point %v gives invalid hyper: %v", a, err)
		}
	}
	for _, a := range PaperSystemSpace().Grid() {
		s := a.ApplySys(DefaultSysConfig())
		if err := s.Validate(); err != nil {
			t.Fatalf("grid point %v gives invalid sysconfig: %v", a, err)
		}
	}
}

// Property: every grid index yields a point whose values belong to the
// respective dimensions, and indexes enumerate without collision.
func TestQuickGridMembership(t *testing.T) {
	s := Space{
		{Name: "a", Values: []float64{1, 2, 3}},
		{Name: "b", Values: []float64{4, 5}},
		{Name: "c", Values: []float64{6, 7, 8, 9}},
	}
	member := func(vals []float64, v float64) bool {
		for _, x := range vals {
			if x == v {
				return true
			}
		}
		return false
	}
	f := func(rawIdx uint16) bool {
		i := int(rawIdx) % s.Size()
		a := s.At(i)
		for _, d := range s {
			if !member(d.Values, a[d.Name]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
