package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at draw %d: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first draw")
	}
}

func TestSplitDeterminism(t *testing.T) {
	mk := func() (*Source, *Source) {
		p := New(7)
		return p.Split(), p.Split()
	}
	a1, a2 := mk()
	b1, b2 := mk()
	for i := 0; i < 100; i++ {
		if a1.Uint64() != b1.Uint64() || a2.Uint64() != b2.Uint64() {
			t.Fatalf("split streams not reproducible at draw %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("Intn(10) value %d drawn %d/10000 times, badly non-uniform", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(9)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential variate negative: %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) returned %d elements", n, len(p))
		}
		seen := make(map[int]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestRangeBounds(t *testing.T) {
	r := New(19)
	for i := 0; i < 1000; i++ {
		v := r.Range(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Range(-2,5) out of bounds: %v", v)
		}
	}
}

func TestJitterBounds(t *testing.T) {
	r := New(23)
	for i := 0; i < 1000; i++ {
		v := r.Jitter(100, 0.05)
		if v < 95-1e-9 || v > 105+1e-9 {
			t.Fatalf("Jitter(100, 0.05) out of bounds: %v", v)
		}
	}
}

// Property: any seed produces values in the documented ranges.
func TestQuickFloat64InRange(t *testing.T) {
	f := func(seed uint64, draws uint8) bool {
		r := New(seed)
		for i := 0; i < int(draws)%64+1; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Split children with the same lineage are reproducible.
func TestQuickSplitReproducible(t *testing.T) {
	f := func(seed uint64) bool {
		a := New(seed).Split()
		b := New(seed).Split()
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
