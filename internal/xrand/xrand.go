// Package xrand provides a deterministic, splittable pseudo-random number
// generator used by every stochastic component of the PipeTune reproduction.
//
// Determinism matters here more than statistical sophistication: every
// experiment in the paper is regenerated from a single master seed, and the
// ability to Split a source lets independent components (dataset synthesis,
// weight initialisation, arrival processes, PMU noise) draw from disjoint
// streams without coordinating.
//
// The implementation is xoshiro256** seeded via splitmix64, the combination
// recommended by Blackman & Vigna. Only the standard library is used.
package xrand

import "math"

// Source is a deterministic xoshiro256** PRNG. It is NOT safe for concurrent
// use; Split off per-goroutine sources instead.
type Source struct {
	s [4]uint64
}

// splitmix64 advances the given state and returns the next output. It is used
// to expand a 64-bit seed into the 256-bit xoshiro state, and to derive
// child seeds in Split.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded deterministically from seed.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		src.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start from the all-zero state; splitmix64 of any seed
	// cannot produce four zero outputs in a row, but guard regardless.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives an independent child source. The child's stream is a pure
// function of the parent's state at the time of the call, so a fixed
// sequence of Split calls always yields the same family of streams.
func (r *Source) Split() *Source {
	seed := r.Uint64()
	return New(seed)
}

// State returns the full 256-bit generator state. Together with SetState
// it lets a caller checkpoint a stream mid-flight and later resume it
// exactly where it left off — the trainer's prefix cache relies on this
// to replay SGD bit-identically from a saved epoch boundary.
func (r *Source) State() [4]uint64 { return r.s }

// SetState restores a state previously captured with State. The all-zero
// state is invalid for xoshiro and is rejected by keeping the current
// state instead (it can never be produced by State on a valid source).
func (r *Source) SetState(s [4]uint64) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return
	}
	r.s = s
}

// Int63 returns a non-negative 63-bit integer.
func (r *Source) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0, mirroring
// math/rand semantics (a programming error, not a runtime condition).
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless method would be faster; plain modulo of a
	// 64-bit draw has negligible bias for the small n used here.
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1). Scale by
// the desired mean to model inter-arrival times.
func (r *Source) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle of n elements using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Range returns a uniform float64 in [lo, hi).
func (r *Source) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Jitter returns v scaled by a uniform factor in [1-eps, 1+eps]. It is the
// standard way the simulators add bounded measurement noise.
func (r *Source) Jitter(v, eps float64) float64 {
	return v * (1 + eps*(2*r.Float64()-1))
}
