// Package admission is the job-granularity analogue of internal/sched's
// trial placement policies: a tenant-aware admission queue deciding which
// *tuning job* a shared cluster middleware dispatches next. Where
// internal/sched places trials of one job onto nodes, admission arbitrates
// between whole jobs competing for the service's worker pool — the
// cluster-level scheduling that makes a shared DL cluster usable for more
// than one tenant at a time (§5, §7.1.2).
//
// Three policies share one contract, reusing the sched vocabulary:
//
//   - fifo — strict submission order across all tenants (the historical
//     single-channel behaviour, byte-for-byte: with default priorities the
//     pop sequence equals the push sequence).
//   - fair — weighted fair sharing by deficit round robin over per-tenant
//     queues: each tenant accumulates credit proportional to its weight
//     and spends it on its jobs' costs, so over any backlogged interval a
//     weight-2 tenant dispatches ~2x the work of a weight-1 tenant,
//     regardless of how many jobs either submits.
//   - sjf — shortest job first over predicted cost, with a starvation
//     guard: the globally oldest job is never bypassed more than
//     Config.StarveLimit times, bounding its extra wait the way EASY
//     backfill bounds the queue head's.
//
// Within a tenant, higher Priority dispatches first; ties preserve
// submission order. The queue is deterministic: identical push/pop
// sequences yield identical dispatch orders (no clocks, no randomness),
// which is what makes the service's FIFO-parity and fairness guarantees
// testable to the bit.
//
// The queue is not safe for concurrent use; callers (internal/service)
// guard it with their own mutex.
package admission

import (
	"errors"
	"fmt"
	"sort"
)

// Policy names a job dispatch order.
type Policy string

// Job dispatch policies.
const (
	PolicyFIFO Policy = "fifo"
	PolicyFair Policy = "fair"
	PolicySJF  Policy = "sjf"
)

// ParsePolicy resolves a policy name; the empty string means PolicyFIFO.
func ParsePolicy(name string) (Policy, error) {
	switch Policy(name) {
	case "", PolicyFIFO:
		return PolicyFIFO, nil
	case PolicyFair:
		return PolicyFair, nil
	case PolicySJF:
		return PolicySJF, nil
	default:
		return "", fmt.Errorf("admission: unknown policy %q (want %s, %s or %s)",
			name, PolicyFIFO, PolicyFair, PolicySJF)
	}
}

// ErrFull rejects a Push that would exceed Config.Capacity.
var ErrFull = errors.New("admission: queue full")

// Job is one queued unit of work.
type Job struct {
	// ID identifies the job to Remove and Position.
	ID string
	// Tenant is the fair-share accounting principal (empty is a valid
	// tenant name; the service maps it to "default" before pushing).
	Tenant string
	// Priority orders jobs within a tenant: higher dispatches first, ties
	// preserve submission order. Zero is the default.
	Priority int
	// Cost is the job's predicted service time (any consistent unit): the
	// deficit-round-robin spend and the SJF key. Values <= 0 are treated
	// as 1, degrading fair mode to weighted job-count sharing.
	Cost float64
}

// Config sizes a Queue. The zero value is a plain unbounded FIFO.
type Config struct {
	// Policy selects the dispatch order (default PolicyFIFO).
	Policy Policy
	// Weights maps tenant name to fair-share weight; missing or
	// non-positive entries count as 1. Only PolicyFair consults it.
	Weights map[string]int
	// Capacity bounds the queued-job count (<= 0 means unbounded).
	Capacity int
	// StarveLimit bounds how many times PolicySJF may dispatch past the
	// globally oldest job before dispatching it regardless of cost or
	// priority (default 8; < 0 disables the guard).
	StarveLimit int
}

// item is one queued job plus its submission sequence number.
type item struct {
	job Job
	seq int
}

// tenantQueue holds one tenant's waiting jobs in dispatch order
// (-Priority, seq) plus its deficit-round-robin credit.
type tenantQueue struct {
	name    string
	items   []item
	deficit float64
}

// before orders items within a tenant: higher priority first, then
// submission order.
func (a item) before(b item) bool {
	if a.job.Priority != b.job.Priority {
		return a.job.Priority > b.job.Priority
	}
	return a.seq < b.seq
}

// insert places it in dispatch order (stable: equal priorities append
// after earlier submissions).
func (tq *tenantQueue) insert(it item) {
	i := sort.Search(len(tq.items), func(i int) bool { return it.before(tq.items[i]) })
	tq.items = append(tq.items, item{})
	copy(tq.items[i+1:], tq.items[i:])
	tq.items[i] = it
}

// Queue is a tenant-aware admission queue. Not safe for concurrent use.
type Queue struct {
	cfg     Config
	seq     int
	size    int
	tenants map[string]*tenantQueue
	ring    []string // active tenants in activation order (fair mode)
	cur     int      // current ring position (fair mode)

	oldestSkips int // SJF starvation guard: times the oldest job was bypassed

	rev       uint64 // bumped on every mutation; invalidates the order cache
	cachedRev uint64
	cachedPos map[string]int
}

// New builds a queue. An unknown Config.Policy is an error.
func New(cfg Config) (*Queue, error) {
	p, err := ParsePolicy(string(cfg.Policy))
	if err != nil {
		return nil, err
	}
	cfg.Policy = p
	if cfg.StarveLimit == 0 {
		cfg.StarveLimit = 8
	}
	return &Queue{cfg: cfg, tenants: make(map[string]*tenantQueue)}, nil
}

// Policy returns the active dispatch policy.
func (q *Queue) Policy() Policy { return q.cfg.Policy }

// Weight returns the fair-share weight the queue uses for a tenant.
func (q *Queue) Weight(tenant string) int {
	if w := q.cfg.Weights[tenant]; w > 0 {
		return w
	}
	return 1
}

// Len returns the number of queued jobs.
func (q *Queue) Len() int { return q.size }

// Full reports whether a Push would return ErrFull.
func (q *Queue) Full() bool { return q.cfg.Capacity > 0 && q.size >= q.cfg.Capacity }

// Depths returns the per-tenant queued-job counts.
func (q *Queue) Depths() map[string]int {
	out := make(map[string]int, len(q.tenants))
	for name, tq := range q.tenants {
		if len(tq.items) > 0 {
			out[name] = len(tq.items)
		}
	}
	return out
}

// Push enqueues a job, assigning its submission sequence. It returns
// ErrFull when the queue is at capacity.
func (q *Queue) Push(j Job) error {
	if q.Full() {
		return ErrFull
	}
	if j.Cost <= 0 {
		j.Cost = 1
	}
	tq := q.tenants[j.Tenant]
	if tq == nil {
		tq = &tenantQueue{name: j.Tenant}
		q.tenants[j.Tenant] = tq
	}
	if len(tq.items) == 0 {
		// (Re-)activation: join the round-robin ring with zero credit; the
		// first visit grants the quantum, like every later one.
		q.ring = append(q.ring, j.Tenant)
	}
	q.seq++
	tq.insert(item{job: j, seq: q.seq})
	q.size++
	q.rev++
	return nil
}

// Pop dispatches the next job under the configured policy, reporting false
// on an empty queue.
func (q *Queue) Pop() (Job, bool) {
	if q.size == 0 {
		return Job{}, false
	}
	var it item
	switch q.cfg.Policy {
	case PolicyFair:
		it = q.popFair()
	case PolicySJF:
		it = q.popSJF()
	default:
		it = q.popFIFO()
	}
	q.rev++
	return it.job, true
}

// popFIFO removes the global (-priority, seq) minimum: with default
// priorities, exactly the submission order of the legacy single channel.
func (q *Queue) popFIFO() item {
	var best *tenantQueue
	for _, tq := range q.tenants {
		if len(tq.items) == 0 {
			continue
		}
		if best == nil || tq.items[0].before(best.items[0]) {
			best = tq
		}
	}
	return q.removeAt(best, 0)
}

// popFair runs one deficit-round-robin step: the current tenant dispatches
// while its credit covers its head job's cost; otherwise the turn passes
// to the next active tenant, which earns quantum x weight on arrival.
// The quantum is the maximum cost currently queued — large enough that a
// full ring cycle always raises some tenant's credit past its head
// (termination), small enough that a long-gone expensive job cannot
// coarsen the interleaving forever.
func (q *Queue) popFair() item {
	if q.cur >= len(q.ring) {
		q.cur = 0
	}
	quantum := q.maxQueuedCost()
	for {
		tq := q.tenants[q.ring[q.cur]]
		if len(tq.items) > 0 && tq.deficit >= tq.items[0].job.Cost {
			tq.deficit -= tq.items[0].job.Cost
			return q.removeAt(tq, 0)
		}
		q.cur = (q.cur + 1) % len(q.ring)
		next := q.tenants[q.ring[q.cur]]
		next.deficit += quantum * float64(q.Weight(next.name))
	}
}

// maxQueuedCost returns the largest cost waiting in any tenant queue
// (>= 1: Push normalises costs).
func (q *Queue) maxQueuedCost() float64 {
	m := 1.0
	for _, tq := range q.tenants {
		for _, it := range tq.items {
			if it.job.Cost > m {
				m = it.job.Cost
			}
		}
	}
	return m
}

// popSJF removes the cheapest queued job (priority first, then cost, then
// age), unless the globally oldest job has already been bypassed
// StarveLimit times — then the oldest dispatches unconditionally.
func (q *Queue) popSJF() item {
	var bestTQ, oldTQ *tenantQueue
	bestI, oldI := -1, -1
	for _, tq := range q.tenants {
		for i, it := range tq.items {
			if bestI < 0 || sjfBefore(it, bestTQ.items[bestI]) {
				bestTQ, bestI = tq, i
			}
			if oldI < 0 || it.seq < oldTQ.items[oldI].seq {
				oldTQ, oldI = tq, i
			}
		}
	}
	if q.cfg.StarveLimit >= 0 && q.oldestSkips >= q.cfg.StarveLimit {
		q.oldestSkips = 0
		return q.removeAt(oldTQ, oldI)
	}
	if bestTQ == oldTQ && bestI == oldI {
		q.oldestSkips = 0
	} else {
		q.oldestSkips++
	}
	return q.removeAt(bestTQ, bestI)
}

// sjfBefore orders jobs for popSJF: priority, then predicted cost, then
// submission order.
func sjfBefore(a, b item) bool {
	if a.job.Priority != b.job.Priority {
		return a.job.Priority > b.job.Priority
	}
	if a.job.Cost != b.job.Cost {
		return a.job.Cost < b.job.Cost
	}
	return a.seq < b.seq
}

// removeAt deletes tq.items[i], maintaining ring membership and size.
func (q *Queue) removeAt(tq *tenantQueue, i int) item {
	it := tq.items[i]
	tq.items = append(tq.items[:i], tq.items[i+1:]...)
	q.size--
	if len(tq.items) == 0 {
		tq.deficit = 0
		q.dropFromRing(tq.name)
	}
	return it
}

// dropFromRing removes an emptied tenant from the round-robin ring,
// keeping q.cur on the tenant that currently holds the turn.
func (q *Queue) dropFromRing(name string) {
	for i, n := range q.ring {
		if n != name {
			continue
		}
		q.ring = append(q.ring[:i], q.ring[i+1:]...)
		if i < q.cur {
			q.cur--
		}
		if len(q.ring) > 0 {
			q.cur %= len(q.ring)
		} else {
			q.cur = 0
		}
		return
	}
}

// Remove deletes a queued job by ID (a cancelled job must never dispatch),
// reporting whether it was present.
func (q *Queue) Remove(id string) bool {
	for _, tq := range q.tenants {
		for i, it := range tq.items {
			if it.job.ID == id {
				q.removeAt(tq, i)
				q.oldestSkips = 0 // the oldest may have changed; restart the guard
				q.rev++
				return true
			}
		}
	}
	return false
}

// Position returns a job's 0-based rank in the queue's nominal dispatch
// order, or -1 when the job is not queued. The order is exact for fifo and
// sjf (modulo the starvation guard); for fair it is the weighted
// virtual-finish-time order — each tenant's k-th job finishes at
// (cumulative cost through k)/weight — which tracks the DRR dispatch
// sequence without simulating credit state.
func (q *Queue) Position(id string) int {
	if q.cachedRev != q.rev || q.cachedPos == nil {
		q.cachedPos = q.buildPositions()
		q.cachedRev = q.rev
	}
	if pos, ok := q.cachedPos[id]; ok {
		return pos
	}
	return -1
}

// buildPositions materialises the nominal dispatch order.
func (q *Queue) buildPositions() map[string]int {
	type ranked struct {
		id  string
		key float64 // policy-specific primary key
		pri int
		seq int
	}
	all := make([]ranked, 0, q.size)
	for _, tq := range q.tenants {
		cum := 0.0
		w := float64(q.Weight(tq.name))
		for _, it := range tq.items {
			r := ranked{id: it.job.ID, pri: it.job.Priority, seq: it.seq}
			switch q.cfg.Policy {
			case PolicyFair:
				cum += it.job.Cost
				r.key = cum / w
			case PolicySJF:
				r.key = it.job.Cost
			}
			all = append(all, r)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if q.cfg.Policy != PolicyFair && a.pri != b.pri {
			return a.pri > b.pri
		}
		if a.key != b.key {
			return a.key < b.key
		}
		return a.seq < b.seq
	})
	pos := make(map[string]int, len(all))
	for i, r := range all {
		pos[r.id] = i
	}
	return pos
}
