package admission

import (
	"fmt"
	"testing"
)

func mustNew(t *testing.T, cfg Config) *Queue {
	t.Helper()
	q, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func push(t *testing.T, q *Queue, j Job) {
	t.Helper()
	if err := q.Push(j); err != nil {
		t.Fatalf("push %+v: %v", j, err)
	}
}

// drain pops everything, returning the dispatch order of job IDs.
func drain(q *Queue) []string {
	var out []string
	for {
		j, ok := q.Pop()
		if !ok {
			return out
		}
		out = append(out, j.ID)
	}
}

// TestFIFOParity is the parity property behind the service's default
// configuration: whatever the tenants and costs, PolicyFIFO with default
// priorities pops in exact push order — the legacy single-channel schedule.
func TestFIFOParity(t *testing.T) {
	q := mustNew(t, Config{Policy: PolicyFIFO})
	var want []string
	tenants := []string{"a", "b", "c", "", "a"}
	for i := 0; i < 25; i++ {
		id := fmt.Sprintf("job-%02d", i)
		push(t, q, Job{ID: id, Tenant: tenants[i%len(tenants)], Cost: float64(25 - i)})
		want = append(want, id)
	}
	got := drain(q)
	if len(got) != len(want) {
		t.Fatalf("drained %d jobs, pushed %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop %d = %s, want %s (full order %v)", i, got[i], want[i], got)
		}
	}
}

// TestFIFOParityInterleaved interleaves pushes and pops: order must still
// be global submission order.
func TestFIFOParityInterleaved(t *testing.T) {
	q := mustNew(t, Config{Policy: PolicyFIFO})
	push(t, q, Job{ID: "1", Tenant: "x"})
	push(t, q, Job{ID: "2", Tenant: "y"})
	if j, _ := q.Pop(); j.ID != "1" {
		t.Fatalf("first pop %s", j.ID)
	}
	push(t, q, Job{ID: "3", Tenant: "x"})
	if j, _ := q.Pop(); j.ID != "2" {
		t.Fatalf("second pop %s", j.ID)
	}
	if j, _ := q.Pop(); j.ID != "3" {
		t.Fatalf("third pop %s", j.ID)
	}
}

// TestPriorityTiers verifies higher priority dispatches first under FIFO,
// submission order within a tier.
func TestPriorityTiers(t *testing.T) {
	q := mustNew(t, Config{Policy: PolicyFIFO})
	push(t, q, Job{ID: "low1"})
	push(t, q, Job{ID: "hi1", Priority: 5})
	push(t, q, Job{ID: "low2"})
	push(t, q, Job{ID: "hi2", Priority: 5})
	want := []string{"hi1", "hi2", "low1", "low2"}
	got := drain(q)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
}

// TestFairWeightedShare is the DRR invariant: with equal job costs and a
// saturated backlog, a weight-2 tenant dispatches twice the jobs of a
// weight-1 tenant over any aligned window.
func TestFairWeightedShare(t *testing.T) {
	q := mustNew(t, Config{Policy: PolicyFair, Weights: map[string]int{"gold": 2, "free": 1}})
	for i := 0; i < 30; i++ {
		push(t, q, Job{ID: fmt.Sprintf("g%02d", i), Tenant: "gold", Cost: 10})
		push(t, q, Job{ID: fmt.Sprintf("f%02d", i), Tenant: "free", Cost: 10})
	}
	gold := 0
	for i := 0; i < 30; i++ {
		j, ok := q.Pop()
		if !ok {
			t.Fatal("queue dried up early")
		}
		if j.Tenant == "gold" {
			gold++
		}
	}
	// Exactly 2/3 of dispatches +/- one quantum's worth of slack.
	if gold < 19 || gold > 21 {
		t.Fatalf("gold dispatched %d of first 30, want ~20", gold)
	}
	// Within a tenant the order stays FIFO.
	j, _ := q.Pop()
	if j.ID[0] == 'g' && j.ID != "g20" && j.ID != "g19" {
		t.Fatalf("gold out of order: %s", j.ID)
	}
}

// TestFairCostWeighting verifies fairness is by cost, not job count: a
// tenant submitting double-cost jobs dispatches half as many of them.
func TestFairCostWeighting(t *testing.T) {
	q := mustNew(t, Config{Policy: PolicyFair})
	for i := 0; i < 24; i++ {
		push(t, q, Job{ID: fmt.Sprintf("big%02d", i), Tenant: "big", Cost: 20})
		push(t, q, Job{ID: fmt.Sprintf("small%02d", i), Tenant: "small", Cost: 10})
	}
	big, small := 0, 0
	for i := 0; i < 18; i++ {
		j, _ := q.Pop()
		if j.Tenant == "big" {
			big++
		} else {
			small++
		}
	}
	// Equal weights, so equal cost share: small should dispatch ~2x as
	// many jobs as big.
	if small < 2*big-2 || small > 2*big+2 {
		t.Fatalf("cost-fair split off: big %d, small %d (want ~1:2)", big, small)
	}
}

// TestFairServesLoneTenant checks DRR degrades to FIFO when only one
// tenant is active.
func TestFairServesLoneTenant(t *testing.T) {
	q := mustNew(t, Config{Policy: PolicyFair, Weights: map[string]int{"solo": 3}})
	for i := 0; i < 5; i++ {
		push(t, q, Job{ID: fmt.Sprintf("%d", i), Tenant: "solo", Cost: 7})
	}
	got := drain(q)
	for i, id := range got {
		if id != fmt.Sprintf("%d", i) {
			t.Fatalf("lone tenant out of order: %v", got)
		}
	}
}

// TestSJFOrdersByCost verifies the SJF key and its tie-breaks.
func TestSJFOrdersByCost(t *testing.T) {
	q := mustNew(t, Config{Policy: PolicySJF})
	push(t, q, Job{ID: "slow", Cost: 100})
	push(t, q, Job{ID: "quick", Cost: 1})
	push(t, q, Job{ID: "mid", Cost: 50})
	push(t, q, Job{ID: "quick2", Cost: 1})
	want := []string{"quick", "quick2", "mid", "slow"}
	got := drain(q)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sjf order %v, want %v", got, want)
		}
	}
}

// TestSJFStarvationGuard proves the oldest job is bypassed at most
// StarveLimit times: an endless stream of cheap jobs cannot starve the
// expensive head forever.
func TestSJFStarvationGuard(t *testing.T) {
	q := mustNew(t, Config{Policy: PolicySJF, StarveLimit: 3})
	push(t, q, Job{ID: "whale", Cost: 1000})
	for i := 0; i < 10; i++ {
		push(t, q, Job{ID: fmt.Sprintf("minnow%d", i), Cost: 1})
	}
	var order []string
	for i := 0; i < 5; i++ {
		j, _ := q.Pop()
		order = append(order, j.ID)
		// Keep the queue saturated with cheap work.
		push(t, q, Job{ID: fmt.Sprintf("late%d", i), Cost: 1})
	}
	// The whale is bypassed exactly 3 times, then dispatched 4th.
	if order[3] != "whale" {
		t.Fatalf("whale not dispatched after StarveLimit bypasses: %v", order)
	}
}

// TestCapacity verifies ErrFull and that a rejected push leaves no trace.
func TestCapacity(t *testing.T) {
	q := mustNew(t, Config{Capacity: 2})
	push(t, q, Job{ID: "a"})
	push(t, q, Job{ID: "b"})
	if !q.Full() {
		t.Fatal("queue not full at capacity")
	}
	if err := q.Push(Job{ID: "c"}); err != ErrFull {
		t.Fatalf("over-capacity push: %v", err)
	}
	if q.Len() != 2 {
		t.Fatalf("rejected push changed length: %d", q.Len())
	}
	if j, _ := q.Pop(); j.ID != "a" {
		t.Fatalf("pop after rejection: %s", j.ID)
	}
	// Capacity freed: the next push lands.
	push(t, q, Job{ID: "d"})
}

// TestRemove verifies cancelled jobs never dispatch and bookkeeping stays
// consistent.
func TestRemove(t *testing.T) {
	q := mustNew(t, Config{Policy: PolicyFair, Weights: map[string]int{"t1": 2}})
	push(t, q, Job{ID: "a", Tenant: "t1"})
	push(t, q, Job{ID: "b", Tenant: "t2"})
	push(t, q, Job{ID: "c", Tenant: "t1"})
	if !q.Remove("a") {
		t.Fatal("remove a failed")
	}
	if q.Remove("a") {
		t.Fatal("double remove succeeded")
	}
	if q.Len() != 2 {
		t.Fatalf("len after remove = %d", q.Len())
	}
	got := drain(q)
	for _, id := range got {
		if id == "a" {
			t.Fatal("removed job dispatched")
		}
	}
	if len(got) != 2 {
		t.Fatalf("drained %d, want 2", len(got))
	}
	// Tenant t1 fully drained must leave the ring consistent for reuse.
	push(t, q, Job{ID: "d", Tenant: "t1"})
	if j, _ := q.Pop(); j.ID != "d" {
		t.Fatalf("reactivated tenant pop: %s", j.ID)
	}
}

// TestPositions verifies the nominal dispatch-order ranks per policy.
func TestPositions(t *testing.T) {
	// FIFO: rank == submission order.
	q := mustNew(t, Config{Policy: PolicyFIFO})
	push(t, q, Job{ID: "a"})
	push(t, q, Job{ID: "b"})
	if q.Position("a") != 0 || q.Position("b") != 1 {
		t.Fatalf("fifo positions a=%d b=%d", q.Position("a"), q.Position("b"))
	}
	if q.Position("ghost") != -1 {
		t.Fatal("unknown job has a position")
	}
	q.Pop()
	if q.Position("b") != 0 {
		t.Fatalf("b not promoted after pop: %d", q.Position("b"))
	}

	// SJF: rank by cost.
	qs := mustNew(t, Config{Policy: PolicySJF})
	push(t, qs, Job{ID: "slow", Cost: 9})
	push(t, qs, Job{ID: "fast", Cost: 1})
	if qs.Position("fast") != 0 || qs.Position("slow") != 1 {
		t.Fatalf("sjf positions fast=%d slow=%d", qs.Position("fast"), qs.Position("slow"))
	}

	// Fair: virtual finish time — the weight-2 tenant's second job ranks
	// ahead of the weight-1 tenant's second job.
	qf := mustNew(t, Config{Policy: PolicyFair, Weights: map[string]int{"gold": 2}})
	push(t, qf, Job{ID: "g1", Tenant: "gold", Cost: 10})
	push(t, qf, Job{ID: "f1", Tenant: "free", Cost: 10})
	push(t, qf, Job{ID: "g2", Tenant: "gold", Cost: 10})
	push(t, qf, Job{ID: "f2", Tenant: "free", Cost: 10})
	if !(qf.Position("g2") < qf.Position("f2")) {
		t.Fatalf("fair positions: g2=%d f2=%d (weight-2 second job should rank earlier)",
			qf.Position("g2"), qf.Position("f2"))
	}
}

// TestParsePolicy pins the accepted vocabulary.
func TestParsePolicy(t *testing.T) {
	for _, ok := range []string{"", "fifo", "fair", "sjf"} {
		if _, err := ParsePolicy(ok); err != nil {
			t.Errorf("ParsePolicy(%q): %v", ok, err)
		}
	}
	if _, err := ParsePolicy("wfq"); err == nil {
		t.Error("ParsePolicy accepted an unknown name")
	}
	if _, err := New(Config{Policy: "wfq"}); err == nil {
		t.Error("New accepted an unknown policy")
	}
}

// TestDeterminism re-runs an identical mixed workload twice: dispatch
// orders must match exactly (the service's reproducibility rests on it).
func TestDeterminism(t *testing.T) {
	run := func() []string {
		q := mustNew(t, Config{Policy: PolicyFair, Weights: map[string]int{"a": 3, "b": 1}})
		for i := 0; i < 40; i++ {
			push(t, q, Job{
				ID:       fmt.Sprintf("%d", i),
				Tenant:   []string{"a", "b", "c"}[i%3],
				Cost:     float64(1 + i%7),
				Priority: i % 2,
			})
		}
		return drain(q)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic dispatch at %d: %s vs %s", i, a[i], b[i])
		}
	}
}
