// Package sched is the discrete-event trial scheduler every execution path
// shares: the hyperparameter tuner (package tune) places trials through it,
// the multi-tenancy experiments queue whole HPT jobs through it, and the
// old cluster.SimulateFIFO queueing simulator is now a thin wrapper over
// its FIFO policy.
//
// The engine runs on simtime's event queue. Tasks arrive at a simulated
// instant, wait until the active placement Policy admits them (their
// resource footprint must fit the Pool, and at most Slots tasks may run),
// execute for their known simulated duration, and complete — at which point
// the caller's completion hook fires *immediately*, in simulated completion
// order. That hook is what makes the surrounding search incremental: the
// tuner reports each trial to the searcher the moment it finishes instead
// of at a batch barrier.
//
// Running tasks may re-negotiate their footprint mid-flight (Resize events)
// — the scheduler-level model of the paper's §5.6 dynamic reconfiguration:
// when PipeTune settles on a new system configuration at an epoch boundary,
// the trial's allocation shrinks or grows at that simulated instant, and
// the freed (or newly claimed) capacity immediately affects which waiting
// tasks can start. A growth that no longer fits is denied deterministically
// and the task keeps its previous reservation. Denial is an allocation-
// state model only: a task's Duration is fixed at submit time (the trainer
// prices the trial assuming its reconfigurations take effect), so a denied
// growth does not slow the task down — it under-counts contention in the
// saturated regime, a deliberate trade for precomputed, deterministic
// durations. ResizesDenied in TaskStats makes the approximation visible.
//
// Everything is single-threaded and deterministic: identical task sets,
// policies and pools produce identical schedules, with same-instant events
// ordered completions-then-arrivals (see simtime.ScheduleAtPrio).
package sched

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"pipetune/internal/params"
	"pipetune/internal/simtime"
)

// ErrNeverFits is returned by Submit when a task's footprint exceeds every
// node of the pool — it could not start even on an idle cluster.
var ErrNeverFits = errors.New("sched: footprint can never fit the pool")

// Same-instant dispatch classes: resizes free/claim capacity first,
// completions release next, spot revocations reclaim nodes after both (a
// task completing at the same instant its node is revoked keeps its
// result), and arrivals observe the settled state last. The relative
// order of resize/completion/arrival is unchanged from the pre-revocation
// engine, so schedules without spot capacity are bit-identical.
const (
	prioResize     = -3
	prioCompletion = -2
	prioRevocation = -1
	prioArrival    = 0
)

// Resize is a mid-task footprint change at a fixed offset from task start.
type Resize struct {
	Offset float64          `json:"offset"` // seconds after the task starts
	Sys    params.SysConfig `json:"sys"`
}

// Task is one schedulable unit of simulated work. A zero Sys footprint
// makes the task slot-only: it consumes an admission slot but no modelled
// resources (the whole-job queueing simulations use this).
type Task struct {
	ID       int
	Arrival  float64
	Sys      params.SysConfig
	Duration float64
	Resizes  []Resize
}

// slotOnly reports whether the task claims no modelled resources.
func (t Task) slotOnly() bool { return t.Sys == (params.SysConfig{}) }

// TaskStats is one task's scheduling outcome. For a task interrupted by
// spot revocations, Start is the final (successful) attempt's admission
// instant and the revocation fields account for the interrupted attempts;
// every revocation field is zero — and absent from JSON — on clusters
// without spot capacity.
type TaskStats struct {
	ID             int     `json:"id"`
	Arrival        float64 `json:"arrival"`
	Start          float64 `json:"start"`
	End            float64 `json:"end"`
	Wait           float64 `json:"wait"`     // Start - Arrival
	Response       float64 `json:"response"` // End - Arrival
	Node           int     `json:"node"`     // final hosting node; -1 for slot-only
	ResizesGranted int     `json:"resizesGranted"`
	ResizesDenied  int     `json:"resizesDenied"`
	// Class names the final hosting node's class ("" on classless pools
	// and the legacy single-class clusters); Spot marks it revocable.
	Class string `json:"class,omitempty"`
	Spot  bool   `json:"spot,omitempty"`
	// Revocations counts spot interruptions the task survived;
	// SalvagedEpochs the epochs of work its checkpoints rescued across
	// them (0 = every retry was from scratch); WastedSeconds the simulated
	// node-time the interrupted attempts consumed.
	Revocations    int     `json:"revocations,omitempty"`
	SalvagedEpochs int     `json:"salvagedEpochs,omitempty"`
	WastedSeconds  float64 `json:"wastedSeconds,omitempty"`
	// CostUSD prices the task's node occupancy (all attempts) at the
	// hosting classes' hourly rates; 0 on unpriced pools.
	CostUSD float64 `json:"costUSD,omitempty"`
}

// ResumeSpec is an EvictHandler's answer: the shape of the replacement
// attempt after a revocation.
type ResumeSpec struct {
	// Duration is the replacement attempt's reference-speed runtime.
	Duration float64
	// Sys, when non-zero, is the replacement attempt's starting footprint
	// (the configuration the trial had settled on by the checkpoint);
	// zero keeps the task's current footprint.
	Sys params.SysConfig
	// Resizes replaces the task's resize schedule, re-based to the
	// replacement attempt's timeline.
	Resizes []Resize
	// SalvagedEpochs counts the epochs the checkpoint rescued: epochs
	// completed before the revocation that the replacement attempt will
	// not retrain. 0 means a from-scratch retry.
	SalvagedEpochs int
}

// EvictHandler is consulted when a spot revocation interrupts a running
// task: given the retry ordinal (2 for the first retry) and the
// reference-speed seconds the interrupted attempt had executed, it
// returns the replacement attempt's shape. A nil handler replays the task
// unchanged from scratch.
type EvictHandler func(attempt int, elapsed float64) ResumeSpec

// RevocationSource feeds the engine per-node spot revocation instants
// (ec2.SpotProcess in production). NextAfter must be deterministic and
// independent of query order; OutageSeconds is how long a revoked node
// stays down before its replacement joins.
type RevocationSource interface {
	NextAfter(node int, t float64) float64
	OutageSeconds() float64
}

// queued is a task waiting for admission, carrying its across-attempt
// revocation accounting.
type queued struct {
	task    Task
	onDone  func(Task, TaskStats)
	onEvict EvictHandler
	attempt int // 1 on first admission
	gen     int // bumped on eviction; stale events check it
	salv    int // cumulative salvaged epochs
	wasted  float64
	cost    float64 // accumulated cost of interrupted attempts
}

// timedResize is a not-yet-applied resize at an absolute simulated time.
type timedResize struct {
	at  float64
	sys params.SysConfig
}

// runningTask is an admitted task occupying resources until its end time.
type runningTask struct {
	task    Task
	q       *queued // origin entry: eviction state and completion hook
	gen     int     // q.gen at admission; stale events carry older values
	start   float64
	end     float64
	node    int              // -1 when slot-only
	speed   float64          // hosting class's duration divisor
	sys     params.SysConfig // current (possibly resized) footprint
	pending []timedResize    // scheduled resizes not yet applied, time order
	granted int
	denied  int
}

// Engine is the event-driven scheduler. It is not safe for concurrent use:
// Submit may be called before Run or from within completion hooks, mirroring
// simtime's single-threaded model.
type Engine struct {
	sim     *simtime.Engine
	pool    *Pool // nil = slot-only scheduling
	policy  Policy
	slots   int // max concurrent tasks; 0 = bounded by the pool alone
	queue   []*queued
	running map[int]*runningTask
	seq     int // running-task insertion order for deterministic iteration
	order   map[int]int
	done    []TaskStats
	halted  bool
	err     error // first internal failure; surfaced by Run

	rev         RevocationSource
	pendingRev  map[int]float64 // node -> armed revocation instant
	revocations int             // fired revocations that evicted work
}

// New creates an engine over a pool (nil for slot-only queueing) with a
// placement policy (nil defaults to FIFO) and an admission slot cap
// (0 = unbounded, the pool's capacity is then the only brake).
func New(pool *Pool, policy Policy, slots int) *Engine {
	if policy == nil {
		policy = FIFO()
	}
	return &Engine{
		sim:     simtime.NewEngine(),
		pool:    pool,
		policy:  policy,
		slots:   slots,
		running: make(map[int]*runningTask),
		order:   make(map[int]int),
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() float64 { return e.sim.Now() }

// Policy returns the active placement policy.
func (e *Engine) Policy() Policy { return e.policy }

// SetRevocations arms spot revocations: src yields each node's revocation
// instants, consumed lazily — a node's next event is scheduled only while
// it hosts work, so a drained simulation never spins on an infinite
// revocation stream. Call before Run.
func (e *Engine) SetRevocations(src RevocationSource) {
	e.rev = src
	if src != nil && e.pendingRev == nil {
		e.pendingRev = make(map[int]float64)
	}
}

// HasRevocations reports whether a revocation source is armed.
func (e *Engine) HasRevocations() bool { return e.rev != nil }

// Revocations counts the fired revocations that evicted at least one
// running task.
func (e *Engine) Revocations() int { return e.revocations }

// Halt stops the simulation before the next event; Run returns
// simtime.ErrStopped. Callers use it to abort from a completion hook.
func (e *Engine) Halt() {
	e.halted = true
	e.sim.Stop()
}

// Submit registers a task. Its arrival event fires at max(Arrival, Now);
// onDone (optional) fires at the task's simulated completion, before any
// same-instant arrivals are processed. Tasks whose footprint cannot fit an
// idle pool are rejected with ErrNeverFits — the caller finds out at submit
// time, not after the queue deadlocks.
func (e *Engine) Submit(t Task, onDone func(Task, TaskStats)) error {
	return e.SubmitRevocable(t, nil, onDone)
}

// SubmitRevocable is Submit with an eviction handler: when a spot
// revocation interrupts the task, onEvict shapes the replacement attempt
// (checkpoint resume); nil replays the task from scratch. The handler is
// never called on clusters without spot capacity.
func (e *Engine) SubmitRevocable(t Task, onEvict EvictHandler, onDone func(Task, TaskStats)) error {
	if t.Duration < 0 || t.Arrival < 0 {
		return fmt.Errorf("sched: task %d has negative time", t.ID)
	}
	if !t.slotOnly() {
		if e.pool == nil {
			return fmt.Errorf("sched: task %d has footprint %v but the engine is slot-only", t.ID, t.Sys)
		}
		if !e.pool.canEverFit(t.Sys) {
			return fmt.Errorf("sched: task %d footprint %v: %w", t.ID, t.Sys, ErrNeverFits)
		}
		for _, rz := range t.Resizes {
			if !e.pool.canEverFit(rz.Sys) {
				return fmt.Errorf("sched: task %d resize to %v: %w", t.ID, rz.Sys, ErrNeverFits)
			}
		}
	}
	q := &queued{task: t, onDone: onDone, onEvict: onEvict, attempt: 1}
	e.sim.ScheduleAtPrio(t.Arrival, prioArrival, func() {
		e.queue = append(e.queue, q)
		e.dispatch()
	})
	return nil
}

// Run dispatches events until the queue drains. It returns the engine's
// internal error if one occurred (e.g. a custom policy picked a
// non-fitting task), simtime.ErrStopped if Halt was called by the caller,
// or an error if tasks remain waiting with nothing running (a policy
// admitted nothing — cannot happen with the built-in policies, but a
// custom one could livelock).
func (e *Engine) Run() error {
	simErr := e.sim.RunAll()
	if e.err != nil {
		return e.err
	}
	if simErr != nil {
		return simErr
	}
	if len(e.queue) > 0 {
		return fmt.Errorf("sched: %d tasks never admitted (policy %s starved the queue)",
			len(e.queue), e.policy.Name())
	}
	return nil
}

// Stats returns the completed tasks' statistics in completion order.
func (e *Engine) Stats() []TaskStats { return e.done }

// fitsNow reports whether the queued task at index i could start.
func (e *Engine) fitsNow(i int) bool {
	t := e.queue[i].task
	if t.slotOnly() || e.pool == nil {
		return true // slot availability is checked before the policy runs
	}
	return e.pool.probe(t.Sys)
}

// runningByEnd returns the running set ordered by (end, admission order) —
// the deterministic release sequence used for shadow-time computation.
func (e *Engine) runningByEnd() []*runningTask {
	out := make([]*runningTask, 0, len(e.running))
	for _, rt := range e.running {
		out = append(out, rt)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].end != out[j].end {
			return out[i].end < out[j].end
		}
		return e.order[out[i].task.ID] < e.order[out[j].task.ID]
	})
	return out
}

// earliestStart computes when queue[i] could start assuming no further
// admissions: the running set's completions AND its already-scheduled
// resize events are replayed chronologically on a scratch pool, mirroring
// the engine's own resize semantics. Modelling the resizes matters for
// backfill's no-delay guarantee — a pending shrink can let the head start
// long before any task completes, and an overestimated shadow would admit
// backfill candidates that then delay the head.
func (e *Engine) earliestStart(i int) float64 {
	t := e.queue[i].task
	slotsBusy := len(e.running)
	slotFree := func() bool { return e.slots <= 0 || slotsBusy < e.slots }
	var scratch *Pool
	if e.pool != nil {
		scratch = e.pool.clone()
	}
	fits := func() bool {
		if !slotFree() {
			return false
		}
		if t.slotOnly() || scratch == nil {
			return true
		}
		return scratch.probe(t.Sys)
	}
	if fits() {
		return e.Now()
	}

	// Replay events in the engine's dispatch order: (time, resizes before
	// completions, admission order).
	type replayEvent struct {
		at       float64
		prio     int // 0 = resize, 1 = completion
		seq      int
		rt       *runningTask
		resizeTo params.SysConfig
	}
	type replayState struct {
		node int
		sys  params.SysConfig
		done bool
	}
	var events []replayEvent
	state := make(map[int]*replayState, len(e.running))
	for _, rt := range e.runningByEnd() {
		state[rt.task.ID] = &replayState{node: rt.node, sys: rt.sys}
		for _, rz := range rt.pending {
			events = append(events, replayEvent{at: rz.at, prio: 0, rt: rt, resizeTo: rz.sys})
		}
		events = append(events, replayEvent{at: rt.end, prio: 1, rt: rt})
	}
	for i := range events {
		events[i].seq = i
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].at != events[b].at {
			return events[a].at < events[b].at
		}
		if events[a].prio != events[b].prio {
			return events[a].prio < events[b].prio
		}
		return events[a].seq < events[b].seq
	})
	for _, ev := range events {
		st := state[ev.rt.task.ID]
		if st.done {
			continue
		}
		switch ev.prio {
		case 0: // resize, same in-place/elsewhere/keep logic as resize()
			if scratch == nil || st.node < 0 || st.sys == ev.resizeTo {
				break
			}
			scratch.free(st.node, st.sys)
			if scratch.placeOn(st.node, ev.resizeTo) {
				st.sys = ev.resizeTo
			} else if n := scratch.place(ev.resizeTo); n >= 0 {
				st.node = n
				st.sys = ev.resizeTo
			} else {
				scratch.placeOn(st.node, st.sys) // denied: keep reservation
			}
		case 1: // completion
			st.done = true
			slotsBusy--
			if scratch != nil && st.node >= 0 {
				scratch.free(st.node, st.sys)
			}
		}
		if fits() {
			return ev.at
		}
	}
	return math.Inf(1)
}

// pickContext assembles the policy's read-only view, including the
// cost-aware class axis on pools with classes.
func (e *Engine) pickContext() *PickContext {
	ctx := &PickContext{
		Now:           e.Now(),
		Queue:         make([]Task, len(e.queue)),
		FitsNow:       e.fitsNow,
		EarliestStart: e.earliestStart,
	}
	for i, q := range e.queue {
		ctx.Queue[i] = q.task
	}
	p := e.pool
	if p == nil || p.NumClasses() == 0 {
		return ctx
	}
	ctx.Classes = make([]ClassInfo, p.NumClasses())
	for c := range ctx.Classes {
		ci := ClassInfo{ClassCap: p.classes[c]}
		for n := range p.caps {
			if p.nodeClass[n] != c {
				continue
			}
			ci.Nodes++
			if p.down[n] {
				continue
			}
			ci.UpNodes++
			ci.FreeCores += p.caps[n].Cores - p.usedCores[n]
			ci.FreeMemoryGB += p.caps[n].MemoryGB - p.usedMem[n]
		}
		ctx.Classes[c] = ci
	}
	ctx.ClassFits = func(i, c int) bool { return p.fitsClass(c, e.queue[i].task.Sys) }
	ctx.ClassDuration = func(i, c int) float64 { return e.queue[i].task.Duration / p.classes[c].SpeedFactor }
	ctx.ClassCost = func(i, c int) float64 {
		return e.queue[i].task.Duration / p.classes[c].SpeedFactor / 3600 * p.classes[c].HourlyUSD
	}
	return ctx
}

// dispatch starts queued tasks while the policy keeps admitting them.
func (e *Engine) dispatch() {
	for !e.halted && len(e.queue) > 0 {
		if e.slots > 0 && len(e.running) >= e.slots {
			return
		}
		ctx := e.pickContext()
		idx := e.policy.Pick(ctx)
		if idx < 0 || idx >= len(e.queue) {
			return
		}
		class := -1
		if ch, ok := e.policy.(ClassChooser); ok && len(ctx.Classes) > 0 {
			class = ch.ChooseClass(ctx, idx)
		}
		e.start(idx, class)
	}
}

// start admits queue[idx]: reserves its footprint (on the chosen class
// when the policy picked one, first-fit across all nodes otherwise),
// schedules its resize and completion events, and — on a spot node — arms
// the node's next revocation.
func (e *Engine) start(idx, class int) {
	q := e.queue[idx]
	e.queue = append(e.queue[:idx], e.queue[idx+1:]...)
	t := q.task
	node := -1
	if !t.slotOnly() && e.pool != nil {
		if class >= 0 {
			node = e.pool.placeClass(class, t.Sys)
		} else {
			node = e.pool.place(t.Sys)
		}
		if node < 0 {
			// The policy picked a task that does not fit — a policy bug.
			// Fail loudly rather than corrupting occupancy.
			e.fail(fmt.Errorf("sched: policy %s picked task %d whose footprint %v does not currently fit",
				e.policy.Name(), t.ID, t.Sys))
			return
		}
	}
	now := e.Now()
	speed := 1.0
	if node >= 0 {
		speed = e.pool.speedOf(node)
	}
	rt := &runningTask{
		task: t, q: q, gen: q.gen,
		start: now, end: now + t.Duration/speed,
		node: node, speed: speed, sys: t.Sys,
	}
	e.running[t.ID] = rt
	e.order[t.ID] = e.seq
	e.seq++

	gen := q.gen
	for _, rz := range t.Resizes {
		rz := rz
		if rz.Offset <= 0 || rz.Offset >= t.Duration {
			continue // outside the task's lifetime: nothing to re-negotiate
		}
		at := now + rz.Offset/speed
		rt.pending = append(rt.pending, timedResize{at: at, sys: rz.Sys})
		e.sim.ScheduleAtPrio(at, prioResize, func() { e.resize(t.ID, gen, rz.Sys) })
	}
	// Resize events fire in time order with submission order breaking ties
	// (simtime seq); keep the pending list in the same order so replay and
	// reality agree.
	sort.SliceStable(rt.pending, func(i, j int) bool { return rt.pending[i].at < rt.pending[j].at })
	e.sim.ScheduleAtPrio(rt.end, prioCompletion, func() { e.complete(t.ID, gen) })
	if node >= 0 && e.rev != nil && e.pool.isSpot(node) {
		e.armRevocation(node)
	}
}

// armRevocation schedules node's next revocation instant if none is
// pending. Events are armed only while a spot node hosts work; a fired
// event re-arms lazily via the next start() on that node, so the event
// queue always drains.
func (e *Engine) armRevocation(n int) {
	if _, ok := e.pendingRev[n]; ok {
		return
	}
	at := e.rev.NextAfter(n, e.Now())
	if math.IsInf(at, 1) {
		return
	}
	e.pendingRev[n] = at
	e.sim.ScheduleAtPrio(at, prioRevocation, func() { e.revoke(n, at) })
}

// revoke fires node n's spot revocation: every task running on it is
// evicted and requeued at the queue head (admission order preserved,
// attempt bumped), the node goes down for the source's outage window, and
// its replacement re-joins with the same shape.
func (e *Engine) revoke(n int, at float64) {
	delete(e.pendingRev, n)
	if e.halted {
		return
	}
	var victims []*runningTask
	for _, rt := range e.running {
		if rt.node == n {
			victims = append(victims, rt)
		}
	}
	sort.Slice(victims, func(i, j int) bool {
		return e.order[victims[i].task.ID] < e.order[victims[j].task.ID]
	})
	if len(victims) > 0 {
		e.revocations++
	}
	requeued := make([]*queued, 0, len(victims))
	for _, rt := range victims {
		requeued = append(requeued, e.evict(rt, at))
	}
	e.queue = append(requeued, e.queue...)
	e.pool.setDown(n, true)
	e.sim.ScheduleAtPrio(at+e.rev.OutageSeconds(), prioArrival, func() {
		e.pool.setDown(n, false)
		if !e.halted {
			e.dispatch()
		}
	})
	if !e.halted {
		e.dispatch() // evicted tasks may restart elsewhere immediately
	}
}

// evict interrupts a running task for a revocation at instant `at`: frees
// its reservation, invalidates its scheduled completion/resize events via
// the generation counter, consults its eviction handler for the
// replacement attempt's shape (checkpoint resume), and returns its queue
// entry for requeueing.
func (e *Engine) evict(rt *runningTask, at float64) *queued {
	q := rt.q
	delete(e.running, rt.task.ID)
	delete(e.order, rt.task.ID)
	if rt.node >= 0 {
		e.pool.free(rt.node, rt.sys)
	}
	elapsed := at - rt.start // node-local seconds the attempt consumed
	q.gen++
	q.attempt++
	q.wasted += elapsed
	if rt.node >= 0 {
		q.cost += elapsed / 3600 * e.pool.rateOf(rt.node)
	}
	if q.onEvict != nil {
		rs := q.onEvict(q.attempt, elapsed*rt.speed)
		q.task.Duration = rs.Duration
		q.task.Resizes = rs.Resizes
		if rs.Sys != (params.SysConfig{}) {
			q.task.Sys = rs.Sys
		}
		q.salv += rs.SalvagedEpochs
	}
	return q
}

// fail records the first internal error and halts the simulation.
func (e *Engine) fail(err error) {
	if e.err == nil {
		e.err = err
	}
	e.Halt()
}

// resize re-negotiates a running task's reservation: in-place on its node
// when possible, otherwise on any other node, otherwise denied (the task
// keeps its previous footprint). Shrinking always succeeds in place.
func (e *Engine) resize(id, gen int, to params.SysConfig) {
	rt, ok := e.running[id]
	if !ok || rt.gen != gen || e.halted {
		return // stale event from an attempt a revocation interrupted
	}
	if len(rt.pending) > 0 {
		rt.pending = rt.pending[1:] // this event is no longer pending
	}
	if rt.node < 0 || rt.sys == to {
		return
	}
	e.pool.free(rt.node, rt.sys)
	if e.pool.placeOn(rt.node, to) {
		rt.sys = to
		rt.granted++
	} else if n := e.pool.place(to); n >= 0 {
		rt.node = n
		rt.sys = to
		rt.granted++
	} else {
		// Denied: restore the old reservation (guaranteed to fit — it was
		// just released from that node).
		if !e.pool.placeOn(rt.node, rt.sys) {
			e.fail(fmt.Errorf("sched: task %d lost its reservation %v on node %d during a denied resize",
				id, rt.sys, rt.node)) // unreachable unless the pool is corrupted
			return
		}
		rt.denied++
	}
	// A shrink may have freed capacity a waiting task can use.
	e.dispatch()
}

// complete releases the task's resources, records its stats, fires the
// caller's hook and re-runs admission.
func (e *Engine) complete(id, gen int) {
	rt, ok := e.running[id]
	if !ok || rt.gen != gen || e.halted {
		return // stale event from an attempt a revocation interrupted
	}
	delete(e.running, id)
	delete(e.order, id)
	if rt.node >= 0 {
		e.pool.free(rt.node, rt.sys)
	}
	q := rt.q
	cost := q.cost
	if rt.node >= 0 {
		cost += (rt.end - rt.start) / 3600 * e.pool.rateOf(rt.node)
	}
	st := TaskStats{
		ID:             rt.task.ID,
		Arrival:        rt.task.Arrival,
		Start:          rt.start,
		End:            rt.end,
		Wait:           rt.start - rt.task.Arrival,
		Response:       rt.end - rt.task.Arrival,
		Node:           rt.node,
		ResizesGranted: rt.granted,
		ResizesDenied:  rt.denied,
		Revocations:    q.attempt - 1,
		SalvagedEpochs: q.salv,
		WastedSeconds:  q.wasted,
		CostUSD:        cost,
	}
	if rt.node >= 0 && e.pool != nil {
		st.Class = e.pool.classNameOf(rt.node)
		st.Spot = e.pool.isSpot(rt.node)
	}
	e.done = append(e.done, st)
	if q.onDone != nil {
		q.onDone(rt.task, st)
	}
	e.dispatch()
}

// Simulate runs a fixed set of slot-only tasks through the engine under a
// policy (nil = FIFO) with `slots` parallel servers, returning per-task
// statistics in input order. This serves the multi-tenancy queueing
// simulations that cluster.SimulateFIFO used to implement privately.
func Simulate(tasks []Task, slots int, policy Policy) ([]TaskStats, error) {
	if slots < 1 {
		return nil, fmt.Errorf("sched: %d slots invalid", slots)
	}
	eng := New(nil, policy, slots)
	out := make([]TaskStats, len(tasks))
	for i, t := range tasks {
		i := i
		if err := eng.Submit(t, func(_ Task, st TaskStats) { out[i] = st }); err != nil {
			return nil, err
		}
	}
	if err := eng.Run(); err != nil {
		return nil, err
	}
	return out, nil
}
