// Package sched is the discrete-event trial scheduler every execution path
// shares: the hyperparameter tuner (package tune) places trials through it,
// the multi-tenancy experiments queue whole HPT jobs through it, and the
// old cluster.SimulateFIFO queueing simulator is now a thin wrapper over
// its FIFO policy.
//
// The engine runs on simtime's event queue. Tasks arrive at a simulated
// instant, wait until the active placement Policy admits them (their
// resource footprint must fit the Pool, and at most Slots tasks may run),
// execute for their known simulated duration, and complete — at which point
// the caller's completion hook fires *immediately*, in simulated completion
// order. That hook is what makes the surrounding search incremental: the
// tuner reports each trial to the searcher the moment it finishes instead
// of at a batch barrier.
//
// Running tasks may re-negotiate their footprint mid-flight (Resize events)
// — the scheduler-level model of the paper's §5.6 dynamic reconfiguration:
// when PipeTune settles on a new system configuration at an epoch boundary,
// the trial's allocation shrinks or grows at that simulated instant, and
// the freed (or newly claimed) capacity immediately affects which waiting
// tasks can start. A growth that no longer fits is denied deterministically
// and the task keeps its previous reservation. Denial is an allocation-
// state model only: a task's Duration is fixed at submit time (the trainer
// prices the trial assuming its reconfigurations take effect), so a denied
// growth does not slow the task down — it under-counts contention in the
// saturated regime, a deliberate trade for precomputed, deterministic
// durations. ResizesDenied in TaskStats makes the approximation visible.
//
// Everything is single-threaded and deterministic: identical task sets,
// policies and pools produce identical schedules, with same-instant events
// ordered completions-then-arrivals (see simtime.ScheduleAtPrio).
package sched

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"pipetune/internal/params"
	"pipetune/internal/simtime"
)

// ErrNeverFits is returned by Submit when a task's footprint exceeds every
// node of the pool — it could not start even on an idle cluster.
var ErrNeverFits = errors.New("sched: footprint can never fit the pool")

// Same-instant dispatch classes: resizes free/claim capacity first,
// completions release next, arrivals observe the settled state last.
const (
	prioResize     = -2
	prioCompletion = -1
	prioArrival    = 0
)

// Resize is a mid-task footprint change at a fixed offset from task start.
type Resize struct {
	Offset float64          `json:"offset"` // seconds after the task starts
	Sys    params.SysConfig `json:"sys"`
}

// Task is one schedulable unit of simulated work. A zero Sys footprint
// makes the task slot-only: it consumes an admission slot but no modelled
// resources (the whole-job queueing simulations use this).
type Task struct {
	ID       int
	Arrival  float64
	Sys      params.SysConfig
	Duration float64
	Resizes  []Resize
}

// slotOnly reports whether the task claims no modelled resources.
func (t Task) slotOnly() bool { return t.Sys == (params.SysConfig{}) }

// TaskStats is one task's scheduling outcome.
type TaskStats struct {
	ID             int     `json:"id"`
	Arrival        float64 `json:"arrival"`
	Start          float64 `json:"start"`
	End            float64 `json:"end"`
	Wait           float64 `json:"wait"`     // Start - Arrival
	Response       float64 `json:"response"` // End - Arrival
	Node           int     `json:"node"`     // final hosting node; -1 for slot-only
	ResizesGranted int     `json:"resizesGranted"`
	ResizesDenied  int     `json:"resizesDenied"`
}

// queued is a task waiting for admission.
type queued struct {
	task   Task
	onDone func(Task, TaskStats)
}

// timedResize is a not-yet-applied resize at an absolute simulated time.
type timedResize struct {
	at  float64
	sys params.SysConfig
}

// runningTask is an admitted task occupying resources until its end time.
type runningTask struct {
	task    Task
	start   float64
	end     float64
	node    int              // -1 when slot-only
	sys     params.SysConfig // current (possibly resized) footprint
	pending []timedResize    // scheduled resizes not yet applied, time order
	granted int
	denied  int
}

// Engine is the event-driven scheduler. It is not safe for concurrent use:
// Submit may be called before Run or from within completion hooks, mirroring
// simtime's single-threaded model.
type Engine struct {
	sim     *simtime.Engine
	pool    *Pool // nil = slot-only scheduling
	policy  Policy
	slots   int // max concurrent tasks; 0 = bounded by the pool alone
	queue   []*queued
	running map[int]*runningTask
	seq     int // running-task insertion order for deterministic iteration
	order   map[int]int
	done    []TaskStats
	halted  bool
	err     error // first internal failure; surfaced by Run
}

// New creates an engine over a pool (nil for slot-only queueing) with a
// placement policy (nil defaults to FIFO) and an admission slot cap
// (0 = unbounded, the pool's capacity is then the only brake).
func New(pool *Pool, policy Policy, slots int) *Engine {
	if policy == nil {
		policy = FIFO()
	}
	return &Engine{
		sim:     simtime.NewEngine(),
		pool:    pool,
		policy:  policy,
		slots:   slots,
		running: make(map[int]*runningTask),
		order:   make(map[int]int),
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() float64 { return e.sim.Now() }

// Policy returns the active placement policy.
func (e *Engine) Policy() Policy { return e.policy }

// Halt stops the simulation before the next event; Run returns
// simtime.ErrStopped. Callers use it to abort from a completion hook.
func (e *Engine) Halt() {
	e.halted = true
	e.sim.Stop()
}

// Submit registers a task. Its arrival event fires at max(Arrival, Now);
// onDone (optional) fires at the task's simulated completion, before any
// same-instant arrivals are processed. Tasks whose footprint cannot fit an
// idle pool are rejected with ErrNeverFits — the caller finds out at submit
// time, not after the queue deadlocks.
func (e *Engine) Submit(t Task, onDone func(Task, TaskStats)) error {
	if t.Duration < 0 || t.Arrival < 0 {
		return fmt.Errorf("sched: task %d has negative time", t.ID)
	}
	if !t.slotOnly() {
		if e.pool == nil {
			return fmt.Errorf("sched: task %d has footprint %v but the engine is slot-only", t.ID, t.Sys)
		}
		if !e.pool.canEverFit(t.Sys) {
			return fmt.Errorf("sched: task %d footprint %v: %w", t.ID, t.Sys, ErrNeverFits)
		}
		for _, rz := range t.Resizes {
			if !e.pool.canEverFit(rz.Sys) {
				return fmt.Errorf("sched: task %d resize to %v: %w", t.ID, rz.Sys, ErrNeverFits)
			}
		}
	}
	q := &queued{task: t, onDone: onDone}
	e.sim.ScheduleAtPrio(t.Arrival, prioArrival, func() {
		e.queue = append(e.queue, q)
		e.dispatch()
	})
	return nil
}

// Run dispatches events until the queue drains. It returns the engine's
// internal error if one occurred (e.g. a custom policy picked a
// non-fitting task), simtime.ErrStopped if Halt was called by the caller,
// or an error if tasks remain waiting with nothing running (a policy
// admitted nothing — cannot happen with the built-in policies, but a
// custom one could livelock).
func (e *Engine) Run() error {
	simErr := e.sim.RunAll()
	if e.err != nil {
		return e.err
	}
	if simErr != nil {
		return simErr
	}
	if len(e.queue) > 0 {
		return fmt.Errorf("sched: %d tasks never admitted (policy %s starved the queue)",
			len(e.queue), e.policy.Name())
	}
	return nil
}

// Stats returns the completed tasks' statistics in completion order.
func (e *Engine) Stats() []TaskStats { return e.done }

// fitsNow reports whether the queued task at index i could start.
func (e *Engine) fitsNow(i int) bool {
	t := e.queue[i].task
	if t.slotOnly() || e.pool == nil {
		return true // slot availability is checked before the policy runs
	}
	return e.pool.probe(t.Sys)
}

// runningByEnd returns the running set ordered by (end, admission order) —
// the deterministic release sequence used for shadow-time computation.
func (e *Engine) runningByEnd() []*runningTask {
	out := make([]*runningTask, 0, len(e.running))
	for _, rt := range e.running {
		out = append(out, rt)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].end != out[j].end {
			return out[i].end < out[j].end
		}
		return e.order[out[i].task.ID] < e.order[out[j].task.ID]
	})
	return out
}

// earliestStart computes when queue[i] could start assuming no further
// admissions: the running set's completions AND its already-scheduled
// resize events are replayed chronologically on a scratch pool, mirroring
// the engine's own resize semantics. Modelling the resizes matters for
// backfill's no-delay guarantee — a pending shrink can let the head start
// long before any task completes, and an overestimated shadow would admit
// backfill candidates that then delay the head.
func (e *Engine) earliestStart(i int) float64 {
	t := e.queue[i].task
	slotsBusy := len(e.running)
	slotFree := func() bool { return e.slots <= 0 || slotsBusy < e.slots }
	var scratch *Pool
	if e.pool != nil {
		scratch = e.pool.clone()
	}
	fits := func() bool {
		if !slotFree() {
			return false
		}
		if t.slotOnly() || scratch == nil {
			return true
		}
		return scratch.probe(t.Sys)
	}
	if fits() {
		return e.Now()
	}

	// Replay events in the engine's dispatch order: (time, resizes before
	// completions, admission order).
	type replayEvent struct {
		at       float64
		prio     int // 0 = resize, 1 = completion
		seq      int
		rt       *runningTask
		resizeTo params.SysConfig
	}
	type replayState struct {
		node int
		sys  params.SysConfig
		done bool
	}
	var events []replayEvent
	state := make(map[int]*replayState, len(e.running))
	for _, rt := range e.runningByEnd() {
		state[rt.task.ID] = &replayState{node: rt.node, sys: rt.sys}
		for _, rz := range rt.pending {
			events = append(events, replayEvent{at: rz.at, prio: 0, rt: rt, resizeTo: rz.sys})
		}
		events = append(events, replayEvent{at: rt.end, prio: 1, rt: rt})
	}
	for i := range events {
		events[i].seq = i
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].at != events[b].at {
			return events[a].at < events[b].at
		}
		if events[a].prio != events[b].prio {
			return events[a].prio < events[b].prio
		}
		return events[a].seq < events[b].seq
	})
	for _, ev := range events {
		st := state[ev.rt.task.ID]
		if st.done {
			continue
		}
		switch ev.prio {
		case 0: // resize, same in-place/elsewhere/keep logic as resize()
			if scratch == nil || st.node < 0 || st.sys == ev.resizeTo {
				break
			}
			scratch.free(st.node, st.sys)
			if scratch.placeOn(st.node, ev.resizeTo) {
				st.sys = ev.resizeTo
			} else if n := scratch.place(ev.resizeTo); n >= 0 {
				st.node = n
				st.sys = ev.resizeTo
			} else {
				scratch.placeOn(st.node, st.sys) // denied: keep reservation
			}
		case 1: // completion
			st.done = true
			slotsBusy--
			if scratch != nil && st.node >= 0 {
				scratch.free(st.node, st.sys)
			}
		}
		if fits() {
			return ev.at
		}
	}
	return math.Inf(1)
}

// dispatch starts queued tasks while the policy keeps admitting them.
func (e *Engine) dispatch() {
	for !e.halted && len(e.queue) > 0 {
		if e.slots > 0 && len(e.running) >= e.slots {
			return
		}
		ctx := &PickContext{
			Now:           e.Now(),
			Queue:         make([]Task, len(e.queue)),
			FitsNow:       e.fitsNow,
			EarliestStart: e.earliestStart,
		}
		for i, q := range e.queue {
			ctx.Queue[i] = q.task
		}
		idx := e.policy.Pick(ctx)
		if idx < 0 || idx >= len(e.queue) {
			return
		}
		e.start(idx)
	}
}

// start admits queue[idx]: reserves its footprint, schedules its resize and
// completion events.
func (e *Engine) start(idx int) {
	q := e.queue[idx]
	e.queue = append(e.queue[:idx], e.queue[idx+1:]...)
	t := q.task
	node := -1
	if !t.slotOnly() && e.pool != nil {
		node = e.pool.place(t.Sys)
		if node < 0 {
			// The policy picked a task that does not fit — a policy bug.
			// Fail loudly rather than corrupting occupancy.
			e.fail(fmt.Errorf("sched: policy %s picked task %d whose footprint %v does not currently fit",
				e.policy.Name(), t.ID, t.Sys))
			return
		}
	}
	now := e.Now()
	rt := &runningTask{task: t, start: now, end: now + t.Duration, node: node, sys: t.Sys}
	e.running[t.ID] = rt
	e.order[t.ID] = e.seq
	e.seq++

	for _, rz := range t.Resizes {
		rz := rz
		if rz.Offset <= 0 || rz.Offset >= t.Duration {
			continue // outside the task's lifetime: nothing to re-negotiate
		}
		rt.pending = append(rt.pending, timedResize{at: now + rz.Offset, sys: rz.Sys})
		e.sim.ScheduleAtPrio(now+rz.Offset, prioResize, func() { e.resize(t.ID, rz.Sys) })
	}
	// Resize events fire in time order with submission order breaking ties
	// (simtime seq); keep the pending list in the same order so replay and
	// reality agree.
	sort.SliceStable(rt.pending, func(i, j int) bool { return rt.pending[i].at < rt.pending[j].at })
	e.sim.ScheduleAtPrio(rt.end, prioCompletion, func() { e.complete(t.ID, q.onDone) })
}

// fail records the first internal error and halts the simulation.
func (e *Engine) fail(err error) {
	if e.err == nil {
		e.err = err
	}
	e.Halt()
}

// resize re-negotiates a running task's reservation: in-place on its node
// when possible, otherwise on any other node, otherwise denied (the task
// keeps its previous footprint). Shrinking always succeeds in place.
func (e *Engine) resize(id int, to params.SysConfig) {
	rt, ok := e.running[id]
	if !ok || e.halted {
		return
	}
	if len(rt.pending) > 0 {
		rt.pending = rt.pending[1:] // this event is no longer pending
	}
	if rt.node < 0 || rt.sys == to {
		return
	}
	e.pool.free(rt.node, rt.sys)
	if e.pool.placeOn(rt.node, to) {
		rt.sys = to
		rt.granted++
	} else if n := e.pool.place(to); n >= 0 {
		rt.node = n
		rt.sys = to
		rt.granted++
	} else {
		// Denied: restore the old reservation (guaranteed to fit — it was
		// just released from that node).
		if !e.pool.placeOn(rt.node, rt.sys) {
			e.fail(fmt.Errorf("sched: task %d lost its reservation %v on node %d during a denied resize",
				id, rt.sys, rt.node)) // unreachable unless the pool is corrupted
			return
		}
		rt.denied++
	}
	// A shrink may have freed capacity a waiting task can use.
	e.dispatch()
}

// complete releases the task's resources, records its stats, fires the
// caller's hook and re-runs admission.
func (e *Engine) complete(id int, onDone func(Task, TaskStats)) {
	rt, ok := e.running[id]
	if !ok || e.halted {
		return
	}
	delete(e.running, id)
	delete(e.order, id)
	if rt.node >= 0 {
		e.pool.free(rt.node, rt.sys)
	}
	st := TaskStats{
		ID:             rt.task.ID,
		Arrival:        rt.task.Arrival,
		Start:          rt.start,
		End:            rt.end,
		Wait:           rt.start - rt.task.Arrival,
		Response:       rt.end - rt.task.Arrival,
		Node:           rt.node,
		ResizesGranted: rt.granted,
		ResizesDenied:  rt.denied,
	}
	e.done = append(e.done, st)
	if onDone != nil {
		onDone(rt.task, st)
	}
	e.dispatch()
}

// Simulate runs a fixed set of slot-only tasks through the engine under a
// policy (nil = FIFO) with `slots` parallel servers, returning per-task
// statistics in input order. This serves the multi-tenancy queueing
// simulations that cluster.SimulateFIFO used to implement privately.
func Simulate(tasks []Task, slots int, policy Policy) ([]TaskStats, error) {
	if slots < 1 {
		return nil, fmt.Errorf("sched: %d slots invalid", slots)
	}
	eng := New(nil, policy, slots)
	out := make([]TaskStats, len(tasks))
	for i, t := range tasks {
		i := i
		if err := eng.Submit(t, func(_ Task, st TaskStats) { out[i] = st }); err != nil {
			return nil, err
		}
	}
	if err := eng.Run(); err != nil {
		return nil, err
	}
	return out, nil
}
