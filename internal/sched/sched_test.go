package sched

import (
	"errors"
	"math"
	"strings"
	"testing"

	"pipetune/internal/params"
	"pipetune/internal/xrand"
)

func testPool(t *testing.T, nodes, cores, mem int) *Pool {
	t.Helper()
	caps := make([]NodeCap, nodes)
	for i := range caps {
		caps[i] = NodeCap{Cores: cores, MemoryGB: mem}
	}
	p, err := NewPool(caps)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// run drives a task set to completion and returns stats keyed by task ID.
func run(t *testing.T, eng *Engine, tasks []Task) map[int]TaskStats {
	t.Helper()
	for _, task := range tasks {
		if err := eng.Submit(task, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	out := make(map[int]TaskStats, len(eng.Stats()))
	for _, st := range eng.Stats() {
		out[st.ID] = st
	}
	return out
}

func sys(cores, mem int) params.SysConfig { return params.SysConfig{Cores: cores, MemoryGB: mem} }

func TestFIFOFullyParallelWhenFits(t *testing.T) {
	eng := New(testPool(t, 2, 16, 32), FIFO(), 8)
	var tasks []Task
	for i := 0; i < 4; i++ {
		tasks = append(tasks, Task{ID: i, Sys: sys(8, 8), Duration: 100})
	}
	stats := run(t, eng, tasks)
	for id, st := range stats {
		if st.Start != 0 || st.End != 100 {
			t.Fatalf("task %d not fully parallel: start %v end %v", id, st.Start, st.End)
		}
	}
	if eng.Now() != 100 {
		t.Fatalf("makespan %v, want 100", eng.Now())
	}
}

func TestFIFOOversizedTasksSerialise(t *testing.T) {
	eng := New(testPool(t, 1, 16, 32), FIFO(), 8)
	stats := run(t, eng, []Task{
		{ID: 0, Sys: sys(16, 16), Duration: 100},
		{ID: 1, Sys: sys(16, 16), Duration: 100},
	})
	if stats[1].Start != 100 || eng.Now() != 200 {
		t.Fatalf("two full-node tasks: second start %v makespan %v, want 100/200",
			stats[1].Start, eng.Now())
	}
}

func TestFIFOHeadOfLineBlocks(t *testing.T) {
	// FIFO must not let the small task overtake the blocked big one.
	eng := New(testPool(t, 1, 16, 32), FIFO(), 8)
	stats := run(t, eng, []Task{
		{ID: 0, Sys: sys(16, 16), Duration: 50},
		{ID: 1, Sys: sys(16, 16), Duration: 60},
		{ID: 2, Sys: sys(2, 2), Duration: 10},
	})
	if stats[2].Start != 110 {
		t.Fatalf("small task overtook FIFO head: start %v, want 110", stats[2].Start)
	}
}

func TestSlotCapRespected(t *testing.T) {
	eng := New(testPool(t, 4, 32, 64), FIFO(), 1)
	stats := run(t, eng, []Task{
		{ID: 0, Sys: sys(4, 4), Duration: 10},
		{ID: 1, Sys: sys(4, 4), Duration: 10},
		{ID: 2, Sys: sys(4, 4), Duration: 10},
	})
	if eng.Now() != 30 {
		t.Fatalf("single-slot makespan %v, want 30", eng.Now())
	}
	if stats[1].Start != 10 || stats[2].Start != 20 {
		t.Fatalf("not serial: %v, %v", stats[1].Start, stats[2].Start)
	}
}

func TestNeverFitsRejectedAtSubmit(t *testing.T) {
	eng := New(testPool(t, 1, 8, 16), FIFO(), 4)
	err := eng.Submit(Task{ID: 0, Sys: sys(16, 8), Duration: 10}, nil)
	if !errors.Is(err, ErrNeverFits) {
		t.Fatalf("oversize footprint accepted: %v", err)
	}
	// A resize target that can never fit is just as fatal.
	err = eng.Submit(Task{ID: 1, Sys: sys(4, 4), Duration: 10,
		Resizes: []Resize{{Offset: 5, Sys: sys(32, 8)}}}, nil)
	if !errors.Is(err, ErrNeverFits) {
		t.Fatalf("oversize resize accepted: %v", err)
	}
}

func TestArrivalsQueueFIFO(t *testing.T) {
	eng := New(nil, FIFO(), 1)
	stats := run(t, eng, []Task{
		{ID: 0, Arrival: 0, Duration: 100},
		{ID: 1, Arrival: 10, Duration: 10},
		{ID: 2, Arrival: 5, Duration: 10},
	})
	if stats[2].Start != 100 || stats[1].Start != 110 {
		t.Fatalf("arrival order not respected: %v, %v", stats[2].Start, stats[1].Start)
	}
	if stats[1].Wait != 100 || stats[1].Response != 110 {
		t.Fatalf("wait/response wrong: %+v", stats[1])
	}
}

func TestShrinkResizeAdmitsWaiter(t *testing.T) {
	// Task 0 shrinks from a full node to a quarter at t=40; task 1 (half a
	// node) must start exactly then, not at task 0's end.
	eng := New(testPool(t, 1, 16, 32), FIFO(), 8)
	stats := run(t, eng, []Task{
		{ID: 0, Sys: sys(16, 32), Duration: 100, Resizes: []Resize{{Offset: 40, Sys: sys(4, 8)}}},
		{ID: 1, Sys: sys(8, 16), Duration: 10},
	})
	if stats[0].ResizesGranted != 1 || stats[0].ResizesDenied != 0 {
		t.Fatalf("shrink not granted: %+v", stats[0])
	}
	if stats[1].Start != 40 {
		t.Fatalf("waiter started at %v, want 40 (at the shrink)", stats[1].Start)
	}
}

func TestGrowthResizeDeniedUnderContention(t *testing.T) {
	// Two half-node tasks fill the node; task 0's attempt to grow to the
	// full node must be denied and the task keeps its reservation.
	eng := New(testPool(t, 1, 16, 32), FIFO(), 8)
	stats := run(t, eng, []Task{
		{ID: 0, Sys: sys(8, 16), Duration: 100, Resizes: []Resize{{Offset: 10, Sys: sys(16, 32)}}},
		{ID: 1, Sys: sys(8, 16), Duration: 100},
	})
	if stats[0].ResizesDenied != 1 || stats[0].ResizesGranted != 0 {
		t.Fatalf("growth under contention: %+v", stats[0])
	}
	if stats[1].End != 100 {
		t.Fatalf("bystander disturbed: %+v", stats[1])
	}
}

func TestGrowthResizeGrantedWhenFree(t *testing.T) {
	eng := New(testPool(t, 1, 16, 32), FIFO(), 8)
	stats := run(t, eng, []Task{
		{ID: 0, Sys: sys(4, 8), Duration: 100, Resizes: []Resize{{Offset: 10, Sys: sys(16, 32)}}},
	})
	if stats[0].ResizesGranted != 1 {
		t.Fatalf("growth on an idle node denied: %+v", stats[0])
	}
}

func TestSJFPicksShortestThatFits(t *testing.T) {
	// One slot: after the first task, SJF runs 3 (shortest), then 2, then 1.
	eng := New(nil, SJF(), 1)
	stats := run(t, eng, []Task{
		{ID: 0, Duration: 50},
		{ID: 1, Duration: 30},
		{ID: 2, Duration: 20},
		{ID: 3, Duration: 10},
	})
	if stats[3].Start != 50 || stats[2].Start != 60 || stats[1].Start != 80 {
		t.Fatalf("SJF order wrong: %v %v %v", stats[3].Start, stats[2].Start, stats[1].Start)
	}
}

func TestBackfillFillsHoleWithoutDelayingHead(t *testing.T) {
	// Node 16 cores. Task 0 takes 12 cores until t=100. Head of queue
	// (task 1) needs 16 cores → shadow = 100. Task 2 (4 cores, 50 s) fits
	// in the hole and ends at 50 ≤ 100, so it backfills; task 3 (4 cores,
	// 200 s) would overrun the shadow and must not.
	eng := New(testPool(t, 1, 16, 32), Backfill(), 8)
	stats := run(t, eng, []Task{
		{ID: 0, Sys: sys(12, 8), Duration: 100},
		{ID: 1, Sys: sys(16, 16), Duration: 10},
		{ID: 2, Sys: sys(4, 4), Duration: 50},
		{ID: 3, Sys: sys(4, 4), Duration: 200},
	})
	if stats[2].Start != 0 {
		t.Fatalf("backfill candidate idled: start %v, want 0", stats[2].Start)
	}
	if stats[1].Start != 100 {
		t.Fatalf("head delayed by backfill: start %v, want 100", stats[1].Start)
	}
	if stats[3].Start < 100 {
		t.Fatalf("shadow-overrunning task backfilled at %v", stats[3].Start)
	}
}

// poissonTasks builds a heavy-tailed Poisson arrival stream.
func poissonTasks(seed uint64, n int, meanGap float64) []Task {
	r := xrand.New(seed)
	tasks := make([]Task, n)
	at := 0.0
	for i := range tasks {
		at += r.ExpFloat64() * meanGap
		dur := 20 + r.Float64()*30
		if i%5 == 0 {
			dur *= 10 // heavy tail: every fifth job is long
		}
		tasks[i] = Task{ID: i, Arrival: at, Duration: dur}
	}
	return tasks
}

func meanResponse(stats []TaskStats) float64 {
	sum := 0.0
	for _, s := range stats {
		sum += s.Response
	}
	return sum / float64(len(stats))
}

func TestPolicyComparisonOnPoissonStream(t *testing.T) {
	// On a contended stream with heavy-tailed service times, SJF must beat
	// FIFO on mean response; every policy serves every job.
	tasks := poissonTasks(7, 60, 25)
	byPolicy := map[string]float64{}
	for _, p := range []Policy{FIFO(), SJF(), Backfill()} {
		stats, err := Simulate(tasks, 2, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(stats) != len(tasks) {
			t.Fatalf("%s served %d/%d jobs", p.Name(), len(stats), len(tasks))
		}
		for i, st := range stats {
			if st.End <= 0 {
				t.Fatalf("%s: job %d never finished", p.Name(), i)
			}
		}
		byPolicy[p.Name()] = meanResponse(stats)
	}
	if byPolicy[NameSJF] >= byPolicy[NameFIFO] {
		t.Fatalf("SJF mean response %.1f not below FIFO %.1f",
			byPolicy[NameSJF], byPolicy[NameFIFO])
	}
	// Slot-only streams give backfill no hole to fill: it must degrade to
	// exactly FIFO.
	if byPolicy[NameBackfill] != byPolicy[NameFIFO] {
		t.Fatalf("slot-only backfill %.1f diverged from FIFO %.1f",
			byPolicy[NameBackfill], byPolicy[NameFIFO])
	}
}

func TestBackfillBeatsFIFOWithFootprints(t *testing.T) {
	// One 16-core node. A 12-core task holds it while a full-node task
	// blocks the FIFO head; the 4-core tasks behind fit the hole and end
	// before the head's shadow time, so backfill runs them early while
	// FIFO makes them queue — strictly better mean response, same head
	// start time.
	tasks := []Task{
		{ID: 0, Arrival: 0, Sys: sys(12, 8), Duration: 100},
		{ID: 1, Arrival: 1, Sys: sys(16, 16), Duration: 10},
		{ID: 2, Arrival: 2, Sys: sys(4, 4), Duration: 20},
		{ID: 3, Arrival: 3, Sys: sys(4, 4), Duration: 20},
		{ID: 4, Arrival: 4, Sys: sys(4, 4), Duration: 20},
	}
	mean := func(p Policy) (float64, map[int]TaskStats) {
		eng := New(testPool(t, 1, 16, 32), p, 0)
		st := run(t, eng, tasks)
		return meanResponse(eng.Stats()), st
	}
	fifo, _ := mean(FIFO())
	backfill, st := mean(Backfill())
	if backfill >= fifo {
		t.Fatalf("backfill mean response %.1f not below FIFO %.1f", backfill, fifo)
	}
	if st[1].Start != 100 {
		t.Fatalf("backfill delayed the blocked head: start %v, want 100", st[1].Start)
	}
	if st[2].Start != 2 {
		t.Fatalf("first backfill candidate queued: start %v, want 2", st[2].Start)
	}
}

func TestEngineDeterministic(t *testing.T) {
	for _, p := range []Policy{FIFO(), SJF(), Backfill()} {
		runOnce := func() []TaskStats {
			stats, err := Simulate(poissonTasks(3, 50, 20), 3, p)
			if err != nil {
				t.Fatal(err)
			}
			return stats
		}
		a, b := runOnce(), runOnce()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: run diverged at job %d: %+v vs %+v", p.Name(), i, a[i], b[i])
			}
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate([]Task{{ID: 1, Duration: 1}}, 0, nil); err == nil {
		t.Fatal("0 slots accepted")
	}
	if _, err := Simulate([]Task{{ID: 1, Duration: -1}}, 1, nil); err == nil {
		t.Fatal("negative duration accepted")
	}
	if _, err := Simulate([]Task{{ID: 1, Duration: 1, Sys: sys(4, 4)}}, 1, nil); err == nil {
		t.Fatal("footprint task accepted by a slot-only engine")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{NameFIFO, NameSJF, NameBackfill, NameCheapest, NamePerfPerDollar} {
		p, err := ByName(name)
		if err != nil || p.Name() != name {
			t.Fatalf("ByName(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := ByName("lifo"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestEarliestStartInf(t *testing.T) {
	// Defensive: EarliestStart on an impossible footprint is +Inf (Submit
	// rejects these, so construct the context by hand).
	eng := New(testPool(t, 1, 8, 16), FIFO(), 4)
	eng.queue = append(eng.queue, &queued{task: Task{ID: 0, Sys: sys(32, 8), Duration: 1}})
	if got := eng.earliestStart(0); !math.IsInf(got, 1) {
		t.Fatalf("earliestStart = %v, want +Inf", got)
	}
}

func TestBackfillShadowAccountsForPendingShrink(t *testing.T) {
	// One 16-core node. Task 0 (12 cores) runs to t=100 but shrinks to 4
	// cores at t=40, so the 12-core head (task 1) truly starts at t=40 —
	// the shadow must be 40, not 100. Candidate 2 (4 cores, 80 s) would
	// end at 82 > 40: backfilling it would delay the head to 82, so it
	// must wait. Candidate 3 (4 cores, 30 s) ends at 33 <= 40 and may
	// backfill. The head then starts exactly at the shrink.
	eng := New(testPool(t, 1, 16, 32), Backfill(), 8)
	stats := run(t, eng, []Task{
		{ID: 0, Arrival: 0, Sys: sys(12, 8), Duration: 100,
			Resizes: []Resize{{Offset: 40, Sys: sys(4, 4)}}},
		{ID: 1, Arrival: 1, Sys: sys(12, 8), Duration: 10},
		{ID: 2, Arrival: 2, Sys: sys(4, 4), Duration: 80},
		{ID: 3, Arrival: 3, Sys: sys(4, 4), Duration: 30},
	})
	if stats[1].Start != 40 {
		t.Fatalf("head start %v, want 40 (at the shrink); shadow ignored the pending resize",
			stats[1].Start)
	}
	if stats[3].Start != 3 {
		t.Fatalf("short candidate did not backfill: start %v, want 3", stats[3].Start)
	}
	if stats[2].Start < 40 {
		t.Fatalf("long candidate backfilled at %v and delayed the head", stats[2].Start)
	}
}

func TestPolicyBugSurfacesError(t *testing.T) {
	// A custom policy that picks a non-fitting task must produce a
	// descriptive error from Run, not a silent halt.
	eng := New(testPool(t, 1, 8, 16), pickLastPolicy{}, 8)
	if err := eng.Submit(Task{ID: 0, Sys: sys(8, 8), Duration: 100}, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit(Task{ID: 1, Sys: sys(8, 8), Duration: 10}, nil); err != nil {
		t.Fatal(err)
	}
	err := eng.Run()
	if err == nil {
		t.Fatal("policy bug went unreported")
	}
	if !strings.Contains(err.Error(), "pick-last") || !strings.Contains(err.Error(), "task 1") {
		t.Fatalf("error does not identify the policy bug: %v", err)
	}
}

// pickLastPolicy always picks the newest queued task without checking fit.
type pickLastPolicy struct{}

func (pickLastPolicy) Name() string { return "pick-last" }
func (pickLastPolicy) Pick(ctx *PickContext) int {
	return len(ctx.Queue) - 1
}
