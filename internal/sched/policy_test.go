package sched

import (
	"math"
	"testing"
)

// ctxOf hand-rolls a PickContext over explicit fit and shadow tables so
// the Pick tie-break rules are tested against the interface contract, not
// pool internals.
func ctxOf(queue []Task, fits []bool, shadow float64) *PickContext {
	return &PickContext{
		Queue:         queue,
		FitsNow:       func(i int) bool { return fits[i] },
		EarliestStart: func(int) float64 { return shadow },
	}
}

// TestPickTieBreakTables pins every policy's admission order on mixed
// queues: who wins on equal durations, who is skipped when blocked, and
// that the cost-aware policies keep FIFO's head-of-line blocking.
func TestPickTieBreakTables(t *testing.T) {
	d := func(dur float64) Task { return Task{Duration: dur} }
	cases := []struct {
		name   string
		policy Policy
		queue  []Task
		fits   []bool
		shadow float64
		want   int
	}{
		{"fifo/head-fits", FIFO(), []Task{d(50), d(10)}, []bool{true, true}, 0, 0},
		{"fifo/head-blocked-blocks-all", FIFO(), []Task{d(50), d(10)}, []bool{false, true}, 100, -1},
		{"fifo/empty-queue", FIFO(), nil, nil, 0, -1},
		{"sjf/shortest-wins", SJF(), []Task{d(50), d(10), d(30)}, []bool{true, true, true}, 0, 1},
		{"sjf/skips-non-fitting", SJF(), []Task{d(50), d(10), d(30)}, []bool{true, false, true}, 0, 2},
		{"sjf/duration-tie-oldest-wins", SJF(), []Task{d(30), d(10), d(10)}, []bool{true, true, true}, 0, 1},
		{"sjf/nothing-fits", SJF(), []Task{d(30), d(20)}, []bool{false, false}, 100, -1},
		{"backfill/head-first-when-fits", Backfill(), []Task{d(50), d(1)}, []bool{true, true}, 0, 0},
		{"backfill/fills-hole-within-shadow", Backfill(), []Task{d(50), d(200), d(30)}, []bool{false, true, true}, 40, 2},
		{"backfill/candidate-tie-oldest-wins", Backfill(), []Task{d(50), d(30), d(20)}, []bool{false, true, true}, 40, 1},
		{"backfill/shadow-blocks-overrunners", Backfill(), []Task{d(50), d(60)}, []bool{false, true}, 40, -1},
		{"backfill/infinite-shadow-admits-nothing", Backfill(), []Task{d(50), d(10)}, []bool{false, true}, math.Inf(1), -1},
		{"cheapest/keeps-head-of-line-blocking", Cheapest(), []Task{d(50), d(10)}, []bool{false, true}, 100, -1},
		{"cheapest/head-fits", Cheapest(), []Task{d(50), d(10)}, []bool{true, true}, 0, 0},
		{"perf-per-dollar/keeps-head-of-line-blocking", PerfPerDollar(), []Task{d(50), d(10)}, []bool{false, true}, 100, -1},
		{"perf-per-dollar/head-fits", PerfPerDollar(), []Task{d(50), d(10)}, []bool{true, true}, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.policy.Pick(ctxOf(tc.queue, tc.fits, tc.shadow)); got != tc.want {
				t.Fatalf("%s.Pick = %d, want %d", tc.policy.Name(), got, tc.want)
			}
		})
	}
}

// classCtxOf hand-rolls the class axis for one queued task: fits[c] and
// cost[c] describe class c. PerfPerDollar reads speed/price from the
// ClassCap itself, so callers pass real caps.
func classCtxOf(caps []ClassCap, fits []bool, cost []float64) *PickContext {
	classes := make([]ClassInfo, len(caps))
	for i, cc := range caps {
		classes[i] = ClassInfo{ClassCap: cc}
	}
	return &PickContext{
		Queue:     []Task{{Duration: 100}},
		Classes:   classes,
		ClassFits: func(_, c int) bool { return fits[c] },
		ClassCost: func(_, c int) float64 { return cost[c] },
	}
}

// TestChooseClassTables pins the class tie-breaks of both cost-aware
// policies: strict minimisation/maximisation, declaration-order ties,
// non-fitting classes skipped, free classes infinitely good, and -1 when
// no class has room.
func TestChooseClassTables(t *testing.T) {
	caps := func(specs ...[2]float64) []ClassCap {
		out := make([]ClassCap, len(specs))
		for i, s := range specs {
			out[i] = ClassCap{SpeedFactor: s[0], HourlyUSD: s[1]}
		}
		return out
	}
	cases := []struct {
		name    string
		chooser ClassChooser
		caps    []ClassCap
		fits    []bool
		cost    []float64
		want    int
	}{
		{"cheapest/min-cost-wins", Cheapest().(ClassChooser),
			caps([2]float64{1, 1}, [2]float64{1, 1}, [2]float64{1, 1}),
			[]bool{true, true, true}, []float64{0.9, 0.2, 0.5}, 1},
		{"cheapest/tie-first-declared-wins", Cheapest().(ClassChooser),
			caps([2]float64{1, 1}, [2]float64{1, 1}),
			[]bool{true, true}, []float64{0.4, 0.4}, 0},
		{"cheapest/skips-full-cheapest", Cheapest().(ClassChooser),
			caps([2]float64{1, 1}, [2]float64{1, 1}),
			[]bool{false, true}, []float64{0.1, 0.9}, 1},
		{"cheapest/nothing-fits", Cheapest().(ClassChooser),
			caps([2]float64{1, 1}, [2]float64{1, 1}),
			[]bool{false, false}, []float64{0.1, 0.9}, -1},
		{"perf-per-dollar/best-ratio-wins", PerfPerDollar().(ClassChooser),
			caps([2]float64{1, 0.8}, [2]float64{4.8, 1.4}, [2]float64{2.6, 2.3}),
			[]bool{true, true, true}, []float64{0, 0, 0}, 1},
		{"perf-per-dollar/free-class-always-preferred", PerfPerDollar().(ClassChooser),
			caps([2]float64{10, 0.01}, [2]float64{1, 0}),
			[]bool{true, true}, []float64{0, 0}, 1},
		{"perf-per-dollar/tie-first-declared-wins", PerfPerDollar().(ClassChooser),
			caps([2]float64{1, 0.5}, [2]float64{2, 1}),
			[]bool{true, true}, []float64{0, 0}, 0},
		{"perf-per-dollar/skips-full-best", PerfPerDollar().(ClassChooser),
			caps([2]float64{4.8, 1.4}, [2]float64{1, 0.8}),
			[]bool{false, true}, []float64{0, 0}, 1},
		{"perf-per-dollar/nothing-fits", PerfPerDollar().(ClassChooser),
			caps([2]float64{1, 1}),
			[]bool{false}, []float64{0}, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctx := classCtxOf(tc.caps, tc.fits, tc.cost)
			if got := tc.chooser.ChooseClass(ctx, 0); got != tc.want {
				t.Fatalf("ChooseClass = %d, want %d", got, tc.want)
			}
		})
	}
}

// classPool builds a two-class heterogeneous pool: 2 cheap slow "budget"
// nodes and 1 fast expensive "turbo" node.
func classPool(t *testing.T) *Pool {
	t.Helper()
	p, err := NewPoolClasses(
		[]NodeCap{{Cores: 16, MemoryGB: 32}, {Cores: 16, MemoryGB: 32}, {Cores: 32, MemoryGB: 64}},
		[]int{0, 0, 1},
		[]ClassCap{
			{Name: "budget", SpeedFactor: 1, HourlyUSD: 0.2},
			{Name: "turbo", SpeedFactor: 2, HourlyUSD: 2.4},
		})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestPickContextClassView checks the live class axis the engine hands
// policies under asymmetric occupancy: one budget node partly occupied,
// the other down, must show up in the per-class aggregates, fits, and
// prices.
func TestPickContextClassView(t *testing.T) {
	e := New(classPool(t), Cheapest(), 0)
	e.pool.placeOn(0, sys(12, 8))
	e.pool.setDown(1, true)
	e.queue = []*queued{{task: Task{Sys: sys(8, 8), Duration: 7200}, attempt: 1}}

	ctx := e.pickContext()
	budget, turbo := ctx.Classes[0], ctx.Classes[1]
	if budget.Nodes != 2 || budget.UpNodes != 1 || budget.FreeCores != 4 || budget.FreeMemoryGB != 24 {
		t.Fatalf("budget class view %+v", budget)
	}
	if turbo.Nodes != 1 || turbo.UpNodes != 1 || turbo.FreeCores != 32 || turbo.FreeMemoryGB != 64 {
		t.Fatalf("turbo class view %+v", turbo)
	}
	if ctx.ClassFits(0, 0) {
		t.Fatal("8 cores reported fitting a class with 4 free on its only up node")
	}
	if !ctx.ClassFits(0, 1) {
		t.Fatal("idle turbo node reported full")
	}
	if got := ctx.ClassDuration(0, 1); !almost(got, 3600) {
		t.Fatalf("turbo duration %v, want 3600 (speed 2)", got)
	}
	if got := ctx.ClassCost(0, 1); !almost(got, 2.4) {
		t.Fatalf("turbo cost %v, want 2.4", got)
	}
	// The budget class would be 6x cheaper (0.4$) but has no room: the
	// chooser must spill to turbo rather than stall.
	if got := Cheapest().(ClassChooser).ChooseClass(ctx, 0); got != 1 {
		t.Fatalf("cheapest chose class %d with the cheap class full, want 1", got)
	}
}

// TestCheapestPlacesOnCheapClassAndSpills drives the whole engine: the
// first two tasks land on the budget nodes, the third spills to turbo,
// runs twice as fast, and is billed at the turbo rate.
func TestCheapestPlacesOnCheapClassAndSpills(t *testing.T) {
	eng := New(classPool(t), Cheapest(), 0)
	stats := run(t, eng, []Task{
		{ID: 0, Sys: sys(16, 32), Duration: 3600},
		{ID: 1, Sys: sys(16, 32), Duration: 3600},
		{ID: 2, Sys: sys(16, 32), Duration: 3600},
	})
	for id := 0; id <= 1; id++ {
		if stats[id].Class != "budget" || stats[id].End != 3600 {
			t.Fatalf("task %d: %+v, want budget class ending at 3600", id, stats[id])
		}
		if !almost(stats[id].CostUSD, 0.2) {
			t.Fatalf("task %d cost %v, want 0.2", id, stats[id].CostUSD)
		}
	}
	if stats[2].Class != "turbo" || stats[2].End != 1800 {
		t.Fatalf("spilled task: %+v, want turbo class ending at 1800", stats[2])
	}
	if !almost(stats[2].CostUSD, 1.2) {
		t.Fatalf("spilled task cost %v, want 1.2", stats[2].CostUSD)
	}
}

// TestPerfPerDollarPrefersBestRatio: budget offers 1/0.2 = 5 speed per
// dollar against turbo's 2/2.4, so a lone task lands on budget even
// though turbo is idle and faster.
func TestPerfPerDollarPrefersBestRatio(t *testing.T) {
	eng := New(classPool(t), PerfPerDollar(), 0)
	stats := run(t, eng, []Task{{ID: 0, Sys: sys(16, 32), Duration: 3600}})
	if stats[0].Class != "budget" || stats[0].End != 3600 {
		t.Fatalf("perf-per-dollar placed %+v, want budget class", stats[0])
	}
}

// TestPreferredClass covers the pre-compute hint: the class a chooser
// would pick with every node free, or "" on classless pools and
// impossible footprints.
func TestPreferredClass(t *testing.T) {
	p := classPool(t)
	if got := PreferredClass(p, Cheapest().(ClassChooser), sys(16, 32), 3600); got != "budget" {
		t.Fatalf("cheapest hint = %q, want budget", got)
	}
	if got := PreferredClass(p, PerfPerDollar().(ClassChooser), sys(16, 32), 3600); got != "budget" {
		t.Fatalf("perf-per-dollar hint = %q, want budget", got)
	}
	// A footprint only the big node can host must hint turbo.
	if got := PreferredClass(p, Cheapest().(ClassChooser), sys(32, 64), 3600); got != "turbo" {
		t.Fatalf("turbo-only footprint hint = %q, want turbo", got)
	}
	// Nothing fits: no hint.
	if got := PreferredClass(p, Cheapest().(ClassChooser), sys(64, 64), 3600); got != "" {
		t.Fatalf("impossible footprint hint = %q, want empty", got)
	}
	// Classless pools carry no class axis at all.
	if got := PreferredClass(testPool(t, 1, 8, 16), Cheapest().(ClassChooser), sys(4, 4), 10); got != "" {
		t.Fatalf("classless hint = %q, want empty", got)
	}
}
