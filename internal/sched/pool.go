package sched

import (
	"fmt"

	"pipetune/internal/params"
)

// NodeCap is one node's capacity as seen by the scheduler.
type NodeCap struct {
	Cores    int `json:"cores"`
	MemoryGB int `json:"memoryGB"`
}

// Pool is the scheduler's occupancy model: a fixed set of nodes on which
// task footprints are placed first-fit. Footprints never span nodes (the
// training framework pins each trial's executors together), so placement is
// per-node bin packing, exactly the model tune's barrier scheduler used for
// its scratch cluster.
type Pool struct {
	caps      []NodeCap
	usedCores []int
	usedMem   []int
}

// NewPool builds an empty pool over the given node shapes.
func NewPool(caps []NodeCap) (*Pool, error) {
	if len(caps) == 0 {
		return nil, fmt.Errorf("sched: pool needs at least one node")
	}
	for i, c := range caps {
		if c.Cores < 1 || c.MemoryGB < 1 {
			return nil, fmt.Errorf("sched: node %d has invalid capacity %+v", i, c)
		}
	}
	cp := make([]NodeCap, len(caps))
	copy(cp, caps)
	return &Pool{
		caps:      cp,
		usedCores: make([]int, len(cp)),
		usedMem:   make([]int, len(cp)),
	}, nil
}

// NumNodes returns the node count.
func (p *Pool) NumNodes() int { return len(p.caps) }

// clone copies the pool including its current occupancy (used for what-if
// probes such as backfill shadow times).
func (p *Pool) clone() *Pool {
	out := &Pool{
		caps:      p.caps, // immutable after construction
		usedCores: make([]int, len(p.usedCores)),
		usedMem:   make([]int, len(p.usedMem)),
	}
	copy(out.usedCores, p.usedCores)
	copy(out.usedMem, p.usedMem)
	return out
}

// fitsOn reports whether fp fits node n right now.
func (p *Pool) fitsOn(n int, fp params.SysConfig) bool {
	return p.caps[n].Cores-p.usedCores[n] >= fp.Cores &&
		p.caps[n].MemoryGB-p.usedMem[n] >= fp.MemoryGB
}

// place reserves fp on the first node with enough free capacity and returns
// the node index, or -1 when no node currently fits.
func (p *Pool) place(fp params.SysConfig) int {
	for n := range p.caps {
		if p.fitsOn(n, fp) {
			p.usedCores[n] += fp.Cores
			p.usedMem[n] += fp.MemoryGB
			return n
		}
	}
	return -1
}

// placeOn reserves fp on node n specifically, reporting success.
func (p *Pool) placeOn(n int, fp params.SysConfig) bool {
	if !p.fitsOn(n, fp) {
		return false
	}
	p.usedCores[n] += fp.Cores
	p.usedMem[n] += fp.MemoryGB
	return true
}

// free releases fp from node n.
func (p *Pool) free(n int, fp params.SysConfig) {
	p.usedCores[n] -= fp.Cores
	p.usedMem[n] -= fp.MemoryGB
}

// canEverFit reports whether fp would fit some node of an empty pool.
func (p *Pool) canEverFit(fp params.SysConfig) bool {
	for _, c := range p.caps {
		if c.Cores >= fp.Cores && c.MemoryGB >= fp.MemoryGB {
			return true
		}
	}
	return false
}

// probe reports whether fp could be placed right now without reserving it.
func (p *Pool) probe(fp params.SysConfig) bool {
	for n := range p.caps {
		if p.fitsOn(n, fp) {
			return true
		}
	}
	return false
}
