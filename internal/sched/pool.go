package sched

import (
	"fmt"

	"pipetune/internal/params"
)

// NodeCap is one node's capacity as seen by the scheduler.
type NodeCap struct {
	Cores    int `json:"cores"`
	MemoryGB int `json:"memoryGB"`
}

// ClassCap is one node class's scheduling-relevant metadata: the axes the
// cost-aware policies price placements on. A classless pool (NewPool)
// behaves as one anonymous class with speed 1 and price 0.
type ClassCap struct {
	Name string `json:"name"`
	// Spot marks revocable capacity subject to the engine's revocation
	// source; RevocationsPerHour is each node's Poisson rate.
	Spot               bool    `json:"spot,omitempty"`
	RevocationsPerHour float64 `json:"revocationsPerHour,omitempty"`
	// SpeedFactor divides task durations on the class's nodes (reference
	// node = 1). Must be > 0.
	SpeedFactor float64 `json:"speedFactor,omitempty"`
	// HourlyUSD prices one node-hour of the class.
	HourlyUSD float64 `json:"hourlyUSD,omitempty"`
}

// Pool is the scheduler's occupancy model: a fixed set of nodes on which
// task footprints are placed first-fit. Footprints never span nodes (the
// training framework pins each trial's executors together), so placement is
// per-node bin packing, exactly the model tune's barrier scheduler used for
// its scratch cluster. Nodes may carry class metadata (speed, price, spot)
// and may be transiently down while a revoked spot node awaits its
// replacement.
type Pool struct {
	caps      []NodeCap
	usedCores []int
	usedMem   []int
	classes   []ClassCap // nil = classless (legacy NewPool)
	nodeClass []int      // per-node class index; nil when classless
	down      []bool     // revoked spot nodes awaiting replacement
}

// NewPool builds an empty classless pool over the given node shapes.
func NewPool(caps []NodeCap) (*Pool, error) {
	return NewPoolClasses(caps, nil, nil)
}

// NewPoolClasses builds an empty pool with per-node class membership:
// nodeClass[i] indexes classes for node i. Both may be nil for a classless
// pool.
func NewPoolClasses(caps []NodeCap, nodeClass []int, classes []ClassCap) (*Pool, error) {
	if len(caps) == 0 {
		return nil, fmt.Errorf("sched: pool needs at least one node")
	}
	for i, c := range caps {
		if c.Cores < 1 || c.MemoryGB < 1 {
			return nil, fmt.Errorf("sched: node %d has invalid capacity %+v", i, c)
		}
	}
	if (nodeClass == nil) != (classes == nil) {
		return nil, fmt.Errorf("sched: node-class map and class list must both be set or both nil")
	}
	if nodeClass != nil {
		if len(nodeClass) != len(caps) {
			return nil, fmt.Errorf("sched: %d nodes but %d class assignments", len(caps), len(nodeClass))
		}
		for i, ci := range nodeClass {
			if ci < 0 || ci >= len(classes) {
				return nil, fmt.Errorf("sched: node %d assigned to unknown class %d", i, ci)
			}
		}
		for i, cc := range classes {
			if cc.SpeedFactor <= 0 {
				return nil, fmt.Errorf("sched: class %d (%q) has non-positive speed factor", i, cc.Name)
			}
		}
	}
	cp := make([]NodeCap, len(caps))
	copy(cp, caps)
	p := &Pool{
		caps:      cp,
		usedCores: make([]int, len(cp)),
		usedMem:   make([]int, len(cp)),
		down:      make([]bool, len(cp)),
	}
	if nodeClass != nil {
		p.classes = append([]ClassCap(nil), classes...)
		p.nodeClass = append([]int(nil), nodeClass...)
	}
	return p, nil
}

// NumNodes returns the node count.
func (p *Pool) NumNodes() int { return len(p.caps) }

// NumClasses returns the class count (0 for classless pools).
func (p *Pool) NumClasses() int { return len(p.classes) }

// Class returns class c's metadata.
func (p *Pool) Class(c int) ClassCap { return p.classes[c] }

// classOf returns node n's class index, or -1 on a classless pool.
func (p *Pool) classOf(n int) int {
	if p.nodeClass == nil {
		return -1
	}
	return p.nodeClass[n]
}

// speedOf returns node n's duration divisor (1 on classless pools).
func (p *Pool) speedOf(n int) float64 {
	if c := p.classOf(n); c >= 0 {
		return p.classes[c].SpeedFactor
	}
	return 1
}

// rateOf returns node n's hourly price (0 on classless pools).
func (p *Pool) rateOf(n int) float64 {
	if c := p.classOf(n); c >= 0 {
		return p.classes[c].HourlyUSD
	}
	return 0
}

// classNameOf returns node n's class name ("" on classless pools).
func (p *Pool) classNameOf(n int) string {
	if c := p.classOf(n); c >= 0 {
		return p.classes[c].Name
	}
	return ""
}

// isSpot reports whether node n is revocable spot capacity.
func (p *Pool) isSpot(n int) bool {
	if c := p.classOf(n); c >= 0 {
		return p.classes[c].Spot
	}
	return false
}

// setDown marks node n down (a revoked spot node) or back up.
func (p *Pool) setDown(n int, down bool) { p.down[n] = down }

// clone copies the pool including its current occupancy and down set
// (used for what-if probes such as backfill shadow times).
func (p *Pool) clone() *Pool {
	out := &Pool{
		caps:      p.caps, // immutable after construction
		usedCores: make([]int, len(p.usedCores)),
		usedMem:   make([]int, len(p.usedMem)),
		classes:   p.classes, // immutable after construction
		nodeClass: p.nodeClass,
		down:      make([]bool, len(p.down)),
	}
	copy(out.usedCores, p.usedCores)
	copy(out.usedMem, p.usedMem)
	copy(out.down, p.down)
	return out
}

// fitsOn reports whether fp fits node n right now.
func (p *Pool) fitsOn(n int, fp params.SysConfig) bool {
	return !p.down[n] &&
		p.caps[n].Cores-p.usedCores[n] >= fp.Cores &&
		p.caps[n].MemoryGB-p.usedMem[n] >= fp.MemoryGB
}

// place reserves fp on the first node with enough free capacity and returns
// the node index, or -1 when no node currently fits.
func (p *Pool) place(fp params.SysConfig) int {
	for n := range p.caps {
		if p.fitsOn(n, fp) {
			p.usedCores[n] += fp.Cores
			p.usedMem[n] += fp.MemoryGB
			return n
		}
	}
	return -1
}

// placeClass reserves fp on the first fitting node of class c, or -1.
func (p *Pool) placeClass(c int, fp params.SysConfig) int {
	for n := range p.caps {
		if p.nodeClass[n] == c && p.fitsOn(n, fp) {
			p.usedCores[n] += fp.Cores
			p.usedMem[n] += fp.MemoryGB
			return n
		}
	}
	return -1
}

// fitsClass reports whether fp could be placed on class c right now.
func (p *Pool) fitsClass(c int, fp params.SysConfig) bool {
	for n := range p.caps {
		if p.nodeClass[n] == c && p.fitsOn(n, fp) {
			return true
		}
	}
	return false
}

// placeOn reserves fp on node n specifically, reporting success.
func (p *Pool) placeOn(n int, fp params.SysConfig) bool {
	if !p.fitsOn(n, fp) {
		return false
	}
	p.usedCores[n] += fp.Cores
	p.usedMem[n] += fp.MemoryGB
	return true
}

// free releases fp from node n.
func (p *Pool) free(n int, fp params.SysConfig) {
	p.usedCores[n] -= fp.Cores
	p.usedMem[n] -= fp.MemoryGB
}

// canEverFit reports whether fp would fit some node of an empty pool.
// Down nodes count: a revoked spot node's replacement re-joins with the
// same shape, so down-ness is transient and never grounds for rejection.
func (p *Pool) canEverFit(fp params.SysConfig) bool {
	for _, c := range p.caps {
		if c.Cores >= fp.Cores && c.MemoryGB >= fp.MemoryGB {
			return true
		}
	}
	return false
}

// probe reports whether fp could be placed right now without reserving it.
func (p *Pool) probe(fp params.SysConfig) bool {
	for n := range p.caps {
		if p.fitsOn(n, fp) {
			return true
		}
	}
	return false
}
