package sched

import (
	"testing"

	"pipetune/internal/ec2"
	"pipetune/internal/xrand"
)

// ec2BenchPool builds the Figure 1 half-spot fleet shape: per instance
// shape one on-demand and one spot class node.
func ec2BenchPool(b *testing.B) (*Pool, []float64) {
	b.Helper()
	shapes := []struct {
		cores, mem int
		speed      float64
		od, spot   float64
	}{
		{16, 64, 1.0, 0.80, 0.24},
		{48, 192, 2.6, 2.304, 0.6912},
		{96, 384, 4.8, 4.608, 1.3824},
	}
	var caps []NodeCap
	var nodeClass []int
	var classes []ClassCap
	var rates []float64
	for _, s := range shapes {
		classes = append(classes,
			ClassCap{Name: "od", SpeedFactor: s.speed, HourlyUSD: s.od},
			ClassCap{Name: "spot", Spot: true, RevocationsPerHour: 2, SpeedFactor: s.speed, HourlyUSD: s.spot})
		caps = append(caps, NodeCap{Cores: s.cores, MemoryGB: s.mem}, NodeCap{Cores: s.cores, MemoryGB: s.mem})
		nodeClass = append(nodeClass, len(classes)-2, len(classes)-1)
		rates = append(rates, 0, 2)
	}
	p, err := NewPoolClasses(caps, nodeClass, classes)
	if err != nil {
		b.Fatal(err)
	}
	return p, rates
}

// benchTasks builds a Poisson-arrival stream of mixed footprints.
func benchTasks(n int) []Task {
	r := xrand.New(11)
	tasks := make([]Task, n)
	at := 0.0
	for i := range tasks {
		at += r.ExpFloat64() * 5
		tasks[i] = Task{
			ID:       i,
			Arrival:  at,
			Sys:      sys(4+int(r.Uint64()%13), 4+int(r.Uint64()%29)),
			Duration: 50 + r.Float64()*200,
		}
	}
	return tasks
}

// BenchmarkCostAwarePlacement prices one full discrete-event simulation
// of 500 trials over the 6-node heterogeneous fleet under each placement
// policy — the per-dispatch cost of building the class axis (per-class
// free-capacity aggregation) and the chooser's class scan.
func BenchmarkCostAwarePlacement(b *testing.B) {
	tasks := benchTasks(500)
	for _, policy := range []Policy{FIFO(), Cheapest(), PerfPerDollar()} {
		b.Run(policy.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pool, _ := ec2BenchPool(b)
				eng := New(pool, policy, 0)
				for _, t := range tasks {
					if err := eng.Submit(t, nil); err != nil {
						b.Fatal(err)
					}
				}
				if err := eng.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSpotRecovery adds the revocation plane: the same stream with
// every spot node revoked ~2x/hour, from-scratch retries. Measures
// eviction, requeue and node-outage handling on top of placement.
func BenchmarkSpotRecovery(b *testing.B) {
	tasks := benchTasks(500)
	for i := 0; i < b.N; i++ {
		pool, rates := ec2BenchPool(b)
		eng := New(pool, Cheapest(), 0)
		eng.SetRevocations(ec2.NewSpotProcess(7, rates, 120))
		for _, t := range tasks {
			if err := eng.Submit(t, nil); err != nil {
				b.Fatal(err)
			}
		}
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
