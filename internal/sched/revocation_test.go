package sched

import (
	"testing"

	"pipetune/internal/ec2"

	"math"
)

// fixedRevocations is a deterministic RevocationSource with explicit
// per-node revocation instants — the test double for ec2.SpotProcess.
type fixedRevocations struct {
	times  map[int][]float64
	outage float64
}

func (f fixedRevocations) NextAfter(node int, t float64) float64 {
	for _, at := range f.times[node] {
		if at > t {
			return at
		}
	}
	return math.Inf(1)
}

func (f fixedRevocations) OutageSeconds() float64 { return f.outage }

// spotPool builds a single-class all-spot pool of identical nodes.
func spotPool(t *testing.T, nodes, cores, mem int, speed float64) *Pool {
	t.Helper()
	caps := make([]NodeCap, nodes)
	nodeClass := make([]int, nodes)
	for i := range caps {
		caps[i] = NodeCap{Cores: cores, MemoryGB: mem}
	}
	p, err := NewPoolClasses(caps, nodeClass, []ClassCap{
		{Name: "spot", Spot: true, RevocationsPerHour: 1, SpeedFactor: speed, HourlyUSD: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestRevocationEvictsRequeuesAndRetries: a mid-task revocation evicts
// the task, the node stays down for the outage window, and the task
// replays from scratch on the replacement — with the interruption fully
// accounted in its stats.
func TestRevocationEvictsRequeuesAndRetries(t *testing.T) {
	eng := New(spotPool(t, 1, 16, 32, 1), FIFO(), 0)
	eng.SetRevocations(fixedRevocations{times: map[int][]float64{0: {40}}, outage: 10})
	stats := run(t, eng, []Task{{ID: 0, Sys: sys(8, 8), Duration: 100}})
	st := stats[0]
	if st.Revocations != 1 || eng.Revocations() != 1 {
		t.Fatalf("revocations = %d (engine %d), want 1", st.Revocations, eng.Revocations())
	}
	if st.Start != 50 || st.End != 150 {
		t.Fatalf("retry ran %v..%v, want 50..150 (outage ends at 50, from-scratch replay)", st.Start, st.End)
	}
	if st.WastedSeconds != 40 {
		t.Fatalf("wasted %v seconds, want 40", st.WastedSeconds)
	}
	if !almost(st.CostUSD, 140.0/3600) {
		t.Fatalf("cost %v, want both attempts billed (140s at $1/h)", st.CostUSD)
	}
	if !st.Spot || st.Class != "spot" {
		t.Fatalf("class attribution lost: %+v", st)
	}
}

// TestEvictHandlerShapesResume: the eviction handler sees the retry
// ordinal and elapsed reference seconds, and its ResumeSpec (shorter
// duration, smaller footprint, salvaged epochs) shapes the replacement
// attempt. The smaller resumed footprint is observable through a waiter
// that only fits beside it.
func TestEvictHandlerShapesResume(t *testing.T) {
	eng := New(spotPool(t, 1, 16, 32, 1), FIFO(), 0)
	eng.SetRevocations(fixedRevocations{times: map[int][]float64{0: {40}}, outage: 10})
	gotAttempt, gotElapsed := 0, 0.0
	onEvict := func(attempt int, elapsed float64) ResumeSpec {
		gotAttempt, gotElapsed = attempt, elapsed
		return ResumeSpec{Duration: 30, Sys: sys(4, 4), SalvagedEpochs: 3}
	}
	if err := eng.SubmitRevocable(Task{ID: 0, Sys: sys(8, 8), Duration: 100}, onEvict, nil); err != nil {
		t.Fatal(err)
	}
	// 12 cores only fit beside the resumed 4-core footprint, never beside
	// the original 8-core one.
	if err := eng.Submit(Task{ID: 1, Sys: sys(12, 24), Duration: 10}, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if gotAttempt != 2 || gotElapsed != 40 {
		t.Fatalf("handler saw attempt %d after %vs, want 2 after 40s", gotAttempt, gotElapsed)
	}
	byID := map[int]TaskStats{}
	for _, st := range eng.Stats() {
		byID[st.ID] = st
	}
	if st := byID[0]; st.End != 80 || st.SalvagedEpochs != 3 || st.Revocations != 1 {
		t.Fatalf("resumed task %+v, want end 80 with 3 salvaged epochs", st)
	}
	if byID[1].Start != 50 {
		t.Fatalf("waiter started at %v, want 50 (beside the shrunken resume)", byID[1].Start)
	}
}

// TestCompletionBeatsSameInstantRevocation: a task completing at the
// exact revocation instant keeps its result — completions settle before
// revocations at the same simulated time.
func TestCompletionBeatsSameInstantRevocation(t *testing.T) {
	eng := New(spotPool(t, 1, 16, 32, 1), FIFO(), 0)
	eng.SetRevocations(fixedRevocations{times: map[int][]float64{0: {40}}, outage: 10})
	stats := run(t, eng, []Task{{ID: 0, Sys: sys(8, 8), Duration: 40}})
	if st := stats[0]; st.End != 40 || st.Revocations != 0 {
		t.Fatalf("same-instant completion lost to the revocation: %+v", st)
	}
	if eng.Revocations() != 0 {
		t.Fatalf("victimless revocation counted: %d", eng.Revocations())
	}
}

// TestStaleEventsDroppedAfterEviction: the interrupted attempt's
// scheduled resize and completion events must not leak into the
// replacement attempt (generation guard). The replay re-schedules its
// own copies on its own timeline.
func TestStaleEventsDroppedAfterEviction(t *testing.T) {
	eng := New(spotPool(t, 1, 16, 32, 1), FIFO(), 0)
	eng.SetRevocations(fixedRevocations{times: map[int][]float64{0: {40}}, outage: 10})
	stats := run(t, eng, []Task{{ID: 0, Sys: sys(8, 8), Duration: 100,
		Resizes: []Resize{{Offset: 60, Sys: sys(4, 4)}}}})
	st := stats[0]
	// Stale resize would fire at t=60 (attempt 1's timeline) and bump the
	// count to 2; the replay's own resize fires at 50+60=110.
	if st.ResizesGranted != 1 {
		t.Fatalf("granted %d resizes, want 1 (stale attempt-1 resize must be dropped)", st.ResizesGranted)
	}
	if st.Start != 50 || st.End != 150 {
		t.Fatalf("replay ran %v..%v, want 50..150", st.Start, st.End)
	}
	// A stale completion double-firing would record a second stats row.
	if len(eng.Stats()) != 1 {
		t.Fatalf("%d completions recorded for one task", len(eng.Stats()))
	}
}

// TestEvictedTaskRestartsOnSurvivingNode: with an on-demand node free,
// the evicted task redisperses immediately instead of waiting out the
// revoked node's outage.
func TestEvictedTaskRestartsOnSurvivingNode(t *testing.T) {
	p, err := NewPoolClasses(
		[]NodeCap{{Cores: 16, MemoryGB: 32}, {Cores: 16, MemoryGB: 32}},
		[]int{0, 1},
		[]ClassCap{
			{Name: "spot", Spot: true, RevocationsPerHour: 1, SpeedFactor: 1, HourlyUSD: 0.24},
			{Name: "od", SpeedFactor: 1, HourlyUSD: 0.8},
		})
	if err != nil {
		t.Fatal(err)
	}
	eng := New(p, FIFO(), 0)
	eng.SetRevocations(fixedRevocations{times: map[int][]float64{0: {40}}, outage: 1000})
	stats := run(t, eng, []Task{{ID: 0, Sys: sys(8, 8), Duration: 100}})
	st := stats[0]
	if st.Start != 40 || st.End != 140 {
		t.Fatalf("retry ran %v..%v, want an immediate 40..140 restart on the surviving node", st.Start, st.End)
	}
	if st.Class != "od" || st.Spot {
		t.Fatalf("retry not attributed to the on-demand node: %+v", st)
	}
}

// TestClassSpeedScalesEverything: on a speed-4 node, durations and resize
// offsets divide by the class speed, and billing follows the scaled
// occupancy.
func TestClassSpeedScalesEverything(t *testing.T) {
	p, err := NewPoolClasses(
		[]NodeCap{{Cores: 16, MemoryGB: 32}},
		[]int{0},
		[]ClassCap{{Name: "fast", SpeedFactor: 4, HourlyUSD: 3600}}) // $1/node-second
	if err != nil {
		t.Fatal(err)
	}
	eng := New(p, FIFO(), 0)
	stats := run(t, eng, []Task{
		// Shrinks at reference offset 60 → node-local t=15, freeing room
		// for the waiter.
		{ID: 0, Sys: sys(16, 32), Duration: 100, Resizes: []Resize{{Offset: 60, Sys: sys(4, 4)}}},
		{ID: 1, Sys: sys(8, 16), Duration: 10},
	})
	if st := stats[0]; st.End != 25 || !almost(st.CostUSD, 25) {
		t.Fatalf("speed-4 task %+v, want end 25 at $25", st)
	}
	if st := stats[1]; st.Start != 15 || st.End != 17.5 {
		t.Fatalf("waiter ran %v..%v, want 15..17.5 (admitted at the scaled shrink)", st.Start, st.End)
	}
}

// TestEvictionElapsedInReferenceSeconds: the handler's elapsed argument
// is reference-speed work, not node-local wall time — on a speed-2 node a
// t=30 revocation means 60 reference seconds were executed.
func TestEvictionElapsedInReferenceSeconds(t *testing.T) {
	eng := New(spotPool(t, 1, 16, 32, 2), FIFO(), 0)
	eng.SetRevocations(fixedRevocations{times: map[int][]float64{0: {30}}, outage: 10})
	gotElapsed := 0.0
	onEvict := func(_ int, elapsed float64) ResumeSpec {
		gotElapsed = elapsed
		return ResumeSpec{Duration: 40} // the un-executed remainder
	}
	if err := eng.SubmitRevocable(Task{ID: 0, Sys: sys(8, 8), Duration: 100}, onEvict, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if gotElapsed != 60 {
		t.Fatalf("handler saw %v elapsed reference seconds, want 60", gotElapsed)
	}
	if st := eng.Stats()[0]; st.End != 60 {
		t.Fatalf("resume ended at %v, want 40 + 40/2 = 60", st.End)
	}
}

// TestInfiniteRevocationStreamDrains: a real Poisson revocation source is
// an unbounded stream; lazy arming (events only while a spot node hosts
// work) must still let the simulation terminate.
func TestInfiniteRevocationStreamDrains(t *testing.T) {
	eng := New(spotPool(t, 2, 16, 32, 1), FIFO(), 0)
	eng.SetRevocations(ec2.NewSpotProcess(7, []float64{12, 12}, 30))
	var tasks []Task
	for i := 0; i < 4; i++ {
		tasks = append(tasks, Task{ID: i, Sys: sys(8, 8), Duration: 200})
	}
	stats := run(t, eng, tasks) // run fails the test if Run errors or hangs the queue
	if len(stats) != 4 {
		t.Fatalf("%d tasks completed, want 4", len(stats))
	}
}

// TestNoSpotScheduleUntouchedBySource: arming a revocation source on a
// classless pool (no spot nodes) must not perturb the schedule at all.
func TestNoSpotScheduleUntouchedBySource(t *testing.T) {
	tasks := []Task{
		{ID: 0, Sys: sys(8, 8), Duration: 100},
		{ID: 1, Sys: sys(8, 8), Duration: 50},
		{ID: 2, Sys: sys(16, 16), Duration: 25},
	}
	plain := New(testPool(t, 1, 16, 32), FIFO(), 0)
	want := run(t, plain, tasks)
	armed := New(testPool(t, 1, 16, 32), FIFO(), 0)
	armed.SetRevocations(ec2.NewSpotProcess(7, []float64{1000}, 30))
	got := run(t, armed, tasks)
	for id := range want {
		if want[id] != got[id] {
			t.Fatalf("task %d diverged with an armed source on a spotless pool: %+v vs %+v",
				id, got[id], want[id])
		}
	}
}
