package sched

import (
	"fmt"
	"math"
)

// Policy names accepted by ByName (and re-exported by the pipetune facade).
const (
	NameFIFO     = "fifo"
	NameSJF      = "sjf"
	NameBackfill = "backfill"
)

// PickContext is the read-only view a Policy decides from. The engine calls
// Pick only when at least one admission slot is free; the policy chooses
// which queued task (by index) starts next, or -1 to admit nothing yet.
type PickContext struct {
	// Now is the current simulated time.
	Now float64
	// Queue holds the waiting tasks in submission order.
	Queue []Task
	// FitsNow reports whether Queue[i]'s footprint could be placed
	// immediately.
	FitsNow func(i int) bool
	// EarliestStart returns the earliest time Queue[i] could start if no
	// further tasks were admitted, assuming the running set releases its
	// resources at the known completion times. It returns +Inf only if the
	// task could never fit (which Submit already rejects).
	EarliestStart func(i int) float64
}

// Policy selects the next queued task to place on the cluster.
// Implementations must be deterministic: identical contexts must yield
// identical picks, since the whole simulation's reproducibility rests on it.
type Policy interface {
	Name() string
	Pick(ctx *PickContext) int
}

// ByName resolves a policy from its name.
func ByName(name string) (Policy, error) {
	switch name {
	case NameFIFO:
		return FIFO(), nil
	case NameSJF:
		return SJF(), nil
	case NameBackfill:
		return Backfill(), nil
	default:
		return nil, fmt.Errorf("sched: unknown policy %q (want %s, %s or %s)",
			name, NameFIFO, NameSJF, NameBackfill)
	}
}

// ------------------------------------------------------------------ FIFO ---

type fifoPolicy struct{}

// FIFO returns strict first-in-first-out placement with head-of-line
// blocking: the oldest task starts as soon as its footprint fits, and
// nothing overtakes it. This is the paper's §5.1 job scheduling and the
// exact admission order of the old barrier scheduler, which keeps the two
// schedulers' makespans identical on identical inputs.
func FIFO() Policy { return fifoPolicy{} }

func (fifoPolicy) Name() string { return NameFIFO }

func (fifoPolicy) Pick(ctx *PickContext) int {
	if len(ctx.Queue) == 0 || !ctx.FitsNow(0) {
		return -1
	}
	return 0
}

// ------------------------------------------------------------------- SJF ---

type sjfPolicy struct{}

// SJF returns shortest-job-first placement: among the queued tasks that fit
// right now, the one with the smallest duration starts (ties resolve to the
// oldest). SJF minimises mean response time on a single server but may
// starve long tasks under sustained load.
func SJF() Policy { return sjfPolicy{} }

func (sjfPolicy) Name() string { return NameSJF }

func (sjfPolicy) Pick(ctx *PickContext) int {
	best := -1
	for i := range ctx.Queue {
		if !ctx.FitsNow(i) {
			continue
		}
		if best < 0 || ctx.Queue[i].Duration < ctx.Queue[best].Duration {
			best = i
		}
	}
	return best
}

// -------------------------------------------------------------- backfill ---

type backfillPolicy struct{}

// Backfill returns conservative EASY backfilling: FIFO order, but when the
// head task does not fit, a younger task may start provided it fits now and
// completes no later than the head's shadow time — the earliest instant the
// head could start given the running set's known end times and scheduled
// resize events. Every borrowed resource is returned by the shadow time,
// so the head is never delayed relative to FIFO. Only the head carries
// that guarantee (classic EASY): tasks deeper in the queue can start later
// than under FIFO, so aggregate metrics like mean response usually improve
// but are not bounded.
func Backfill() Policy { return backfillPolicy{} }

func (backfillPolicy) Name() string { return NameBackfill }

func (backfillPolicy) Pick(ctx *PickContext) int {
	if len(ctx.Queue) == 0 {
		return -1
	}
	if ctx.FitsNow(0) {
		return 0
	}
	shadow := ctx.EarliestStart(0)
	if math.IsInf(shadow, 1) {
		return -1
	}
	for i := 1; i < len(ctx.Queue); i++ {
		if ctx.FitsNow(i) && ctx.Now+ctx.Queue[i].Duration <= shadow {
			return i
		}
	}
	return -1
}

// Compile-time interface checks.
var (
	_ Policy = fifoPolicy{}
	_ Policy = sjfPolicy{}
	_ Policy = backfillPolicy{}
)
