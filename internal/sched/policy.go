package sched

import (
	"fmt"
	"math"

	"pipetune/internal/params"
)

// Policy names accepted by ByName (and re-exported by the pipetune facade).
const (
	NameFIFO          = "fifo"
	NameSJF           = "sjf"
	NameBackfill      = "backfill"
	NameCheapest      = "cheapest"
	NamePerfPerDollar = "perf-per-dollar"
)

// ClassInfo is one node class's live view inside a PickContext.
type ClassInfo struct {
	ClassCap
	// Nodes is the class's node count; UpNodes excludes revoked spot nodes
	// awaiting replacement.
	Nodes   int
	UpNodes int
	// FreeCores/FreeMemoryGB aggregate the class's currently unreserved
	// capacity across its up nodes.
	FreeCores    int
	FreeMemoryGB int
}

// PickContext is the read-only view a Policy decides from. The engine calls
// Pick only when at least one admission slot is free; the policy chooses
// which queued task (by index) starts next, or -1 to admit nothing yet.
type PickContext struct {
	// Now is the current simulated time.
	Now float64
	// Queue holds the waiting tasks in submission order.
	Queue []Task
	// FitsNow reports whether Queue[i]'s footprint could be placed
	// immediately (on any up node of any class).
	FitsNow func(i int) bool
	// EarliestStart returns the earliest time Queue[i] could start if no
	// further tasks were admitted, assuming the running set releases its
	// resources at the known completion times. It returns +Inf only if the
	// task could never fit (which Submit already rejects).
	EarliestStart func(i int) float64

	// The cost-aware placement axis. Classes is empty on classless pools,
	// in which case the per-class closures are nil.
	//
	// Classes lists the pool's node classes with live free capacity.
	Classes []ClassInfo
	// ClassFits reports whether Queue[i] currently fits a node of class c.
	ClassFits func(i, c int) bool
	// ClassDuration is Queue[i]'s predicted runtime on class c: its
	// costmodel-derived Duration divided by the class speed factor.
	ClassDuration func(i, c int) float64
	// ClassCost prices Queue[i] on class c in dollars:
	// ClassDuration(i,c)/3600 × the class's hourly rate.
	ClassCost func(i, c int) float64
}

// Policy selects the next queued task to place on the cluster.
// Implementations must be deterministic: identical contexts must yield
// identical picks, since the whole simulation's reproducibility rests on it.
type Policy interface {
	Name() string
	Pick(ctx *PickContext) int
}

// ClassChooser is the optional second placement axis: a Policy that also
// chooses *which node class* the picked task lands on. The engine consults
// it after Pick on pools with classes; returning -1 (or not implementing
// the interface) falls back to global first-fit across all nodes, the
// classless behaviour.
type ClassChooser interface {
	ChooseClass(ctx *PickContext, i int) int
}

// ByName resolves a policy from its name.
func ByName(name string) (Policy, error) {
	switch name {
	case NameFIFO:
		return FIFO(), nil
	case NameSJF:
		return SJF(), nil
	case NameBackfill:
		return Backfill(), nil
	case NameCheapest:
		return Cheapest(), nil
	case NamePerfPerDollar:
		return PerfPerDollar(), nil
	default:
		return nil, fmt.Errorf("sched: unknown policy %q (want %s, %s, %s, %s or %s)",
			name, NameFIFO, NameSJF, NameBackfill, NameCheapest, NamePerfPerDollar)
	}
}

// ------------------------------------------------------------------ FIFO ---

type fifoPolicy struct{}

// FIFO returns strict first-in-first-out placement with head-of-line
// blocking: the oldest task starts as soon as its footprint fits, and
// nothing overtakes it. This is the paper's §5.1 job scheduling and the
// exact admission order of the old barrier scheduler, which keeps the two
// schedulers' makespans identical on identical inputs.
func FIFO() Policy { return fifoPolicy{} }

func (fifoPolicy) Name() string { return NameFIFO }

func (fifoPolicy) Pick(ctx *PickContext) int {
	if len(ctx.Queue) == 0 || !ctx.FitsNow(0) {
		return -1
	}
	return 0
}

// ------------------------------------------------------------------- SJF ---

type sjfPolicy struct{}

// SJF returns shortest-job-first placement: among the queued tasks that fit
// right now, the one with the smallest duration starts (ties resolve to the
// oldest). SJF minimises mean response time on a single server but may
// starve long tasks under sustained load.
func SJF() Policy { return sjfPolicy{} }

func (sjfPolicy) Name() string { return NameSJF }

func (sjfPolicy) Pick(ctx *PickContext) int {
	best := -1
	for i := range ctx.Queue {
		if !ctx.FitsNow(i) {
			continue
		}
		if best < 0 || ctx.Queue[i].Duration < ctx.Queue[best].Duration {
			best = i
		}
	}
	return best
}

// -------------------------------------------------------------- backfill ---

type backfillPolicy struct{}

// Backfill returns conservative EASY backfilling: FIFO order, but when the
// head task does not fit, a younger task may start provided it fits now and
// completes no later than the head's shadow time — the earliest instant the
// head could start given the running set's known end times and scheduled
// resize events. Every borrowed resource is returned by the shadow time,
// so the head is never delayed relative to FIFO. Only the head carries
// that guarantee (classic EASY): tasks deeper in the queue can start later
// than under FIFO, so aggregate metrics like mean response usually improve
// but are not bounded.
func Backfill() Policy { return backfillPolicy{} }

func (backfillPolicy) Name() string { return NameBackfill }

func (backfillPolicy) Pick(ctx *PickContext) int {
	if len(ctx.Queue) == 0 {
		return -1
	}
	if ctx.FitsNow(0) {
		return 0
	}
	shadow := ctx.EarliestStart(0)
	if math.IsInf(shadow, 1) {
		return -1
	}
	for i := 1; i < len(ctx.Queue); i++ {
		if ctx.FitsNow(i) && ctx.Now+ctx.Queue[i].Duration <= shadow {
			return i
		}
	}
	return -1
}

// -------------------------------------------------- cost-aware placement ---

// Cheapest returns FIFO admission with cost-aware class choice: the oldest
// task starts as soon as it fits anywhere (head-of-line blocking, like
// FIFO), but lands on the node class with the lowest predicted dollar cost
// for it — duration/speed × hourly rate — among the classes with room
// right now. Ties resolve to the first class in declaration order. On a
// single-class (or classless) pool this is exactly FIFO.
func Cheapest() Policy { return cheapestPolicy{} }

type cheapestPolicy struct{}

func (cheapestPolicy) Name() string { return NameCheapest }

func (cheapestPolicy) Pick(ctx *PickContext) int {
	if len(ctx.Queue) == 0 || !ctx.FitsNow(0) {
		return -1
	}
	return 0
}

func (cheapestPolicy) ChooseClass(ctx *PickContext, i int) int {
	best, bestCost := -1, 0.0
	for c := range ctx.Classes {
		if !ctx.ClassFits(i, c) {
			continue
		}
		cost := ctx.ClassCost(i, c)
		if best < 0 || cost < bestCost {
			best, bestCost = c, cost
		}
	}
	return best
}

// PerfPerDollar returns FIFO admission with throughput-per-dollar class
// choice: among the classes with room, the picked task lands on the one
// maximising SpeedFactor/HourlyUSD (a free class — hourly rate 0 — is
// infinitely good and always preferred). Ties resolve to the first class
// in declaration order; single-class pools degrade to FIFO.
func PerfPerDollar() Policy { return perfPerDollarPolicy{} }

type perfPerDollarPolicy struct{}

func (perfPerDollarPolicy) Name() string { return NamePerfPerDollar }

func (perfPerDollarPolicy) Pick(ctx *PickContext) int {
	if len(ctx.Queue) == 0 || !ctx.FitsNow(0) {
		return -1
	}
	return 0
}

func (perfPerDollarPolicy) ChooseClass(ctx *PickContext, i int) int {
	best, bestVal := -1, 0.0
	for c := range ctx.Classes {
		if !ctx.ClassFits(i, c) {
			continue
		}
		cc := ctx.Classes[c].ClassCap
		val := math.Inf(1)
		if cc.HourlyUSD > 0 {
			val = cc.SpeedFactor / cc.HourlyUSD
		}
		if best < 0 || val > bestVal {
			best, bestVal = c, val
		}
	}
	return best
}

// PreferredClass evaluates a ClassChooser for one footprint on an idle
// pool: the class it would choose with every node free. The tuning layer
// stamps this deterministic pre-compute hint on exec assignments; actual
// placement is re-decided at simulated dispatch against live occupancy.
// Returns "" on classless pools or when nothing fits.
func PreferredClass(pool *Pool, ch ClassChooser, fp params.SysConfig, duration float64) string {
	if pool == nil || pool.NumClasses() == 0 {
		return ""
	}
	e := New(pool.clone(), nil, 0)
	e.queue = []*queued{{task: Task{Sys: fp, Duration: duration}, attempt: 1}}
	c := ch.ChooseClass(e.pickContext(), 0)
	if c < 0 {
		return ""
	}
	return pool.classes[c].Name
}

// Compile-time interface checks.
var (
	_ Policy       = fifoPolicy{}
	_ Policy       = sjfPolicy{}
	_ Policy       = backfillPolicy{}
	_ Policy       = cheapestPolicy{}
	_ Policy       = perfPerDollarPolicy{}
	_ ClassChooser = cheapestPolicy{}
	_ ClassChooser = perfPerDollarPolicy{}
)
