package cluster

import (
	"testing"

	"pipetune/internal/params"
	"pipetune/internal/xrand"
)

func BenchmarkSimulateFIFO(b *testing.B) {
	r := xrand.New(3)
	arrivals := PoissonArrivals(r, 500, 10)
	jobs := make([]Job, len(arrivals))
	for i, a := range arrivals {
		jobs[i] = Job{ID: i, Arrival: a, Duration: 25 + float64(i%7)*5}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateFIFO(jobs, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllocateRelease(b *testing.B) {
	c := Paper()
	sys := params.DefaultSysConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := c.Allocate(sys)
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Release(); err != nil {
			b.Fatal(err)
		}
	}
}
