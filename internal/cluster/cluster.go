// Package cluster models the deep-learning cluster of §5.1 and §7.1.1: N
// nodes with C cores and M GB of memory each, on which HPT jobs are
// scheduled FIFO. It provides the resource allocator used to place training
// trials; the discrete-event queueing simulation for the multi-tenancy
// experiments (§7.4) is served by the shared internal/sched engine, for
// which SimulateFIFO remains as a compatibility wrapper and SchedPool
// exports the cluster's node shapes.
package cluster

import (
	"errors"
	"fmt"

	"pipetune/internal/params"
	"pipetune/internal/sched"
	"pipetune/internal/xrand"
)

// ErrInsufficient is returned when no node can satisfy an allocation.
var ErrInsufficient = errors.New("cluster: insufficient resources")

// NodeSpec describes one node's capacity.
type NodeSpec struct {
	Cores    int `json:"cores"`
	MemoryGB int `json:"memoryGB"`
}

// node tracks live usage against its spec.
type node struct {
	spec      NodeSpec
	usedCores int
	usedMemGB int
}

// Cluster is a fixed set of nodes with first-fit allocation.
type Cluster struct {
	nodes []node
}

// New builds a homogeneous cluster.
func New(numNodes int, spec NodeSpec) (*Cluster, error) {
	if numNodes < 1 {
		return nil, fmt.Errorf("cluster: %d nodes invalid", numNodes)
	}
	if spec.Cores < 1 || spec.MemoryGB < 1 {
		return nil, fmt.Errorf("cluster: invalid node spec %+v", spec)
	}
	c := &Cluster{nodes: make([]node, numNodes)}
	for i := range c.nodes {
		c.nodes[i].spec = spec
	}
	return c, nil
}

// Paper returns the §7.1.1 distributed testbed: 4 nodes of quad-socket
// E3-1275 machines (8 cores per CPU ⇒ 32 cores) with 64 GiB of RAM.
func Paper() *Cluster {
	c, err := New(4, NodeSpec{Cores: 32, MemoryGB: 64})
	if err != nil {
		// Static configuration; failure is a programming error.
		panic(err)
	}
	return c
}

// SingleNode returns the §7.1.1 Type-III testbed: one E5-2620 node with
// 8 cores and 24 GB of RAM.
func SingleNode() *Cluster {
	c, err := New(1, NodeSpec{Cores: 8, MemoryGB: 24})
	if err != nil {
		panic(err)
	}
	return c
}

// NumNodes returns the node count.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// Clone returns an empty (fully free) cluster with the same node shapes —
// used by schedulers that need a scratch occupancy model.
func (c *Cluster) Clone() *Cluster {
	out := &Cluster{nodes: make([]node, len(c.nodes))}
	for i := range c.nodes {
		out.nodes[i].spec = c.nodes[i].spec
	}
	return out
}

// TotalCores returns the cluster-wide core capacity.
func (c *Cluster) TotalCores() int {
	total := 0
	for _, n := range c.nodes {
		total += n.spec.Cores
	}
	return total
}

// FreeCores returns currently unallocated cores across the cluster.
func (c *Cluster) FreeCores() int {
	total := 0
	for _, n := range c.nodes {
		total += n.spec.Cores - n.usedCores
	}
	return total
}

// Alloc is a granted reservation. Release it exactly once.
type Alloc struct {
	c        *Cluster
	node     int
	sys      params.SysConfig
	released bool
}

// Node returns the index of the node hosting the allocation.
func (a *Alloc) Node() int { return a.node }

// Sys returns the reserved resources.
func (a *Alloc) Sys() params.SysConfig { return a.sys }

// Release returns the resources to the cluster. Releasing twice is an
// error (a lifecycle bug in the caller).
func (a *Alloc) Release() error {
	if a.released {
		return errors.New("cluster: double release")
	}
	a.released = true
	n := &a.c.nodes[a.node]
	n.usedCores -= a.sys.Cores
	n.usedMemGB -= a.sys.MemoryGB
	return nil
}

// Allocate reserves sys on the first node with enough free capacity.
// Trials never span nodes (BigDL pins each trial's executors together).
func (c *Cluster) Allocate(sys params.SysConfig) (*Alloc, error) {
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	for i := range c.nodes {
		n := &c.nodes[i]
		if n.spec.Cores-n.usedCores >= sys.Cores && n.spec.MemoryGB-n.usedMemGB >= sys.MemoryGB {
			n.usedCores += sys.Cores
			n.usedMemGB += sys.MemoryGB
			return &Alloc{c: c, node: i, sys: sys}, nil
		}
	}
	return nil, ErrInsufficient
}

// SchedPool exports the cluster's node shapes as an empty internal/sched
// occupancy pool — the occupancy model the event-driven trial scheduler
// places footprints on (first-fit, never spanning nodes, exactly like
// Allocate).
func (c *Cluster) SchedPool() *sched.Pool {
	caps := make([]sched.NodeCap, len(c.nodes))
	for i, n := range c.nodes {
		caps[i] = sched.NodeCap{Cores: n.spec.Cores, MemoryGB: n.spec.MemoryGB}
	}
	p, err := sched.NewPool(caps)
	if err != nil {
		// Cluster construction already validated the shapes.
		panic(err)
	}
	return p
}

// Fits reports whether sys could ever be allocated on an empty cluster.
func (c *Cluster) Fits(sys params.SysConfig) bool {
	for _, n := range c.nodes {
		if n.spec.Cores >= sys.Cores && n.spec.MemoryGB >= sys.MemoryGB {
			return true
		}
	}
	return false
}

// Job is one unit of work for the FIFO queueing simulation: it arrives at
// Arrival (seconds) and occupies one job slot for Duration once started.
type Job struct {
	ID       int     `json:"id"`
	Arrival  float64 `json:"arrival"`
	Duration float64 `json:"duration"`
}

// JobStats reports one job's queueing outcome.
type JobStats struct {
	ID       int     `json:"id"`
	Arrival  float64 `json:"arrival"`
	Start    float64 `json:"start"`
	End      float64 `json:"end"`
	Wait     float64 `json:"wait"`     // Start - Arrival
	Response float64 `json:"response"` // End - Arrival
}

// SimulateFIFO runs the jobs through a FIFO queue with `slots` parallel
// servers (one HPT job per cluster in the paper's single-tenancy, multiple
// slots when the cluster is shared) and returns per-job statistics in job
// order. The paper schedules HPT jobs FIFO (§5.1). The simulation is the
// shared internal/sched engine under its FIFO policy; use sched.Simulate
// directly to compare other placement policies.
func SimulateFIFO(jobs []Job, slots int) ([]JobStats, error) {
	for _, j := range jobs {
		if j.Duration < 0 || j.Arrival < 0 {
			return nil, fmt.Errorf("cluster: job %d has negative time", j.ID)
		}
	}
	tasks := make([]sched.Task, len(jobs))
	for i, j := range jobs {
		tasks[i] = sched.Task{ID: j.ID, Arrival: j.Arrival, Duration: j.Duration}
	}
	st, err := sched.Simulate(tasks, slots, sched.FIFO())
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	out := make([]JobStats, len(jobs))
	for i, s := range st {
		out[i] = JobStats{
			ID:       s.ID,
			Arrival:  s.Arrival,
			Start:    s.Start,
			End:      s.End,
			Wait:     s.Wait,
			Response: s.Response,
		}
	}
	return out, nil
}

// MeanResponse averages the response times.
func MeanResponse(stats []JobStats) float64 {
	if len(stats) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range stats {
		sum += s.Response
	}
	return sum / float64(len(stats))
}

// PoissonArrivals generates n arrival times with exponentially distributed
// inter-arrival gaps of the given mean (§7.4: "jobs arrive randomly with
// the interarrival times being exponentially distributed").
func PoissonArrivals(r *xrand.Source, n int, meanGap float64) []float64 {
	out := make([]float64, n)
	t := 0.0
	for i := range out {
		t += r.ExpFloat64() * meanGap
		out[i] = t
	}
	return out
}
