// Package cluster models the deep-learning cluster of §5.1 and §7.1.1: a
// typed node plane on which HPT jobs are scheduled. The homogeneous
// testbed of the paper (N nodes with C cores and M GB each) is the
// single-class special case; NewClasses builds heterogeneous fleets whose
// classes carry distinct core/memory shapes, relative speed, pricing and —
// for spot capacity — a revocation rate, seeded from the three ec2
// instance shapes of Figure 1. It provides the resource allocator used to
// place training trials; the discrete-event queueing simulation for the
// multi-tenancy experiments (§7.4) is served by the shared internal/sched
// engine, for which SimulateFIFO remains as a compatibility wrapper and
// SchedPool exports the cluster's node shapes and classes.
package cluster

import (
	"errors"
	"fmt"
	"math"

	"pipetune/internal/ec2"
	"pipetune/internal/energy"
	"pipetune/internal/params"
	"pipetune/internal/sched"
	"pipetune/internal/xrand"
)

// ErrInsufficient is returned when no node can satisfy an allocation.
// Failures carry an *InsufficientError wrapping it, so errors.Is keeps
// working while the message names what did not fit.
var ErrInsufficient = errors.New("cluster: insufficient resources")

// NodeSpec describes one node's capacity.
type NodeSpec struct {
	Cores    int `json:"cores"`
	MemoryGB int `json:"memoryGB"`
}

// NodeClass is one class of a (possibly heterogeneous) cluster: Count
// nodes sharing a shape, a relative speed, a price and — when Spot — a
// revocation process.
type NodeClass struct {
	// Name labels the class in placement decisions, metrics and the API.
	// The legacy homogeneous constructors use the empty name, which keeps
	// their records and wire bodies byte-identical to the pre-class era.
	Name string   `json:"name"`
	Spec NodeSpec `json:"spec"`
	// Count is the number of nodes of this class.
	Count int `json:"count"`
	// SpeedFactor scales trial throughput relative to the reference node
	// (m4.4xlarge = 1): a trial's simulated duration divides by it. 0 is
	// normalised to 1 at construction.
	SpeedFactor float64 `json:"speedFactor,omitempty"`
	// HourlyUSD is the class's per-node rate — on-demand or spot,
	// whichever market the class is provisioned from.
	HourlyUSD float64 `json:"hourlyUSD,omitempty"`
	// Spot marks revocable capacity; RevocationsPerHour is each node's
	// Poisson revocation rate in simulated hours.
	Spot               bool    `json:"spot,omitempty"`
	RevocationsPerHour float64 `json:"revocationsPerHour,omitempty"`
	// PerfScale scales PMU profile rates relative to the reference node —
	// reporting metadata for per-class performance accounting. 0 is
	// normalised to 1.
	PerfScale float64 `json:"perfScale,omitempty"`
	// Power is the class's power model; the zero value selects
	// energy.DefaultPowerModel at use sites (experiments' fleet-energy
	// accounting).
	Power energy.PowerModel `json:"-"`
}

// PowerModel returns the class's power model, defaulting when unset.
func (nc NodeClass) PowerModel() energy.PowerModel {
	if nc.Power == (energy.PowerModel{}) {
		return energy.DefaultPowerModel()
	}
	return nc.Power
}

// ClassStatus is one class's row in fleet/health reporting: the node-class
// composition surfaced by /healthz and GET /v1/fleet.
type ClassStatus struct {
	Name               string  `json:"name"`
	Count              int     `json:"count"`
	Cores              int     `json:"cores"`
	MemoryGB           int     `json:"memoryGB"`
	Spot               bool    `json:"spot,omitempty"`
	SpeedFactor        float64 `json:"speedFactor,omitempty"`
	HourlyUSD          float64 `json:"hourlyUSD,omitempty"`
	RevocationsPerHour float64 `json:"revocationsPerHour,omitempty"`
}

// node tracks live usage against its spec.
type node struct {
	spec      NodeSpec
	class     int // index into classes
	usedCores int
	usedMemGB int
}

// Cluster is a fixed set of nodes with first-fit allocation, grouped into
// classes. Node order is class declaration order, which makes first-fit
// placement on a single-class cluster identical to the pre-class
// allocator.
type Cluster struct {
	nodes   []node
	classes []NodeClass
}

// New builds a homogeneous cluster: one unnamed class, speed 1, free —
// the pre-class behaviour, bit-identical in every record and wire body.
func New(numNodes int, spec NodeSpec) (*Cluster, error) {
	return NewClasses([]NodeClass{{Spec: spec, Count: numNodes}})
}

// NewClasses builds a cluster from node classes, in declaration order.
func NewClasses(classes []NodeClass) (*Cluster, error) {
	if len(classes) == 0 {
		return nil, errors.New("cluster: no node classes")
	}
	c := &Cluster{classes: make([]NodeClass, len(classes))}
	for ci, nc := range classes {
		if nc.Count < 1 {
			return nil, fmt.Errorf("cluster: class %q: %d nodes invalid", nc.Name, nc.Count)
		}
		if nc.Spec.Cores < 1 || nc.Spec.MemoryGB < 1 {
			return nil, fmt.Errorf("cluster: class %q: invalid node spec %+v", nc.Name, nc.Spec)
		}
		if nc.SpeedFactor < 0 || nc.RevocationsPerHour < 0 || nc.HourlyUSD < 0 {
			return nil, fmt.Errorf("cluster: class %q: negative speed, rate or price", nc.Name)
		}
		if nc.SpeedFactor == 0 {
			nc.SpeedFactor = 1
		}
		if nc.PerfScale == 0 {
			nc.PerfScale = 1
		}
		c.classes[ci] = nc
		for i := 0; i < nc.Count; i++ {
			c.nodes = append(c.nodes, node{spec: nc.Spec, class: ci})
		}
	}
	return c, nil
}

// EC2Fleet builds the Figure 1 heterogeneous fleet: nodesPerShape nodes of
// each of the three instance shapes, with spotFraction of each shape
// (rounded) provisioned from the spot market at its discounted rate and
// revocationsPerHour per-node revocation rate. spotFraction 0 yields a
// purely on-demand fleet.
func EC2Fleet(nodesPerShape int, spotFraction, revocationsPerHour float64) ([]NodeClass, error) {
	if nodesPerShape < 1 {
		return nil, fmt.Errorf("cluster: %d nodes per shape invalid", nodesPerShape)
	}
	if spotFraction < 0 || spotFraction > 1 {
		return nil, fmt.Errorf("cluster: spot fraction %v outside [0,1]", spotFraction)
	}
	var out []NodeClass
	for _, it := range ec2.All() {
		spec, err := ec2.SpecFor(it)
		if err != nil {
			return nil, err
		}
		shape := NodeSpec{Cores: spec.VCPUs, MemoryGB: spec.MemoryGB}
		spot := int(math.Round(float64(nodesPerShape) * spotFraction))
		if onDemand := nodesPerShape - spot; onDemand > 0 {
			out = append(out, NodeClass{
				Name:        it.String(),
				Spec:        shape,
				Count:       onDemand,
				SpeedFactor: spec.SpeedFactor,
				HourlyUSD:   spec.HourlyUSD,
			})
		}
		if spot > 0 {
			out = append(out, NodeClass{
				Name:               it.String() + "-spot",
				Spec:               shape,
				Count:              spot,
				SpeedFactor:        spec.SpeedFactor,
				HourlyUSD:          spec.SpotHourlyUSD,
				Spot:               true,
				RevocationsPerHour: revocationsPerHour,
			})
		}
	}
	return out, nil
}

// Paper returns the §7.1.1 distributed testbed: 4 nodes of quad-socket
// E3-1275 machines (8 cores per CPU ⇒ 32 cores) with 64 GiB of RAM.
func Paper() *Cluster {
	c, err := New(4, NodeSpec{Cores: 32, MemoryGB: 64})
	if err != nil {
		// Static configuration; failure is a programming error.
		panic(err)
	}
	return c
}

// SingleNode returns the §7.1.1 Type-III testbed: one E5-2620 node with
// 8 cores and 24 GB of RAM.
func SingleNode() *Cluster {
	c, err := New(1, NodeSpec{Cores: 8, MemoryGB: 24})
	if err != nil {
		panic(err)
	}
	return c
}

// NumNodes returns the node count.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// Classes returns the cluster's node classes in declaration order.
func (c *Cluster) Classes() []NodeClass {
	out := make([]NodeClass, len(c.classes))
	copy(out, c.classes)
	return out
}

// Status reports the node-class composition for health/fleet surfaces.
func (c *Cluster) Status() []ClassStatus {
	out := make([]ClassStatus, len(c.classes))
	for i, nc := range c.classes {
		out[i] = ClassStatus{
			Name:               nc.Name,
			Count:              nc.Count,
			Cores:              nc.Spec.Cores,
			MemoryGB:           nc.Spec.MemoryGB,
			Spot:               nc.Spot,
			SpeedFactor:        nc.SpeedFactor,
			HourlyUSD:          nc.HourlyUSD,
			RevocationsPerHour: nc.RevocationsPerHour,
		}
	}
	return out
}

// SpotCounts returns the spot and on-demand node counts.
func (c *Cluster) SpotCounts() (spot, onDemand int) {
	for _, nc := range c.classes {
		if nc.Spot {
			spot += nc.Count
		} else {
			onDemand += nc.Count
		}
	}
	return spot, onDemand
}

// SpotRevocationRates returns every node's revocation rate (per simulated
// hour; 0 for on-demand nodes) in node order, or nil when the cluster has
// no revocable capacity — the input to an ec2.SpotProcess.
func (c *Cluster) SpotRevocationRates() []float64 {
	any := false
	rates := make([]float64, len(c.nodes))
	for i, n := range c.nodes {
		nc := c.classes[n.class]
		if nc.Spot && nc.RevocationsPerHour > 0 {
			rates[i] = nc.RevocationsPerHour
			any = true
		}
	}
	if !any {
		return nil
	}
	return rates
}

// HourlyUSD is the fleet's aggregate per-hour price: what keeping every
// node provisioned for one hour costs.
func (c *Cluster) HourlyUSD() float64 {
	total := 0.0
	for _, nc := range c.classes {
		total += float64(nc.Count) * nc.HourlyUSD
	}
	return total
}

// Clone returns an empty (fully free) cluster with the same node shapes
// and classes — used by schedulers that need a scratch occupancy model.
func (c *Cluster) Clone() *Cluster {
	out := &Cluster{
		nodes:   make([]node, len(c.nodes)),
		classes: make([]NodeClass, len(c.classes)),
	}
	copy(out.classes, c.classes)
	for i := range c.nodes {
		out.nodes[i].spec = c.nodes[i].spec
		out.nodes[i].class = c.nodes[i].class
	}
	return out
}

// TotalCores returns the cluster-wide core capacity.
func (c *Cluster) TotalCores() int {
	total := 0
	for _, n := range c.nodes {
		total += n.spec.Cores
	}
	return total
}

// FreeCores returns currently unallocated cores across the cluster.
func (c *Cluster) FreeCores() int {
	total := 0
	for _, n := range c.nodes {
		total += n.spec.Cores - n.usedCores
	}
	return total
}

// InsufficientError is a failed allocation or fit check: it names what was
// requested and the best any node could offer, so the operator sees the
// shortfall instead of a bare "insufficient resources". It wraps
// ErrInsufficient, keeping errors.Is checks working.
type InsufficientError struct {
	// Requested is the footprint that did not fit.
	Requested params.SysConfig
	// FreeCores/FreeMemoryGB are the most free cores and memory any single
	// node offers right now (for Allocate failures), or the largest node
	// shape (for Fits failures, where Capacity is true).
	FreeCores    int
	FreeMemoryGB int
	// Capacity marks a shape failure: the footprint exceeds every node
	// even on an empty cluster.
	Capacity bool
}

// Error implements error.
func (e *InsufficientError) Error() string {
	if e.Capacity {
		return fmt.Sprintf("cluster: insufficient resources: %dc/%dGB exceeds every node shape (largest node %dc/%dGB)",
			e.Requested.Cores, e.Requested.MemoryGB, e.FreeCores, e.FreeMemoryGB)
	}
	return fmt.Sprintf("cluster: insufficient resources: requested %dc/%dGB, best free node offers %dc/%dGB",
		e.Requested.Cores, e.Requested.MemoryGB, e.FreeCores, e.FreeMemoryGB)
}

// Unwrap links the failure to ErrInsufficient.
func (e *InsufficientError) Unwrap() error { return ErrInsufficient }

// Alloc is a granted reservation. Release it exactly once.
type Alloc struct {
	c        *Cluster
	node     int
	sys      params.SysConfig
	released bool
}

// Node returns the index of the node hosting the allocation.
func (a *Alloc) Node() int { return a.node }

// Class returns the node class hosting the allocation.
func (a *Alloc) Class() NodeClass { return a.c.classes[a.c.nodes[a.node].class] }

// Sys returns the reserved resources.
func (a *Alloc) Sys() params.SysConfig { return a.sys }

// Release returns the resources to the cluster. Releasing twice is an
// error (a lifecycle bug in the caller).
func (a *Alloc) Release() error {
	if a.released {
		return errors.New("cluster: double release")
	}
	a.released = true
	n := &a.c.nodes[a.node]
	n.usedCores -= a.sys.Cores
	n.usedMemGB -= a.sys.MemoryGB
	return nil
}

// Allocate reserves sys on the first node with enough free capacity.
// Trials never span nodes (BigDL pins each trial's executors together).
// Node order is class declaration order, so on a single-class cluster
// this is exactly the pre-class first-fit. Failure returns an
// *InsufficientError naming the requested footprint against the best free
// node.
func (c *Cluster) Allocate(sys params.SysConfig) (*Alloc, error) {
	if err := sys.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	bestCores, bestMem := 0, 0
	for i := range c.nodes {
		n := &c.nodes[i]
		freeCores, freeMem := n.spec.Cores-n.usedCores, n.spec.MemoryGB-n.usedMemGB
		if freeCores >= sys.Cores && freeMem >= sys.MemoryGB {
			n.usedCores += sys.Cores
			n.usedMemGB += sys.MemoryGB
			return &Alloc{c: c, node: i, sys: sys}, nil
		}
		if freeCores > bestCores {
			bestCores = freeCores
		}
		if freeMem > bestMem {
			bestMem = freeMem
		}
	}
	return nil, &InsufficientError{Requested: sys, FreeCores: bestCores, FreeMemoryGB: bestMem}
}

// SchedPool exports the cluster's node shapes and classes as an empty
// internal/sched occupancy pool — the occupancy model the event-driven
// trial scheduler places footprints on (first-fit, never spanning nodes,
// exactly like Allocate), with per-node class metadata for cost-aware
// placement and spot revocation.
func (c *Cluster) SchedPool() *sched.Pool {
	caps := make([]sched.NodeCap, len(c.nodes))
	nodeClass := make([]int, len(c.nodes))
	for i, n := range c.nodes {
		caps[i] = sched.NodeCap{Cores: n.spec.Cores, MemoryGB: n.spec.MemoryGB}
		nodeClass[i] = n.class
	}
	classes := make([]sched.ClassCap, len(c.classes))
	for i, nc := range c.classes {
		classes[i] = sched.ClassCap{
			Name:               nc.Name,
			Spot:               nc.Spot,
			SpeedFactor:        nc.SpeedFactor,
			HourlyUSD:          nc.HourlyUSD,
			RevocationsPerHour: nc.RevocationsPerHour,
		}
	}
	p, err := sched.NewPoolClasses(caps, nodeClass, classes)
	if err != nil {
		// Cluster construction already validated the shapes.
		panic(err)
	}
	return p
}

// Fits reports whether sys could ever be allocated on an empty cluster.
func (c *Cluster) Fits(sys params.SysConfig) bool {
	return c.FitsErr(sys) == nil
}

// FitsErr is Fits with a structured failure: nil when sys fits some node
// shape, otherwise an *InsufficientError naming the request against the
// largest node.
func (c *Cluster) FitsErr(sys params.SysConfig) error {
	maxCores, maxMem := 0, 0
	for _, n := range c.nodes {
		if n.spec.Cores >= sys.Cores && n.spec.MemoryGB >= sys.MemoryGB {
			return nil
		}
		if n.spec.Cores > maxCores {
			maxCores = n.spec.Cores
		}
		if n.spec.MemoryGB > maxMem {
			maxMem = n.spec.MemoryGB
		}
	}
	return &InsufficientError{Requested: sys, FreeCores: maxCores, FreeMemoryGB: maxMem, Capacity: true}
}

// Job is one unit of work for the FIFO queueing simulation: it arrives at
// Arrival (seconds) and occupies one job slot for Duration once started.
type Job struct {
	ID       int     `json:"id"`
	Arrival  float64 `json:"arrival"`
	Duration float64 `json:"duration"`
}

// JobStats reports one job's queueing outcome.
type JobStats struct {
	ID       int     `json:"id"`
	Arrival  float64 `json:"arrival"`
	Start    float64 `json:"start"`
	End      float64 `json:"end"`
	Wait     float64 `json:"wait"`     // Start - Arrival
	Response float64 `json:"response"` // End - Arrival
}

// SimulateFIFO runs the jobs through a FIFO queue with `slots` parallel
// servers (one HPT job per cluster in the paper's single-tenancy, multiple
// slots when the cluster is shared) and returns per-job statistics in job
// order. The paper schedules HPT jobs FIFO (§5.1). The simulation is the
// shared internal/sched engine under its FIFO policy; use sched.Simulate
// directly to compare other placement policies.
func SimulateFIFO(jobs []Job, slots int) ([]JobStats, error) {
	for _, j := range jobs {
		if j.Duration < 0 || j.Arrival < 0 {
			return nil, fmt.Errorf("cluster: job %d has negative time", j.ID)
		}
	}
	tasks := make([]sched.Task, len(jobs))
	for i, j := range jobs {
		tasks[i] = sched.Task{ID: j.ID, Arrival: j.Arrival, Duration: j.Duration}
	}
	st, err := sched.Simulate(tasks, slots, sched.FIFO())
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	out := make([]JobStats, len(jobs))
	for i, s := range st {
		out[i] = JobStats{
			ID:       s.ID,
			Arrival:  s.Arrival,
			Start:    s.Start,
			End:      s.End,
			Wait:     s.Wait,
			Response: s.Response,
		}
	}
	return out, nil
}

// MeanResponse averages the response times.
func MeanResponse(stats []JobStats) float64 {
	if len(stats) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range stats {
		sum += s.Response
	}
	return sum / float64(len(stats))
}

// PoissonArrivals generates n arrival times with exponentially distributed
// inter-arrival gaps of the given mean (§7.4: "jobs arrive randomly with
// the interarrival times being exponentially distributed").
func PoissonArrivals(r *xrand.Source, n int, meanGap float64) []float64 {
	out := make([]float64, n)
	t := 0.0
	for i := range out {
		t += r.ExpFloat64() * meanGap
		out[i] = t
	}
	return out
}
