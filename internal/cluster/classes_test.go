package cluster

import (
	"errors"
	"math"
	"strings"
	"testing"

	"pipetune/internal/params"
)

// TestAllocateNamesShortfall: a failed allocation must say what was
// requested and the best any free node offers — not a bare "insufficient
// resources" — while errors.Is(err, ErrInsufficient) keeps working.
func TestAllocateNamesShortfall(t *testing.T) {
	c, err := New(2, NodeSpec{Cores: 16, MemoryGB: 32})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Allocate(params.SysConfig{Cores: 12, MemoryGB: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Allocate(params.SysConfig{Cores: 10, MemoryGB: 8}); err != nil {
		t.Fatal(err)
	}
	_, err = c.Allocate(params.SysConfig{Cores: 8, MemoryGB: 16})
	if !errors.Is(err, ErrInsufficient) {
		t.Fatalf("error %v does not unwrap to ErrInsufficient", err)
	}
	var ins *InsufficientError
	if !errors.As(err, &ins) {
		t.Fatalf("error %T is not an *InsufficientError", err)
	}
	if ins.Requested != (params.SysConfig{Cores: 8, MemoryGB: 16}) || ins.Capacity {
		t.Fatalf("wrong failure recorded: %+v", ins)
	}
	// Node 0 has 4 free cores, node 1 has 6; both have 24 GB free.
	if ins.FreeCores != 6 || ins.FreeMemoryGB != 24 {
		t.Fatalf("best-free = %dc/%dGB, want 6c/24GB", ins.FreeCores, ins.FreeMemoryGB)
	}
	msg := err.Error()
	if !strings.Contains(msg, "requested 8c/16GB") || !strings.Contains(msg, "6c/24GB") {
		t.Fatalf("message does not name the shortfall: %q", msg)
	}
}

// TestFitsErrNamesLargestShape: shape failures (the footprint exceeds
// every node even empty) are marked Capacity and name the largest node.
func TestFitsErrNamesLargestShape(t *testing.T) {
	c := Paper() // 4 nodes of 32c/64GB
	err := c.FitsErr(params.SysConfig{Cores: 48, MemoryGB: 8})
	if !errors.Is(err, ErrInsufficient) {
		t.Fatalf("error %v does not unwrap to ErrInsufficient", err)
	}
	var ins *InsufficientError
	if !errors.As(err, &ins) || !ins.Capacity {
		t.Fatalf("shape failure not marked Capacity: %+v", err)
	}
	if ins.FreeCores != 32 || ins.FreeMemoryGB != 64 {
		t.Fatalf("largest shape = %dc/%dGB, want 32c/64GB", ins.FreeCores, ins.FreeMemoryGB)
	}
	if !strings.Contains(err.Error(), "exceeds every node shape") {
		t.Fatalf("message does not mark the shape failure: %q", err)
	}
	if got := c.FitsErr(params.SysConfig{Cores: 32, MemoryGB: 64}); got != nil {
		t.Fatalf("full-node footprint rejected: %v", got)
	}
}

func TestNewClassesValidation(t *testing.T) {
	good := NodeClass{Name: "a", Spec: NodeSpec{Cores: 8, MemoryGB: 16}, Count: 1}
	cases := []struct {
		name    string
		classes []NodeClass
	}{
		{"empty", nil},
		{"zero-count", []NodeClass{{Name: "a", Spec: NodeSpec{Cores: 8, MemoryGB: 16}}}},
		{"bad-spec", []NodeClass{{Name: "a", Spec: NodeSpec{Cores: 0, MemoryGB: 16}, Count: 1}}},
		{"negative-speed", []NodeClass{func() NodeClass { c := good; c.SpeedFactor = -1; return c }()}},
		{"negative-price", []NodeClass{func() NodeClass { c := good; c.HourlyUSD = -1; return c }()}},
		{"negative-rate", []NodeClass{func() NodeClass { c := good; c.RevocationsPerHour = -1; return c }()}},
	}
	for _, tc := range cases {
		if _, err := NewClasses(tc.classes); err == nil {
			t.Errorf("%s: invalid class set accepted", tc.name)
		}
	}
	if _, err := NewClasses([]NodeClass{good}); err != nil {
		t.Fatalf("valid class rejected: %v", err)
	}
}

// TestEC2FleetComposition: the Figure 1 fleet splits each shape into
// on-demand and spot classes, prices them at their market rates, and
// exposes per-node revocation rates for the spot process.
func TestEC2FleetComposition(t *testing.T) {
	classes, err := EC2Fleet(2, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 6 {
		t.Fatalf("%d classes, want 3 shapes x {on-demand, spot}", len(classes))
	}
	c, err := NewClasses(classes)
	if err != nil {
		t.Fatal(err)
	}
	spot, onDemand := c.SpotCounts()
	if spot != 3 || onDemand != 3 {
		t.Fatalf("spot/on-demand = %d/%d, want 3/3", spot, onDemand)
	}
	rates := c.SpotRevocationRates()
	if len(rates) != c.NumNodes() {
		t.Fatalf("%d rates for %d nodes", len(rates), c.NumNodes())
	}
	for i, r := range rates {
		want := 0.0
		if i%2 == 1 { // each shape contributes one on-demand then one spot node
			want = 4
		}
		if r != want {
			t.Fatalf("node %d rate %v, want %v", i, r, want)
		}
	}
	// 0.80+0.24 + 2.304+0.6912 + 4.608+1.3824 $/h across the six nodes.
	if got := c.HourlyUSD(); math.Abs(got-10.0256) > 1e-9 {
		t.Fatalf("fleet rate %v $/h, want 10.0256", got)
	}
	// Spot classes must be strictly cheaper than their on-demand shape.
	for i := 0; i < len(classes); i += 2 {
		od, sp := classes[i], classes[i+1]
		if !sp.Spot || od.Spot || sp.HourlyUSD >= od.HourlyUSD {
			t.Fatalf("shape %d market split wrong: %+v vs %+v", i/2, od, sp)
		}
		if sp.Spec != od.Spec || sp.SpeedFactor != od.SpeedFactor {
			t.Fatalf("spot class %q changed the hardware: %+v vs %+v", sp.Name, sp, od)
		}
	}

	allOD, err := EC2Fleet(1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(allOD) != 3 {
		t.Fatalf("all-on-demand fleet has %d classes, want 3", len(allOD))
	}
	cOD, err := NewClasses(allOD)
	if err != nil {
		t.Fatal(err)
	}
	if rates := cOD.SpotRevocationRates(); rates != nil {
		t.Fatalf("on-demand fleet reports revocation rates: %v", rates)
	}

	if _, err := EC2Fleet(0, 0, 0); err == nil {
		t.Error("zero nodes per shape accepted")
	}
	if _, err := EC2Fleet(1, 1.5, 0); err == nil {
		t.Error("spot fraction > 1 accepted")
	}
}

// TestStatusReportsClasses: the health/fleet surface mirrors the class
// declarations, and the legacy constructors surface one anonymous class.
func TestStatusReportsClasses(t *testing.T) {
	c, err := NewClasses([]NodeClass{
		{Name: "a", Spec: NodeSpec{Cores: 8, MemoryGB: 16}, Count: 2, HourlyUSD: 0.5},
		{Name: "b", Spec: NodeSpec{Cores: 32, MemoryGB: 64}, Count: 1,
			Spot: true, SpeedFactor: 2, RevocationsPerHour: 1, HourlyUSD: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := c.Status()
	want := []ClassStatus{
		{Name: "a", Count: 2, Cores: 8, MemoryGB: 16, SpeedFactor: 1, HourlyUSD: 0.5},
		{Name: "b", Count: 1, Cores: 32, MemoryGB: 64, Spot: true, SpeedFactor: 2, RevocationsPerHour: 1, HourlyUSD: 1},
	}
	if len(st) != len(want) {
		t.Fatalf("%d status rows, want %d", len(st), len(want))
	}
	for i := range want {
		if st[i] != want[i] {
			t.Fatalf("status row %d = %+v, want %+v", i, st[i], want[i])
		}
	}

	legacy := Paper()
	lst := legacy.Status()
	if len(lst) != 1 || lst[0].Name != "" || lst[0].Count != 4 {
		t.Fatalf("legacy cluster status %+v, want one anonymous 4-node class", lst)
	}
	if s, od := legacy.SpotCounts(); s != 0 || od != 4 {
		t.Fatalf("legacy spot counts %d/%d, want 0/4", s, od)
	}

	// Allocations name their hosting class.
	a, err := c.Allocate(params.SysConfig{Cores: 32, MemoryGB: 64})
	if err != nil {
		t.Fatal(err)
	}
	if a.Class().Name != "b" {
		t.Fatalf("allocation attributed to class %q, want b", a.Class().Name)
	}
}
