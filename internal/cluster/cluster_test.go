package cluster

import (
	"errors"
	"math"
	"testing"

	"pipetune/internal/params"
	"pipetune/internal/xrand"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, NodeSpec{Cores: 8, MemoryGB: 16}); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := New(2, NodeSpec{Cores: 0, MemoryGB: 16}); err == nil {
		t.Fatal("zero-core nodes accepted")
	}
}

func TestPaperClusters(t *testing.T) {
	p := Paper()
	if p.NumNodes() != 4 || p.TotalCores() != 128 {
		t.Fatalf("paper cluster = %d nodes, %d cores; want 4 nodes, 128 cores", p.NumNodes(), p.TotalCores())
	}
	s := SingleNode()
	if s.NumNodes() != 1 || s.TotalCores() != 8 {
		t.Fatalf("single node = %d nodes, %d cores", s.NumNodes(), s.TotalCores())
	}
}

func TestAllocateAndRelease(t *testing.T) {
	c, err := New(1, NodeSpec{Cores: 16, MemoryGB: 32})
	if err != nil {
		t.Fatal(err)
	}
	a1, err := c.Allocate(params.SysConfig{Cores: 8, MemoryGB: 16})
	if err != nil {
		t.Fatal(err)
	}
	if c.FreeCores() != 8 {
		t.Fatalf("free cores = %d, want 8", c.FreeCores())
	}
	a2, err := c.Allocate(params.SysConfig{Cores: 8, MemoryGB: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Allocate(params.SysConfig{Cores: 1, MemoryGB: 1}); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("over-allocation error = %v, want ErrInsufficient", err)
	}
	if err := a1.Release(); err != nil {
		t.Fatal(err)
	}
	if err := a2.Release(); err != nil {
		t.Fatal(err)
	}
	if c.FreeCores() != 16 {
		t.Fatalf("free cores after release = %d, want 16", c.FreeCores())
	}
}

func TestDoubleReleaseRejected(t *testing.T) {
	c, _ := New(1, NodeSpec{Cores: 8, MemoryGB: 8})
	a, err := c.Allocate(params.SysConfig{Cores: 4, MemoryGB: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Release(); err != nil {
		t.Fatal(err)
	}
	if err := a.Release(); err == nil {
		t.Fatal("double release accepted")
	}
	if c.FreeCores() != 8 {
		t.Fatalf("double release corrupted accounting: %d free", c.FreeCores())
	}
}

func TestAllocateMemoryBound(t *testing.T) {
	c, _ := New(1, NodeSpec{Cores: 32, MemoryGB: 8})
	if _, err := c.Allocate(params.SysConfig{Cores: 4, MemoryGB: 16}); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("memory over-allocation error = %v", err)
	}
}

func TestAllocateSpreadsAcrossNodes(t *testing.T) {
	c, _ := New(2, NodeSpec{Cores: 8, MemoryGB: 16})
	a1, err := c.Allocate(params.SysConfig{Cores: 8, MemoryGB: 8})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := c.Allocate(params.SysConfig{Cores: 8, MemoryGB: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a1.Node() == a2.Node() {
		t.Fatal("two full-node allocations landed on the same node")
	}
}

func TestFits(t *testing.T) {
	c := SingleNode()
	if !c.Fits(params.SysConfig{Cores: 8, MemoryGB: 24}) {
		t.Fatal("full node should fit")
	}
	if c.Fits(params.SysConfig{Cores: 16, MemoryGB: 8}) {
		t.Fatal("16 cores cannot fit an 8-core node")
	}
}

func TestAllocateValidation(t *testing.T) {
	c := Paper()
	if _, err := c.Allocate(params.SysConfig{}); err == nil {
		t.Fatal("invalid sysconfig accepted")
	}
}

func TestSimulateFIFOSingleServer(t *testing.T) {
	jobs := []Job{
		{ID: 1, Arrival: 0, Duration: 10},
		{ID: 2, Arrival: 1, Duration: 10},
		{ID: 3, Arrival: 2, Duration: 10},
	}
	stats, err := SimulateFIFO(jobs, 1)
	if err != nil {
		t.Fatal(err)
	}
	// FIFO: job2 waits 9, job3 waits 18.
	if stats[0].Wait != 0 || stats[0].Response != 10 {
		t.Fatalf("job1 stats %+v", stats[0])
	}
	if stats[1].Wait != 9 || stats[1].Response != 19 {
		t.Fatalf("job2 stats %+v", stats[1])
	}
	if stats[2].Wait != 18 || stats[2].Response != 28 {
		t.Fatalf("job3 stats %+v", stats[2])
	}
}

func TestSimulateFIFOTwoServers(t *testing.T) {
	jobs := []Job{
		{ID: 1, Arrival: 0, Duration: 10},
		{ID: 2, Arrival: 0, Duration: 10},
		{ID: 3, Arrival: 0, Duration: 10},
	}
	stats, err := SimulateFIFO(jobs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Wait != 0 || stats[1].Wait != 0 {
		t.Fatalf("first two jobs should start immediately: %+v %+v", stats[0], stats[1])
	}
	if stats[2].Wait != 10 {
		t.Fatalf("third job wait = %v, want 10", stats[2].Wait)
	}
}

func TestSimulateFIFOPreservesArrivalOrder(t *testing.T) {
	// Even if passed out of order, service must follow arrival order.
	jobs := []Job{
		{ID: 1, Arrival: 5, Duration: 1},
		{ID: 2, Arrival: 0, Duration: 10},
	}
	stats, err := SimulateFIFO(jobs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats[1].Start != 0 {
		t.Fatalf("earlier arrival started at %v", stats[1].Start)
	}
	if stats[0].Start != 10 {
		t.Fatalf("later arrival started at %v, want 10", stats[0].Start)
	}
}

func TestSimulateFIFOValidation(t *testing.T) {
	if _, err := SimulateFIFO([]Job{{ID: 1, Duration: 1}}, 0); err == nil {
		t.Fatal("zero slots accepted")
	}
	if _, err := SimulateFIFO([]Job{{ID: 1, Duration: -1}}, 1); err == nil {
		t.Fatal("negative duration accepted")
	}
}

func TestMeanResponse(t *testing.T) {
	stats := []JobStats{{Response: 10}, {Response: 20}}
	if got := MeanResponse(stats); got != 15 {
		t.Fatalf("MeanResponse = %v, want 15", got)
	}
	if got := MeanResponse(nil); got != 0 {
		t.Fatalf("empty MeanResponse = %v, want 0", got)
	}
}

func TestShorterJobsLowerResponse(t *testing.T) {
	// The core claim of Figures 13/14: shortening per-job durations
	// lowers mean response time under the same arrival process.
	r := xrand.New(11)
	arrivals := PoissonArrivals(r, 40, 50)
	mk := func(dur float64) []Job {
		jobs := make([]Job, len(arrivals))
		for i, a := range arrivals {
			jobs[i] = Job{ID: i, Arrival: a, Duration: dur}
		}
		return jobs
	}
	slow, err := SimulateFIFO(mk(100), 4)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := SimulateFIFO(mk(70), 4)
	if err != nil {
		t.Fatal(err)
	}
	if MeanResponse(fast) >= MeanResponse(slow) {
		t.Fatalf("30%% shorter jobs did not lower mean response: %v vs %v",
			MeanResponse(fast), MeanResponse(slow))
	}
}

func TestPoissonArrivals(t *testing.T) {
	r := xrand.New(3)
	const n, gap = 20000, 7.0
	arr := PoissonArrivals(r, n, gap)
	if len(arr) != n {
		t.Fatalf("generated %d arrivals", len(arr))
	}
	prev := -1.0
	for _, a := range arr {
		if a <= prev {
			t.Fatal("arrivals not strictly increasing")
		}
		prev = a
	}
	meanGap := arr[n-1] / float64(n)
	if math.Abs(meanGap-gap)/gap > 0.05 {
		t.Fatalf("mean gap = %v, want ~%v", meanGap, gap)
	}
}
