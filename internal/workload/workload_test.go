package workload

import "testing"

func TestCatalogMatchesTable3(t *testing.T) {
	cat := Catalog()
	if len(cat) != 7 {
		t.Fatalf("catalog has %d workloads, Table 3 lists 7", len(cat))
	}
	wantNames := []string{
		"lenet/mnist", "lenet/fashion", "cnn/news20", "lstm/news20",
		"jacobi/rodinia", "spkmeans/rodinia", "bfs/rodinia",
	}
	for i, w := range cat {
		if w.Name() != wantNames[i] {
			t.Fatalf("catalog[%d] = %q, want %q", i, w.Name(), wantNames[i])
		}
	}
}

func TestTypeClassification(t *testing.T) {
	cases := []struct {
		w    Workload
		want Type
	}{
		{Workload{LeNet5, MNIST}, TypeI},
		{Workload{LeNet5, FashionMNIST}, TypeI},
		{Workload{CNN, News20}, TypeII},
		{Workload{LSTM, News20}, TypeII},
		{Workload{Jacobi, Rodinia}, TypeIII},
		{Workload{SPKMeans, Rodinia}, TypeIII},
		{Workload{BFS, Rodinia}, TypeIII},
	}
	for _, tc := range cases {
		if got := tc.w.Type(); got != tc.want {
			t.Fatalf("%s type = %v, want %v", tc.w.Name(), got, tc.want)
		}
	}
}

func TestTraitsTable3Columns(t *testing.T) {
	cases := []struct {
		w                  Workload
		sizeMB, train, tst int
	}{
		{Workload{LeNet5, MNIST}, 12, 60000, 10000},
		{Workload{LeNet5, FashionMNIST}, 31, 60000, 10000},
		{Workload{CNN, News20}, 15, 11307, 7538},
		{Workload{LSTM, News20}, 15, 11307, 7538},
		{Workload{Jacobi, Rodinia}, 26, 1650, 7538},
	}
	for _, tc := range cases {
		tr := TraitsFor(tc.w)
		if tr.DatasizeMB != tc.sizeMB || tr.TrainFiles != tc.train || tr.TestFiles != tc.tst {
			t.Fatalf("%s traits = %d MB / %d train / %d test, want %d/%d/%d",
				tc.w.Name(), tr.DatasizeMB, tr.TrainFiles, tr.TestFiles,
				tc.sizeMB, tc.train, tc.tst)
		}
	}
}

func TestTraitsArePositiveAndBounded(t *testing.T) {
	for _, w := range Catalog() {
		tr := TraitsFor(w)
		if tr.FLOPsPerSample <= 0 || tr.ParamCountK <= 0 || tr.WorkingSetGB <= 0 || tr.EpochSeconds <= 0 {
			t.Fatalf("%s has non-positive traits: %+v", w.Name(), tr)
		}
		for _, in := range []float64{tr.ComputeIntensity, tr.MemoryIntensity, tr.BranchIntensity} {
			if in < 0 || in > 1 {
				t.Fatalf("%s intensity out of [0,1]: %+v", w.Name(), tr)
			}
		}
	}
}

func TestTypeIIIEpochsAreShort(t *testing.T) {
	for _, w := range OfType(TypeIII) {
		tr := TraitsFor(w)
		if tr.EpochSeconds >= 60 {
			t.Fatalf("%s Type-III epoch = %v s, should be short", w.Name(), tr.EpochSeconds)
		}
	}
	for _, w := range OfType(TypeI, TypeII) {
		tr := TraitsFor(w)
		if tr.EpochSeconds < 60 {
			t.Fatalf("%s Type-I/II epoch = %v s, paper says minutes", w.Name(), tr.EpochSeconds)
		}
	}
}

func TestLSTMHeavierThanCNNHeavierThanLeNet(t *testing.T) {
	lenet := TraitsFor(Workload{LeNet5, MNIST}).FLOPsPerSample
	cnn := TraitsFor(Workload{CNN, News20}).FLOPsPerSample
	lstm := TraitsFor(Workload{LSTM, News20}).FLOPsPerSample
	if !(lenet < cnn && cnn < lstm) {
		t.Fatalf("per-sample cost ordering violated: lenet=%v cnn=%v lstm=%v", lenet, cnn, lstm)
	}
}

func TestOfTypeFilters(t *testing.T) {
	if got := len(OfType(TypeI)); got != 2 {
		t.Fatalf("Type-I count = %d, want 2", got)
	}
	if got := len(OfType(TypeII)); got != 2 {
		t.Fatalf("Type-II count = %d, want 2", got)
	}
	if got := len(OfType(TypeIII)); got != 3 {
		t.Fatalf("Type-III count = %d, want 3", got)
	}
	if got := len(OfType(TypeI, TypeII, TypeIII)); got != 7 {
		t.Fatalf("all-types count = %d, want 7", got)
	}
}

func TestStringers(t *testing.T) {
	if LeNet5.String() != "lenet" || News20.String() != "news20" {
		t.Fatal("model/dataset stringers broken")
	}
	if TypeI.String() != "Type-I" || TypeIII.String() != "Type-III" {
		t.Fatal("type stringer broken")
	}
	if Model(99).String() == "" || Dataset(99).String() == "" || Type(99).String() == "" {
		t.Fatal("unknown enum values must still produce a string")
	}
}
