// Package workload catalogues the seven evaluation workloads of Table 3 and
// the traits the simulators derive behaviour from.
//
// A workload is the paper's central abstraction: a (model, dataset) tuple.
// Jobs that share a model are Type-I (e.g. recommendation engines retrained
// per tenant dataset); jobs that share a dataset are Type-II (e.g. computer
// vision model search); the Rodinia computational-sprinting workloads are
// Type-III (short epochs, single node).
package workload

import "fmt"

// Model identifies a neural-network architecture (or Rodinia kernel).
type Model int

// Models from Table 3.
const (
	LeNet5 Model = iota + 1
	CNN
	LSTM
	Jacobi
	SPKMeans
	BFS
)

// String returns the lowercase name used in figures and logs.
func (m Model) String() string {
	switch m {
	case LeNet5:
		return "lenet"
	case CNN:
		return "cnn"
	case LSTM:
		return "lstm"
	case Jacobi:
		return "jacobi"
	case SPKMeans:
		return "spkmeans"
	case BFS:
		return "bfs"
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// Dataset identifies an input corpus.
type Dataset int

// Datasets from Table 3.
const (
	MNIST Dataset = iota + 1
	FashionMNIST
	News20
	Rodinia
)

// String returns the lowercase name used in figures and logs.
func (d Dataset) String() string {
	switch d {
	case MNIST:
		return "mnist"
	case FashionMNIST:
		return "fashion"
	case News20:
		return "news20"
	case Rodinia:
		return "rodinia"
	default:
		return fmt.Sprintf("dataset(%d)", int(d))
	}
}

// Type is the paper's workload taxonomy (§5.1, Table 3).
type Type int

// Workload types.
const (
	TypeI   Type = iota + 1 // same model, different datasets
	TypeII                  // different models, same dataset
	TypeIII                 // Rodinia computational-sprinting kernels
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeI:
		return "Type-I"
	case TypeII:
		return "Type-II"
	case TypeIII:
		return "Type-III"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Workload pairs a model with a dataset.
type Workload struct {
	Model   Model   `json:"model"`
	Dataset Dataset `json:"dataset"`
}

// Name returns the "model/dataset" label used across the evaluation.
func (w Workload) Name() string {
	return w.Model.String() + "/" + w.Dataset.String()
}

// Type classifies the workload per Table 3.
func (w Workload) Type() Type {
	switch w.Dataset {
	case Rodinia:
		return TypeIII
	case News20:
		return TypeII
	default:
		return TypeI
	}
}

// Traits are the static characteristics the cost model, the PMU simulator
// and the dataset synthesiser derive behaviour from. They play the role of
// the real workload's footprint on the hardware.
type Traits struct {
	// Table 3 columns.
	DatasizeMB int `json:"datasizeMB"`
	TrainFiles int `json:"trainFiles"`
	TestFiles  int `json:"testFiles"`

	// FLOPsPerSample is the relative compute cost of one forward+backward
	// pass on one sample (arbitrary units; LeNet5 = 1.0 reference).
	FLOPsPerSample float64 `json:"flopsPerSample"`

	// ParamCount is the number of model parameters in thousands; it scales
	// the synchronous-SGD gradient-synchronisation cost.
	ParamCountK float64 `json:"paramCountK"`

	// WorkingSetGB is the memory the trial needs before spilling.
	WorkingSetGB float64 `json:"workingSetGB"`

	// Intensity knobs in [0,1] shaping the synthetic PMU profile: how much
	// of the workload's cycle budget is compute vs memory vs branching.
	ComputeIntensity float64 `json:"computeIntensity"`
	MemoryIntensity  float64 `json:"memoryIntensity"`
	BranchIntensity  float64 `json:"branchIntensity"`

	// EmbedSensitivity in [0,1] is how strongly the embedding-dimension
	// hyperparameter scales this model's per-sample work (text models only;
	// §7.1.3 item 3).
	EmbedSensitivity float64 `json:"embedSensitivity"`

	// EpochSeconds is the calibration anchor: the simulated duration of one
	// epoch at the default system configuration and default batch size.
	// Type-I/II epochs "last minutes" (§7.1); Type-III epochs are short.
	EpochSeconds float64 `json:"epochSeconds"`
}

// TraitsFor returns the traits of w. Values are calibrated so that the
// evaluation's qualitative relationships hold: Type-II text models are
// heavier per sample than LeNet, LSTM is the heaviest, and Type-III kernels
// have short epochs (Figure 12 discussion).
func TraitsFor(w Workload) Traits {
	t := Traits{}
	switch w.Model {
	case LeNet5:
		t.FLOPsPerSample = 1.0
		t.ParamCountK = 60 // classic LeNet-5 ~60k params
		t.ComputeIntensity = 0.65
		t.MemoryIntensity = 0.35
		t.BranchIntensity = 0.20
	case CNN:
		t.FLOPsPerSample = 2.2
		t.ParamCountK = 320
		t.ComputeIntensity = 0.75
		t.MemoryIntensity = 0.45
		t.BranchIntensity = 0.25
		t.EmbedSensitivity = 0.5
	case LSTM:
		t.FLOPsPerSample = 3.6
		t.ParamCountK = 480
		t.ComputeIntensity = 0.70
		t.MemoryIntensity = 0.60
		t.BranchIntensity = 0.40
		t.EmbedSensitivity = 0.7
	case Jacobi:
		t.FLOPsPerSample = 0.8
		t.ParamCountK = 4
		t.ComputeIntensity = 0.80
		t.MemoryIntensity = 0.70
		t.BranchIntensity = 0.10
	case SPKMeans:
		t.FLOPsPerSample = 0.6
		t.ParamCountK = 8
		t.ComputeIntensity = 0.60
		t.MemoryIntensity = 0.55
		t.BranchIntensity = 0.30
	case BFS:
		t.FLOPsPerSample = 0.4
		t.ParamCountK = 2
		t.ComputeIntensity = 0.35
		t.MemoryIntensity = 0.80
		t.BranchIntensity = 0.70
	}
	// The dataset shifts the hardware footprint: dense image tensors are
	// compute-friendly, sparse bag-of-words text is branchy and
	// memory-bound. These offsets are what make workload families
	// separable in profile space (Figure 8).
	switch w.Dataset {
	case MNIST:
		t.DatasizeMB, t.TrainFiles, t.TestFiles = 12, 60000, 10000
		t.WorkingSetGB = 6
		t.ComputeIntensity += 0.05
	case FashionMNIST:
		t.DatasizeMB, t.TrainFiles, t.TestFiles = 31, 60000, 10000
		t.WorkingSetGB = 7
		t.ComputeIntensity += 0.03
		t.MemoryIntensity += 0.02
	case News20:
		t.DatasizeMB, t.TrainFiles, t.TestFiles = 15, 11307, 7538
		t.WorkingSetGB = 10
		t.ComputeIntensity -= 0.10
		t.MemoryIntensity += 0.20
		t.BranchIntensity += 0.25
	case Rodinia:
		t.DatasizeMB, t.TrainFiles, t.TestFiles = 26, 1650, 7538
		t.WorkingSetGB = 4
	}
	clamp01 := func(v *float64) {
		if *v < 0 {
			*v = 0
		}
		if *v > 1 {
			*v = 1
		}
	}
	clamp01(&t.ComputeIntensity)
	clamp01(&t.MemoryIntensity)
	clamp01(&t.BranchIntensity)
	// Calibration anchor for epoch duration at the default configuration.
	switch w.Type() {
	case TypeIII:
		t.EpochSeconds = 3 // "shorter epochs" (§7.3, Figure 12)
	default:
		// Scale with per-sample work and corpus size relative to
		// LeNet/MNIST's ~180 s epochs on the evaluation cluster.
		t.EpochSeconds = 180 * t.FLOPsPerSample * float64(t.TrainFiles) / 60000
		if t.EpochSeconds < 60 {
			t.EpochSeconds = 60
		}
	}
	return t
}

// Catalog returns the seven Table 3 workloads in their table order.
func Catalog() []Workload {
	return []Workload{
		{Model: LeNet5, Dataset: MNIST},
		{Model: LeNet5, Dataset: FashionMNIST},
		{Model: CNN, Dataset: News20},
		{Model: LSTM, Dataset: News20},
		{Model: Jacobi, Dataset: Rodinia},
		{Model: SPKMeans, Dataset: Rodinia},
		{Model: BFS, Dataset: Rodinia},
	}
}

// OfType filters the catalog by workload type.
func OfType(types ...Type) []Workload {
	want := make(map[Type]bool, len(types))
	for _, t := range types {
		want[t] = true
	}
	var out []Workload
	for _, w := range Catalog() {
		if want[w.Type()] {
			out = append(out, w)
		}
	}
	return out
}
