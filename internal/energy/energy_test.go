package energy

import (
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"pipetune/internal/params"
	"pipetune/internal/xrand"
)

func TestAvgPowerMonotoneInCores(t *testing.T) {
	pm := DefaultPowerModel()
	prev := 0.0
	for _, cores := range []int{1, 2, 4, 8, 16} {
		p, err := pm.AvgPower(params.SysConfig{Cores: cores, MemoryGB: 8}, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		if p <= prev {
			t.Fatalf("power not increasing with cores at %d: %v <= %v", cores, p, prev)
		}
		prev = p
	}
}

func TestAvgPowerComputeHigherThanSync(t *testing.T) {
	pm := DefaultPowerModel()
	sys := params.DefaultSysConfig()
	compute, _ := pm.AvgPower(sys, 1.0)
	syncing, _ := pm.AvgPower(sys, 0.0)
	if compute <= syncing {
		t.Fatalf("compute power %v should exceed sync power %v", compute, syncing)
	}
	idleFloor := pm.IdleWatts
	if syncing <= idleFloor {
		t.Fatalf("sync power %v should still exceed idle %v", syncing, idleFloor)
	}
}

func TestAvgPowerValidation(t *testing.T) {
	pm := DefaultPowerModel()
	if _, err := pm.AvgPower(params.SysConfig{Cores: 0, MemoryGB: 8}, 0.5); err == nil {
		t.Fatal("invalid sysconfig accepted")
	}
	if _, err := pm.AvgPower(params.DefaultSysConfig(), 1.5); err == nil {
		t.Fatal("compute fraction > 1 accepted")
	}
	if _, err := pm.AvgPower(params.DefaultSysConfig(), -0.1); err == nil {
		t.Fatal("negative compute fraction accepted")
	}
}

func TestSeriesIntegratesToAvgTimesDuration(t *testing.T) {
	pm := DefaultPowerModel()
	sys := params.DefaultSysConfig()
	const duration = 300.0
	series, err := pm.Series(xrand.New(1), sys, 0.7, duration)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != int(duration)+1 {
		t.Fatalf("series length %d, want %d", len(series), int(duration)+1)
	}
	energy := Integrate(series)
	avg, _ := pm.AvgPower(sys, 0.7)
	want := avg * duration
	if math.Abs(energy-want)/want > 0.03 {
		t.Fatalf("integrated energy %v, want ~%v", energy, want)
	}
}

func TestSeriesRejectsBadDuration(t *testing.T) {
	pm := DefaultPowerModel()
	if _, err := pm.Series(xrand.New(1), params.DefaultSysConfig(), 0.5, 0); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestTrialEnergyClosedForm(t *testing.T) {
	pm := DefaultPowerModel()
	sys := params.DefaultSysConfig()
	e, err := pm.TrialEnergy(sys, 0.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	avg, _ := pm.AvgPower(sys, 0.5)
	if math.Abs(e-avg*100) > 1e-9 {
		t.Fatalf("TrialEnergy = %v, want %v", e, avg*100)
	}
	if _, err := pm.TrialEnergy(sys, 0.5, -1); err == nil {
		t.Fatal("negative duration accepted")
	}
}

func TestPDUReadQuantisedNearTruth(t *testing.T) {
	pdu := NewPDU(7)
	if err := pdu.SetPower(3, 104.2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		w, err := pdu.Read(3)
		if err != nil {
			t.Fatal(err)
		}
		// 1.5% precision on ~104 W keeps readings within ~3 W.
		if w < 100 || w > 109 {
			t.Fatalf("PDU reading %d W too far from 104.2 W truth", w)
		}
	}
}

func TestPDUOutletValidation(t *testing.T) {
	pdu := NewPDU(1)
	if err := pdu.SetPower(-1, 10); err == nil {
		t.Fatal("negative outlet accepted")
	}
	if err := pdu.SetPower(NumOutlets, 10); err == nil {
		t.Fatal("out-of-range outlet accepted")
	}
	if err := pdu.SetPower(0, -5); err == nil {
		t.Fatal("negative watts accepted")
	}
	if _, err := pdu.Read(99); err == nil {
		t.Fatal("read of invalid outlet accepted")
	}
}

func TestPDUOverHTTP(t *testing.T) {
	pdu := NewPDU(11)
	for outlet, watts := range map[int]float64{0: 60, 1: 80.5} {
		if err := pdu.SetPower(outlet, watts); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(pdu)
	defer srv.Close()

	client := NewClient(srv.URL)
	w0, err := client.ReadPower(0)
	if err != nil {
		t.Fatal(err)
	}
	if w0 < 55 || w0 > 65 {
		t.Fatalf("outlet 0 over HTTP = %v W, want ~60", w0)
	}

	total, err := client.ReadPower(-1)
	if err != nil {
		t.Fatal(err)
	}
	if total < 130 || total > 152 {
		t.Fatalf("aggregate over HTTP = %v W, want ~140.5", total)
	}
}

func TestPDUHTTPErrors(t *testing.T) {
	srv := httptest.NewServer(NewPDU(1))
	defer srv.Close()

	for _, path := range []string{"/power?outlet=banana", "/power?outlet=99"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s status = %d, want 400", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status = %d, want 404", resp.StatusCode)
	}
	postResp, err := http.Post(srv.URL+"/power", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	postResp.Body.Close()
	if postResp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST status = %d, want 404", postResp.StatusCode)
	}
}

func TestClientAgainstDeadServer(t *testing.T) {
	client := NewClient("http://127.0.0.1:1") // nothing listens here
	if _, err := client.ReadPower(0); err == nil {
		t.Fatal("expected error polling dead PDU")
	}
}
