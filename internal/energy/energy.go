// Package energy models the power/energy measurement pipeline of §7.1.1:
// a network-connected LINDY iPower Control PDU reports active power at 1 W
// resolution and 1.5% precision over an HTTP interface, the harness polls it
// every second, and energy is the trapezoidal integral of the samples
// (§3.2).
//
// The package provides the power model (idle + per-active-core dynamic +
// memory draw, with lower draw during synchronisation phases), a 1 Hz
// sample-series generator, and an HTTP PDU simulator plus client so the
// exact measurement path — HTTP poll, 1 W quantisation, integration — is
// exercised end to end.
package energy

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"

	"pipetune/internal/params"
	"pipetune/internal/stats"
	"pipetune/internal/xrand"
)

// PowerModel holds the node power calibration.
type PowerModel struct {
	// IdleWatts is the node's floor draw.
	IdleWatts float64
	// DynamicPerCoreWatts is the additional draw of one fully busy core.
	DynamicPerCoreWatts float64
	// MemWattsPerGB is the draw of allocated (powered) memory.
	MemWattsPerGB float64
	// SyncActivity is the core utilisation during synchronisation phases
	// relative to compute phases (barriers keep cores mostly idle).
	SyncActivity float64
}

// DefaultPowerModel returns constants sized for the paper's Intel E3-class
// nodes (~50 W idle, ~110 W busy at 8 cores).
func DefaultPowerModel() PowerModel {
	return PowerModel{
		IdleWatts:           52,
		DynamicPerCoreWatts: 6.5,
		MemWattsPerGB:       0.25,
		SyncActivity:        0.4,
	}
}

// AvgPower returns the node's mean active power while running a trial that
// spends computeFrac of its time computing (and the rest synchronising)
// on the given system configuration.
func (pm PowerModel) AvgPower(sys params.SysConfig, computeFrac float64) (float64, error) {
	if err := sys.Validate(); err != nil {
		return 0, fmt.Errorf("energy: %w", err)
	}
	if computeFrac < 0 || computeFrac > 1 {
		return 0, fmt.Errorf("energy: compute fraction %v out of [0,1]", computeFrac)
	}
	util := computeFrac + pm.SyncActivity*(1-computeFrac)
	return pm.IdleWatts +
		float64(sys.Cores)*pm.DynamicPerCoreWatts*util +
		float64(sys.MemoryGB)*pm.MemWattsPerGB, nil
}

// Series generates 1 Hz power samples (length ceil(duration)+1, so the
// trapezoid over them spans the full window) around the model's average
// power, with ±2% sampling jitter drawn from r.
func (pm PowerModel) Series(r *xrand.Source, sys params.SysConfig, computeFrac, duration float64) ([]float64, error) {
	if duration <= 0 {
		return nil, fmt.Errorf("energy: non-positive duration %v", duration)
	}
	avg, err := pm.AvgPower(sys, computeFrac)
	if err != nil {
		return nil, err
	}
	n := int(math.Ceil(duration)) + 1
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Jitter(avg, 0.02)
	}
	return out, nil
}

// Integrate returns the energy in joules of a 1 Hz power series, using the
// trapezoidal rule exactly as §3.2 describes.
func Integrate(series []float64) float64 {
	return stats.TrapezoidUniform(series, 1)
}

// TrialEnergy is the closed-form equivalent of Series+Integrate without
// sampling noise: average power times duration. Used where the experiment
// needs deterministic totals.
func (pm PowerModel) TrialEnergy(sys params.SysConfig, computeFrac, duration float64) (float64, error) {
	if duration < 0 {
		return 0, fmt.Errorf("energy: negative duration %v", duration)
	}
	avg, err := pm.AvgPower(sys, computeFrac)
	if err != nil {
		return 0, err
	}
	return avg * duration, nil
}

// PDU simulates a LINDY iPower Control 2x6M power distribution unit: 12
// outlets across 2 banks, 1 W reporting resolution, 1.5% measurement
// precision, queried over HTTP.
type PDU struct {
	mu      sync.Mutex
	outlets [12]float64
	noise   *xrand.Source
}

// NewPDU returns a PDU with all outlets at 0 W.
func NewPDU(seed uint64) *PDU {
	return &PDU{noise: xrand.New(seed)}
}

// NumOutlets is the outlet count of the 2x6M model.
const NumOutlets = 12

// SetPower sets the true draw on an outlet (what the attached node pulls).
func (p *PDU) SetPower(outlet int, watts float64) error {
	if outlet < 0 || outlet >= NumOutlets {
		return fmt.Errorf("energy: outlet %d out of range [0,%d)", outlet, NumOutlets)
	}
	if watts < 0 {
		return errors.New("energy: negative power")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.outlets[outlet] = watts
	return nil
}

// Read returns the measured power on an outlet: true power disturbed by the
// 1.5% precision and quantised to 1 W, as the real unit reports.
func (p *PDU) Read(outlet int) (int, error) {
	if outlet < 0 || outlet >= NumOutlets {
		return 0, fmt.Errorf("energy: outlet %d out of range [0,%d)", outlet, NumOutlets)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return int(p.noise.Jitter(p.outlets[outlet], 0.015) + 0.5), nil
}

// readTotal returns the measured sum over all outlets.
func (p *PDU) readTotal() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0.0
	for _, w := range p.outlets {
		total += p.noise.Jitter(w, 0.015)
	}
	return int(total + 0.5)
}

// powerResponse is the PDU's JSON wire format.
type powerResponse struct {
	Outlet int `json:"outlet"` // -1 for the aggregate reading
	Watts  int `json:"watts"`
}

// ServeHTTP implements the PDU's HTTP interface:
//
//	GET /power            -> aggregate active power
//	GET /power?outlet=N   -> one outlet's active power
func (p *PDU) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet || r.URL.Path != "/power" {
		http.NotFound(w, r)
		return
	}
	resp := powerResponse{Outlet: -1}
	if q := r.URL.Query().Get("outlet"); q != "" {
		outlet, err := strconv.Atoi(q)
		if err != nil {
			http.Error(w, "bad outlet", http.StatusBadRequest)
			return
		}
		watts, err := p.Read(outlet)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp = powerResponse{Outlet: outlet, Watts: watts}
	} else {
		resp.Watts = p.readTotal()
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		// Connection-level failure; nothing further to do.
		return
	}
}

// Client polls a PDU over HTTP, as the paper's harness polls the LINDY unit.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient returns a client for the PDU at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: http.DefaultClient}
}

// ReadPower fetches one measurement. outlet -1 requests the aggregate.
func (c *Client) ReadPower(outlet int) (float64, error) {
	url := c.BaseURL + "/power"
	if outlet >= 0 {
		url += "?outlet=" + strconv.Itoa(outlet)
	}
	resp, err := c.HTTP.Get(url)
	if err != nil {
		return 0, fmt.Errorf("energy: poll PDU: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("energy: PDU returned status %d", resp.StatusCode)
	}
	var pr powerResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return 0, fmt.Errorf("energy: decode PDU response: %w", err)
	}
	return float64(pr.Watts), nil
}
