package experiments

import (
	"fmt"

	"pipetune/internal/cluster"
	"pipetune/internal/sched"
	"pipetune/internal/trainer"
	"pipetune/internal/tune"
	"pipetune/internal/workload"
)

// SpotRow is one fleet's outcome in the spot-savings comparison.
type SpotRow struct {
	Fleet string `json:"fleet"` // "on-demand" or "spot"
	// SpotNodes/OnDemandNodes split the fleet's nodes by market.
	SpotNodes     int `json:"spotNodes"`
	OnDemandNodes int `json:"onDemandNodes"`
	// TuningTime is the job's simulated makespan; CostUSD prices the whole
	// fleet (every node, busy or idle) over that makespan at the classes'
	// hourly rates — the bill an operator actually pays.
	TuningTime float64 `json:"tuningTime"`
	CostUSD    float64 `json:"costUSD"`
	// Revocations counts spot interruptions across the job's trials;
	// SalvagedEpochs the epochs checkpoint resumes spared those trials
	// from retraining; WastedSeconds the node-time the interrupted
	// attempts burned.
	Revocations    int     `json:"revocations,omitempty"`
	SalvagedEpochs int     `json:"salvagedEpochs,omitempty"`
	WastedSeconds  float64 `json:"wastedSeconds,omitempty"`
	// BestAccuracy proves the schedules agree on the search outcome.
	BestAccuracy float64 `json:"bestAccuracy"`
}

// SpotSavingsResult compares one tuning job on an all-on-demand EC2 fleet
// against the same job on a half-spot fleet with checkpointed recovery.
type SpotSavingsResult struct {
	Rows []SpotRow `json:"rows"`
	// Savings is 1 - spot$/onDemand$; TimeInflation spotTime/onDemandTime.
	Savings       float64 `json:"savings"`
	TimeInflation float64 `json:"timeInflation"`
}

// Table renders the comparison.
func (r *SpotSavingsResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Spot savings: %.0f%% cheaper at %.2fx tuning time (checkpointed recovery)",
			r.Savings*100, r.TimeInflation),
		Header: []string{"fleet", "spot/od nodes", "tuning time [s]", "cost [$]", "revocations", "salvaged epochs", "wasted [s]", "best acc"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Fleet, fmt.Sprintf("%d/%d", row.SpotNodes, row.OnDemandNodes),
			f1(row.TuningTime), fmt.Sprintf("%.2f", row.CostUSD),
			fmt.Sprintf("%d", row.Revocations), fmt.Sprintf("%d", row.SalvagedEpochs),
			f1(row.WastedSeconds), fmt.Sprintf("%.3f", row.BestAccuracy),
		})
	}
	return t
}

// spotRevocationsPerHour is the per-node Poisson interruption rate of the
// comparison's spot nodes — aggressive enough that a tuning job's makespan
// sees real revocations, so the checkpointed-recovery path (not luck) is
// what keeps the time inflation bounded.
const spotRevocationsPerHour = 4.0

// SpotSavings runs one V1 tuning job twice on the paper's EC2 shapes —
// two nodes per shape, once all on-demand, once with half of each shape
// bought on the spot market at a 70% discount — under the cost-aware
// `cheapest` placement policy with the trial prefix cache enabled. Spot
// nodes are revoked by a deterministic Poisson process; interrupted
// trials requeue and resume from their deepest cached checkpoint, so the
// spot fleet pays for some retraining and replacement-node outages but
// never loses a finished epoch twice. The result demonstrates the
// heterogeneous cluster plane's economic claim: the spot fleet's bill
// (fleet hourly rate × makespan) is strictly lower while the makespan
// stays within a small inflation factor — and both runs find the same
// best configuration, since revoked trials complete with results
// identical to an undisturbed run.
func SpotSavings(cfg Config) (*SpotSavingsResult, error) {
	w := workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}
	res := &SpotSavingsResult{}

	run := func(name string, spotFraction float64) (SpotRow, error) {
		classes, err := cluster.EC2Fleet(2, spotFraction, spotRevocationsPerHour)
		if err != nil {
			return SpotRow{}, err
		}
		fleet, err := cluster.NewClasses(classes)
		if err != nil {
			return SpotRow{}, err
		}
		tr := newTrainer(cfg)
		// Checkpoints live in the trial prefix cache; without it every
		// revoked attempt would retrain from scratch.
		tr.Cache = trainer.NewTrialCache(0)
		runner := tune.NewRunner(tr, fleet)
		runner.Policy = sched.Cheapest()
		out, err := runner.RunJob(jobSpec(cfg, w, tune.ModeV1, cfg.Seed, false))
		if err != nil {
			return SpotRow{}, err
		}
		spot, onDemand := fleet.SpotCounts()
		row := SpotRow{
			Fleet:         name,
			SpotNodes:     spot,
			OnDemandNodes: onDemand,
			TuningTime:    out.TuningTime,
			CostUSD:       fleet.HourlyUSD() * out.TuningTime / 3600,
			BestAccuracy:  out.Best.Result.Accuracy,
		}
		for _, t := range out.Trials {
			row.Revocations += t.Revocations
			row.SalvagedEpochs += t.SalvagedEpochs
			row.WastedSeconds += t.WastedSeconds
		}
		return row, nil
	}

	onDemand, err := run("on-demand", 0)
	if err != nil {
		return nil, fmt.Errorf("spot savings (on-demand): %w", err)
	}
	spot, err := run("spot", 0.5)
	if err != nil {
		return nil, fmt.Errorf("spot savings (spot): %w", err)
	}
	res.Rows = []SpotRow{onDemand, spot}
	res.Savings = 1 - spot.CostUSD/onDemand.CostUSD
	res.TimeInflation = spot.TuningTime / onDemand.TuningTime
	return res, nil
}
