package experiments

import (
	"encoding/json"
	"fmt"
	"time"

	"pipetune/internal/params"
	"pipetune/internal/trainer"
	"pipetune/internal/tune"
	"pipetune/internal/workload"
)

// ReuseRow is one cache setting's outcome on the sys-sweep trace.
type ReuseRow struct {
	Cache string `json:"cache"` // "off" or "on"
	// Trials is the sweep length; EpochsTrained the epochs of SGD
	// actually computed and EpochsSaved the epochs the cache avoided —
	// both exact, footprinted quantities.
	Trials        int    `json:"trials"`
	EpochsTrained uint64 `json:"epochsTrained"`
	EpochsSaved   uint64 `json:"epochsSaved"`
	// TrialsPerSec is measured wall-clock throughput — the one
	// non-footprinted column (hardware-dependent; BENCH_trainer.json
	// records a reference run).
	TrialsPerSec float64 `json:"trialsPerSec"`
}

// ReuseResult is the memoisation trace: the same training prefix swept
// across system configurations with the trial prefix cache off and on.
type ReuseResult struct {
	Workload   string `json:"workload"`
	SysConfigs int    `json:"sysConfigs"`
	Epochs     int    `json:"epochs"`
	// Identical is the headline: the sweep's trial results, and a whole
	// tuning job's Best score and TuningTime, are byte-identical with
	// the cache on and off.
	Identical bool `json:"identical"`
	// Speedup is the wall-clock throughput ratio on / off.
	Speedup float64 `json:"speedup"`
	// BestScore and TuningTime are the (cache-invariant) tuning-job
	// outcomes that prove reuse never changes a decision.
	BestScore  float64    `json:"bestScore"`
	TuningTime float64    `json:"tuningTime"`
	Rows       []ReuseRow `json:"rows"`
}

// Table renders the trace.
func (r *ReuseResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Trial prefix cache: %d-config sys sweep on %s (%d epochs), identical results = %v",
			r.SysConfigs, r.Workload, r.Epochs, r.Identical),
		Header: []string{"cache", "trials", "epochs trained", "epochs saved", "trials/sec"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Cache, fmt.Sprintf("%d", row.Trials),
			fmt.Sprintf("%d", row.EpochsTrained), fmt.Sprintf("%d", row.EpochsSaved),
			fmt.Sprintf("%.1f", row.TrialsPerSec),
		})
	}
	t.Rows = append(t.Rows, []string{"speedup", fmt.Sprintf("%.1fx", r.Speedup), "", "", ""})
	return t
}

// Reuse measures what the trial prefix cache buys on PipeTune's own
// access pattern. Algorithm 1's system tuning explores many system
// configurations per hyperparameter point, but SGD progress depends only
// on the training prefix — never on cores or memory (the observation
// PipeTune shares with Li et al.'s reuse work). The trace sweeps one
// workload/hyper/seed across every configuration of the §7.1.4 system
// space, cache off and cache on: identical trial results (compared
// through their JSON serialisation), with the cached sweep training the
// prefix once and replaying it SysConfigs-1 times. A full tuning job run
// both ways seals the end-to-end claim: same Best, same TuningTime. The
// epochs-trained/saved columns are exact; only trials/sec is wall-clock.
func Reuse(cfg Config) (*ReuseResult, error) {
	w := workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}
	h := params.DefaultHyper()
	h.Epochs = cfg.Epochs
	var sweep []params.SysConfig
	for _, c := range systemSpace()[0].Values {
		for _, m := range systemSpace()[1].Values {
			sweep = append(sweep, params.SysConfig{Cores: int(c), MemoryGB: int(m)})
		}
	}
	seed := cfg.Seed

	runSweep := func(tr *trainer.Runner) ([]string, float64, error) {
		out := make([]string, len(sweep))
		start := time.Now()
		for i, sys := range sweep {
			res, err := tr.Run(w, h, sys, seed, nil)
			if err != nil {
				return nil, 0, err
			}
			b, err := json.Marshal(res)
			if err != nil {
				return nil, 0, err
			}
			out[i] = string(b)
		}
		return out, float64(len(sweep)) / time.Since(start).Seconds(), nil
	}

	off := newTrainer(cfg)
	offRes, offRate, err := runSweep(off)
	if err != nil {
		return nil, err
	}
	on := newTrainer(cfg)
	on.Cache = trainer.NewTrialCache(0)
	onRes, onRate, err := runSweep(on)
	if err != nil {
		return nil, err
	}
	identical := true
	for i := range offRes {
		if offRes[i] != onRes[i] {
			identical = false
		}
	}
	st := on.Cache.Stats()

	// The end-to-end seal: one tuning job, cache off and on, must agree
	// on the winner and the makespan.
	spec := jobSpec(cfg, w, tune.ModeV1, cfg.Seed, false)
	jobOff, err := tune.NewRunner(newTrainer(cfg), paperCluster()).RunJob(spec)
	if err != nil {
		return nil, err
	}
	cachedTr := newTrainer(cfg)
	cachedTr.Cache = trainer.NewTrialCache(0)
	jobOn, err := tune.NewRunner(cachedTr, paperCluster()).RunJob(spec)
	if err != nil {
		return nil, err
	}
	if jobOff.Best == nil || jobOn.Best == nil {
		return nil, fmt.Errorf("experiments: reuse job finished without a best trial")
	}
	if jobOff.Best.Score != jobOn.Best.Score || jobOff.TuningTime != jobOn.TuningTime {
		identical = false
	}

	return &ReuseResult{
		Workload:   w.Name(),
		SysConfigs: len(sweep),
		Epochs:     h.Epochs,
		Identical:  identical,
		Speedup:    onRate / offRate,
		BestScore:  jobOn.Best.Score,
		TuningTime: jobOn.TuningTime,
		Rows: []ReuseRow{
			{Cache: "off", Trials: len(sweep), EpochsTrained: uint64(len(sweep) * h.Epochs), EpochsSaved: 0, TrialsPerSec: offRate},
			{Cache: "on", Trials: len(sweep), EpochsTrained: st.EpochsTrained, EpochsSaved: st.EpochsSaved, TrialsPerSec: onRate},
		},
	}, nil
}
