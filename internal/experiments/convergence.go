package experiments

import (
	"fmt"
	"math"

	"pipetune/internal/core"
	"pipetune/internal/tune"
	"pipetune/internal/workload"
)

// ConvergenceCurve is one system's progress during a CNN/News20 HPT job.
type ConvergenceCurve struct {
	System string               `json:"system"`
	Points []tune.ProgressPoint `json:"points"`
	// Final summaries.
	TuningTime   float64 `json:"tuningTime"`
	BestAccuracy float64 `json:"bestAccuracy"`
}

// TimeToAccuracy returns the earliest simulated time at which the best-so-
// far accuracy reached target, or +Inf if it never did.
func (c *ConvergenceCurve) TimeToAccuracy(target float64) float64 {
	for _, p := range c.Points {
		if p.BestAccuracy >= target {
			return p.Time
		}
	}
	return math.Inf(1)
}

// MeanTrialDuration averages the per-trial training durations (Figure 10's
// y axis).
func (c *ConvergenceCurve) MeanTrialDuration() float64 {
	if len(c.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range c.Points {
		sum += p.TrialDuration
	}
	return sum / float64(len(c.Points))
}

// ConvergenceResult holds Figures 9 and 10 (they plot the same three runs).
type ConvergenceResult struct {
	Curves []ConvergenceCurve `json:"curves"`
}

// Curve returns the named system's curve.
func (r *ConvergenceResult) Curve(system string) (*ConvergenceCurve, error) {
	for i := range r.Curves {
		if r.Curves[i].System == system {
			return &r.Curves[i], nil
		}
	}
	return nil, fmt.Errorf("experiments: no curve for %q", system)
}

// Figure9and10 regenerates Figures 9 and 10: accuracy convergence and
// training-trial-time convergence of PipeTune vs Tune V1 vs Tune V2 while
// tuning a CNN on News20. PipeTune runs warm-started (§7.2).
func Figure9and10(cfg Config) (*ConvergenceResult, error) {
	w := workload.Workload{Model: workload.CNN, Dataset: workload.News20}
	res := &ConvergenceResult{}

	v1, err := tune.NewRunner(newTrainer(cfg), paperCluster()).RunJob(jobSpec(cfg, w, tune.ModeV1, cfg.Seed, false))
	if err != nil {
		return nil, err
	}
	res.Curves = append(res.Curves, ConvergenceCurve{
		System: "Tune V1", Points: v1.Progress,
		TuningTime: v1.TuningTime, BestAccuracy: maxProgressAccuracy(v1.Progress),
	})

	v2, err := tune.NewRunner(newTrainer(cfg), paperCluster()).RunJob(jobSpec(cfg, w, tune.ModeV2, cfg.Seed, false))
	if err != nil {
		return nil, err
	}
	res.Curves = append(res.Curves, ConvergenceCurve{
		System: "Tune V2", Points: v2.Progress,
		TuningTime: v2.TuningTime, BestAccuracy: maxProgressAccuracy(v2.Progress),
	})

	pt := core.New(tune.NewRunner(newTrainer(cfg), paperCluster()), cfg.Seed)
	if err := pt.Bootstrap(workload.OfType(workload.TypeI, workload.TypeII), cfg.Seed+1); err != nil {
		return nil, err
	}
	ptRes, err := pt.RunJob(jobSpec(cfg, w, tune.ModeV1, cfg.Seed, false))
	if err != nil {
		return nil, err
	}
	res.Curves = append(res.Curves, ConvergenceCurve{
		System: "PipeTune", Points: ptRes.Progress,
		TuningTime: ptRes.TuningTime, BestAccuracy: maxProgressAccuracy(ptRes.Progress),
	})
	return res, nil
}

// maxProgressAccuracy is the accuracy frontier's final value: the highest
// accuracy any trial reached (the quantity Figure 9 converges to,
// regardless of which trial the objective ultimately selects).
func maxProgressAccuracy(points []tune.ProgressPoint) float64 {
	if len(points) == 0 {
		return 0
	}
	return points[len(points)-1].BestAccuracy
}

// Table renders the convergence curves (Figure 9's series; Figure 10's
// trial-duration series shares the same rows).
func (r *ConvergenceResult) Table() *Table {
	t := &Table{
		Title:  "Figures 9/10: accuracy and trial-time convergence (CNN/News20)",
		Header: []string{"system", "wall clock [s]", "best accuracy [%]", "trial time [s]"},
	}
	for _, c := range r.Curves {
		for _, p := range c.Points {
			t.Rows = append(t.Rows, []string{
				c.System, f1(p.Time), f2(p.BestAccuracy * 100), f1(p.TrialDuration),
			})
		}
	}
	return t
}
