package experiments

import (
	"fmt"

	"pipetune/internal/core"
	"pipetune/internal/tune"
	"pipetune/internal/workload"
)

// SystemName identifies the three compared systems.
const (
	SystemV1       = "Tune V1"
	SystemV2       = "Tune V2"
	SystemPipeTune = "PipeTune"
)

// SingleTenancyRow is one (workload, system) measurement of Figures 11/12:
// model accuracy, training duration of the selected model, tuning duration
// and tuning energy.
type SingleTenancyRow struct {
	Workload     workload.Workload `json:"workload"`
	System       string            `json:"system"`
	AccuracyPct  float64           `json:"accuracyPct"`
	TrainingSecs float64           `json:"trainingSecs"`
	TuningSecs   float64           `json:"tuningSecs"`
	TuningKJ     float64           `json:"tuningKJ"`
}

// SingleTenancyResult holds one full figure (11 or 12).
type SingleTenancyResult struct {
	Figure string             `json:"figure"`
	Rows   []SingleTenancyRow `json:"rows"`
}

// Row returns the measurement for (workload, system).
func (r *SingleTenancyResult) Row(w workload.Workload, system string) (SingleTenancyRow, error) {
	for _, row := range r.Rows {
		if row.Workload == w && row.System == system {
			return row, nil
		}
	}
	return SingleTenancyRow{}, fmt.Errorf("experiments: no row for %s/%s", w.Name(), system)
}

// Figure11 regenerates Figure 11: single-tenancy comparison of Tune V1,
// Tune V2 and PipeTune across the Type-I and Type-II workloads on the
// 4-node cluster — accuracy, training duration, tuning duration, tuning
// energy.
func Figure11(cfg Config) (*SingleTenancyResult, error) {
	return singleTenancy(cfg, "Figure 11", workload.OfType(workload.TypeI, workload.TypeII), false)
}

// Figure12 regenerates Figure 12: the same comparison for the Type-III
// Rodinia workloads (short epochs) on the single-node testbed.
func Figure12(cfg Config) (*SingleTenancyResult, error) {
	return singleTenancy(cfg, "Figure 12", workload.OfType(workload.TypeIII), true)
}

func singleTenancy(cfg Config, figure string, workloads []workload.Workload, onSingleNode bool) (*SingleTenancyResult, error) {
	res := &SingleTenancyResult{Figure: figure}
	mkCluster := paperCluster
	if onSingleNode {
		mkCluster = singleNode
	}

	// PipeTune shares one warm-started ground truth across the whole
	// workload sequence (§7.2).
	pt := core.New(tune.NewRunner(newTrainer(cfg), mkCluster()), cfg.Seed)
	if onSingleNode {
		pt.Probes = singleNodeProbes()
	}
	if err := pt.Bootstrap(workloads, cfg.Seed+1); err != nil {
		return nil, err
	}

	for wi, w := range workloads {
		seed := cfg.Seed + uint64(wi)*17

		v1, err := tune.NewRunner(newTrainer(cfg), mkCluster()).RunJob(jobSpec(cfg, w, tune.ModeV1, seed, onSingleNode))
		if err != nil {
			return nil, fmt.Errorf("%s %s v1: %w", figure, w.Name(), err)
		}
		res.Rows = append(res.Rows, rowFrom(w, SystemV1, v1))

		v2, err := tune.NewRunner(newTrainer(cfg), mkCluster()).RunJob(jobSpec(cfg, w, tune.ModeV2, seed, onSingleNode))
		if err != nil {
			return nil, fmt.Errorf("%s %s v2: %w", figure, w.Name(), err)
		}
		res.Rows = append(res.Rows, rowFrom(w, SystemV2, v2))

		ptRes, err := pt.RunJob(jobSpec(cfg, w, tune.ModeV1, seed, onSingleNode))
		if err != nil {
			return nil, fmt.Errorf("%s %s pipetune: %w", figure, w.Name(), err)
		}
		res.Rows = append(res.Rows, rowFrom(w, SystemPipeTune, ptRes))
	}
	return res, nil
}

func rowFrom(w workload.Workload, system string, jres *tune.JobResult) SingleTenancyRow {
	return SingleTenancyRow{
		Workload:     w,
		System:       system,
		AccuracyPct:  jres.Best.Result.Accuracy * 100,
		TrainingSecs: jres.Best.Result.Duration,
		TuningSecs:   jres.TuningTime,
		TuningKJ:     jres.TotalEnergy / 1000,
	}
}

// Table renders the figure.
func (r *SingleTenancyResult) Table() *Table {
	t := &Table{
		Title:  r.Figure + ": accuracy, training, tuning and energy per workload and system",
		Header: []string{"workload", "system", "accuracy [%]", "training [s]", "tuning [s]", "energy [kJ]"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Workload.Name(), row.System, f2(row.AccuracyPct),
			f1(row.TrainingSecs), f1(row.TuningSecs), f1(row.TuningKJ),
		})
	}
	return t
}
