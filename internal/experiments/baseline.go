package experiments

import (
	"pipetune/internal/core"
	"pipetune/internal/params"
	"pipetune/internal/stats"
	"pipetune/internal/tune"
	"pipetune/internal/workload"
)

// ------------------------------------------------------------- Figure 5 ---

// Figure5Row is one (cores, jobs) cell: Tune V2's error and runtime
// improvement relative to a single, uncontended Tune V1 job.
type Figure5Row struct {
	Cores         int     `json:"cores"`
	Jobs          int     `json:"jobs"`
	ErrorImpPct   float64 `json:"errorImpPct"`
	RuntimeImpPct float64 `json:"runtimeImpPct"`
}

// Figure5Result holds the characterisation grid.
type Figure5Result struct {
	BaselineError   float64      `json:"baselineError"`
	BaselineRuntime float64      `json:"baselineRuntime"`
	Rows            []Figure5Row `json:"rows"`
}

// Figure5 regenerates Figure 5: Tune V2 under varying system conditions —
// the tuning job pinned to {1,2,4,8} cores shared with {1,2,3} background
// jobs — against a single Tune V1 baseline. Positive values mean V2 beat
// the baseline under those conditions; the paper's observation is that
// only a few configurations do.
func Figure5(cfg Config) (*Figure5Result, error) {
	w := workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}

	// Baseline: one V1 job, default resources, no contention.
	baseRunner := tune.NewRunner(newTrainer(cfg), paperCluster())
	baseSpec := jobSpec(cfg, w, tune.ModeV1, cfg.Seed, false)
	baseRes, err := baseRunner.RunJob(baseSpec)
	if err != nil {
		return nil, err
	}
	baseErr := 1 - baseRes.Best.Result.Accuracy
	baseTime := baseRes.Best.Result.Duration

	res := &Figure5Result{BaselineError: baseErr, BaselineRuntime: baseTime}
	for _, cores := range []int{1, 2, 4, 8} {
		for _, jobs := range []int{2, 3, 4} {
			tr := newTrainer(cfg)
			tr.Load = float64(jobs) // tuning job + (jobs-1) background jobs
			runner := tune.NewRunner(tr, paperCluster())
			spec := jobSpec(cfg, w, tune.ModeV2, cfg.Seed+uint64(cores*10+jobs), false)
			spec.BaseSys = params.SysConfig{Cores: cores, MemoryGB: 8}
			// The V2 search may not exceed the pinned core budget.
			spec.SystemSpace = params.Space{
				{Name: params.KeyCores, Values: coreValuesUpTo(cores)},
				{Name: params.KeyMemoryGB, Values: []float64{4, 8}},
			}
			jres, err := runner.RunJob(spec)
			if err != nil {
				return nil, err
			}
			vErr := 1 - jres.Best.Result.Accuracy
			vTime := jres.Best.Result.Duration
			res.Rows = append(res.Rows, Figure5Row{
				Cores:         cores,
				Jobs:          jobs,
				ErrorImpPct:   stats.RelDiffPercent(baseErr, vErr),
				RuntimeImpPct: stats.RelDiffPercent(baseTime, vTime),
			})
		}
	}
	return res, nil
}

func coreValuesUpTo(n int) []float64 {
	vals := []float64{}
	for _, c := range []float64{1, 2, 4, 8} {
		if int(c) <= n {
			vals = append(vals, c)
		}
	}
	return vals
}

// Table renders Figure 5.
func (r *Figure5Result) Table() *Table {
	t := &Table{
		Title:  "Figure 5: Tune V2 under system conditions vs single Tune V1 (improvement %)",
		Header: []string{"cores", "jobs", "error imp [%]", "runtime imp [%]"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			d(row.Cores), d(row.Jobs), f1(row.ErrorImpPct), f1(row.RuntimeImpPct),
		})
	}
	return t
}

// -------------------------------------------------------------- Table 2 ---

// Table2Row is one approach row of Table 2.
type Table2Row struct {
	Approach     string  `json:"approach"`
	AccuracyPct  float64 `json:"accuracyPct"`
	TrainingSecs float64 `json:"trainingSecs"`
	TuningSecs   float64 `json:"tuningSecs"` // 0 for "Arbitrary"
}

// Table2Result holds the four approaches.
type Table2Result struct {
	Rows []Table2Row `json:"rows"`
}

// Table2 regenerates Table 2: accuracy, training time and tuning time of
// Arbitrary / Tune V1 / Tune V2 / PipeTune for LeNet on MNIST.
func Table2(cfg Config) (*Table2Result, error) {
	w := workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}
	res := &Table2Result{}

	// Arbitrary: a plausible but untuned configuration (large batch, slow
	// learning rate) on the default system parameters.
	arbTrainer := newTrainer(cfg)
	arbHyper := params.DefaultHyper()
	arbHyper.BatchSize = 1024
	arbHyper.LearningRate = 0.005
	arbHyper.Epochs = cfg.Epochs
	arb, err := arbTrainer.Run(w, arbHyper, baseSys(), cfg.Seed, nil)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Table2Row{
		Approach:     "Arbitrary",
		AccuracyPct:  arb.Accuracy * 100,
		TrainingSecs: arb.Duration,
	})

	// Tune V1.
	v1, err := tune.NewRunner(newTrainer(cfg), paperCluster()).RunJob(jobSpec(cfg, w, tune.ModeV1, cfg.Seed, false))
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Table2Row{
		Approach:     "Tune V1",
		AccuracyPct:  v1.Best.Result.Accuracy * 100,
		TrainingSecs: v1.Best.Result.Duration,
		TuningSecs:   v1.TuningTime,
	})

	// Tune V2.
	v2, err := tune.NewRunner(newTrainer(cfg), paperCluster()).RunJob(jobSpec(cfg, w, tune.ModeV2, cfg.Seed, false))
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Table2Row{
		Approach:     "Tune V2",
		AccuracyPct:  v2.Best.Result.Accuracy * 100,
		TrainingSecs: v2.Best.Result.Duration,
		TuningSecs:   v2.TuningTime,
	})

	// PipeTune, warm-started per §7.2's initial similarity model.
	pt := core.New(tune.NewRunner(newTrainer(cfg), paperCluster()), cfg.Seed)
	if err := pt.Bootstrap(workload.OfType(workload.TypeI, workload.TypeII), cfg.Seed+1); err != nil {
		return nil, err
	}
	ptRes, err := pt.RunJob(jobSpec(cfg, w, tune.ModeV1, cfg.Seed, false))
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, Table2Row{
		Approach:     "PipeTune",
		AccuracyPct:  ptRes.Best.Result.Accuracy * 100,
		TrainingSecs: ptRes.Best.Result.Duration,
		TuningSecs:   ptRes.TuningTime,
	})
	return res, nil
}

// Row returns the named approach's row.
func (r *Table2Result) Row(approach string) (Table2Row, bool) {
	for _, row := range r.Rows {
		if row.Approach == approach {
			return row, true
		}
	}
	return Table2Row{}, false
}

// Table renders Table 2.
func (r *Table2Result) Table() *Table {
	t := &Table{
		Title:  "Table 2: accuracy, training and tuning time per approach (LeNet/MNIST)",
		Header: []string{"approach", "accuracy [%]", "training [s]", "tuning [s]"},
	}
	for _, row := range r.Rows {
		tuning := "-"
		if row.TuningSecs > 0 {
			tuning = f1(row.TuningSecs)
		}
		t.Rows = append(t.Rows, []string{
			row.Approach, f2(row.AccuracyPct), f1(row.TrainingSecs), tuning,
		})
	}
	return t
}
