package experiments

import "testing"

// TestReuseIdenticalAndSaving pins the reuse trace's claims: the cached
// sweep produces identical results while training the prefix exactly
// once, and the tuning job agrees on Best/TuningTime cache on and off.
func TestReuseIdenticalAndSaving(t *testing.T) {
	res, err := Reuse(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Fatal("cached sweep or tuning job diverged from uncached")
	}
	off, on := res.Rows[0], res.Rows[1]
	if off.Trials != res.SysConfigs || on.Trials != res.SysConfigs {
		t.Fatalf("rows cover %d/%d trials, want %d", off.Trials, on.Trials, res.SysConfigs)
	}
	if on.EpochsTrained != uint64(res.Epochs) {
		t.Fatalf("cached sweep trained %d epochs, want exactly one prefix (%d)", on.EpochsTrained, res.Epochs)
	}
	if want := uint64((res.SysConfigs - 1) * res.Epochs); on.EpochsSaved != want {
		t.Fatalf("cached sweep saved %d epochs, want %d", on.EpochsSaved, want)
	}
	if off.EpochsTrained != uint64(res.SysConfigs*res.Epochs) || off.EpochsSaved != 0 {
		t.Fatalf("uncached row malformed: %+v", off)
	}
	if res.BestScore <= 0 || res.TuningTime <= 0 {
		t.Fatalf("tuning-job outcomes missing: %+v", res)
	}
}
