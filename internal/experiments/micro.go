package experiments

import (
	"fmt"

	"pipetune/internal/costmodel"
	"pipetune/internal/ec2"
	"pipetune/internal/energy"
	"pipetune/internal/params"
	"pipetune/internal/perf"
	"pipetune/internal/stats"
	"pipetune/internal/workload"
	"pipetune/internal/xrand"
)

// ------------------------------------------------------------- Figure 1 ---

// Figure1Row is one (instance, #params) cell of Figure 1.
type Figure1Row struct {
	Instance    ec2.InstanceType `json:"instance"`
	NumParams   int              `json:"numParams"`
	Trials      int              `json:"trials"`
	TuningHours float64          `json:"tuningHours"`
	CostUSD     float64          `json:"costUSD"`
}

// Figure1Result holds the full Figure 1 sweep.
type Figure1Result struct {
	TrialSeconds float64      `json:"trialSeconds"`
	Rows         []Figure1Row `json:"rows"`
}

// Figure1 regenerates Figure 1: exhaustive LeNet/MNIST tuning time and EC2
// cost versus the number of tuned parameters (1..6, three values each).
func Figure1(cfg Config) (*Figure1Result, error) {
	// One grid trial: LeNet/MNIST, short training (2 epochs).
	h := params.DefaultHyper()
	h.Epochs = 2
	tr := workload.TraitsFor(workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST})
	trialSeconds, err := costmodel.Default().TrialDuration(tr, h, params.DefaultSysConfig())
	if err != nil {
		return nil, err
	}
	res := &Figure1Result{TrialSeconds: trialSeconds}
	for _, inst := range ec2.All() {
		for k := 1; k <= 6; k++ {
			trials, err := ec2.TrialCount(k, 3)
			if err != nil {
				return nil, err
			}
			hours, err := ec2.TuningHours(inst, k, trialSeconds)
			if err != nil {
				return nil, err
			}
			cost, err := ec2.TuningCostUSD(inst, k, trialSeconds)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Figure1Row{
				Instance: inst, NumParams: k, Trials: trials,
				TuningHours: hours, CostUSD: cost,
			})
		}
	}
	return res, nil
}

// Table renders the sweep.
func (r *Figure1Result) Table() *Table {
	t := &Table{
		Title:  "Figure 1: exhaustive tuning time and EC2 cost vs number of parameters",
		Header: []string{"instance", "params", "trials", "tuning [h]", "cost [$]"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Instance.String(), d(row.NumParams), d(row.Trials),
			f2(row.TuningHours), f2(row.CostUSD),
		})
	}
	return t
}

// ------------------------------------------------------------- Figure 2 ---

// Figure2Result is the per-epoch event heatmap: 58 events × (init + E
// epochs) average rates.
type Figure2Result struct {
	Events []string    `json:"events"`
	Phases []string    `json:"phases"` // "Init.", "1", "2", ...
	Cells  [][]float64 `json:"cells"`  // [event][phase]
}

// Figure2 regenerates Figure 2: profiling a CNN/News20 training (init + 5
// epochs, 16 cores / 32 GB) into the 58-event per-epoch heatmap.
func Figure2(cfg Config) (*Figure2Result, error) {
	w := workload.Workload{Model: workload.CNN, Dataset: workload.News20}
	tr := workload.TraitsFor(w)
	h := params.DefaultHyper()
	h.Epochs = 5
	sys := params.SysConfig{Cores: 16, MemoryGB: 32}
	sampler := perf.NewSampler()
	r := xrand.New(cfg.Seed)

	res := &Figure2Result{
		Events: perf.EventNames(),
		Phases: []string{"Init.", "1", "2", "3", "4", "5"},
		Cells:  make([][]float64, perf.NumEvents),
	}
	for i := range res.Cells {
		res.Cells[i] = make([]float64, len(res.Phases))
	}
	for p := range res.Phases {
		phase := perf.PhaseTrain
		if p == 0 {
			phase = perf.PhaseInit
		}
		profile, err := sampler.EpochProfile(r, tr, h, sys, phase, tr.EpochSeconds)
		if err != nil {
			return nil, err
		}
		for i, v := range profile {
			res.Cells[i][p] = v
		}
	}
	return res, nil
}

// EpochStability returns the mean coefficient of variation of event rates
// across training epochs (excluding init) — Figure 2's "repetitive
// behaviour" quantified. Small values mean highly repetitive epochs.
func (r *Figure2Result) EpochStability() float64 {
	totalCV, n := 0.0, 0
	for _, row := range r.Cells {
		epochs := row[1:]
		m := stats.Mean(epochs)
		if m <= 0 {
			continue
		}
		totalCV += stats.StdDev(epochs) / m
		n++
	}
	if n == 0 {
		return 0
	}
	return totalCV / float64(n)
}

// Table renders a compact view (order-of-magnitude buckets, as the paper's
// colour scale does).
func (r *Figure2Result) Table() *Table {
	t := &Table{
		Title:  "Figure 2: performance-counter events averaged by epoch (log10 of events/s)",
		Header: append([]string{"event"}, r.Phases...),
	}
	for i, name := range r.Events {
		row := []string{name}
		for _, v := range r.Cells[i] {
			row = append(row, f1(log10(v)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func log10(v float64) float64 {
	if v <= 0 {
		return 0
	}
	l := 0.0
	for v >= 10 {
		v /= 10
		l++
	}
	// Linear interpolation of the final decade is plenty for display.
	return l + (v-1)/9
}

// ------------------------------------------------------------ Figure 3a ---

// Figure3aRow is one batch-size column of Figure 3a: differences against
// the batch-32 baseline.
type Figure3aRow struct {
	BatchSize   int     `json:"batchSize"`
	AccuracyPct float64 `json:"accuracyPct"`
	DurationPct float64 `json:"durationPct"`
	EnergyPct   float64 `json:"energyPct"`
}

// Figure3aResult holds Figure 3a plus its baseline measurements.
type Figure3aResult struct {
	BaselineAccuracy float64       `json:"baselineAccuracy"`
	BaselineDuration float64       `json:"baselineDuration"`
	BaselineEnergyJ  float64       `json:"baselineEnergyJ"`
	Rows             []Figure3aRow `json:"rows"`
}

// Figure3a regenerates Figure 3a: the impact of batch size on LeNet/MNIST
// accuracy, runtime and energy against a batch-32 baseline. Accuracy comes
// from genuine SGD training; duration and energy from the calibrated
// models.
func Figure3a(cfg Config) (*Figure3aResult, error) {
	w := workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}
	run := func(batch int) (acc, dur, joules float64, err error) {
		tr := newTrainer(cfg)
		h := params.DefaultHyper()
		h.BatchSize = batch
		h.Epochs = cfg.Epochs
		h.LearningRate = 0.05
		res, err := tr.Run(w, h, params.DefaultSysConfig(), cfg.Seed, nil)
		if err != nil {
			return 0, 0, 0, err
		}
		return res.Accuracy, res.Duration, res.EnergyJ, nil
	}
	baseAcc, baseDur, baseEn, err := run(32)
	if err != nil {
		return nil, err
	}
	res := &Figure3aResult{BaselineAccuracy: baseAcc, BaselineDuration: baseDur, BaselineEnergyJ: baseEn}
	for _, batch := range []int{64, 256, 1024} {
		acc, dur, en, err := run(batch)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Figure3aRow{
			BatchSize:   batch,
			AccuracyPct: stats.RelDiffPercent(acc, baseAcc),
			DurationPct: stats.RelDiffPercent(dur, baseDur),
			EnergyPct:   stats.RelDiffPercent(en, baseEn),
		})
	}
	return res, nil
}

// Table renders Figure 3a.
func (r *Figure3aResult) Table() *Table {
	t := &Table{
		Title:  "Figure 3a: batch-size impact vs batch 32 (LeNet/MNIST)",
		Header: []string{"batch", "accuracy [%]", "duration [%]", "energy [%]"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			d(row.BatchSize), f1(row.AccuracyPct), f1(row.DurationPct), f1(row.EnergyPct),
		})
	}
	return t
}

// ----------------------------------------------------------- Figure 3bc ---

// Figure3bcRow is one (batch, cores) cell of Figures 3b and 3c:
// duration/energy difference against the single-core baseline of the same
// batch size.
type Figure3bcRow struct {
	BatchSize   int     `json:"batchSize"`
	Cores       int     `json:"cores"`
	DurationPct float64 `json:"durationPct"`
	EnergyPct   float64 `json:"energyPct"`
}

// Figure3bcResult holds the sweep.
type Figure3bcResult struct {
	Rows []Figure3bcRow `json:"rows"`
}

// Figure3bc regenerates Figures 3b and 3c: core-count impact on epoch
// runtime and energy per batch size, baseline = sequential (1 core).
func Figure3bc(cfg Config) (*Figure3bcResult, error) {
	w := workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}
	tr := workload.TraitsFor(w)
	cm := costmodel.Default()
	pm := energy.DefaultPowerModel()

	measure := func(batch, cores int) (dur, joules float64, err error) {
		h := params.DefaultHyper()
		h.BatchSize = batch
		sys := params.SysConfig{Cores: cores, MemoryGB: 32}
		d, err := cm.EpochDuration(tr, h, sys)
		if err != nil {
			return 0, 0, err
		}
		bd, err := cm.EpochBreakdown(tr, h, sys)
		if err != nil {
			return 0, 0, err
		}
		e, err := pm.TrialEnergy(sys, bd.ComputeFraction(), d)
		if err != nil {
			return 0, 0, err
		}
		return d, e, nil
	}

	res := &Figure3bcResult{}
	for _, batch := range []int{64, 256, 1024} {
		baseDur, baseEn, err := measure(batch, 1)
		if err != nil {
			return nil, err
		}
		for _, cores := range []int{2, 4, 8} {
			dur, en, err := measure(batch, cores)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Figure3bcRow{
				BatchSize:   batch,
				Cores:       cores,
				DurationPct: stats.RelDiffPercent(dur, baseDur),
				EnergyPct:   stats.RelDiffPercent(en, baseEn),
			})
		}
	}
	return res, nil
}

// Row returns the cell for (batch, cores), or an error if absent.
func (r *Figure3bcResult) Row(batch, cores int) (Figure3bcRow, error) {
	for _, row := range r.Rows {
		if row.BatchSize == batch && row.Cores == cores {
			return row, nil
		}
	}
	return Figure3bcRow{}, fmt.Errorf("experiments: no cell for batch %d cores %d", batch, cores)
}

// Table renders Figures 3b/3c.
func (r *Figure3bcResult) Table() *Table {
	t := &Table{
		Title:  "Figure 3b/3c: cores impact on duration and energy per batch size (baseline: 1 core)",
		Header: []string{"batch", "cores", "duration [%]", "energy [%]"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			d(row.BatchSize), d(row.Cores), f1(row.DurationPct), f1(row.EnergyPct),
		})
	}
	return t
}
