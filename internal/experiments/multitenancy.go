package experiments

import (
	"fmt"
	"sort"

	"pipetune/internal/admission"
	"pipetune/internal/cluster"
	"pipetune/internal/core"
	"pipetune/internal/dataset"
	"pipetune/internal/params"
	"pipetune/internal/sched"
	"pipetune/internal/stats"
	"pipetune/internal/trainer"
	"pipetune/internal/tune"
	"pipetune/internal/workload"
	"pipetune/internal/xrand"
)

// MultiTenancyRow is one bar of Figures 13/14: mean response time of a job
// class under one system.
type MultiTenancyRow struct {
	Group        string  `json:"group"` // "Type-I", "Type-II", "Type-III" or "all"
	System       string  `json:"system"`
	MeanResponse float64 `json:"meanResponse"`
}

// MultiTenancyResult holds one full figure.
type MultiTenancyResult struct {
	Figure string            `json:"figure"`
	Jobs   int               `json:"jobs"`
	Rows   []MultiTenancyRow `json:"rows"`
}

// Row returns the (group, system) mean response.
func (r *MultiTenancyResult) Row(group, system string) (MultiTenancyRow, error) {
	for _, row := range r.Rows {
		if row.Group == group && row.System == system {
			return row, nil
		}
	}
	return MultiTenancyRow{}, fmt.Errorf("experiments: no row for %s/%s", group, system)
}

// Figure13 regenerates Figure 13: average response time of randomly
// arriving Type-I and Type-II HPT jobs on the shared 4-node cluster, per
// type and overall, for the three systems. Jobs arrive with exponential
// inter-arrival times; the two types are balanced 50/50; ~20% of jobs are
// "unseen" (their workload is absent from PipeTune's warm-started ground
// truth).
func Figure13(cfg Config) (*MultiTenancyResult, error) {
	mix, seen := figure13Mix(cfg)
	groupOf := func(w workload.Workload) string { return w.Type().String() }
	return multiTenancy(cfg, "Figure 13", mix, seen, groupOf, false, 2)
}

// figure13Mix builds the §7.4 job trace — a balanced Type-I/Type-II mix,
// round-robin within a type, with every fourth Type-I job the "unseen"
// workload (~20-25% of all jobs) — and returns it together with the seen
// workloads PipeTune's ground truth is warm-started from.
func figure13Mix(cfg Config) (mix, seen []workload.Workload) {
	seen = []workload.Workload{
		{Model: workload.LeNet5, Dataset: workload.MNIST},
		{Model: workload.CNN, Dataset: workload.News20},
		{Model: workload.LSTM, Dataset: workload.News20},
	}
	unseen := workload.Workload{Model: workload.LeNet5, Dataset: workload.FashionMNIST}
	mix = make([]workload.Workload, cfg.MultiTenantJobs)
	typeI := []workload.Workload{seen[0], unseen}
	typeII := []workload.Workload{seen[1], seen[2]}
	i1, i2 := 0, 0
	for i := range mix {
		if i%2 == 0 {
			if (i/2)%2 == 1 {
				mix[i] = typeI[1]
			} else {
				mix[i] = typeI[0]
			}
			i1++
		} else {
			mix[i] = typeII[i2%len(typeII)]
			i2++
		}
	}
	return mix, seen
}

// Figure14 regenerates Figure 14: the same trace machinery for Type-III
// jobs on the single-node testbed (one job slot), per workload and overall.
func Figure14(cfg Config) (*MultiTenancyResult, error) {
	seen := []workload.Workload{
		{Model: workload.Jacobi, Dataset: workload.Rodinia},
		{Model: workload.SPKMeans, Dataset: workload.Rodinia},
	}
	unseen := workload.Workload{Model: workload.BFS, Dataset: workload.Rodinia}
	all := []workload.Workload{seen[0], seen[1], unseen}
	mix := make([]workload.Workload, cfg.MultiTenantJobs)
	for i := range mix {
		if i%5 == 4 {
			mix[i] = unseen // 20% unseen
		} else {
			mix[i] = all[i%2] // round robin over the seen kernels
		}
	}
	groupOf := func(w workload.Workload) string { return w.Model.String() }
	return multiTenancy(cfg, "Figure 14", mix, seen, groupOf, true, 1)
}

// multiTenancy runs the shared-cluster trace for all three systems.
func multiTenancy(cfg Config, figure string, mix, bootstrapSet []workload.Workload,
	groupOf func(workload.Workload) string, onSingleNode bool, slots int) (*MultiTenancyResult, error) {

	// The corpus can be tiny here: response times depend only on simulated
	// durations, which derive from Table 3's full sizes.
	tinyCfg := cfg
	tinyCfg.Data = dataset.Config{TrainSize: 96, TestSize: 48}

	mkTrainer := func() *trainer.Runner { return newTrainer(tinyCfg) }
	mkCluster := paperCluster
	if onSingleNode {
		mkCluster = singleNode
	}

	// Per-job tuning durations under each system. PipeTune processes jobs
	// in arrival order against one shared, warm-started ground truth.
	durations := make(map[string][]float64, 3)
	runBaseline := func(mode tune.Mode) ([]float64, error) {
		runner := tune.NewRunner(mkTrainer(), mkCluster())
		out := make([]float64, len(mix))
		for i, w := range mix {
			res, err := runner.RunJob(jobSpec(tinyCfg, w, mode, cfg.Seed+uint64(i)*13, onSingleNode))
			if err != nil {
				return nil, err
			}
			out[i] = res.TuningTime
		}
		return out, nil
	}
	var err error
	if durations[SystemV1], err = runBaseline(tune.ModeV1); err != nil {
		return nil, fmt.Errorf("%s v1: %w", figure, err)
	}
	if durations[SystemV2], err = runBaseline(tune.ModeV2); err != nil {
		return nil, fmt.Errorf("%s v2: %w", figure, err)
	}

	pt := core.New(tune.NewRunner(mkTrainer(), mkCluster()), cfg.Seed)
	if onSingleNode {
		pt.Probes = singleNodeProbes()
	}
	if err := pt.Bootstrap(bootstrapSet, cfg.Seed+1); err != nil {
		return nil, err
	}
	ptDur := make([]float64, len(mix))
	for i, w := range mix {
		res, err := pt.RunJob(jobSpec(tinyCfg, w, tune.ModeV1, cfg.Seed+uint64(i)*13, onSingleNode))
		if err != nil {
			return nil, fmt.Errorf("%s pipetune: %w", figure, err)
		}
		ptDur[i] = res.TuningTime
	}
	durations[SystemPipeTune] = ptDur

	// One arrival process shared by all systems: load factor ~80% of the
	// V1 service capacity, so queues form but stay stable.
	meanV1 := stats.Mean(durations[SystemV1])
	arrivals := cluster.PoissonArrivals(xrand.New(cfg.Seed+7), len(mix), meanV1/float64(slots)/0.8)

	res := &MultiTenancyResult{Figure: figure, Jobs: len(mix)}
	for _, system := range []string{SystemV1, SystemV2, SystemPipeTune} {
		jobs := make([]cluster.Job, len(mix))
		for i := range mix {
			jobs[i] = cluster.Job{ID: i, Arrival: arrivals[i], Duration: durations[system][i]}
		}
		jstats, err := cluster.SimulateFIFO(jobs, slots)
		if err != nil {
			return nil, err
		}
		byGroup := map[string][]float64{}
		var overall []float64
		for i, s := range jstats {
			g := groupOf(mix[i])
			byGroup[g] = append(byGroup[g], s.Response)
			overall = append(overall, s.Response)
		}
		groups := make([]string, 0, len(byGroup))
		for g := range byGroup {
			groups = append(groups, g)
		}
		sort.Strings(groups)
		for _, g := range groups {
			res.Rows = append(res.Rows, MultiTenancyRow{
				Group: g, System: system, MeanResponse: stats.Mean(byGroup[g]),
			})
		}
		res.Rows = append(res.Rows, MultiTenancyRow{
			Group: "all", System: system, MeanResponse: stats.Mean(overall),
		})
	}
	return res, nil
}

// Table renders the figure.
func (r *MultiTenancyResult) Table() *Table {
	t := &Table{
		Title:  r.Figure + ": mean response time on the shared cluster",
		Header: []string{"group", "system", "mean response [s]"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.Group, row.System, f1(row.MeanResponse)})
	}
	return t
}

// PolicyRow is one placement policy's outcome on the shared-cluster trace.
type PolicyRow struct {
	Policy       string  `json:"policy"`
	MeanResponse float64 `json:"meanResponse"`
	MeanWait     float64 `json:"meanWait"`
	Makespan     float64 `json:"makespan"`
}

// PolicyResult compares trial placement policies on one job trace.
type PolicyResult struct {
	Jobs int         `json:"jobs"`
	Rows []PolicyRow `json:"rows"`
}

// Row returns the named policy's row.
func (r *PolicyResult) Row(policy string) (PolicyRow, error) {
	for _, row := range r.Rows {
		if row.Policy == policy {
			return row, nil
		}
	}
	return PolicyRow{}, fmt.Errorf("experiments: no row for policy %s", policy)
}

// Table renders the comparison.
func (r *PolicyResult) Table() *Table {
	t := &Table{
		Title:  "Placement policies: Poisson HPT-job stream on the shared 4-node cluster",
		Header: []string{"policy", "mean response [s]", "mean wait [s]", "makespan [s]"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.Policy, f1(row.MeanResponse), f1(row.MeanWait), f1(row.Makespan)})
	}
	return t
}

// FairShareRow is one (policy, tenant) outcome of the fair-share trace.
type FairShareRow struct {
	Policy string `json:"policy"`
	Tenant string `json:"tenant"`
	Weight int    `json:"weight"`
	// Completed counts the tenant's jobs finished by the horizon (the
	// instant half the total backlog has completed — deep inside
	// saturation, before either backlog drains).
	Completed int `json:"completed"`
	// Share is the tenant's fraction of horizon completions.
	Share float64 `json:"share"`
	// MeanWait is the mean queue wait of the tenant's horizon jobs.
	MeanWait float64 `json:"meanWait"`
}

// FairShareResult compares job dispatch policies on a two-tenant trace.
type FairShareResult struct {
	JobsPerTenant int            `json:"jobsPerTenant"`
	Horizon       int            `json:"horizon"` // completions counted
	Rows          []FairShareRow `json:"rows"`
}

// Row returns the (policy, tenant) row.
func (r *FairShareResult) Row(policy, tenant string) (FairShareRow, error) {
	for _, row := range r.Rows {
		if row.Policy == policy && row.Tenant == tenant {
			return row, nil
		}
	}
	return FairShareRow{}, fmt.Errorf("experiments: no row for %s/%s", policy, tenant)
}

// Table renders the comparison.
func (r *FairShareResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Fair share: two saturating tenants, %d jobs each, horizon %d completions",
			r.JobsPerTenant, r.Horizon),
		Header: []string{"policy", "tenant", "weight", "completed", "share", "mean wait [s]"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Policy, row.Tenant, fmt.Sprintf("%d", row.Weight),
			fmt.Sprintf("%d", row.Completed), fmt.Sprintf("%.2f", row.Share), f1(row.MeanWait),
		})
	}
	return t
}

// FairShare measures what the pipetuned dispatcher's job policies deliver
// under multi-tenant saturation, deterministically and footprinted: two
// tenants ("gold" at weight 2, "free" at weight 1) each dump an equal
// backlog of identical Type-I HPT jobs at t=0; the admission queue
// (internal/admission — the live service's dispatcher core) decides the
// dispatch order; and the internal/sched engine executes that order on the
// 4-node pool with real footprints. At the horizon — half the total
// backlog completed, deep inside saturation — deficit round robin gives
// the weight-2 tenant ~2x the completed jobs of the weight-1 tenant,
// while FIFO splits 1:1 regardless of weights. No randomness anywhere:
// durations come from the cost model, arrivals are simultaneous, and both
// the queue and the engine are deterministic.
func FairShare(cfg Config) (*FairShareResult, error) {
	const (
		tenantGold = "gold"
		tenantFree = "free"
	)
	weights := map[string]int{tenantGold: 2, tenantFree: 1}
	perTenant := cfg.MultiTenantJobs * 4

	// All jobs are the same Type-I workload: identical cost-model duration
	// and the half-node footprint of the SchedulingPolicies trace, so
	// completed-job counts directly measure throughput share.
	w := workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}
	h := params.DefaultHyper()
	h.Epochs = cfg.Epochs
	footprint := params.SysConfig{Cores: 16, MemoryGB: 32}
	duration, err := newTrainer(cfg).PredictDuration(w, h, footprint)
	if err != nil {
		return nil, fmt.Errorf("fair share: %w", err)
	}

	// The horizon is a whole number of dispatch cycles under both
	// policies (weight sum 3 for fair, 2 for fifo -> multiple of 6), so
	// the steady-state shares appear exactly rather than +/- a partial
	// cycle's rounding.
	horizon := perTenant / 6 * 6
	if horizon < 6 {
		horizon = 6
	}
	res := &FairShareResult{JobsPerTenant: perTenant, Horizon: horizon}
	for _, policy := range []admission.Policy{admission.PolicyFair, admission.PolicyFIFO} {
		q, err := admission.New(admission.Config{Policy: policy, Weights: weights})
		if err != nil {
			return nil, err
		}
		tenantOf := make([]string, 0, 2*perTenant)
		for i := 0; i < perTenant; i++ {
			for _, tenant := range []string{tenantGold, tenantFree} {
				id := len(tenantOf)
				if err := q.Push(admission.Job{
					ID: fmt.Sprintf("%d", id), Tenant: tenant, Cost: duration,
				}); err != nil {
					return nil, err
				}
				tenantOf = append(tenantOf, tenant)
			}
		}
		// The queue fixes the dispatch order; the engine's head-of-line
		// FIFO preserves it while packing footprints onto the pool.
		eng := sched.New(paperCluster().SchedPool(), sched.FIFO(), 0)
		dispatchIdx := make(map[int]int, 2*perTenant)
		for dispatch := 0; q.Len() > 0; dispatch++ {
			j, _ := q.Pop()
			var id int
			fmt.Sscanf(j.ID, "%d", &id)
			dispatchIdx[id] = dispatch
			if err := eng.Submit(sched.Task{
				ID: id, Arrival: 0, Sys: footprint, Duration: duration,
			}, nil); err != nil {
				return nil, fmt.Errorf("fair share (%s): %w", policy, err)
			}
		}
		if err := eng.Run(); err != nil {
			return nil, fmt.Errorf("fair share (%s): %w", policy, err)
		}
		// Identical durations finish in batches at identical instants;
		// dispatch order breaks those ties deterministically (within a
		// batch it is also the start order).
		done := append([]sched.TaskStats(nil), eng.Stats()...)
		sort.Slice(done, func(i, j int) bool {
			if done[i].End != done[j].End {
				return done[i].End < done[j].End
			}
			return dispatchIdx[done[i].ID] < dispatchIdx[done[j].ID]
		})
		completed := map[string]int{}
		waits := map[string][]float64{}
		for _, st := range done[:res.Horizon] {
			tenant := tenantOf[st.ID]
			completed[tenant]++
			waits[tenant] = append(waits[tenant], st.Wait)
		}
		for _, tenant := range []string{tenantGold, tenantFree} {
			row := FairShareRow{
				Policy:    string(policy),
				Tenant:    tenant,
				Weight:    weights[tenant],
				Completed: completed[tenant],
				Share:     float64(completed[tenant]) / float64(res.Horizon),
			}
			if len(waits[tenant]) > 0 {
				row.MeanWait = stats.Mean(waits[tenant])
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// SchedulingPolicies exercises real multi-job contention on the shared
// 4-node cluster: the Figure 13 job mix arrives as a Poisson stream, each
// HPT job claiming a resource footprint sized by its workload type (Type-II
// text models need a full node; Type-I image models half of one), and the
// internal/sched engine places jobs under FIFO, shortest-job-first and
// EASY backfill. Admission is driven purely by whether the footprint fits —
// there is no fixed server count — so the policies differ exactly where
// bin-packing lets a small job slip into capacity a blocked large job
// cannot use.
func SchedulingPolicies(cfg Config) (*PolicyResult, error) {
	mix, _ := figure13Mix(cfg)
	tinyCfg := cfg
	tinyCfg.Data = dataset.Config{TrainSize: 96, TestSize: 48}
	runner := tune.NewRunner(newTrainer(tinyCfg), paperCluster())
	durations := make([]float64, len(mix))
	for i, w := range mix {
		res, err := runner.RunJob(jobSpec(tinyCfg, w, tune.ModeV1, cfg.Seed+uint64(i)*13, false))
		if err != nil {
			return nil, fmt.Errorf("scheduling policies: %w", err)
		}
		durations[i] = res.TuningTime
	}
	// A job's footprint follows its workload type: Type-II (LSTM/CNN over
	// News20) jobs monopolise a node, Type-I jobs co-locate two per node.
	footprint := func(w workload.Workload) params.SysConfig {
		if w.Type() == workload.TypeII {
			return params.SysConfig{Cores: 32, MemoryGB: 64}
		}
		return params.SysConfig{Cores: 16, MemoryGB: 32}
	}
	// Saturating load: jobs arrive faster than the four nodes drain them,
	// so a queue forms and the policies genuinely differ — FIFO blocks on
	// large jobs, SJF and backfill exploit the holes. (The figures use
	// ~80% load; here under-load would make every policy trivially equal.)
	meanDur := stats.Mean(durations)
	arrivals := cluster.PoissonArrivals(xrand.New(cfg.Seed+7), len(mix), meanDur/10)

	res := &PolicyResult{Jobs: len(mix)}
	for _, policy := range []sched.Policy{sched.FIFO(), sched.SJF(), sched.Backfill()} {
		eng := sched.New(paperCluster().SchedPool(), policy, 0)
		for i := range mix {
			task := sched.Task{
				ID:       i,
				Arrival:  arrivals[i],
				Sys:      footprint(mix[i]),
				Duration: durations[i],
			}
			if err := eng.Submit(task, nil); err != nil {
				return nil, fmt.Errorf("scheduling policies: %w", err)
			}
		}
		if err := eng.Run(); err != nil {
			return nil, fmt.Errorf("scheduling policies (%s): %w", policy.Name(), err)
		}
		var resp, wait []float64
		for _, st := range eng.Stats() {
			resp = append(resp, st.Response)
			wait = append(wait, st.Wait)
		}
		res.Rows = append(res.Rows, PolicyRow{
			Policy:       policy.Name(),
			MeanResponse: stats.Mean(resp),
			MeanWait:     stats.Mean(wait),
			Makespan:     eng.Now(),
		})
	}
	return res, nil
}
