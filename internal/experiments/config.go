// Package experiments regenerates every table and figure of the paper's
// evaluation (§3, §4, §7). Each FigureN/TableN function returns structured
// rows plus a renderable text table; the root bench_test.go exposes one
// benchmark per experiment and cmd/experiments prints them all.
//
// All experiments run on simulated time with a fixed master seed, so the
// numbers are reproducible to the bit. See EXPERIMENTS.md for the
// paper-vs-measured comparison.
package experiments

import (
	"pipetune/internal/cluster"
	"pipetune/internal/dataset"
	"pipetune/internal/params"
	"pipetune/internal/trainer"
	"pipetune/internal/tune"
	"pipetune/internal/workload"
)

// Config sizes the experiment harness. Defaults balance fidelity against
// runtime; the shapes under comparison are insensitive to corpus size
// because simulated durations derive from Table 3's full sizes.
type Config struct {
	// Seed is the master seed; every experiment derives its own streams.
	Seed uint64
	// Data is the synthetic corpus size used for genuine SGD learning.
	Data dataset.Config
	// Epochs is the full per-trial epoch budget.
	Epochs int
	// MultiTenantJobs is the number of jobs per multi-tenancy trace.
	MultiTenantJobs int
}

// DefaultConfig returns the standard harness sizing.
func DefaultConfig() Config {
	return Config{
		Seed:            42,
		Data:            dataset.Config{TrainSize: 512, TestSize: 192},
		Epochs:          6,
		MultiTenantJobs: 12,
	}
}

// quickConfig shrinks everything for unit tests.
func quickConfig() Config {
	return Config{
		Seed:            42,
		Data:            dataset.Config{TrainSize: 128, TestSize: 64},
		Epochs:          4,
		MultiTenantJobs: 6,
	}
}

// newTrainer builds the trainer substrate for an experiment.
func newTrainer(cfg Config) *trainer.Runner {
	tr := trainer.NewRunner()
	tr.Data = cfg.Data
	return tr
}

// baseSys is the fixed default configuration every V1 trial runs with
// (§4: "in this version all trials run with the same default system
// parameters"). PipeTune's gains come from correcting it per workload and
// per trial.
func baseSys() params.SysConfig {
	return params.DefaultSysConfig()
}

// hyperSpace is the evaluation's hyperparameter search space (§7.1.3 with
// three values per continuous axis).
func hyperSpace() params.Space {
	return params.Space{
		{Name: params.KeyBatchSize, Values: []float64{32, 256, 1024}},
		{Name: params.KeyLearningRate, Values: []float64{0.005, 0.01, 0.05}},
		{Name: params.KeyDropout, Values: []float64{0.0, 0.25}},
		{Name: params.KeyEmbeddingDim, Values: []float64{50, 100, 300}},
	}
}

// systemSpace is the §7.1.4 system-parameter space for the 4-node cluster.
func systemSpace() params.Space {
	return params.Space{
		{Name: params.KeyCores, Values: []float64{4, 8, 16}},
		{Name: params.KeyMemoryGB, Values: []float64{4, 8, 16, 32}},
	}
}

// singleNodeSystemSpace fits the Type-III testbed (8 cores, 24 GB).
func singleNodeSystemSpace() params.Space {
	return params.Space{
		{Name: params.KeyCores, Values: []float64{2, 4, 8}},
		{Name: params.KeyMemoryGB, Values: []float64{4, 8, 16}},
	}
}

// singleNodeBaseSys is the operator default on the single-node testbed.
func singleNodeBaseSys() params.SysConfig {
	return params.SysConfig{Cores: 8, MemoryGB: 16}
}

// singleNodeProbes is the probing grid PipeTune uses on the single node.
func singleNodeProbes() []params.SysConfig {
	return []params.SysConfig{
		{Cores: 2, MemoryGB: 8},
		{Cores: 4, MemoryGB: 8},
		{Cores: 8, MemoryGB: 8},
		{Cores: 4, MemoryGB: 16},
		{Cores: 8, MemoryGB: 16},
	}
}

// jobSpec assembles the standard HPT job for a workload under a mode.
func jobSpec(cfg Config, w workload.Workload, mode tune.Mode, seed uint64, singleNode bool) tune.JobSpec {
	h := params.DefaultHyper()
	h.Epochs = cfg.Epochs
	obj := tune.MaximizeAccuracy
	if mode == tune.ModeV2 {
		obj = tune.MaximizeAccuracyPerTime
	}
	sys := baseSys()
	sysSpace := systemSpace()
	if singleNode {
		sys = singleNodeBaseSys()
		sysSpace = singleNodeSystemSpace()
	}
	// Searcher stays nil: tune's default is HyperBand (§6) with a sample
	// budget that scales with the mode's search-space size.
	return tune.JobSpec{
		Workload:    w,
		Mode:        mode,
		Objective:   obj,
		HyperSpace:  hyperSpace(),
		SystemSpace: sysSpace,
		BaseHyper:   h,
		BaseSys:     sys,
		Seed:        seed,
	}
}

// paperCluster builds the 4-node testbed; singleNode the Type-III one.
func paperCluster() *cluster.Cluster { return cluster.Paper() }
func singleNode() *cluster.Cluster   { return cluster.SingleNode() }
