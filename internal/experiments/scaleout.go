package experiments

import (
	"fmt"

	"pipetune/internal/cluster"
	"pipetune/internal/params"
	"pipetune/internal/sched"
	"pipetune/internal/workload"
)

// ScaleOutRow is one fleet size's outcome on the scale-out trace.
type ScaleOutRow struct {
	Workers int `json:"workers"`
	Trials  int `json:"trials"`
	// Makespan is the simulated time the fleet needs to drain the trial
	// backlog; Throughput is trials per kilosecond of simulated time.
	Makespan   float64 `json:"makespan"`
	Throughput float64 `json:"throughput"`
	// Speedup is against the single-worker fleet; Efficiency is
	// Speedup/Workers (1.0 = perfectly linear).
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
}

// ScaleOutResult is the horizontal-scaling trace of the remote
// execution plane.
type ScaleOutResult struct {
	Trials        int           `json:"trials"`
	PerWorkerSlot int           `json:"perWorkerSlots"`
	Rows          []ScaleOutRow `json:"rows"`
}

// Row returns the N-worker row.
func (r *ScaleOutResult) Row(workers int) (ScaleOutRow, error) {
	for _, row := range r.Rows {
		if row.Workers == workers {
			return row, nil
		}
	}
	return ScaleOutRow{}, fmt.Errorf("experiments: no row for %d workers", workers)
}

// Table renders the trace.
func (r *ScaleOutResult) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Scale-out: %d-trial backlog on 1/2/4/8 pipetune-worker machines", r.Trials),
		Header: []string{"workers", "makespan [s]", "trials/ks", "speedup", "efficiency"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", row.Workers), f1(row.Makespan),
			fmt.Sprintf("%.2f", row.Throughput), fmt.Sprintf("%.2f", row.Speedup),
			fmt.Sprintf("%.2f", row.Efficiency),
		})
	}
	return t
}

// ScaleOut measures what the pluggable execution plane buys:
// deterministic, footprinted horizontal scaling of trial throughput
// with worker count. A backlog of identical Type-I trials (the
// fleet-of-independent-trials shape PipeTune inherits from Ray Tune,
// §6) arrives at t=0; a fleet of N worker machines — each modelled as
// one 16-core/32GB node holding two half-node trial slots, the
// capacity a `pipetune-worker -capacity 2` process serves — drains it
// under the engine's FIFO placement. Durations come from the cost
// model and nothing is random, so the table reproduces to the bit:
// with a backlog far deeper than any fleet's slot count, N workers
// drain it in 1/N the time — the ~N× trial-throughput claim of the
// remote backend, stated as an exact schedule rather than a wall-clock
// benchmark (BENCH_exec.json records the real asynchronous plane).
func ScaleOut(cfg Config) (*ScaleOutResult, error) {
	const slotsPerWorker = 2
	w := workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}
	h := params.DefaultHyper()
	h.Epochs = cfg.Epochs
	footprint := params.SysConfig{Cores: 8, MemoryGB: 16}
	duration, err := newTrainer(cfg).PredictDuration(w, h, footprint)
	if err != nil {
		return nil, fmt.Errorf("scale out: %w", err)
	}

	// The backlog divides evenly by every fleet's slot count (lcm of
	// 2/4/8/16 slots), so each fleet drains it in full waves and the
	// speedup ratios are exact.
	trials := cfg.MultiTenantJobs * 16
	res := &ScaleOutResult{Trials: trials, PerWorkerSlot: slotsPerWorker}
	var base float64
	for _, workers := range []int{1, 2, 4, 8} {
		fleet, err := cluster.New(workers, cluster.NodeSpec{Cores: 16, MemoryGB: 32})
		if err != nil {
			return nil, err
		}
		eng := sched.New(fleet.SchedPool(), sched.FIFO(), 0)
		for i := 0; i < trials; i++ {
			if err := eng.Submit(sched.Task{
				ID: i, Arrival: 0, Sys: footprint, Duration: duration,
			}, nil); err != nil {
				return nil, fmt.Errorf("scale out (%d workers): %w", workers, err)
			}
		}
		if err := eng.Run(); err != nil {
			return nil, fmt.Errorf("scale out (%d workers): %w", workers, err)
		}
		makespan := eng.Now()
		row := ScaleOutRow{
			Workers:    workers,
			Trials:     trials,
			Makespan:   makespan,
			Throughput: float64(trials) / (makespan / 1000),
		}
		if base == 0 {
			base = makespan
		}
		row.Speedup = base / makespan
		row.Efficiency = row.Speedup / float64(workers)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
