package experiments

import (
	"fmt"

	"pipetune/internal/costmodel"
	"pipetune/internal/kmeans"
	"pipetune/internal/params"
	"pipetune/internal/perf"
	"pipetune/internal/stats"
	"pipetune/internal/workload"
	"pipetune/internal/xrand"
)

// Figure8Row summarises one workload's clustering outcome.
type Figure8Row struct {
	Workload     workload.Workload `json:"workload"`
	Type         workload.Type     `json:"type"`
	Cluster1     int               `json:"cluster1"` // profiles labelled cluster 1
	Cluster2     int               `json:"cluster2"` // profiles labelled cluster 2
	MeanDuration float64           `json:"meanDuration"`
	// MajorityCluster is the label holding most of this workload's
	// profiles (1 or 2).
	MajorityCluster int `json:"majorityCluster"`
}

// Figure8Result holds the clustering of the profiling campaign.
type Figure8Result struct {
	Profiles int          `json:"profiles"` // total points clustered
	Inertia  float64      `json:"inertia"`
	Rows     []Figure8Row `json:"rows"`
}

// Figure8 regenerates Figure 8: k-means (k=2) over the §7.2 profiling
// campaign — each Type-I/II workload profiled under 48 system/batch
// configurations (memory {4,8,16,32} GB × cores {4,8,16} × batch size
// {32,64,512,1024}), twice each — grouped by model and dataset. The
// expected outcome is one cluster per workload family.
func Figure8(cfg Config) (*Figure8Result, error) {
	workloads := workload.OfType(workload.TypeI, workload.TypeII)
	sampler := perf.NewSampler()
	cm := costmodel.Default()
	r := xrand.New(cfg.Seed)

	type labelled struct {
		w        workload.Workload
		features []float64
		duration float64
	}
	var points []labelled
	for _, w := range workloads {
		tr := workload.TraitsFor(w)
		for _, mem := range []int{4, 8, 16, 32} {
			for _, cores := range []int{4, 8, 16} {
				for _, batch := range []int{32, 64, 512, 1024} {
					for rep := 0; rep < 2; rep++ {
						h := params.DefaultHyper()
						h.BatchSize = batch
						sys := params.SysConfig{Cores: cores, MemoryGB: mem}
						profile, err := sampler.EpochProfile(r, tr, h, sys, perf.PhaseTrain, 10)
						if err != nil {
							return nil, err
						}
						dur, err := cm.EpochDuration(tr, h, sys)
						if err != nil {
							return nil, err
						}
						points = append(points, labelled{w: w, features: profile.Features(), duration: dur})
					}
				}
			}
		}
	}

	vecs := make([][]float64, len(points))
	for i, p := range points {
		vecs[i] = p.features
	}
	model, err := kmeans.Fit(vecs, kmeans.DefaultConfig(), xrand.New(cfg.Seed+1))
	if err != nil {
		return nil, err
	}

	res := &Figure8Result{Profiles: len(points), Inertia: model.Inertia}
	for _, w := range workloads {
		row := Figure8Row{Workload: w, Type: w.Type()}
		var durations []float64
		for i, p := range points {
			if p.w != w {
				continue
			}
			if model.Labels[i] == 0 {
				row.Cluster1++
			} else {
				row.Cluster2++
			}
			durations = append(durations, p.duration)
		}
		row.MeanDuration = stats.Mean(durations)
		row.MajorityCluster = 1
		if row.Cluster2 > row.Cluster1 {
			row.MajorityCluster = 2
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Row returns the summary for a workload.
func (r *Figure8Result) Row(w workload.Workload) (Figure8Row, error) {
	for _, row := range r.Rows {
		if row.Workload == w {
			return row, nil
		}
	}
	return Figure8Row{}, fmt.Errorf("experiments: workload %s not in figure 8", w.Name())
}

// Table renders Figure 8.
func (r *Figure8Result) Table() *Table {
	t := &Table{
		Title:  "Figure 8: k-means clustering of workload profiles grouped by model/dataset",
		Header: []string{"workload", "type", "cluster1", "cluster2", "mean epoch [s]"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Workload.Name(), row.Type.String(), d(row.Cluster1), d(row.Cluster2), f1(row.MeanDuration),
		})
	}
	return t
}
