package experiments

import (
	"fmt"
	"strings"
)

// Table is a renderable text table: the harness' common output format for
// every figure and table regenerator.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Render produces an aligned plain-text rendering.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteByte('\n')
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// f1 formats a float with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// f3 formats a float with three decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// d formats an int.
func d(v int) string { return fmt.Sprintf("%d", v) }
