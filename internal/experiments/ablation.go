package experiments

import (
	"fmt"

	"pipetune/internal/core"
	"pipetune/internal/params"
	"pipetune/internal/search"
	"pipetune/internal/tune"
	"pipetune/internal/workload"
	"pipetune/internal/xrand"
)

// Ablations exercise the design choices DESIGN.md calls out, beyond the
// paper's headline figures.

// ----------------------------------------------- ablation: ground truth ---

// AblationGTRow compares PipeTune with and without the ground-truth
// database over a sequence of jobs.
type AblationGTRow struct {
	Variant     string  `json:"variant"` // "warm ground truth" / "no ground truth"
	MeanTuningS float64 `json:"meanTuningS"`
	HitRate     float64 `json:"hitRate"`
}

// AblationGTResult holds the comparison.
type AblationGTResult struct {
	Jobs int             `json:"jobs"`
	Rows []AblationGTRow `json:"rows"`
}

// AblationNoGroundTruth quantifies what the historical database earns: the
// same job sequence runs once with a warm-started ground truth and once
// with lookups disabled (every trial probes from scratch) — the §7.4
// "unseen jobs" overhead made permanent.
func AblationNoGroundTruth(cfg Config) (*AblationGTResult, error) {
	seq := []workload.Workload{
		{Model: workload.LeNet5, Dataset: workload.MNIST},
		{Model: workload.CNN, Dataset: workload.News20},
		{Model: workload.LeNet5, Dataset: workload.MNIST},
		{Model: workload.CNN, Dataset: workload.News20},
	}
	run := func(variant string, disableGT bool) (AblationGTRow, error) {
		pt := core.New(tune.NewRunner(newTrainer(cfg), paperCluster()), cfg.Seed)
		if disableGT {
			// A database that never accumulates enough entries never hits.
			gtCfg := core.DefaultGroundTruthConfig()
			gtCfg.MinEntries = 1 << 30
			pt.GT = core.NewGroundTruth(gtCfg, cfg.Seed)
		} else if err := pt.Bootstrap(workload.OfType(workload.TypeI, workload.TypeII), cfg.Seed+1); err != nil {
			return AblationGTRow{}, err
		}
		total := 0.0
		for i, w := range seq {
			res, err := pt.RunJob(jobSpec(cfg, w, tune.ModeV1, cfg.Seed+uint64(i), false))
			if err != nil {
				return AblationGTRow{}, err
			}
			total += res.TuningTime
		}
		hits, misses := pt.GT.Stats()
		hitRate := 0.0
		if hits+misses > 0 {
			hitRate = float64(hits) / float64(hits+misses)
		}
		return AblationGTRow{
			Variant:     variant,
			MeanTuningS: total / float64(len(seq)),
			HitRate:     hitRate,
		}, nil
	}
	res := &AblationGTResult{Jobs: 4}
	warm, err := run("warm ground truth", false)
	if err != nil {
		return nil, err
	}
	cold, err := run("no ground truth", true)
	if err != nil {
		return nil, err
	}
	res.Rows = []AblationGTRow{warm, cold}
	return res, nil
}

// Table renders the ablation.
func (r *AblationGTResult) Table() *Table {
	t := &Table{
		Title:  "Ablation: ground-truth database on vs off (mean tuning time over a job sequence)",
		Header: []string{"variant", "mean tuning [s]", "hit rate"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.Variant, f1(row.MeanTuningS), f2(row.HitRate)})
	}
	return t
}

// -------------------------------------------------- ablation: searchers ---

// AblationSearcherRow is one search algorithm's outcome under a fixed
// trial budget.
type AblationSearcherRow struct {
	Searcher     string  `json:"searcher"`
	Trials       int     `json:"trials"`
	BestAccuracy float64 `json:"bestAccuracy"`
	TuningSecs   float64 `json:"tuningSecs"`
}

// AblationSearcherResult compares the five Figure 7 search strategies.
type AblationSearcherResult struct {
	Rows []AblationSearcherRow `json:"rows"`
}

// AblationSearchers runs the same V1 job under each of the five search
// algorithms PipeTune inherits (§6), with comparable trial budgets.
func AblationSearchers(cfg Config) (*AblationSearcherResult, error) {
	w := workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}
	factories := []struct {
		name string
		f    tune.SearcherFactory
	}{
		{"grid", func(space params.Space, r *xrand.Source) (search.Searcher, error) {
			return search.NewGrid(space, 12, 0)
		}},
		{"random", func(space params.Space, r *xrand.Source) (search.Searcher, error) {
			return search.NewRandom(space, 12, 0, r)
		}},
		{"hyperband", func(space params.Space, r *xrand.Source) (search.Searcher, error) {
			return search.NewHyperBand(space, 9, 3, r)
		}},
		{"genetic", func(space params.Space, r *xrand.Source) (search.Searcher, error) {
			return search.NewGenetic(space, 6, 2, r)
		}},
		{"bayesian", func(space params.Space, r *xrand.Source) (search.Searcher, error) {
			return search.NewBayesian(space, 12, r)
		}},
	}
	res := &AblationSearcherResult{}
	for _, fc := range factories {
		spec := jobSpec(cfg, w, tune.ModeV1, cfg.Seed, false)
		spec.Searcher = fc.f
		jres, err := tune.NewRunner(newTrainer(cfg), paperCluster()).RunJob(spec)
		if err != nil {
			return nil, fmt.Errorf("searcher %s: %w", fc.name, err)
		}
		res.Rows = append(res.Rows, AblationSearcherRow{
			Searcher:     fc.name,
			Trials:       len(jres.Trials),
			BestAccuracy: jres.Best.Result.Accuracy,
			TuningSecs:   jres.TuningTime,
		})
	}
	return res, nil
}

// Table renders the ablation.
func (r *AblationSearcherResult) Table() *Table {
	t := &Table{
		Title:  "Ablation: search algorithms under comparable budgets (LeNet/MNIST, V1)",
		Header: []string{"searcher", "trials", "best accuracy [%]", "tuning [s]"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			row.Searcher, d(row.Trials), f2(row.BestAccuracy * 100), f1(row.TuningSecs),
		})
	}
	return t
}

// -------------------------------------------------- ablation: threshold ---

// AblationThresholdRow is one similarity-threshold setting.
type AblationThresholdRow struct {
	Threshold  float64 `json:"threshold"`
	HitRate    float64 `json:"hitRate"`
	TuningSecs float64 `json:"tuningSecs"`
}

// AblationThresholdResult holds the sweep.
type AblationThresholdResult struct {
	Rows []AblationThresholdRow `json:"rows"`
}

// AblationThreshold sweeps the §5.6 similarity threshold: too strict and
// every job re-probes (wasted epochs); too loose and jobs inherit
// configurations from the wrong cluster.
func AblationThreshold(cfg Config) (*AblationThresholdResult, error) {
	w := workload.Workload{Model: workload.LeNet5, Dataset: workload.MNIST}
	res := &AblationThresholdResult{}
	for _, th := range []float64{0.1, 0.5, 1.5, 3.0} {
		gtCfg := core.DefaultGroundTruthConfig()
		gtCfg.Threshold = th
		pt := core.New(tune.NewRunner(newTrainer(cfg), paperCluster()), cfg.Seed)
		pt.GT = core.NewGroundTruth(gtCfg, cfg.Seed)
		if err := pt.Bootstrap(workload.OfType(workload.TypeI, workload.TypeII), cfg.Seed+1); err != nil {
			return nil, err
		}
		jres, err := pt.RunJob(jobSpec(cfg, w, tune.ModeV1, cfg.Seed, false))
		if err != nil {
			return nil, err
		}
		hits, misses := pt.GT.Stats()
		hitRate := 0.0
		if hits+misses > 0 {
			hitRate = float64(hits) / float64(hits+misses)
		}
		res.Rows = append(res.Rows, AblationThresholdRow{
			Threshold:  th,
			HitRate:    hitRate,
			TuningSecs: jres.TuningTime,
		})
	}
	return res, nil
}

// Table renders the ablation.
func (r *AblationThresholdResult) Table() *Table {
	t := &Table{
		Title:  "Ablation: similarity-threshold sweep (hit rate vs tuning time)",
		Header: []string{"threshold", "hit rate", "tuning [s]"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{f2(row.Threshold), f2(row.HitRate), f1(row.TuningSecs)})
	}
	return t
}

// ------------------------------------------------ ablation: probe budget ---

// AblationProbeRow is one probing-budget setting.
type AblationProbeRow struct {
	MaxProbeEpochs int     `json:"maxProbeEpochs"`
	TuningSecs     float64 `json:"tuningSecs"`
}

// AblationProbeResult holds the sweep.
type AblationProbeResult struct {
	Rows []AblationProbeRow `json:"rows"`
}

// AblationProbeBudget sweeps how many epochs a cold trial may spend
// probing (§5.6's grid search at epoch granularity): probing more
// configurations finds better settings but each probe epoch may run a bad
// configuration.
func AblationProbeBudget(cfg Config) (*AblationProbeResult, error) {
	w := workload.Workload{Model: workload.CNN, Dataset: workload.News20}
	res := &AblationProbeResult{}
	for _, budget := range []int{1, 2, 4, 6} {
		runner := tune.NewRunner(newTrainer(cfg), paperCluster())
		pt := core.New(runner, cfg.Seed) // cold: every trial probes
		gtCfg := core.DefaultGroundTruthConfig()
		gtCfg.MinEntries = 1 << 30
		pt.GT = core.NewGroundTruth(gtCfg, cfg.Seed)

		ctrl := core.NewController(pt.GT)
		ctrl.MaxProbeEpochs = budget
		spec := jobSpec(cfg, w, tune.ModeV1, cfg.Seed, false)
		spec.TrialObserver = ctrl.ObserverFor
		spec.OnTrialDone = ctrl.Finish
		jres, err := runner.RunJob(spec)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationProbeRow{
			MaxProbeEpochs: budget,
			TuningSecs:     jres.TuningTime,
		})
	}
	return res, nil
}

// Table renders the ablation.
func (r *AblationProbeResult) Table() *Table {
	t := &Table{
		Title:  "Ablation: probing budget (epochs spent probing per cold trial)",
		Header: []string{"max probe epochs", "tuning [s]"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{d(row.MaxProbeEpochs), f1(row.TuningSecs)})
	}
	return t
}
